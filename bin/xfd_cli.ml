(* The xfd command-line tool — the artifact's run.sh analogue.

     xfd run --workload btree --init 5 --test 5 [--patch skip-tx-add=0,2]
     xfd lint --workload btree [--patch ...] [--triage]
     xfd list
     xfd newbugs
     xfd table5 [--workload btree]
     xfd serve --port 8080 --workers 4 [--quota 2 --corpus corpus/]
     xfd submit --connect 8080 -w btree --patch skip-tx-add=0 --await
     xfd await --connect 8080 --job j1 --report-out report.json

   [run] executes one workload under full cross-failure detection and
   prints the report; [--patch] seeds mechanical bugs like the artifact's
   patch files.  [serve] keeps the same pipeline resident behind an HTTP
   job protocol; [submit]/[await] are its client. *)

open Cmdliner

(* "skip-tx-add=0,2;dup-flush=1" — one parser shared with the detection
   service, so a patch that works locally works over the wire too. *)
let parse_patch spec =
  match Xfd_serve.Job.faults_of_spec spec with Ok f -> f | Error e -> failwith e

let workload_names =
  List.map
    (fun e -> String.lowercase_ascii e.Xfd_experiments.Workload_set.name)
    Xfd_experiments.Workload_set.extended

(* Live progress bar for the post-failure stage.  The engine may invoke
   the callback from whichever worker domain finished a run, so renders
   are serialized with a mutex and throttled; the final report always
   renders and ends the line. *)
let progress_renderer () =
  let mu = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let last = ref 0.0 in
  fun (p : Xfd.Engine.progress) ->
    Mutex.protect mu (fun () ->
        let now = Unix.gettimeofday () in
        let final = p.completed >= p.total in
        if final || now -. !last >= 0.05 then begin
          last := now;
          let elapsed = now -. t0 in
          let rate = if elapsed > 0.0 then float_of_int p.completed /. elapsed else 0.0 in
          let eta =
            if rate > 0.0 then float_of_int (p.total - p.completed) /. rate else 0.0
          in
          let width = 24 in
          let filled =
            if p.total <= 0 then width else min width (width * p.completed / p.total)
          in
          let bar = String.make filled '#' ^ String.make (width - filled) '-' in
          Printf.eprintf "\r[%s] %d/%d failure points  %4.0f fp/s  ETA %4.1fs%!" bar
            p.completed p.total rate eta;
          if final then prerr_newline ()
        end)

(* ---- pulse: live exposition, time-series recording, dashboard ----

   One option bundle shared by [run] and [fuzz].  Any of the flags
   switches the pulse machinery on: a Tsdb sampler thread over the Obs
   registry, optionally an HTTP exposition server (--pulse-port), an
   in-process dashboard on stderr (--pulse, TTY only), and an end-of-run
   JSONL dump of the sampled series (--pulse-out).  All of it is
   observation-only: the verdict is byte-identical with or without. *)

type pulse_opts = {
  pulse_live : bool;
  pulse_port : int option;
  pulse_interval : float;
  pulse_linger : float;
  pulse_out : string option;
}

let pulse_term =
  let live =
    Arg.(
      value & flag
      & info [ "pulse" ]
          ~doc:
            "Render a live terminal dashboard (progress, bug tallies, PM traffic, \
             throughput sparkline) on stderr while the command runs.  Implies the \
             time-series sampler.  Observation-only.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "pulse-port" ] ~docv:"PORT"
          ~doc:
            "Serve live metrics over HTTP on 127.0.0.1:$(docv) while the command runs: \
             $(b,/metrics) (OpenMetrics), $(b,/health), $(b,/ready), $(b,/series), \
             $(b,/flight), $(b,/summary).  Port 0 picks an ephemeral port (printed on \
             stderr).  Implies the time-series sampler.")
  in
  let interval =
    Arg.(
      value & opt float 0.25
      & info [ "pulse-interval" ] ~docv:"SECS"
          ~doc:"Sampling interval for the time-series recorder (default 0.25s).")
  in
  let linger =
    Arg.(
      value & opt float 0.0
      & info [ "pulse-linger" ] ~docv:"SECS"
          ~doc:
            "Keep the pulse server and sampler alive $(docv) seconds after the command \
             finishes, so a scraper can observe the final (done) state.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "pulse-out" ] ~docv:"FILE"
          ~doc:
            "Write the sampled time series as JSONL to $(docv) at the end of the run \
             (one line per series).  Implies the time-series sampler.")
  in
  Term.(
    const (fun pulse_live pulse_port pulse_interval pulse_linger pulse_out ->
        { pulse_live; pulse_port; pulse_interval; pulse_linger; pulse_out })
    $ live $ port $ interval $ linger $ out)

(* Redraw-in-place renderer: moves the cursor back up over the previous
   frame.  Only used when stderr is a TTY. *)
let dash_local_renderer tsdb =
  let prev_lines = ref 0 in
  fun () ->
    let s = Xfd_pulse.Dash.render (Xfd_pulse.Dash.snap_local tsdb) in
    let lines = String.split_on_char '\n' s in
    let lines = match List.rev lines with "" :: rest -> List.rev rest | _ -> lines in
    let b = Buffer.create 256 in
    if !prev_lines > 0 then Buffer.add_string b (Printf.sprintf "\x1b[%dA" !prev_lines);
    List.iter
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_string b "\x1b[K\n")
      lines;
    prev_lines := List.length lines;
    prerr_string (Buffer.contents b);
    flush stderr

(* [with_pulse opts f] runs [f] with the pulse machinery (if any flag
   asked for it) started before and torn down after — including on
   exceptions.  [f] receives a progress callback to merge into the
   engine's [on_progress], and must return rather than [exit] so the
   teardown (pulse-out dump, server stop) always runs. *)
let with_pulse opts f =
  let enabled = opts.pulse_live || opts.pulse_port <> None || opts.pulse_out <> None in
  if not enabled then f ~pulse_progress:None
  else begin
    let tsdb = Xfd_pulse.Tsdb.create () in
    Xfd_pulse.Tsdb.start tsdb ~interval:opts.pulse_interval;
    let server =
      Option.map
        (fun port ->
          let s = Xfd_pulse.Pulse.start ~port ~tsdb () in
          Format.eprintf "pulse: serving http://127.0.0.1:%d/ (try /metrics, /health)@."
            (Xfd_pulse.Pulse.port s);
          s)
        opts.pulse_port
    in
    let live = opts.pulse_live && Unix.isatty Unix.stderr in
    let render = dash_local_renderer tsdb in
    let dash =
      if live then
        Some (Xfd_pulse.Ticker.start ~interval:(Float.max 0.2 opts.pulse_interval) render)
      else None
    in
    let pulse_progress (p : Xfd.Engine.progress) =
      Xfd_pulse.Pulse.note_progress ~completed:p.completed ~total:p.total
    in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Xfd_pulse.Ticker.stop dash;
        Xfd_pulse.Tsdb.sample tsdb;
        (* end-state sample *)
        if live then render ();
        if opts.pulse_linger > 0.0 then Unix.sleepf opts.pulse_linger;
        Xfd_pulse.Tsdb.stop tsdb;
        Option.iter Xfd_pulse.Pulse.stop server;
        Option.iter
          (fun file ->
            let n = Xfd_pulse.Tsdb.write_jsonl tsdb file in
            Format.eprintf "pulse series written to %s (%d series)@." file n)
          opts.pulse_out)
      (fun () -> f ~pulse_progress:(Some pulse_progress))
  end

(* Merge independent progress observers into one callback. *)
let merge_progress observers =
  match List.filter_map Fun.id observers with
  | [] -> None
  | fs -> Some (fun p -> List.iter (fun f -> f p) fs)

let run_cmd =
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:(Printf.sprintf "Workload to test (%s)." (String.concat ", " workload_names)))
  in
  let init =
    Arg.(value & opt int 0 & info [ "init" ] ~docv:"N" ~doc:"Warm-up insertions before the RoI.")
  in
  let test =
    Arg.(value & opt int 1 & info [ "test" ] ~docv:"N" ~doc:"Insertions/queries inside the RoI.")
  in
  let patch =
    Arg.(
      value
      & opt (some string) None
      & info [ "patch" ] ~docv:"SPEC"
          ~doc:
            "Seed mechanical bugs: semicolon-separated kind=occurrences, e.g. \
             $(b,skip-tx-add=0,2;dup-flush=1).  Kinds: skip-flush, skip-fence, \
             skip-tx-add, dup-flush, dup-tx-add.")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive-injection" ]
          ~doc:
            "Inject a failure point after every PM update instead of only at ordering \
             points.")
  in
  let untrusted =
    Arg.(
      value & flag
      & info [ "test-library" ]
          ~doc:"Instrument PM-library internals too (trust_library = false).")
  in
  let oracle =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Use the fresh-replay oracle engine: rebuild the per-byte shadow state from \
             event 0 at every failure point instead of advancing one canonical prefix \
             incrementally.  Quadratic in the pre-failure trace — kept for \
             cross-checking; the verdict set is byte-identical to the default engine.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print only the summary line.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the full outcome as JSON.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Stream run telemetry as JSONL to $(docv): one record per pipeline span \
             plus a final summary record (counters, histograms, per-phase span \
             durations, and snapshot-footprint accounting: pm.snapshot_bytes, \
             pm.snapshot_shared_bytes, pm.cow_faults, engine.peak_image_bytes).")
  in
  let quiet_metrics =
    Arg.(
      value & flag
      & info [ "quiet-metrics" ] ~doc:"Do not print the human-readable telemetry summary.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:
            "Write the full detection report as pretty JSON to $(docv), with per-bug \
             provenance chains and the run's coverage block (enables forensics).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print each unique bug with its provenance chain — the pre-failure \
             write/writeback/fence (and framing commit) events behind the verdict, with \
             trace-timeline excerpts — plus the run's coverage report (enables \
             forensics).")
  in
  let fail_on_bug =
    Arg.(
      value & flag
      & info [ "fail-on-bug" ]
          ~doc:"Exit non-zero when any unique bug is reported — for CI gating.")
  in
  let allow_perf =
    Arg.(
      value & flag
      & info [ "allow-perf" ]
          ~doc:
            "With $(b,--fail-on-bug), do not fail on performance bugs alone (races, \
             semantic bugs and post-failure errors still fail).")
  in
  let lint_guided =
    Arg.(
      value & flag
      & info [ "lint-guided" ]
          ~doc:
            "Lint the pre-failure trace first and post-execute statically suspicious \
             failure points before clean ones.  Scheduling only: the verdict set is \
             identical to the default order.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Export the run's span tree as Chrome trace-event JSON to $(docv) — open it \
             in ui.perfetto.dev or chrome://tracing.  One track per domain, so with \
             $(b,post_jobs > 1) the parallel post-failure stage shows as overlapping \
             post_run slices.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Render a live progress bar (failure points done/total, throughput, ETA) on \
             stderr while the post-failure stage runs.  Observation-only: the verdict is \
             byte-identical with or without it.")
  in
  let flight_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-out" ] ~docv:"FILE"
          ~doc:
            "Write the flight-recorder run log as JSONL to $(docv): lifecycle events \
             (run.begin, fp.scheduled/started/verdict, snapshot.recorded/dropped, \
             worker.join, run.end) with per-run id and sampled GC gauges.  Enables \
             debug-level recording for this run.")
  in
  let action workload init test patch naive untrusted oracle quiet json metrics_out
      quiet_metrics report_out explain fail_on_bug allow_perf lint_guided trace_out progress
      flight_out pulse_opts =
    let entry = Xfd_experiments.Workload_set.find workload in
    let faults = match patch with Some s -> parse_patch s | None -> Xfd_sim.Faults.none in
    let config =
      {
        Xfd.Config.default with
        faults;
        strategy = (if naive then Xfd_sim.Ctx.Every_update else Xfd_sim.Ctx.Ordering_points);
        trust_library = not untrusted;
        forensics = explain || report_out <> None;
        engine = (if oracle then `Fresh else `Incremental);
      }
    in
    let sink = Option.map Xfd_obs.Obs.Sink.to_file metrics_out in
    Option.iter Xfd_obs.Obs.Sink.install sink;
    if flight_out <> None then Xfd_flight.Flight.set_level Xfd_flight.Flight.Debug;
    let program = entry.Xfd_experiments.Workload_set.make ~init ~test in
    let code =
      with_pulse pulse_opts (fun ~pulse_progress ->
    let on_progress =
      merge_progress
        [ (if progress then Some (progress_renderer ()) else None); pulse_progress ]
    in
    let outcome =
      if lint_guided then begin
        let lint, outcome = Xfd_lint.Lint.detect_guided ~config ?on_progress program in
        if not (quiet || json) then Format.printf "%a@." Xfd_lint.Lint.pp_report lint;
        outcome
      end
      else Xfd.Engine.detect ~config ?on_progress program
    in
    Option.iter
      (fun file ->
        Xfd_flight.Perfetto.to_file ~process_name:outcome.Xfd.Engine.program file
          outcome.Xfd.Engine.spans;
        Format.eprintf "trace written to %s (%d spans)@." file
          (List.length outcome.Xfd.Engine.spans))
      trace_out;
    Option.iter
      (fun file ->
        let n = Xfd_flight.Flight.write_jsonl file in
        Format.eprintf "flight log written to %s (%d events)@." file n)
      flight_out;
    Option.iter
      (fun s ->
        Xfd_obs.Obs.write_summary ();
        Xfd_obs.Obs.Sink.uninstall s)
      sink;
    let r, s, p, e = Xfd.Engine.tally outcome in
    if json then
      print_endline (Xfd_util.Json.to_string_pretty (Xfd.Engine.outcome_to_json outcome))
    else if quiet then
      Printf.printf "%s: %d failure points, races=%d semantic=%d perf=%d errors=%d (%.1f ms)\n"
        outcome.Xfd.Engine.program outcome.Xfd.Engine.failure_points r s p e
        (1000.0 *. Xfd.Engine.total_wall outcome)
    else Format.printf "%a" Xfd.Engine.pp_outcome outcome;
    if explain then begin
      Format.printf "@.-- forensics --@.";
      List.iter
        (fun b -> Format.printf "%a" Xfd.Report.pp_bug_explained b)
        outcome.Xfd.Engine.unique_bugs;
      Format.printf "%a" Xfd_forensics.Coverage.pp outcome.Xfd.Engine.coverage
    end;
    Option.iter
      (fun file ->
        let report =
          Xfd_util.Json.Obj
            [
              ("type", Xfd_util.Json.Str "xfd_report");
              ("schema_version", Xfd_util.Json.Int 1);
              ("report", Xfd.Engine.outcome_to_json outcome);
            ]
        in
        let oc = open_out file in
        output_string oc (Xfd_util.Json.to_string_pretty report);
        output_char oc '\n';
        close_out oc;
        Format.eprintf "report written to %s@." file)
      report_out;
    if not quiet_metrics then Format.eprintf "%a" Xfd_obs.Obs.pp_summary ();
    let failing = if allow_perf then r + s + e else r + s + p + e in
    if fail_on_bug && failing > 0 then 1 else 0)
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under cross-failure detection")
    Term.(
      const action $ workload $ init $ test $ patch $ naive $ untrusted $ oracle $ quiet
      $ json $ metrics_out $ quiet_metrics $ report_out $ explain $ fail_on_bug $ allow_perf
      $ lint_guided $ trace_out $ progress $ flight_out $ pulse_term)

let list_cmd =
  let action () =
    List.iter
      (fun e ->
        Printf.printf "%-16s %s\n" e.Xfd_experiments.Workload_set.name
          (match e.Xfd_experiments.Workload_set.kind with
          | `Tx -> "transaction-based"
          | `Low_level -> "low-level persists"))
      Xfd_experiments.Workload_set.extended
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads") Term.(const action $ const ())

let newbugs_cmd =
  let action () =
    let findings = Xfd_experiments.Newbugs_exp.run () in
    Xfd_experiments.Newbugs_exp.print findings;
    if not (Xfd_experiments.Newbugs_exp.all_found findings) then exit 1
  in
  Cmd.v
    (Cmd.info "newbugs" ~doc:"Reproduce the paper's four new bugs (section 6.3.2)")
    Term.(const action $ const ())

let table5_cmd =
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Restrict to one workload.")
  in
  let action workload =
    match workload with
    | None ->
      let rows = Xfd_experiments.Table5_exp.run () in
      Xfd_experiments.Table5_exp.print rows;
      if not (Xfd_experiments.Table5_exp.all_detected rows) then exit 1
    | Some w ->
      List.iter
        (fun c ->
          let _, ok = Xfd_workloads.Bug_suite.run c in
          Printf.printf "%-28s %s\n" c.Xfd_workloads.Bug_suite.id
            (if ok then "detected" else "MISSED"))
        (Xfd_workloads.Bug_suite.cases w)
  in
  Cmd.v
    (Cmd.info "table5" ~doc:"Run the synthetic-bug validation suite (Table 5)")
    Term.(const action $ workload)

let lint_cmd =
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:(Printf.sprintf "Workload to lint (%s)." (String.concat ", " workload_names)))
  in
  let init =
    Arg.(value & opt int 0 & info [ "init" ] ~docv:"N" ~doc:"Warm-up insertions before the RoI.")
  in
  let test =
    Arg.(value & opt int 1 & info [ "test" ] ~docv:"N" ~doc:"Insertions/queries inside the RoI.")
  in
  let patch =
    Arg.(
      value
      & opt (some string) None
      & info [ "patch" ] ~docv:"SPEC"
          ~doc:"Seed mechanical bugs before linting (same syntax as $(b,run --patch)).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the lint report (and triage) as JSON.")
  in
  let triage =
    Arg.(
      value & flag
      & info [ "triage" ]
          ~doc:
            "Also run full dynamic detection on the same configuration and cross-check: \
             which dynamic verdicts the linter anticipated, which it missed, and which \
             findings no dynamic verdict confirmed.")
  in
  let triage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "triage-out" ] ~docv:"FILE"
          ~doc:"Write the triage table as pretty JSON to $(docv) (implies $(b,--triage)).")
  in
  let expect =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect" ] ~docv:"IDS"
          ~doc:
            "Comma-separated rule ids that must all fire; exit non-zero when any is \
             missing — for CI gating of seeded-bug variants.")
  in
  let fail_on_finding =
    Arg.(
      value & flag
      & info [ "fail-on-finding" ]
          ~doc:
            "Deprecated: findings exit 1 by default now; the flag is accepted and \
             ignored.")
  in
  let domain =
    Arg.(
      value & opt string "adr"
      & info [ "domain" ] ~docv:"MODEL"
          ~doc:
            "Persistence-domain model to lint under: $(b,adr) (default), $(b,eadr) or \
             $(b,cxl-gpf).")
  in
  let diff_domains =
    Arg.(
      value & flag
      & info [ "diff-domains" ]
          ~doc:
            "Lint the same trace under every domain model and classify each finding \
             key as stable / appears / disappears relative to the $(b,--domain) \
             baseline.")
  in
  let action workload init test patch json triage triage_out expect _fail_on_finding
      domain diff_domains =
    let domain =
      match Xfd_trace.Domain_model.of_string domain with
      | Some d -> d
      | None ->
        Printf.eprintf "unknown persistence-domain model %S (want adr|eadr|cxl-gpf)\n"
          domain;
        exit 2
    in
    let entry =
      match
        List.find_opt
          (fun e ->
            String.lowercase_ascii e.Xfd_experiments.Workload_set.name
            = String.lowercase_ascii workload)
          Xfd_experiments.Workload_set.extended
      with
      | Some e -> e
      | None ->
        Printf.eprintf "unknown workload %S (want one of %s)\n" workload
          (String.concat ", " workload_names);
        exit 2
    in
    let faults =
      match patch with
      | None -> Xfd_sim.Faults.none
      | Some s -> (
        match Xfd_serve.Job.faults_of_spec s with
        | Ok f -> f
        | Error e ->
          Printf.eprintf "bad --patch: %s\n" e;
          exit 2)
    in
    let config = { Xfd.Config.default with faults; domain } in
    let program = entry.Xfd_experiments.Workload_set.make ~init ~test in
    let expected =
      match expect with
      | None -> []
      | Some s ->
        String.split_on_char ',' s
        |> List.filter (fun s -> s <> "")
        |> List.map (fun id ->
               match Xfd_lint.Lint.rule_of_id id with
               | Some _ -> id
               | None ->
                 Printf.eprintf "unknown rule id %S\n" id;
                 exit 2)
    in
    let do_triage = triage || triage_out <> None in
    let diff =
      if diff_domains then Some (Xfd_lint.Lint.diff_prog ~config ~baseline:domain program)
      else None
    in
    let report, tri =
      match diff with
      | Some d -> (List.assoc domain d.Xfd_lint.Lint.reports, None)
      | None ->
        if do_triage then
          let t = Xfd_lint.Lint.triage ~config program in
          (t.Xfd_lint.Lint.lint, Some t)
        else (Xfd_lint.Lint.check_prog ~config program, None)
    in
    (match diff with
    | Some d ->
      if json then
        print_endline (Xfd_util.Json.to_string_pretty (Xfd_lint.Lint.diff_to_json d))
      else Format.printf "%a@." Xfd_lint.Lint.pp_diff d
    | None ->
      if json then
        print_endline
          (Xfd_util.Json.to_string_pretty
             (match tri with
             | Some t -> Xfd_lint.Lint.triage_to_json t
             | None -> Xfd_lint.Lint.report_to_json report))
      else begin
        Format.printf "%a@." Xfd_lint.Lint.pp_report report;
        Option.iter (fun t -> Format.printf "%a@." Xfd_lint.Lint.pp_triage t) tri
      end);
    Option.iter
      (fun file ->
        let t = Option.get tri in
        let oc = open_out file in
        output_string oc
          (Xfd_util.Json.to_string_pretty (Xfd_lint.Lint.triage_to_json t));
        output_char oc '\n';
        close_out oc;
        Format.eprintf "triage written to %s@." file)
      triage_out;
    let fired =
      List.map
        (fun f -> Xfd_lint.Lint.rule_id f.Xfd_lint.Lint.rule)
        report.Xfd_lint.Lint.findings
    in
    (* Exit contract (shared with xfd_trace_tool lint): 0 = clean,
       1 = findings (or a missed expectation), 2 = usage/IO error.  With
       --expect the findings are the point, so meeting every expectation
       exits 0.  With --diff-domains "clean" means clean under every
       analysed model. *)
    let missing = List.filter (fun id -> not (List.mem id fired)) expected in
    if missing <> [] then begin
      Printf.eprintf "expected rule(s) did not fire: %s\n" (String.concat ", " missing);
      exit 1
    end;
    if expected = [] then
      match diff with
      | Some d -> if not (Xfd_lint.Lint.diff_clean d) then exit 1
      | None -> if not (Xfd_lint.Lint.clean report) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a workload's pre-failure trace for crash-consistency \
          rule violations, optionally under different persistence-domain models \
          ($(b,--domain), $(b,--diff-domains)) or cross-checked against the dynamic \
          detector. Exits 0 when clean, 1 on findings or a missed $(b,--expect), 2 \
          on usage errors.")
    Term.(
      const action $ workload $ init $ test $ patch $ json $ triage $ triage_out $ expect
      $ fail_on_finding $ domain $ diff_domains)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base seed for the run.")
  in
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"K" ~doc:"Number of programs to generate and check.")
  in
  let profile =
    let profile_conv =
      Arg.conv
        ( (fun s ->
            match Xfd_fuzz.Gen.profile_of_string s with
            | Ok p -> Ok p
            | Error e -> Error (`Msg e)),
          fun ppf p -> Format.pp_print_string ppf (Xfd_fuzz.Gen.profile_to_string p) )
    in
    Arg.(
      value
      & opt profile_conv Xfd_fuzz.Gen.Buggy
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Generator profile: $(b,correct) (clean protocols, zero findings expected), \
             $(b,buggy) (seeded PM bugs; the default) or $(b,wild) (unconstrained op \
             soup for differential testing).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory: its $(b,.xfdprog) files are replayed first as a \
             regression gate, and shrunk repros from this run are saved into it.")
  in
  let max_repros =
    Arg.(
      value & opt int 5
      & info [ "max-repros" ] ~docv:"N" ~doc:"Cap on harvested bug repros per run.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 400
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Max predicate evaluations per shrink (each is one engine run).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one $(b,.xfdprog) file against its $(b,expect) lines and exit; no \
             fuzzing.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print only the summary.") in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Stream run telemetry as JSONL to $(docv), including the fuzz.* counters \
             (programs, divergences, meta_failures, shrink_evals, repros).")
  in
  let quiet_metrics =
    Arg.(
      value & flag
      & info [ "quiet-metrics" ] ~doc:"Do not print the human-readable telemetry summary.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Export every span of the whole fuzz sweep as Chrome trace-event JSON to \
             $(docv) (collected from the telemetry stream — each engine run drains its \
             own span buffer).")
  in
  let action seed budget profile corpus max_repros shrink_budget replay quiet metrics_out
      quiet_metrics trace_out pulse_opts =
    let ok =
      with_pulse pulse_opts (fun ~pulse_progress ->
          (* A fuzz sweep has no single-run progress; the pulse sampler
             still captures the fuzz.* counters as they advance. *)
          ignore pulse_progress;
          let sink = Option.map Xfd_obs.Obs.Sink.to_file metrics_out in
          Option.iter Xfd_obs.Obs.Sink.install sink;
          let collector =
            Option.map (fun path -> (path, Xfd_flight.Perfetto.Collector.start ())) trace_out
          in
          let finish ok =
            Option.iter
              (fun (path, c) ->
                let n = Xfd_flight.Perfetto.Collector.stop_to_file c path in
                Format.eprintf "trace written to %s (%d slices)@." path n)
              collector;
            Option.iter
              (fun s ->
                Xfd_obs.Obs.write_summary ();
                Xfd_obs.Obs.Sink.uninstall s)
              sink;
            if not quiet_metrics then Format.eprintf "%a" Xfd_obs.Obs.pp_summary ();
            ok
          in
          match replay with
          | Some file -> (
            match Xfd_fuzz.Corpus.check file with
            | Ok () ->
              Printf.printf "%s: verdicts match\n" file;
              finish true
            | Error e ->
              Printf.printf "%s\n" e;
              finish false)
          | None ->
            let cfg =
              {
                Xfd_fuzz.Fuzz.seed;
                budget;
                profile;
                corpus_dir = corpus;
                max_repros;
                shrink_budget;
              }
            in
            let out = if quiet then None else Some Format.std_formatter in
            let summary = Xfd_fuzz.Fuzz.run ?out cfg in
            Format.printf "%a" Xfd_fuzz.Fuzz.pp_summary summary;
            finish (Xfd_fuzz.Fuzz.clean summary))
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential workload fuzzing: generated PM programs checked against a \
          sequential reference oracle and metamorphic properties, with shrinking and a \
          reproducible corpus")
    Term.(
      const action $ seed $ budget $ profile $ corpus $ max_repros $ shrink_budget $ replay
      $ quiet $ metrics_out $ quiet_metrics $ trace_out $ pulse_term)

let top_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Pulse endpoint of a running detection (started with $(b,run --pulse-port)). \
             A bare port means 127.0.0.1.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh interval (default 1s).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (0 = until interrupted or the run is done).")
  in
  let once = Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit.") in
  let action connect interval count once =
    match Xfd_pulse.Httpc.parse_endpoint connect with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok (host, port) ->
      let count = if once then 1 else count in
      let tty = Unix.isatty Unix.stdout in
      let prev_lines = ref 0 in
      let show s =
        let lines = String.split_on_char '\n' s in
        let lines = match List.rev lines with "" :: r -> List.rev r | _ -> lines in
        let b = Buffer.create 256 in
        if tty && !prev_lines > 0 then
          Buffer.add_string b (Printf.sprintf "\x1b[%dA" !prev_lines);
        List.iter
          (fun l ->
            Buffer.add_string b l;
            if tty then Buffer.add_string b "\x1b[K";
            Buffer.add_char b '\n')
          lines;
        prev_lines := List.length lines;
        print_string (Buffer.contents b);
        flush stdout
      in
      let failed = ref false in
      ignore
        (Xfd_pulse.Ticker.loop ~interval (fun tick ->
             match Xfd_pulse.Dash.snap_remote ~host ~port with
             | Error e ->
               Printf.eprintf "top: %s\n%!" e;
               failed := true;
               `Stop
             | Ok snap ->
               show (Xfd_pulse.Dash.render snap);
               let last = count > 0 && tick >= count - 1 in
               (* A finished run stops the watch on its own once we have
                  shown the done state. *)
               if last || (count = 0 && snap.Xfd_pulse.Dash.status = "done") then `Stop
               else `Continue));
      if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running detection: polls a pulse endpoint and renders \
          progress, bug tallies, PM traffic and a throughput sparkline")
    Term.(const action $ connect $ interval $ count $ once)

(* ---- the detection service: serve / submit / await ---- *)

let connect_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Endpoint of a running detection service (started with $(b,xfd serve)).  A \
           bare port means 127.0.0.1.")

let serve_cmd =
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Port to listen on (default 0 picks an ephemeral port; the bound port is \
             printed on stderr and written to $(b,--port-file)).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Detection worker threads (default 2).")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bound on queued (not yet running) jobs; a full queue answers 429 with \
             $(b,Retry-After) (default 64).")
  in
  let quota =
    Arg.(
      value & opt float 0.0
      & info [ "quota" ] ~docv:"RATE"
          ~doc:
            "Per-client submission quota in jobs/second (token bucket; see \
             $(b,--quota-burst)).  Over-quota submissions answer 429 with \
             $(b,Retry-After).  0 disables (the default).")
  in
  let quota_burst =
    Arg.(
      value & opt int 8
      & info [ "quota-burst" ] ~docv:"N" ~doc:"Token-bucket burst per client (default 8).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Serve the $(b,.xfdprog) files under $(docv) at $(b,/v1/corpus).")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound port to $(docv) once listening — the race-free way for \
             scripts to find an ephemeral port.")
  in
  let retain =
    Arg.(
      value & opt int 4096
      & info [ "retain" ] ~docv:"N"
          ~doc:"Finished jobs kept queryable over $(b,/v1/jobs) (default 4096).")
  in
  let action port host workers queue_cap quota quota_burst corpus port_file retain =
    let config =
      {
        Xfd_serve.Serve.default_config with
        port;
        host;
        workers;
        queue_cap;
        quota_rate = quota;
        quota_burst;
        corpus_dir = corpus;
        retain;
      }
    in
    let t = Xfd_serve.Serve.start config in
    let bound = Xfd_serve.Serve.port t in
    Format.eprintf "serve: listening on http://%s:%d/ (POST /v1/jobs; %d workers)@." host
      bound workers;
    Option.iter
      (fun file ->
        let oc = open_out file in
        output_string oc (string_of_int bound);
        output_char oc '\n';
        close_out oc)
      port_file;
    let stop_requested = Atomic.make false in
    let on_signal _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    while not (Atomic.get stop_requested) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Format.eprintf "serve: draining (completing accepted jobs)...@.";
    Xfd_serve.Serve.stop ~drain:true t;
    Format.eprintf "serve: stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on detection service: submit jobs with $(b,xfd submit), poll \
          with $(b,xfd await) or plain HTTP.  SIGTERM/SIGINT drain gracefully: every \
          accepted job completes before exit.")
    Term.(
      const action $ port $ host $ workers $ queue_cap $ quota $ quota_burst $ corpus
      $ port_file $ retain)

let jstr_of key j =
  match Xfd_util.Json.member key j with Some (Xfd_util.Json.Str s) -> Some s | _ -> None

let fetch_report ~host ~port ~id file =
  match Xfd_pulse.Httpc.get ~host ~port ("/v1/jobs/" ^ id ^ "/report") with
  | Ok (200, body) ->
    let oc = open_out file in
    output_string oc body;
    close_out oc;
    Format.eprintf "report written to %s@." file;
    true
  | Ok (status, _) ->
    Printf.eprintf "report fetch failed: HTTP %d\n" status;
    false
  | Error e ->
    Printf.eprintf "report fetch failed: %s\n" e;
    false

(* Poll one job to completion.  Exit codes: 0 done, 1 failed, 2 transport
   error or timeout. *)
let await_job ~host ~port ~id ~timeout ~interval ~json ~report_out =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    match Xfd_pulse.Httpc.get ~host ~port ("/v1/jobs/" ^ id) with
    | Error e ->
      Printf.eprintf "await: %s\n" e;
      2
    | Ok (200, body) -> (
      match Xfd_util.Json.of_string body with
      | Error e ->
        Printf.eprintf "await: bad status JSON: %s\n" e;
        2
      | Ok j -> (
        match jstr_of "state" j with
        | Some (("done" | "failed") as state) ->
          if json then print_endline (Xfd_util.Json.to_string_pretty j)
          else begin
            match state with
            | "done" ->
              let result = Xfd_util.Json.member "result" j in
              let fp =
                Option.bind result (jstr_of "fingerprint")
                |> Option.value ~default:"?"
              in
              let bugs =
                match Option.bind result (Xfd_util.Json.member "unique_bugs") with
                | Some (Xfd_util.Json.Arr l) -> List.length l
                | _ -> 0
              in
              Printf.printf "%s done  bugs=%d  fingerprint=%s\n" id bugs fp
            | _ ->
              Printf.printf "%s failed: %s\n" id
                (Option.value (jstr_of "error" j) ~default:"unknown error")
          end;
          let report_ok =
            match report_out with
            | Some file when state = "done" -> fetch_report ~host ~port ~id file
            | _ -> true
          in
          if state = "done" then if report_ok then 0 else 2 else 1
        | _ ->
          if Unix.gettimeofday () > deadline then begin
            Printf.eprintf "await: timed out after %.1fs (job %s still %s)\n" timeout id
              (Option.value (jstr_of "state" j) ~default:"unknown");
            2
          end
          else begin
            Unix.sleepf interval;
            poll ()
          end))
    | Ok (status, body) ->
      Printf.eprintf "await: HTTP %d: %s\n" status (String.trim body);
      2
  in
  poll ()

let await_flags =
  let timeout =
    Arg.(
      value & opt float 300.0
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Give up waiting after $(docv) (default 300).")
  in
  let interval =
    Arg.(
      value & opt float 0.1
      & info [ "interval" ] ~docv:"SECS" ~doc:"Polling interval (default 0.1).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the final job status as JSON.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report-out" ] ~docv:"FILE"
          ~doc:"Fetch the forensics report once done and write it to $(docv).")
  in
  Term.(
    const (fun timeout interval json report_out -> (timeout, interval, json, report_out))
    $ timeout $ interval $ json $ report_out)

let submit_cmd =
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:(Printf.sprintf "Workload to submit (%s)." (String.concat ", " workload_names)))
  in
  let init =
    Arg.(value & opt int 0 & info [ "init" ] ~docv:"N" ~doc:"Warm-up insertions before the RoI.")
  in
  let test =
    Arg.(value & opt int 1 & info [ "test" ] ~docv:"N" ~doc:"Insertions/queries inside the RoI.")
  in
  let patch =
    Arg.(
      value
      & opt (some string) None
      & info [ "patch" ] ~docv:"SPEC" ~doc:"Seed mechanical bugs (same syntax as $(b,run --patch)).")
  in
  let program_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"FILE"
          ~doc:"Submit a $(b,.xfdprog) program file instead of a named workload.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("incremental", "incremental"); ("fresh", "fresh") ]) "incremental"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Detection engine for this job: $(b,incremental) (prefix-sharing, the \
             default) or $(b,fresh) (from-zero replay oracle).  Verdicts are \
             byte-identical either way.")
  in
  let client =
    Arg.(
      value & opt string ""
      & info [ "client" ] ~docv:"NAME"
          ~doc:"Client identity for quota accounting (sent as $(b,x-client)).")
  in
  let await = Arg.(value & flag & info [ "await" ] ~doc:"Wait for the verdict.") in
  let action connect workload init test patch program_file engine client await
      (timeout, interval, json, report_out) =
    match Xfd_pulse.Httpc.parse_endpoint connect with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok (host, port) ->
      let fields =
        match (workload, program_file) with
        | Some w, None ->
          [
            ("kind", Xfd_util.Json.Str "workload");
            ("workload", Xfd_util.Json.Str w);
            ("init", Xfd_util.Json.Int init);
            ("test", Xfd_util.Json.Int test);
          ]
          @ (match patch with Some p -> [ ("patch", Xfd_util.Json.Str p) ] | None -> [])
        | None, Some file ->
          let ic = open_in_bin file in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          [ ("kind", Xfd_util.Json.Str "xfdprog"); ("program", Xfd_util.Json.Str text) ]
        | _ ->
          prerr_endline "submit: need exactly one of --workload or --program";
          exit 2
      in
      let body =
        Xfd_util.Json.to_string
          (Xfd_util.Json.Obj (fields @ [ ("engine", Xfd_util.Json.Str engine) ]))
      in
      let headers = if client = "" then [] else [ ("x-client", client) ] in
      let code =
        match Xfd_pulse.Httpc.post ~headers ~body ~host ~port "/v1/jobs" with
        | Error e ->
          Printf.eprintf "submit: %s\n" e;
          2
        | Ok (202, _, resp) -> (
          match Result.bind (Xfd_util.Json.of_string resp) (fun j ->
                    Option.to_result ~none:"no id in response" (jstr_of "id" j))
          with
          | Error e ->
            Printf.eprintf "submit: bad response: %s\n" e;
            2
          | Ok id ->
            if await || report_out <> None then
              await_job ~host ~port ~id ~timeout ~interval ~json ~report_out
            else begin
              Printf.printf "%s accepted (poll with: xfd await --connect %s --job %s)\n" id
                connect id;
              0
            end)
        | Ok (status, headers, resp) ->
          let retry =
            match List.assoc_opt "retry-after" headers with
            | Some s -> Printf.sprintf " (retry after %ss)" s
            | None -> ""
          in
          Printf.eprintf "submit: HTTP %d%s: %s\n" status retry (String.trim resp);
          1
      in
      if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one detection job to a running $(b,xfd serve); optionally wait for the \
          verdict and fetch the forensics report.")
    Term.(
      const action $ connect_arg $ workload $ init $ test $ patch $ program_file $ engine
      $ client $ await $ await_flags)

let await_cmd =
  let job =
    Arg.(
      required
      & opt (some string) None
      & info [ "job" ] ~docv:"ID" ~doc:"Job id returned by $(b,xfd submit).")
  in
  let action connect job (timeout, interval, json, report_out) =
    match Xfd_pulse.Httpc.parse_endpoint connect with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok (host, port) ->
      let code = await_job ~host ~port ~id:job ~timeout ~interval ~json ~report_out in
      if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "await"
       ~doc:"Wait for a submitted job to finish and print (or fetch) its verdict.")
    Term.(const action $ connect_arg $ job $ await_flags)

let () =
  let doc = "XFDetector (OCaml reproduction): cross-failure bug detection for PM programs" in
  let info = Cmd.info "xfd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            list_cmd;
            newbugs_cmd;
            table5_cmd;
            lint_cmd;
            fuzz_cmd;
            top_cmd;
            serve_cmd;
            submit_cmd;
            await_cmd;
          ]))
