(* Offline trace tooling — the section 5.5 decoupling demonstrated.

   The backend "can be attached to other tracing frameworks": traces are
   plain one-line-per-event text, so they can be recorded here, produced by
   anything else, inspected, and checked offline.

     xfd_trace record -w btree --test 3 --pre pre.trace --post post.trace
     xfd_trace stats pre.trace
     xfd_trace dump pre.trace --head 20
     xfd_trace check --pre pre.trace --post post.trace

   [check] replays the recorded pre-failure trace into a fresh backend and
   the post-failure trace into a fork of it — the terminal-failure-point
   analysis, without any execution. *)

open Cmdliner

let load_trace path =
  let ic = open_in path in
  let t = Xfd_trace.Trace.load ic in
  close_in ic;
  t

let save_trace t path =
  let oc = open_out path in
  Xfd_trace.Trace.save t oc;
  close_out oc

let record_cmd =
  let workload =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME")
  in
  let test = Arg.(value & opt int 1 & info [ "test" ] ~docv:"N") in
  let pre_out =
    Arg.(value & opt string "pre.trace" & info [ "pre" ] ~docv:"FILE" ~doc:"Pre-failure trace output.")
  in
  let post_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "post" ] ~docv:"FILE" ~doc:"Also record one post-failure trace (run after the complete pre-failure stage).")
  in
  let action workload test pre_out post_out =
    let entry = Xfd_experiments.Workload_set.find workload in
    let program = entry.Xfd_experiments.Workload_set.make ~init:0 ~test in
    let dev = Xfd_mem.Pm_device.create () in
    let trace = Xfd_trace.Trace.create () in
    let ctx = Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Pre_failure ~dev ~trace () in
    program.Xfd.Engine.setup ctx;
    (match program.Xfd.Engine.pre ctx with
    | () -> ()
    | exception Xfd_sim.Ctx.Detection_complete -> ());
    save_trace trace pre_out;
    Printf.printf "recorded %d pre-failure events to %s\n" (Xfd_trace.Trace.length trace) pre_out;
    match post_out with
    | None -> ()
    | Some path ->
      let post_dev =
        Xfd_mem.Pm_device.boot (Xfd_mem.Pm_device.crash dev Xfd_mem.Pm_device.Full)
      in
      let post_trace = Xfd_trace.Trace.create () in
      let post_ctx =
        Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Post_failure ~dev:post_dev ~trace:post_trace ()
      in
      (match program.Xfd.Engine.post post_ctx with
      | () -> ()
      | exception Xfd_sim.Ctx.Detection_complete -> ());
      save_trace post_trace path;
      Printf.printf "recorded %d post-failure events to %s\n"
        (Xfd_trace.Trace.length post_trace) path
  in
  Cmd.v (Cmd.info "record" ~doc:"Trace a workload to files")
    Term.(const action $ workload $ test $ pre_out $ post_out)

let stats_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as one JSON object.")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Keep running and re-render whenever $(i,FILE) changes (polled by \
             mtime/size) — live view of a trace being recorded.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll interval for $(b,--watch).")
  in
  let watch_count =
    Arg.(
      value
      & opt (some int) None
      & info [ "watch-count" ] ~docv:"N"
          ~doc:"With $(b,--watch), exit after $(docv) renders (for scripting/tests).")
  in
  let render file json =
    let t = load_trace file in
    let c = Xfd_trace.Trace.counts t in
    (* Access-size distributions, through the same histogram machinery the
       online pipeline reports with. *)
    let h_writes = Xfd_obs.Obs.Histogram.make "trace.write_bytes" in
    let h_reads = Xfd_obs.Obs.Histogram.make "trace.read_bytes" in
    Xfd_trace.Trace.iter t (fun ev ->
        match ev.Xfd_trace.Event.kind with
        | Xfd_trace.Event.Write { size; _ } | Xfd_trace.Event.Nt_write { size; _ } ->
          Xfd_obs.Obs.Histogram.observe h_writes size
        | Xfd_trace.Event.Read { size; _ } -> Xfd_obs.Obs.Histogram.observe h_reads size
        | _ -> ());
    if json then begin
      let hist h =
        Xfd_util.Json.Obj
          [
            ("count", Xfd_util.Json.Int (Xfd_obs.Obs.Histogram.count h));
            ("sum", Xfd_util.Json.Int (Xfd_obs.Obs.Histogram.sum h));
            ("max", Xfd_util.Json.Int (Xfd_obs.Obs.Histogram.max_value h));
            ( "buckets",
              Xfd_util.Json.Arr
                (List.map
                   (fun (le, n) ->
                     Xfd_util.Json.Obj
                       [ ("le", Xfd_util.Json.Int le); ("count", Xfd_util.Json.Int n) ])
                   (Xfd_obs.Obs.Histogram.buckets h)) );
          ]
      in
      print_endline
        (Xfd_util.Json.to_string
           (Xfd_util.Json.Obj
              [
                ("type", Xfd_util.Json.Str "trace_stats");
                ("file", Xfd_util.Json.Str file);
                ("events", Xfd_util.Json.Int (Xfd_trace.Trace.length t));
                ("writes", Xfd_util.Json.Int c.Xfd_trace.Trace.writes);
                ("reads", Xfd_util.Json.Int c.Xfd_trace.Trace.reads);
                ("flushes", Xfd_util.Json.Int c.Xfd_trace.Trace.flushes);
                ("fences", Xfd_util.Json.Int c.Xfd_trace.Trace.fences);
                ("tx_ops", Xfd_util.Json.Int c.Xfd_trace.Trace.tx_ops);
                ("annotations", Xfd_util.Json.Int c.Xfd_trace.Trace.annotations);
                ("write_bytes", hist h_writes);
                ("read_bytes", hist h_reads);
              ]))
    end
    else begin
      Printf.printf "%s: %d events\n" file (Xfd_trace.Trace.length t);
      Printf.printf "  writes       %d\n" c.Xfd_trace.Trace.writes;
      Printf.printf "  reads        %d\n" c.Xfd_trace.Trace.reads;
      Printf.printf "  flushes      %d\n" c.Xfd_trace.Trace.flushes;
      Printf.printf "  fences       %d\n" c.Xfd_trace.Trace.fences;
      Printf.printf "  tx ops       %d\n" c.Xfd_trace.Trace.tx_ops;
      Printf.printf "  annotations  %d\n" c.Xfd_trace.Trace.annotations;
      let print_hist label h =
        if Xfd_obs.Obs.Histogram.count h > 0 then begin
          Printf.printf "  %s: count=%d sum=%d max=%d\n" label
            (Xfd_obs.Obs.Histogram.count h) (Xfd_obs.Obs.Histogram.sum h)
            (Xfd_obs.Obs.Histogram.max_value h);
          List.iter
            (fun (le, n) -> Printf.printf "    le %-8d %d\n" le n)
            (Xfd_obs.Obs.Histogram.buckets h)
        end
      in
      print_hist "write sizes" h_writes;
      print_hist "read sizes" h_reads
    end
  in
  let action file json watch interval watch_count =
    if not watch then render file json
    else begin
      (* Poll mtime/size on the pulse layer's shared ticker; re-render on
         change.  The access-size histograms are process-global Obs
         metrics, so they are reset before every render — otherwise each
         pass would accumulate on the last. *)
      let renders = ref 0 in
      let last = ref None in
      ignore
        (Xfd_pulse.Ticker.loop ~interval (fun _tick ->
             (match Unix.stat file with
             | exception Unix.Unix_error (e, _, _) ->
               Printf.printf "%s: %s (waiting)\n%!" file (Unix.error_message e)
             | st ->
               let key = Some (st.Unix.st_mtime, st.Unix.st_size) in
               if key <> !last then begin
                 last := key;
                 incr renders;
                 if not json then Printf.printf "\n-- render #%d --\n" !renders;
                 Xfd_obs.Obs.reset ();
                 (try render file json with Sys_error e -> Printf.printf "%s\n" e);
                 flush stdout
               end);
             match watch_count with
             | Some k when !renders >= k -> `Stop
             | _ -> `Continue))
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Event counts and access-size histograms of a trace file")
    Term.(const action $ file $ json $ watch $ interval $ watch_count)

let dump_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let head = Arg.(value & opt int max_int & info [ "head" ] ~docv:"N") in
  let range =
    Arg.(
      value
      & opt (some string) None
      & info [ "range" ] ~docv:"FROM:TO"
          ~doc:
            "Print only events $(i,FROM) to $(i,TO) (half-open, clamped to the \
             trace), rendered as a timeline.  Overrides $(b,--head).")
  in
  let parse_range s =
    match String.split_on_char ':' s with
    | [ a; b ] -> begin
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some from, Some upto when from >= 0 && upto >= from -> (from, upto)
      | _ -> failwith (Printf.sprintf "bad --range %S (want FROM:TO, 0 <= FROM <= TO)" s)
    end
    | _ -> failwith (Printf.sprintf "bad --range %S (want FROM:TO)" s)
  in
  let action file head range =
    let t = load_trace file in
    match range with
    | Some spec ->
      let from, upto = parse_range spec in
      List.iter print_endline (Xfd_forensics.Timeline.range t ~from ~upto ~marks:[])
    | None ->
      Xfd_trace.Trace.iter_prefix t head (fun ev ->
          Format.printf "%a@." Xfd_trace.Event.pp ev)
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Pretty-print a trace file")
    Term.(const action $ file $ head $ range)

let explain_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let at =
    Arg.(
      required
      & opt (some int) None
      & info [ "at" ] ~docv:"INDEX" ~doc:"Event index to explain.")
  in
  let radius =
    Arg.(
      value
      & opt int Xfd_forensics.Timeline.default_radius
      & info [ "radius" ] ~docv:"N" ~doc:"Context events on each side.")
  in
  let action file at radius =
    let t = load_trace file in
    let len = Xfd_trace.Trace.length t in
    if at < 0 || at >= len then begin
      Printf.eprintf "index %d out of range (trace has %d events)\n" at len;
      exit 2
    end;
    let ev = Xfd_trace.Trace.get t at in
    Format.printf "%s: event %d of %d@." file at len;
    (* For a store, chase its persistence through the rest of the trace:
       which later flush captured the line, and which fence persisted it —
       the manual walk a provenance chain automates. *)
    (match ev.Xfd_trace.Event.kind with
    | Xfd_trace.Event.Write { addr; size } | Xfd_trace.Event.Nt_write { addr; size } ->
      let line = Xfd_mem.Addr.line_of addr in
      let nt =
        match ev.Xfd_trace.Event.kind with Xfd_trace.Event.Nt_write _ -> true | _ -> false
      in
      let flush_at = ref (if nt then Some at else None) in
      let fence_at = ref None in
      (try
         for i = at + 1 to len - 1 do
           let e = Xfd_trace.Trace.get t i in
           match e.Xfd_trace.Event.kind with
           | Xfd_trace.Event.Clwb { addr = a }
           | Xfd_trace.Event.Clflush { addr = a }
           | Xfd_trace.Event.Clflushopt { addr = a } ->
             if !flush_at = None && Xfd_mem.Addr.line_of a = line then flush_at := Some i
           | Xfd_trace.Event.Sfence | Xfd_trace.Event.Mfence ->
             if !flush_at <> None then begin
               fence_at := Some i;
               raise Exit
             end
           | Xfd_trace.Event.Write { addr = a; size = s }
           | Xfd_trace.Event.Nt_write { addr = a; size = s } ->
             (* Overwritten before being written back: stop the chase. *)
             if !flush_at = None && Xfd_mem.Addr.overlap (a, s) (addr, size) then raise Exit
           | _ -> ()
         done
       with Exit -> ());
      (match (!flush_at, !fence_at) with
      | None, _ ->
        Format.printf "store to %a+%d: never written back in this trace@."
          Xfd_mem.Addr.pp addr size
      | Some f, None ->
        Format.printf
          "store to %a+%d: written back at event %d but no later fence — not \
           guaranteed persisted@."
          Xfd_mem.Addr.pp addr size f
      | Some f, Some s ->
        if nt && f = at then
          Format.printf "store to %a+%d: non-temporal, persisted by fence at event %d@."
            Xfd_mem.Addr.pp addr size s
        else
          Format.printf
            "store to %a+%d: written back at event %d, persisted by fence at event %d@."
            Xfd_mem.Addr.pp addr size f s)
    | _ -> ());
    Format.printf "timeline:@.";
    List.iter
      (fun (e : Xfd_forensics.Timeline.excerpt) ->
        List.iter (fun l -> Format.printf "  %s@." l) e.Xfd_forensics.Timeline.lines)
      (Xfd_forensics.Timeline.excerpts t ~indices:[ at ] ~radius)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the timeline around one event; for stores, chase the writeback and \
          fence that (fail to) persist them")
    Term.(const action $ file $ at $ radius)

let lint_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the lint report as one JSON object.")
  in
  let fail_on_finding =
    Arg.(
      value & flag
      & info [ "fail-on-finding" ]
          ~doc:
            "Deprecated: findings exit 1 by default now; the flag is accepted and \
             ignored.")
  in
  let domain =
    Arg.(
      value & opt string "adr"
      & info [ "domain" ] ~docv:"MODEL"
          ~doc:
            "Persistence-domain model to lint under: $(b,adr) (default), $(b,eadr) or \
             $(b,cxl-gpf).")
  in
  let diff_domains =
    Arg.(
      value & flag
      & info [ "diff-domains" ]
          ~doc:
            "Lint the trace under every domain model and classify each finding key as \
             stable / appears / disappears relative to the $(b,--domain) baseline.")
  in
  let action file json _fail_on_finding domain diff_domains =
    let domain =
      match Xfd_trace.Domain_model.of_string domain with
      | Some d -> d
      | None ->
        Printf.eprintf "unknown persistence-domain model %S (want adr|eadr|cxl-gpf)\n"
          domain;
        exit 2
    in
    let t =
      try load_trace file
      with Sys_error e ->
        Printf.eprintf "cannot read trace: %s\n" e;
        exit 2
    in
    (* Exit contract (shared with xfd_cli lint): 0 = clean, 1 = findings,
       2 = usage/IO error. *)
    if diff_domains then begin
      let d = Xfd_lint.Lint.diff_domains ~baseline:domain t in
      if json then
        print_endline (Xfd_util.Json.to_string (Xfd_lint.Lint.diff_to_json d))
      else Format.printf "%s: %a@." file Xfd_lint.Lint.pp_diff d;
      if not (Xfd_lint.Lint.diff_clean d) then exit 1
    end
    else begin
      let report = Xfd_lint.Lint.check_trace ~domain t in
      if json then
        print_endline (Xfd_util.Json.to_string (Xfd_lint.Lint.report_to_json report))
      else Format.printf "%s: %a@." file Xfd_lint.Lint.pp_report report;
      if not (Xfd_lint.Lint.clean report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a recorded pre-failure trace for crash-consistency rule \
          violations — no execution, no replay. Exits 0 when clean, 1 on findings, 2 \
          on usage or IO errors.")
    Term.(const action $ file $ json $ fail_on_finding $ domain $ diff_domains)

let check_cmd =
  let pre = Arg.(required & opt (some string) None & info [ "pre" ] ~docv:"FILE") in
  let post = Arg.(required & opt (some string) None & info [ "post" ] ~docv:"FILE") in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ] ~doc:"Attach a provenance chain to every finding.")
  in
  let action pre post explain =
    let pre_t = load_trace pre and post_t = load_trace post in
    let det = Xfd.Detector.create ~forensics:explain () in
    Xfd.Detector.replay det pre_t ~from:0 ~upto:(Xfd_trace.Trace.length pre_t);
    let fork = Xfd.Detector.fork_for_post det in
    Xfd.Detector.replay fork post_t ~from:0 ~upto:(Xfd_trace.Trace.length post_t);
    let bugs = Xfd.Detector.bugs fork @ Xfd.Detector.bugs det in
    Printf.printf "offline check (%d pre + %d post events): %d finding(s)\n"
      (Xfd_trace.Trace.length pre_t) (Xfd_trace.Trace.length post_t) (List.length bugs);
    List.iter
      (fun b ->
        if explain then Format.printf "  %a" Xfd.Report.pp_bug_explained b
        else Format.printf "  %a@." Xfd.Report.pp_bug b)
      bugs;
    if bugs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the detection backend over recorded traces")
    Term.(const action $ pre $ post $ explain)

let () =
  let info =
    Cmd.info "xfd_trace" ~version:"1.0.0"
      ~doc:"Record, inspect and offline-check XFDetector PM-operation traces"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ record_cmd; stats_cmd; dump_cmd; explain_cmd; lint_cmd; check_cmd ]))
