(* Bug hunting on the low-level hashmap: the paper's two real
   Hashmap-Atomic bugs plus a sweep of seeded faults.

     dune exec examples/hashmap_bughunt.exe

   Part 1 runs the faithful PMDK-style creation path and finds Bug 1
   (metadata written without persistence guarantee) and Bug 2 (reading a
   never-initialised field of a raw allocation).  Part 2 shows the
   mechanical fault-seeding workflow used for the Table 5 validation:
   skip the n-th user-level flush and watch the race appear. *)

let () =
  print_endline "Part 1: the faithful hashmap-atomic creation path (Bugs 1 and 2)";
  print_endline "------------------------------------------------------------------";
  let config = { Xfd.Config.default with forensics = true } in
  let outcome =
    Xfd.Engine.detect ~config
      (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ())
  in
  (* With forensics on, each bug explains itself: which write, which (if
     any) writeback and fence, and the read that tripped the check. *)
  List.iter
    (fun b -> Format.printf "%a@." Xfd.Report.pp_bug_explained b)
    outcome.Xfd.Engine.unique_bugs;
  let uninit =
    List.exists
      (function Xfd.Report.Race r -> r.Xfd.Report.uninit | _ -> false)
      outcome.Xfd.Engine.unique_bugs
  in
  Printf.printf "\nBug 2's uninitialised-count signature present: %b\n\n" uninit;

  print_endline "Part 2: seeding faults into the *fixed* implementation";
  print_endline "------------------------------------------------------";
  List.iter
    (fun occurrence ->
      let faults = Xfd_sim.Faults.make ~skip_flush:[ occurrence ] () in
      let config = { Xfd.Config.default with faults } in
      let o =
        Xfd.Engine.detect ~config
          (Xfd_workloads.Hashmap_atomic.program ~size:3 ~variant:`Fixed ())
      in
      let races, semantics, _, _ = Xfd.Engine.tally o in
      Printf.printf "skip user-level flush #%-2d -> races=%d semantic=%d\n" occurrence races
        semantics)
    [ 1; 5; 10; 15 ];

  print_endline "\nEach skipped persist surfaces as a cross-failure race at some failure point.";
  if not uninit then exit 1
