(* Quickstart: detect the paper's Figure 2 bug in three lines, then show
   that the fixed program comes back clean.

     dune exec examples/quickstart.exe

   The workload is a persistent array updated under a backup/valid-flag
   protocol.  The buggy variant writes the wrong values to the flag, so
   recovery either skips a rollback it needed (cross-failure race) or rolls
   back from a stale backup (cross-failure semantic bug). *)

(* Optional file outputs, so CI can archive what a run produced:
     quickstart.exe [--metrics-out FILE.jsonl] [--report-out FILE.json]
                    [--trace-out FILE.json]
   --trace-out exports every span of the session as Chrome trace-event
   JSON — drop it on ui.perfetto.dev to see the pipeline timeline. *)
let file_arg flag =
  let rec go = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  print_endline "XFDetector quickstart: the paper's Figure 2 example";
  print_endline "---------------------------------------------------";

  let sink = Option.map Xfd_obs.Obs.Sink.to_file (file_arg "--metrics-out") in
  Option.iter Xfd_obs.Obs.Sink.install sink;
  let collector =
    Option.map
      (fun path -> (path, Xfd_flight.Perfetto.Collector.start ()))
      (file_arg "--trace-out")
  in

  (* 1. Build the program under test (buggy variant). *)
  let buggy = Xfd_workloads.Array_update.program ~size:1 () in

  (* 2. Run cross-failure detection: inject a failure before every ordering
        point, run recovery + resumption from each, check all reads.
        Forensics on: every bug will carry its provenance chain. *)
  let config = { Xfd.Config.default with forensics = true } in
  let outcome = Xfd.Engine.detect ~config buggy in

  (* 3. Read the report. *)
  Format.printf "%a@." Xfd.Engine.pp_outcome outcome;

  (* The fixed variant of the same code is clean. *)
  let fixed = Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true () in
  Format.printf "%a@." Xfd.Engine.pp_outcome (Xfd.Engine.detect fixed);

  let races, semantics, _, _ = Xfd.Engine.tally outcome in
  if races >= 1 && semantics >= 1 then
    print_endline "OK: the buggy variant shows both a cross-failure race and a semantic bug."
  else begin
    print_endline "UNEXPECTED: detection did not reproduce the Figure 2 bugs.";
    exit 1
  end;

  (* 4. Forensics: ask any bug why it was reported.  The chain names the
        pre-failure write, the writeback/fence that did (not) persist it,
        the commit writes framing the Eq. 3 window for semantic bugs, and
        the post-failure read — with timeline excerpts around each. *)
  print_endline "Forensics: why each bug was reported";
  print_endline "------------------------------------";
  List.iter
    (fun b -> Format.printf "%a" Xfd.Report.pp_bug_explained b)
    outcome.Xfd.Engine.unique_bugs;
  Format.printf "@.%a" Xfd_forensics.Coverage.pp outcome.Xfd.Engine.coverage;

  (* 4b. Static analysis: the linter analyses one traced execution with
         zero post-failure replays — eight rules over the per-byte
         persistence lattice.  Figure 2 is the instructive case: the bug
         writes the *wrong values* through a perfectly persisted flag
         protocol, so the linter (like PMTest) finds nothing — which is
         exactly why lint findings only prioritize failure points and
         never prune them (DESIGN.md, decision 13). *)
  print_endline "Static lint: the same program, zero replays";
  print_endline "-------------------------------------------";
  let lint = Xfd_lint.Lint.check_prog (Xfd_workloads.Array_update.program ~size:1 ()) in
  Format.printf "%a@." Xfd_lint.Lint.pp_report lint;
  if Xfd_lint.Lint.clean lint then
    print_endline
      "lint-clean, yet dynamically buggy: a semantic bug leaves no static \
       ordering evidence.";

  (* Optional machine-readable report for CI artifacts. *)
  Option.iter
    (fun file ->
      let report =
        Xfd_util.Json.Obj
          [
            ("type", Xfd_util.Json.Str "xfd_report");
            ("schema_version", Xfd_util.Json.Int 1);
            ("report", Xfd.Engine.outcome_to_json outcome);
          ]
      in
      let oc = open_out file in
      output_string oc (Xfd_util.Json.to_string_pretty report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "report written to %s\n" file)
    (file_arg "--report-out");

  (* 5. Telemetry: everything the two runs did — events traced, snapshots
        taken, failure points fired vs elided, bugs by class, time per
        phase — was recorded by the observability layer as it went. *)
  Format.printf "@.%a@." Xfd_obs.Obs.pp_summary ();
  Option.iter
    (fun (path, c) ->
      let n = Xfd_flight.Perfetto.Collector.stop_to_file c path in
      Printf.printf "trace written to %s (%d slices)\n" path n)
    collector;
  Option.iter
    (fun s ->
      Xfd_obs.Obs.write_summary ();
      Xfd_obs.Obs.Sink.uninstall s)
    sink
