(* Quickstart: detect the paper's Figure 2 bug in three lines, then show
   that the fixed program comes back clean.

     dune exec examples/quickstart.exe

   The workload is a persistent array updated under a backup/valid-flag
   protocol.  The buggy variant writes the wrong values to the flag, so
   recovery either skips a rollback it needed (cross-failure race) or rolls
   back from a stale backup (cross-failure semantic bug). *)

let () =
  print_endline "XFDetector quickstart: the paper's Figure 2 example";
  print_endline "---------------------------------------------------";

  (* 1. Build the program under test (buggy variant). *)
  let buggy = Xfd_workloads.Array_update.program ~size:1 () in

  (* 2. Run cross-failure detection: inject a failure before every ordering
        point, run recovery + resumption from each, check all reads. *)
  let outcome = Xfd.Engine.detect buggy in

  (* 3. Read the report. *)
  Format.printf "%a@." Xfd.Engine.pp_outcome outcome;

  (* The fixed variant of the same code is clean. *)
  let fixed = Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true () in
  Format.printf "%a@." Xfd.Engine.pp_outcome (Xfd.Engine.detect fixed);

  let races, semantics, _, _ = Xfd.Engine.tally outcome in
  if races >= 1 && semantics >= 1 then
    print_endline "OK: the buggy variant shows both a cross-failure race and a semantic bug."
  else begin
    print_endline "UNEXPECTED: detection did not reproduce the Figure 2 bugs.";
    exit 1
  end;

  (* 4. Telemetry: everything the two runs did — events traced, snapshots
        taken, failure points fired vs elided, bugs by class, time per
        phase — was recorded by the observability layer as it went. *)
  Format.printf "@.%a@." Xfd_obs.Obs.pp_summary ()
