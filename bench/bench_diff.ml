(* Compare two BENCH_*.json perf snapshots and gate on regressions.

   Usage: bench_diff.exe BASELINE CURRENT [--tol-bytes F] [--tol-wall F]
                                          [--tol-rate F] [--json]

   Exit status: 0 when no metric regressed (improvements are fine),
   1 when at least one gated metric regressed, 2 on a structural
   mismatch (the files do not describe the same experiment) or usage
   error, 3 when an input file is missing or not JSON — distinct so CI
   can tell "the baseline was never produced" from "the files disagree".
   Tolerances are fractions: "--tol-bytes 0.25" allows +25%.
   Wall and rate metrics are reported but only gated when their
   tolerance is given explicitly — wall time is machine-dependent, so a
   committed baseline says nothing absolute about CI hardware. *)

module Bdiff = Xfd_flight.Bdiff
module Json = Xfd_util.Json

let usage () =
  prerr_endline
    "usage: bench_diff.exe BASELINE CURRENT [--tol-bytes F] [--tol-wall F] [--tol-rate F] \
     [--json]";
  exit 2

(* Exit 3, not 2: a missing or unparseable snapshot usually means the
   producing bench step never ran (or died mid-write), which wants a
   different remedy than two well-formed files that disagree. *)
let read_json path =
  match In_channel.with_open_bin path In_channel.input_all |> Json.of_string with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "bench_diff: cannot read baseline/current: %s is not JSON: %s\n" path e;
    exit 3
  | exception Sys_error e ->
    Printf.eprintf "bench_diff: cannot read baseline/current: %s\n" e;
    exit 3

let () =
  let rec parse (files, tol, json_out) = function
    | [] -> (List.rev files, tol, json_out)
    | "--json" :: rest -> parse (files, tol, true) rest
    | "--tol-bytes" :: v :: rest ->
      parse (files, { tol with Bdiff.bytes = float_of_string v }, json_out) rest
    | "--tol-wall" :: v :: rest ->
      parse (files, { tol with Bdiff.wall = Some (float_of_string v) }, json_out) rest
    | "--tol-rate" :: v :: rest ->
      parse (files, { tol with Bdiff.rate = Some (float_of_string v) }, json_out) rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' -> parse (a :: files, tol, json_out) rest
    | _ -> usage ()
  in
  let files, tol, json_out =
    match
      parse ([], Bdiff.default_tolerances, false) (List.tl (Array.to_list Sys.argv))
    with
    | v -> v
    | exception Failure _ -> usage ()
  in
  let baseline_path, current_path =
    match files with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let baseline = read_json baseline_path and current = read_json current_path in
  match Bdiff.diff ~tol ~baseline ~current () with
  | Error why ->
    Printf.eprintf "bench_diff: structural mismatch: %s\n" why;
    exit 2
  | Ok items ->
    let regressed = Bdiff.regressions items in
    if json_out then
      print_endline
        (Json.to_string_pretty
           (Json.Obj
              [
                ("type", Json.Str "bench_diff");
                ("baseline", Json.Str baseline_path);
                ("current", Json.Str current_path);
                ("regressions", Json.Int (List.length regressed));
                ("items", Json.Arr (List.map Bdiff.item_to_json items));
              ]))
    else begin
      Printf.printf "bench_diff: %s vs %s — %d metrics, %d regressed\n" baseline_path
        current_path (List.length items) (List.length regressed);
      List.iter (fun i -> Format.printf "%a@." Bdiff.pp_item i) items
    end;
    exit (if regressed = [] then 0 else 1)
