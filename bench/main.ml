(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) plus the design ablation, then runs bechamel
   microbenchmarks of the detector's hot paths (experiment E8).

   Usage: main.exe [fig12a|fig12b|fig13|table4|table5|newbugs|capability|
                    ablation|mechanisms|mtsweep|parallel|snapshots|detect|
                    micro|all]                 (default: all, fast sizes)
          main.exe --full        (paper-scale figure 13 sweep: 1..50 txns)
          main.exe EXPERIMENT --metrics-out telemetry.jsonl
                                 (stream spans + a summary record as JSONL)
          main.exe EXPERIMENT --trace-out trace.json
                                 (Chrome trace-event export of all spans;
                                  open in ui.perfetto.dev)

   "snapshots" and "detect" additionally write BENCH_snapshots.json /
   BENCH_detect.json; bench_diff.exe compares them against the committed
   baselines.

   --pulse-port PORT [--pulse-interval S] serves the live pulse endpoint
   (/metrics, /health, /series, ...) for the duration of the run, with a
   background sampler feeding the time-series window — long sweeps like
   "all --full" can be watched with `xfd_cli top --connect`. *)

module E = Xfd_experiments

let run_fig12 () =
  let rows = E.Fig12.run ~init:0 ~test:1 () in
  E.Fig12.print_a rows;
  E.Fig12.print_b rows

let run_fig13 ~full () =
  let sizes = if full then E.Fig13.default_sizes else [ 1; 5; 10; 15; 20 ] in
  E.Fig13.print (E.Fig13.run ~sizes ())

let run_table4 () = E.Table4_exp.print (E.Table4_exp.run ())

let run_table5 () =
  let rows = E.Table5_exp.run () in
  E.Table5_exp.print rows;
  Printf.printf "all injected bugs detected: %b\n" (E.Table5_exp.all_detected rows)

let run_newbugs () =
  let findings = E.Newbugs_exp.run () in
  E.Newbugs_exp.print findings;
  Printf.printf "\nall four bugs reproduced with clean controls: %b\n"
    (E.Newbugs_exp.all_found findings)

let run_capability () = E.Capability.print (E.Capability.run ())
let run_ablation () = E.Ablation.print (E.Ablation.run ())

let run_parallel () = E.Parallel_exp.print (E.Parallel_exp.run ())
let run_mtsweep () = E.Mt_sweep.print (E.Mt_sweep.run ())

let run_mechanisms () =
  let rows = E.Mechanisms_exp.run () in
  E.Mechanisms_exp.print rows;
  Printf.printf "all mechanism verdicts as expected: %b\n" (E.Mechanisms_exp.all_ok rows)

(* ---- deep-copy vs CoW snapshotting (the O(delta) representation) ----

   Replicates the engine's snapshot pattern at growing image sizes: F
   failure points, each preceded by a small persisted delta, every snapshot
   held until the end (the legacy lifetime).  The deep baseline copies both
   images eagerly per point — O(F x image) time and peak memory; CoW shares
   chunks and copies only the cache-state delta, so both columns should
   stay flat as the image grows.  Results go to BENCH_snapshots.json so
   later changes have a perf trajectory to compare against. *)

let snapshot_bench_out = "BENCH_snapshots.json"

let run_snapshot_bench () =
  let module Device = Xfd_mem.Pm_device in
  let module Image = Xfd_mem.Image in
  let base = Xfd_mem.Addr.pool_base in
  let points = 32 in
  let counter name = Option.value ~default:0 (Xfd_obs.Obs.counter_value name) in
  let measure ~chunks ~snapf =
    let dev = Device.create () in
    for i = 0 to chunks - 1 do
      Device.store_i64 dev (base + (i * Image.chunk_size)) (Int64.of_int i);
      Device.clwb dev (base + (i * Image.chunk_size))
    done;
    Device.sfence dev;
    Image.reset_peak ();
    let live0 = Image.live_bytes () in
    let copied0 = counter "pm.snapshot_bytes" in
    let t0 = Unix.gettimeofday () in
    let snaps = ref [] in
    for p = 0 to points - 1 do
      (* the delta an ordering point typically leaves: one persisted line *)
      Device.store_i64 dev (base + (p * 64)) (Int64.of_int (p + 1));
      Device.clwb dev (base + (p * 64));
      Device.sfence dev;
      snaps := snapf dev :: !snaps
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let peak = Image.peak_bytes () - live0 in
    let copied = counter "pm.snapshot_bytes" - copied0 in
    List.iter Device.release !snaps;
    Device.release dev;
    (wall, peak, copied)
  in
  let sizes = [ 16; 64; 256; 1024 ] in
  Printf.printf "\n== Snapshotting: deep-copy baseline vs CoW (%d failure points) ==\n" points;
  Printf.printf "%-12s %28s   %28s\n" "" "deep copy" "copy-on-write";
  Printf.printf "%-12s %9s %9s %8s   %9s %9s %8s\n" "image" "wall" "peak" "copied" "wall"
    "peak" "copied";
  let rows =
    List.map
      (fun chunks ->
        let dw, dp, dc = measure ~chunks ~snapf:Device.deep_snapshot in
        let cw, cp, cc = measure ~chunks ~snapf:Device.snapshot in
        let kib b = Printf.sprintf "%dK" (b / 1024) in
        Printf.printf "%-12s %8.2fms %9s %8s   %8.2fms %9s %8s\n"
          (kib (chunks * Image.chunk_size))
          (1000.0 *. dw) (kib dp) (kib dc) (1000.0 *. cw) (kib cp) (kib cc);
        let open Xfd_util.Json in
        Obj
          [
            ("image_bytes", Int (chunks * Image.chunk_size));
            ( "deep",
              Obj [ ("wall_s", Float dw); ("peak_bytes", Int dp); ("snapshot_bytes", Int dc) ]
            );
            ( "cow",
              Obj [ ("wall_s", Float cw); ("peak_bytes", Int cp); ("snapshot_bytes", Int cc) ]
            );
          ])
      sizes
  in
  let json =
    Xfd_util.Json.Obj
      [
        ("type", Xfd_util.Json.Str "BENCH_snapshots");
        ("schema_version", Xfd_util.Json.Int 1);
        ("failure_points", Xfd_util.Json.Int points);
        ("rows", Xfd_util.Json.Arr rows);
      ]
  in
  let oc = open_out snapshot_bench_out in
  output_string oc (Xfd_util.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(written to %s)\n" snapshot_bench_out

(* ---- end-to-end detection perf snapshot: incremental vs fresh ----

   Runs the full pipeline over the table-5 microbenchmark workloads at a
   small fixed size plus one Fig. 12-style multi-failure-point row, once
   per engine (the incremental prefix-sharing scheduler and the
   fresh-replay oracle), and writes BENCH_detect.json: the behavioral
   fingerprint (failure points, event counts, unique bugs, pre-failure
   events replayed — all deterministic) and the perf trajectory per
   engine (wall, peak image bytes, points/s).  The engines must agree on
   the fingerprint; the bench aborts if they diverge, so the baseline
   doubles as an equivalence check.  bench_diff.exe compares two such
   files with per-class tolerances; CI additionally gates the
   incremental/fresh wall-clock speedup and replay fraction computed
   from the engine sub-objects — both engines run on the same host, so
   those ratios are machine-independent.

   "detect --engine incremental|fresh" measures one engine only (table
   output, no JSON: the baseline schema wants both sub-objects). *)

let detect_bench_out = "BENCH_detect.json"

let detect_workloads () =
  List.map (fun (e : E.Workload_set.entry) -> (e.name, e, 2, 3)) E.Workload_set.micro
  @ [
      (* Fig. 12-style row: a long pre-failure trace with many failure
         points, where O(F x prefix) fresh replay dominates and prefix
         sharing pays off.  CI's speedup gate reads this row. *)
      ("Hashmap-Atomic-fig12", E.Workload_set.find "Hashmap-Atomic", 4, 16);
    ]

let engine_name = function `Incremental -> "incremental" | `Fresh -> "fresh"

(* ---- static lint throughput, per persistence-domain model ----

   One row per workload x domain model: trace the workload once per
   model (Lint.check_prog) and report analysed events, findings by
   severity and events/s.  The finding counts are deterministic and
   Exact-gated by bench_diff; wall and rate carry the report-only
   "_s"/"_per_sec" suffix classes. *)

let lint_bench_rows () =
  let open Xfd_util.Json in
  let models = Xfd_trace.Domain_model.all in
  Printf.printf "\n== Static lint throughput per persistence-domain model ==\n";
  Printf.printf "%-18s %-8s %8s %6s %5s %5s %5s %9s %12s\n" "workload" "domain" "events"
    "finds" "err" "warn" "perf" "wall" "events/s";
  List.concat_map
    (fun (name, (e : E.Workload_set.entry), init, test) ->
      let program = e.make ~init ~test in
      List.map
        (fun domain ->
          let config = { Xfd.Config.default with Xfd.Config.domain } in
          ignore (Xfd_lint.Lint.check_prog ~config program);
          (* measured run *)
          let t0 = Unix.gettimeofday () in
          let r = Xfd_lint.Lint.check_prog ~config program in
          let wall = Unix.gettimeofday () -. t0 in
          let eps = if wall > 0.0 then float_of_int r.Xfd_lint.Lint.events /. wall else 0.0 in
          Printf.printf "%-18s %-8s %8d %6d %5d %5d %5d %7.2fms %12.0f\n" name
            (Xfd_trace.Domain_model.to_string domain)
            r.Xfd_lint.Lint.events
            (List.length r.Xfd_lint.Lint.findings)
            r.Xfd_lint.Lint.errors r.Xfd_lint.Lint.warnings r.Xfd_lint.Lint.perf
            (1000.0 *. wall) eps;
          Obj
            [
              ("workload", Str name);
              ("domain", Str (Xfd_trace.Domain_model.to_string domain));
              ("events", Int r.Xfd_lint.Lint.events);
              ("findings", Int (List.length r.Xfd_lint.Lint.findings));
              ("errors", Int r.Xfd_lint.Lint.errors);
              ("warnings", Int r.Xfd_lint.Lint.warnings);
              ("perf", Int r.Xfd_lint.Lint.perf);
              ("wall_s", Float wall);
              ("events_per_sec", Float eps);
            ])
        models)
    (detect_workloads ())

let run_lint_bench () = ignore (lint_bench_rows ())

let run_detect_bench ?engine_filter () =
  let open Xfd_util.Json in
  let counter name = Option.value ~default:0 (Xfd_obs.Obs.counter_value name) in
  let engines =
    match engine_filter with Some e -> [ e ] | None -> [ `Incremental; `Fresh ]
  in
  let measure engine program =
    let config = { Xfd.Config.default with Xfd.Config.engine } in
    ignore (Xfd.Engine.detect ~config program);
    (* measured run *)
    Xfd_mem.Image.reset_peak ();
    let replayed0 = counter "engine.pre_replay_events" in
    let t0 = Unix.gettimeofday () in
    let outcome = Xfd.Engine.detect ~config program in
    let wall = Unix.gettimeofday () -. t0 in
    let replayed = counter "engine.pre_replay_events" - replayed0 in
    let peak =
      match Xfd_obs.Obs.gauge_value "engine.peak_image_bytes" with
      | Some v -> int_of_float v
      | None -> 0
    in
    (outcome, wall, peak, replayed)
  in
  let fingerprint (o : Xfd.Engine.outcome) =
    ( o.failure_points,
      o.pre_events,
      o.post_events,
      List.sort compare (List.map Xfd.Report.dedup_key o.unique_bugs) )
  in
  Printf.printf "\n== End-to-end detection: incremental vs fresh-replay engine ==\n";
  Printf.printf "%-18s %-11s %7s %7s %8s %5s %9s %10s %9s %11s %8s\n" "workload" "engine"
    "points" "pre_ev" "post_ev" "bugs" "replayed" "peak" "wall" "points/s" "speedup";
  let rows =
    List.map
      (fun (name, (e : E.Workload_set.entry), init, test) ->
        let program = e.make ~init ~test in
        let runs = List.map (fun eng -> (eng, measure eng program)) engines in
        (match runs with
        | (_, (a, _, _, _)) :: rest ->
          List.iter
            (fun (eng, ((b : Xfd.Engine.outcome), _, _, _)) ->
              if fingerprint a <> fingerprint b then begin
                Printf.eprintf
                  "bench: engine verdicts diverge on %s (%s vs %s) — refusing to write a \
                   baseline\n"
                  name
                  (engine_name (fst (List.hd runs)))
                  (engine_name eng);
                exit 1
              end)
            rest
        | [] -> ());
        let fresh_wall =
          List.assoc_opt `Fresh runs |> Option.map (fun (_, w, _, _) -> w)
        in
        List.iter
          (fun (eng, ((o : Xfd.Engine.outcome), wall, peak, replayed)) ->
            let pps = if wall > 0.0 then float_of_int o.failure_points /. wall else 0.0 in
            let speedup =
              match (eng, fresh_wall) with
              | `Incremental, Some fw when wall > 0.0 ->
                Printf.sprintf "%6.1fx" (fw /. wall)
              | _ -> ""
            in
            Printf.printf "%-18s %-11s %7d %7d %8d %5d %9d %9dK %7.2fms %11.0f %8s\n" name
              (engine_name eng) o.failure_points o.pre_events o.post_events
              (List.length o.unique_bugs) replayed (peak / 1024) (1000.0 *. wall) pps
              speedup)
          runs;
        let engine_obj (_, wall, peak, replayed) pps =
          Obj
            [
              ("pre_replay_events", Int replayed);
              ("peak_image_bytes", Int peak);
              ("wall_s", Float wall);
              ("points_per_sec", Float pps);
            ]
        in
        let (o : Xfd.Engine.outcome), _, _, _ = snd (List.hd runs) in
        Obj
          ([
             ("workload", Str name);
             ("init_size", Int init);
             ("test_size", Int test);
             ("failure_points", Int o.failure_points);
             ("pre_events", Int o.pre_events);
             ("post_events", Int o.post_events);
             ("unique_bugs", Int (List.length o.unique_bugs));
           ]
          @ List.map
              (fun (eng, ((o : Xfd.Engine.outcome), wall, _, _ as m)) ->
                let pps =
                  if wall > 0.0 then float_of_int o.failure_points /. wall else 0.0
                in
                (engine_name eng, engine_obj m pps))
              runs))
      (detect_workloads ())
  in
  match engine_filter with
  | Some e ->
    Printf.printf "(single-engine run: %s; baseline %s not written)\n" (engine_name e)
      detect_bench_out
  | None ->
    let json =
      Obj
        [
          ("type", Str "BENCH_detect");
          ("schema_version", Int 3);
          ("rows", Arr rows);
          ("lint", Arr (lint_bench_rows ()));
        ]
    in
    let oc = open_out detect_bench_out in
    output_string oc (Xfd_util.Json.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(written to %s)\n" detect_bench_out

(* ---- bechamel microbenchmarks of the hot paths ---- *)

let microbenches () =
  let open Bechamel in
  let l = Xfd_util.Loc.unknown in
  let base = Xfd_mem.Addr.pool_base in
  (* Pre-built inputs so the benchmarks measure only the operation. *)
  let mk_trace n =
    let t = Xfd_trace.Trace.create () in
    ignore (Xfd_trace.Trace.append t ~kind:Xfd_trace.Event.Roi_begin ~loc:l);
    for i = 0 to n - 1 do
      let addr = base + (64 * (i mod 64)) in
      ignore (Xfd_trace.Trace.append t ~kind:(Xfd_trace.Event.Write { addr; size = 8 }) ~loc:l);
      ignore (Xfd_trace.Trace.append t ~kind:(Xfd_trace.Event.Clwb { addr }) ~loc:l);
      ignore (Xfd_trace.Trace.append t ~kind:Xfd_trace.Event.Sfence ~loc:l)
    done;
    t
  in
  let replay_trace = mk_trace 1000 in
  let snapshot_dev =
    let d = Xfd_mem.Pm_device.create () in
    for i = 0 to 1023 do
      Xfd_mem.Pm_device.store_i64 d (base + (8 * i)) (Int64.of_int i)
    done;
    d
  in
  let tests =
    [
      Test.make ~name:"device: 100 x store+clwb, 1 sfence"
        (Staged.stage (fun () ->
             let d = Xfd_mem.Pm_device.create () in
             for i = 0 to 99 do
               Xfd_mem.Pm_device.store_i64 d (base + (64 * i)) 1L;
               Xfd_mem.Pm_device.clwb d (base + (64 * i))
             done;
             Xfd_mem.Pm_device.sfence d));
      Test.make ~name:"frontend: 100 instrumented persist_barriers"
        (Staged.stage (fun () ->
             let d = Xfd_mem.Pm_device.create () in
             let tr = Xfd_trace.Trace.create () in
             let ctx = Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Pre_failure ~dev:d ~trace:tr () in
             for i = 0 to 99 do
               Xfd_sim.Ctx.write_i64 ctx ~loc:l (base + (64 * i)) 1L;
               Xfd_sim.Ctx.persist_barrier ctx ~loc:l (base + (64 * i)) 8
             done));
      Test.make ~name:"backend: replay 3000-event trace"
        (Staged.stage (fun () ->
             let det = Xfd.Detector.create () in
             Xfd.Detector.replay det replay_trace ~from:0
               ~upto:(Xfd_trace.Trace.length replay_trace)));
      Test.make ~name:"backend: fork_for_post of a warm shadow"
        (Staged.stage (fun () ->
             let det = Xfd.Detector.create () in
             Xfd.Detector.replay det replay_trace ~from:0
               ~upto:(Xfd_trace.Trace.length replay_trace);
             ignore (Xfd.Detector.fork_for_post det)));
      Test.make ~name:"frontend: CoW device snapshot (8 KiB touched)"
        (Staged.stage (fun () ->
             Xfd_mem.Pm_device.release (Xfd_mem.Pm_device.snapshot snapshot_dev)));
      Test.make ~name:"frontend: deep device snapshot (8 KiB touched)"
        (Staged.stage (fun () ->
             Xfd_mem.Pm_device.release (Xfd_mem.Pm_device.deep_snapshot snapshot_dev)));
      Test.make ~name:"end-to-end: detect one btree insert"
        (Staged.stage (fun () ->
             ignore (Xfd.Engine.detect (Xfd_workloads.Btree.program ~init_size:1 ~size:1 ()))));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true () in
  Printf.printf "\n== Microbenchmarks (bechamel; ns per run, OLS estimate) ==\n";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let results = Benchmark.run cfg instances elt in
          let ols =
            Analyze.one
              (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
              Toolkit.Instance.monotonic_clock results
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-46s %14.0f ns\n" (Test.Elt.name elt) est
          | Some _ | None -> Printf.printf "%-46s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* Extract "--FLAG FILE" from the argument list. *)
let rec extract_flag flag acc = function
  | [] -> (None, List.rev acc)
  | f :: path :: rest when f = flag -> (Some path, List.rev_append acc rest)
  | a :: rest -> extract_flag flag (a :: acc) rest

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let args = List.filter (fun a -> a <> "--full") args in
  let engine_arg, args = extract_flag "--engine" [] args in
  let engine_filter =
    Option.map
      (function
        | "incremental" -> `Incremental
        | "fresh" -> `Fresh
        | other ->
          Printf.eprintf "bench: --engine wants incremental|fresh (got %S)\n" other;
          exit 2)
      engine_arg
  in
  let metrics_out, args = extract_flag "--metrics-out" [] args in
  let trace_out, args = extract_flag "--trace-out" [] args in
  let pulse_port, args = extract_flag "--pulse-port" [] args in
  let pulse_interval, args = extract_flag "--pulse-interval" [] args in
  let pulse =
    Option.map
      (fun port ->
        let port =
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 65535 -> p
          | _ ->
            prerr_endline "bench: --pulse-port wants a port number";
            exit 2
        in
        let interval =
          match Option.map float_of_string_opt pulse_interval with
          | None -> 0.25
          | Some (Some s) when s > 0.0 -> s
          | Some _ ->
            prerr_endline "bench: --pulse-interval wants seconds > 0";
            exit 2
        in
        let tsdb = Xfd_pulse.Tsdb.create () in
        Xfd_pulse.Tsdb.start tsdb ~interval;
        let srv = Xfd_pulse.Pulse.start ~port ~tsdb () in
        Printf.printf "(pulse: serving http://127.0.0.1:%d/ every %gs)\n%!"
          (Xfd_pulse.Pulse.port srv) interval;
        (tsdb, srv))
      pulse_port
  in
  let sink = Option.map Xfd_obs.Obs.Sink.to_file metrics_out in
  Option.iter Xfd_obs.Obs.Sink.install sink;
  let collector =
    Option.map (fun path -> (path, Xfd_flight.Perfetto.Collector.start ())) trace_out
  in
  at_exit (fun () ->
      Option.iter
        (fun (tsdb, srv) ->
          Xfd_pulse.Tsdb.sample tsdb;
          Xfd_pulse.Tsdb.stop tsdb;
          Xfd_pulse.Pulse.stop srv)
        pulse;
      Option.iter
        (fun (path, c) ->
          let n = Xfd_flight.Perfetto.Collector.stop_to_file c path in
          Printf.printf "(trace: %d slices written to %s)\n" n path)
        collector;
      Option.iter
        (fun s ->
          Xfd_obs.Obs.write_summary ();
          Xfd_obs.Obs.Sink.uninstall s)
        sink);
  let what = match args with [] -> "all" | w :: _ -> w in
  let header () =
    Printf.printf "XFDetector reproduction: evaluation harness (Liu et al., ASPLOS 2020)\n"
  in
  match what with
  | "fig12a" | "fig12b" | "fig12" -> run_fig12 ()
  | "fig13" -> run_fig13 ~full ()
  | "table4" -> run_table4 ()
  | "table5" -> run_table5 ()
  | "newbugs" -> run_newbugs ()
  | "capability" -> run_capability ()
  | "ablation" -> run_ablation ()
  | "mechanisms" -> run_mechanisms ()
  | "parallel" -> run_parallel ()
  | "mtsweep" -> run_mtsweep ()
  | "snapshots" -> run_snapshot_bench ()
  | "detect" -> run_detect_bench ?engine_filter ()
  | "lint" -> run_lint_bench ()
  | "micro" -> microbenches ()
  | "all" ->
    header ();
    run_table4 ();
    run_newbugs ();
    run_capability ();
    run_table5 ();
    run_mechanisms ();
    run_fig12 ();
    run_fig13 ~full ();
    run_ablation ();
    run_mtsweep ();
    run_parallel ();
    run_snapshot_bench ();
    run_detect_bench ();
    microbenches ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (expected fig12a|fig12b|fig13|table4|table5|newbugs|capability|ablation|mechanisms|mtsweep|parallel|snapshots|detect|lint|micro|all)\n"
      other;
    exit 2
