(* Persistence-domain-parametric analysis: the differential static lint
   across ADR / eADR / CXL-GPF, the concrete shadow FSM under each model,
   the GPF barrier event, the ADR byte-identity guarantee (the parametric
   analyzer with [Adr] must be indistinguishable from the pre-parametric
   one, statically and dynamically), and the lint exit-code contract of
   both command-line binaries. *)

module D = Xfd_trace.Domain_model
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Lint = Xfd_lint.Lint
module Abs = Xfd_lint.Abs
module Pstate = Xfd.Pstate
module Config = Xfd.Config
module Engine = Xfd.Engine
module Detector = Xfd.Detector
module Faults = Xfd_sim.Faults
module Job = Xfd_serve.Job

let l n = Loc.make ~file:"domfix.ml" ~line:n
let base = Addr.pool_base

let mk_trace kinds =
  let t = Trace.create () in
  List.iter (fun (kind, loc) -> ignore (Trace.append t ~kind ~loc)) kinds;
  t

let keys r = List.map Lint.finding_key r.Lint.findings
let hashmap ?(size = 2) () = Xfd_workloads.Hashmap_atomic.program ~size ~variant:`Fixed ()

let model_t = Alcotest.testable D.pp D.equal

(* ------------------------------------------------------------------ *)
(* The model type itself. *)

let model_tests =
  [
    Tu.case "to_string/of_string round-trips every model" (fun () ->
        List.iter
          (fun m ->
            Alcotest.(check (option model_t))
              (D.to_string m) (Some m)
              (D.of_string (D.to_string m)))
          D.all);
    Tu.case "of_string accepts aliases and mixed case, rejects junk" (fun () ->
        Alcotest.(check (option model_t)) "cxl_gpf" (Some D.Cxl_gpf) (D.of_string "cxl_gpf");
        Alcotest.(check (option model_t)) "gpf" (Some D.Cxl_gpf) (D.of_string "gpf");
        Alcotest.(check (option model_t)) "EADR" (Some D.Eadr) (D.of_string "EADR");
        Alcotest.(check (option model_t)) "ADR" (Some D.Adr) (D.of_string "ADR");
        Alcotest.(check (option model_t)) "surrounding whitespace is trimmed"
          (Some D.Eadr) (D.of_string " eadr ");
        List.iter
          (fun s ->
            Alcotest.(check (option model_t)) ("reject " ^ s) None (D.of_string s))
          [ ""; "adr2"; "eadr x"; "battery"; "cxl"; "adr;rm -rf" ]);
    Tu.case "all is exhaustive and duplicate-free" (fun () ->
        Alcotest.(check int) "three models" 3 (List.length D.all);
        Alcotest.(check int) "no duplicates" 3
          (List.length (List.sort_uniq compare D.all));
        (* Compiler-enforced exhaustiveness: extending [D.t] breaks this
           match before it can silently miss a model. *)
        List.iter
          (fun m ->
            let covered = match m with D.Adr | D.Eadr | D.Cxl_gpf -> true in
            Alcotest.(check bool) (D.to_string m ^ " covered") true covered;
            Alcotest.(check bool)
              (D.to_string m ^ " described")
              true
              (String.length (D.describe m) > 10))
          D.all);
  ]

(* ------------------------------------------------------------------ *)
(* Rule-id round-trip (qcheck) and severity reinterpretation. *)

let rule_arb =
  QCheck.make
    ~print:(fun r -> Lint.rule_id r)
    QCheck.Gen.(map (fun i -> List.nth Lint.all_rules i)
                  (int_bound (List.length Lint.all_rules - 1)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"rule_of_id inverts rule_id" rule_arb
        (fun r -> Lint.rule_of_id (Lint.rule_id r) = Some r);
      QCheck.Test.make ~count:200 ~name:"adversarial ids never resolve"
        QCheck.(string_of_size Gen.(int_bound 40))
        (fun s ->
          match Lint.rule_of_id s with
          | None -> true
          | Some r -> Lint.rule_id r = s);
      QCheck.Test.make ~count:100 ~name:"severity_in Adr is severity_of" rule_arb
        (fun r -> Lint.severity_in D.Adr r = Lint.severity_of r);
    ]

let rule_tests =
  [
    Tu.case "rule ids are unique and all_rules is total" (fun () ->
        let ids = List.map Lint.rule_id Lint.all_rules in
        Alcotest.(check int) "unique ids" (List.length ids)
          (List.length (List.sort_uniq compare ids));
        (* Case-variants and whitespace must not resolve. *)
        List.iter
          (fun id ->
            Alcotest.(check bool) ("uppercase " ^ id) true
              (Lint.rule_of_id (String.uppercase_ascii id) = None
              || String.uppercase_ascii id = id);
            Alcotest.(check bool) ("padded " ^ id) true
              (Lint.rule_of_id (" " ^ id) = None))
          ids);
    Tu.case "eADR promotes redundant-flush to warning, nothing else moves"
      (fun () ->
        List.iter
          (fun r ->
            let adr = Lint.severity_of r in
            let eadr = Lint.severity_in D.Eadr r in
            let gpf = Lint.severity_in D.Cxl_gpf r in
            Alcotest.(check bool) (Lint.rule_id r ^ " cxl-gpf unchanged") true
              (gpf = adr);
            if r = Lint.Redundant_flush then
              Alcotest.(check bool) "redundant-flush is warning under eadr" true
                (eadr = Lint.Warning)
            else
              Alcotest.(check bool) (Lint.rule_id r ^ " eadr unchanged") true
                (eadr = adr))
          Lint.all_rules);
  ]

(* ------------------------------------------------------------------ *)
(* Transfer-function semantics, abstract and concrete. *)

let abs_tests =
  [
    Tu.case "Pending is unreachable under eadr and cxl-gpf" (fun () ->
        (* No transfer may introduce [Pending] from a non-[Pending] state
           outside ADR: eADR persists at store; CXL-GPF persists on
           arrival at the device.  This is what makes
           flush-without-ordering-fence vacuous outside ADR. *)
        List.iter
          (fun m ->
            List.iter
              (fun s ->
                let step name f =
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s from %s" (D.to_string m) name
                       (Abs.to_string s))
                    false
                    (Abs.equal (f s) Abs.Pending)
                in
                step "write" (Abs.on_write_in m);
                step "nt-write" (Abs.on_nt_write_in m);
                step "flush" (Abs.on_flush_in m);
                step "fence" (Abs.on_fence_in m);
                step "gpf" (Abs.on_gpf_in m))
              [ Abs.Bot; Abs.Dirty; Abs.Persisted; Abs.Top ])
          [ D.Eadr; D.Cxl_gpf ]);
    Tu.case "adr transfers are the unparameterized ones" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) "write" true
              (Abs.equal (Abs.on_write_in D.Adr s) (Abs.on_write s));
            Alcotest.(check bool) "nt" true
              (Abs.equal (Abs.on_nt_write_in D.Adr s) (Abs.on_nt_write s));
            Alcotest.(check bool) "flush" true
              (Abs.equal (Abs.on_flush_in D.Adr s) (Abs.on_flush s));
            Alcotest.(check bool) "fence" true
              (Abs.equal (Abs.on_fence_in D.Adr s) (Abs.on_fence s));
            Alcotest.(check bool) "gpf inert" true
              (Abs.equal (Abs.on_gpf_in D.Adr s) s))
          [ Abs.Bot; Abs.Dirty; Abs.Pending; Abs.Persisted; Abs.Top ]);
    Tu.case "concrete FSM agrees with the abstract one per model" (fun () ->
        List.iter
          (fun m ->
            let open Pstate in
            Alcotest.(check bool)
              (D.to_string m ^ " write durable iff eadr")
              (m = D.Eadr)
              (equal (on_write_in m Unmodified) Persisted);
            Alcotest.(check bool)
              (D.to_string m ^ " nt durable outside adr")
              (m <> D.Adr)
              (equal (on_nt_write_in m Unmodified) Persisted);
            Alcotest.(check bool)
              (D.to_string m ^ " flush of modified durable iff cxl-gpf")
              (m = D.Cxl_gpf)
              (equal (on_flush_in m Modified) Persisted);
            Alcotest.(check bool)
              (D.to_string m ^ " gpf drains writeback iff cxl-gpf")
              (m = D.Cxl_gpf)
              (equal (on_gpf_in m Writeback_pending) Persisted))
          D.all);
  ]

(* ------------------------------------------------------------------ *)
(* The GPF barrier event end to end. *)

let gpf_trace () =
  mk_trace
    [
      (Event.Roi_begin, l 1);
      (Event.Write { addr = base; size = 8 }, l 2);
      (Event.Gpf, l 3);
      (Event.Write { addr = base + Addr.line_size; size = 8 }, l 4);
      (Event.Roi_end, l 5);
    ]

let gpf_tests =
  [
    Tu.case "GPF event round-trips through the trace text format" (fun () ->
        let line = Event.to_line (Trace.get (gpf_trace ()) 2) in
        match Event.of_line line with
        | Some e -> Alcotest.(check bool) "kind survives" true (e.Event.kind = Event.Gpf)
        | None -> Alcotest.failf "GPF line did not parse: %s" line);
    Tu.case "shadow honours GPF only under cxl-gpf" (fun () ->
        let t = gpf_trace () in
        let probe domain =
          let det = Detector.create ~domain () in
          Detector.replay det t ~from:0 ~upto:(Trace.length t);
          let st addr =
            match Detector.probe det addr with
            | None -> Alcotest.fail "byte untracked"
            | Some c -> c.Xfd.Shadow_pm.pstate
          in
          let r = (st base, st (base + Addr.line_size)) in
          Detector.release det;
          r
        in
        (* A is written before the barrier, B after; neither is flushed. *)
        let a, b = probe D.Cxl_gpf in
        Alcotest.(check bool) "cxl-gpf: A persisted by the barrier" true
          (Pstate.equal a Pstate.Persisted);
        Alcotest.(check bool) "cxl-gpf: B still modified" true
          (Pstate.equal b Pstate.Modified);
        let a, b = probe D.Adr in
        Alcotest.(check bool) "adr: GPF inert, A modified" true
          (Pstate.equal a Pstate.Modified);
        Alcotest.(check bool) "adr: B modified" true (Pstate.equal b Pstate.Modified);
        let a, b = probe D.Eadr in
        Alcotest.(check bool) "eadr: A durable at store" true
          (Pstate.equal a Pstate.Persisted);
        Alcotest.(check bool) "eadr: B durable at store" true
          (Pstate.equal b Pstate.Persisted));
    Tu.case "Ctx.gpf persists the device image and emits the event" (fun () ->
        let dev, trace, ctx = Tu.make_ctx () in
        let loc = Loc.make ~file:"gpfctx.ml" ~line:1 in
        Xfd_sim.Ctx.roi_begin ctx ~loc;
        Xfd_sim.Ctx.write_i64 ctx ~loc base 7777L;
        Alcotest.(check bool) "dirty before barrier" true
          (Xfd_mem.Pm_device.dirty_bytes dev > 0);
        Xfd_sim.Ctx.gpf ctx ~loc;
        Alcotest.(check int) "no dirty bytes after barrier" 0
          (Xfd_mem.Pm_device.dirty_bytes dev);
        Alcotest.(check int) "no pending bytes after barrier" 0
          (Xfd_mem.Pm_device.pending_bytes dev);
        (* The strict crash image keeps the value: it is durable. *)
        let img = Xfd_mem.Pm_device.crash dev Xfd_mem.Pm_device.Strict in
        Tu.on_image img (fun ctx' ->
            Alcotest.(check Tu.i64) "value survives a strict crash" 7777L
              (Xfd_sim.Ctx.read_i64 ctx' ~loc base));
        let has_gpf = ref false in
        for i = 0 to Trace.length trace - 1 do
          if (Trace.get trace i).Event.kind = Event.Gpf then has_gpf := true
        done;
        Alcotest.(check bool) "trace carries the GPF event" true !has_gpf);
  ]

(* ------------------------------------------------------------------ *)
(* ADR byte-identity: the parametric analyzer under [Adr] must be
   indistinguishable from the pre-parametric one. *)

let identity_tests =
  [
    Tu.case "static: default check equals explicit ~domain:Adr" (fun () ->
        let fixtures =
          [
            gpf_trace ();
            mk_trace
              [
                (Event.Roi_begin, l 1);
                (Event.Commit_var { addr = base; size = 8 }, l 2);
                (Event.Write { addr = base + Addr.line_size; size = 8 }, l 3);
                (Event.Write { addr = base; size = 8 }, l 4);
                (Event.Clwb { addr = base }, l 5);
                (Event.Sfence, l 6);
              ];
          ]
        in
        List.iter
          (fun t ->
            let a = Lint.check_trace t and b = Lint.check_trace ~domain:D.Adr t in
            Alcotest.(check (list string)) "same keys" (keys a) (keys b);
            Alcotest.(check (list string)) "same rendering"
              (List.map (Format.asprintf "%a" Lint.pp_finding) a.Lint.findings)
              (List.map (Format.asprintf "%a" Lint.pp_finding) b.Lint.findings))
          fixtures);
    Tu.case "static: check_prog under default config equals domain Adr" (fun () ->
        let faults = Faults.make ~skip_fence:[ 1 ] () in
        let a = Lint.check_prog ~config:{ Config.default with Config.faults } (hashmap ())
        and b =
          Lint.check_prog
            ~config:{ Config.default with Config.faults; domain = D.Adr }
            (hashmap ())
        in
        Alcotest.(check (list string)) "same keys" (keys a) (keys b);
        Alcotest.(check bool) "finds the seeded bug" true (a.Lint.errors > 0));
    Tu.case "dynamic: detection fingerprint identical under explicit Adr" (fun () ->
        let faults () = Faults.make ~skip_flush:[ 1 ] () in
        let o1 =
          Engine.detect
            ~config:{ Config.default with Config.faults = faults () }
            (hashmap ())
        and o2 =
          Engine.detect
            ~config:{ Config.default with Config.faults = faults (); domain = D.Adr }
            (hashmap ())
        in
        Alcotest.(check string) "fingerprints byte-identical"
          (Job.fingerprint o1) (Job.fingerprint o2);
        let r, _, _, _ = Engine.tally o1 in
        Alcotest.(check bool) "the fixture is not vacuous (races found)" true (r > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Differential static lint: the goldens. *)

let entry_for d key =
  List.find_opt (fun e -> e.Lint.key = key) d.Lint.entries

let has_rule d rule cls =
  List.exists
    (fun e -> e.Lint.entry_rule = rule && e.Lint.classification = cls)
    d.Lint.entries

let report_of d m = List.assoc m d.Lint.reports

let diff_tests =
  [
    Tu.case "skip-fence: missing-flush error disappears outside ADR" (fun () ->
        let faults = Faults.make ~skip_fence:[ 1 ] () in
        let d =
          Lint.diff_prog ~config:{ Config.default with Config.faults } (hashmap ())
        in
        Alcotest.(check (list model_t)) "models" D.all d.Lint.models;
        Alcotest.(check model_t) "baseline" D.Adr d.Lint.baseline;
        Alcotest.(check bool) "ADR sees the seeded error" true
          ((report_of d D.Adr).Lint.errors > 0);
        Alcotest.(check bool) "eADR and CXL-GPF see no errors" true
          ((report_of d D.Eadr).Lint.errors = 0
          && (report_of d D.Cxl_gpf).Lint.errors = 0);
        Alcotest.(check bool) "classified as disappearing under both" true
          (has_rule d Lint.Missing_flush_before_commit_store
             (`Disappears_in [ D.Eadr; D.Cxl_gpf ])));
    Tu.case "skip-flush: unflushed store disappears under eADR only" (fun () ->
        let faults = Faults.make ~skip_flush:[ 1 ] () in
        let d =
          Lint.diff_prog ~config:{ Config.default with Config.faults } (hashmap ())
        in
        Alcotest.(check bool) "unflushed-at-trace-end disappears under eadr" true
          (has_rule d Lint.Unflushed_at_trace_end (`Disappears_in [ D.Eadr ]));
        Alcotest.(check bool) "eADR flags the remaining flushes as waste" true
          (has_rule d Lint.Redundant_flush (`Appears_in [ D.Eadr ]));
        (* Under CXL-GPF the skipped flush is still a bug: nothing drains
           the cache without an explicit writeback or barrier. *)
        Alcotest.(check bool) "cxl-gpf keeps the unflushed finding" true
          (List.exists
             (fun e ->
               e.Lint.entry_rule = Lint.Unflushed_at_trace_end
               && List.assoc D.Cxl_gpf e.Lint.by_model <> None)
             d.Lint.entries));
    Tu.case "GPF barrier splits the trace: pre-barrier stores are durable"
      (fun () ->
        let d = Lint.diff_domains (gpf_trace ()) in
        let key_a = "unflushed-at-trace-end:domfix.ml:2"
        and key_b = "unflushed-at-trace-end:domfix.ml:4" in
        (match entry_for d key_a with
        | None -> Alcotest.fail "pre-barrier store entry missing"
        | Some e ->
          (* GPF-specific classification: present under adr, gone under
             BOTH eadr (durable at store) and cxl-gpf (the barrier
             persisted it) — distinguishable from B below. *)
          Alcotest.(check bool) "A disappears under eadr AND cxl-gpf" true
            (e.Lint.classification = `Disappears_in [ D.Eadr; D.Cxl_gpf ]));
        (match entry_for d key_b with
        | None -> Alcotest.fail "post-barrier store entry missing"
        | Some e ->
          Alcotest.(check bool) "B disappears under eadr only" true
            (e.Lint.classification = `Disappears_in [ D.Eadr ]);
          Alcotest.(check bool) "B still fires under cxl-gpf" true
            (List.assoc D.Cxl_gpf e.Lint.by_model <> None));
        Alcotest.(check bool) "eadr is clean" true
          (Lint.clean (report_of d D.Eadr));
        Alcotest.(check bool) "the diff is not clean" false (Lint.diff_clean d));
    Tu.case "correct workloads: eADR adds warnings but never errors" (fun () ->
        List.iter
          (fun (name, p) ->
            let d = Lint.diff_prog (p ()) in
            Alcotest.(check bool) (name ^ " adr clean") true
              (Lint.clean (report_of d D.Adr));
            Alcotest.(check bool) (name ^ " cxl-gpf clean") true
              (Lint.clean (report_of d D.Cxl_gpf));
            Alcotest.(check int) (name ^ " eadr has no errors") 0
              (report_of d D.Eadr).Lint.errors;
            List.iter
              (fun e ->
                Alcotest.(check bool)
                  (name ^ " every entry appears under eadr only") true
                  (e.Lint.classification = `Appears_in [ D.Eadr ]))
              d.Lint.entries)
          [
            ("hashmap-tx", fun () -> Xfd_workloads.Hashmap_tx.program ~size:2 ());
            ("btree", fun () -> Xfd_workloads.Btree.program ~init_size:2 ~size:2 ());
            ("rbtree", fun () -> Xfd_workloads.Rbtree.program ~size:2 ());
          ]);
    Tu.case "diff JSON carries per-model reports and classifications" (fun () ->
        let faults = Faults.make ~skip_fence:[ 1 ] () in
        let d =
          Lint.diff_prog ~config:{ Config.default with Config.faults } (hashmap ())
        in
        match Lint.diff_to_json d with
        | Xfd_util.Json.Obj kvs ->
          Alcotest.(check bool) "has baseline" true (List.mem_assoc "baseline" kvs);
          Alcotest.(check bool) "has entries" true (List.mem_assoc "entries" kvs);
          (match List.assoc "reports" kvs with
          | Xfd_util.Json.Obj reports ->
            List.iter
              (fun m ->
                Alcotest.(check bool) (D.to_string m ^ " report present") true
                  (List.mem_assoc (D.to_string m) reports))
              D.all
          | _ -> Alcotest.fail "reports is not an object")
        | _ -> Alcotest.fail "diff JSON is not an object");
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic detection under non-ADR models. *)

let dynamic_tests =
  [
    Tu.case "skip-flush race vanishes under eADR, survives under CXL-GPF"
      (fun () ->
        let run domain =
          Engine.tally
            (Engine.detect
               ~config:
                 {
                   Config.default with
                   Config.faults = Faults.make ~skip_flush:[ 1 ] ();
                   domain;
                 }
               (hashmap ()))
        in
        let r_adr, _, _, _ = run D.Adr in
        let r_eadr, _, p_eadr, _ = run D.Eadr in
        let r_gpf, _, _, _ = run D.Cxl_gpf in
        Alcotest.(check bool) "adr races" true (r_adr > 0);
        Alcotest.(check int) "eadr: data durable at store, no race" 0 r_eadr;
        Alcotest.(check bool) "eadr: the remaining flushes are pure waste" true
          (p_eadr > 0);
        Alcotest.(check int) "cxl-gpf: skipped flush still races" r_adr r_gpf);
    Tu.case "correct workload is clean under every model" (fun () ->
        List.iter
          (fun domain ->
            let r, s, _, e =
              Engine.tally
                (Engine.detect
                   ~config:{ Config.default with Config.domain = domain }
                   (hashmap ()))
            in
            Alcotest.(check int) (D.to_string domain ^ " races") 0 r;
            Alcotest.(check int) (D.to_string domain ^ " semantic") 0 s;
            Alcotest.(check int) (D.to_string domain ^ " post errors") 0 e)
          D.all);
  ]

(* ------------------------------------------------------------------ *)
(* The lint exit-code contract of both binaries: 0 = clean,
   1 = findings, 2 = usage or I/O error. *)

let cli = Filename.concat ".." "bin/xfd_cli.exe"
let trace_tool = Filename.concat ".." "bin/xfd_trace_tool.exe"

let run_exit exe args =
  Sys.command (Filename.quote_command exe args ^ " >/dev/null 2>&1")

let with_trace_file t f =
  let file = Filename.temp_file "xfd_domains" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_text file (Trace.save t);
      f file)

let exit_tests =
  [
    Tu.case "xfd_cli lint: 0 clean / 1 findings / 2 usage" (fun () ->
        Alcotest.(check int) "clean workload exits 0" 0
          (run_exit cli [ "lint"; "-w"; "hashmap-tx" ]);
        Alcotest.(check int) "seeded findings exit 1" 1
          (run_exit cli [ "lint"; "-w"; "hashmap-atomic"; "--patch"; "skip-fence=1" ]);
        Alcotest.(check int) "meeting an expectation exits 0" 0
          (run_exit cli
             [
               "lint"; "-w"; "hashmap-atomic"; "--patch"; "skip-fence=1";
               "--expect"; "missing-flush-before-commit-store";
             ]);
        Alcotest.(check int) "unknown domain exits 2" 2
          (run_exit cli [ "lint"; "-w"; "hashmap-tx"; "--domain"; "bogus" ]);
        Alcotest.(check int) "unknown workload exits 2" 2
          (run_exit cli [ "lint"; "-w"; "no-such-workload" ]);
        Alcotest.(check int) "unparseable patch exits 2" 2
          (run_exit cli [ "lint"; "-w"; "hashmap-tx"; "--patch"; "frobnicate=Q" ]));
    Tu.case "xfd_cli lint --domain changes the verdict, same exit contract"
      (fun () ->
        Alcotest.(check int) "skip-fence error under adr exits 1" 1
          (run_exit cli
             [ "lint"; "-w"; "hashmap-atomic"; "--patch"; "skip-fence=1";
               "--domain"; "adr" ]);
        Alcotest.(check int) "same program clean under cxl-gpf exits 0" 0
          (run_exit cli
             [ "lint"; "-w"; "hashmap-atomic"; "--patch"; "skip-fence=1";
               "--domain"; "cxl-gpf" ]);
        Alcotest.(check int) "--diff-domains exits on the baseline verdict" 1
          (run_exit cli
             [ "lint"; "-w"; "hashmap-atomic"; "--patch"; "skip-fence=1";
               "--diff-domains"; "--json" ]));
    Tu.case "xfd_trace_tool lint: 0 clean / 1 findings / 2 usage-or-IO" (fun () ->
        with_trace_file (gpf_trace ()) (fun file ->
            Alcotest.(check int) "findings exit 1" 1 (run_exit trace_tool [ "lint"; file ]);
            Alcotest.(check int) "clean under eadr exits 0" 0
              (run_exit trace_tool [ "lint"; "--domain"; "eadr"; file ]);
            Alcotest.(check int) "diff over a dirty trace exits 1" 1
              (run_exit trace_tool [ "lint"; "--diff-domains"; file ]);
            Alcotest.(check int) "unknown domain exits 2" 2
              (run_exit trace_tool [ "lint"; "--domain"; "nope"; file ]));
        Alcotest.(check int) "unreadable trace exits 2" 2
          (run_exit trace_tool [ "lint"; "/nonexistent-xfd-domains.trace" ]);
        let empty = mk_trace [ (Event.Roi_begin, l 1); (Event.Roi_end, l 2) ] in
        with_trace_file empty (fun file ->
            Alcotest.(check int) "clean trace exits 0" 0
              (run_exit trace_tool [ "lint"; file ])));
  ]

let suite =
  [
    ("domains.model", model_tests);
    ("domains.rules", qcheck_tests @ rule_tests);
    ("domains.abs", abs_tests);
    ("domains.gpf", gpf_tests);
    ("domains.identity", identity_tests);
    ("domains.diff", diff_tests);
    ("domains.dynamic", dynamic_tests);
    ("domains.exit", exit_tests);
  ]
