(* The observability layer: metric math, span nesting, JSONL sink
   round-tripping, and the guarantee that telemetry never changes what the
   detector finds. *)

module Obs = Xfd_obs.Obs
module Json = Xfd_util.Json
module Engine = Xfd.Engine

let counter_tests =
  [
    Tu.case "counter arithmetic and registry idempotence" (fun () ->
        let c = Obs.Counter.make "test.obs.counter" in
        let v0 = Obs.Counter.value c in
        Obs.Counter.incr c;
        Obs.Counter.add c 41;
        Alcotest.(check int) "incr+add" (v0 + 42) (Obs.Counter.value c);
        let c' = Obs.Counter.make "test.obs.counter" in
        Obs.Counter.incr c';
        Alcotest.(check int) "same instance by name" (v0 + 43) (Obs.Counter.value c);
        Alcotest.(check string) "name" "test.obs.counter" (Obs.Counter.name c);
        Alcotest.(check (option int))
          "lookup by name" (Some (v0 + 43))
          (Obs.counter_value "test.obs.counter"));
    Tu.case "registering a name as two metric kinds is rejected" (fun () ->
        let _ = Obs.Counter.make "test.obs.kind_clash" in
        Alcotest.check_raises "clash"
          (Invalid_argument "Obs: \"test.obs.kind_clash\" already registered as another metric kind")
          (fun () -> ignore (Obs.Gauge.make "test.obs.kind_clash")));
    Tu.case "gauge stores the last value" (fun () ->
        let g = Obs.Gauge.make "test.obs.gauge" in
        Obs.Gauge.set g 2.5;
        Obs.Gauge.set g 7.25;
        Alcotest.(check (float 0.0)) "last write wins" 7.25 (Obs.Gauge.value g));
    Tu.case "histogram is log-scale with exact count/sum/max" (fun () ->
        let h = Obs.Histogram.make "test.obs.hist" in
        List.iter (Obs.Histogram.observe h) [ 0; 1; 1; 3; 4; 7; 8; 1000 ];
        Alcotest.(check int) "count" 8 (Obs.Histogram.count h);
        Alcotest.(check int) "sum" 1024 (Obs.Histogram.sum h);
        Alcotest.(check int) "max" 1000 (Obs.Histogram.max_value h);
        (* 0 -> le 0; 1,1 -> le 1; 3 -> le 3; 4,7 -> le 7; 8 -> le 15;
           1000 -> le 1023. *)
        Alcotest.(check (list (pair int int)))
          "buckets"
          [ (0, 1); (1, 2); (3, 1); (7, 2); (15, 1); (1023, 1) ]
          (Obs.Histogram.buckets h));
    Tu.case "quantile estimates interpolate within log-scale buckets" (fun () ->
        let h = Obs.Histogram.make "test.obs.quant" in
        Alcotest.(check int) "empty histogram estimates 0" 0 (Obs.Histogram.quantile h 0.5);
        for v = 1 to 100 do
          Obs.Histogram.observe h v
        done;
        (* rank 50 lands in bucket [32,63]: 32 + (50-31)/32 * 31 = 50.4. *)
        Alcotest.(check int) "p50 of 1..100" 50 (Obs.Histogram.quantile h 0.50);
        (* The tail buckets interpolate past the observed maximum; the
           estimate is clamped so it never exceeds a real sample. *)
        Alcotest.(check int) "p95 clamps to the observed max" 100
          (Obs.Histogram.quantile h 0.95);
        Alcotest.(check int) "p99 clamps to the observed max" 100
          (Obs.Histogram.quantile h 0.99);
        Alcotest.(check int) "q<=0 is the first sample's bucket" 1
          (Obs.Histogram.quantile h (-1.0));
        Alcotest.(check int) "q>=1 is the max" 100 (Obs.Histogram.quantile h 2.0));
    Tu.case "quantiles are monotone in q and cover p50/p95/p99" (fun () ->
        let h = Obs.Histogram.make "test.obs.quant_mono" in
        (* Heavily skewed: many small, few huge. *)
        for _ = 1 to 90 do
          Obs.Histogram.observe h 2
        done;
        for _ = 1 to 9 do
          Obs.Histogram.observe h 1000
        done;
        Obs.Histogram.observe h 100000;
        let q50 = Obs.Histogram.quantile h 0.50 in
        let q95 = Obs.Histogram.quantile h 0.95 in
        let q99 = Obs.Histogram.quantile h 0.99 in
        Alcotest.(check bool) "p50 <= p95 <= p99" true (q50 <= q95 && q95 <= q99);
        Alcotest.(check bool) "p50 sits in the dominant bucket [2,3]" true
          (q50 >= 2 && q50 <= 3);
        Alcotest.(check bool) "p95 reaches the heavy tail" true (q95 >= 512 && q95 <= 1023);
        Alcotest.(check (list (pair (float 0.0) int)))
          "quantiles returns the conventional three"
          [ (0.50, q50); (0.95, q95); (0.99, q99) ]
          (Obs.Histogram.quantiles h));
    Tu.case "summary_json carries the quantile estimates" (fun () ->
        let h = Obs.Histogram.make "test.obs.quant_sum" in
        List.iter (Obs.Histogram.observe h) [ 1; 2; 3; 4 ];
        let j = Obs.summary_json () in
        match
          Option.bind (Json.member "histograms" j) (Json.member "test.obs.quant_sum")
        with
        | None -> Alcotest.fail "histogram missing from summary"
        | Some hj ->
          List.iter
            (fun key ->
              match Json.member key hj with
              | Some (Json.Int v) ->
                Alcotest.(check bool) (key ^ " sane") true (v >= 1 && v <= 4)
              | _ -> Alcotest.failf "summary histogram lacks %s" key)
            [ "p50"; "p95"; "p99" ]);
    Tu.case "disabled mode records nothing" (fun () ->
        let c = Obs.Counter.make "test.obs.noop_counter" in
        let h = Obs.Histogram.make "test.obs.noop_hist" in
        let v0 = Obs.Counter.value c and n0 = Obs.Histogram.count h in
        Obs.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Obs.set_enabled true)
          (fun () ->
            Obs.Counter.incr c;
            Obs.Counter.add c 10;
            Obs.Histogram.observe h 5);
        Alcotest.(check int) "counter unchanged" v0 (Obs.Counter.value c);
        Alcotest.(check int) "histogram unchanged" n0 (Obs.Histogram.count h));
  ]

let span_tests =
  [
    Tu.case "spans nest, time monotonically and collect scoped" (fun () ->
        let mark = Obs.Span.mark () in
        let r =
          Obs.Span.with_ ~name:"test.outer" (fun () ->
              Obs.Span.with_ ~name:"test.inner" (fun () -> 6 * 7))
        in
        Alcotest.(check int) "result threads through" 42 r;
        let records = Obs.Span.records_since mark in
        Alcotest.(check int) "both spans collected" 2 (List.length records);
        let inner = List.nth records 0 and outer = List.nth records 1 in
        Alcotest.(check string) "inner finishes first" "test.inner" inner.Obs.Span.name;
        Alcotest.(check string) "outer finishes last" "test.outer" outer.Obs.Span.name;
        Alcotest.(check (option int))
          "parent linkage" (Some outer.Obs.Span.id) inner.Obs.Span.parent;
        Alcotest.(check (option int)) "outer is a root" None outer.Obs.Span.parent;
        Alcotest.(check bool) "durations non-negative" true
          (inner.Obs.Span.dur >= 0.0 && outer.Obs.Span.dur >= 0.0);
        Alcotest.(check bool) "child within parent" true
          (inner.Obs.Span.dur <= outer.Obs.Span.dur +. 1e-9);
        Alcotest.(check bool) "start ordering" true
          (outer.Obs.Span.start <= inner.Obs.Span.start +. 1e-9);
        (* The collection is consuming: a second drain from the same mark is
           empty. *)
        Alcotest.(check int) "buffer truncated" 0
          (List.length (Obs.Span.records_since mark)));
    Tu.case "spans record on exceptions too" (fun () ->
        let mark = Obs.Span.mark () in
        (try Obs.Span.with_ ~name:"test.raises" (fun () -> failwith "boom")
         with Failure _ -> ());
        let records = Obs.Span.records_since mark in
        Alcotest.(check int) "span recorded" 1 (List.length records);
        Alcotest.(check string) "name" "test.raises" (List.hd records).Obs.Span.name);
    Tu.case "aggregate sums per name" (fun () ->
        let mark = Obs.Span.mark () in
        for _ = 1 to 3 do
          Obs.Span.with_ ~name:"test.agg" (fun () -> ())
        done;
        let records = Obs.Span.records_since mark in
        match Obs.Span.aggregate records with
        | [ ("test.agg", (count, total)) ] ->
          Alcotest.(check int) "count" 3 count;
          Alcotest.(check bool) "total is a sum of durations" true (total >= 0.0)
        | other ->
          Alcotest.failf "unexpected aggregate of %d names" (List.length other));
  ]

let jsonl_tests =
  [
    Tu.case "JSONL sink output round-trips through the parser" (fun () ->
        let path = Filename.temp_file "xfd_obs" ".jsonl" in
        let sink = Obs.Sink.to_file path in
        Obs.Sink.install sink;
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let mark = Obs.Span.mark () in
            Obs.Span.with_ ~name:"test.sink.span" (fun () ->
                Obs.Counter.incr (Obs.Counter.make "test.obs.sink_counter"));
            Obs.write_summary ();
            Obs.Sink.uninstall sink;
            ignore (Obs.Span.records_since mark);
            let ic = open_in path in
            let lines = ref [] in
            (try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> close_in ic);
            let lines = List.rev !lines in
            Alcotest.(check bool) "at least span + summary" true (List.length lines >= 2);
            let parsed =
              List.map
                (fun line ->
                  match Json.of_string line with
                  | Ok v -> v
                  | Error m -> Alcotest.failf "invalid JSONL line %S: %s" line m)
                lines
            in
            let typed ty =
              List.filter (fun j -> Json.member "type" j = Some (Json.Str ty)) parsed
            in
            let spans = typed "span" and summaries = typed "summary" in
            Alcotest.(check bool) "has our span record" true
              (List.exists
                 (fun j -> Json.member "name" j = Some (Json.Str "test.sink.span"))
                 spans);
            match summaries with
            | [ s ] ->
              let counters =
                match Json.member "counters" s with Some c -> c | None -> Json.Null
              in
              Alcotest.(check bool) "summary carries the counter" true
                (match Json.member "test.obs.sink_counter" counters with
                | Some (Json.Int n) -> n >= 1
                | _ -> false);
              Alcotest.(check bool) "summary aggregates spans" true
                (match Json.member "spans" s with
                | Some sp -> Json.member "test.sink.span" sp <> None
                | None -> false)
            | _ -> Alcotest.fail "expected exactly one summary record"));
  ]

(* Strip nondeterministic floats: what detection *found*. *)
let fingerprint (o : Engine.outcome) =
  ( o.Engine.program,
    o.Engine.failure_points,
    o.Engine.pre_events,
    o.Engine.post_events,
    List.map Xfd.Report.dedup_key o.Engine.unique_bugs,
    List.map
      (fun r -> (r.Xfd.Report.failure_point, r.Xfd.Report.trace_pos, List.length r.Xfd.Report.bugs))
      o.Engine.reports )

let engine_tests =
  [
    Tu.case "no-op mode has zero effect on detection outcomes" (fun () ->
        let program () = Xfd_workloads.Array_update.program ~size:2 () in
        let on = Tu.detect (program ()) in
        Obs.set_enabled false;
        let off =
          Fun.protect ~finally:(fun () -> Obs.set_enabled true) (fun () -> Tu.detect (program ()))
        in
        Alcotest.(check bool) "identical findings" true (fingerprint on = fingerprint off);
        (* Spans still time the run even with metrics off, so the Figure 12
           numbers survive no-op mode. *)
        Alcotest.(check bool) "timings still populated" true
          (Engine.total_wall off > 0.0));
    Tu.case "outcome timings are exactly the span-tree aggregation" (fun () ->
        let o = Tu.detect (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ()) in
        let derived = Engine.timings_of_spans o.Engine.spans in
        Alcotest.(check bool) "derived = recorded" true (derived = o.Engine.timings);
        (* And the phases account for (almost all of) the root span: the
           engine does little outside the four phases. *)
        let root =
          List.find (fun r -> String.equal r.Obs.Span.name "detect") o.Engine.spans
        in
        let t = o.Engine.timings in
        let phase_sum =
          t.Engine.pre_exec +. t.Engine.post_exec +. t.Engine.pre_replay
          +. t.Engine.post_replay +. t.Engine.snapshotting
        in
        Alcotest.(check bool) "phases fit inside the root span" true
          (phase_sum <= root.Obs.Span.dur +. 1e-6);
        Alcotest.(check bool) "phases dominate the root span" true
          (phase_sum >= 0.5 *. root.Obs.Span.dur));
    Tu.case "span tree carries per-failure-point children" (fun () ->
        let o = Tu.detect (Xfd_workloads.Btree.program ~init_size:1 ~size:1 ()) in
        let named n =
          List.filter (fun r -> String.equal r.Obs.Span.name n) o.Engine.spans
        in
        Alcotest.(check int) "one post_run per failure point" o.Engine.failure_points
          (List.length (named "post_run"));
        Alcotest.(check int) "one post_replay per failure point" o.Engine.failure_points
          (List.length (named "post_replay"));
        Alcotest.(check int) "snapshots match failure points" o.Engine.failure_points
          (List.length (named "snapshot"));
        (* pre_replay: one incremental segment per failure point plus the
           final catch-up segment. *)
        Alcotest.(check int) "pre_replay segments" (o.Engine.failure_points + 1)
          (List.length (named "pre_replay"));
        let fp_meta r =
          match List.assoc_opt "failure_point" r.Obs.Span.meta with
          | Some (Json.Int i) -> Some i
          | _ -> None
        in
        let fps = List.filter_map fp_meta (named "post_run") |> List.sort compare in
        Alcotest.(check (list int))
          "post_run meta enumerates failure points"
          (List.init o.Engine.failure_points Fun.id)
          fps);
    Tu.case "engine counters tally failure points and bugs" (fun () ->
        let before_fired = Option.value ~default:0 (Obs.counter_value "engine.failure_points.fired") in
        let before_races = Option.value ~default:0 (Obs.counter_value "bugs.race") in
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let fired =
          Option.value ~default:0 (Obs.counter_value "engine.failure_points.fired")
          - before_fired
        in
        Alcotest.(check int) "fired counter matches outcome" o.Engine.failure_points fired;
        let races, _, _, _ = Engine.tally o in
        let race_emissions =
          Option.value ~default:0 (Obs.counter_value "bugs.race") - before_races
        in
        Alcotest.(check bool) "bug emissions cover unique races" true
          (race_emissions >= races && races >= 1));
  ]

let cval name = Option.value ~default:0 (Obs.counter_value name)

let bound_tests =
  [
    Tu.case "negative samples are rejected and counted, not clamped" (fun () ->
        let h = Obs.Histogram.make "test.obs.neg_hist" in
        Obs.Histogram.observe h 5;
        let n0 = Obs.Histogram.count h and s0 = Obs.Histogram.sum h in
        let d0 = cval "obs.observe_dropped" in
        Obs.Histogram.observe h (-3);
        Alcotest.(check int) "count unchanged" n0 (Obs.Histogram.count h);
        Alcotest.(check int) "sum unchanged (no zero-clamp skew)" s0 (Obs.Histogram.sum h);
        Alcotest.(check (list (pair int int)))
          "buckets unchanged" [ (7, 1) ] (Obs.Histogram.buckets h);
        Alcotest.(check int) "drop counted" (d0 + 1) (cval "obs.observe_dropped"));
    Tu.case "finished-span ring keeps the newest spans and counts drops" (fun () ->
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        let cap0 = Obs.Span.capacity () in
        Fun.protect
          ~finally:(fun () ->
            ignore (Obs.Span.drain_spans Obs.Span.genesis);
            Obs.Span.set_capacity cap0)
          (fun () ->
            Obs.Span.set_capacity 8;
            Alcotest.(check int) "capacity applied" 8 (Obs.Span.capacity ());
            let d0 = cval "obs.spans_dropped" in
            let mark = Obs.Span.mark () in
            for i = 1 to 20 do
              Obs.Span.with_ ~name:(Printf.sprintf "test.ring.%d" i) (fun () -> ())
            done;
            let records = Obs.Span.drain_spans mark in
            Alcotest.(check (list string))
              "the 8 newest survive, oldest-first"
              (List.init 8 (fun i -> Printf.sprintf "test.ring.%d" (13 + i)))
              (List.map (fun r -> r.Obs.Span.name) records);
            Alcotest.(check int) "the 12 oldest were dropped and counted" (d0 + 12)
              (cval "obs.spans_dropped");
            (* Shrinking below the live count also drops-and-counts. *)
            for i = 1 to 6 do
              Obs.Span.with_ ~name:(Printf.sprintf "test.shrink.%d" i) (fun () -> ())
            done;
            let d1 = cval "obs.spans_dropped" in
            Obs.Span.set_capacity 2;
            Alcotest.(check int) "shrink drops the overflow" (d1 + 4)
              (cval "obs.spans_dropped");
            let kept = Obs.Span.drain_spans Obs.Span.genesis in
            Alcotest.(check (list string))
              "shrink keeps the newest" [ "test.shrink.5"; "test.shrink.6" ]
              (List.map (fun r -> r.Obs.Span.name) kept)));
  ]

let mt_tests =
  [
    Tu.case "metrics sum exactly under 4-domain hammering" (fun () ->
        let c = Obs.Counter.make "test.obs.mt_counter" in
        let h = Obs.Histogram.make "test.obs.mt_hist" in
        let v0 = Obs.Counter.value c in
        let n0 = Obs.Histogram.count h and s0 = Obs.Histogram.sum h in
        let per = 10_000 in
        let work () =
          for i = 1 to per do
            Obs.Counter.incr c;
            Obs.Histogram.observe h (i land 7)
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn work) in
        List.iter Domain.join domains;
        Alcotest.(check int) "counter exact" (v0 + (4 * per)) (Obs.Counter.value c);
        Alcotest.(check int) "histogram count exact" (n0 + (4 * per)) (Obs.Histogram.count h);
        (* i land 7 cycles 1..7,0: each period of 8 sums to 28. *)
        Alcotest.(check int) "histogram sum exact"
          (s0 + (4 * (per / 8 * 28)))
          (Obs.Histogram.sum h));
    Tu.case "concurrent drain_spans neither loses nor duplicates a span" (fun () ->
        let program () = Xfd_workloads.Array_update.program ~size:2 () in
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        let solo = Tu.detect (program ()) in
        let expected = List.length solo.Engine.spans in
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        (* Steal from the shared buffer for the whole duration of a detect
           running on another domain; every span must end up in exactly one
           of: the outcome, a steal, or the final sweep. *)
        let finished = Atomic.make false in
        let d =
          Domain.spawn (fun () ->
              let o = Tu.detect (program ()) in
              Atomic.set finished true;
              o)
        in
        let stolen = ref [] in
        while not (Atomic.get finished) do
          (match Obs.Span.drain_spans Obs.Span.genesis with [] -> () | rs -> stolen := rs :: !stolen);
          Domain.cpu_relax ()
        done;
        let o = Domain.join d in
        let leftover = Obs.Span.drain_spans Obs.Span.genesis in
        let all = o.Engine.spans @ leftover @ List.concat !stolen in
        Alcotest.(check int) "span count conserved" expected (List.length all);
        let ids = List.map (fun r -> r.Obs.Span.id) all in
        Alcotest.(check int) "no span delivered twice" (List.length ids)
          (List.length (List.sort_uniq compare ids)));
  ]

let suite =
  [
    ("obs.metrics", counter_tests);
    ("obs.spans", span_tests);
    ("obs.bounds", bound_tests);
    ("obs.mt", mt_tests);
    ("obs.jsonl", jsonl_tests);
    ("obs.engine", engine_tests);
  ]
