(* Tests for the queue workload, post-failure value assertions (section
   5.5), the report module, and small experiment-harness helpers. *)

module Ctx = Xfd_sim.Ctx
module Queue_wl = Xfd_workloads.Queue
module Report = Xfd.Report

let l = Tu.loc __POS__
let base = Xfd_mem.Addr.pool_base

let queue_tests =
  [
    Tu.case "fifo order" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let q = Queue_wl.create ctx in
        List.iter (fun v -> Queue_wl.enqueue ctx q ~variant:`Correct v) [ 1L; 2L; 3L ];
        Alcotest.(check int) "length" 3 (Queue_wl.length ctx q);
        Alcotest.check Tu.i64 "first out" 1L (Queue_wl.dequeue ctx q);
        Alcotest.check Tu.i64 "second out" 2L (Queue_wl.dequeue ctx q);
        Alcotest.(check (list Tu.i64)) "peek rest" [ 3L ] (Queue_wl.peek_all ctx q));
    Tu.case "empty and full raise" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let q = Queue_wl.create ctx in
        Alcotest.check_raises "empty" Queue_wl.Empty (fun () -> ignore (Queue_wl.dequeue ctx q));
        for i = 1 to Queue_wl.capacity do
          Queue_wl.enqueue ctx q ~variant:`Correct (Int64.of_int i)
        done;
        Alcotest.check_raises "full" Queue_wl.Full (fun () ->
            Queue_wl.enqueue ctx q ~variant:`Correct 0L));
    Tu.case "ring wraps around" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let q = Queue_wl.create ctx in
        for round = 0 to 3 do
          for i = 0 to Queue_wl.capacity - 1 do
            Queue_wl.enqueue ctx q ~variant:`Correct (Int64.of_int ((round * 100) + i))
          done;
          for i = 0 to Queue_wl.capacity - 1 do
            Alcotest.check Tu.i64 "fifo across wraps"
              (Int64.of_int ((round * 100) + i))
              (Queue_wl.dequeue ctx q)
          done
        done);
    Tu.case "live entries survive a strict crash" (fun () ->
        let vs =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let q = Queue_wl.create ctx in
              List.iter (fun v -> Queue_wl.enqueue ctx q ~variant:`Correct v) [ 7L; 8L; 9L ];
              ignore (Queue_wl.dequeue ctx q))
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let q = Queue_wl.open_ ctx in
              Queue_wl.peek_all ctx q)
        in
        Alcotest.(check (list Tu.i64)) "committed entries" [ 8L; 9L ] vs);
    Tu.case "correct variant clean under detection" (fun () ->
        Tu.check_clean "queue" (Tu.detect (Queue_wl.program ())));
    Tu.case "tail-first commit races" (fun () ->
        let r, _, _, _ = Tu.tally_of (Queue_wl.program ~variant:`Tail_first ()) in
        Alcotest.(check bool) "race" true (r >= 1));
    Tu.case "missing entry persist races" (fun () ->
        let r, _, _, _ = Tu.tally_of (Queue_wl.program ~variant:`No_entry_persist ()) in
        Alcotest.(check bool) "race" true (r >= 1));
  ]

(* A workload whose bug is purely value-level: it writes the WRONG value
   into a correctly persisted slot.  The shadow PM cannot see it (the
   paper's stated limitation), but a post-failure value assertion plus the
   failure-injection machinery catches it — section 5.5's recipe. *)
let assertion_program ~buggy =
  let slot = base and mirror = base + 64 in
  {
    Xfd.Engine.name = "value-assert";
    setup = (fun _ -> ());
    pre =
      (fun ctx ->
        (* Both copies act as a checksum-style pair: reads are benign, so
           the persistence machinery stays quiet and only values matter. *)
        Ctx.add_commit_var ctx ~loc:l slot 8;
        Ctx.add_commit_var ctx ~loc:l mirror 8;
        Ctx.roi_begin ctx ~loc:l;
        (* Keep two copies that must agree; the bug writes them unequal. *)
        Ctx.write_i64 ctx ~loc:l slot 5L;
        Ctx.persist_barrier ctx ~loc:l slot 8;
        Ctx.write_i64 ctx ~loc:l mirror (if buggy then 6L else 5L);
        Ctx.persist_barrier ctx ~loc:l mirror 8;
        Ctx.roi_end ctx ~loc:l);
    post =
      (fun ctx ->
        Ctx.add_commit_var ctx ~loc:l slot 8;
        Ctx.add_commit_var ctx ~loc:l mirror 8;
        Ctx.roi_begin ctx ~loc:l;
        let a = Ctx.read_i64 ctx ~loc:l slot in
        let b = Ctx.read_i64 ctx ~loc:l mirror in
        (* Both copies persisted: no race, no semantic bug.  Only the value
           assertion can catch the divergence — and must tolerate the legal
           mid-update state where the mirror was not yet written. *)
        Ctx.check ctx ~loc:l
          (Int64.equal b 0L || Int64.equal a b)
          "mirror diverged from slot";
        Ctx.roi_end ctx ~loc:l);
  }

let assertion_tests =
  [
    Tu.case "check is silent when the condition holds" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Ctx.check ctx ~loc:l true "fine";
        Alcotest.(check pass) "no raise" () ());
    Tu.case "check raises and names the location" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        match Ctx.check ctx ~loc:l false "boom" with
        | () -> Alcotest.fail "expected Assertion_failed"
        | exception Ctx.Assertion_failed msg ->
          Alcotest.(check bool) "message" true (String.length msg > 4));
    Tu.case "value bug invisible to the shadow PM, caught by the assertion" (fun () ->
        let o = Tu.detect (assertion_program ~buggy:true) in
        let races, semantics, _, errors = Xfd.Engine.tally o in
        Alcotest.(check int) "no races" 0 races;
        Alcotest.(check int) "no semantic bugs" 0 semantics;
        Alcotest.(check bool) "assertion fired at some failure point" true (errors >= 1));
    Tu.case "correct values keep the assertion quiet" (fun () ->
        Tu.check_clean "value-assert correct" (Tu.detect (assertion_program ~buggy:false)));
  ]

let report_tests =
  [
    Tu.case "dedup keys distinguish bug kinds" (fun () ->
        let loc1 = Xfd_util.Loc.make ~file:"a.ml" ~line:1 in
        let loc2 = Xfd_util.Loc.make ~file:"a.ml" ~line:2 in
        let race u = Report.Race { addr = 0; size = 8; read_loc = loc1; write_loc = loc2; uninit = u; provenance = None } in
        let sem s = Report.Semantic { addr = 0; size = 8; read_loc = loc1; write_loc = loc2; status = s; provenance = None } in
        let keys =
          List.map Report.dedup_key
            [
              race false;
              race true;
              sem Xfd.Cstate.Stale;
              sem Xfd.Cstate.Uncommitted;
              Report.Perf { addr = 0; loc = loc1; waste = `Duplicate_tx_add; provenance = None };
              Report.Perf { addr = 0; loc = loc1; waste = `Flush Xfd.Pstate.Double_flush; provenance = None };
              Report.Post_failure_error { exn = "x"; failure_point = 3 };
            ]
        in
        Alcotest.(check int) "all distinct" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    Tu.case "same program points share a key across failure points" (fun () ->
        let loc1 = Xfd_util.Loc.make ~file:"a.ml" ~line:1 in
        let loc2 = Xfd_util.Loc.make ~file:"a.ml" ~line:2 in
        let mk addr = Report.Race { addr; size = 8; read_loc = loc1; write_loc = loc2; uninit = false; provenance = None } in
        Alcotest.(check string) "key ignores address" (Report.dedup_key (mk 0))
          (Report.dedup_key (mk 4096)));
    Tu.case "classification predicates" (fun () ->
        let loc = Xfd_util.Loc.unknown in
        let race = Report.Race { addr = 0; size = 1; read_loc = loc; write_loc = loc; uninit = false; provenance = None } in
        Alcotest.(check bool) "race" true (Report.is_race race);
        Alcotest.(check bool) "not semantic" false (Report.is_semantic race);
        let err = Report.Post_failure_error { exn = "e"; failure_point = 0 } in
        Alcotest.(check bool) "post error" true (Report.is_post_error err));
    Tu.case "pp_bug renders every kind" (fun () ->
        let loc = Xfd_util.Loc.make ~file:"w.ml" ~line:9 in
        List.iter
          (fun b ->
            let s = Format.asprintf "%a" Report.pp_bug b in
            Alcotest.(check bool) "non-empty" true (String.length s > 10))
          [
            Report.Race { addr = 64; size = 8; read_loc = loc; write_loc = loc; uninit = true; provenance = None };
            Report.Semantic { addr = 64; size = 8; read_loc = loc; write_loc = loc; status = Xfd.Cstate.Stale; provenance = None };
            Report.Perf { addr = 64; loc; waste = `Flush Xfd.Pstate.Unnecessary_flush; provenance = None };
            Report.Post_failure_error { exn = "Boom"; failure_point = 7 };
          ]);
  ]

let harness_tests =
  [
    Tu.case "workload_set finds names loosely" (fun () ->
        List.iter
          (fun name ->
            ignore (Xfd_experiments.Workload_set.find name))
          [ "btree"; "B-Tree"; "hashmap_tx"; "HASHMAP-TX"; "redis"; "Memcached" ];
        Alcotest.check_raises "unknown"
          (Invalid_argument "Workload_set.find: unknown workload nope") (fun () ->
            ignore (Xfd_experiments.Workload_set.find "nope")));
    Tu.case "geomean and formatting helpers" (fun () ->
        let open Xfd_experiments.Tbl in
        Alcotest.(check bool) "geomean of equal values" true (abs_float (geomean [ 2.0; 2.0 ] -. 2.0) < 1e-9);
        Alcotest.(check bool) "geomean skips nonpositive" true (abs_float (geomean [ 4.0; 0.0 ] -. 4.0) < 1e-9);
        Alcotest.(check string) "microseconds" "500us" (secs 0.0005);
        Alcotest.(check string) "milliseconds" "12.00ms" (secs 0.012);
        Alcotest.(check string) "seconds" "2.50s" (secs 2.5);
        Alcotest.(check string) "times" "3.0x" (times 3.0));
    Tu.case "fig13 r_squared is 1 on a perfect line" (fun () ->
        let series =
          {
            Xfd_experiments.Fig13.name = "synthetic";
            points =
              List.map
                (fun i ->
                  {
                    Xfd_experiments.Fig13.transactions = i;
                    failure_points = 2 * i;
                    wall = 0.5 *. float i;
                  })
                [ 1; 2; 3; 4; 5 ];
          }
        in
        Alcotest.(check bool) "r2 = 1" true
          (abs_float (Xfd_experiments.Fig13.r_squared series -. 1.0) < 1e-9));
    Tu.case "table4 counts sources when run from the repo root" (fun () ->
        (* dune runs tests in _build sandboxes, so LoC may be unavailable;
           the rows must still be well-formed. *)
        let rows = Xfd_experiments.Table4_exp.run () in
        Alcotest.(check int) "seven workloads" 7 (List.length rows));
  ]

let suite =
  [
    ("extras.queue", queue_tests);
    ("extras.assertions", assertion_tests);
    ("extras.report", report_tests);
    ("extras.harness", harness_tests);
  ]
