(* The flight recorder, Perfetto trace export, live engine progress and
   the bench-diff comparator — and the guarantee that all of it is
   observation-only: verdicts are identical with every channel enabled. *)

module Obs = Xfd_obs.Obs
module Json = Xfd_util.Json
module Engine = Xfd.Engine
module Flight = Xfd_flight.Flight
module Perfetto = Xfd_flight.Perfetto
module Bdiff = Xfd_flight.Bdiff

let program () = Xfd_workloads.Array_update.program ~size:2 ()
let cval name = Option.value ~default:0 (Obs.counter_value name)

(* Strip nondeterministic floats: what detection *found*. *)
let fingerprint (o : Engine.outcome) =
  ( o.Engine.program,
    o.Engine.failure_points,
    o.Engine.pre_events,
    o.Engine.post_events,
    List.map Xfd.Report.dedup_key o.Engine.unique_bugs,
    List.map
      (fun r -> (r.Xfd.Report.failure_point, r.Xfd.Report.trace_pos, r.Xfd.Report.bugs))
      o.Engine.reports )

(* Run [f] with the recorder in a known state, restoring level/capacity
   and clearing the ring afterwards. *)
let with_recorder ?(level = Flight.Info) f =
  let lvl0 = Flight.level () and cap0 = Flight.capacity () in
  Flight.clear ();
  Flight.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_level lvl0;
      Flight.set_capacity cap0;
      Flight.clear ())
    f

let recorder_tests =
  [
    Tu.case "events are leveled, ordered and stamped" (fun () ->
        with_recorder (fun () ->
            Flight.record ~level:Flight.Debug "test.debug" [];
            Flight.record "test.info" [ ("k", Json.Int 1) ];
            Flight.record ~level:Flight.Warn "test.warn" [];
            let names = List.map (fun e -> e.Flight.name) (Flight.events ()) in
            Alcotest.(check (list string))
              "debug filtered at the default threshold" [ "test.info"; "test.warn" ] names;
            Flight.set_level Flight.Debug;
            Flight.record ~level:Flight.Debug "test.debug2" [];
            let evs = Flight.events () in
            Alcotest.(check (list string))
              "debug retained once the threshold allows it"
              [ "test.info"; "test.warn"; "test.debug2" ]
              (List.map (fun e -> e.Flight.name) evs);
            let seqs = List.map (fun e -> e.Flight.seq) evs in
            Alcotest.(check (list int)) "seq strictly increasing" (List.sort compare seqs) seqs;
            Alcotest.(check bool) "fields survive" true
              (List.exists
                 (fun e -> List.assoc_opt "k" e.Flight.fields = Some (Json.Int 1))
                 evs)));
    Tu.case "the ring is bounded and counts drops" (fun () ->
        with_recorder (fun () ->
            Flight.set_capacity 4;
            let d0 = cval "flight.events_dropped" in
            for i = 1 to 10 do
              Flight.record (Printf.sprintf "test.e%d" i) []
            done;
            Alcotest.(check (list string))
              "the 4 newest survive, oldest-first"
              [ "test.e7"; "test.e8"; "test.e9"; "test.e10" ]
              (List.map (fun e -> e.Flight.name) (Flight.events ()));
            Alcotest.(check int) "the 6 oldest were counted" (d0 + 6)
              (cval "flight.events_dropped")));
    Tu.case "run ids are fresh and scope their events" (fun () ->
        with_recorder (fun () ->
            let r1 = Flight.begin_run ~program:"p1" in
            Flight.record "test.mid" [];
            let r2 = Flight.begin_run ~program:"p2" in
            Alcotest.(check bool) "distinct ids" true (r1 <> r2);
            Alcotest.(check string) "current id is the newest" r2 (Flight.run_id ());
            let runs = List.map (fun e -> e.Flight.run) (Flight.events ()) in
            Alcotest.(check (list string)) "events carry their run" [ r1; r1; r2 ] runs));
    Tu.case "disabled mode records nothing" (fun () ->
        with_recorder (fun () ->
            Flight.set_enabled false;
            Fun.protect
              ~finally:(fun () -> Flight.set_enabled true)
              (fun () -> Flight.record "test.ghost" []);
            Alcotest.(check int) "no event" 0 (List.length (Flight.events ()))));
    Tu.case "write_jsonl round-trips through the JSON parser" (fun () ->
        with_recorder (fun () ->
            let (_ : string) = Flight.begin_run ~program:"jsonl" in
            Flight.record "test.a" [ ("x", Json.Int 7) ];
            Flight.record ~level:Flight.Warn "test.b" [];
            let path = Filename.temp_file "xfd_flight" ".jsonl" in
            Fun.protect
              ~finally:(fun () -> Sys.remove path)
              (fun () ->
                let n = Flight.write_jsonl path in
                Alcotest.(check int) "all events written" 3 n;
                let ic = open_in path in
                let lines = ref [] in
                (try
                   while true do
                     lines := input_line ic :: !lines
                   done
                 with End_of_file -> close_in ic);
                let parsed =
                  List.rev_map
                    (fun l ->
                      match Json.of_string l with
                      | Ok j -> j
                      | Error e -> Alcotest.failf "unparseable JSONL line: %s" e)
                    !lines
                in
                Alcotest.(check int) "one record per event" 3 (List.length parsed);
                List.iter
                  (fun j ->
                    Alcotest.(check bool) "flight-typed" true
                      (Json.member "type" j = Some (Json.Str "flight")))
                  parsed)));
    Tu.case "the engine emits a complete lifecycle log" (fun () ->
        with_recorder ~level:Flight.Debug (fun () ->
            let o = Tu.detect (program ()) in
            let evs = Flight.events () in
            let count name =
              List.length (List.filter (fun e -> e.Flight.name = name) evs)
            in
            Alcotest.(check int) "one run.begin" 1 (count "run.begin");
            Alcotest.(check int) "one run.end" 1 (count "run.end");
            Alcotest.(check int) "a schedule per failure point" o.Engine.failure_points
              (count "fp.scheduled");
            Alcotest.(check int) "a snapshot per failure point" o.Engine.failure_points
              (count "snapshot.recorded");
            Alcotest.(check int) "a start per failure point" o.Engine.failure_points
              (count "fp.started");
            Alcotest.(check int) "a verdict per failure point" o.Engine.failure_points
              (count "fp.verdict");
            Alcotest.(check int) "no abort" 0 (count "run.abort");
            let run = Flight.run_id () in
            Alcotest.(check bool) "every event belongs to the run" true
              (List.for_all (fun e -> e.Flight.run = run) evs);
            (match (evs, List.rev evs) with
            | first :: _, last :: _ ->
              Alcotest.(check string) "begins with run.begin" "run.begin" first.Flight.name;
              Alcotest.(check string) "ends with run.end" "run.end" last.Flight.name
            | _ -> Alcotest.fail "empty event log");
            (* run.end carries the outcome's behavioral fingerprint. *)
            let fin = List.find (fun e -> e.Flight.name = "run.end") evs in
            Alcotest.(check (option Tu.json_t)) "failure_points"
              (Some (Json.Int o.Engine.failure_points))
              (List.assoc_opt "failure_points" fin.Flight.fields)));
  ]

let span_names trace =
  match Json.member "traceEvents" trace with
  | Some (Json.Arr evs) ->
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.Str "X"), Some (Json.Str n) -> Some n
        | _ -> None)
      evs
  | _ -> Alcotest.fail "traceEvents missing"

let perfetto_tests =
  [
    Tu.case "of_spans emits valid trace-event JSON that round-trips" (fun () ->
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        let o = Tu.detect (program ()) in
        let trace = Perfetto.of_spans ~process_name:"t" o.Engine.spans in
        let reparsed =
          match Json.of_string (Json.to_string trace) with
          | Ok j -> j
          | Error e -> Alcotest.failf "trace does not round-trip: %s" e
        in
        Alcotest.(check bool) "round-trip is lossless" true (reparsed = trace);
        Alcotest.(check (option Tu.json_t)) "displayTimeUnit"
          (Some (Json.Str "ms"))
          (Json.member "displayTimeUnit" reparsed);
        let slices = span_names reparsed in
        Alcotest.(check int) "one slice per span" (List.length o.Engine.spans)
          (List.length slices);
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " slice present") true (List.mem n slices))
          [ "detect"; "pre_exec"; "post_exec"; "post_run"; "snapshot" ];
        (* Slices carry non-negative µs timestamps on declared tracks. *)
        (match Json.member "traceEvents" reparsed with
        | Some (Json.Arr evs) ->
          let tracks =
            List.filter_map
              (fun e ->
                match (Json.member "ph" e, Json.member "name" e) with
                | Some (Json.Str "M"), Some (Json.Str "thread_name") ->
                  Json.member "tid" e
                | _ -> None)
              evs
          in
          List.iter
            (fun e ->
              match Json.member "ph" e with
              | Some (Json.Str "X") ->
                (match (Json.member "ts" e, Json.member "dur" e) with
                | Some (Json.Float ts), Some (Json.Float dur) ->
                  Alcotest.(check bool) "ts/dur non-negative" true (ts >= 0.0 && dur >= 0.0)
                | _ -> Alcotest.fail "slice without numeric ts/dur");
                Alcotest.(check bool) "slice tid has a thread_name track" true
                  (match Json.member "tid" e with
                  | Some tid -> List.mem tid tracks
                  | None -> false)
              | _ -> ())
            evs
        | _ -> Alcotest.fail "traceEvents missing"));
    Tu.case "to_file writes a loadable trace" (fun () ->
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        let o = Tu.detect (program ()) in
        let path = Filename.temp_file "xfd_trace" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Perfetto.to_file path o.Engine.spans;
            let content = In_channel.with_open_bin path In_channel.input_all in
            match Json.of_string content with
            | Ok j ->
              Alcotest.(check int) "all slices on disk" (List.length o.Engine.spans)
                (List.length (span_names j))
            | Error e -> Alcotest.failf "file unparseable: %s" e));
    Tu.case "the collector taps the stream across multiple runs" (fun () ->
        let c = Perfetto.Collector.start () in
        let o1 = Tu.detect (program ()) in
        let o2 = Tu.detect (Xfd_workloads.Btree.program ~init_size:1 ~size:1 ()) in
        let trace = Perfetto.Collector.stop c in
        Alcotest.(check int) "nothing dropped" 0 (Perfetto.Collector.dropped c);
        Alcotest.(check int) "both runs' spans collected"
          (List.length o1.Engine.spans + List.length o2.Engine.spans)
          (List.length (span_names trace)));
    Tu.case "an empty span set exports a loadable trace" (fun () ->
        let trace = Perfetto.of_spans ~process_name:"empty" [] in
        let reparsed =
          match Json.of_string (Json.to_string trace) with
          | Ok j -> j
          | Error e -> Alcotest.failf "empty trace does not round-trip: %s" e
        in
        Alcotest.(check (list string)) "no slices" [] (span_names reparsed);
        Alcotest.(check (option Tu.json_t)) "displayTimeUnit still present"
          (Some (Json.Str "ms"))
          (Json.member "displayTimeUnit" reparsed));
    Tu.case "adversarial and unicode span names survive export" (fun () ->
        (* Quotes, backslashes, control characters, multi-byte UTF-8 —
           everything the JSON escaper has to get right for Perfetto to
           load the file at all. *)
        let names =
          [
            "quote\"backslash\\slash/";
            "newline\ntab\tcr\r";
            "ctrl\x01\x1f";
            "sn\xc3\xa5pshot \xe2\x9c\x93 \xf0\x9f\x94\xa5";
            "le=\"+Inf\"},{\"fake\":1";
          ]
        in
        let spans =
          List.mapi
            (fun i name ->
              {
                Obs.Span.id = i;
                parent = None;
                name;
                tid = 0;
                start = 1000.0 +. float_of_int i;
                dur = 0.5;
                meta = [];
              })
            names
        in
        let trace = Perfetto.of_spans ~process_name:"adversarial" spans in
        let reparsed =
          match Json.of_string (Json.to_string trace) with
          | Ok j -> j
          | Error e -> Alcotest.failf "adversarial trace does not round-trip: %s" e
        in
        let slices = span_names reparsed in
        Alcotest.(check int) "one slice per span" (List.length names) (List.length slices);
        List.iter
          (fun n ->
            Alcotest.(check bool)
              (Printf.sprintf "name %S survives" n)
              true (List.mem n slices))
          names);
    Tu.case "over a thousand spans round-trip through the collector" (fun () ->
        let n = 1200 in
        let c = Perfetto.Collector.start () in
        for i = 0 to n - 1 do
          Obs.Span.with_ ~name:(Printf.sprintf "bulk_%04d" i) (fun () -> ())
        done;
        let trace = Perfetto.Collector.stop c in
        (* Leave the global finished-span ring clean for later suites. *)
        ignore (Obs.Span.drain_spans Obs.Span.genesis);
        Alcotest.(check int) "nothing dropped" 0 (Perfetto.Collector.dropped c);
        let reparsed =
          match Json.of_string (Json.to_string trace) with
          | Ok j -> j
          | Error e -> Alcotest.failf "bulk trace does not round-trip: %s" e
        in
        let slices = List.filter (fun s -> String.length s >= 5 && String.sub s 0 5 = "bulk_") (span_names reparsed) in
        Alcotest.(check int) "all slices present" n (List.length slices);
        Alcotest.(check int) "no duplicates" n
          (List.length (List.sort_uniq compare slices)));
  ]

let progress_tests =
  [
    Tu.case "on_progress ramps 0..total exactly once per failure point" (fun () ->
        let seen = ref [] in
        let o =
          Engine.detect ~on_progress:(fun p -> seen := p :: !seen) (program ())
        in
        let ps = List.rev !seen in
        Alcotest.(check bool) "total is the failure-point count" true
          (List.for_all (fun p -> p.Engine.total = o.Engine.failure_points) ps);
        Alcotest.(check (list int))
          "sequential runs report every step in order"
          (List.init (o.Engine.failure_points + 1) Fun.id)
          (List.map (fun p -> p.Engine.completed) ps));
    Tu.case "a raising callback is swallowed and verdict-neutral" (fun () ->
        let quiet = Tu.detect (program ()) in
        let noisy =
          Engine.detect ~on_progress:(fun _ -> failwith "boom") (program ())
        in
        Alcotest.(check bool) "identical findings" true
          (fingerprint quiet = fingerprint noisy));
    Tu.case "detect_guided threads progress through" (fun () ->
        let last = ref None in
        let _, o =
          Xfd_lint.Lint.detect_guided
            ~on_progress:(fun p -> last := Some p)
            (program ())
        in
        match !last with
        | Some p ->
          Alcotest.(check int) "finishes complete" o.Engine.failure_points p.Engine.completed;
          Alcotest.(check int) "with the right total" o.Engine.failure_points p.Engine.total
        | None -> Alcotest.fail "no progress reported");
    Tu.case "full observability leaves the verdict byte-identical" (fun () ->
        let off = Tu.detect (program ()) in
        let lvl0 = Flight.level () in
        let collector = Perfetto.Collector.start () in
        let on =
          Fun.protect
            ~finally:(fun () ->
              Flight.set_level lvl0;
              ignore (Perfetto.Collector.stop collector))
            (fun () ->
              Flight.set_level Flight.Debug;
              Engine.detect ~on_progress:(fun _ -> ()) (program ()))
        in
        Alcotest.(check bool) "identical findings" true (fingerprint off = fingerprint on));
  ]

(* A miniature BENCH document; every leaf name exercises one class. *)
let bench ~count ~bytes ~wall ~rate =
  Json.Obj
    [
      ("type", Json.Str "BENCH_x");
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [
                ("workload", Json.Str "w");
                ("event_count", Json.Int count);
                ("peak_bytes", Json.Int bytes);
                ("wall_s", Json.Float wall);
                ("points_per_sec", Json.Float rate);
              ];
          ] );
    ]

let diff_exn ?tol ~baseline ~current () =
  match Bdiff.diff ?tol ~baseline ~current () with
  | Ok items -> items
  | Error e -> Alcotest.failf "unexpected structural mismatch: %s" e

let regressed items = List.length (Bdiff.regressions items)

let bdiff_tests =
  [
    Tu.case "metric classes derive from the leaf name" (fun () ->
        Alcotest.(check bool) "bytes" true (Bdiff.classify "peak_image_bytes" = Bdiff.Bytes);
        Alcotest.(check bool) "wall" true (Bdiff.classify "wall_s" = Bdiff.Wall);
        Alcotest.(check bool) "rate" true (Bdiff.classify "points_per_sec" = Bdiff.Rate);
        Alcotest.(check bool) "exact" true (Bdiff.classify "failure_points" = Bdiff.Exact));
    Tu.case "self-comparison is clean" (fun () ->
        let d = bench ~count:100 ~bytes:4096 ~wall:1.0 ~rate:50.0 in
        let items = diff_exn ~baseline:d ~current:d () in
        Alcotest.(check int) "all metrics compared" 4 (List.length items);
        Alcotest.(check int) "no regression" 0 (regressed items));
    Tu.case "exact metrics fail on any drift, either direction" (fun () ->
        let b = bench ~count:100 ~bytes:4096 ~wall:1.0 ~rate:50.0 in
        let up = bench ~count:101 ~bytes:4096 ~wall:1.0 ~rate:50.0 in
        let down = bench ~count:99 ~bytes:4096 ~wall:1.0 ~rate:50.0 in
        Alcotest.(check int) "+1 regresses" 1 (regressed (diff_exn ~baseline:b ~current:up ()));
        Alcotest.(check int) "-1 regresses too" 1
          (regressed (diff_exn ~baseline:b ~current:down ())));
    Tu.case "byte metrics tolerate +25% and only gate the regression direction" (fun () ->
        let b = bench ~count:1 ~bytes:1000 ~wall:1.0 ~rate:1.0 in
        let within = bench ~count:1 ~bytes:1200 ~wall:1.0 ~rate:1.0 in
        let beyond = bench ~count:1 ~bytes:1300 ~wall:1.0 ~rate:1.0 in
        let improved = bench ~count:1 ~bytes:500 ~wall:1.0 ~rate:1.0 in
        Alcotest.(check int) "+20% passes" 0
          (regressed (diff_exn ~baseline:b ~current:within ()));
        Alcotest.(check int) "+30% fails" 1
          (regressed (diff_exn ~baseline:b ~current:beyond ()));
        let items = diff_exn ~baseline:b ~current:improved () in
        Alcotest.(check int) "halving is not a failure" 0 (regressed items);
        Alcotest.(check bool) "and is flagged as improvement" true
          (List.exists
             (fun i -> i.Bdiff.cls = Bdiff.Bytes && i.Bdiff.verdict = Bdiff.Improved)
             items));
    Tu.case "wall and rate gate only with an explicit tolerance" (fun () ->
        let b = bench ~count:1 ~bytes:1 ~wall:1.0 ~rate:100.0 in
        let slow = bench ~count:1 ~bytes:1 ~wall:3.0 ~rate:20.0 in
        Alcotest.(check int) "not gated by default" 0
          (regressed (diff_exn ~baseline:b ~current:slow ()));
        let tol = { Bdiff.default_tolerances with wall = Some 0.5; rate = Some 0.5 } in
        Alcotest.(check int) "gated when asked" 2
          (regressed (diff_exn ~tol ~baseline:b ~current:slow ())));
    Tu.case "structural mismatch is an error, not a regression" (fun () ->
        let b = bench ~count:1 ~bytes:1 ~wall:1.0 ~rate:1.0 in
        let renamed =
          match b with
          | Json.Obj [ t; (_, rows) ] -> Json.Obj [ t; ("results", rows) ]
          | _ -> assert false
        in
        (match Bdiff.diff ~baseline:b ~current:renamed () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "field rename must be a structural error");
        let two_rows =
          match b with
          | Json.Obj [ t; (k, Json.Arr [ row ]) ] -> Json.Obj [ t; (k, Json.Arr [ row; row ]) ]
          | _ -> assert false
        in
        (match Bdiff.diff ~baseline:b ~current:two_rows () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "row-count change must be a structural error");
        match
          Bdiff.diff ~baseline:(Json.Str "B-Tree") ~current:(Json.Str "C-Tree") ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "string drift must be a structural error");
    Tu.case "the committed baseline self-compares clean" (fun () ->
        (* The in-repo BENCH files must always be diffable against
           themselves: schema drift would break the CI gate silently. *)
        List.iter
          (fun file ->
            let path = Filename.concat ".." file in
            match
              In_channel.with_open_bin path In_channel.input_all |> Json.of_string
            with
            | exception Sys_error _ ->
              Alcotest.failf "committed baseline %s missing" file
            | Error e -> Alcotest.failf "%s unparseable: %s" file e
            | Ok doc ->
              let items = diff_exn ~baseline:doc ~current:doc () in
              Alcotest.(check bool) (file ^ " has metrics") true (items <> []);
              Alcotest.(check int) (file ^ " self-clean") 0 (regressed items))
          [ "BENCH_detect.json"; "BENCH_snapshots.json" ]);
    Tu.case "bench_diff.exe exits 3 on missing or unparseable input" (fun () ->
        (* Exit codes are the comparator's CI contract: 0 clean, 1
           regression, 2 structural/usage, 3 unreadable input.  A missing
           baseline (bench step never ran) must be distinguishable from
           two well-formed files that disagree. *)
        let exe = Filename.concat ".." "bench/bench_diff.exe" in
        let run args = Sys.command (Filename.quote_command exe args ^ " >/dev/null 2>&1") in
        Alcotest.(check int) "missing baseline exits 3" 3
          (run [ "/nonexistent-xfd-baseline.json"; Filename.concat ".." "BENCH_detect.json" ]);
        let bad = Filename.temp_file "xfd_badbench" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove bad)
          (fun () ->
            Out_channel.with_open_text bad (fun oc -> output_string oc "not json {\n");
            Alcotest.(check int) "unparseable baseline exits 3" 3
              (run [ bad; Filename.concat ".." "BENCH_detect.json" ]));
        Alcotest.(check int) "structural mismatch still exits 2" 2
          (run
             [ Filename.concat ".." "BENCH_detect.json";
               Filename.concat ".." "BENCH_snapshots.json" ]);
        Alcotest.(check int) "self-comparison still exits 0" 0
          (run
             [ Filename.concat ".." "BENCH_detect.json";
               Filename.concat ".." "BENCH_detect.json" ]));
  ]

let suite =
  [
    ("flight.recorder", recorder_tests);
    ("flight.perfetto", perfetto_tests);
    ("flight.progress", progress_tests);
    ("flight.bdiff", bdiff_tests);
  ]
