(* Unit tests for the detection core: state machines, shadow PM, commit
   registry, detector backend. *)

module Pstate = Xfd.Pstate
module Cstate = Xfd.Cstate
module Shadow = Xfd.Shadow_pm
module Registry = Xfd.Commit_registry
module Detector = Xfd.Detector
module Report = Xfd.Report
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Loc = Xfd_util.Loc

let l = Loc.make ~file:"t.ml" ~line:1
let l2 = Loc.make ~file:"t.ml" ~line:2

let pstate_tests =
  [
    Tu.case "figure 9 transitions" (fun () ->
        let open Pstate in
        Alcotest.(check string) "U+w" "M" (to_string (on_write Unmodified));
        Alcotest.(check string) "M+w" "M" (to_string (on_write Modified));
        Alcotest.(check string) "W+w" "M" (to_string (on_write Writeback_pending));
        Alcotest.(check string) "P+w" "M" (to_string (on_write Persisted));
        Alcotest.(check string) "M+f" "W" (to_string (on_flush Modified));
        Alcotest.(check string) "U+f" "U" (to_string (on_flush Unmodified));
        Alcotest.(check string) "P+f" "P" (to_string (on_flush Persisted));
        Alcotest.(check string) "W+sf" "P" (to_string (on_fence Writeback_pending));
        Alcotest.(check string) "M+sf" "M" (to_string (on_fence Modified));
        Alcotest.(check string) "nt" "W" (to_string (on_nt_write Unmodified)));
    Tu.case "only persisted is persisted" (fun () ->
        let open Pstate in
        Alcotest.(check bool) "P" true (is_persisted Persisted);
        List.iter
          (fun s -> Alcotest.(check bool) (to_string s) false (is_persisted s))
          [ Unmodified; Modified; Writeback_pending ]);
  ]

let cstate_tests =
  [
    Tu.case "eq.3 window classification" (fun () ->
        let c = Cstate.classify ~t_prelast:2 ~t_last:5 in
        Alcotest.(check string) "inside" "C" (Cstate.to_string (c ~tlast:3));
        Alcotest.(check string) "at prelast" "C" (Cstate.to_string (c ~tlast:2));
        Alcotest.(check string) "at last" "IC-uncommitted" (Cstate.to_string (c ~tlast:5));
        Alcotest.(check string) "after" "IC-uncommitted" (Cstate.to_string (c ~tlast:7));
        Alcotest.(check string) "before" "IC-stale" (Cstate.to_string (c ~tlast:1)));
    Tu.case "single commit uses open lower bound" (fun () ->
        Alcotest.(check string) "anything earlier is consistent" "C"
          (Cstate.to_string (Cstate.classify ~t_prelast:(-1) ~t_last:4 ~tlast:0)));
    Tu.case "never committed means uncommitted" (fun () ->
        Alcotest.(check string) "uncommitted" "IC-uncommitted"
          (Cstate.to_string Cstate.not_committed));
    Tu.case "figure 10 transitions" (fun () ->
        let open Cstate in
        Alcotest.(check bool) "write -> uncommitted" true (equal (on_write Consistent) Uncommitted);
        Alcotest.(check bool) "commit earlier write" true
          (equal (on_commit ~modified_before:true Uncommitted) Consistent);
        Alcotest.(check bool) "commit same-epoch write" true
          (equal (on_commit ~modified_before:false Uncommitted) Uncommitted);
        Alcotest.(check bool) "recommit consistent -> stale" true
          (equal (on_commit ~modified_before:true Consistent) Stale);
        Alcotest.(check bool) "stale stays stale" true
          (equal (on_commit ~modified_before:true Stale) Stale));
    Tu.case "fsm agrees with window classification on a random trace" (fun () ->
        (* One location m, one commit variable x.  Apply a random sequence
           of (write m | commit x) at increasing timestamps and compare the
           FSM state with the Eq. 3 classification. *)
        let rng = Xfd_util.Rng.create 99L in
        for _trial = 1 to 200 do
          let fsm = ref Cstate.Uncommitted in
          let tlast = ref (-2) and t_prelast = ref (-1) and t_last = ref (-1) in
          let commits = ref 0 in
          let written = ref false in
          for ts = 0 to 20 do
            if Xfd_util.Rng.bool rng then begin
              fsm := Cstate.on_write !fsm;
              tlast := ts;
              written := true
            end
            else begin
              fsm := Cstate.on_commit ~modified_before:(!tlast < ts) !fsm;
              t_prelast := !t_last;
              t_last := ts;
              incr commits
            end
          done;
          if !written && !commits > 0 then begin
            let expected =
              Cstate.classify
                ~t_prelast:(if !commits = 1 then -1 else !t_prelast)
                ~t_last:!t_last ~tlast:!tlast
            in
            Alcotest.(check string) "fsm = window" (Cstate.to_string expected)
              (Cstate.to_string !fsm)
          end
        done);
  ]

let shadow_tests =
  [
    Tu.case "write/flush/fence lifecycle" (fun () ->
        let s = Shadow.create () in
        Shadow.write_byte s 100 ~ts:0 ~ev:0 ~loc:l ~nt:false ~post:false;
        (match Shadow.find s 100 with
        | Some c -> Alcotest.(check string) "M" "M" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "cell missing");
        (match Shadow.flush_line s 64 ~ev:0 with
        | `Had_modified -> ()
        | _ -> Alcotest.fail "expected useful flush");
        Shadow.fence s ~ev:0;
        match Shadow.find s 100 with
        | Some c -> Alcotest.(check string) "P" "P" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "cell missing");
    Tu.case "flush classification" (fun () ->
        let s = Shadow.create () in
        Alcotest.(check bool) "untracked line is clean" true (Shadow.flush_line s 0 ~ev:0 = `Clean);
        Shadow.write_byte s 5 ~ts:0 ~ev:0 ~loc:l ~nt:false ~post:false;
        ignore (Shadow.flush_line s 0 ~ev:0);
        Alcotest.(check bool) "second flush is double" true
          (Shadow.flush_line s 0 ~ev:0 = `Waste Pstate.Double_flush);
        Shadow.fence s ~ev:0;
        Alcotest.(check bool) "flush of persisted is unnecessary" true
          (Shadow.flush_line s 0 ~ev:0 = `Waste Pstate.Unnecessary_flush));
    Tu.case "nt write goes straight to pending" (fun () ->
        let s = Shadow.create () in
        Shadow.write_byte s 7 ~ts:0 ~ev:0 ~loc:l ~nt:true ~post:false;
        Shadow.fence s ~ev:0;
        match Shadow.find s 7 with
        | Some c -> Alcotest.(check string) "P" "P" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "cell missing");
    Tu.case "overlay copy-on-write isolation" (fun () ->
        let base = Shadow.create () in
        Shadow.write_byte base 10 ~ts:1 ~ev:0 ~loc:l ~nt:false ~post:false;
        let fork = Shadow.overlay base in
        (* fork sees the parent cell *)
        (match Shadow.find fork 10 with
        | Some c -> Alcotest.(check int) "tlast" 1 c.Shadow.tlast
        | None -> Alcotest.fail "fork missed parent cell");
        Shadow.write_byte fork 10 ~ts:5 ~ev:0 ~loc:l2 ~nt:false ~post:true;
        (* parent unchanged *)
        (match Shadow.find base 10 with
        | Some c ->
          Alcotest.(check int) "parent tlast" 1 c.Shadow.tlast;
          Alcotest.(check bool) "parent not post" false c.Shadow.post_written
        | None -> Alcotest.fail "parent lost cell");
        match Shadow.find fork 10 with
        | Some c -> Alcotest.(check bool) "fork post" true c.Shadow.post_written
        | None -> Alcotest.fail "fork lost cell");
    Tu.case "overlay fence does not leak to parent" (fun () ->
        let base = Shadow.create () in
        Shadow.write_byte base 10 ~ts:1 ~ev:0 ~loc:l ~nt:false ~post:false;
        let fork = Shadow.overlay base in
        ignore (Shadow.flush_line fork 0 ~ev:0);
        Shadow.fence fork ~ev:0;
        (match Shadow.find fork 10 with
        | Some c -> Alcotest.(check string) "fork P" "P" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "missing");
        match Shadow.find base 10 with
        | Some c -> Alcotest.(check string) "parent still M" "M" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "missing");
    Tu.case "mark_alloc_raw resets and flags bytes" (fun () ->
        let s = Shadow.create () in
        Shadow.write_byte s 20 ~ts:3 ~ev:0 ~loc:l ~nt:false ~post:false;
        Shadow.mark_alloc_raw s 20 4 ~ev:0;
        (match Shadow.find s 20 with
        | Some c ->
          Alcotest.(check bool) "uninit" true c.Shadow.uninit;
          Alcotest.(check string) "U" "U" (Pstate.to_string c.Shadow.pstate)
        | None -> Alcotest.fail "missing");
        Shadow.write_byte s 20 ~ts:4 ~ev:0 ~loc:l ~nt:false ~post:false;
        match Shadow.find s 20 with
        | Some c -> Alcotest.(check bool) "write clears uninit" false c.Shadow.uninit
        | None -> Alcotest.fail "missing");
  ]

let registry_tests =
  [
    Tu.case "commit byte membership" (fun () ->
        let r = Registry.create () in
        Registry.register_var r ~var:100 ~size:8;
        Alcotest.(check bool) "inside" true (Registry.is_commit_byte r 104);
        Alcotest.(check bool) "outside" false (Registry.is_commit_byte r 108));
    Tu.case "window evolves with commit writes" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Alcotest.(check bool) "never committed" true (Registry.window_for r 200 = Some None);
        Registry.on_write r ~defer:false ~addr:100 ~size:8 ~ts:3 ~ev:0;
        Alcotest.(check bool) "one commit" true (Registry.window_for r 200 = Some (Some (-1, 3)));
        Registry.on_write r ~defer:false ~addr:100 ~size:8 ~ts:7 ~ev:0;
        Alcotest.(check bool) "two commits" true (Registry.window_for r 200 = Some (Some (3, 7)));
        Alcotest.(check bool) "unrelated byte" true (Registry.window_for r 300 = None));
    Tu.case "partial overlap counts as commit write" (fun () ->
        let r = Registry.create () in
        Registry.register_var r ~var:100 ~size:8;
        Registry.register_range r ~var:100 ~addr:200 ~size:4;
        Registry.on_write r ~defer:false ~addr:96 ~size:8 ~ts:1 ~ev:0 (* spans 96..103 *);
        Alcotest.(check bool) "committed" true (Registry.window_for r 200 = Some (Some (-1, 1))));
    Tu.case "eq.2 disjointness enforced" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:16;
        Alcotest.(check bool) "same var re-register ok" true
          (try
             Registry.register_range r ~var:100 ~addr:200 ~size:16;
             true
           with _ -> false);
        match Registry.register_range r ~var:300 ~addr:208 ~size:4 with
        | () -> Alcotest.fail "expected Overlapping_commit_ranges"
        | exception Registry.Overlapping_commit_ranges (a, b) ->
          Alcotest.(check (pair int int)) "culprits" (100, 300) (a, b));
    Tu.case "clone is independent" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Registry.on_write r ~defer:false ~addr:100 ~size:8 ~ts:1 ~ev:0;
        let c = Registry.clone r in
        Registry.on_write c ~defer:false ~addr:100 ~size:8 ~ts:9 ~ev:0;
        Alcotest.(check bool) "original window" true (Registry.window_for r 200 = Some (Some (-1, 1)));
        Alcotest.(check bool) "clone window" true (Registry.window_for c 200 = Some (Some (1, 9))));
    Tu.case "overlap with an existing range names both culprits" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:16;
        (* A one-byte graze at either edge is as illegal as full overlap. *)
        (match Registry.register_range r ~var:300 ~addr:215 ~size:8 with
        | () -> Alcotest.fail "tail graze accepted"
        | exception Registry.Overlapping_commit_ranges (a, b) ->
          Alcotest.(check (pair int int)) "tail culprits" (100, 300) (a, b));
        match Registry.register_range r ~var:300 ~addr:192 ~size:9 with
        | () -> Alcotest.fail "head graze accepted"
        | exception Registry.Overlapping_commit_ranges (a, b) ->
          Alcotest.(check (pair int int)) "head culprits" (100, 300) (a, b));
    Tu.case "unregistering mid-run frees bytes and ranges" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:16;
        Registry.on_write r ~defer:false ~addr:100 ~size:8 ~ts:2 ~ev:0;
        Registry.unregister_var r ~var:100;
        Alcotest.(check int) "var gone" 0 (Registry.var_count r);
        Alcotest.(check bool) "commit bytes freed" false (Registry.is_commit_byte r 100);
        Alcotest.(check bool) "range bytes freed" true (Registry.window_for r 200 = None);
        (* The freed range can now belong to someone else. *)
        Registry.register_range r ~var:300 ~addr:200 ~size:16;
        Alcotest.(check bool) "re-registered fresh" true
          (Registry.window_for r 200 = Some None));
    Tu.case "unregistering drops the variable's deferred commits" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Registry.register_range r ~var:300 ~addr:300 ~size:8;
        Registry.on_write r ~defer:true ~addr:100 ~size:8 ~ts:4 ~ev:0;
        Registry.on_write r ~defer:true ~addr:300 ~size:8 ~ts:5 ~ev:0;
        Registry.unregister_var r ~var:100;
        Registry.apply_pending r;
        Alcotest.(check bool) "survivor applied" true
          (Registry.window_for r 300 = Some (Some (-1, 5)));
        Alcotest.(check bool) "victim gone" true (Registry.window_for r 200 = None));
    Tu.case "unknown variable unregisters as a no-op" (fun () ->
        let r = Registry.create () in
        Registry.register_var r ~var:100 ~size:8;
        Registry.unregister_var r ~var:999;
        Alcotest.(check int) "untouched" 1 (Registry.var_count r));
    Tu.case "zero-length registrations are inert" (fun () ->
        let r = Registry.create () in
        Registry.register_var r ~var:100 ~size:0;
        Alcotest.(check int) "variable exists" 1 (Registry.var_count r);
        Alcotest.(check bool) "no commit bytes" false (Registry.is_commit_byte r 100);
        Registry.register_range r ~var:100 ~addr:200 ~size:0;
        Alcotest.(check bool) "no range bytes" true (Registry.window_for r 200 = None);
        (* A zero-length range never conflicts, wherever it lands. *)
        Registry.register_range r ~var:300 ~addr:200 ~size:8;
        Registry.register_range r ~var:500 ~addr:204 ~size:0;
        Alcotest.(check bool) "zero-length overlay accepted" true
          (Registry.window_for r 204 = Some None));
  ]

(* Build a trace programmatically and run the backend over it. *)
let mk_trace kinds =
  let t = Trace.create () in
  List.iter (fun (kind, loc) -> ignore (Trace.append t ~kind ~loc)) kinds;
  t

let base = Xfd_mem.Addr.pool_base

let detector_tests =
  [
    Tu.case "race detected on unflushed pre-failure write" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Roi_end, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        match Detector.bugs fork with
        | [ Report.Race r ] ->
          Alcotest.(check int) "addr" base r.Report.addr;
          Alcotest.(check int) "size" 8 r.Report.size
        | bugs -> Alcotest.failf "expected one race, got %d findings" (List.length bugs));
    Tu.case "no race once flushed and fenced" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Clwb { addr = base }, l);
              (Event.Sfence, l);
              (Event.Roi_end, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "clean" 0 (List.length (Detector.bugs fork)));
    Tu.case "flush without fence still races" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Clwb { addr = base }, l);
              (Event.Roi_end, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "one race" 1 (List.length (Detector.bugs fork)));
    Tu.case "reads of commit variables are benign" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Commit_var { addr = base; size = 8 }, l);
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Roi_end, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "benign" 0 (List.length (Detector.bugs fork)));
    Tu.case "post-failure write shields subsequent reads" (fun () ->
        let pre =
          mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 8 }, l) ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace
            [
              (Event.Roi_begin, l2);
              (Event.Write { addr = base; size = 8 }, l2);
              (Event.Read { addr = base; size = 8 }, l2);
            ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "clean" 0 (List.length (Detector.bugs fork)));
    Tu.case "figure 11 walkthrough: race at F1, semantic bug at F2" (fun () ->
        (* Pre-failure: write backup (0x100,16); write valid (0x110,8);
           CLWB covers both (same line); SFENCE; write arr (0x200,8).
           valid is the commit variable of the backup. *)
        let b = base in
        let pre =
          mk_trace
            [
              (Event.Commit_var { addr = b + 0x10; size = 8 }, l);
              (Event.Commit_range { var = b + 0x10; addr = b; size = 16 }, l);
              (Event.Roi_begin, l);
              (Event.Write { addr = b; size = 16 }, l);
              (Event.Write { addr = b + 0x10; size = 8 }, l);
              (Event.Clwb { addr = b }, l);
              (Event.Sfence, l);
              (Event.Write { addr = b + 0x200; size = 8 }, l);
            ]
        in
        let post_reads =
          [
            (Event.Roi_begin, l2);
            (Event.Read { addr = b + 0x10; size = 8 }, l2) (* valid: benign *);
            (Event.Read { addr = b; size = 16 }, l2) (* backup *);
          ]
        in
        let d = Detector.create () in
        (* F1: right before the CLWB (events 0..4). *)
        Detector.replay d pre ~from:0 ~upto:5;
        let f1 = Detector.fork_for_post d in
        Detector.replay f1 (mk_trace post_reads) ~from:0 ~upto:max_int;
        (match Detector.bugs f1 with
        | [ Report.Race _ ] -> ()
        | bugs -> Alcotest.failf "F1: expected race, got %d findings" (List.length bugs));
        (* F2: after the fence and the arr write (all events). *)
        Detector.replay d pre ~from:5 ~upto:(Trace.length pre);
        let f2 = Detector.fork_for_post d in
        Detector.replay f2 (mk_trace post_reads) ~from:0 ~upto:max_int;
        match Detector.bugs f2 with
        | [ Report.Semantic s ] ->
          Alcotest.(check bool) "inconsistent" true
            (not (Cstate.is_consistent s.Report.status))
        | bugs -> Alcotest.failf "F2: expected semantic bug, got %d findings" (List.length bugs));
    Tu.case "uninitialised allocation read is a race" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Tx_alloc { addr = base; size = 64; zeroed = false }, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base + 8; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        match Detector.bugs fork with
        | [ Report.Race r ] -> Alcotest.(check bool) "uninit" true r.Report.uninit
        | bugs -> Alcotest.failf "expected uninit race, got %d" (List.length bugs));
    Tu.case "zeroed allocation read is clean" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Tx_alloc { addr = base; size = 64; zeroed = true }, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base + 8; size = 8 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "clean" 0 (List.length (Detector.bugs fork)));
    Tu.case "duplicate TX_ADD is a performance bug" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Tx_begin, l);
              (Event.Tx_add { addr = base; size = 8 }, l);
              (Event.Tx_add { addr = base; size = 8 }, l2);
              (Event.Tx_commit, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        match Detector.bugs d with
        | [ Report.Perf p ] ->
          Alcotest.(check bool) "dup" true (p.Report.waste = `Duplicate_tx_add)
        | bugs -> Alcotest.failf "expected perf bug, got %d" (List.length bugs));
    Tu.case "same range in two transactions is fine" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Tx_begin, l);
              (Event.Tx_add { addr = base; size = 8 }, l);
              (Event.Tx_commit, l);
              (Event.Tx_begin, l);
              (Event.Tx_add { addr = base; size = 8 }, l);
              (Event.Tx_commit, l);
            ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        Alcotest.(check int) "clean" 0 (List.length (Detector.bugs d)));
    Tu.case "skip_detection suppresses read checks but applies writes" (fun () ->
        let pre =
          mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 8 }, l) ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace
            [
              (Event.Roi_begin, l2);
              (Event.Skip_detection_begin, l2);
              (Event.Read { addr = base; size = 8 }, l2);
              (Event.Skip_detection_end, l2);
              (Event.Read { addr = base; size = 8 }, l2);
            ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        (* The skipped read consumed the first-read check?  No: the checked
           set is only marked when a check actually runs, so the later read
           still races. *)
        Alcotest.(check int) "one race" 1 (List.length (Detector.bugs fork)));
    Tu.case "reads outside the RoI are not checked" (fun () ->
        let pre =
          mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 8 }, l) ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post = mk_trace [ (Event.Read { addr = base; size = 8 }, l2) ] in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        Alcotest.(check int) "clean" 0 (List.length (Detector.bugs fork)));
    Tu.case "timestamp advances per ordering point" (fun () ->
        let pre =
          mk_trace [ (Event.Sfence, l); (Event.Sfence, l); (Event.Mfence, l) ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        Alcotest.(check int) "three ticks" 3 (Detector.timestamp d));
    Tu.case "contiguous racy bytes coalesce into one report" (fun () ->
        let pre =
          mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 32 }, l) ]
        in
        let d = Detector.create () in
        Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
        let fork = Detector.fork_for_post d in
        let post =
          mk_trace [ (Event.Roi_begin, l2); (Event.Read { addr = base; size = 32 }, l2) ]
        in
        Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        match Detector.bugs fork with
        | [ Report.Race r ] -> Alcotest.(check int) "whole range" 32 r.Report.size
        | bugs -> Alcotest.failf "expected one coalesced race, got %d" (List.length bugs));
  ]

let suite =
  [
    ("core.pstate", pstate_tests);
    ("core.cstate", cstate_tests);
    ("core.shadow", shadow_tests);
    ("core.registry", registry_tests);
    ("core.detector", detector_tests);
  ]
