(* Equivalence of the incremental prefix-sharing engine with the
   fresh-replay oracle.

   The incremental scheduler replays the pre-failure trace once, forking a
   journaled divergence per failure point and rewinding it afterwards; the
   fresh oracle (config.engine = `Fresh, xfd_cli --oracle) rebuilds a
   detector from event zero for every point.  These suites pin the
   equivalence at three levels: per-byte shadow state and Eq. 3 windows at
   every prefix position (including while a divergence is live and after
   its rewind), whole-outcome verdict fingerprints on the evaluation
   workloads and the planted-bug variants, and a broad fuzz sweep.  A
   final group asserts the engine's resource hygiene: every device and
   every flat shadow page is returned, even when the post-failure stage
   aborts detection out of a worker domain. *)

module Prog = Xfd_fuzz.Prog
module Gen = Xfd_fuzz.Gen
module Oracle = Xfd_fuzz.Oracle
module Rng = Xfd_util.Rng
module Engine = Xfd.Engine
module Config = Xfd.Config
module Detector = Xfd.Detector
module Shadow = Xfd.Shadow_pm
module Registry = Xfd.Commit_registry
module Report = Xfd.Report
module Pstate = Xfd.Pstate
module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Trace = Xfd_trace.Trace
module Event = Xfd_trace.Event
module Loc = Xfd_util.Loc

let gen profile seed = Gen.generate profile (Rng.create (Int64.of_int seed))
let profiles = [ Gen.Correct; Gen.Buggy; Gen.Wild ]

let incremental = Config.default
let fresh = { Config.default with Config.engine = `Fresh }

(* ---- level 1: per-byte state at every prefix position ---- *)

(* The pre-failure trace of a fuzz program, recorded without the engine. *)
let pre_trace p =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
  let prog = Prog.to_program p in
  prog.Engine.setup ctx;
  (match prog.Engine.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  Device.release dev;
  trace

(* Prefix positions worth comparing: just before and just after every
   fence (pending bytes in flight vs freshly persisted), plus the full
   trace. *)
let positions trace =
  let acc = ref [ Trace.length trace ] in
  Trace.iter trace (fun ev ->
      if Event.is_fence ev.Event.kind then acc := (ev.Event.seq + 1) :: ev.Event.seq :: !acc);
  List.sort_uniq compare !acc

(* A synthetic post-failure slice: the next few pre-failure events replayed
   into the fork as if they were the recovery program.  They hit the same
   slots the prefix touched, so the divergence journal captures real
   overlaps; the registry is cloned per fork, so commit/TX framing events
   are filtered out to keep the slice a plain mutation storm. *)
let post_slice trace ~pos ~n =
  let out = Trace.create () in
  Trace.iter_range trace ~from:pos ~upto:(min (pos + n) (Trace.length trace)) (fun ev ->
      match ev.Event.kind with
      | Event.Write _ | Event.Nt_write _ | Event.Clwb _ | Event.Clflush _
      | Event.Clflushopt _ | Event.Sfence | Event.Mfence | Event.Read _ ->
        ignore (Trace.append out ~kind:ev.Event.kind ~loc:ev.Event.loc)
      | _ -> ());
  out

(* Everything verdict-relevant about a detector at one prefix position:
   per-byte FSM state, Eq. 3 timestamps, writer provenance, the uninit and
   post-written flags, and the commit windows over the fuzz arena. *)
let dump d =
  let b = Buffer.create 256 in
  Shadow.iter_tracked (Detector.shadow d) (fun addr (c : Shadow.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%x:%s:%d:%s:%b:%b\n" addr
           (Pstate.to_string c.Shadow.pstate)
           c.Shadow.tlast (Loc.to_string c.Shadow.writer) c.Shadow.uninit
           c.Shadow.post_written));
  for slot = 0 to Prog.n_slots - 1 do
    match Registry.window_for (Detector.registry d) (Prog.slot_addr slot) with
    | None -> ()
    | Some None -> Buffer.add_string b (Printf.sprintf "w%d:open\n" slot)
    | Some (Some (a, z)) -> Buffer.add_string b (Printf.sprintf "w%d:[%d,%d]\n" slot a z)
  done;
  Buffer.contents b

let state_equivalence_case profile =
  Tu.case
    (Printf.sprintf "shadow state matches the fresh oracle at every prefix (%s)"
       (Gen.profile_to_string profile))
    (fun () ->
      for seed = 0 to 11 do
        let trace = pre_trace (gen profile seed) in
        let inc = Detector.create () in
        let pos = ref 0 in
        List.iter
          (fun p ->
            Detector.replay inc trace ~from:!pos ~upto:p;
            pos := p;
            (* Divergence live: post-failure mutations in the journal must
               be invisible to base reads. *)
            let fork = Detector.fork_for_post inc in
            let slice = post_slice trace ~pos:p ~n:24 in
            Detector.replay fork slice ~from:0 ~upto:(Trace.length slice);
            let live = dump inc in
            Detector.rewind fork;
            let rewound = dump inc in
            let oracle = Detector.create () in
            Detector.replay oracle trace ~from:0 ~upto:p;
            let expected = dump oracle in
            Detector.release oracle;
            let name what = Printf.sprintf "seed %d pos %d (%s)" seed p what in
            Alcotest.(check string) (name "live divergence") expected live;
            Alcotest.(check string) (name "after rewind") expected rewound)
          (positions trace);
        Detector.release inc
      done)

let state_tests = List.map state_equivalence_case profiles

(* The same equivalence as a random property over the whole seed space. *)
let profile_arb =
  QCheck.make
    ~print:(fun (p, s) -> Printf.sprintf "%s/%d" (Gen.profile_to_string p) s)
    QCheck.Gen.(pair (oneofl profiles) (int_bound 10_000))

let qcheck_state_prop =
  QCheck.Test.make ~count:60
    ~name:"incremental state equals the fresh oracle at every prefix" profile_arb
    (fun (profile, seed) ->
      let trace = pre_trace (gen profile seed) in
      let inc = Detector.create () in
      let pos = ref 0 in
      let ok = ref true in
      List.iter
        (fun p ->
          Detector.replay inc trace ~from:!pos ~upto:p;
          pos := p;
          let fork = Detector.fork_for_post inc in
          let slice = post_slice trace ~pos:p ~n:24 in
          Detector.replay fork slice ~from:0 ~upto:(Trace.length slice);
          Detector.rewind fork;
          let oracle = Detector.create () in
          Detector.replay oracle trace ~from:0 ~upto:p;
          if dump inc <> dump oracle then ok := false;
          Detector.release oracle)
        (positions trace);
      Detector.release inc;
      !ok)

(* ---- level 2: whole-outcome fingerprints ---- *)

let fingerprint (o : Engine.outcome) =
  ( o.Engine.failure_points,
    o.Engine.pre_events,
    o.Engine.post_events,
    List.sort compare (List.map Report.dedup_key o.Engine.unique_bugs) )

let check_fingerprints name program =
  let a = Engine.detect ~config:incremental program in
  let b = Engine.detect ~config:fresh program in
  let fa = fingerprint a and fb = fingerprint b in
  let ka, pa, qa, la = fa and kb, pb, qb, lb = fb in
  Alcotest.(check int) (name ^ ": failure points") kb ka;
  Alcotest.(check int) (name ^ ": pre events") pb pa;
  Alcotest.(check int) (name ^ ": post events") qb qa;
  Alcotest.(check (list string)) (name ^ ": bug keys") lb la

let verdict_tests =
  [
    Tu.case "workload suite verdicts match the fresh oracle" (fun () ->
        List.iter
          (fun (e : Xfd_experiments.Workload_set.entry) ->
            check_fingerprints e.name (e.make ~init:1 ~test:2))
          Xfd_experiments.Workload_set.extended);
    Tu.case "new-bug variants and controls match the fresh oracle" (fun () ->
        check_fingerprints "hashmap-atomic faithful"
          (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ());
        check_fingerprints "hashmap-atomic fixed"
          (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Fixed ());
        check_fingerprints "redis" (Xfd_redis.Server.program ~size:1 ());
        check_fingerprints "redis fixed" (Xfd_redis.Server.program ~size:1 ~variant:`Fixed ());
        let pc_config = Xfd_workloads.Pool_create.config in
        let a =
          Engine.detect
            ~config:{ pc_config with Config.engine = `Incremental }
            (Xfd_workloads.Pool_create.program ())
        in
        let b =
          Engine.detect
            ~config:{ pc_config with Config.engine = `Fresh }
            (Xfd_workloads.Pool_create.program ())
        in
        Alcotest.(check (list string))
          "pool-create bug keys"
          (List.sort compare (List.map Report.dedup_key b.Engine.unique_bugs))
          (List.sort compare (List.map Report.dedup_key a.Engine.unique_bugs)));
  ]

(* ---- level 3: the fuzz sweep ---- *)

let qcheck_verdict_prop =
  QCheck.Test.make ~count:60 ~name:"verdict fingerprints match the fresh oracle"
    profile_arb
    (fun (profile, seed) ->
      let program = Prog.to_program (gen profile seed) in
      fingerprint (Engine.detect ~config:incremental program)
      = fingerprint (Engine.detect ~config:fresh program))

let sweep_tests =
  [
    Tu.case "500-program fuzz sweep: fingerprints match the fresh oracle" (fun () ->
        let mismatches = ref [] in
        List.iter
          (fun profile ->
            (* 167 seeds x 3 profiles = 501 programs, seeded away from the
               ranges suite_fuzz draws from. *)
            for seed = 5000 to 5166 do
              let p = gen profile seed in
              let program = Prog.to_program p in
              let a = Engine.detect ~config:incremental program in
              let b = Engine.detect ~config:fresh program in
              if fingerprint a <> fingerprint b then
                mismatches :=
                  Printf.sprintf "%s/%d" (Gen.profile_to_string profile) seed :: !mismatches
            done)
          profiles;
        Alcotest.(check (list string)) "diverging programs" [] !mismatches);
  ]

(* ---- resource hygiene: every abort path releases its devices ---- *)

let l = Loc.of_pos __POS__

(* A small program with several failure points whose post-failure stage
   trips a fatal harness error ([Assert_failure] aborts detection and
   re-raises, including out of worker domains). *)
let aborting_program () =
  let base = Xfd_mem.Addr.pool_base in
  {
    Engine.name = "aborting";
    setup =
      (fun ctx ->
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.persist_barrier ctx ~loc:l base 8);
    pre =
      (fun ctx ->
        Ctx.roi_begin ctx ~loc:l;
        for i = 1 to 3 do
          Ctx.write_i64 ctx ~loc:l (base + (64 * i)) (Int64.of_int i);
          Ctx.persist_barrier ctx ~loc:l (base + (64 * i)) 8
        done;
        Ctx.roi_end ctx ~loc:l);
    post = (fun _ -> assert false);
  }

let check_released name config =
  let image0 = Xfd_mem.Image.live_bytes () in
  let shadow0 = Xfd_mem.Shadow_pages.live_bytes () in
  (match Engine.detect ~config (aborting_program ()) with
  | _ -> Alcotest.failf "%s: detection should have aborted" name
  | exception Assert_failure _ -> ());
  Alcotest.(check int) (name ^ ": pm chunk bytes released") image0 (Xfd_mem.Image.live_bytes ());
  Alcotest.(check int)
    (name ^ ": shadow page bytes released")
    shadow0
    (Xfd_mem.Shadow_pages.live_bytes ())

let release_tests =
  [
    Tu.case "aborted runs release every device and shadow page" (fun () ->
        check_released "incremental" incremental;
        check_released "fresh" fresh;
        check_released "incremental post_jobs=2" { incremental with Config.post_jobs = 2 };
        check_released "fresh post_jobs=2" { fresh with Config.post_jobs = 2 });
    Tu.case "successful runs release every device and shadow page" (fun () ->
        let image0 = Xfd_mem.Image.live_bytes () in
        let shadow0 = Xfd_mem.Shadow_pages.live_bytes () in
        List.iter
          (fun config ->
            ignore (Engine.detect ~config (Prog.to_program (gen Gen.Buggy 7))))
          [ incremental; fresh ];
        Alcotest.(check int) "pm chunk bytes released" image0 (Xfd_mem.Image.live_bytes ());
        Alcotest.(check int)
          "shadow page bytes released" shadow0
          (Xfd_mem.Shadow_pages.live_bytes ()));
  ]

let suite =
  [
    ("incremental.state", state_tests);
    ( "incremental.props",
      List.map QCheck_alcotest.to_alcotest [ qcheck_state_prop; qcheck_verdict_prop ] );
    ("incremental.verdicts", verdict_tests);
    ("incremental.sweep", sweep_tests);
    ("incremental.release", release_tests);
  ]
