(* Unit tests for trace events and buffers, and for Loc/Rng/Bytesx. *)

module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Loc = Xfd_util.Loc
module Rng = Xfd_util.Rng

let sample_kinds : Event.kind list =
  [
    Event.Write { addr = 0x100; size = 8 };
    Event.Read { addr = 0x108; size = 16 };
    Event.Nt_write { addr = 0x200; size = 4 };
    Event.Clwb { addr = 0x100 };
    Event.Clflush { addr = 0x140 };
    Event.Clflushopt { addr = 0x180 };
    Event.Sfence;
    Event.Mfence;
    Event.Tx_begin;
    Event.Tx_add { addr = 0x300; size = 24 };
    Event.Tx_xadd { addr = 0x340; size = 32 };
    Event.Tx_commit;
    Event.Tx_abort;
    Event.Tx_alloc { addr = 0x400; size = 64; zeroed = true };
    Event.Tx_alloc { addr = 0x440; size = 64; zeroed = false };
    Event.Tx_free { addr = 0x400 };
    Event.Commit_var { addr = 0x500; size = 8 };
    Event.Commit_range { var = 0x500; addr = 0x508; size = 56 };
    Event.Roi_begin;
    Event.Roi_end;
    Event.Skip_detection_begin;
    Event.Skip_detection_end;
    Event.Marker "hello world";
  ]

(* Generator covering every kind constructor, with adversarial free-form
   text (field separators, escapes, newlines, raw high bytes) in marker
   bodies and file names — the payloads the escaping in to_line exists
   for. *)
let nasty_string_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '|'; ' '; '\n'; '\r'; '\t'; '\\'; '"'; '\xc3'; '\x01' ])
      (int_bound 16))

let kind_gen =
  QCheck.Gen.(
    let addr = map (fun o -> 0x100 + o) (int_bound 4096) in
    let size = int_range 1 128 in
    oneof
      [
        map2 (fun addr size -> Event.Write { addr; size }) addr size;
        map2 (fun addr size -> Event.Read { addr; size }) addr size;
        map2 (fun addr size -> Event.Nt_write { addr; size }) addr size;
        map (fun addr -> Event.Clwb { addr }) addr;
        map (fun addr -> Event.Clflush { addr }) addr;
        map (fun addr -> Event.Clflushopt { addr }) addr;
        return Event.Sfence;
        return Event.Mfence;
        return Event.Tx_begin;
        map2 (fun addr size -> Event.Tx_add { addr; size }) addr size;
        map2 (fun addr size -> Event.Tx_xadd { addr; size }) addr size;
        return Event.Tx_commit;
        return Event.Tx_abort;
        map3 (fun addr size zeroed -> Event.Tx_alloc { addr; size; zeroed }) addr size bool;
        map (fun addr -> Event.Tx_free { addr }) addr;
        map2 (fun addr size -> Event.Commit_var { addr; size }) addr size;
        map3 (fun var addr size -> Event.Commit_range { var; addr; size }) addr addr size;
        return Event.Roi_begin;
        return Event.Roi_end;
        return Event.Skip_detection_begin;
        return Event.Skip_detection_end;
        map (fun s -> Event.Marker s) nasty_string_gen;
      ])

let event_gen =
  QCheck.Gen.(
    map3
      (fun seq kind (file, line) -> { Event.seq; kind; loc = Loc.make ~file ~line })
      (int_bound 100000) kind_gen
      (pair nasty_string_gen (int_bound 9999)))

let event_arb =
  QCheck.make ~print:(fun ev -> String.escaped (Event.to_line ev)) event_gen

let event_props =
  [
    QCheck.Test.make ~count:500 ~name:"to_line/of_line round trips every kind" event_arb
      (fun ev -> Event.of_line (Event.to_line ev) = Some ev);
    QCheck.Test.make ~count:200 ~name:"to_line never emits a line terminator" event_arb
      (fun ev ->
        let line = Event.to_line ev in
        not (String.contains line '\n') && not (String.contains line '\r'));
  ]

let event_tests =
  [
    Tu.case "line round trip for every kind" (fun () ->
        List.iteri
          (fun i kind ->
            let ev = { Event.seq = i; kind; loc = Loc.make ~file:"f.ml" ~line:i } in
            match Event.of_line (Event.to_line ev) with
            | Some ev' ->
              Alcotest.(check string)
                (Printf.sprintf "kind %d" i)
                (Format.asprintf "%a" Event.pp_kind ev.Event.kind)
                (Format.asprintf "%a" Event.pp_kind ev'.Event.kind);
              Alcotest.(check int) "line" i ev'.Event.loc.Loc.line
            | None -> Alcotest.failf "kind %d did not parse back: %s" i (Event.to_line ev))
          sample_kinds);
    Tu.case "of_line rejects garbage" (fun () ->
        Alcotest.(check bool) "none" true (Event.of_line "not an event" = None);
        Alcotest.(check bool) "none" true (Event.of_line "1|BOGUS 3|f|2" = None));
    Tu.case "classification helpers" (fun () ->
        Alcotest.(check bool) "write is pm op" true (Event.is_pm_operation (Event.Write { addr = 0; size = 1 }));
        Alcotest.(check bool) "marker is not" false (Event.is_pm_operation (Event.Marker "m"));
        Alcotest.(check bool) "clwb is flush" true (Event.is_flush (Event.Clwb { addr = 0 }));
        Alcotest.(check bool) "sfence is fence" true (Event.is_fence Event.Sfence);
        Alcotest.(check bool) "write not fence" false (Event.is_fence (Event.Write { addr = 0; size = 1 })));
  ]

let trace_tests =
  [
    Tu.case "append assigns sequence numbers" (fun () ->
        let t = Trace.create () in
        for i = 0 to 999 do
          let ev = Trace.append t ~kind:Event.Sfence ~loc:Loc.unknown in
          Alcotest.(check int) "seq" i ev.Event.seq
        done;
        Alcotest.(check int) "length" 1000 (Trace.length t));
    Tu.case "get out of bounds raises" (fun () ->
        let t = Trace.create () in
        Alcotest.check_raises "empty" (Invalid_argument "Trace.get: out of bounds") (fun () ->
            ignore (Trace.get t 0)));
    Tu.case "iter_prefix stops at n" (fun () ->
        let t = Trace.create () in
        for _ = 1 to 10 do
          ignore (Trace.append t ~kind:Event.Sfence ~loc:Loc.unknown)
        done;
        let n = ref 0 in
        Trace.iter_prefix t 4 (fun _ -> incr n);
        Alcotest.(check int) "prefix" 4 !n;
        Trace.iter_prefix t 100 (fun _ -> ());
        Alcotest.(check int) "length unchanged" 10 (Trace.length t));
    Tu.case "counts classify events" (fun () ->
        let t = Trace.create () in
        let add kind = ignore (Trace.append t ~kind ~loc:Loc.unknown) in
        add (Event.Write { addr = 0; size = 8 });
        add (Event.Read { addr = 0; size = 8 });
        add (Event.Clwb { addr = 0 });
        add Event.Sfence;
        add Event.Tx_begin;
        add Event.Roi_begin;
        let c = Trace.counts t in
        Alcotest.(check int) "writes" 1 c.Trace.writes;
        Alcotest.(check int) "reads" 1 c.Trace.reads;
        Alcotest.(check int) "flushes" 1 c.Trace.flushes;
        Alcotest.(check int) "fences" 1 c.Trace.fences;
        Alcotest.(check int) "tx" 1 c.Trace.tx_ops;
        Alcotest.(check int) "annotations" 1 c.Trace.annotations);
    Tu.case "save/load round trip" (fun () ->
        let t = Trace.create () in
        List.iter
          (fun kind -> ignore (Trace.append t ~kind ~loc:(Loc.make ~file:"x.ml" ~line:3)))
          sample_kinds;
        let file = Filename.temp_file "xfd_trace" ".txt" in
        let oc = open_out file in
        Trace.save t oc;
        close_out oc;
        let ic = open_in file in
        let t' = Trace.load ic in
        close_in ic;
        Sys.remove file;
        Alcotest.(check int) "same length" (Trace.length t) (Trace.length t'));
  ]

let util_tests =
  [
    Tu.case "loc formatting and ordering" (fun () ->
        let a = Loc.make ~file:"a.ml" ~line:3 and b = Loc.make ~file:"b.ml" ~line:1 in
        Alcotest.(check string) "pp" "a.ml:3" (Loc.to_string a);
        Alcotest.(check bool) "file order first" true (Loc.compare a b < 0);
        Alcotest.(check bool) "equal" true (Loc.equal a a);
        let c = Loc.of_pos ("c.ml", 9, 0, 0) in
        Alcotest.(check string) "of_pos" "c.ml:9" (Loc.to_string c));
    Tu.case "rng determinism" (fun () ->
        let a = Rng.create 1L and b = Rng.create 1L in
        for _ = 1 to 100 do
          Alcotest.check Tu.i64 "same stream" (Rng.next a) (Rng.next b)
        done);
    Tu.case "rng int bounds" (fun () ->
        let r = Rng.create 2L in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done;
        Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
            ignore (Rng.int r 0)));
    Tu.case "rng split independence" (fun () ->
        let r = Rng.create 3L in
        let s = Rng.split r in
        Alcotest.(check bool) "streams differ" true (not (Int64.equal (Rng.next r) (Rng.next s))));
    Tu.case "rng keys are lowercase" (fun () ->
        let r = Rng.create 4L in
        let k = Rng.key r 32 in
        Alcotest.(check int) "length" 32 (String.length k);
        String.iter (fun c -> Alcotest.(check bool) "a..z" true (c >= 'a' && c <= 'z')) k);
    Tu.case "bytesx i64 round trip" (fun () ->
        let v = -123456789L in
        Alcotest.check Tu.i64 "round" v (Xfd_util.Bytesx.i64_of_bytes (Xfd_util.Bytesx.i64_to_bytes v)));
    Tu.case "hexdump shape" (fun () ->
        let s = Xfd_util.Bytesx.hexdump (Bytes.make 17 '\001') in
        Alcotest.(check bool) "two lines" true (String.contains s '\n'));
  ]

let suite =
  [
    ("trace.event", event_tests);
    ("trace.event-props", List.map QCheck_alcotest.to_alcotest event_props);
    ("trace.buffer", trace_tests);
    ("util", util_tests);
  ]
