(* Tests for the static crash-consistency linter: one positive and one
   clean fixture per rule, the Abs lattice laws, JSON export, the
   static-vs-dynamic triage goldens on real workloads, and the guarantee
   that lint-guided scheduling never changes the dynamic verdict set. *)

module Lint = Xfd_lint.Lint
module Abs = Xfd_lint.Abs
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Json = Xfd_util.Json
module Faults = Xfd_sim.Faults
module Config = Xfd.Config
module Report = Xfd.Report

let l n = Loc.make ~file:"lintfix.ml" ~line:n
let base = Addr.pool_base

let mk_trace kinds =
  let t = Trace.create () in
  List.iter (fun (kind, loc) -> ignore (Trace.append t ~kind ~loc)) kinds;
  t

let ids r = List.map (fun f -> Lint.rule_id f.Lint.rule) r.Lint.findings
let check = Lint.check_trace

let fires name id kinds =
  Tu.case (name ^ " fires") (fun () ->
      let r = check (mk_trace kinds) in
      Alcotest.(check bool)
        (Printf.sprintf "%s in %s" id (String.concat "," (ids r)))
        true
        (List.mem id (ids r)))

let silent name kinds =
  Tu.case (name ^ " clean variant is silent") (fun () ->
      let r = check (mk_trace kinds) in
      Alcotest.(check (list string)) "no findings" [] (ids r);
      Alcotest.(check bool) "clean" true (Lint.clean r))

(* Shared building blocks: a data cell one line above a flag cell so flushes
   never alias. *)
let data = base + Addr.line_size
let flag = base

let rule_tests =
  [
    (* L1: missing-flush-before-commit-store *)
    fires "missing-flush-before-commit-store" "missing-flush-before-commit-store"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Commit_range { var = flag; addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Write { addr = flag; size = 8 }, l 5);
        (Event.Clwb { addr = data }, l 6);
        (Event.Clwb { addr = flag }, l 7);
        (Event.Sfence, l 8);
      ];
    silent "missing-flush-before-commit-store"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Commit_range { var = flag; addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Clwb { addr = data }, l 5);
        (Event.Sfence, l 6);
        (Event.Write { addr = flag; size = 8 }, l 7);
        (Event.Clwb { addr = flag }, l 8);
        (Event.Sfence, l 9);
      ];
    (* L2: flush-without-ordering-fence *)
    fires "flush-without-ordering-fence" "flush-without-ordering-fence"
      [
        (Event.Roi_begin, l 1);
        (Event.Write { addr = data; size = 8 }, l 2);
        (Event.Clwb { addr = data }, l 3);
      ];
    silent "flush-without-ordering-fence"
      [
        (Event.Roi_begin, l 1);
        (Event.Write { addr = data; size = 8 }, l 2);
        (Event.Clwb { addr = data }, l 3);
        (Event.Sfence, l 4);
      ];
    (* L3: store-to-committed-data-in-same-epoch *)
    fires "store-to-committed-data-in-same-epoch" "store-to-committed-data-in-same-epoch"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Commit_range { var = flag; addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Clwb { addr = data }, l 5);
        (Event.Sfence, l 6);
        (Event.Write { addr = flag; size = 8 }, l 7);
        (* same fence epoch as the commit store: recovery can pair new data
           with the old flag *)
        (Event.Write { addr = data; size = 8 }, l 8);
        (Event.Clwb { addr = flag }, l 9);
        (Event.Clwb { addr = data }, l 10);
        (Event.Sfence, l 11);
      ];
    silent "store-to-committed-data-in-same-epoch"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Commit_range { var = flag; addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Clwb { addr = data }, l 5);
        (Event.Sfence, l 6);
        (Event.Write { addr = flag; size = 8 }, l 7);
        (Event.Clwb { addr = flag }, l 8);
        (Event.Sfence, l 9);
        (* next epoch: ordered after the commit store *)
        (Event.Write { addr = data; size = 8 }, l 10);
        (Event.Clwb { addr = data }, l 11);
        (Event.Sfence, l 12);
      ];
    (* L4: write-not-tx-added-inside-tx *)
    fires "write-not-tx-added-inside-tx" "write-not-tx-added-inside-tx"
      [
        (Event.Roi_begin, l 1);
        (Event.Tx_begin, l 2);
        (Event.Write { addr = data; size = 8 }, l 3);
        (Event.Tx_commit, l 4);
        (Event.Clwb { addr = data }, l 5);
        (Event.Sfence, l 6);
      ];
    silent "write-not-tx-added-inside-tx"
      [
        (Event.Roi_begin, l 1);
        (Event.Tx_begin, l 2);
        (Event.Tx_add { addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Tx_commit, l 5);
        (Event.Clwb { addr = data }, l 6);
        (Event.Sfence, l 7);
      ];
    (* L5: unflushed-at-trace-end *)
    fires "unflushed-at-trace-end" "unflushed-at-trace-end"
      [ (Event.Roi_begin, l 1); (Event.Write { addr = data; size = 8 }, l 2) ];
    silent "unflushed-at-trace-end"
      [
        (Event.Roi_begin, l 1);
        (Event.Write { addr = data; size = 8 }, l 2);
        (Event.Clwb { addr = data }, l 3);
        (Event.Sfence, l 4);
      ];
    (* L6: commit-var-never-persisted *)
    fires "commit-var-never-persisted" "commit-var-never-persisted"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Write { addr = flag; size = 8 }, l 3);
      ];
    silent "commit-var-never-persisted"
      [
        (Event.Roi_begin, l 1);
        (Event.Commit_var { addr = flag; size = 8 }, l 2);
        (Event.Write { addr = flag; size = 8 }, l 3);
        (Event.Clwb { addr = flag }, l 4);
        (Event.Sfence, l 5);
      ];
    (* L7: statically-redundant-flush *)
    fires "statically-redundant-flush" "statically-redundant-flush"
      [
        (Event.Roi_begin, l 1);
        (Event.Write { addr = data; size = 8 }, l 2);
        (Event.Clwb { addr = data }, l 3);
        (Event.Clwb { addr = data }, l 4);
        (Event.Sfence, l 5);
      ];
    silent "statically-redundant-flush"
      [
        (Event.Roi_begin, l 1);
        (Event.Write { addr = data; size = 8 }, l 2);
        (Event.Clwb { addr = data }, l 3);
        (Event.Sfence, l 4);
        (Event.Write { addr = data; size = 8 }, l 5);
        (Event.Clwb { addr = data }, l 6);
        (Event.Sfence, l 7);
      ];
    (* L8: duplicate-tx-add *)
    fires "duplicate-tx-add" "duplicate-tx-add"
      [
        (Event.Roi_begin, l 1);
        (Event.Tx_begin, l 2);
        (Event.Tx_add { addr = data; size = 8 }, l 3);
        (Event.Tx_add { addr = data; size = 8 }, l 4);
        (Event.Write { addr = data; size = 8 }, l 5);
        (Event.Tx_commit, l 6);
        (Event.Clwb { addr = data }, l 7);
        (Event.Sfence, l 8);
      ];
    silent "duplicate-tx-add"
      [
        (Event.Roi_begin, l 1);
        (Event.Tx_begin, l 2);
        (Event.Tx_add { addr = data; size = 8 }, l 3);
        (Event.Write { addr = data; size = 8 }, l 4);
        (Event.Tx_commit, l 5);
        (Event.Clwb { addr = data }, l 6);
        (Event.Sfence, l 7);
      ];
  ]

let detail_tests =
  [
    Tu.case "rule ids are stable and invertible" (fun () ->
        List.iter
          (fun r ->
            match Lint.rule_of_id (Lint.rule_id r) with
            | Some r' -> Alcotest.(check bool) (Lint.rule_id r) true (r = r')
            | None -> Alcotest.failf "id %s does not invert" (Lint.rule_id r))
          Lint.all_rules;
        Alcotest.(check int) "eight rules" 8 (List.length Lint.all_rules);
        Alcotest.(check bool) "unknown id" true (Lint.rule_of_id "no-such-rule" = None));
    Tu.case "severities partition as documented" (fun () ->
        let sev r = Lint.severity_of r in
        Alcotest.(check bool) "L1 error" true (sev Lint.Missing_flush_before_commit_store = Lint.Error);
        Alcotest.(check bool) "L4 error" true (sev Lint.Write_not_tx_added = Lint.Error);
        Alcotest.(check bool) "L7 perf" true (sev Lint.Redundant_flush = Lint.Perf);
        Alcotest.(check bool) "L8 perf" true (sev Lint.Duplicate_tx_add = Lint.Perf));
    Tu.case "tx-writers of no-snapshot ranges are co-implicated" (fun () ->
        (* Stores into a TX_XADD range persist only through the transaction's
           atomic commit; an unlogged write in the same TX breaks exactly
           that, so the finding must name them for triage to match. *)
        let r =
          check
            (mk_trace
               [
                 (Event.Roi_begin, l 1);
                 (Event.Tx_begin, l 2);
                 (Event.Tx_xadd { addr = data; size = 16 }, l 3);
                 (Event.Write { addr = data; size = 8 }, l 4);
                 (Event.Write { addr = flag; size = 8 }, l 5);
                 (Event.Tx_commit, l 6);
                 (Event.Clwb { addr = data }, l 7);
                 (Event.Clwb { addr = flag }, l 8);
                 (Event.Sfence, l 9);
               ])
        in
        let f =
          List.find (fun f -> f.Lint.rule = Lint.Write_not_tx_added) r.Lint.findings
        in
        Alcotest.(check bool) "indicts the unlogged store" true (Loc.equal f.Lint.loc (l 5));
        Alcotest.(check bool) "names the xadd writer" true
          (List.exists (fun (_, w) -> Loc.equal w (l 4)) f.Lint.related));
    Tu.case "findings deduplicate by rule and location" (fun () ->
        let r =
          check
            (mk_trace
               [
                 (Event.Roi_begin, l 1);
                 (Event.Write { addr = data; size = 8 }, l 2);
                 (Event.Write { addr = data + 8; size = 8 }, l 2);
               ])
        in
        Alcotest.(check (list string)) "one finding" [ "unflushed-at-trace-end" ] (ids r));
    Tu.case "report tallies match findings" (fun () ->
        let r =
          check
            (mk_trace
               [
                 (Event.Roi_begin, l 1);
                 (Event.Tx_begin, l 2);
                 (Event.Tx_add { addr = data; size = 8 }, l 3);
                 (Event.Tx_add { addr = data; size = 8 }, l 4);
                 (Event.Write { addr = data; size = 8 }, l 5);
                 (Event.Write { addr = flag; size = 8 }, l 6);
                 (Event.Tx_commit, l 7);
               ])
        in
        Alcotest.(check int) "errors" 1 r.Lint.errors;
        Alcotest.(check int) "perf" 1 r.Lint.perf;
        Alcotest.(check int) "sum" (List.length r.Lint.findings)
          (r.Lint.errors + r.Lint.warnings + r.Lint.perf));
  ]

let json_tests =
  [
    Tu.case "report JSON parses back with the same shape" (fun () ->
        let r =
          check
            (mk_trace
               [
                 (Event.Roi_begin, l 1);
                 (Event.Write { addr = data; size = 8 }, l 2);
                 (Event.Clwb { addr = data }, l 3);
               ])
        in
        match Json.of_string (Json.to_string (Lint.report_to_json r)) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok j -> (
          (match Json.member "findings" j with
          | Some (Json.Arr fs) ->
            Alcotest.(check int) "findings" (List.length r.Lint.findings) (List.length fs);
            List.iter
              (fun f ->
                Alcotest.(check bool) "rule id known" true
                  (match Json.member "rule" f with
                  | Some (Json.Str id) -> Lint.rule_of_id id <> None
                  | _ -> false))
              fs
          | _ -> Alcotest.fail "findings not an array");
          match Json.member "events" j with
          | Some (Json.Int n) -> Alcotest.(check int) "events" r.Lint.events n
          | _ -> Alcotest.fail "events missing"));
    Tu.case "triage JSON includes both directions" (fun () ->
        let faults () = Faults.make ~skip_tx_add:[ 0 ] () in
        let config = { Config.default with Config.faults = faults () } in
        let t = Lint.triage ~config (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ()) in
        match Json.of_string (Json.to_string (Lint.triage_to_json t)) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok j ->
          List.iter
            (fun k ->
              Alcotest.(check bool) k true (Json.member k j <> None))
            [ "program"; "lint"; "dynamic"; "statics"; "anticipated"; "static_misses" ]);
  ]

(* The acceptance goldens: lint is clean on correct workloads, fires the
   expected rule on seeded bugs, and triage on the TX workloads reports no
   static misses for races whose root cause is a pre-failure ordering
   violation (a skipped TX_ADD). *)
let golden_tests =
  let correct_programs () =
    [
      ("btree", Xfd_workloads.Btree.program ~init_size:2 ~size:2 ());
      ("hashmap-tx", Xfd_workloads.Hashmap_tx.program ~size:2 ());
      ("rbtree", Xfd_workloads.Rbtree.program ~size:2 ());
      ("hashmap-atomic", Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed ());
    ]
  in
  [
    Tu.case "correct workloads lint clean" (fun () ->
        List.iter
          (fun (name, p) ->
            let r = Lint.check_prog p in
            Alcotest.(check (list string)) (name ^ " findings") [] (ids r))
          (correct_programs ()));
    Tu.case "seeded faults fire the expected rules" (fun () ->
        let expect faults program id =
          let config = { Config.default with Config.faults } in
          let r = Lint.check_prog ~config program in
          Alcotest.(check bool)
            (Printf.sprintf "%s in %s" id (String.concat "," (ids r)))
            true
            (List.mem id (ids r))
        in
        expect (Faults.make ~skip_tx_add:[ 0 ] ())
          (Xfd_workloads.Hashmap_tx.program ~size:2 ())
          "write-not-tx-added-inside-tx";
        expect (Faults.make ~dup_tx_add:[ 0 ] ())
          (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ())
          "duplicate-tx-add";
        expect (Faults.make ~skip_flush:[ 1 ] ())
          (Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed ())
          "unflushed-at-trace-end";
        expect (Faults.make ~dup_flush:[ 1 ] ())
          (Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed ())
          "statically-redundant-flush");
    Tu.case "triage: no static misses on TX-logging races" (fun () ->
        List.iter
          (fun (name, program) ->
            let config =
              { Config.default with Config.faults = Faults.make ~skip_tx_add:[ 0 ] () }
            in
            let t = Lint.triage ~config (program ()) in
            Alcotest.(check int) (name ^ " static misses") 0 t.Lint.static_misses;
            Alcotest.(check bool) (name ^ " anticipated some") true (t.Lint.anticipated >= 1))
          [
            ("hashmap-tx", fun () -> Xfd_workloads.Hashmap_tx.program ~size:3 ());
            ("btree", fun () -> Xfd_workloads.Btree.program ~init_size:2 ~size:3 ());
            ("rbtree", fun () -> Xfd_workloads.Rbtree.program ~size:3 ());
          ]);
    Tu.case "triage on a correct workload is all-quiet" (fun () ->
        let t = Lint.triage (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ()) in
        Alcotest.(check int) "anticipated" 0 t.Lint.anticipated;
        Alcotest.(check int) "misses" 0 t.Lint.static_misses;
        Alcotest.(check int) "static only" 0 t.Lint.static_only;
        Alcotest.(check bool) "lint clean" true (Lint.clean t.Lint.lint));
  ]

let verdict_keys (o : Xfd.Engine.outcome) =
  List.sort compare (List.map Report.dedup_key o.Xfd.Engine.unique_bugs)

let guided_tests =
  [
    Tu.case "lint-guided detection keeps the verdict set byte-identical" (fun () ->
        List.iter
          (fun (faults, program) ->
            let config = { Config.default with Config.faults = faults () } in
            let plain = Xfd.Engine.detect ~config (program ()) in
            let _, guided = Lint.detect_guided ~config (program ()) in
            Alcotest.(check (list string)) "same verdicts" (verdict_keys plain)
              (verdict_keys guided))
          [
            ( (fun () -> Faults.make ~skip_tx_add:[ 0 ] ()),
              fun () -> Xfd_workloads.Btree.program ~init_size:2 ~size:2 () );
            ( (fun () -> Faults.make ~skip_flush:[ 1 ] ()),
              fun () -> Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed () );
            ( (fun () -> Faults.make ()),
              fun () -> Xfd_workloads.Hashmap_tx.program ~size:2 () );
          ]);
    Tu.case "priority_of scores windows by finding index" (fun () ->
        let r =
          check
            (mk_trace
               [
                 (Event.Roi_begin, l 1);
                 (Event.Write { addr = data; size = 8 }, l 2);
                 (Event.Clwb { addr = data }, l 3);
                 (Event.Clwb { addr = data }, l 4);
                 (Event.Sfence, l 5);
               ])
        in
        (* The redundant flush fires at trace index 3: it falls in the second
           failure point's window [2, 5). *)
        match Lint.priority_of r [ (0, 2); (1, 5) ] with
        | [ s0; s1 ] -> Alcotest.(check bool) "second window scores higher" true (s1 > s0)
        | other -> Alcotest.failf "arity %d" (List.length other));
  ]

(* Abs is a 5-element lattice: check the laws exhaustively instead of by
   sampling. *)
let abs_tests =
  let all = [ Abs.Bot; Abs.Dirty; Abs.Pending; Abs.Persisted; Abs.Top ] in
  let name x = Abs.to_string x in
  [
    Tu.case "join is commutative, idempotent, associative" (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool) (name a ^ " idem") true (Abs.equal (Abs.join a a) a);
            List.iter
              (fun b ->
                Alcotest.(check bool)
                  (name a ^ "," ^ name b)
                  true
                  (Abs.equal (Abs.join a b) (Abs.join b a));
                List.iter
                  (fun c ->
                    Alcotest.(check bool) "assoc" true
                      (Abs.equal (Abs.join a (Abs.join b c)) (Abs.join (Abs.join a b) c)))
                  all)
              all)
          all);
    Tu.case "join is the least upper bound of leq" (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let j = Abs.join a b in
                Alcotest.(check bool) "upper a" true (Abs.leq a j);
                Alcotest.(check bool) "upper b" true (Abs.leq b j);
                (* least: any other upper bound is above the join *)
                List.iter
                  (fun u ->
                    if Abs.leq a u && Abs.leq b u then
                      Alcotest.(check bool) "least" true (Abs.leq j u))
                  all)
              all)
          all);
    Tu.case "transfer functions are monotone" (fun () ->
        List.iter
          (fun (fname, f) ->
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    if Abs.leq a b then
                      Alcotest.(check bool)
                        (Printf.sprintf "%s %s<=%s" fname (name a) (name b))
                        true
                        (Abs.leq (f a) (f b)))
                  all)
              all)
          [
            ("on_write", Abs.on_write);
            ("on_nt_write", Abs.on_nt_write);
            ("on_flush", Abs.on_flush);
            ("on_fence", Abs.on_fence);
          ]);
  ]

(* The fuzzer's metamorphic oracle M4, in miniature: correct-profile random
   programs must lint clean. *)
let fuzz_props =
  [
    QCheck.Test.make ~count:25 ~name:"correct-profile programs lint clean"
      (QCheck.make ~print:Int64.to_string QCheck.Gen.(map Int64.of_int (int_bound 1000000)))
      (fun seed ->
        let rng = Xfd_util.Rng.create seed in
        let q = Xfd_fuzz.Gen.generate Xfd_fuzz.Gen.Correct rng in
        Lint.clean (Lint.check_prog (Xfd_fuzz.Prog.to_program q)));
  ]

let suite =
  [
    ("lint.rules", rule_tests);
    ("lint.details", detail_tests);
    ("lint.json", json_tests);
    ("lint.goldens", golden_tests);
    ("lint.guided", guided_tests);
    ("lint.abs", abs_tests);
    ("lint.fuzz-oracle", List.map QCheck_alcotest.to_alcotest fuzz_props);
  ]
