(* The pulse layer: ticker, time-series recorder, OpenMetrics encoder,
   the HTTP exposition server, the dashboard — and the acceptance
   guarantee that a fully pulsed detection run (sampler + server + live
   progress) produces a byte-identical verdict. *)

module Obs = Xfd_obs.Obs
module Json = Xfd_util.Json
module Engine = Xfd.Engine
module Flight = Xfd_flight.Flight
module Ticker = Xfd_pulse.Ticker
module Tsdb = Xfd_pulse.Tsdb
module Openmetrics = Xfd_pulse.Openmetrics
module Httpd = Xfd_pulse.Httpd
module Httpc = Xfd_pulse.Httpc
module Pulse = Xfd_pulse.Pulse
module Dash = Xfd_pulse.Dash

(* A workload with a healthy number of failure points, so a fast sampler
   gets several sweeps mid-run. *)
let program () = Xfd_workloads.Btree.program ~init_size:2 ~size:3 ()

(* Strip nondeterministic floats: what detection *found*. *)
let fingerprint (o : Engine.outcome) =
  ( o.Engine.program,
    o.Engine.failure_points,
    o.Engine.pre_events,
    o.Engine.post_events,
    List.map Xfd.Report.dedup_key o.Engine.unique_bugs,
    List.map
      (fun r -> (r.Xfd.Report.failure_point, r.Xfd.Report.trace_pos, r.Xfd.Report.bugs))
      o.Engine.reports )

let host = "127.0.0.1"

let get_ok ~port path =
  match Httpc.get ~host ~port path with
  | Ok (status, body) -> (status, body)
  | Error e -> Alcotest.failf "GET %s failed: %s" path e

let parse_json body =
  match Json.of_string body with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad JSON: %s (in %s)" e body

let jstr key j =
  match Json.member key j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "missing string field %s" key

(* A permissive OpenMetrics line checker: every line is either a # TYPE
   comment, the # EOF terminator, or `name[{labels}] value` with the
   metric-name alphabet. *)
let check_openmetrics body =
  let lines = String.split_on_char '\n' body in
  let lines = match List.rev lines with "" :: r -> List.rev r | _ -> lines in
  (match List.rev lines with
  | "# EOF" :: _ -> ()
  | _ -> Alcotest.fail "exposition does not end with # EOF");
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        let is_type = String.length line > 7 && String.sub line 0 7 = "# TYPE " in
        let is_eof = line = "# EOF" in
        if not (is_type || is_eof) then Alcotest.failf "unexpected comment line %S" line
      end
      else begin
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "sample line without value: %S" line
        | Some i ->
          let name_part = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          let name_ok =
            String.for_all
              (fun c ->
                match c with
                | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                | '{' | '}' | '=' | '"' | '+' | '.' | ',' -> true (* labels *)
                | _ -> false)
              name_part
          in
          if not name_ok then Alcotest.failf "bad metric name in %S" line;
          if float_of_string_opt value = None then
            Alcotest.failf "non-numeric sample value in %S" line
      end)
    lines

let ticker_tests =
  [
    Tu.case "foreground loop runs until the callback stops it" (fun () ->
        let seen = ref [] in
        let n =
          Ticker.loop ~interval:0.001 (fun tick ->
              seen := tick :: !seen;
              if tick >= 4 then `Stop else `Continue)
        in
        Alcotest.(check int) "returns the tick count" 5 n;
        Alcotest.(check (list int)) "ticks in order" [ 0; 1; 2; 3; 4 ] (List.rev !seen));
    Tu.case "background ticker fires and stops promptly" (fun () ->
        let count = Atomic.make 0 in
        let t = Ticker.start ~interval:0.005 (fun () -> Atomic.incr count) in
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Atomic.get count < 2 && Unix.gettimeofday () < deadline do
          Thread.yield ();
          Unix.sleepf 0.002
        done;
        Alcotest.(check bool) "ticked at least twice" true (Atomic.get count >= 2);
        let t0 = Unix.gettimeofday () in
        Ticker.stop t;
        Alcotest.(check bool) "stop returns promptly" true (Unix.gettimeofday () -. t0 < 2.0);
        let frozen = Atomic.get count in
        Unix.sleepf 0.03;
        Alcotest.(check int) "no ticks after stop" frozen (Atomic.get count);
        Ticker.stop t (* idempotent *));
  ]

let tsdb_tests =
  [
    Tu.case "sample captures counters, gauges and histogram derivatives" (fun () ->
        let c = Obs.Counter.make "test.pulse.tsdb_c" in
        let g = Obs.Gauge.make "test.pulse.tsdb_g" in
        let h = Obs.Histogram.make "test.pulse.tsdb_h" in
        Obs.Counter.add c 7;
        Obs.Gauge.set g 2.5;
        List.iter (Obs.Histogram.observe h) [ 1; 2; 3; 4 ];
        let t = Tsdb.create () in
        Tsdb.sample t;
        let names = Tsdb.names t in
        List.iter
          (fun n -> Alcotest.(check bool) (n ^ " recorded") true (List.mem n names))
          [
            "test.pulse.tsdb_c";
            "test.pulse.tsdb_g";
            "test.pulse.tsdb_h.count";
            "test.pulse.tsdb_h.sum";
            "test.pulse.tsdb_h.max";
            "test.pulse.tsdb_h.p50";
            "test.pulse.tsdb_h.p95";
            "test.pulse.tsdb_h.p99";
          ];
        (match Tsdb.window t "test.pulse.tsdb_g" with
        | Some [ p ] -> Alcotest.(check (float 0.0)) "gauge value" 2.5 p.Tsdb.value
        | _ -> Alcotest.fail "expected exactly one gauge point");
        match Tsdb.window t "test.pulse.tsdb_h.count" with
        | Some [ p ] -> Alcotest.(check (float 0.0)) "hist count" 4.0 p.Tsdb.value
        | _ -> Alcotest.fail "expected exactly one hist.count point");
    Tu.case "the ring keeps the newest capacity points and counts drops" (fun () ->
        let g = Obs.Gauge.make "test.pulse.tsdb_ring" in
        let t = Tsdb.create ~capacity:4 () in
        let dropped0 = Option.value ~default:0 (Obs.counter_value "pulse.points_dropped") in
        for i = 1 to 6 do
          Obs.Gauge.set g (float_of_int i);
          Tsdb.sample t
        done;
        (match Tsdb.window t "test.pulse.tsdb_ring" with
        | Some pts ->
          Alcotest.(check (list (float 0.0)))
            "newest 4, oldest first" [ 3.0; 4.0; 5.0; 6.0 ]
            (List.map (fun p -> p.Tsdb.value) pts);
          Alcotest.(check bool) "timestamps nondecreasing" true
            (let rec mono = function
               | a :: (b :: _ as rest) -> a.Tsdb.at <= b.Tsdb.at && mono rest
               | _ -> true
             in
             mono pts)
        | None -> Alcotest.fail "series missing");
        (match Tsdb.window t ~last:2 "test.pulse.tsdb_ring" with
        | Some pts ->
          Alcotest.(check (list (float 0.0)))
            "last=2 keeps the newest two" [ 5.0; 6.0 ]
            (List.map (fun p -> p.Tsdb.value) pts)
        | None -> Alcotest.fail "series missing");
        let dropped = Option.value ~default:0 (Obs.counter_value "pulse.points_dropped") in
        Alcotest.(check bool) "overwrites counted" true (dropped > dropped0);
        Alcotest.(check int) "six sweeps" 6 (Tsdb.samples t));
    Tu.case "unknown series are None, not empty" (fun () ->
        let t = Tsdb.create () in
        Alcotest.(check bool) "window" true (Tsdb.window t "no.such.series" = None);
        Alcotest.(check bool) "series_json" true (Tsdb.series_json t "no.such.series" = None));
    Tu.case "JSONL and CSV exports round-trip" (fun () ->
        let g = Obs.Gauge.make "test.pulse.tsdb_export" in
        let t = Tsdb.create () in
        Obs.Gauge.set g 1.0;
        Tsdb.sample t;
        Obs.Gauge.set g 2.0;
        Tsdb.sample t;
        let jsonl = Filename.temp_file "xfd_tsdb" ".jsonl" in
        let csv = Filename.temp_file "xfd_tsdb" ".csv" in
        Fun.protect
          ~finally:(fun () ->
            Sys.remove jsonl;
            Sys.remove csv)
          (fun () ->
            let nseries = Tsdb.write_jsonl t jsonl in
            Alcotest.(check int) "series written = names" (List.length (Tsdb.names t)) nseries;
            let lines =
              In_channel.with_open_text jsonl In_channel.input_all
              |> String.split_on_char '\n'
              |> List.filter (fun l -> l <> "")
            in
            Alcotest.(check int) "one line per series" nseries (List.length lines);
            List.iter
              (fun line ->
                let j = parse_json line in
                Alcotest.(check string) "typed" "tsdb" (jstr "type" j);
                match Json.member "points" j with
                | Some (Json.Arr (_ :: _)) -> ()
                | _ -> Alcotest.failf "series %s has no points" (jstr "name" j))
              lines;
            let rows = Tsdb.write_csv t csv in
            let csv_lines =
              In_channel.with_open_text csv In_channel.input_all
              |> String.split_on_char '\n'
              |> List.filter (fun l -> l <> "")
            in
            (match csv_lines with
            | header :: data ->
              Alcotest.(check string) "header" "series,unix_s,value" header;
              Alcotest.(check int) "row count returned" (List.length data) rows
            | [] -> Alcotest.fail "empty csv");
            Alcotest.(check bool) "our series has 2 rows" true
              (List.length
                 (List.filter
                    (fun l ->
                      String.length l > 22 && String.sub l 0 22 = "test.pulse.tsdb_export")
                    csv_lines)
              = 2)));
    Tu.case "the background sampler sweeps on its own" (fun () ->
        let t = Tsdb.create () in
        Tsdb.start t ~interval:0.003;
        Alcotest.(check bool) "running" true (Tsdb.running t);
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Tsdb.samples t < 3 && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.002
        done;
        Tsdb.stop t;
        Alcotest.(check bool) "stopped" false (Tsdb.running t);
        Alcotest.(check bool) "swept at least thrice" true (Tsdb.samples t >= 3);
        Alcotest.(check (option (float 0.0))) "interval kept as metadata" (Some 0.003)
          (Tsdb.interval t));
  ]

let openmetrics_tests =
  [
    Tu.case "names are sanitised and prefixed" (fun () ->
        Alcotest.(check string) "dots" "xfd_pm_flushes"
          (Openmetrics.metric_name ~prefix:"xfd_" "pm.flushes");
        Alcotest.(check string) "hostile chars" "xfd_a_b_c_d"
          (Openmetrics.metric_name ~prefix:"xfd_" "a-b/c d");
        Alcotest.(check string) "digits kept when not leading" "xfd_p99"
          (Openmetrics.metric_name ~prefix:"xfd_" "p99"));
    Tu.case "render is well-formed OpenMetrics with counter/gauge/histogram" (fun () ->
        let c = Obs.Counter.make "test.pulse.om_c" in
        let g = Obs.Gauge.make "test.pulse.om_g" in
        let h = Obs.Histogram.make "test.pulse.om_h" in
        Obs.Counter.add c 3;
        Obs.Gauge.set g 1.5;
        List.iter (Obs.Histogram.observe h) [ 1; 2; 200 ];
        let body = Openmetrics.render () in
        check_openmetrics body;
        let has s =
          let n = String.length s and m = String.length body in
          let rec go i = i + n <= m && (String.sub body i n = s || go (i + 1)) in
          Alcotest.(check bool) (Printf.sprintf "contains %S" s) true (go 0)
        in
        has "# TYPE xfd_test_pulse_om_c counter\nxfd_test_pulse_om_c_total ";
        has "# TYPE xfd_test_pulse_om_g gauge\nxfd_test_pulse_om_g 1.5";
        has "# TYPE xfd_test_pulse_om_h histogram\n";
        (* buckets are cumulative: le 1 -> 1 sample, le 3 -> 2, +Inf = 3 *)
        has "xfd_test_pulse_om_h_bucket{le=\"1\"} 1";
        has "xfd_test_pulse_om_h_bucket{le=\"3\"} 2";
        has "xfd_test_pulse_om_h_bucket{le=\"+Inf\"} 3";
        has "xfd_test_pulse_om_h_sum 203";
        has "xfd_test_pulse_om_h_count 3";
        has "# TYPE xfd_test_pulse_om_h_p50 gauge";
        has "# TYPE xfd_test_pulse_om_h_p99 gauge");
  ]

(* Raw request helper for wire shapes Httpc does not speak.  [shutdown]
   half-closes the write side after sending — how a client that died
   mid-body looks to the server. *)
let raw_request ?(shutdown = false) ~port req =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      if shutdown then Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      (* A server that rejects early (e.g. 431) closes with our request
         partly unread; the resulting RST after the response is fine. *)
      let rec go () =
        match Unix.read fd chunk 0 1024 with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      go ();
      Buffer.contents buf)

let httpd_tests =
  [
    Tu.case "serves handlers on an ephemeral port with query decoding" (fun () ->
        let seen = ref None in
        let srv =
          Httpd.start ~port:0 (fun req ->
              match req.Httpd.path with
              | "/echo" ->
                seen := Some req.Httpd.query;
                Httpd.text 200 "ok"
              | "/boom" -> failwith "handler exploded"
              | _ -> Httpd.not_found)
        in
        Fun.protect
          ~finally:(fun () -> Httpd.stop srv)
          (fun () ->
            let port = Httpd.port srv in
            Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
            let status, body = get_ok ~port "/echo?a=1&msg=hello%20world&flag" in
            Alcotest.(check int) "200" 200 status;
            Alcotest.(check string) "body" "ok" body;
            Alcotest.(check
                        (option (list (pair string string))))
              "query decoded"
              (Some [ ("a", "1"); ("msg", "hello world"); ("flag", "") ])
              !seen;
            let status, _ = get_ok ~port "/missing" in
            Alcotest.(check int) "404" 404 status;
            let status, _ = get_ok ~port "/boom" in
            Alcotest.(check int) "handler exception is a 500" 500 status;
            let resp = raw_request ~port "POST /echo HTTP/1.1\r\nHost: x\r\n\r\n" in
            Alcotest.(check bool) "POST is 405" true
              (String.length resp >= 12 && String.sub resp 9 3 = "405");
            let has_allow =
              let s = "Allow: GET, HEAD" in
              let n = String.length s and m = String.length resp in
              let rec go i = i + n <= m && (String.sub resp i n = s || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "405 carries Allow: GET, HEAD" true has_allow;
            let resp = raw_request ~port "HEAD /echo HTTP/1.1\r\nHost: x\r\n\r\n" in
            Alcotest.(check bool) "HEAD has no body" true
              (String.sub resp 9 3 = "200"
              &&
              let n = String.length resp in
              String.sub resp (n - 4) 4 = "\r\n\r\n")));
    Tu.case "POST bodies: echo within cap, 411/413/431/400 outside it" (fun () ->
        let srv =
          Httpd.start ~port:0
            ~allowed_methods:[ "GET"; "HEAD"; "POST" ]
            ~max_body_bytes:64
            (fun req ->
              if req.Httpd.path = "/echo" then Httpd.text 200 req.Httpd.body
              else Httpd.not_found)
        in
        Fun.protect
          ~finally:(fun () -> Httpd.stop srv)
          (fun () ->
            let port = Httpd.port srv in
            let status_of resp = String.sub resp 9 3 in
            let resp =
              raw_request ~port
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
            in
            Alcotest.(check string) "within cap is 200" "200" (status_of resp);
            let n = String.length resp in
            Alcotest.(check string) "body echoed back" "hello" (String.sub resp (n - 5) 5);
            let resp = raw_request ~port "POST /echo HTTP/1.1\r\nHost: x\r\n\r\n" in
            Alcotest.(check string) "POST without Content-Length is 411" "411"
              (status_of resp);
            let resp =
              raw_request ~port
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 65\r\n\r\n"
            in
            Alcotest.(check string) "body over cap is 413" "413" (status_of resp);
            let resp =
              raw_request ~port
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: nope\r\n\r\n"
            in
            Alcotest.(check string) "bad Content-Length is 400" "400" (status_of resp);
            let resp =
              raw_request ~shutdown:true ~port
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nhi"
            in
            Alcotest.(check string) "truncated body is 400" "400" (status_of resp);
            let resp =
              raw_request ~port
                (Printf.sprintf "GET /echo HTTP/1.1\r\nHost: x\r\nX-Pad: %s\r\n\r\n"
                   (String.make 9000 'a'))
            in
            Alcotest.(check string) "oversized head is 431" "431" (status_of resp);
            let resp = raw_request ~port "DELETE /echo HTTP/1.1\r\nHost: x\r\n\r\n" in
            Alcotest.(check string) "DELETE is still 405" "405" (status_of resp)));
    Tu.case "stop closes the listener" (fun () ->
        let srv = Httpd.start ~port:0 (fun _ -> Httpd.text 200 "up") in
        let port = Httpd.port srv in
        (match Httpc.get ~host ~port "/" with
        | Ok (200, "up") -> ()
        | Ok (s, b) -> Alcotest.failf "unexpected %d %S" s b
        | Error e -> Alcotest.failf "server not serving: %s" e);
        Httpd.stop srv;
        Httpd.stop srv;
        (* idempotent *)
        match Httpc.get ~host ~port "/" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "stopped server still answering");
    Tu.case "endpoint parsing accepts HOST:PORT and bare PORT" (fun () ->
        Alcotest.(check bool) "bare port" true
          (Httpc.parse_endpoint "8080" = Ok ("127.0.0.1", 8080));
        Alcotest.(check bool) "host:port" true
          (Httpc.parse_endpoint "10.0.0.7:90" = Ok ("10.0.0.7", 90));
        let is_err = function Error _ -> true | Ok _ -> false in
        Alcotest.(check bool) "garbage" true (is_err (Httpc.parse_endpoint "wat"));
        Alcotest.(check bool) "empty host" true (is_err (Httpc.parse_endpoint ":5"));
        Alcotest.(check bool) "port 0" true (is_err (Httpc.parse_endpoint "1.2.3.4:0")));
  ]

(* Run [f] with the flight ring cleared, restoring level and clearing
   again afterwards — route tests derive lifecycle from the ring. *)
let with_flight f =
  let lvl0 = Flight.level () and en0 = Flight.enabled () in
  Flight.set_enabled true;
  Flight.clear ();
  Fun.protect
    ~finally:(fun () ->
      Flight.set_level lvl0;
      Flight.set_enabled en0;
      Flight.clear ())
    f

let route_tests =
  [
    Tu.case "routes serve metrics, health, series, flight and summary" (fun () ->
        let tsdb = Tsdb.create () in
        Tsdb.sample tsdb;
        let handle path =
          Pulse.handler tsdb { Httpd.meth = "GET"; path; query = []; headers = []; body = "" }
        in
        let metrics = handle "/metrics" in
        Alcotest.(check int) "/metrics 200" 200 metrics.Httpd.status;
        Alcotest.(check string) "openmetrics content type" Openmetrics.content_type
          metrics.Httpd.content_type;
        check_openmetrics metrics.Httpd.body;
        let health = handle "/health" in
        Alcotest.(check int) "/health 200" 200 health.Httpd.status;
        let hj = parse_json health.Httpd.body in
        Alcotest.(check bool) "health has a status" true
          (List.mem (jstr "status" hj) [ "idle"; "running"; "done" ]);
        let index = handle "/series" in
        let ij = parse_json index.Httpd.body in
        (match Json.member "series" ij with
        | Some (Json.Arr (_ :: _)) -> ()
        | _ -> Alcotest.fail "/series index empty");
        let one =
          Pulse.handler tsdb
            {
              Httpd.meth = "GET";
              path = "/series";
              query = [ ("name", "pulse.samples"); ("last", "1") ];
              headers = [];
              body = "";
            }
        in
        let oj = parse_json one.Httpd.body in
        Alcotest.(check string) "series name echoes" "pulse.samples" (jstr "name" oj);
        let missing =
          Pulse.handler tsdb
            {
              Httpd.meth = "GET";
              path = "/series";
              query = [ ("name", "nope") ];
              headers = [];
              body = "";
            }
        in
        Alcotest.(check int) "unknown series 404" 404 missing.Httpd.status;
        let flight = handle "/flight" in
        Alcotest.(check int) "/flight 200" 200 flight.Httpd.status;
        let summary = handle "/summary" in
        ignore (parse_json summary.Httpd.body);
        Alcotest.(check int) "unknown route 404" 404 (handle "/nope").Httpd.status);
    Tu.case "ready follows the flight-recorder lifecycle" (fun () ->
        with_flight (fun () ->
            let tsdb = Tsdb.create () in
            let handle path =
              Pulse.handler tsdb { Httpd.meth = "GET"; path; query = []; headers = []; body = "" }
            in
            Alcotest.(check int) "idle is 503" 503 (handle "/ready").Httpd.status;
            Alcotest.(check bool) "status idle" true (Pulse.status () = Pulse.Idle);
            ignore (Flight.begin_run ~program:"pulse-test");
            Alcotest.(check int) "running is 200" 200 (handle "/ready").Httpd.status;
            Alcotest.(check bool) "status running" true (Pulse.status () = Pulse.Running);
            Flight.end_run [];
            Alcotest.(check int) "done is 200" 200 (handle "/ready").Httpd.status;
            Alcotest.(check bool) "status done" true (Pulse.status () = Pulse.Done);
            let hj = parse_json (handle "/health").Httpd.body in
            Alcotest.(check string) "health agrees" "done" (jstr "status" hj)));
  ]

let dash_tests =
  [
    Tu.case "sparkline scales deltas of a cumulative series" (fun () ->
        Alcotest.(check string) "empty" "" (Dash.sparkline []);
        Alcotest.(check string) "single point" "" (Dash.sparkline [ (0.0, 5.0) ]);
        Alcotest.(check string) "flat is all-low" "\xe2\x96\x81\xe2\x96\x81"
          (Dash.sparkline [ (0.0, 5.0); (1.0, 5.0); (2.0, 5.0) ]);
        Alcotest.(check string) "steady growth is all-high" "\xe2\x96\x88\xe2\x96\x88"
          (Dash.sparkline [ (0.0, 0.0); (1.0, 3.0); (2.0, 6.0) ]));
    Tu.case "render shows progress, bugs and PM traffic" (fun () ->
        let snap =
          {
            Dash.at = 0.0;
            status = "running";
            run = "run-test-1";
            completed = 5;
            total = 10;
            fp_fired = 5;
            unique_bugs = 2;
            bug_race = 1;
            bug_semantic = 1;
            bug_perf = 0;
            pm_store_bytes = 2048;
            pm_flushes = 17;
            pm_fences = 9;
            pm_snapshot_bytes = 0;
            pm_live_bytes = 0.0;
            samples = 3;
            spark = [ (0.0, 0.0); (1.0, 5.0) ];
          }
        in
        let out = Dash.render snap in
        List.iter
          (fun needle ->
            let n = String.length needle and m = String.length out in
            let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
            Alcotest.(check bool) (Printf.sprintf "render contains %S" needle) true (go 0))
          [ "running"; "run-test-1"; "5/10"; "(50%)"; "2 unique"; "race 1"; "flushes 17"; "2.0 KiB" ]);
  ]

let acceptance_tests =
  [
    Tu.case "a fully pulsed run serves live state and is verdict-neutral" (fun () ->
        let off = Tu.detect (program ()) in
        let tsdb = Tsdb.create () in
        Tsdb.start tsdb ~interval:0.002;
        let srv = Pulse.start ~tsdb () in
        let port = Pulse.port srv in
        let mid = ref None in
        let on_progress (p : Engine.progress) =
          Pulse.note_progress ~completed:p.completed ~total:p.total;
          (* Half-way through the post-failure stage the run is live:
             scrape from inside the callback, which is mid-detect by
             construction — no timing race. *)
          if !mid = None && p.completed > 0 && p.completed >= (p.total + 1) / 2 then
            mid :=
              Some
                ( Httpc.get ~host ~port "/health",
                  Httpc.get ~host ~port "/metrics",
                  Httpc.get ~host ~port "/ready" )
        in
        let on = Engine.detect ~on_progress (program ()) in
        Tsdb.sample tsdb;
        let end_health = get_ok ~port "/health" in
        let samples = Tsdb.samples tsdb in
        Tsdb.stop tsdb;
        Pulse.stop srv;
        (* Verdict neutrality: byte-identical findings. *)
        Alcotest.(check bool) "identical findings with and without pulse" true
          (fingerprint off = fingerprint on);
        (* The sampler saw the run happen. *)
        Alcotest.(check bool)
          (Printf.sprintf "sampler swept >= 2 times (got %d)" samples)
          true (samples >= 2);
        (* Mid-run scrape. *)
        (match !mid with
        | None -> Alcotest.fail "progress callback never reached the half-way point"
        | Some (health, metrics, ready) ->
          (match health with
          | Ok (200, body) ->
            let hj = parse_json body in
            Alcotest.(check string) "mid-run status is running" "running" (jstr "status" hj);
            (match Json.member "completed" hj with
            | Some (Json.Int c) -> Alcotest.(check bool) "progress visible" true (c > 0)
            | _ -> Alcotest.fail "health lacks completed")
          | Ok (s, _) -> Alcotest.failf "mid-run /health returned %d" s
          | Error e -> Alcotest.failf "mid-run /health failed: %s" e);
          (match metrics with
          | Ok (200, body) ->
            check_openmetrics body;
            let needle = "xfd_engine_failure_points_fired_total" in
            let n = String.length needle and m = String.length body in
            let rec go i = i + n <= m && (String.sub body i n = needle || go (i + 1)) in
            Alcotest.(check bool) "engine counters exposed" true (go 0)
          | Ok (s, _) -> Alcotest.failf "mid-run /metrics returned %d" s
          | Error e -> Alcotest.failf "mid-run /metrics failed: %s" e);
          match ready with
          | Ok (200, _) -> ()
          | Ok (s, _) -> Alcotest.failf "mid-run /ready returned %d" s
          | Error e -> Alcotest.failf "mid-run /ready failed: %s" e);
        (* After the run the endpoint reports done. *)
        let status, body = end_health in
        Alcotest.(check int) "post-run /health 200" 200 status;
        Alcotest.(check string) "post-run status is done" "done"
          (jstr "status" (parse_json body));
        (* The window actually captured the fired counter moving. *)
        match Tsdb.window tsdb "engine.failure_points.fired" with
        | None -> Alcotest.fail "fired series never sampled"
        | Some pts ->
          let vs = List.map (fun p -> p.Tsdb.value) pts in
          Alcotest.(check bool) "fired series is nondecreasing" true
            (let rec mono = function
               | a :: (b :: _ as rest) -> a <= b && mono rest
               | _ -> true
             in
             mono vs));
    Tu.case "snap_remote mirrors snap_local through the HTTP surface" (fun () ->
        let tsdb = Tsdb.create () in
        Tsdb.sample tsdb;
        let srv = Pulse.start ~tsdb () in
        Fun.protect
          ~finally:(fun () -> Pulse.stop srv)
          (fun () ->
            let local = Dash.snap_local tsdb in
            match Dash.snap_remote ~host ~port:(Pulse.port srv) with
            | Error e -> Alcotest.failf "snap_remote failed: %s" e
            | Ok remote ->
              Alcotest.(check string) "status agrees" local.Dash.status remote.Dash.status;
              Alcotest.(check int) "fired agrees" local.Dash.fp_fired remote.Dash.fp_fired;
              Alcotest.(check int) "bugs agree" local.Dash.unique_bugs remote.Dash.unique_bugs;
              Alcotest.(check bool) "render works on a remote snap" true
                (String.length (Dash.render remote) > 0)));
  ]

let suite =
  [
    ("pulse.ticker", ticker_tests);
    ("pulse.tsdb", tsdb_tests);
    ("pulse.openmetrics", openmetrics_tests);
    ("pulse.httpd", httpd_tests);
    ("pulse.routes", route_tests);
    ("pulse.dash", dash_tests);
    ("pulse.acceptance", acceptance_tests);
  ]
