(* Shared helpers for the test suites. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr

let loc = Xfd_util.Loc.of_pos

(* A fresh device + trace + context. *)
let make_ctx ?faults ?strategy ?trust_library ?on_failure_point ?(stage = Ctx.Pre_failure)
    () =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ?faults ?strategy ?trust_library ?on_failure_point ~stage ~dev ~trace () in
  (dev, trace, ctx)

let i64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Ld" v) Int64.equal

let json_t =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Xfd_util.Json.to_string j))
    ( = )

let detect ?config program = Xfd.Engine.detect ?config program

let tally_of ?config program =
  let o = detect ?config program in
  Xfd.Engine.tally o

let check_clean name outcome =
  let races, semantics, perfs, errors = Xfd.Engine.tally outcome in
  Alcotest.(check int) (name ^ ": races") 0 races;
  Alcotest.(check int) (name ^ ": semantic") 0 semantics;
  Alcotest.(check int) (name ^ ": perf") 0 perfs;
  Alcotest.(check int) (name ^ ": post errors") 0 errors

let case name f = Alcotest.test_case name `Quick f

(* Run [pre] on a fresh device, crash with the given mode, run [post] on the
   booted image; returns what post returns. *)
let crash_boot ~pre ~mode ~post =
  let dev, _, ctx = make_ctx () in
  pre ctx;
  let img = Device.crash dev mode in
  let dev' = Device.boot img in
  let trace' = Trace.create () in
  let ctx' = Ctx.create ~stage:Ctx.Post_failure ~dev:dev' ~trace:trace' () in
  post ctx'

(* Run [setup] and [pre] with failure injection, capturing a *strict* crash
   image (only guaranteed-durable bytes) at every failure point plus the
   final state.  Used by the workload suites to assert transactional
   atomicity: recovery from any of these images must yield a consistent
   structure. *)
let strict_crash_points ~setup ~pre =
  let dev = Device.create () in
  let trace = Trace.create () in
  let images = ref [] in
  let hook _ctx = images := Device.crash dev Device.Strict :: !images in
  let ctx = Ctx.create ~on_failure_point:hook ~stage:Ctx.Pre_failure ~dev ~trace () in
  setup ctx;
  (match pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  images := Device.crash dev Device.Strict :: !images;
  List.rev !images

(* Boot an image and run [f] on a post-failure context. *)
let on_image img f =
  let dev = Device.boot img in
  let trace = Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Post_failure ~dev ~trace () in
  f ctx

(* Is [xs] a set-prefix of [ys]?  (All elements of xs appear in ys's prefix
   order-insensitively: xs = first (length xs) elements of ys as sets.) *)
let is_prefix_set xs ys =
  let n = List.length xs in
  if n > List.length ys then false
  else begin
    let prefix = List.filteri (fun i _ -> i < n) ys in
    List.sort compare xs = List.sort compare prefix
  end

(* Like [strict_crash_points] but capturing full device snapshots, so the
   caller can derive any crash image (e.g. randomized line evictions). *)
let device_snapshots ~setup ~pre =
  let dev = Device.create () in
  let trace = Trace.create () in
  let snaps = ref [] in
  let hook _ctx = snaps := Device.snapshot dev :: !snaps in
  let ctx = Ctx.create ~on_failure_point:hook ~stage:Ctx.Pre_failure ~dev ~trace () in
  setup ctx;
  (match pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  snaps := Device.snapshot dev :: !snaps;
  List.rev !snaps
