(* Tests for the JSON encoder and the machine-readable outcome output. *)

module Json = Xfd_util.Json

let encoder_tests =
  [
    Tu.case "scalar rendering" (fun () ->
        Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
        Alcotest.(check string) "neg" "-7" (Json.to_string (Json.Int (-7)));
        Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
        Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
        Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Float 1.5));
        Alcotest.(check string) "integral float" "3.0" (Json.to_string (Json.Float 3.0)));
    Tu.case "string escaping" (fun () ->
        Alcotest.(check string) "quote" "\\\"" (Json.escape "\"");
        Alcotest.(check string) "backslash" "\\\\" (Json.escape "\\");
        Alcotest.(check string) "newline" "a\\nb" (Json.escape "a\nb");
        Alcotest.(check string) "control" "\\u0001" (Json.escape "\001");
        Alcotest.(check string) "rendered" "\"a\\tb\"" (Json.to_string (Json.Str "a\tb")));
    Tu.case "compound rendering" (fun () ->
        let v = Json.Obj [ ("xs", Json.Arr [ Json.Int 1; Json.Int 2 ]); ("ok", Json.Bool false) ] in
        Alcotest.(check string) "compact" {|{"xs":[1,2],"ok":false}|} (Json.to_string v);
        Alcotest.(check string) "empties" {|{"a":[],"b":{}}|}
          (Json.to_string (Json.Obj [ ("a", Json.Arr []); ("b", Json.Obj []) ])));
    Tu.case "pretty output is indented and re-compactable" (fun () ->
        let v = Json.Obj [ ("k", Json.Arr [ Json.Str "v" ]) ] in
        let pretty = Json.to_string_pretty v in
        Alcotest.(check bool) "has newlines" true (String.contains pretty '\n');
        (* stripping whitespace outside strings must recover the compact form *)
        let compact =
          String.to_seq pretty
          |> Seq.filter (fun c -> c <> '\n' && c <> ' ')
          |> String.of_seq
        in
        Alcotest.(check string) "same structure" (Json.to_string v) compact);
  ]

let outcome_tests =
  [
    Tu.case "outcome JSON carries the tally and the bug kinds" (fun () ->
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let s = Json.to_string (Xfd.Engine.outcome_to_json o) in
        let contains sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "program name" true (contains "\"array_update(fig2-bug)\"");
        Alcotest.(check bool) "race kind" true (contains "\"cross-failure-race\"");
        Alcotest.(check bool) "semantic kind" true (contains "\"cross-failure-semantic-bug\"");
        Alcotest.(check bool) "status" true (contains "\"IC-stale\"");
        Alcotest.(check bool) "locations" true (contains "\"lib/workloads/array_update.ml\""));
    Tu.case "clean outcome has empty bug arrays" (fun () ->
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true ()) in
        let s = Json.to_string (Xfd.Engine.outcome_to_json o) in
        let contains sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "no bugs" true (contains "\"unique_bugs\":[]"));
  ]

(* Encoder/parser round trips on strings that need escaping. *)
let roundtrip_tests =
  let rt s =
    match Json.of_string (Json.to_string (Json.Str s)) with
    | Ok (Json.Str s') -> s'
    | Ok _ -> Alcotest.failf "round trip of %S produced a non-string" s
    | Error e -> Alcotest.failf "round trip of %S failed: %s" s e
  in
  [
    Tu.case "escaped strings round-trip" (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) (Printf.sprintf "%S" s) s (rt s))
          [
            "";
            "plain";
            "quote \" inside";
            "back\\slash";
            "line\nbreak\r\ttab";
            "nul \000 and bell \007";
            "high byte \x7f";
            "{\"looks\":\"like json\"}";
          ]);
    Tu.case "\\uXXXX escapes below 0x80 decode to bytes" (fun () ->
        (match Json.of_string "\"A\\u000aZ\\u0000\"" with
        | Ok (Json.Str s) -> Alcotest.(check string) "decoded" "A\nZ\000" s
        | Ok _ | Error _ -> Alcotest.fail "expected a string");
        (* Code points >= 0x80 are preserved as their literal escape text. *)
        match Json.of_string "\"caf\\u00e9\"" with
        | Ok (Json.Str s) -> Alcotest.(check string) "preserved" "caf\\u00e9" s
        | Ok _ | Error _ -> Alcotest.fail "expected a string");
    Tu.case "escape output re-parses to the original body" (fun () ->
        List.iter
          (fun s ->
            let quoted = "\"" ^ Json.escape s ^ "\"" in
            match Json.of_string quoted with
            | Ok (Json.Str s') -> Alcotest.(check string) "body" s s'
            | Ok _ | Error _ -> Alcotest.failf "escape of %S did not re-parse" s)
          [ "\001\002\031"; "mixed \" and \\ and \n"; "trailing backslash \\" ]);
  ]

let roundtrip_props =
  let ascii_string =
    QCheck.make
      ~print:(fun s -> Printf.sprintf "%S" s)
      QCheck.Gen.(map (String.map (fun c -> Char.chr (Char.code c land 0x7f))) string)
  in
  [
    QCheck.Test.make ~name:"to_string/of_string round-trips any 7-bit string" ~count:300
      ascii_string
      (fun s ->
        match Json.of_string (Json.to_string (Json.Str s)) with
        | Ok (Json.Str s') -> s' = s
        | Ok _ | Error _ -> false);
    QCheck.Test.make ~name:"nested values survive a round trip" ~count:100
      (QCheck.pair QCheck.small_int ascii_string)
      (fun (n, s) ->
        let v =
          Json.Obj
            [ ("k", Json.Arr [ Json.Int n; Json.Str s; Json.Null ]); ("b", Json.Bool true) ]
        in
        Json.of_string (Json.to_string v) = Ok v);
  ]

let suite =
  [
    ("json.encoder", encoder_tests);
    ("json.outcome", outcome_tests);
    ("json.roundtrip", roundtrip_tests @ List.map QCheck_alcotest.to_alcotest roundtrip_props);
  ]
