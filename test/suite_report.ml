(* Tests for report deduplication and the forensics layer: provenance
   chains, bounded histories, timeline rendering and coverage reports. *)

module Report = Xfd.Report
module Provenance = Xfd_forensics.Provenance
module Timeline = Xfd_forensics.Timeline
module History = Xfd_forensics.History
module Coverage = Xfd_forensics.Coverage
module Trace = Xfd_trace.Trace
module Event = Xfd_trace.Event

let mkloc file line = Xfd_util.Loc.make ~file ~line

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A small pool of distinct source locations to draw bug fields from. *)
let loc_gen =
  QCheck.Gen.(
    map2 (fun f l -> mkloc (Printf.sprintf "f%d.ml" f) l) (int_bound 3) (int_range 1 20))

let status_gen = QCheck.Gen.oneofl [ Xfd.Cstate.Uncommitted; Xfd.Cstate.Stale ]

let waste_gen =
  QCheck.Gen.oneofl
    [
      `Flush Xfd.Pstate.Double_flush;
      `Flush Xfd.Pstate.Unnecessary_flush;
      `Duplicate_tx_add;
    ]

(* One random bug of each kind over shared random locations, plus random
   address/size fields (which must NOT participate in the key). *)
let bug_gen =
  QCheck.Gen.(
    loc_gen >>= fun l1 ->
    loc_gen >>= fun l2 ->
    int_bound 0xffff >>= fun addr ->
    int_range 1 64 >>= fun size ->
    oneof
      [
        map
          (fun uninit ->
            Report.Race
              { addr; size; read_loc = l1; write_loc = l2; uninit; provenance = None })
          bool;
        map
          (fun status ->
            Report.Semantic
              { addr; size; read_loc = l1; write_loc = l2; status; provenance = None })
          status_gen;
        map (fun waste -> Report.Perf { addr; loc = l1; waste; provenance = None }) waste_gen;
      ])

let bug_print b = Format.asprintf "%a" Report.pp_bug b
let bug_arb = QCheck.make ~print:bug_print bug_gen

(* The identity a dedup key must capture: kind, program points and the
   kind-specific qualifier — and nothing else. *)
let identity = function
  | Report.Race { read_loc; write_loc; uninit; _ } ->
    ("race", Xfd_util.Loc.to_string read_loc, Xfd_util.Loc.to_string write_loc,
     string_of_bool uninit)
  | Report.Semantic { read_loc; write_loc; status; _ } ->
    ("semantic", Xfd_util.Loc.to_string read_loc, Xfd_util.Loc.to_string write_loc,
     Xfd.Cstate.to_string status)
  | Report.Perf { loc; waste; _ } ->
    let w =
      match waste with
      | `Flush Xfd.Pstate.Double_flush -> "df"
      | `Flush Xfd.Pstate.Unnecessary_flush -> "uf"
      | `Duplicate_tx_add -> "dta"
    in
    ("perf", Xfd_util.Loc.to_string loc, "", w)
  | Report.Post_failure_error { exn; _ } -> ("post", exn, "", "")

let dedup_props =
  [
    QCheck.Test.make ~name:"dedup keys collide exactly on bug identity" ~count:300
      (QCheck.pair bug_arb bug_arb)
      (fun (b1, b2) ->
        (Report.dedup_key b1 = Report.dedup_key b2) = (identity b1 = identity b2));
    QCheck.Test.make ~name:"dedup key ignores addr/size (same bug, many failure points)"
      ~count:200
      (QCheck.quad bug_arb (QCheck.int_bound 0xffff) (QCheck.int_range 1 64)
         (QCheck.int_bound 0xffff))
      (fun (b, a1, sz, a2) ->
        let relocate addr size = function
          | Report.Race r -> Report.Race { r with addr; size }
          | Report.Semantic s -> Report.Semantic { s with addr; size }
          | Report.Perf p -> Report.Perf { p with addr }
          | Report.Post_failure_error _ as e -> e
        in
        Report.dedup_key (relocate a1 sz b) = Report.dedup_key (relocate a2 sz b));
  ]

(* A hand-built trace exercising the timeline and chain machinery. *)
let make_trace kinds =
  let t = Trace.create () in
  List.iteri (fun i k -> ignore (Trace.append t ~kind:k ~loc:(mkloc "t.ml" (i + 1)))) kinds;
  t

let sample_trace () =
  make_trace
    [
      Event.Write { addr = 0x100; size = 8 };
      Event.Clwb { addr = 0x100 };
      Event.Sfence;
      Event.Write { addr = 0x108; size = 8 };
      Event.Clwb { addr = 0x100 };
      Event.Write { addr = 0x110; size = 8 };
      Event.Sfence;
    ]

let timeline_tests =
  [
    Tu.case "range is clamped and marks the right lines" (fun () ->
        let t = sample_trace () in
        let lines = Timeline.range t ~from:(-3) ~upto:100 ~marks:[ 1; 3 ] in
        Alcotest.(check int) "all events rendered" (Trace.length t) (List.length lines);
        List.iteri
          (fun i l ->
            let marked = String.length l > 0 && l.[0] = '>' in
            Alcotest.(check bool) (Printf.sprintf "mark on line %d" i) (i = 1 || i = 3)
              marked)
          lines);
    Tu.case "excerpts merge overlapping windows" (fun () ->
        let t = sample_trace () in
        (* Radius 2 around indices 1 and 3 overlaps into one excerpt. *)
        (match Timeline.excerpts t ~indices:[ 3; 1 ] ~radius:2 with
        | [ x ] ->
          Alcotest.(check int) "from" 0 x.Timeline.from;
          Alcotest.(check int) "upto" 6 x.Timeline.upto;
          Alcotest.(check int) "lines" 6 (List.length x.Timeline.lines)
        | xs -> Alcotest.failf "expected one merged excerpt, got %d" (List.length xs));
        (* Radius 0 around distant indices stays separate. *)
        match Timeline.excerpts t ~indices:[ 0; 6 ] ~radius:0 with
        | [ a; b ] ->
          Alcotest.(check int) "first" 0 a.Timeline.from;
          Alcotest.(check int) "second" 6 b.Timeline.from
        | xs -> Alcotest.failf "expected two excerpts, got %d" (List.length xs));
    Tu.case "out-of-range indices are dropped" (fun () ->
        let t = sample_trace () in
        Alcotest.(check int) "empty" 0
          (List.length (Timeline.excerpts t ~indices:[ -1; 99 ] ~radius:2)));
  ]

let history_tests =
  [
    Tu.case "ring keeps the most recent writes, oldest first" (fun () ->
        let h = History.create () in
        for ev = 1 to History.depth + 2 do
          History.record_write h ~ev ~nt:false
        done;
        let expected = List.init History.depth (fun i -> 3 + i) in
        Alcotest.(check (list int)) "retained" expected (History.writes h);
        Alcotest.(check (option int)) "last" (Some (History.depth + 2))
          (History.last_write h));
    Tu.case "a new write invalidates the old flush/fence" (fun () ->
        let h = History.create () in
        History.record_write h ~ev:1 ~nt:false;
        History.record_flush h ~ev:2;
        History.record_fence h ~ev:3;
        Alcotest.(check (option int)) "flush" (Some 2) (History.last_flush h);
        History.record_write h ~ev:4 ~nt:false;
        Alcotest.(check (option int)) "flush reset" None (History.last_flush h);
        Alcotest.(check (option int)) "fence reset" None (History.last_fence h));
    Tu.case "nt store is its own writeback" (fun () ->
        let h = History.create () in
        History.record_write h ~ev:7 ~nt:true;
        Alcotest.(check (option int)) "flush = store" (Some 7) (History.last_flush h));
    Tu.case "realloc clears everything" (fun () ->
        let h = History.create () in
        History.record_write h ~ev:1 ~nt:false;
        History.record_flush h ~ev:2;
        History.record_alloc h ~ev:5;
        Alcotest.(check (list int)) "writes" [] (History.writes h);
        Alcotest.(check (option int)) "alloc" (Some 5) (History.alloc_site h));
  ]

(* Attaching or stripping a provenance chain must never move a bug between
   dedup buckets: --explain is presentation, not identity. *)
let provenance_key_props =
  [
    QCheck.Test.make ~count:200 ~name:"dedup key is provenance-blind" bug_arb
      (fun b ->
        let chain =
          Provenance.build ~pre:(sample_trace ()) ~addr:0x100 ~size:8 ~verdict:"race"
            ~persistence:"modified"
            [ (Provenance.Pre, Provenance.Write, 0) ]
        in
        let with_chain = function
          | Report.Race r -> Report.Race { r with provenance = Some chain }
          | Report.Semantic s -> Report.Semantic { s with provenance = Some chain }
          | Report.Perf p -> Report.Perf { p with provenance = Some chain }
          | Report.Post_failure_error _ as e -> e
        in
        let without = function
          | Report.Race r -> Report.Race { r with provenance = None }
          | Report.Semantic s -> Report.Semantic { s with provenance = None }
          | Report.Perf p -> Report.Perf { p with provenance = None }
          | Report.Post_failure_error _ as e -> e
        in
        Report.dedup_key (with_chain b) = Report.dedup_key b
        && Report.dedup_key (without b) = Report.dedup_key b);
  ]

let forensics_toggle_tests =
  [
    Tu.case "forensics on/off produces identical dedup key sets" (fun () ->
        let keys forensics program =
          let config = { Xfd.Config.default with forensics } in
          let o = Tu.detect ~config program in
          List.sort_uniq String.compare
            (List.map Report.dedup_key o.Xfd.Engine.unique_bugs)
        in
        List.iter
          (fun (name, make) ->
            Alcotest.(check (list string))
              name
              (keys false (make ()))
              (keys true (make ())))
          [
            ("array_update", fun () -> Xfd_workloads.Array_update.program ~size:1 ());
            ("linkedlist", fun () -> Xfd_workloads.Linkedlist.program ~size:3 ());
            ("btree", fun () -> Xfd_workloads.Btree.program ~init_size:2 ~size:2 ());
          ]);
  ]

let provenance_tests =
  [
    Tu.case "build resolves, orders and excerpts the chain" (fun () ->
        let pre = sample_trace () in
        let p =
          Provenance.build ~pre ~addr:0x100 ~size:8 ~verdict:"race"
            ~persistence:"writeback-pending"
            [
              (Provenance.Pre, Provenance.Writeback, 4);
              (Provenance.Pre, Provenance.Write, 0);
              (Provenance.Pre, Provenance.Fence, 99) (* dropped: out of range *);
            ]
        in
        (match p.Provenance.entries with
        | [ w; wb ] ->
          Alcotest.(check int) "write first" 0 w.Provenance.index;
          Alcotest.(check bool) "roles" true
            (w.Provenance.role = Provenance.Write && wb.Provenance.role = Provenance.Writeback);
          Alcotest.(check string) "resolved event" "WRITE 0x100 8" w.Provenance.event;
          Alcotest.(check int) "resolved loc" 1 w.Provenance.loc.Xfd_util.Loc.line
        | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
        let rendered = Format.asprintf "%a" Provenance.pp p in
        Alcotest.(check bool) "has why" true
          (contains rendered "why:");
        Alcotest.(check bool) "has chain" true
          (contains rendered "chain:"));
    Tu.case "chain JSON carries verdict, roles and excerpt lines" (fun () ->
        let pre = sample_trace () in
        let p =
          Provenance.build ~pre ~addr:0x108 ~size:8 ~verdict:"race"
            ~persistence:"modified"
            [ (Provenance.Pre, Provenance.Write, 3) ]
        in
        let j = Provenance.to_json p in
        let str_member k =
          match Xfd_util.Json.member k j with Some (Xfd_util.Json.Str s) -> s | _ -> "?"
        in
        Alcotest.(check string) "verdict" "race" (str_member "verdict");
        Alcotest.(check string) "persistence" "modified" (str_member "persistence");
        match Xfd_util.Json.member "chain" j with
        | Some (Xfd_util.Json.Arr [ entry ]) ->
          Alcotest.(check bool) "role" true
            (Xfd_util.Json.member "role" entry = Some (Xfd_util.Json.Str "write"))
        | _ -> Alcotest.fail "chain should have exactly one entry");
  ]

(* End-to-end: forensics through the whole engine. *)
let roles_of p = List.map (fun e -> e.Provenance.role) p.Provenance.entries

let e2e_tests =
  [
    Tu.case "bugs carry chains when forensics is on, none when off" (fun () ->
        let program () = Xfd_workloads.Array_update.program ~size:1 () in
        let plain = Tu.detect (program ()) in
        List.iter
          (fun b ->
            Alcotest.(check bool) "no chain by default" true (Report.provenance b = None))
          plain.Xfd.Engine.unique_bugs;
        let config = { Xfd.Config.default with forensics = true } in
        let rich = Tu.detect ~config (program ()) in
        Alcotest.(check bool) "found bugs" true (rich.Xfd.Engine.unique_bugs <> []);
        List.iter
          (fun b ->
            match (b, Report.provenance b) with
            | Report.Post_failure_error _, _ -> ()
            | _, None -> Alcotest.failf "bug without chain: %s" (bug_print b)
            | _, Some p ->
              let roles = roles_of p in
              Alcotest.(check bool) "has a write" true (List.mem Provenance.Write roles);
              Alcotest.(check bool) "has the read" true (List.mem Provenance.Read roles);
              if Report.is_semantic b then
                Alcotest.(check bool) "semantic chain names a commit write" true
                  (List.mem Provenance.Commit_last roles
                  || List.mem Provenance.Commit_prelast roles))
          rich.Xfd.Engine.unique_bugs;
        (* Provenance must not perturb deduplication. *)
        let keys o =
          List.map Report.dedup_key o.Xfd.Engine.unique_bugs |> List.sort compare
        in
        Alcotest.(check (list string)) "same dedup keys" (keys plain) (keys rich));
    Tu.case "uninit race chain points at the allocation" (fun () ->
        let config = { Xfd.Config.default with forensics = true } in
        let o =
          Tu.detect ~config
            (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ())
        in
        let uninit_chains =
          List.filter_map
            (function
              | Report.Race { uninit = true; provenance; _ } -> provenance
              | _ -> None)
            o.Xfd.Engine.unique_bugs
        in
        Alcotest.(check bool) "found an uninit race" true (uninit_chains <> []);
        List.iter
          (fun p ->
            Alcotest.(check string) "verdict" "race-uninit" p.Provenance.verdict;
            Alcotest.(check bool) "chain has the alloc" true
              (List.mem Provenance.Alloc (roles_of p)))
          uninit_chains);
    Tu.case "explained rendering embeds the chain under the bug line" (fun () ->
        let config = { Xfd.Config.default with forensics = true } in
        let o = Tu.detect ~config (Xfd_workloads.Array_update.program ~size:1 ()) in
        let b = List.hd o.Xfd.Engine.unique_bugs in
        let s = Format.asprintf "%a" Report.pp_bug_explained b in
        Alcotest.(check bool) "bug line" true (contains s "CROSS-FAILURE");
        Alcotest.(check bool) "why line" true (contains s "why:");
        Alcotest.(check bool) "timeline" true (contains s "timeline"));
  ]

let coverage_tests =
  [
    Tu.case "coverage deltas reflect one detection run" (fun () ->
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let c = o.Xfd.Engine.coverage in
        Alcotest.(check int) "fired failure points" o.Xfd.Engine.failure_points
          c.Coverage.failure_points_fired;
        Alcotest.(check bool) "traced events" true (c.Coverage.trace_events > 0);
        Alcotest.(check bool) "replayed events" true (c.Coverage.replayed_events > 0);
        Alcotest.(check bool) "wrote bytes" true (c.Coverage.bytes_written > 0);
        Alcotest.(check bool) "checked bytes" true (c.Coverage.bytes_checked > 0);
        let r = Coverage.checked_ratio c in
        Alcotest.(check bool) "ratio in range" true (r >= 0.0 && r <= 1.0);
        Alcotest.(check bool) "races counted" true (c.Coverage.races >= 1));
    Tu.case "coverage marks isolate consecutive runs" (fun () ->
        let o1 = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let o2 = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true ()) in
        (* The clean run's delta must not inherit the buggy run's bugs. *)
        Alcotest.(check int) "clean races" 0 o2.Xfd.Engine.coverage.Coverage.races;
        Alcotest.(check bool) "buggy races" true (o1.Xfd.Engine.coverage.Coverage.races > 0));
    Tu.case "coverage JSON and pp agree on the tallies" (fun () ->
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let c = o.Xfd.Engine.coverage in
        let j = Coverage.to_json c in
        (match Xfd_util.Json.member "bytes_checked" j with
        | Some (Xfd_util.Json.Int n) ->
          Alcotest.(check int) "bytes_checked" c.Coverage.bytes_checked n
        | _ -> Alcotest.fail "bytes_checked missing");
        let s = Format.asprintf "%a" Coverage.pp c in
        Alcotest.(check bool) "pp mentions failure points" true
          (contains s "failure points"));
  ]

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ("report.dedup", to_alcotest dedup_props);
    ("report.dedup.provenance", to_alcotest provenance_key_props @ forensics_toggle_tests);
    ("forensics.timeline", timeline_tests);
    ("forensics.history", history_tests);
    ("forensics.provenance", provenance_tests);
    ("forensics.e2e", e2e_tests);
    ("forensics.coverage", coverage_tests);
  ]
