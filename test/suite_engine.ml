(* Engine-level behaviour: failure-point placement and elision, the
   terminal failure point, crash modes, the ablation strategy, and outcome
   accounting. *)

module Ctx = Xfd_sim.Ctx
module Engine = Xfd.Engine
module Config = Xfd.Config

let l = Tu.loc __POS__
let base = Xfd_mem.Addr.pool_base

(* A tiny crash-consistent low-level program: an append-only log of slots
   guarded by a persisted element counter (the commit variable).  The
   post-failure stage reads the counter (benign) and only the slots it
   covers — each of which was persisted strictly before the counter. *)
let counter_program ?(n = 4) () =
  let count_addr = base and slot_addr i = base + (64 * (i + 1)) in
  {
    Engine.name = "counter";
    setup = (fun _ -> ());
    pre =
      (fun ctx ->
        Ctx.add_commit_var ctx ~loc:l count_addr 8;
        Ctx.roi_begin ctx ~loc:l;
        for i = 0 to n - 1 do
          Ctx.write_i64 ctx ~loc:l (slot_addr i) (Int64.of_int (100 + i));
          Ctx.persist_barrier ctx ~loc:l (slot_addr i) 8;
          Ctx.write_i64 ctx ~loc:l count_addr (Int64.of_int (i + 1));
          Ctx.persist_barrier ctx ~loc:l count_addr 8
        done;
        Ctx.roi_end ctx ~loc:l);
    post =
      (fun ctx ->
        Ctx.add_commit_var ctx ~loc:l count_addr 8;
        Ctx.roi_begin ctx ~loc:l;
        let valid = Int64.to_int (Ctx.read_i64 ctx ~loc:l count_addr) in
        for i = 0 to valid - 1 do
          ignore (Ctx.read_i64 ctx ~loc:l (slot_addr i))
        done;
        Ctx.roi_end ctx ~loc:l);
  }

let tests =
  [
    Tu.case "one failure point per ordering point plus terminal" (fun () ->
        let o = Tu.detect (counter_program ~n:4 ()) in
        (* 8 barriers -> 8 failure points before them, plus the terminal
           point for the program-completed state. *)
        Alcotest.(check int) "count" 9 o.Engine.failure_points;
        Tu.check_clean "correct program" o);
    Tu.case "terminal failure point can be disabled" (fun () ->
        let config = { Config.default with inject_terminal_fp = false } in
        let o = Tu.detect ~config (counter_program ~n:4 ()) in
        Alcotest.(check int) "count" 8 o.Engine.failure_points);
    Tu.case "empty ordering points are elided" (fun () ->
        let program =
          {
            (counter_program ~n:1 ()) with
            Engine.pre =
              (fun ctx ->
                Ctx.roi_begin ctx ~loc:l;
                Ctx.write_i64 ctx ~loc:l base 1L;
                Ctx.persist_barrier ctx ~loc:l base 8;
                (* Three fences with no PM update in between. *)
                Ctx.sfence ctx ~loc:l;
                Ctx.sfence ctx ~loc:l;
                Ctx.sfence ctx ~loc:l;
                Ctx.roi_end ctx ~loc:l);
          }
        in
        let o = Tu.detect program in
        (* Only the barrier's failure point: the empty fences add update_ops
           through the fence itself, so at most one more, never three. *)
        Alcotest.(check bool) "elision works" true (o.Engine.failure_points <= 3));
    Tu.case "max_failure_points caps injection" (fun () ->
        let config = { Config.default with max_failure_points = 2; inject_terminal_fp = false } in
        let o = Tu.detect ~config (counter_program ~n:10 ()) in
        Alcotest.(check int) "capped" 2 o.Engine.failure_points);
    Tu.case "every_update ablation injects strictly more failure points" (fun () ->
        let baseline = Tu.detect (counter_program ~n:6 ()) in
        let config = { Config.default with strategy = Ctx.Every_update } in
        let naive = Tu.detect ~config (counter_program ~n:6 ()) in
        Alcotest.(check bool) "more points" true
          (naive.Engine.failure_points > baseline.Engine.failure_points);
        (* And finds nothing extra on a correct program. *)
        Tu.check_clean "naive on correct" naive);
    Tu.case "ablation finds the same bug on a buggy program" (fun () ->
        let p = Xfd_workloads.Array_update.program ~size:1 () in
        let r1, s1, _, _ = Tu.tally_of p in
        let config = { Config.default with strategy = Ctx.Every_update } in
        let r2, s2, _, _ = Tu.tally_of ~config (Xfd_workloads.Array_update.program ~size:1 ()) in
        Alcotest.(check bool) "race found both ways" true (r1 >= 1 && r2 >= 1);
        Alcotest.(check bool) "semantic found both ways" true (s1 >= 1 && s2 >= 1));
    Tu.case "strict crash mode agrees on the figure 2 verdicts" (fun () ->
        let config = { Config.default with crash_mode = `Strict } in
        let races, semantics, _, _ =
          Tu.tally_of ~config (Xfd_workloads.Array_update.program ~size:1 ())
        in
        Alcotest.(check bool) "race" true (races >= 1);
        Alcotest.(check bool) "semantic" true (semantics >= 1));
    Tu.case "unique bugs deduplicate across failure points" (fun () ->
        let o = Tu.detect (Xfd_workloads.Linkedlist.program ~size:3 ()) in
        (* The same length race occurs at many failure points but is one
           programming error. *)
        let races = List.filter Xfd.Report.is_race o.Engine.unique_bugs in
        Alcotest.(check bool) "few unique races" true (List.length races <= 3);
        let reported_at =
          List.length
            (List.filter (fun r -> List.exists Xfd.Report.is_race r.Xfd.Report.bugs) o.Engine.reports)
        in
        Alcotest.(check bool) "reported at several points" true (reported_at > List.length races));
    Tu.case "outcome accounting is sane" (fun () ->
        let o = Tu.detect (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ()) in
        Alcotest.(check bool) "pre events" true (o.Engine.pre_events > 50);
        Alcotest.(check bool) "post events" true (o.Engine.post_events > o.Engine.pre_events / 10);
        Alcotest.(check bool) "reports per failure point" true
          (List.length o.Engine.reports = o.Engine.failure_points);
        let pre, post = Engine.wall_breakdown o in
        Alcotest.(check bool) "times nonnegative" true (pre >= 0.0 && post >= 0.0);
        Alcotest.(check bool) "total is the sum" true
          (abs_float (Engine.total_wall o -. (pre +. post)) < 1e-9));
    Tu.case "run_traced and run_original complete" (fun () ->
        let p = Xfd_workloads.Btree.program ~init_size:2 ~size:2 () in
        Alcotest.(check bool) "traced" true (Engine.run_traced p >= 0.0);
        Alcotest.(check bool) "original" true (Engine.run_original p >= 0.0));
    Tu.case "detection is deterministic" (fun () ->
        let run () =
          let o = Tu.detect (Xfd_workloads.Array_update.program ~size:2 ()) in
          ( o.Engine.failure_points,
            List.map Xfd.Report.dedup_key o.Engine.unique_bugs,
            o.Engine.pre_events )
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "identical outcomes" true (a = b));
    Tu.case "seeded faults do not corrupt the trace determinism" (fun () ->
        let config =
          { Config.default with faults = Xfd_sim.Faults.make ~skip_tx_add:[ 0 ] () }
        in
        let run () =
          let o = Tu.detect ~config (Xfd_workloads.Btree.program ~size:2 ()) in
          List.map Xfd.Report.dedup_key o.Engine.unique_bugs
        in
        Alcotest.(check bool) "same bugs twice" true (run () = run ()));
  ]

(* A post stage that dies with a harness-fatal exception: the engine must
   re-raise it — unchanged — whatever the domain-pool size. *)
let asserting_post_program () =
  {
    Engine.name = "asserting-post";
    setup = (fun _ -> ());
    pre =
      (fun ctx ->
        Ctx.roi_begin ctx ~loc:l;
        for i = 0 to 3 do
          Ctx.write_i64 ctx ~loc:l (base + (64 * i)) 1L;
          Ctx.persist_barrier ctx ~loc:l (base + (64 * i)) 8
        done;
        Ctx.roi_end ctx ~loc:l);
    post = (fun _ -> assert false);
  }

let config_tests =
  [
    Tu.case "validate rejects a non-positive failure-point cap" (fun () ->
        List.iter
          (fun cap ->
            match Config.validate { Config.default with max_failure_points = cap } with
            | () -> Alcotest.failf "cap %d accepted" cap
            | exception Invalid_argument msg ->
              Alcotest.(check bool)
                (Printf.sprintf "cap %d message names the field" cap)
                true
                (String.length msg > 0
                && String.sub msg 0 (String.length "Config.max_failure_points")
                   = "Config.max_failure_points"))
          [ 0; -1; min_int ]);
    Tu.case "validate rejects a non-positive pool size" (fun () ->
        match Config.validate { Config.default with post_jobs = 0 } with
        | () -> Alcotest.fail "post_jobs 0 accepted"
        | exception Invalid_argument _ -> ());
    Tu.case "detect refuses an invalid configuration up front" (fun () ->
        let config = { Config.default with max_failure_points = 0 } in
        match Tu.detect ~config (counter_program ~n:2 ()) with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    Tu.case "cap boundary: exact, one-less and default verdicts agree" (fun () ->
        (* The terminal point deliberately bypasses the cap (tested below),
           so boundary precision is asserted with it disabled. *)
        let base_cfg = { Config.default with inject_terminal_fp = false } in
        let keys config =
          let o = Tu.detect ~config (counter_program ~n:4 ()) in
          (o.Engine.failure_points, List.map Xfd.Report.dedup_key o.Engine.unique_bugs)
        in
        let fired, full_keys = keys base_cfg in
        Alcotest.(check bool) "uncapped by default" true
          (fired < base_cfg.Config.max_failure_points);
        (* A cap equal to the natural count changes nothing... *)
        let fired_eq, keys_eq = keys { base_cfg with max_failure_points = fired } in
        Alcotest.(check int) "exact cap fires the same points" fired fired_eq;
        Alcotest.(check (list string)) "exact cap same verdicts" full_keys keys_eq;
        (* ...a cap of one less elides exactly the last point... *)
        let fired_lt, _ = keys { base_cfg with max_failure_points = fired - 1 } in
        Alcotest.(check int) "one-less cap" (fired - 1) fired_lt;
        (* ...and cap 1 still runs one post stage on a clean program. *)
        let fired_one, keys_one = keys { base_cfg with max_failure_points = 1 } in
        Alcotest.(check int) "unit cap" 1 fired_one;
        Alcotest.(check (list string)) "unit cap stays clean" [] keys_one);
    Tu.case "terminal failure point bypasses the cap" (fun () ->
        let config = { Config.default with max_failure_points = 2 } in
        let o = Tu.detect ~config (counter_program ~n:10 ()) in
        (* Two capped ordering points plus the terminal one. *)
        Alcotest.(check int) "cap + terminal" 3 o.Engine.failure_points);
  ]

let worker_exception_tests =
  [
    Tu.case "worker exceptions surface at every pool size" (fun () ->
        List.iter
          (fun jobs ->
            let config = { Config.default with post_jobs = jobs } in
            match Tu.detect ~config (asserting_post_program ()) with
            | _ -> Alcotest.failf "post_jobs=%d swallowed the assert" jobs
            | exception Assert_failure _ -> ())
          [ 1; 2; 4 ]);
    Tu.case "non-fatal post exceptions stay bug reports at every pool size" (fun () ->
        let failing_post_program () =
          {
            (asserting_post_program ()) with
            Engine.name = "failing-post";
            post = (fun _ -> failwith "recovery invariant violated");
          }
        in
        let run jobs =
          let config = { Config.default with post_jobs = jobs } in
          let o = Tu.detect ~config (failing_post_program ()) in
          List.sort_uniq String.compare
            (List.map Xfd.Report.dedup_key o.Engine.unique_bugs)
        in
        let seq = run 1 in
        Alcotest.(check bool) "reported as post-error" true
          (List.exists (fun k -> String.length k >= 10 && String.sub k 0 10 = "post-error") seq);
        List.iter
          (fun jobs ->
            Alcotest.(check (list string))
              (Printf.sprintf "post_jobs=%d matches sequential" jobs)
              seq (run jobs))
          [ 2; 4 ]);
  ]

let suite =
  [
    ("engine", tests);
    ("engine.config", config_tests);
    ("engine.workers", worker_exception_tests);
  ]
