(* Tests for the differential workload fuzzer: program serialization, the
   generator profiles, engine-vs-oracle agreement, metamorphic properties,
   the shrinker, and the on-disk repro corpus (including the checked-in
   seed corpus, replayed against the current engine). *)

module Prog = Xfd_fuzz.Prog
module Gen = Xfd_fuzz.Gen
module Oracle = Xfd_fuzz.Oracle
module Shrink = Xfd_fuzz.Shrink
module Corpus = Xfd_fuzz.Corpus
module Fuzz = Xfd_fuzz.Fuzz
module Rng = Xfd_util.Rng
module Engine = Xfd.Engine
module Config = Xfd.Config

let gen profile seed = Gen.generate profile (Rng.create (Int64.of_int seed))

let engine_keys ?config p =
  Oracle.keys_of_outcome (Engine.detect ?config (Prog.to_program p))

let profile_arb =
  QCheck.make
    ~print:(fun (p, s) -> Printf.sprintf "%s/%d" (Gen.profile_to_string p) s)
    QCheck.Gen.(
      pair (oneofl [ Gen.Correct; Gen.Buggy; Gen.Wild ]) (int_bound 10_000))

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* A buggy program with a stable verdict to feed the shrinker: padding
   around one missing flush. *)
let missing_flush_padded () =
  {
    Prog.commit_vars = [];
    setup_slots = [ 2; 3 ];
    ops =
      [
        (1, Prog.Store { slot = 4; v = 11L; nt = false });
        (2, Prog.Flush { slot = 4; opt = false });
        (3, Prog.Fence);
        (4, Prog.Store { slot = 5; v = 22L; nt = false });
        (5, Prog.Fence);
        (* the bug: slot 5 never flushed, yet read post-failure *)
        (6, Prog.Store { slot = 6; v = 33L; nt = false });
        (7, Prog.Flush { slot = 6; opt = true });
        (8, Prog.Fence);
        (9, Prog.Read { slot = 4; n = 1 });
      ];
    recovers = [];
    post_reads = [ (1, 5, 1); (2, 4, 1) ];
  }

let serialization_props =
  [
    QCheck.Test.make ~count:200 ~name:"generated programs serialize round-trip"
      profile_arb
      (fun (profile, seed) ->
        let p = gen profile seed in
        match Prog.of_lines (Prog.to_lines p) with
        | Ok (p', []) -> Prog.equal p p'
        | Ok (_, _ :: _) -> false
        | Error _ -> false);
    QCheck.Test.make ~count:200 ~name:"generated programs pass validation"
      profile_arb
      (fun (profile, seed) -> Prog.check (gen profile seed) = Ok ());
  ]

let differential_tests =
  [
    Tu.case "engine agrees with the reference oracle (all profiles)" (fun () ->
        List.iter
          (fun profile ->
            for seed = 0 to 39 do
              let p = gen profile seed in
              let o = Engine.detect (Prog.to_program p) in
              let r = Oracle.run p in
              let name what =
                Printf.sprintf "%s/%d %s" (Gen.profile_to_string profile) seed what
              in
              Alcotest.(check (list string))
                (name "keys")
                r.Oracle.keys (Oracle.keys_of_outcome o);
              Alcotest.(check int)
                (name "failure points")
                r.Oracle.failure_points o.Engine.failure_points
            done)
          [ Gen.Correct; Gen.Buggy; Gen.Wild ]);
    Tu.case "correct profile yields zero findings" (fun () ->
        for seed = 0 to 49 do
          let p = gen Gen.Correct seed in
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d clean" seed)
            [] (engine_keys p)
        done);
    Tu.case "buggy profile always plants at least one bug phrase" (fun () ->
        let found = ref 0 in
        for seed = 0 to 29 do
          if engine_keys (gen Gen.Buggy seed) <> [] then incr found
        done;
        (* Planted bugs can occasionally be masked by later phrases; the
           overwhelming majority must still be caught. *)
        Alcotest.(check bool) "most buggy programs flagged" true (!found >= 25));
    Tu.case "domain pool verdicts equal sequential verdicts" (fun () ->
        let config = { Config.default with Config.post_jobs = 3 } in
        for seed = 0 to 14 do
          let p = gen Gen.Buggy seed in
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d" seed)
            (engine_keys p) (engine_keys ~config p)
        done);
    Tu.case "detect_at over all ordinals reconstructs the full verdict" (fun () ->
        for seed = 0 to 9 do
          let p = gen Gen.Buggy seed in
          let prog = Prog.to_program p in
          let full = Engine.detect prog in
          let union = ref [] in
          for k = 0 to full.Engine.failure_points - 1 do
            let o = Engine.detect_at ~failure_point:k prog in
            union := Oracle.keys_of_outcome o @ !union
          done;
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d" seed)
            (Oracle.keys_of_outcome full)
            (List.sort_uniq String.compare !union)
        done);
  ]

let loop_tests =
  [
    Tu.case "fuzz loop is clean on every profile" (fun () ->
        List.iter
          (fun profile ->
            let cfg = { Fuzz.default_cfg with Fuzz.budget = 25; profile } in
            let s = Fuzz.run ~out:null_fmt cfg in
            Alcotest.(check bool)
              (Gen.profile_to_string profile ^ " clean")
              true (Fuzz.clean s);
            Alcotest.(check int)
              (Gen.profile_to_string profile ^ " programs")
              25 s.Fuzz.programs)
          [ Gen.Correct; Gen.Buggy; Gen.Wild ]);
    Tu.case "same seed twice gives identical summaries" (fun () ->
        let cfg = { Fuzz.default_cfg with Fuzz.budget = 30; seed = 11 } in
        let a = Fuzz.run ~out:null_fmt cfg and b = Fuzz.run ~out:null_fmt cfg in
        Alcotest.(check bool) "equal" true (a = b));
    Tu.case "different seeds explore different programs" (fun () ->
        let run seed =
          (Fuzz.run ~out:null_fmt { Fuzz.default_cfg with Fuzz.budget = 30; seed })
            .Fuzz.unique_key_sets
        in
        (* Not a determinism property — just evidence the seed matters. *)
        Alcotest.(check bool) "key-set counts differ somewhere" true
          (List.sort_uniq compare [ run 1; run 2; run 3 ] <> [ run 1 ]
          || run 1 <> run 4));
  ]

let shrink_tests =
  [
    Tu.case "shrinker reduces a padded missing-flush program" (fun () ->
        let p = missing_flush_padded () in
        let keys = engine_keys p in
        Alcotest.(check bool) "padded program has findings" true (keys <> []);
        let keep q = engine_keys q = keys in
        let q, evals = Shrink.minimize ~keep p in
        Alcotest.(check bool) "spent evaluations" true (evals > 0);
        Alcotest.(check bool) "smaller" true (Prog.size q < Prog.size p);
        Alcotest.(check bool) "well within the repro bound" true (Prog.size q <= 20);
        Alcotest.(check (list string)) "verdict preserved" keys (engine_keys q);
        Alcotest.(check bool) "still valid" true (Prog.check q = Ok ()));
    Tu.case "shrunk generated repros stay small and faithful" (fun () ->
        for seed = 0 to 4 do
          let p = gen Gen.Buggy seed in
          let keys = engine_keys p in
          if keys <> [] then begin
            let keep q = engine_keys q = keys in
            let q, _ = Shrink.minimize ~keep p in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d size" seed)
              true
              (Prog.size q <= 20 && Prog.size q <= Prog.size p);
            Alcotest.(check (list string))
              (Printf.sprintf "seed %d verdict" seed)
              keys (engine_keys q)
          end
        done);
    Tu.case "minimize rejects a predicate the input fails" (fun () ->
        let p = missing_flush_padded () in
        match Shrink.minimize ~keep:(fun _ -> false) p with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    Tu.case "minimize respects its evaluation budget" (fun () ->
        let p = gen Gen.Buggy 3 in
        let evals = ref 0 in
        let keep q =
          incr evals;
          engine_keys q = engine_keys p
        in
        (* [keep p] is evaluated once up front before the budget applies. *)
        let _, reported = Shrink.minimize ~max_evals:10 ~keep p in
        Alcotest.(check bool) "bounded" true (reported <= 10 && !evals <= 12));
  ]

let with_temp_dir f =
  let dir = Filename.temp_file "xfd_fuzz" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let corpus_tests =
  [
    Tu.case "save / load / check round-trips" (fun () ->
        with_temp_dir (fun dir ->
            let p = missing_flush_padded () in
            let keys = engine_keys p in
            let path = Corpus.save ~dir ~keys p in
            (match Corpus.load path with
            | Ok (p', expects) ->
              Alcotest.(check bool) "program preserved" true (Prog.equal p p');
              Alcotest.(check (list string)) "expects preserved" keys
                (List.sort_uniq String.compare expects)
            | Error e -> Alcotest.failf "load failed: %s" e);
            (match Corpus.check path with
            | Ok () -> ()
            | Error e -> Alcotest.failf "check failed: %s" e);
            Alcotest.(check (list string)) "listed" [ path ] (Corpus.files ~dir);
            (* Saving the same program again reuses the same content hash. *)
            Alcotest.(check string) "idempotent name" path (Corpus.save ~dir ~keys p)));
    Tu.case "check flags a stale expectation" (fun () ->
        with_temp_dir (fun dir ->
            let p = missing_flush_padded () in
            let path = Corpus.save ~dir ~keys:[ "race:bogus:site:false" ] p in
            match Corpus.check path with
            | Ok () -> Alcotest.fail "expected a mismatch"
            | Error e ->
              Alcotest.(check bool) "mentions the file" true
                (String.length e >= String.length path
                && String.sub e 0 (String.length path) = path)));
    Tu.case "fuzz run harvests replayable shrunk repros" (fun () ->
        with_temp_dir (fun dir ->
            let cfg =
              { Fuzz.default_cfg with Fuzz.budget = 30; corpus_dir = Some dir }
            in
            let s = Fuzz.run ~out:null_fmt cfg in
            Alcotest.(check bool) "clean" true (Fuzz.clean s);
            Alcotest.(check bool) "harvested some" true (s.Fuzz.repros <> []);
            List.iter
              (fun path ->
                (match Corpus.load path with
                | Ok (p, _) ->
                  Alcotest.(check bool)
                    (Filename.basename path ^ " small")
                    true (Prog.size p <= 20)
                | Error e -> Alcotest.failf "load failed: %s" e);
                match Corpus.check path with
                | Ok () -> ()
                | Error e -> Alcotest.failf "replay failed: %s" e)
              s.Fuzz.repros;
            (* A second run over the saved corpus replays it clean. *)
            let s2 = Fuzz.run ~out:null_fmt cfg in
            Alcotest.(check int) "corpus checked" (List.length s.Fuzz.repros)
              s2.Fuzz.corpus_checked;
            Alcotest.(check int) "no corpus failures" 0 s2.Fuzz.corpus_failures));
    Tu.case "checked-in seed corpus replays to its recorded verdicts" (fun () ->
        let files = Corpus.files ~dir:"corpus" in
        Alcotest.(check bool) "seed corpus present" true (List.length files >= 5);
        List.iter
          (fun path ->
            match Corpus.check path with
            | Ok () -> ()
            | Error e -> Alcotest.failf "seed corpus regression: %s" e)
          files);
  ]

let suite =
  [
    ("fuzz.serialize", List.map QCheck_alcotest.to_alcotest serialization_props);
    ("fuzz.differential", differential_tests);
    ("fuzz.loop", loop_tests);
    ("fuzz.shrink", shrink_tests);
    ("fuzz.corpus", corpus_tests);
  ]
