let () =
  Alcotest.run "xfdetector"
    (Suite_mem.suite @ Suite_trace.suite @ Suite_sim.suite @ Suite_core.suite @ Suite_pmdk.suite @ Suite_workloads.suite @ Suite_detection.suite @ Suite_servers.suite @ Suite_baselines.suite @ Suite_engine.suite @ Suite_props.suite @ Suite_mechanisms.suite @ Suite_mt.suite @ Suite_extras.suite @ Suite_report.suite @ Suite_pools.suite @ Suite_json.suite @ Suite_obs.suite @ Suite_cow.suite @ Suite_edges.suite @ Suite_stress.suite @ Suite_fuzz.suite @ Suite_incremental.suite @ Suite_lint.suite @ Suite_flight.suite @ Suite_pulse.suite @ Suite_serve.suite)
