(* The detection service: quota buckets, the worker pool, the HTTP job
   protocol, and the acceptance guarantee that a job submitted over the
   wire produces a verdict fingerprint byte-identical to an in-process
   [Engine.detect] on the same input — under both engines.

   Every server in this file binds port 0 and polls /ready before the
   first request: no fixed ports, no sleeps. *)

module Json = Xfd_util.Json
module Engine = Xfd.Engine
module Config = Xfd.Config
module Httpc = Xfd_pulse.Httpc
module Quota = Xfd_serve.Quota
module Pool = Xfd_serve.Pool
module Job = Xfd_serve.Job
module Serve = Xfd_serve.Serve
module Workload_set = Xfd_experiments.Workload_set
module Corpus = Xfd_fuzz.Corpus
module Prog = Xfd_fuzz.Prog

let host = "127.0.0.1"

(* ---- quota: deterministic token-bucket arithmetic ---- *)

let quota_tests =
  [
    Tu.case "bucket refills at rate, caps at burst, reports retry-after" (fun () ->
        let q = Quota.create ~rate:1.0 ~burst:2 in
        Alcotest.(check bool) "enabled" true (Quota.enabled q);
        let take now = Quota.try_take q ~client:"c" ~now in
        Alcotest.(check bool) "burst 1" true (take 0.0 = `Ok);
        Alcotest.(check bool) "burst 2" true (take 0.0 = `Ok);
        (match take 0.0 with
        | `Retry_after s -> Alcotest.(check (float 1e-9)) "empty bucket: 1 token away" 1.0 s
        | `Ok -> Alcotest.fail "third take should be rejected");
        (match take 0.5 with
        | `Retry_after s -> Alcotest.(check (float 1e-9)) "half refilled" 0.5 s
        | `Ok -> Alcotest.fail "still rejected at t=0.5");
        Alcotest.(check bool) "full token at t=1.5" true (take 1.5 = `Ok);
        (* refill caps at burst: a long gap does not bank extra tokens *)
        Alcotest.(check bool) "after gap 1" true (take 100.0 = `Ok);
        Alcotest.(check bool) "after gap 2" true (take 100.0 = `Ok);
        Alcotest.(check bool) "after gap 3 rejected" true
          (match take 100.0 with `Retry_after _ -> true | `Ok -> false));
    Tu.case "clients are independent; a backwards clock mints nothing" (fun () ->
        let q = Quota.create ~rate:1.0 ~burst:1 in
        Alcotest.(check bool) "a ok" true (Quota.try_take q ~client:"a" ~now:10.0 = `Ok);
        Alcotest.(check bool) "b ok" true (Quota.try_take q ~client:"b" ~now:10.0 = `Ok);
        Alcotest.(check int) "two clients tracked" 2 (Quota.clients q);
        (* clock jumps back: elapsed clamps to 0, no refill *)
        Alcotest.(check bool) "backwards clock rejected" true
          (match Quota.try_take q ~client:"a" ~now:5.0 with
          | `Retry_after _ -> true
          | `Ok -> false));
    Tu.case "non-positive rate disables the quota" (fun () ->
        let q = Quota.create ~rate:0.0 ~burst:1 in
        Alcotest.(check bool) "disabled" false (Quota.enabled q);
        for i = 0 to 99 do
          Alcotest.(check bool)
            (Printf.sprintf "take %d ok" i)
            true
            (Quota.try_take q ~client:"c" ~now:0.0 = `Ok)
        done);
  ]

(* ---- pool: gated runners make queue states deterministic ---- *)

(* A controllable runner: items wait on a gate until the test opens it,
   and every execution is counted per item. *)
let gated_pool ~workers ~queue_cap ~n_items =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let open_gate = ref false in
  let runs = Array.make n_items 0 in
  let runner i =
    Mutex.protect mu (fun () ->
        while not !open_gate do
          Condition.wait cond mu
        done;
        runs.(i) <- runs.(i) + 1)
  in
  let release () =
    Mutex.protect mu (fun () ->
        open_gate := true;
        Condition.broadcast cond)
  in
  (Pool.create ~workers ~queue_cap runner, release, runs)

let wait_for ?(timeout = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out: %s" what
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let pool_tests =
  [
    Tu.case "bounded queue: accepted until full, drain completes all" (fun () ->
        let pool, release, runs = gated_pool ~workers:1 ~queue_cap:2 ~n_items:4 in
        Alcotest.(check bool) "j0 accepted" true (Pool.submit pool 0 = `Accepted);
        (* wait until the worker holds j0, so the queue is empty again *)
        wait_for "worker picked j0" (fun () ->
            let _, running, _ = Pool.stats pool in
            running = 1);
        Alcotest.(check bool) "j1 accepted" true (Pool.submit pool 1 = `Accepted);
        Alcotest.(check bool) "j2 accepted" true (Pool.submit pool 2 = `Accepted);
        Alcotest.(check bool) "queue full" true (Pool.submit pool 3 = `Queue_full);
        release ();
        ignore (Pool.stop ~drain:true pool);
        let _, _, completed = Pool.stats pool in
        Alcotest.(check int) "all accepted items completed" 3 completed;
        Alcotest.(check (list int)) "each ran exactly once, rejected never" [ 1; 1; 1; 0 ]
          (Array.to_list runs);
        Alcotest.(check bool) "submit after stop is draining" true
          (Pool.submit pool 3 = `Draining);
        Alcotest.(check (list int)) "second stop is a no-op" []
          (Pool.stop pool));
    Tu.case "stop without drain discards the unstarted queue" (fun () ->
        let pool, release, runs = gated_pool ~workers:1 ~queue_cap:4 ~n_items:3 in
        Alcotest.(check bool) "j0 accepted" true (Pool.submit pool 0 = `Accepted);
        wait_for "worker picked j0" (fun () ->
            let _, running, _ = Pool.stats pool in
            running = 1);
        Alcotest.(check bool) "j1 accepted" true (Pool.submit pool 1 = `Accepted);
        Alcotest.(check bool) "j2 accepted" true (Pool.submit pool 2 = `Accepted);
        (* stop joins the worker, which is gated — open the gate from a
           helper thread once the discard has happened *)
        let opener = Thread.create (fun () -> release ()) () in
        let discarded = Pool.stop ~drain:false pool in
        Thread.join opener;
        Alcotest.(check (list int)) "queued items returned" [ 1; 2 ]
          (List.sort compare discarded);
        Alcotest.(check (list int)) "in-flight finished, discards never ran" [ 1; 0; 0 ]
          (Array.to_list runs));
    Tu.case "parallel submitters: every accepted item runs exactly once" (fun () ->
        let n = 160 in
        let mu = Mutex.create () in
        let runs = Array.make n 0 in
        let pool =
          Pool.create ~workers:4 ~queue_cap:n (fun i ->
              Mutex.protect mu (fun () -> runs.(i) <- runs.(i) + 1))
        in
        let accepted = Atomic.make 0 and rejected = Atomic.make 0 in
        let submitter t () =
          for k = 0 to (n / 8) - 1 do
            match Pool.submit pool ((t * (n / 8)) + k) with
            | `Accepted -> Atomic.incr accepted
            | `Queue_full | `Draining -> Atomic.incr rejected
          done
        in
        let threads = List.init 8 (fun t -> Thread.create (submitter t) ()) in
        List.iter Thread.join threads;
        ignore (Pool.stop ~drain:true pool);
        Alcotest.(check int) "accounting: accepted + rejected = submitted" n
          (Atomic.get accepted + Atomic.get rejected);
        let _, _, completed = Pool.stats pool in
        Alcotest.(check int) "completed = accepted" (Atomic.get accepted) completed;
        Array.iteri
          (fun i r ->
            if r > 1 then Alcotest.failf "item %d ran %d times" i r)
          runs);
    Tu.case "a raising runner does not kill its worker" (fun () ->
        let ran = Atomic.make 0 in
        let pool =
          Pool.create ~workers:1 ~queue_cap:8 (fun i ->
              Atomic.incr ran;
              if i = 0 then failwith "bad job")
        in
        Alcotest.(check bool) "bad job accepted" true (Pool.submit pool 0 = `Accepted);
        Alcotest.(check bool) "good job accepted" true (Pool.submit pool 1 = `Accepted);
        ignore (Pool.stop ~drain:true pool);
        Alcotest.(check int) "both ran" 2 (Atomic.get ran));
  ]

(* ---- serving helpers ---- *)

let with_serve ?(config = Serve.default_config) f =
  let t = Serve.start config in
  Fun.protect
    ~finally:(fun () -> Serve.stop t)
    (fun () ->
      let port = Serve.port t in
      (* the de-flake protocol: ephemeral port + poll /ready, no sleeps *)
      wait_for "server ready" (fun () ->
          match Httpc.get ~host ~port "/ready" with Ok (200, _) -> true | _ -> false);
      f t port)

let parse_json body =
  match Json.of_string body with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad JSON: %s (in %S)" e body

let jstr key j =
  match Json.member key j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S in %s" key (Json.to_string j)

let post_json ?(headers = []) ~port body =
  match Httpc.post ~headers ~body ~host ~port "/v1/jobs" with
  | Ok (status, hdrs, body) -> (status, hdrs, body)
  | Error e -> Alcotest.failf "POST /v1/jobs failed: %s" e

let get_ok ~port path =
  match Httpc.get ~host ~port path with
  | Ok (status, body) -> (status, body)
  | Error e -> Alcotest.failf "GET %s failed: %s" path e

let submit_ok ?headers ~port spec_json =
  let status, _, body = post_json ?headers ~port (Json.to_string spec_json) in
  Alcotest.(check int) "submission accepted (202)" 202 status;
  let j = parse_json body in
  Alcotest.(check string) "accepted envelope" "job.accepted" (jstr "type" j);
  jstr "id" j

let await_job ~port id =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec poll () =
    let status, body = get_ok ~port ("/v1/jobs/" ^ id) in
    Alcotest.(check int) (id ^ " status 200") 200 status;
    let j = parse_json body in
    match jstr "state" j with
    | "done" | "failed" -> j
    | _ when Unix.gettimeofday () > deadline -> Alcotest.failf "job %s never finished" id
    | _ ->
      Unix.sleepf 0.01;
      poll ()
  in
  poll ()

let result_of j =
  match Json.member "result" j with
  | Some r -> r
  | None -> Alcotest.failf "no result in %s" (Json.to_string j)

let workload_spec ?patch ?(engine = "incremental") ~workload ~init ~test () =
  Json.Obj
    ([
       ("kind", Json.Str "workload");
       ("workload", Json.Str workload);
       ("init", Json.Int init);
       ("test", Json.Int test);
       ("engine", Json.Str engine);
     ]
    @ match patch with Some p -> [ ("patch", Json.Str p) ] | None -> [])

(* ---- protocol goldens ---- *)

let protocol_tests =
  [
    Tu.case "route table: index, listing, 404s, 405+Allow, health" (fun () ->
        with_serve (fun _t port ->
            let status, body = get_ok ~port "/" in
            Alcotest.(check int) "index 200" 200 status;
            Alcotest.(check bool) "index names the protocol" true
              (String.length body > 0 && String.trim body <> "");
            let status, body = get_ok ~port "/v1/jobs" in
            Alcotest.(check int) "empty listing 200" 200 status;
            let j = parse_json body in
            Alcotest.(check string) "listing envelope" "job.list" (jstr "type" j);
            (match Json.member "jobs" j with
            | Some (Json.Arr []) -> ()
            | _ -> Alcotest.fail "expected an empty jobs array");
            let status, body = get_ok ~port "/v1/jobs/j999" in
            Alcotest.(check int) "unknown job 404" 404 status;
            Alcotest.(check string) "404 is a JSON error" "error"
              (jstr "type" (parse_json body));
            let status, _ = get_ok ~port "/v1/jobs/j999/report" in
            Alcotest.(check int) "unknown job report 404" 404 status;
            let status, _ = get_ok ~port "/nope" in
            Alcotest.(check int) "unknown route 404" 404 status;
            (* POST where only GET lives: 405 with the route's Allow set *)
            (match
               Httpc.request ~meth:"POST" ~body:"{}" ~headers:[] ~host ~port "/v1/jobs/j1"
             with
            | Ok (status, hdrs, _) ->
              Alcotest.(check int) "POST on a GET route is 405" 405 status;
              Alcotest.(check (option string))
                "Allow header names the route's methods" (Some "GET, HEAD")
                (List.assoc_opt "allow" hdrs)
            | Error e -> Alcotest.failf "POST failed: %s" e);
            (match Httpc.request ~meth:"PUT" ~body:"x" ~headers:[] ~host ~port "/v1/jobs" with
            | Ok (status, hdrs, _) ->
              Alcotest.(check int) "PUT is 405 (server allowlist)" 405 status;
              Alcotest.(check (option string))
                "Allow covers the whole service" (Some "GET, HEAD, POST")
                (List.assoc_opt "allow" hdrs)
            | Error e -> Alcotest.failf "PUT failed: %s" e);
            let status, body = get_ok ~port "/health" in
            Alcotest.(check int) "health 200" 200 status;
            let h = parse_json body in
            Alcotest.(check string) "health envelope" "serve.health" (jstr "type" h);
            Alcotest.(check string) "health state" "serving" (jstr "state" h);
            let status, body = get_ok ~port "/metrics" in
            Alcotest.(check int) "metrics delegated to pulse" 200 status;
            Alcotest.(check bool) "openmetrics terminator" true
              (let t = String.trim body in
               String.length t >= 5 && String.sub t (String.length t - 5) 5 = "# EOF")))
    ;
    Tu.case "submissions are validated before a job is accepted" (fun () ->
        with_serve (fun _t port ->
            let reject ?(expect = 400) name body =
              let status, _, resp = post_json ~port body in
              Alcotest.(check int) (name ^ " rejected") expect status;
              Alcotest.(check string)
                (name ^ " is a JSON error")
                "error"
                (jstr "type" (parse_json resp))
            in
            reject "bad JSON" "{not json";
            reject "unknown workload"
              (Json.to_string (workload_spec ~workload:"nope" ~init:0 ~test:1 ()));
            reject "unknown kind" {|{"kind":"weird"}|};
            reject "bad engine" {|{"workload":"btree","engine":"quantum"}|};
            reject "out-of-range post_jobs" {|{"workload":"btree","post_jobs":99}|};
            reject "malformed patch"
              (Json.to_string
                 (workload_spec ~patch:"warp-core=0" ~workload:"btree" ~init:0 ~test:1 ()));
            reject "workload job without workload" {|{"kind":"workload"}|};
            reject "xfdprog without program" {|{"kind":"xfdprog"}|};
            reject "invalid xfdprog text" {|{"kind":"xfdprog","program":"not a program"}|};
            (* nothing above should have registered a job *)
            let _, body = get_ok ~port "/v1/jobs" in
            match Json.member "jobs" (parse_json body) with
            | Some (Json.Arr []) -> ()
            | _ -> Alcotest.fail "rejected submissions must not create jobs"));
    Tu.case "oversized submissions answer 413 under the configured cap" (fun () ->
        let config = { Serve.default_config with max_body_bytes = 256 } in
        with_serve ~config (fun _t port ->
            let status, _, _ = post_json ~port (String.make 1000 'x') in
            Alcotest.(check int) "over the cap" 413 status;
            let status, _, _ =
              post_json ~port
                (Json.to_string (workload_spec ~workload:"btree" ~init:0 ~test:1 ()))
            in
            Alcotest.(check int) "small body still accepted" 202 status));
    Tu.case "corpus routes: list, fetch, validation, 404s" (fun () ->
        let config = { Serve.default_config with corpus_dir = Some "corpus" } in
        with_serve ~config (fun _t port ->
            let status, body = get_ok ~port "/v1/corpus" in
            Alcotest.(check int) "corpus list 200" 200 status;
            let j = parse_json body in
            let files =
              match Json.member "files" j with
              | Some (Json.Arr l) ->
                List.map (function Json.Str s -> s | _ -> Alcotest.fail "bad file") l
              | _ -> Alcotest.fail "no files array"
            in
            Alcotest.(check bool) "seed corpus listed" true (List.length files >= 5);
            let name = List.hd files in
            let status, text = get_ok ~port ("/v1/corpus/" ^ name) in
            Alcotest.(check int) "corpus fetch 200" 200 status;
            (match Prog.of_lines (String.split_on_char '\n' text) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "served corpus file does not parse: %s" e);
            let status, _ = get_ok ~port "/v1/corpus/absent.xfdprog" in
            Alcotest.(check int) "missing file 404" 404 status;
            let status, _ = get_ok ~port "/v1/corpus/.." in
            Alcotest.(check int) "dot-dot rejected 400" 400 status;
            let status, _ = get_ok ~port "/v1/corpus/..%2fdune" in
            Alcotest.(check bool) "encoded traversal never serves a file" true
              (status = 400 || status = 404);
            let status, _ = get_ok ~port "/v1/corpus/not-a-prog.txt" in
            Alcotest.(check int) "non-xfdprog name 400" 400 status));
    Tu.case "no corpus configured: corpus routes are 404" (fun () ->
        with_serve (fun _t port ->
            let status, _ = get_ok ~port "/v1/corpus" in
            Alcotest.(check int) "list 404" 404 status;
            let status, _ = get_ok ~port "/v1/corpus/x.xfdprog" in
            Alcotest.(check int) "fetch 404" 404 status));
  ]

(* ---- malformed wire input: the server survives anything ---- *)

let malformed_tests =
  [
    Tu.case "adversarial raw requests never take the service down" (fun () ->
        with_serve (fun _t port ->
            let raw = Suite_pulse.raw_request ~port in
            ignore (raw "GARBAGE\r\n\r\n");
            ignore (raw "GET\r\n\r\n");
            ignore (raw "GET /v1/jobs HTTP/1.1\r\nno-colon-here\r\n\r\n");
            ignore
              (raw
                 (Printf.sprintf "GET / HTTP/1.1\r\nX-Pad: %s\r\n\r\n"
                    (String.make 10000 'p')));
            ignore
              (Suite_pulse.raw_request ~shutdown:true ~port
                 "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\n{\"wor");
            ignore (raw "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{{{{");
            (* after all of that, the service still answers cleanly *)
            let status, body = get_ok ~port "/health" in
            Alcotest.(check int) "health after abuse" 200 status;
            Alcotest.(check string) "still serving" "serving"
              (jstr "state" (parse_json body))));
  ]

(* ---- e2e: wire verdicts are byte-identical to in-process verdicts ---- *)

let in_process_fingerprint ~engine ~patch ~workload ~init ~test =
  let entry = Workload_set.find workload in
  let faults =
    match patch with
    | None -> Xfd_sim.Faults.none
    | Some p -> (
      match Job.faults_of_spec p with
      | Ok f -> f
      | Error e -> Alcotest.failf "bad patch in test: %s" e)
  in
  let config = { Config.default with Config.faults; engine } in
  Job.fingerprint (Engine.detect ~config (entry.Workload_set.make ~init ~test))

let e2e_tests =
  [
    Tu.case "workload jobs: service fingerprint = in-process, both engines" (fun () ->
        with_serve (fun _t port ->
            let wire engine =
              let id =
                submit_ok ~port
                  (workload_spec ~patch:"skip-tx-add=0" ~engine ~workload:"btree" ~init:1
                     ~test:2 ())
              in
              let j = await_job ~port id in
              Alcotest.(check string) (engine ^ " job done") "done" (jstr "state" j);
              let r = result_of j in
              let bugs =
                match Json.member "unique_bugs" r with
                | Some (Json.Arr l) -> List.length l
                | _ -> 0
              in
              Alcotest.(check bool) (engine ^ " found the seeded bug") true (bugs > 0);
              jstr "fingerprint" r
            in
            let incr_wire = wire "incremental" in
            let fresh_wire = wire "fresh" in
            let fp engine =
              in_process_fingerprint ~engine ~patch:(Some "skip-tx-add=0") ~workload:"btree"
                ~init:1 ~test:2
            in
            Alcotest.(check string) "incremental: wire = in-process" (fp `Incremental)
              incr_wire;
            Alcotest.(check string) "fresh: wire = in-process" (fp `Fresh) fresh_wire;
            Alcotest.(check string) "incremental = fresh (oracle equivalence)" incr_wire
              fresh_wire));
    Tu.case "clean workload over the wire agrees with in-process too" (fun () ->
        with_serve (fun _t port ->
            let id =
              submit_ok ~port (workload_spec ~workload:"hashmap-atomic" ~init:1 ~test:1 ())
            in
            let j = await_job ~port id in
            Alcotest.(check string) "done" "done" (jstr "state" j);
            Alcotest.(check string) "fingerprints agree"
              (in_process_fingerprint ~engine:`Incremental ~patch:None
                 ~workload:"hashmap-atomic" ~init:1 ~test:1)
              (jstr "fingerprint" (result_of j))));
    Tu.case "corpus repro over the wire: verdicts match the expect lines" (fun () ->
        with_serve (fun _t port ->
            let file =
              match Corpus.files ~dir:"corpus" with
              | f :: _ -> f
              | [] -> Alcotest.fail "seed corpus missing"
            in
            let ic = open_in_bin file in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let id =
              submit_ok ~port
                (Json.Obj
                   [ ("kind", Json.Str "xfdprog"); ("program", Json.Str text) ])
            in
            let j = await_job ~port id in
            Alcotest.(check string) "done" "done" (jstr "state" j);
            let r = result_of j in
            (match Json.member "expect_match" r with
            | Some (Json.Bool true) -> ()
            | other ->
              Alcotest.failf "expect lines did not match: %s"
                (match other with Some o -> Json.to_string o | None -> "absent"));
            (* and the fingerprint equals a direct in-process replay *)
            let prog, _expects =
              match Prog.of_lines (String.split_on_char '\n' text) with
              | Ok p -> p
              | Error e -> Alcotest.failf "corpus file does not parse: %s" e
            in
            let direct = Job.fingerprint (Engine.detect (Prog.to_program prog)) in
            Alcotest.(check string) "wire = in-process" direct
              (jstr "fingerprint" r);
            (* the forensics report is served once the job is done *)
            let status, body = get_ok ~port ("/v1/jobs/" ^ id ^ "/report") in
            Alcotest.(check int) "report 200" 200 status;
            let rep = parse_json body in
            Alcotest.(check string) "report envelope" "xfd_report" (jstr "type" rep)));
    Tu.case "a report requested before completion answers 409" (fun () ->
        (* one worker, occupied by a heavier job: the second job is still
           queued when we ask for its report *)
        let config = { Serve.default_config with workers = 1; queue_cap = 8 } in
        with_serve ~config (fun _t port ->
            let slow = submit_ok ~port (workload_spec ~workload:"btree" ~init:2 ~test:4 ()) in
            let queued =
              submit_ok ~port (workload_spec ~workload:"btree" ~init:0 ~test:1 ())
            in
            let status, body = get_ok ~port ("/v1/jobs/" ^ queued ^ "/report") in
            Alcotest.(check int) "report before completion is 409" 409 status;
            Alcotest.(check string) "409 is a JSON error" "error"
              (jstr "type" (parse_json body));
            List.iter
              (fun id ->
                Alcotest.(check string) (id ^ " done") "done"
                  (jstr "state" (await_job ~port id)))
              [ slow; queued ]));
  ]

(* ---- backpressure: queue-full and quota 429s over the wire ---- *)

let backpressure_tests =
  [
    Tu.case "over-quota submissions answer 429 with Retry-After" (fun () ->
        let config =
          { Serve.default_config with quota_rate = 0.0001; quota_burst = 2 }
        in
        with_serve ~config (fun _t port ->
            let spec =
              Json.to_string (workload_spec ~workload:"btree" ~init:0 ~test:1 ())
            in
            let headers = [ ("x-client", "greedy") ] in
            let s1, _, _ = post_json ~headers ~port spec in
            let s2, _, _ = post_json ~headers ~port spec in
            Alcotest.(check (list int)) "burst accepted" [ 202; 202 ] [ s1; s2 ];
            let s3, hdrs, body = post_json ~headers ~port spec in
            Alcotest.(check int) "third is over quota" 429 s3;
            (match List.assoc_opt "retry-after" hdrs with
            | Some s ->
              Alcotest.(check bool)
                "Retry-After is a positive integer" true
                (match int_of_string_opt s with Some n -> n >= 1 | None -> false)
            | None -> Alcotest.fail "429 without Retry-After");
            Alcotest.(check string) "JSON error body" "error"
              (jstr "type" (parse_json body));
            (* an unthrottled client is unaffected *)
            let s, _, _ = post_json ~headers:[ ("x-client", "patient") ] ~port spec in
            Alcotest.(check int) "other client accepted" 202 s));
    Tu.case "parallel submitters: accounting holds, nothing lost or doubled" (fun () ->
        let config = { Serve.default_config with workers = 2; queue_cap = 4 } in
        with_serve ~config (fun _t port ->
            let spec =
              Json.to_string (workload_spec ~workload:"btree" ~init:0 ~test:1 ())
            in
            let n_threads = 6 and per_thread = 3 in
            let mu = Mutex.create () in
            let accepted = ref [] and rejected = ref 0 in
            let submitter _i () =
              for _ = 1 to per_thread do
                match Httpc.post ~headers:[] ~body:spec ~host ~port "/v1/jobs" with
                | Ok (202, _, body) ->
                  let id = jstr "id" (parse_json body) in
                  Mutex.protect mu (fun () -> accepted := id :: !accepted)
                | Ok (429, _, _) -> Mutex.protect mu (fun () -> incr rejected)
                | Ok (s, _, b) -> Alcotest.failf "unexpected status %d: %s" s b
                | Error e -> Alcotest.failf "submit failed: %s" e
              done
            in
            let threads = List.init n_threads (fun i -> Thread.create (submitter i) ()) in
            List.iter Thread.join threads;
            let accepted = !accepted in
            Alcotest.(check int) "every submission accounted for"
              (n_threads * per_thread)
              (List.length accepted + !rejected);
            Alcotest.(check int) "accepted ids are unique"
              (List.length accepted)
              (List.length (List.sort_uniq String.compare accepted));
            (* every accepted job reaches done exactly once, with a verdict *)
            List.iter
              (fun id ->
                let j = await_job ~port id in
                Alcotest.(check string) (id ^ " done") "done" (jstr "state" j);
                ignore (jstr "fingerprint" (result_of j)))
              accepted;
            (* all accepted fingerprints agree: same input, same verdict *)
            let fps =
              List.map
                (fun id -> jstr "fingerprint" (result_of (await_job ~port id)))
                accepted
            in
            Alcotest.(check int) "one distinct fingerprint" 1
              (List.length (List.sort_uniq String.compare fps))));
    Tu.case "a full queue answers 429 and keeps earlier jobs intact" (fun () ->
        let config = { Serve.default_config with workers = 1; queue_cap = 1 } in
        with_serve ~config (fun _t port ->
            (* a heavier job occupies the worker long enough for the queue
               to observably fill *)
            let slow =
              Json.to_string (workload_spec ~workload:"btree" ~init:2 ~test:4 ())
            in
            let quick =
              Json.to_string (workload_spec ~workload:"btree" ~init:0 ~test:1 ())
            in
            let ids = ref [] in
            let rejected = ref 0 in
            let submit body =
              match Httpc.post ~headers:[] ~body ~host ~port "/v1/jobs" with
              | Ok (202, _, resp) -> ids := jstr "id" (parse_json resp) :: !ids
              | Ok (429, hdrs, _) ->
                incr rejected;
                Alcotest.(check bool) "queue-full 429 has Retry-After" true
                  (List.assoc_opt "retry-after" hdrs <> None)
              | Ok (s, _, b) -> Alcotest.failf "unexpected status %d: %s" s b
              | Error e -> Alcotest.failf "submit failed: %s" e
            in
            submit slow;
            for _ = 1 to 8 do
              submit quick
            done;
            Alcotest.(check bool) "at least one queue-full rejection" true (!rejected > 0);
            Alcotest.(check bool) "at least the first job accepted" true (!ids <> []);
            List.iter
              (fun id ->
                Alcotest.(check string) (id ^ " done") "done"
                  (jstr "state" (await_job ~port id)))
              !ids));
  ]

(* ---- drain: graceful shutdown completes jobs and releases PM state ---- *)

let drain_tests =
  [
    Tu.case "stop drains in-flight jobs and releases every PM byte" (fun () ->
        let image0 = Xfd_mem.Image.live_bytes () in
        let shadow0 = Xfd_mem.Shadow_pages.live_bytes () in
        let completed0 =
          Xfd_obs.Obs.Counter.value (Xfd_obs.Obs.Counter.make "serve.jobs.completed")
        in
        let config = { Serve.default_config with workers = 2; queue_cap = 16 } in
        let t = Serve.start config in
        let port = Serve.port t in
        wait_for "server ready" (fun () ->
            match Httpc.get ~host ~port "/ready" with Ok (200, _) -> true | _ -> false);
        let spec = Json.to_string (workload_spec ~workload:"btree" ~init:0 ~test:2 ()) in
        let ids =
          List.init 5 (fun _ ->
              match Httpc.post ~headers:[] ~body:spec ~host ~port "/v1/jobs" with
              | Ok (202, _, body) -> jstr "id" (parse_json body)
              | Ok (s, _, b) -> Alcotest.failf "submit: %d %s" s b
              | Error e -> Alcotest.failf "submit: %s" e)
        in
        (* stop with the default drain: blocks until every accepted job
           has completed, then the listener goes away *)
        Serve.stop t;
        Serve.stop t;
        (* idempotent *)
        (match Httpc.get ~host ~port "/ready" with
        | Error _ -> ()
        | Ok (s, _) -> Alcotest.failf "stopped service still answering (%d)" s);
        let completed1 =
          Xfd_obs.Obs.Counter.value (Xfd_obs.Obs.Counter.make "serve.jobs.completed")
        in
        Alcotest.(check bool)
          (Printf.sprintf "all %d accepted jobs completed" (List.length ids))
          true
          (completed1 - completed0 >= List.length ids);
        Alcotest.(check int) "pm chunk bytes released" image0 (Xfd_mem.Image.live_bytes ());
        Alcotest.(check int) "shadow page bytes released" shadow0
          (Xfd_mem.Shadow_pages.live_bytes ()));
    Tu.case "draining service refuses new submissions with 503" (fun () ->
        (* exercise the /ready flip through the public API: a stopped
           serve reports draining to the pool, and a fresh serve reports
           200 — the mid-drain 503 window is covered by the pool tests *)
        let config = { Serve.default_config with workers = 1; queue_cap = 4 } in
        with_serve ~config (fun _t port ->
            let status, body = get_ok ~port "/ready" in
            Alcotest.(check int) "ready while serving" 200 status;
            Alcotest.(check string) "ready body" "serving\n" body));
  ]

let suite =
  [
    ("serve.quota", quota_tests);
    ("serve.pool", pool_tests);
    ("serve.protocol", protocol_tests);
    ("serve.malformed", malformed_tests);
    ("serve.e2e", e2e_tests);
    ("serve.backpressure", backpressure_tests);
    ("serve.drain", drain_tests);
  ]
