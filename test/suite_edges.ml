(* Edge-case coverage: non-temporal stores, the CLFLUSH family, deferred
   (persist-time) commit windows, and detector corner conditions. *)

module Ctx = Xfd_sim.Ctx
module Detector = Xfd.Detector
module Registry = Xfd.Commit_registry
module Report = Xfd.Report
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace

let l = Xfd_util.Loc.make ~file:"edge.ml" ~line:1
let l2 = Xfd_util.Loc.make ~file:"edge.ml" ~line:2
let base = Xfd_mem.Addr.pool_base

let mk_trace kinds =
  let t = Trace.create () in
  List.iter (fun (kind, loc) -> ignore (Trace.append t ~kind ~loc)) kinds;
  t

let post_read ?(loc = l2) addr size =
  mk_trace [ (Event.Roi_begin, loc); (Event.Read { addr; size }, loc) ]

let run_pre_post pre post_trace =
  let d = Detector.create () in
  Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
  let fork = Detector.fork_for_post d in
  Detector.replay fork post_trace ~from:0 ~upto:(Trace.length post_trace);
  Detector.bugs fork

let nt_tests =
  [
    Tu.case "nt store races until fenced" (fun () ->
        let pre =
          mk_trace [ (Event.Roi_begin, l); (Event.Nt_write { addr = base; size = 8 }, l) ]
        in
        Alcotest.(check int) "race" 1 (List.length (run_pre_post pre (post_read base 8))));
    Tu.case "nt store + fence is clean without any flush" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Nt_write { addr = base; size = 8 }, l);
              (Event.Sfence, l);
            ]
        in
        Alcotest.(check int) "clean" 0 (List.length (run_pre_post pre (post_read base 8))));
    Tu.case "nt store end-to-end through the context" (fun () ->
        let dev, _, ctx = Tu.make_ctx () in
        Ctx.write_nt ctx ~loc:l base (Bytes.make 8 '\042');
        Ctx.sfence ctx ~loc:l;
        let img = Xfd_mem.Pm_device.crash dev Xfd_mem.Pm_device.Strict in
        Alcotest.(check bytes) "persisted" (Bytes.make 8 '\042')
          (Xfd_mem.Image.read img base 8));
  ]

let clflush_tests =
  [
    Tu.case "clflush and clflushopt both capture for the next fence" (fun () ->
        List.iter
          (fun flush_kind ->
            let pre =
              mk_trace
                [
                  (Event.Roi_begin, l);
                  (Event.Write { addr = base; size = 8 }, l);
                  (flush_kind, l);
                  (Event.Sfence, l);
                ]
            in
            Alcotest.(check int) "clean" 0 (List.length (run_pre_post pre (post_read base 8))))
          [ Event.Clflush { addr = base }; Event.Clflushopt { addr = base } ]);
    Tu.case "mfence is an ordering point too" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Clwb { addr = base }, l);
              (Event.Mfence, l);
            ]
        in
        Alcotest.(check int) "clean" 0 (List.length (run_pre_post pre (post_read base 8))));
    Tu.case "context clflush reaches the device" (fun () ->
        let dev, _, ctx = Tu.make_ctx () in
        Ctx.write_i64 ctx ~loc:l base 9L;
        Ctx.clflush ctx ~loc:l base;
        Ctx.sfence ctx ~loc:l;
        Alcotest.(check bool) "persisted" true (Xfd_mem.Pm_device.is_persisted_range dev base 8));
  ]

let deferred_tests =
  [
    Tu.case "deferred commits move the window only at a fence" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Registry.on_write r ~defer:true ~addr:100 ~size:8 ~ts:3 ~ev:0;
        Alcotest.(check bool) "still open" true (Registry.window_for r 200 = Some None);
        Registry.apply_pending r;
        Alcotest.(check bool) "applied" true (Registry.window_for r 200 = Some (Some (-1, 3))));
    Tu.case "drop_pending discards unpersisted commits" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Registry.on_write r ~defer:true ~addr:100 ~size:8 ~ts:3 ~ev:0;
        Registry.drop_pending r;
        Registry.apply_pending r;
        Alcotest.(check bool) "never committed" true (Registry.window_for r 200 = Some None));
    Tu.case "pending commits apply in order" (fun () ->
        let r = Registry.create () in
        Registry.register_range r ~var:100 ~addr:200 ~size:8;
        Registry.on_write r ~defer:true ~addr:100 ~size:8 ~ts:1 ~ev:0;
        Registry.on_write r ~defer:true ~addr:100 ~size:8 ~ts:2 ~ev:0;
        Registry.apply_pending r;
        Alcotest.(check bool) "window (1,2)" true (Registry.window_for r 200 = Some (Some (1, 2))));
    Tu.case "strict-mode detector defers; full-mode commits at write" (fun () ->
        (* Data persisted, flag written but never persisted; post reads the
           data.  Write-time windows call it consistent (the full image
           exposes flag=1 and recovery would have read data legitimately);
           persist-time windows never opened, so the data is uncommitted. *)
        let pre =
          mk_trace
            [
              (Event.Commit_var { addr = base; size = 8 }, l);
              (Event.Commit_range { var = base; addr = base + 64; size = 8 }, l);
              (Event.Roi_begin, l);
              (Event.Write { addr = base + 64; size = 8 }, l);
              (Event.Clwb { addr = base + 64 }, l);
              (Event.Sfence, l);
              (Event.Write { addr = base; size = 8 }, l) (* flag: unpersisted commit *);
            ]
        in
        let bugs_with commit_at =
          let d = Detector.create ~commit_at () in
          Detector.replay d pre ~from:0 ~upto:(Trace.length pre);
          let fork = Detector.fork_for_post d in
          let post = post_read (base + 64) 8 in
          Detector.replay fork post ~from:0 ~upto:(Trace.length post);
          Detector.bugs fork
        in
        Alcotest.(check int) "full mode clean" 0 (List.length (bugs_with `Write));
        (match bugs_with `Persist with
        | [ Report.Semantic s ] ->
          Alcotest.(check bool) "uncommitted" true (s.Report.status = Xfd.Cstate.Uncommitted)
        | bugs -> Alcotest.failf "strict mode: expected one semantic bug, got %d" (List.length bugs)));
  ]

let corner_tests =
  [
    Tu.case "zero-size post read is harmless" (fun () ->
        let pre = mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 8 }, l) ] in
        Alcotest.(check int) "no findings" 0 (List.length (run_pre_post pre (post_read base 0))));
    Tu.case "reads spanning mixed verdicts split into multiple reports" (fun () ->
        (* bytes 0..7 persisted, 8..15 racy: one read over both must yield
           exactly one race of size 8. *)
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 8 }, l);
              (Event.Clwb { addr = base }, l);
              (Event.Sfence, l);
              (Event.Write { addr = base + 8; size = 8 }, l2);
            ]
        in
        match run_pre_post pre (post_read base 16) with
        | [ Report.Race r ] ->
          Alcotest.(check int) "racy half only" 8 r.Report.size;
          Alcotest.(check int) "starts at the racy byte" (base + 8) r.Report.addr
        | bugs -> Alcotest.failf "expected one race, got %d findings" (List.length bugs));
    Tu.case "second read of the same bytes is not re-checked" (fun () ->
        let pre = mk_trace [ (Event.Roi_begin, l); (Event.Write { addr = base; size = 8 }, l) ] in
        let post =
          mk_trace
            [
              (Event.Roi_begin, l2);
              (Event.Read { addr = base; size = 8 }, l2);
              (Event.Read { addr = base; size = 8 }, Xfd_util.Loc.make ~file:"edge.ml" ~line:99);
            ]
        in
        (* first-read-only: the second read site reports nothing even though
           its dedup key differs *)
        Alcotest.(check int) "one report" 1 (List.length (run_pre_post pre post)));
    Tu.case "two distinct racy regions from one read site share one report" (fun () ->
        let pre =
          mk_trace
            [
              (Event.Roi_begin, l);
              (Event.Write { addr = base; size = 4 }, l);
              (Event.Write { addr = base + 32; size = 4 }, l);
            ]
        in
        (* same reader loc and writer loc: deduplicated *)
        Alcotest.(check int) "deduped" 1 (List.length (run_pre_post pre (post_read base 64))));
  ]

let suite =
  [
    ("edges.nt", nt_tests);
    ("edges.clflush", clflush_tests);
    ("edges.deferred_commits", deferred_tests);
    ("edges.corners", corner_tests);
  ]
