(* Copy-on-write snapshot equivalence: CoW snapshots must be
   indistinguishable from the legacy eager deep copies — byte-identical
   crash images in every mode, identical detection verdicts — while copying
   only the delta.  The oracle is twofold: [Device.deep_snapshot] (the
   legacy representation) and a replay oracle (a fresh device that re-runs
   the op prefix, deep by construction). *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Image = Xfd_mem.Image
module Addr = Xfd_mem.Addr
module Trace = Xfd_trace.Trace

let l = Tu.loc __POS__
let base = Addr.pool_base

(* The op window spans a chunk boundary so CoW faults hit several chunks. *)
let window = 2 * Image.chunk_size

type op = Write of int * char | Nt of int * char | Flush of int | Fence

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun o v -> Write (o, Char.chr (32 + v))) (int_bound (window - 1)) (int_bound 94));
        (2, map2 (fun o v -> Nt (o, Char.chr (32 + v))) (int_bound (window - 1)) (int_bound 94));
        (3, map (fun o -> Flush o) (int_bound (window - 1)));
        (2, return Fence);
      ])

let op_print = function
  | Write (o, c) -> Printf.sprintf "W(%d,%c)" o c
  | Nt (o, c) -> Printf.sprintf "NT(%d,%c)" o c
  | Flush o -> Printf.sprintf "F(%d)" o
  | Fence -> "SF"

let script_arb =
  QCheck.make
    ~print:(fun (ops, k) ->
      Printf.sprintf "snap@%d [%s]" k (String.concat ";" (List.map op_print ops)))
    QCheck.Gen.(
      list_size (int_bound 80) op_gen >>= fun ops ->
      map (fun k -> (ops, k)) (int_bound (max 1 (List.length ops))))

let apply d = function
  | Write (o, c) -> Device.store d (base + o) (Bytes.make 1 c)
  | Nt (o, c) -> Device.store_nt d (base + o) (Bytes.make 1 c)
  | Flush o -> Device.clwb d (base + o)
  | Fence -> Device.sfence d

let take n xs = List.filteri (fun i _ -> i < n) xs

let crash_agrees a b mode =
  let ia = Device.crash a mode and ib = Device.crash b mode in
  let ok = Image.equal_range ia ib base window in
  Image.release ia;
  Image.release ib;
  ok

let equivalence_props =
  [
    QCheck.Test.make ~count:300
      ~name:"CoW snapshot + crash equals deep-copy and replay oracles (Full & Strict)"
      script_arb
      (fun (ops, k) ->
        let d = Device.create () in
        List.iter (apply d) (take k ops);
        let s_cow = Device.snapshot d in
        let s_deep = Device.deep_snapshot d in
        (* The live device keeps mutating: CoW isolation must hold. *)
        List.iteri (fun i op -> if i >= k then apply d op) ops;
        (* The replay oracle is deep by construction. *)
        let oracle = Device.create () in
        List.iter (apply oracle) (take k ops);
        let ok =
          List.for_all
            (fun mode ->
              crash_agrees s_cow s_deep mode && crash_agrees s_cow oracle mode)
            [ Device.Full; Device.Strict ]
          && Device.dirty_bytes s_cow = Device.dirty_bytes oracle
          && Device.pending_bytes s_cow = Device.pending_bytes oracle
        in
        Device.release s_cow;
        Device.release s_deep;
        Device.release oracle;
        Device.release d;
        ok);
    QCheck.Test.make ~count:200
      ~name:"post-failure writes to a booted CoW image never leak back" script_arb
      (fun (ops, _) ->
        let d = Device.create () in
        List.iter (apply d) ops;
        let s = Device.snapshot d in
        let crash_img = Device.crash s Device.Full in
        let before = Image.read (Device.image d) base window in
        let snap_before = Image.read (Device.image s) base window in
        (* A recovery run scribbling over every line of its private image. *)
        let booted = Device.boot crash_img in
        Image.release crash_img;
        for line = 0 to (window / 64) - 1 do
          Device.store_i64 booted (base + (line * 64)) 0x5151515151515151L;
          Device.clwb booted (base + (line * 64))
        done;
        Device.sfence booted;
        let ok =
          Bytes.equal before (Image.read (Device.image d) base window)
          && Bytes.equal snap_before (Image.read (Device.image s) base window)
        in
        Device.release booted;
        Device.release s;
        Device.release d;
        ok);
  ]

(* Engine-verdict equivalence: a minimal replica of [Engine.detect]'s
   per-failure-point pipeline (snapshot at ordering points, crash + boot,
   recovery run, incremental replay, post fork), parameterised by the
   snapshot function.  CoW and deep-copy snapshotting must produce the same
   verdicts on buggy and clean programs alike. *)
let verdicts_with snapf (p : Xfd.Engine.program) =
  let dev = Device.create () in
  let trace = Trace.create () in
  let snaps = ref [] in
  let hook _ctx = snaps := (snapf dev, Trace.length trace) :: !snaps in
  let ctx = Ctx.create ~on_failure_point:hook ~stage:Ctx.Pre_failure ~dev ~trace () in
  p.Xfd.Engine.setup ctx;
  (match p.Xfd.Engine.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  snaps := (snapf dev, Trace.length trace) :: !snaps;
  let det = Xfd.Detector.create () in
  let pre_pos = ref 0 in
  let keys =
    List.concat_map
      (fun (sdev, pos) ->
        let crash_img = Device.crash sdev Device.Full in
        let post_dev = Device.boot crash_img in
        Image.release crash_img;
        Device.release sdev;
        let post_trace = Trace.create () in
        let post_ctx = Ctx.create ~stage:Ctx.Post_failure ~dev:post_dev ~trace:post_trace () in
        (match p.Xfd.Engine.post post_ctx with
        | () -> ()
        | exception Ctx.Detection_complete -> ()
        | exception _ -> ());
        Device.release post_dev;
        Xfd.Detector.replay det trace ~from:!pre_pos ~upto:pos;
        pre_pos := pos;
        let fork = Xfd.Detector.fork_for_post det in
        Xfd.Detector.replay fork post_trace ~from:0 ~upto:(Trace.length post_trace);
        List.map Xfd.Report.dedup_key (Xfd.Detector.bugs fork))
      (List.rev !snaps)
  in
  Device.release dev;
  keys

let verdict_cases =
  let check name program =
    Tu.case name (fun () ->
        let cow = verdicts_with Device.snapshot program in
        let deep = verdicts_with Device.deep_snapshot program in
        Alcotest.(check (list string)) (name ^ ": verdicts") deep cow)
  in
  [
    check "btree verdicts identical under CoW and deep snapshots"
      (Xfd_workloads.Btree.program ~init_size:1 ~size:2 ());
    check "hashmap-atomic verdicts identical under CoW and deep snapshots"
      (Xfd_workloads.Hashmap_atomic.program ~size:2 ());
    check "linkedlist (naive recovery) verdicts identical under CoW and deep snapshots"
      (Xfd_workloads.Linkedlist.program ~size:2 ());
  ]

(* Unit-level behaviour of the CoW machinery itself. *)
let cow_unit_tests =
  [
    Tu.case "snapshot copies only the cache-state delta" (fun () ->
        let d = Device.create () in
        for i = 0 to 99 do
          Device.store_i64 d (base + (i * Image.chunk_size)) 1L;
          Device.clwb d (base + (i * Image.chunk_size))
        done;
        Device.sfence d;
        Device.store d base (Bytes.of_string "abc") (* 3 dirty bytes *);
        let before = Option.get (Xfd_obs.Obs.counter_value "pm.snapshot_bytes") in
        let s = Device.snapshot d in
        let eager = Option.get (Xfd_obs.Obs.counter_value "pm.snapshot_bytes") - before in
        Alcotest.(check int) "eager bytes = dirty + pending" 3 eager;
        Alcotest.(check bool)
          "images fully shared" true
          (Image.shared_bytes (Device.image s) = Image.footprint (Device.image s));
        Device.release s;
        Device.release d);
    Tu.case "writes after snapshot raise CoW faults, not snapshot changes" (fun () ->
        let d = Device.create () in
        Device.store_i64 d base 1L;
        let s = Device.snapshot d in
        let faults0 = Option.get (Xfd_obs.Obs.counter_value "pm.cow_faults") in
        Device.store_i64 d base 2L;
        Device.store_i64 d (base + 8) 3L (* same chunk: one fault only *);
        let faults = Option.get (Xfd_obs.Obs.counter_value "pm.cow_faults") - faults0 in
        Alcotest.(check int) "one fault per chunk" 1 faults;
        Alcotest.check Tu.i64 "snapshot keeps old value" 1L (Device.load_i64 s base);
        Alcotest.check Tu.i64 "device sees new value" 2L (Device.load_i64 d base);
        Device.release s;
        Device.release d);
    Tu.case "release returns live chunk accounting to baseline" (fun () ->
        let live0 = Image.live_bytes () in
        let d = Device.create () in
        for i = 0 to 9 do
          Device.store_i64 d (base + (i * Image.chunk_size)) 1L
        done;
        let s1 = Device.snapshot d in
        let s2 = Device.snapshot d in
        Device.store_i64 d base 2L (* CoW fault while two snapshots share *);
        Alcotest.(check bool) "accounting grew" true (Image.live_bytes () > live0);
        Device.release s1;
        Device.release s2;
        Device.release d;
        Alcotest.(check int) "back to baseline" live0 (Image.live_bytes ()));
    Tu.case "deep_snapshot shares nothing" (fun () ->
        let d = Device.create () in
        Device.store_i64 d base 1L;
        let s = Device.deep_snapshot d in
        Alcotest.(check int) "no shared bytes" 0 (Image.shared_bytes (Device.image s));
        Alcotest.(check int)
          "device shares nothing either" 0
          (Image.shared_bytes (Device.image d));
        Device.release s;
        Device.release d);
    Tu.case "detect leaves no live image bytes behind" (fun () ->
        let live0 = Image.live_bytes () in
        let o = Tu.detect (Xfd_workloads.Btree.program ~init_size:1 ~size:2 ()) in
        Tu.check_clean "btree" o;
        Alcotest.(check int) "all images released" live0 (Image.live_bytes ()));
    Tu.case "detect peak stays O(image + deltas), not O(points x image)" (fun () ->
        let live0 = Image.live_bytes () in
        let shared0 = Option.get (Xfd_obs.Obs.counter_value "pm.snapshot_shared_bytes") in
        let o = Tu.detect (Xfd_workloads.Btree.program ~init_size:1 ~size:3 ()) in
        let peak_growth = Image.peak_bytes () - live0 in
        let shared =
          (* what this run's F eager copies of both device images would have cost *)
          Option.get (Xfd_obs.Obs.counter_value "pm.snapshot_shared_bytes") - shared0
        in
        Alcotest.(check bool) "some failure points" true (o.Xfd.Engine.failure_points > 2);
        Alcotest.(check bool)
          (Printf.sprintf "peak growth %d well under eager total %d" peak_growth shared)
          true
          (peak_growth > 0 && peak_growth * 2 < shared));
  ]

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ("cow.unit", cow_unit_tests);
    ("cow.props", to_alcotest equivalence_props);
    ("cow.verdicts", verdict_cases);
  ]
