module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace

let default_radius = 3

let render_line ?(mark = false) (ev : Event.t) =
  Format.asprintf "%s[%6d] %a @@ %a"
    (if mark then ">" else " ")
    ev.Event.seq Event.pp_kind ev.Event.kind Xfd_util.Loc.pp ev.Event.loc

let range t ~from ~upto ~marks =
  let from = max 0 from and upto = min upto (Trace.length t) in
  if upto <= from then []
  else
    List.init (upto - from) (fun i ->
        let idx = from + i in
        render_line ~mark:(List.mem idx marks) (Trace.get t idx))

type excerpt = { from : int; upto : int; lines : string list }

let excerpts t ~indices ~radius =
  let len = Trace.length t in
  let indices =
    List.sort_uniq compare (List.filter (fun i -> i >= 0 && i < len) indices)
  in
  (* Merge the per-index windows while they overlap or touch. *)
  let windows =
    List.fold_left
      (fun acc i ->
        let lo = max 0 (i - radius) and hi = min len (i + radius + 1) in
        match acc with
        | (lo', hi') :: rest when lo <= hi' -> (lo', max hi hi') :: rest
        | _ -> (lo, hi) :: acc)
      [] indices
    |> List.rev
  in
  List.map
    (fun (from, upto) -> { from; upto; lines = range t ~from ~upto ~marks:indices })
    windows
