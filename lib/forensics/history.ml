let depth = 4

type t = {
  ring : int array; (* last [depth] write event indices; -1 = empty slot *)
  mutable head : int; (* total writes recorded; ring slot = head mod depth *)
  mutable flush : int;
  mutable fence : int;
  mutable alloc : int;
}

let create () = { ring = Array.make depth (-1); head = 0; flush = -1; fence = -1; alloc = -1 }

let record_write t ~ev ~nt =
  t.ring.(t.head mod depth) <- ev;
  t.head <- t.head + 1;
  (* A non-temporal store bypasses the cache: the store itself is the
     writeback, and any earlier flush/fence evidence is superseded. *)
  if nt then t.flush <- ev else t.flush <- -1;
  t.fence <- -1

let record_flush t ~ev = t.flush <- ev

let record_fence t ~ev = t.fence <- ev

let record_alloc t ~ev =
  Array.fill t.ring 0 depth (-1);
  t.head <- 0;
  t.flush <- -1;
  t.fence <- -1;
  t.alloc <- ev

let writes t =
  let n = min t.head depth in
  (* Oldest retained write lives at slot [head mod depth] once the ring has
     wrapped, at slot 0 before that. *)
  List.init n (fun i -> t.ring.((t.head - n + i) mod depth))

let last_write t = if t.head = 0 then None else Some t.ring.((t.head - 1) mod depth)

let opt v = if v < 0 then None else Some v

let last_flush t = opt t.flush
let last_fence t = opt t.fence
let alloc_site t = opt t.alloc
