module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Loc = Xfd_util.Loc
module Json = Xfd_util.Json

type stage = Pre | Post

type role =
  | Alloc
  | Write
  | Writeback
  | Fence
  | Commit_prelast
  | Commit_last
  | Wasted_flush
  | Read

let stage_to_string = function Pre -> "pre" | Post -> "post"

let role_to_string = function
  | Alloc -> "alloc"
  | Write -> "write"
  | Writeback -> "writeback"
  | Fence -> "fence"
  | Commit_prelast -> "commit-window-open"
  | Commit_last -> "commit-window-close"
  | Wasted_flush -> "wasted-flush"
  | Read -> "read"

type entry = {
  stage : stage;
  index : int;
  role : role;
  event : string;
  loc : Loc.t;
}

type t = {
  addr : Xfd_mem.Addr.t;
  size : int;
  verdict : string;
  persistence : string;
  window : (int * int) option;
  tlast : int option;
  entries : entry list;
  excerpts : (stage * Timeline.excerpt) list;
}

let build ~pre ?post ?window ?tlast ?(radius = Timeline.default_radius) ~addr ~size
    ~verdict ~persistence spec =
  let trace_of = function Pre -> Some pre | Post -> post in
  let entries =
    List.filter_map
      (fun (stage, role, index) ->
        match trace_of stage with
        | Some tr when index >= 0 && index < Trace.length tr ->
          let ev = Trace.get tr index in
          Some
            {
              stage;
              index;
              role;
              event = Format.asprintf "%a" Event.pp_kind ev.Event.kind;
              loc = ev.Event.loc;
            }
        | Some _ | None -> None)
      spec
    |> List.stable_sort (fun a b ->
           match (a.stage, b.stage) with
           | Pre, Post -> -1
           | Post, Pre -> 1
           | (Pre | Post), _ -> compare a.index b.index)
  in
  let excerpts_for stage =
    match trace_of stage with
    | None -> []
    | Some tr ->
      let indices =
        List.filter_map (fun e -> if e.stage = stage then Some e.index else None) entries
      in
      if indices = [] then []
      else List.map (fun x -> (stage, x)) (Timeline.excerpts tr ~indices ~radius)
  in
  {
    addr;
    size;
    verdict;
    persistence;
    window;
    tlast;
    entries;
    excerpts = excerpts_for Pre @ excerpts_for Post;
  }

(* Last matching entry: several [Write]s can be retained, and the most
   recent one is the implicated writer. *)
let find_role t role =
  List.fold_left (fun acc e -> if e.role = role then Some e else acc) None t.entries

let at t role =
  match find_role t role with
  | Some e ->
    Printf.sprintf "%s (%s event %d)" (Loc.to_string e.loc) (stage_to_string e.stage)
      e.index
  | None -> "<unknown>"

let explain t =
  let ts = match t.tlast with Some v -> Printf.sprintf " (t=%d)" v | None -> "" in
  match t.verdict with
  | "race-uninit" ->
    Printf.sprintf
      "allocated raw at %s but never initialised before the failure: the post-failure \
       read at %s sees whatever the allocator left there"
      (at t Alloc) (at t Read)
  | "race" -> begin
    match t.persistence with
    | "modified" ->
      Printf.sprintf
        "written at %s but never written back: no CLWB/CLFLUSH captured the line \
         before the failure point, so the post-failure read at %s races with the \
         in-cache value"
        (at t Write) (at t Read)
    | "writeback-pending" ->
      Printf.sprintf
        "written at %s and written back at %s, but no SFENCE ordered the writeback \
         before the failure point: the post-failure read at %s is not guaranteed to \
         see it"
        (at t Write) (at t Writeback) (at t Read)
    | _ ->
      Printf.sprintf "write at %s is not guaranteed persistent at the failure point (%s)"
        (at t Write) t.persistence
  end
  | "semantic-uncommitted" -> begin
    match t.window with
    | None ->
      Printf.sprintf
        "write at %s%s persisted, but its governing commit variable was never \
         committed: recovery at %s reads a value no commit covers"
        (at t Write) ts (at t Read)
    | Some (_, t_last) ->
      Printf.sprintf
        "persisted write at %s%s postdates the last commit at %s (t_last=%d): \
         recovery at %s reads an uncommitted value"
        (at t Write) ts (at t Commit_last) t_last (at t Read)
  end
  | "semantic-stale" ->
    let w =
      match t.window with
      | Some (p, l) -> Printf.sprintf " [t_prelast=%d, t_last=%d]" p l
      | None -> ""
    in
    Printf.sprintf
      "persisted write at %s%s predates the commit window%s opened at %s: recovery \
       at %s reads a stale value"
      (at t Write) ts w (at t Commit_prelast) (at t Read)
  | "perf-redundant-writeback" ->
    Printf.sprintf
      "flush at %s found every tracked byte of the line already writeback-pending \
       (last captured at %s with no intervening store)"
      (at t Wasted_flush) (at t Writeback)
  | "perf-unnecessary-writeback" ->
    Printf.sprintf
      "flush at %s found the line already persisted (fence at %s, no store since)"
      (at t Wasted_flush) (at t Fence)
  | "perf-duplicate-tx-add" ->
    Printf.sprintf "TX_ADD at %s covers a range already added in this transaction"
      (at t Wasted_flush)
  | v -> Printf.sprintf "%s involving the write at %s" v (at t Write)

let pp ppf t =
  Format.fprintf ppf "why: %s@." (explain t);
  if t.entries <> [] then begin
    Format.fprintf ppf "chain:@.";
    List.iter
      (fun e ->
        Format.fprintf ppf "  %-4s %-19s [%6d] %s @@ %a@." (stage_to_string e.stage)
          (role_to_string e.role) e.index e.event Loc.pp e.loc)
      t.entries
  end;
  List.iter
    (fun (stage, (x : Timeline.excerpt)) ->
      Format.fprintf ppf "timeline (%s events %d..%d):@." (stage_to_string stage) x.Timeline.from
        (x.Timeline.upto - 1);
      List.iter (fun l -> Format.fprintf ppf "  %s@." l) x.Timeline.lines)
    t.excerpts

let entry_to_json e =
  Json.Obj
    [
      ("stage", Json.Str (stage_to_string e.stage));
      ("index", Json.Int e.index);
      ("role", Json.Str (role_to_string e.role));
      ("event", Json.Str e.event);
      ( "loc",
        Json.Obj
          [ ("file", Json.Str e.loc.Loc.file); ("line", Json.Int e.loc.Loc.line) ] );
    ]

let to_json t =
  Json.Obj
    [
      ("addr", Json.Str (Printf.sprintf "0x%x" t.addr));
      ("size", Json.Int t.size);
      ("verdict", Json.Str t.verdict);
      ("persistence", Json.Str t.persistence);
      ( "window",
        match t.window with
        | None -> Json.Null
        | Some (p, l) ->
          Json.Obj [ ("t_prelast", Json.Int p); ("t_last", Json.Int l) ] );
      ("tlast", match t.tlast with None -> Json.Null | Some v -> Json.Int v);
      ("explanation", Json.Str (explain t));
      ("chain", Json.Arr (List.map entry_to_json t.entries));
      ( "excerpts",
        Json.Arr
          (List.map
             (fun (stage, (x : Timeline.excerpt)) ->
               Json.Obj
                 [
                   ("stage", Json.Str (stage_to_string stage));
                   ("from", Json.Int x.Timeline.from);
                   ("upto", Json.Int x.Timeline.upto);
                   ("lines", Json.Arr (List.map (fun l -> Json.Str l) x.Timeline.lines));
                 ])
             t.excerpts) );
    ]
