(** Run-level detection-coverage report.

    Detection results only mean something relative to how much of the
    region of interest the run actually exercised: how many failure points
    fired versus were elided as redundant, how many ordering points the RoI
    contained, and how many of the bytes the pre-failure stage wrote were
    ever read back (and therefore checked) by a post-failure stage.  This
    module derives that report from the [xfd_obs] counters the pipeline
    already maintains — it adds no instrumentation of its own.

    Counters are process-global and cumulative, so a report is always the
    {e delta} against a {!mark} taken when the run of interest started. *)

type t = {
  failure_points_fired : int;
  failure_points_elided : int;  (** no PM update since the previous point *)
  ordering_points : int;  (** fences the frontend saw (RoI or not) *)
  trace_events : int;  (** events the frontend recorded *)
  replayed_events : int;  (** events the backend replayed (pre + post) *)
  bytes_written : int;
      (** bytes stored by pre-failure write events inside the RoI (the
          population {!field:bytes_checked} draws from; post-failure and
          out-of-RoI stores are not counted) *)
  bytes_checked : int;  (** distinct bytes read-checked post-failure *)
  races : int;
  semantic_bugs : int;
  performance_bugs : int;
  post_failure_errors : int;
}

type mark

val mark : unit -> mark

(** Counter deltas since [mark]. *)
val since : mark -> t

(** Fraction of written bytes that some post-failure stage read back, in
    [0, 1] ([1.0] when nothing was written — an empty RoI checks
    vacuously). *)
val checked_ratio : t -> float

val pp : Format.formatter -> t -> unit
val to_json : t -> Xfd_util.Json.t
