module Obs = Xfd_obs.Obs

type t = {
  failure_points_fired : int;
  failure_points_elided : int;
  ordering_points : int;
  trace_events : int;
  replayed_events : int;
  bytes_written : int;
  bytes_checked : int;
  races : int;
  semantic_bugs : int;
  performance_bugs : int;
  post_failure_errors : int;
}

(* Counter names this report is derived from, in field order. *)
let names =
  [|
    "engine.failure_points.fired";
    "engine.failure_points.elided";
    "sim.ordering_points";
    "sim.trace_events";
    "detector.replayed_events";
    "detector.written_bytes";
    "detector.checked_bytes";
    "bugs.race";
    "bugs.semantic";
    "bugs.perf";
    "bugs.post_failure_error";
  |]

let values () =
  Array.map (fun n -> Option.value ~default:0 (Obs.counter_value n)) names

type mark = int array

let mark () = values ()

let since m =
  let now = values () in
  let d i = now.(i) - m.(i) in
  {
    failure_points_fired = d 0;
    failure_points_elided = d 1;
    ordering_points = d 2;
    trace_events = d 3;
    replayed_events = d 4;
    bytes_written = d 5;
    bytes_checked = d 6;
    races = d 7;
    semantic_bugs = d 8;
    performance_bugs = d 9;
    post_failure_errors = d 10;
  }

let checked_ratio t =
  if t.bytes_written <= 0 then 1.0
  else
    Float.min 1.0 (float_of_int t.bytes_checked /. float_of_int t.bytes_written)

let pp ppf t =
  Format.fprintf ppf "detection coverage:@.";
  Format.fprintf ppf "  failure points     %d fired, %d elided (no PM update)@."
    t.failure_points_fired t.failure_points_elided;
  Format.fprintf ppf "  ordering points    %d@." t.ordering_points;
  Format.fprintf ppf "  events             %d traced, %d replayed@." t.trace_events
    t.replayed_events;
  Format.fprintf ppf "  bytes              %d written, %d read-checked (%.0f%%)@."
    t.bytes_written t.bytes_checked
    (100.0 *. checked_ratio t);
  Format.fprintf ppf
    "  bug emissions      races=%d semantic=%d performance=%d post-failure-errors=%d@."
    t.races t.semantic_bugs t.performance_bugs t.post_failure_errors

let to_json t =
  let open Xfd_util.Json in
  Obj
    [
      ( "failure_points",
        Obj [ ("fired", Int t.failure_points_fired); ("elided", Int t.failure_points_elided) ]
      );
      ("ordering_points", Int t.ordering_points);
      ("trace_events", Int t.trace_events);
      ("replayed_events", Int t.replayed_events);
      ("bytes_written", Int t.bytes_written);
      ("bytes_checked", Int t.bytes_checked);
      ("checked_ratio", Float (checked_ratio t));
      ( "bug_emissions",
        Obj
          [
            ("races", Int t.races);
            ("semantic_bugs", Int t.semantic_bugs);
            ("performance_bugs", Int t.performance_bugs);
            ("post_failure_errors", Int t.post_failure_errors);
          ] );
    ]
