(** Trace timeline rendering: the excerpts a provenance chain embeds and
    the printer behind [xfd_trace dump --range] and [xfd_trace explain].

    Lines look like

    {v
       [    42] WRITE 0x10008 8 @ lib/workloads/array_update.ml:61
      >[    43] CLWB 0x10000 @ lib/workloads/array_update.ml:62
    v}

    where [>] marks an implicated event. *)

(** Events of context rendered on each side of an implicated index. *)
val default_radius : int

(** Render one event; [mark] prefixes the line with [>]. *)
val render_line : ?mark:bool -> Xfd_trace.Event.t -> string

(** [range t ~from ~upto ~marks] renders events [from .. upto-1] (clamped
    to the trace), marking any index in [marks]. *)
val range : Xfd_trace.Trace.t -> from:int -> upto:int -> marks:int list -> string list

(** One rendered excerpt: the half-open index window and its lines. *)
type excerpt = { from : int; upto : int; lines : string list }

(** [excerpts t ~indices ~radius] renders a window of [radius] events
    around each index, merging overlapping or adjacent windows into one
    excerpt.  Out-of-range indices are dropped; the result is ordered. *)
val excerpts : Xfd_trace.Trace.t -> indices:int list -> radius:int -> excerpt list
