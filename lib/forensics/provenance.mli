(** Provenance chains: the ordered pre-failure events that explain a
    cross-failure verdict.

    XFDetector's reports name the reading instruction and the last writer;
    the paper's debugging workflow then walks the trace between them.  A
    chain packages that walk: the implicated events (allocation, writes,
    writeback, fence, the commit-variable writes that framed the Eq. 3
    window, and the post-failure read), each resolved against the retained
    trace to its kind and source location, plus timeline excerpts around
    the implicated indices.  Chains are built only when a bug fires; during
    replay the detector keeps nothing beyond {!History} indices. *)

(** Which trace an entry's index refers to: the shared pre-failure trace
    or the failing run's post-failure trace. *)
type stage = Pre | Post

(** Why an event appears in the chain. *)
type role =
  | Alloc  (** raw allocation of the byte range (uninitialised reads) *)
  | Write  (** a retained store to the range; the last one is the writer *)
  | Writeback  (** the flush that captured the last store *)
  | Fence  (** the fence that persisted the writeback *)
  | Commit_prelast  (** commit write opening the Eq. 3 window *)
  | Commit_last  (** commit write closing the Eq. 3 window *)
  | Wasted_flush  (** the flush a performance bug reports *)
  | Read  (** the post-failure read that tripped the check *)

val role_to_string : role -> string

(** One implicated event, resolved against its trace. *)
type entry = {
  stage : stage;
  index : int;  (** event index within its stage's trace *)
  role : role;
  event : string;  (** rendered event kind, e.g. ["WRITE 0x10008 8"] *)
  loc : Xfd_util.Loc.t;
}

type t = {
  addr : Xfd_mem.Addr.t;
  size : int;
  verdict : string;  (** e.g. ["race"], ["race-uninit"], ["semantic-stale"] *)
  persistence : string;  (** shadow persistence state at the failure *)
  window : (int * int) option;  (** Eq. 3 commit window [(t_prelast, t_last)] *)
  tlast : int option;  (** timestamp of the implicated write *)
  entries : entry list;  (** chronological: pre entries by index, then post *)
  excerpts : (stage * Timeline.excerpt) list;
}

(** [build ~pre ?post ... spec] resolves a chain from [(stage, role,
    index)] triples.  Indices out of range of their trace are dropped;
    entries are sorted pre-before-post, by index within a stage.  Timeline
    excerpts ([radius] defaults to {!Timeline.default_radius}) cover every
    implicated index of each stage. *)
val build :
  pre:Xfd_trace.Trace.t ->
  ?post:Xfd_trace.Trace.t ->
  ?window:int * int ->
  ?tlast:int ->
  ?radius:int ->
  addr:Xfd_mem.Addr.t ->
  size:int ->
  verdict:string ->
  persistence:string ->
  (stage * role * int) list ->
  t

(** One-sentence diagnosis, e.g. ["written at a.ml:12 (pre event 5) and
    written back at a.ml:13 (pre event 6), but no fence ordered the
    writeback before the failure point"]. *)
val explain : t -> string

(** The chain and its excerpts, indented for embedding under a bug line. *)
val pp : Format.formatter -> t -> unit

val to_json : t -> Xfd_util.Json.t
