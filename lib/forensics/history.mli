(** Bounded per-byte provenance history.

    The shadow PM attaches one {!t} to every tracked cell when forensics is
    enabled.  A history does not retain events — only {e indices} into the
    retained pre-failure trace, so its footprint is a handful of ints per
    byte no matter how long the run is: a small ring of the most recent
    write events plus the single most recent writeback, fence and
    allocation events.  The provenance chain a bug report carries is
    materialised from these indices against the trace only when a bug
    actually fires. *)

type t

(** Number of write events the ring retains (the paper's debugging
    workflow only ever walks from the reading instruction to the last
    writer; a few predecessors give context for overwrite patterns). *)
val depth : int

val create : unit -> t

(** Record a store at trace index [ev].  [nt] marks a non-temporal store,
    which is born writeback-pending (its own event doubles as the
    writeback). *)
val record_write : t -> ev:int -> nt:bool -> unit

(** Record that a flush instruction at trace index [ev] captured this
    byte (Modified -> Writeback_pending). *)
val record_flush : t -> ev:int -> unit

(** Record that the fence at trace index [ev] persisted this byte. *)
val record_fence : t -> ev:int -> unit

(** Record a raw (re-)allocation covering this byte; resets the write,
    flush and fence history — the previous object's provenance does not
    explain reads of the new one. *)
val record_alloc : t -> ev:int -> unit

(** Retained write event indices, oldest first. *)
val writes : t -> int list

(** Index of the most recent write, if any. *)
val last_write : t -> int option

val last_flush : t -> int option
val last_fence : t -> int option
val alloc_site : t -> int option
