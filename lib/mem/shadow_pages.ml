module Obs = Xfd_obs.Obs

let page_bits = 12
let page_size = 1 lsl page_bits (* 4 KiB, matching Image chunks *)

(* Bitmap words are 32 bits wide so indices stay well inside OCaml's native
   int on every platform: 128 words cover one page. *)
let word_bits = 5
let words_per_page = page_size lsr word_bits

let g_live = Obs.Gauge.make "shadow.page_bytes_live"
let g_peak = Obs.Gauge.make "shadow.page_bytes_peak"

let live_bytes_a = Atomic.make 0
let peak_bytes_a = Atomic.make 0

let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

let account_alloc () =
  let live = Atomic.fetch_and_add live_bytes_a page_size + page_size in
  store_max peak_bytes_a live;
  Obs.Gauge.set g_live (float_of_int live);
  Obs.Gauge.set g_peak (float_of_int (Atomic.get peak_bytes_a))

let account_free () =
  let live = Atomic.fetch_and_add live_bytes_a (-page_size) - page_size in
  Obs.Gauge.set g_live (float_of_int live)

let live_bytes () = Atomic.get live_bytes_a
let peak_bytes () = Atomic.get peak_bytes_a

(* Packed-byte format: bits 0-2 caller state, bit 3 tracked, bit 4 pending,
   bits 5-7 caller flags. *)
let state_mask = 0b111
let state_of packed = packed land state_mask
let with_state packed s = packed land lnot state_mask lor (s land state_mask)
let bit_tracked = 0b0000_1000
let bit_pending = 0b0001_0000
let bit_flag_a = 0b0010_0000
let bit_flag_b = 0b0100_0000
let bit_flag_c = 0b1000_0000
let has packed bit = packed land bit <> 0

type bigstring =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type page = {
  base : int; (* address of the page's first byte *)
  bytes : bigstring;
  tracked_w : int array;
  pending_w : int array;
  mutable tracked_n : int;
  mutable pending_n : int;
}

type t = {
  pages : (int, page) Hashtbl.t; (* page index = addr lsr page_bits *)
  mutable last : page option; (* one-slot lookup cache for locality *)
  mutable tracked : int;
  mutable pending : int;
  mutable released : bool;
}

let create () =
  { pages = Hashtbl.create 16; last = None; tracked = 0; pending = 0; released = false }

let release t =
  if not t.released then begin
    t.released <- true;
    Hashtbl.iter (fun _ _ -> account_free ()) t.pages;
    Hashtbl.reset t.pages;
    t.last <- None;
    t.tracked <- 0;
    t.pending <- 0
  end

let page_index addr = addr lsr page_bits
let page_offset addr = addr land (page_size - 1)

let find_page t addr =
  match t.last with
  | Some p when p.base = addr land lnot (page_size - 1) -> Some p
  | _ -> (
    match Hashtbl.find_opt t.pages (page_index addr) with
    | Some _ as r ->
      t.last <- r;
      r
    | None -> None)

let make_page t addr =
  let p =
    {
      base = addr land lnot (page_size - 1);
      bytes = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout page_size;
      tracked_w = Array.make words_per_page 0;
      pending_w = Array.make words_per_page 0;
      tracked_n = 0;
      pending_n = 0;
    }
  in
  Bigarray.Array1.fill p.bytes 0;
  Hashtbl.replace t.pages (page_index addr) p;
  t.last <- Some p;
  account_alloc ();
  p

let get t addr =
  match find_page t addr with
  | None -> 0
  | Some p -> Bigarray.Array1.unsafe_get p.bytes (page_offset addr)

let set t addr packed =
  let p =
    match find_page t addr with Some p -> p | None -> make_page t addr
  in
  let off = page_offset addr in
  let old = Bigarray.Array1.unsafe_get p.bytes off in
  if old <> packed then begin
    Bigarray.Array1.unsafe_set p.bytes off packed;
    let w = off lsr word_bits and bit = 1 lsl (off land ((1 lsl word_bits) - 1)) in
    let otr = old land bit_tracked <> 0 and ntr = packed land bit_tracked <> 0 in
    if otr <> ntr then begin
      let d = if ntr then 1 else -1 in
      p.tracked_w.(w) <- (if ntr then p.tracked_w.(w) lor bit else p.tracked_w.(w) land lnot bit);
      p.tracked_n <- p.tracked_n + d;
      t.tracked <- t.tracked + d
    end;
    let ope = old land bit_pending <> 0 and npe = packed land bit_pending <> 0 in
    if ope <> npe then begin
      let d = if npe then 1 else -1 in
      p.pending_w.(w) <- (if npe then p.pending_w.(w) lor bit else p.pending_w.(w) land lnot bit);
      p.pending_n <- p.pending_n + d;
      t.pending <- t.pending + d
    end
  end

let tracked_bytes t = t.tracked
let pending_bytes t = t.pending

let sorted_pages t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pages []
  |> List.sort (fun a b -> Int.compare a.base b.base)

(* Collect the set bits of [words] as addresses, in increasing order. *)
let bitmap_addrs p words =
  let out = ref [] in
  for w = words_per_page - 1 downto 0 do
    let m = words.(w) in
    if m <> 0 then
      for b = (1 lsl word_bits) - 1 downto 0 do
        if m land (1 lsl b) <> 0 then out := (p.base + (w lsl word_bits) + b) :: !out
      done
  done;
  !out

let pending_addrs t =
  List.concat_map
    (fun p -> if p.pending_n = 0 then [] else bitmap_addrs p p.pending_w)
    (sorted_pages t)

let iter_tracked t f =
  List.iter
    (fun p ->
      if p.tracked_n > 0 then
        List.iter
          (fun a -> f a (Bigarray.Array1.unsafe_get p.bytes (page_offset a)))
          (bitmap_addrs p p.tracked_w))
    (sorted_pages t)

let iter_line t line n f =
  match find_page t line with
  | None -> for i = 0 to n - 1 do f (line + i) 0 done
  | Some p ->
    let off = page_offset line in
    for i = 0 to n - 1 do
      f (line + i) (Bigarray.Array1.unsafe_get p.bytes (off + i))
    done
