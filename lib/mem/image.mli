(** A sparse byte image of persistent memory.

    The image is the value store; it knows nothing about caching or
    persistence (that is {!Pm_device}'s job).  Storage is chunked so that a
    pool mapped at [Addr.pool_base] costs memory proportional to the bytes
    actually touched.  Unwritten bytes read as zero, like a fresh DAX file.

    Chunks are structurally shared: {!snapshot} copies only the chunk table
    and bumps per-chunk refcounts, so it is O(chunks touched), not O(bytes).
    A chunk referenced by more than one image is immutable; the first write
    through any of its owners takes a private copy (copy-on-write), so
    mutations of either side stay invisible to the other, exactly as with a
    deep copy.  Refcounts are atomic: images whose tables are private to one
    domain may share chunks across domains (the engine's post-failure
    worker pool relies on this). *)

type t

(** Chunk granularity of the store (4 KiB).  [snapshot] cost and
    copy-on-write cost are multiples of this. *)
val chunk_size : int

val create : unit -> t

val read_byte : t -> Addr.t -> char
val write_byte : t -> Addr.t -> char -> unit

(** [read t addr size] copies [size] bytes out of the image. *)
val read : t -> Addr.t -> int -> bytes

(** [write t addr b] stores all of [b] at [addr]. *)
val write : t -> Addr.t -> bytes -> unit

val read_i64 : t -> Addr.t -> int64
val write_i64 : t -> Addr.t -> int64 -> unit

(** O(chunk-table) copy-on-write snapshot; mutations of either side are
    invisible to the other.  Byte copies are deferred to the first write of
    each shared chunk. *)
val snapshot : t -> t

(** Eager deep copy: every chunk's bytes are duplicated up front.  This is
    the legacy snapshot representation, kept as the baseline for the
    snapshotting benchmarks and as the oracle for the CoW equivalence
    tests. *)
val deep_copy : t -> t

(** Drop this image's references to its chunks (the image then reads as all
    zeroes).  Releasing is optional — the GC reclaims unreachable images —
    but it keeps the process-wide {!live_bytes} accounting exact and frees
    shared chunks eagerly; the engine releases snapshots as soon as their
    failure point has been processed. *)
val release : t -> unit

(** Bytes of this image's chunks currently shared with at least one other
    image (i.e. not yet privately copied). *)
val shared_bytes : t -> int

(** [copy_range ~src ~dst addr size] copies a byte range between images. *)
val copy_range : src:t -> dst:t -> Addr.t -> int -> unit

(** Number of bytes ever written (an upper bound on live data; used by the
    engine to size shadow structures and report image footprint).  Shared
    chunks count fully — this is the per-image logical footprint, not the
    process-wide physical one (see {!live_bytes}). *)
val footprint : t -> int

(** [equal_range a b addr size] compares a byte range across two images. *)
val equal_range : t -> t -> Addr.t -> int -> bool

(** Iterate over every chunk that has been materialised, in address order.
    [f base chunk] receives the base address and the chunk's bytes.  The
    bytes may be shared with other images: treat them as read-only. *)
val iter_chunks : t -> (Addr.t -> bytes -> unit) -> unit

(** {1 Process-wide chunk accounting}

    Unique chunk payload bytes across every image in the process: a chunk
    shared by ten snapshots counts once.  Mirrored in the
    [pm.chunk_bytes_live] / [pm.chunk_bytes_peak] gauges. *)

val live_bytes : unit -> int

(** High-water mark of {!live_bytes} since the last {!reset_peak}. *)
val peak_bytes : unit -> int

val reset_peak : unit -> unit
