module Obs = Xfd_obs.Obs

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits (* 4 KiB, one page *)

(* Copy-on-write telemetry.  [pm.cow_faults]/[pm.cow_bytes] count lazy chunk
   copies triggered by writes to shared chunks; the gauges track the unique
   chunk payload bytes alive across every image in the process (shared
   chunks count once — this is the real memory footprint of all snapshots,
   crash images and live devices together). *)
let c_cow_faults = Obs.Counter.make "pm.cow_faults"
let c_cow_bytes = Obs.Counter.make "pm.cow_bytes"
let g_live = Obs.Gauge.make "pm.chunk_bytes_live"
let g_peak = Obs.Gauge.make "pm.chunk_bytes_peak"

let live_bytes_a = Atomic.make 0
let peak_bytes_a = Atomic.make 0

let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

let account_alloc () =
  let live = Atomic.fetch_and_add live_bytes_a chunk_size + chunk_size in
  store_max peak_bytes_a live;
  Obs.Gauge.set g_live (float_of_int live);
  Obs.Gauge.set g_peak (float_of_int (Atomic.get peak_bytes_a))

let account_free () =
  let live = Atomic.fetch_and_add live_bytes_a (-chunk_size) - chunk_size in
  Obs.Gauge.set g_live (float_of_int live)

let live_bytes () = Atomic.get live_bytes_a
let peak_bytes () = Atomic.get peak_bytes_a

let reset_peak () =
  Atomic.set peak_bytes_a (Atomic.get live_bytes_a);
  Obs.Gauge.set g_peak (float_of_int (Atomic.get peak_bytes_a))

(* A chunk is a refcounted page.  [refs] counts the images whose table
   references it; a chunk with [refs > 1] is immutable (every writer must
   first take a private copy), which is what makes sharing across the
   engine's post-failure worker domains race-free: workers only ever read
   shared payloads, and all ownership transitions go through the atomic
   refcount. *)
type chunk = { data : bytes; refs : int Atomic.t }

type t = { chunks : (int, chunk) Hashtbl.t; mutable footprint : int }

let create () = { chunks = Hashtbl.create 64; footprint = 0 }

let chunk_index addr = addr lsr chunk_bits
let chunk_offset addr = addr land (chunk_size - 1)

let release_chunk c = if Atomic.fetch_and_add c.refs (-1) = 1 then account_free ()

(* The chunk at [idx], exclusively owned so the caller may mutate it.  On a
   shared chunk this is the CoW fault: copy the payload, then drop our
   reference to the shared original.  The copy happens before the decrement,
   so a peer that observes [refs = 1] (and then writes in place) is ordered
   after our read of the shared bytes. *)
let writable_chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c when Atomic.get c.refs = 1 -> c.data
  | Some c ->
    let mine = { data = Bytes.copy c.data; refs = Atomic.make 1 } in
    Hashtbl.replace t.chunks idx mine;
    account_alloc ();
    Obs.Counter.incr c_cow_faults;
    Obs.Counter.add c_cow_bytes chunk_size;
    release_chunk c;
    mine.data
  | None ->
    let c = { data = Bytes.make chunk_size '\000'; refs = Atomic.make 1 } in
    Hashtbl.replace t.chunks idx c;
    t.footprint <- t.footprint + chunk_size;
    account_alloc ();
    c.data

let read_byte t addr =
  match Hashtbl.find_opt t.chunks (chunk_index addr) with
  | Some c -> Bytes.get c.data (chunk_offset addr)
  | None -> '\000'

let write_byte t addr v = Bytes.set (writable_chunk t (chunk_index addr)) (chunk_offset addr) v

let read t addr size =
  let out = Bytes.create size in
  let pos = ref 0 in
  while !pos < size do
    let a = addr + !pos in
    let off = chunk_offset a in
    let len = min (size - !pos) (chunk_size - off) in
    (match Hashtbl.find_opt t.chunks (chunk_index a) with
    | Some c -> Bytes.blit c.data off out !pos len
    | None -> Bytes.fill out !pos len '\000');
    pos := !pos + len
  done;
  out

let write t addr b =
  let size = Bytes.length b in
  let pos = ref 0 in
  while !pos < size do
    let a = addr + !pos in
    let off = chunk_offset a in
    let len = min (size - !pos) (chunk_size - off) in
    Bytes.blit b !pos (writable_chunk t (chunk_index a)) off len;
    pos := !pos + len
  done

let read_i64 t addr = Xfd_util.Bytesx.get_i64 (read t addr 8) 0
let write_i64 t addr v = write t addr (Xfd_util.Bytesx.i64_to_bytes v)

let snapshot t =
  let chunks = Hashtbl.create (max 16 (Hashtbl.length t.chunks)) in
  Hashtbl.iter
    (fun idx c ->
      Atomic.incr c.refs;
      Hashtbl.replace chunks idx c)
    t.chunks;
  { chunks; footprint = t.footprint }

let deep_copy t =
  let chunks = Hashtbl.create (max 16 (Hashtbl.length t.chunks)) in
  Hashtbl.iter
    (fun idx c ->
      Hashtbl.replace chunks idx { data = Bytes.copy c.data; refs = Atomic.make 1 };
      account_alloc ())
    t.chunks;
  { chunks; footprint = t.footprint }

let release t =
  Hashtbl.iter (fun _ c -> release_chunk c) t.chunks;
  Hashtbl.reset t.chunks;
  t.footprint <- 0

let shared_bytes t =
  Hashtbl.fold
    (fun _ c acc -> if Atomic.get c.refs > 1 then acc + chunk_size else acc)
    t.chunks 0

let copy_range ~src ~dst addr size = write dst addr (read src addr size)
let footprint t = t.footprint
let equal_range a b addr size = Bytes.equal (read a addr size) (read b addr size)

let iter_chunks t f =
  let idxs = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.chunks [] in
  List.iter
    (fun idx -> f (idx lsl chunk_bits) (Hashtbl.find t.chunks idx).data)
    (List.sort Int.compare idxs)
