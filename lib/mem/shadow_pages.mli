(** Flat bigarray-backed per-byte shadow metadata pages.

    The dynamic detector and the static analyzer both keep one small record
    per tracked PM byte.  Hash maps keyed by address made every replayed
    event chase pointers; this store packs the hot part of that record into
    a single byte inside 4 KiB pages (one [Bigarray] per page, allocated on
    first touch), with per-page bitmaps so "iterate every writeback-pending
    byte" — the fence hot loop — touches only set bits instead of the whole
    table.

    The packed byte is format-agnostic: bits 0–2 hold a caller-defined
    state (the Fig. 9 persistence FSM for the detector, the [Abs] lattice
    for the lint), and five flag bits are maintained mechanically.  A byte
    whose packed value is 0 is untracked; callers must set {!bit_tracked}
    on any byte they track so the value stays nonzero.  The [tracked] and
    [pending] bits are mirrored into per-page bitmaps and global counts on
    every {!set}.

    Pages are process-globally accounted, like {!Image} chunks: the
    [shadow.page_bytes_live]/[shadow.page_bytes_peak] gauges expose the
    live footprint, and {!release} must be called when a store dies. *)

type t

val page_size : int (* 4096 *)

(** {1 Packed-byte format} *)

val state_of : int -> int
(** Bits 0–2: the caller-defined state, [0..7]. *)

val with_state : int -> int -> int
(** [with_state packed s] replaces the state field. *)

val bit_tracked : int
val bit_pending : int
val bit_flag_a : int
val bit_flag_b : int
val bit_flag_c : int

val has : int -> int -> bool
(** [has packed bit] tests a flag bit (pass one of the [bit_*] masks). *)

(** {1 Store} *)

val create : unit -> t

val release : t -> unit
(** Drop every page and return their bytes to the global accounting.
    Idempotent. *)

val get : t -> Addr.t -> int
(** The packed byte; [0] when untracked / no page. *)

val set : t -> Addr.t -> int -> unit
(** Store a packed byte, keeping the tracked/pending bitmaps and counts in
    sync with the byte's [bit_tracked]/[bit_pending] flags. *)

val tracked_bytes : t -> int
val pending_bytes : t -> int

val pending_addrs : t -> Addr.t list
(** Addresses whose pending bit is set, in increasing order.  Safe to
    {!set} (e.g. clear) while consuming the list. *)

val iter_tracked : t -> (Addr.t -> int -> unit) -> unit
(** [f addr packed] for every tracked byte, in increasing address order.
    The callback must not create pages. *)

val iter_line : t -> Addr.t -> int -> (Addr.t -> int -> unit) -> unit
(** [iter_line t line n f]: [f addr packed] for each of the [n] bytes from
    [line], including untracked ones (packed [0]); never allocates pages.
    The range must not cross a page boundary (cache lines never do). *)

(** {1 Accounting} *)

val live_bytes : unit -> int
val peak_bytes : unit -> int
