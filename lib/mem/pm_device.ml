module Obs = Xfd_obs.Obs

(* Device-level telemetry: every simulated hardware operation counts here,
   whichever layer drives it (frontend, engine snapshots, offline boot). *)
let c_loads = Obs.Counter.make "pm.loads"
let c_load_bytes = Obs.Counter.make "pm.load_bytes"
let c_stores = Obs.Counter.make "pm.stores"
let c_store_bytes = Obs.Counter.make "pm.store_bytes"
let c_nt_stores = Obs.Counter.make "pm.nt_stores"
let c_flushes = Obs.Counter.make "pm.flushes"
let c_fences = Obs.Counter.make "pm.fences"
let c_snapshots = Obs.Counter.make "pm.snapshots"
let c_snapshot_bytes = Obs.Counter.make "pm.snapshot_bytes"
let c_snapshot_shared_bytes = Obs.Counter.make "pm.snapshot_shared_bytes"
let h_snapshot_bytes = Obs.Histogram.make "pm.snapshot_bytes_per_snapshot"
let c_crashes = Obs.Counter.make "pm.crashes"
let c_boots = Obs.Counter.make "pm.boots"

type crash_mode = Full | Strict | Randomized of Xfd_util.Rng.t

type stats = { stores : int; loads : int; flushes : int; fences : int; nt_stores : int }

type t = {
  img : Image.t;
  persisted : Image.t;
  dirty : (Addr.t, unit) Hashtbl.t; (* modified, not captured by a flush *)
  pending : (Addr.t, char) Hashtbl.t; (* captured value awaiting a fence *)
  mutable st : stats;
}

let create () =
  {
    img = Image.create ();
    persisted = Image.create ();
    dirty = Hashtbl.create 256;
    pending = Hashtbl.create 256;
    st = { stores = 0; loads = 0; flushes = 0; fences = 0; nt_stores = 0 };
  }

let image t = t.img
let stats t = t.st

let load t addr size =
  t.st <- { t.st with loads = t.st.loads + 1 };
  Obs.Counter.incr c_loads;
  Obs.Counter.add c_load_bytes size;
  Image.read t.img addr size

let store t addr b =
  t.st <- { t.st with stores = t.st.stores + 1 };
  Obs.Counter.incr c_stores;
  Obs.Counter.add c_store_bytes (Bytes.length b);
  Image.write t.img addr b;
  Addr.iter_bytes addr (Bytes.length b) (fun a -> Hashtbl.replace t.dirty a ())

let load_i64 t addr = Xfd_util.Bytesx.get_i64 (load t addr 8) 0
let store_i64 t addr v = store t addr (Xfd_util.Bytesx.i64_to_bytes v)

let store_nt t addr b =
  t.st <- { t.st with nt_stores = t.st.nt_stores + 1 };
  Obs.Counter.incr c_nt_stores;
  Obs.Counter.add c_store_bytes (Bytes.length b);
  Image.write t.img addr b;
  Addr.iter_bytes addr (Bytes.length b) (fun a ->
      Hashtbl.remove t.dirty a;
      Hashtbl.replace t.pending a (Image.read_byte t.img a))

let capture_line t addr =
  let line = Addr.line_of addr in
  Addr.iter_bytes line Addr.line_size (fun a ->
      if Hashtbl.mem t.dirty a then begin
        Hashtbl.remove t.dirty a;
        Hashtbl.replace t.pending a (Image.read_byte t.img a)
      end)

let clwb t addr =
  t.st <- { t.st with flushes = t.st.flushes + 1 };
  Obs.Counter.incr c_flushes;
  capture_line t addr

let clflush t addr = clwb t addr

let sfence t =
  t.st <- { t.st with fences = t.st.fences + 1 };
  Obs.Counter.incr c_fences;
  Hashtbl.iter (fun a v -> Image.write_byte t.persisted a v) t.pending;
  Hashtbl.reset t.pending

let gpf t =
  t.st <- { t.st with fences = t.st.fences + 1 };
  Obs.Counter.incr c_fences;
  (* The global persistent flush: every dirty byte is captured and the
     whole capture set drained to the persisted image in one barrier. *)
  Hashtbl.iter (fun a () -> Image.write_byte t.persisted a (Image.read_byte t.img a)) t.dirty;
  Hashtbl.reset t.dirty;
  Hashtbl.iter (fun a v -> Image.write_byte t.persisted a v) t.pending;
  Hashtbl.reset t.pending

let dirty_bytes t = Hashtbl.length t.dirty
let pending_bytes t = Hashtbl.length t.pending

let is_persisted_range t addr size =
  let ok = ref true in
  Addr.iter_bytes addr size (fun a ->
      if Hashtbl.mem t.dirty a || Hashtbl.mem t.pending a then ok := false
      else if not (Char.equal (Image.read_byte t.persisted a) (Image.read_byte t.img a))
      then ok := false);
  !ok

let crash t mode =
  Obs.Counter.incr c_crashes;
  match mode with
  | Full -> Image.snapshot t.img
  | Strict -> Image.snapshot t.persisted
  | Randomized rng ->
    (* Start from the guaranteed bytes, then let chance evict or order any
       in-flight line.  Decisions are per cache line, matching hardware:
       eviction writes back whole lines. *)
    let out = Image.snapshot t.persisted in
    let lines = Hashtbl.create 16 in
    Hashtbl.iter (fun a () -> Hashtbl.replace lines (Addr.line_of a) ()) t.dirty;
    Hashtbl.iter (fun a _ -> Hashtbl.replace lines (Addr.line_of a) ()) t.pending;
    Hashtbl.iter
      (fun line () ->
        if Xfd_util.Rng.bool rng then
          Addr.iter_bytes line Addr.line_size (fun a ->
              match Hashtbl.find_opt t.pending a with
              | Some v -> Image.write_byte out a v
              | None ->
                if Hashtbl.mem t.dirty a then
                  Image.write_byte out a (Image.read_byte t.img a)))
      lines;
    out

(* Both layers start as CoW views of the crash image: the booted device's
   architectural content counts as persisted, and the first write to any
   chunk of either layer takes its private copy. *)
let boot img =
  Obs.Counter.incr c_boots;
  {
    img = Image.snapshot img;
    persisted = Image.snapshot img;
    dirty = Hashtbl.create 256;
    pending = Hashtbl.create 256;
    st = { stores = 0; loads = 0; flushes = 0; fences = 0; nt_stores = 0 };
  }

(* [pm.snapshot_bytes] counts the bytes a snapshot copies *eagerly*: for the
   CoW [snapshot] that is only the cache-state delta (dirty + pending byte
   entries) — the images are shared structurally, recorded under
   [pm.snapshot_shared_bytes] — while [deep_snapshot] still pays for both
   full images.  The CI smoke test budgets the per-snapshot eager bytes. *)
let snapshot t =
  let eager = Hashtbl.length t.dirty + Hashtbl.length t.pending in
  Obs.Counter.incr c_snapshots;
  Obs.Counter.add c_snapshot_bytes eager;
  Obs.Histogram.observe h_snapshot_bytes eager;
  Obs.Counter.add c_snapshot_shared_bytes (Image.footprint t.img + Image.footprint t.persisted);
  {
    img = Image.snapshot t.img;
    persisted = Image.snapshot t.persisted;
    dirty = Hashtbl.copy t.dirty;
    pending = Hashtbl.copy t.pending;
    st = t.st;
  }

let deep_snapshot t =
  let copied = Image.footprint t.img + Image.footprint t.persisted in
  Obs.Counter.incr c_snapshots;
  Obs.Counter.add c_snapshot_bytes copied;
  Obs.Histogram.observe h_snapshot_bytes copied;
  {
    img = Image.deep_copy t.img;
    persisted = Image.deep_copy t.persisted;
    dirty = Hashtbl.copy t.dirty;
    pending = Hashtbl.copy t.pending;
    st = t.st;
  }

let release t =
  Image.release t.img;
  Image.release t.persisted;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.pending
