(** Simulated persistent-memory device with a volatile cache model.

    This is the substitute for Intel Optane DCPMM plus the x86 cache
    hierarchy.  The device tracks three layers per byte:

    - the {e architectural} value (what loads return),
    - bytes {e captured} by a flush (CLWB/CLFLUSH/CLFLUSHOPT or an NT store)
      but not yet ordered by a fence ("writeback-pending"),
    - the {e persisted} value, guaranteed to survive a failure.

    A store dirties its bytes; a flush captures the current value of every
    dirty byte in the 64-byte line; an SFENCE promotes all captured bytes to
    persisted.  This mirrors the persistence-state machine of the paper's
    Figure 9.  Because real caches may also evict dirty lines at any time, a
    modified-but-unflushed byte {e may or may not} survive a failure — which
    is exactly why a post-failure read of it is a race.  [crash] exposes the
    three useful crash images: full (the paper's footnote-3 copy), strict
    (only guaranteed bytes), and randomized (one possible interleaving). *)

type t

type crash_mode =
  | Full  (** copy every architectural byte, as XFDetector's frontend does *)
  | Strict  (** keep only bytes guaranteed persistent *)
  | Randomized of Xfd_util.Rng.t
      (** persisted bytes plus a random subset of in-flight cache lines;
          enumerates one legal eviction interleaving *)

val create : unit -> t

(** Architectural loads and stores. *)

val load : t -> Addr.t -> int -> bytes
val store : t -> Addr.t -> bytes -> unit
val load_i64 : t -> Addr.t -> int64
val store_i64 : t -> Addr.t -> int64 -> unit

(** Non-temporal store: bypasses the cache; becomes persistent at the next
    fence without any flush. *)
val store_nt : t -> Addr.t -> bytes -> unit

(** [clwb t addr] captures the dirty bytes of the line containing [addr]. *)
val clwb : t -> Addr.t -> unit

(** CLFLUSH/CLFLUSHOPT have identical persistence effects in this model. *)
val clflush : t -> Addr.t -> unit

(** Order all captured bytes: they become persisted. *)
val sfence : t -> unit

(** Global persistent flush barrier (CXL): capture every dirty byte and
    drain the whole capture set to the persisted image in one step.
    Counted as a fence in the device stats. *)
val gpf : t -> unit

(** Number of bytes currently modified but not captured by any flush. *)
val dirty_bytes : t -> int

(** Number of bytes captured but not yet fenced. *)
val pending_bytes : t -> int

(** [is_persisted_range t addr size] is true when every byte of the range is
    guaranteed durable (persisted value equals architectural value and the
    byte is neither dirty nor pending). *)
val is_persisted_range : t -> Addr.t -> int -> bool

(** Build the PM image that a failure at this instant would leave behind.
    The image shares chunks with the device copy-on-write, so this is
    O(chunk-table + in-flight lines); actual byte copies are deferred to
    whoever writes first. *)
val crash : t -> crash_mode -> Image.t

(** A fresh device booted from a crash image: empty caches, image and
    persisted layers both equal to [img] (shared copy-on-write, so booting
    is O(chunk-table)). *)
val boot : Image.t -> t

(** Copy-on-write snapshot of the whole device, used by the
    failure-injection frontend at failure points: the images are shared
    structurally (O(chunk-table)) and only the cache-state delta — the
    dirty and writeback-pending byte sets — is copied eagerly.  Mutations
    of either side are invisible to the other, exactly as with
    {!deep_snapshot}. *)
val snapshot : t -> t

(** The legacy eager snapshot: deep-copies both images up front.  Kept as
    the baseline for the snapshotting benchmarks and as the oracle the CoW
    equivalence tests compare against. *)
val deep_snapshot : t -> t

(** Drop the device's chunk references and cache state (see
    {!Image.release}).  Optional — GC-safe without it — but keeps the
    process-wide chunk accounting exact; the engine releases each snapshot
    as soon as its failure point has been processed. *)
val release : t -> unit

(** Direct access to the architectural image (read-only uses only). *)
val image : t -> Image.t

type stats = { stores : int; loads : int; flushes : int; fences : int; nt_stores : int }

val stats : t -> stats
