module Loc = Xfd_util.Loc
module Provenance = Xfd_forensics.Provenance

type race = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Loc.t;
  write_loc : Loc.t;
  uninit : bool;
  provenance : Provenance.t option;
}

type semantic = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Loc.t;
  write_loc : Loc.t;
  status : Cstate.t;
  provenance : Provenance.t option;
}

type perf = {
  addr : Xfd_mem.Addr.t;
  loc : Loc.t;
  waste : [ `Flush of Pstate.flush_waste | `Duplicate_tx_add ];
  provenance : Provenance.t option;
}

type bug =
  | Race of race
  | Semantic of semantic
  | Perf of perf
  | Post_failure_error of { exn : string; failure_point : int }

type failure_report = { failure_point : int; trace_pos : int; bugs : bug list }

let is_race = function Race _ -> true | Semantic _ | Perf _ | Post_failure_error _ -> false
let is_semantic = function Semantic _ -> true | Race _ | Perf _ | Post_failure_error _ -> false
let is_perf = function Perf _ -> true | Race _ | Semantic _ | Post_failure_error _ -> false

let is_post_error = function
  | Post_failure_error _ -> true
  | Race _ | Semantic _ | Perf _ -> false

let provenance = function
  | Race { provenance; _ } | Semantic { provenance; _ } | Perf { provenance; _ } ->
    provenance
  | Post_failure_error _ -> None

(* The fields that define a bug's *identity*: kind, program points and the
   kind-specific qualifier.  Everything else — addr, size and in particular
   the provenance chain — is deliberately never inspected here, so enabling
   forensics (--explain) cannot perturb deduplication by construction: the
   key is derived from this projection and nothing else. *)
let identity = function
  | Race { read_loc; write_loc; uninit; _ } ->
    (`Race, Loc.to_string read_loc, Loc.to_string write_loc, string_of_bool uninit)
  | Semantic { read_loc; write_loc; status; _ } ->
    (`Semantic, Loc.to_string read_loc, Loc.to_string write_loc, Cstate.to_string status)
  | Perf { loc; waste; _ } ->
    let w =
      match waste with
      | `Flush Pstate.Double_flush -> "double-flush"
      | `Flush Pstate.Unnecessary_flush -> "unnecessary-flush"
      | `Duplicate_tx_add -> "duplicate-tx-add"
    in
    (`Perf, Loc.to_string loc, "", w)
  | Post_failure_error { exn; _ } -> (`Post_error, exn, "", "")

let dedup_key bug =
  match identity bug with
  | `Race, r, w, uninit -> Printf.sprintf "race:%s:%s:%s" r w uninit
  | `Semantic, r, w, status -> Printf.sprintf "semantic:%s:%s:%s" r w status
  | `Perf, l, _, w -> Printf.sprintf "perf:%s:%s" l w
  | `Post_error, exn, _, _ -> Printf.sprintf "post-error:%s" exn

let pp_bug ppf = function
  | Race { addr; size; read_loc; write_loc; uninit; _ } ->
    Format.fprintf ppf "CROSS-FAILURE RACE%s: post-failure read at %a of %a+%d; last pre-failure writer %a"
      (if uninit then " (uninitialised allocation)" else "")
      Loc.pp read_loc Xfd_mem.Addr.pp addr size Loc.pp write_loc
  | Semantic { addr; size; read_loc; write_loc; status; _ } ->
    Format.fprintf ppf
      "CROSS-FAILURE SEMANTIC BUG (%a): post-failure read at %a of %a+%d; last pre-failure writer %a"
      Cstate.pp status Loc.pp read_loc Xfd_mem.Addr.pp addr size Loc.pp write_loc
  | Perf { addr; loc; waste; _ } ->
    let w =
      match waste with
      | `Flush Pstate.Double_flush -> "redundant writeback (line already pending)"
      | `Flush Pstate.Unnecessary_flush -> "unnecessary writeback (line clean)"
      | `Duplicate_tx_add -> "duplicated TX_ADD for the same object"
    in
    Format.fprintf ppf "PERFORMANCE BUG: %s at %a (%a)" w Loc.pp loc Xfd_mem.Addr.pp addr
  | Post_failure_error { exn; failure_point } ->
    Format.fprintf ppf "POST-FAILURE ERROR at failure point %d: %s" failure_point exn

let pp_bug_explained ppf bug =
  Format.fprintf ppf "%a@." pp_bug bug;
  match provenance bug with
  | None -> ()
  | Some p ->
    (* Indent the chain under the bug line. *)
    let body = Format.asprintf "%a" Provenance.pp p in
    String.split_on_char '\n' body
    |> List.iter (fun line -> if line <> "" then Format.fprintf ppf "    %s@." line)

let pp_failure_report ppf { failure_point; trace_pos; bugs } =
  Format.fprintf ppf "failure point %d (trace position %d): %d finding(s)@." failure_point
    trace_pos (List.length bugs);
  List.iter (fun b -> Format.fprintf ppf "  %a@." pp_bug b) bugs

let loc_json (loc : Loc.t) =
  Xfd_util.Json.Obj [ ("file", Xfd_util.Json.Str loc.Loc.file); ("line", Xfd_util.Json.Int loc.Loc.line) ]

let provenance_json = function
  | None -> []
  | Some p -> [ ("provenance", Provenance.to_json p) ]

let bug_to_json bug =
  let open Xfd_util.Json in
  match bug with
  | Race { addr; size; read_loc; write_loc; uninit; provenance } ->
    Obj
      ([
         ("kind", Str "cross-failure-race");
         ("uninitialised", Bool uninit);
         ("addr", Str (Printf.sprintf "0x%x" addr));
         ("size", Int size);
         ("read", loc_json read_loc);
         ("last_writer", loc_json write_loc);
       ]
      @ provenance_json provenance)
  | Semantic { addr; size; read_loc; write_loc; status; provenance } ->
    Obj
      ([
         ("kind", Str "cross-failure-semantic-bug");
         ("status", Str (Cstate.to_string status));
         ("addr", Str (Printf.sprintf "0x%x" addr));
         ("size", Int size);
         ("read", loc_json read_loc);
         ("last_writer", loc_json write_loc);
       ]
      @ provenance_json provenance)
  | Perf { addr; loc; waste; provenance } ->
    let w =
      match waste with
      | `Flush Pstate.Double_flush -> "redundant-writeback"
      | `Flush Pstate.Unnecessary_flush -> "unnecessary-writeback"
      | `Duplicate_tx_add -> "duplicate-tx-add"
    in
    Obj
      ([
         ("kind", Str "performance-bug");
         ("waste", Str w);
         ("addr", Str (Printf.sprintf "0x%x" addr));
         ("at", loc_json loc);
       ]
      @ provenance_json provenance)
  | Post_failure_error { exn; failure_point } ->
    Obj
      [
        ("kind", Str "post-failure-error");
        ("exception", Str exn);
        ("failure_point", Int failure_point);
      ]

let failure_report_to_json { failure_point; trace_pos; bugs } =
  Xfd_util.Json.Obj
    [
      ("failure_point", Xfd_util.Json.Int failure_point);
      ("trace_pos", Xfd_util.Json.Int trace_pos);
      ("bugs", Xfd_util.Json.Arr (List.map bug_to_json bugs));
    ]
