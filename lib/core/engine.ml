module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Trace = Xfd_trace.Trace
module Obs = Xfd_obs.Obs
module Flight = Xfd_flight.Flight

type program = {
  name : string;
  setup : Ctx.t -> unit;
  pre : Ctx.t -> unit;
  post : Ctx.t -> unit;
}

type progress = { completed : int; total : int }

type timings = {
  pre_exec : float;
  post_exec : float;
  pre_replay : float;
  post_replay : float;
  snapshotting : float;
}

type outcome = {
  program : string;
  failure_points : int;
  reports : Report.failure_report list;
  unique_bugs : Report.bug list;
  pre_events : int;
  post_events : int;
  timings : timings;
  spans : Obs.Span.record list;
  coverage : Xfd_forensics.Coverage.t;
}

(* A failure point is just (arena index, delta journal): [trace_pos] names
   the prefix of the flat event arena, and the per-point shadow divergence
   is journaled inside the detector.  [dev_id] is the snapshot device's
   slot in the run's cleanup registry (released exactly once, even when
   the run aborts before consuming it). *)
type snapshot = { index : int; trace_pos : int; dev : Device.t; dev_id : int }

let c_runs = Obs.Counter.make "engine.runs"
let g_peak_image = Obs.Gauge.make "engine.peak_image_bytes"

(* Prefix sharing accounting.  [engine.pre_replay_events] counts pre-failure
   events actually replayed into a shadow; [engine.prefix_reuse_events]
   counts the events each failure point inherited from the canonical prefix
   instead of re-replaying (what `Fresh` mode would have replayed again).
   The CI perf gate checks incremental pre-replay stays a small fraction of
   fresh mode's. *)
let c_pre_replay = Obs.Counter.make "engine.pre_replay_events"
let c_prefix_reuse = Obs.Counter.make "engine.prefix_reuse_events"
let c_fp_fired = Obs.Counter.make "engine.failure_points.fired"
let c_fp_elided = Obs.Counter.make "engine.failure_points.elided"
let c_bug_post_error = Obs.Counter.make "bugs.post_failure_error"
let c_unique_bugs = Obs.Counter.make "engine.unique_bugs"
let h_pre_events = Obs.Histogram.make "engine.pre_trace_events"
let h_post_events = Obs.Histogram.make "engine.post_trace_events_per_run"

(* Span names of the detection pipeline's phases.  [timings] is *derived*
   from these spans (see [timings_of_spans]), so the Figure 12 breakdown is
   span aggregation — there is no second, hand-rolled timing path that
   could drift. *)
let sp_detect = "detect"
let sp_pre_exec = "pre_exec"
let sp_snapshot = "snapshot"
let sp_post_exec = "post_exec"
let sp_post_run = "post_run"
let sp_pre_replay = "pre_replay"
let sp_post_replay = "post_replay"

let timings_of_spans spans =
  let total name =
    List.fold_left
      (fun acc (r : Obs.Span.record) -> if String.equal r.Obs.Span.name name then acc +. r.Obs.Span.dur else acc)
      0.0 spans
  in
  let snapshotting = total sp_snapshot in
  {
    (* Snapshots are taken inside the pre-failure execution (the failure-
       point hook fires mid-[pre]), so their cost is carved out of the
       enclosing span, as the legacy accumulator did. *)
    pre_exec = Float.max 0.0 (total sp_pre_exec -. snapshotting);
    post_exec = total sp_post_exec;
    pre_replay = total sp_pre_replay;
    post_replay = total sp_post_replay;
    snapshotting;
  }

(* Exceptions that indicate a broken harness or an exhausted runtime rather
   than a finding about the program under test: these abort detection and
   propagate (from worker domains too, via the capture-and-rejoin path)
   instead of being recorded as [Post_failure_error]. *)
let fatal = function
  | Assert_failure _ | Out_of_memory | Stack_overflow -> true
  | _ -> false

let run_post ~config ~dev ~post =
  let trace = Trace.create () in
  let ctx =
    Ctx.create ~trust_library:config.Config.trust_library ~stage:Ctx.Post_failure ~dev
      ~trace ()
  in
  let exn =
    match post ctx with
    | () -> None
    | exception Ctx.Detection_complete -> None
    | exception e when not (fatal e) -> Some (Printexc.to_string e)
  in
  (trace, exn)

(* The full Figure 7 pipeline.  With [only = Some k] every failure point is
   numbered and elided exactly as in a full run, but only the point with
   ordinal [k] is snapshotted and post-executed — the single-failure-point
   oracle entry behind [detect_at], used by the fuzzer's shrinker and corpus
   replay to re-check one verdict cheaply. *)
let detect_gen ?only ?priority ?on_progress ?(config = Config.default) program =
  Config.validate config;
  Obs.Counter.incr c_runs;
  Xfd_mem.Image.reset_peak ();
  let (_ : string) = Flight.begin_run ~program:program.name in
  let mark = Obs.Span.mark () in
  let cov_mark = Xfd_forensics.Coverage.mark () in
  (* Progress is observation-only: the callback sees counts, never state,
     and anything it raises is swallowed — it cannot perturb detection.
     With [post_jobs > 1] it is invoked from whichever worker domain
     finished the run, so callers must be domain-safe. *)
  let notify_progress completed total =
    match on_progress with
    | None -> ()
    | Some f -> ( try f { completed; total } with _ -> ())
  in
  (* Cleanup registry: every resource the pipeline owns (devices, snapshot
     deltas, detector shadow pages) is registered here and disposed exactly
     once — on the normal path at its usual point, or by [dispose_all] when
     the run aborts.  Worker domains release through the same registry, so
     the mutex also orders racing disposals. *)
  let cleanup_mu = Mutex.create () in
  let cleanups : (int, unit -> unit) Hashtbl.t = Hashtbl.create 32 in
  let cleanup_next = ref 0 in
  let locked f =
    Mutex.lock cleanup_mu;
    let r = try f () with e -> Mutex.unlock cleanup_mu; raise e in
    Mutex.unlock cleanup_mu;
    r
  in
  let track release =
    locked (fun () ->
        incr cleanup_next;
        let id = !cleanup_next in
        Hashtbl.replace cleanups id release;
        id)
  in
  let dispose id =
    match
      locked (fun () ->
          match Hashtbl.find_opt cleanups id with
          | Some f ->
            Hashtbl.remove cleanups id;
            Some f
          | None -> None)
    with
    | Some f -> f ()
    | None -> ()
  in
  let dispose_all () =
    let fs = locked (fun () ->
        let fs = Hashtbl.fold (fun _ f acc -> f :: acc) cleanups [] in
        Hashtbl.reset cleanups;
        fs)
    in
    List.iter (fun f -> try f () with _ -> ()) fs
  in
  let reports, unique_bugs, n_failure_points, pre_events, post_events =
    try
    Obs.Span.with_ ~name:sp_detect
      ~meta:[ ("program", Xfd_util.Json.Str program.name) ]
      (fun () ->
        let dev = Device.create () in
        let dev_cleanup = track (fun () -> Device.release dev) in
        let trace = Trace.create () in
        let snapshots = ref [] and fired = ref 0 in
        let last_ops = ref 0 in
        (* Lightweight CoW snapshot of the device at the current trace
           position: O(delta since the previous failure point), the crash
           image is materialised later inside the post run.  [fired] counts
           every failure point a full run would snapshot, so ordinals are
           stable whether or not [only] filters the actual snapshots. *)
        let record_snapshot () =
          (match only with
          | Some k when k <> !fired -> ()
          | Some _ | None ->
            Obs.Span.with_ ~name:sp_snapshot (fun () ->
                let snap = Device.snapshot dev in
                snapshots :=
                  {
                    index = !fired;
                    trace_pos = Trace.length trace;
                    dev = snap;
                    dev_id = track (fun () -> Device.release snap);
                  }
                  :: !snapshots);
            Flight.record ~level:Flight.Debug "snapshot.recorded"
              [
                ("failure_point", Xfd_util.Json.Int !fired);
                ("trace_pos", Xfd_util.Json.Int (Trace.length trace));
              ]);
          Flight.record ~level:Flight.Debug "fp.scheduled"
            [ ("failure_point", Xfd_util.Json.Int !fired) ];
          incr fired;
          Obs.Counter.incr c_fp_fired
        in
        let take_snapshot ctx =
          if
            !fired < config.Config.max_failure_points
            && Ctx.update_ops ctx > !last_ops
          then begin
            last_ops := Ctx.update_ops ctx;
            record_snapshot ()
          end
          else begin
            Flight.record ~level:Flight.Debug "snapshot.dropped"
              [ ("after_failure_point", Xfd_util.Json.Int (!fired - 1)) ];
            Obs.Counter.incr c_fp_elided
          end
        in
        Xfd_sim.Faults.reset config.Config.faults;
        let ctx =
          Ctx.create ~faults:config.Config.faults ~strategy:config.Config.strategy
            ~trust_library:config.Config.trust_library ~on_failure_point:take_snapshot
            ~stage:Ctx.Pre_failure ~dev ~trace ()
        in
        Obs.Span.with_ ~name:sp_pre_exec (fun () ->
            program.setup ctx;
            (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
            (* One terminal failure point: the state in which the pre-failure
               stage ran to completion must recover cleanly too. *)
            if config.Config.inject_terminal_fp && Ctx.update_ops ctx > !last_ops then
              record_snapshot ());
        let snapshots = List.rev !snapshots in
        let commit_at =
          match config.Config.crash_mode with `Full -> `Write | `Strict -> `Persist
        in
        let make_detector () =
          let d =
            Detector.create ~check_perf:config.Config.check_perf ~commit_at
              ~forensics:config.Config.forensics ~domain:config.Config.domain ()
          in
          (d, track (fun () -> Detector.release d))
        in
        let detector, detector_cleanup = make_detector () in
        let pre_pos = ref 0 in
        let post_events = ref 0 in
        let crash_mode =
          match config.Config.crash_mode with `Full -> Device.Full | `Strict -> Device.Strict
        in
        (* One post-failure execution per failure point.  The executions are
           independent (each runs on its own copy of the PM image), so with
           post_jobs > 1 they run on a small domain pool — the parallelisation
           the paper leaves as future work.  Trace replay and checking stay
           sequential: the backend's shadow forks off the incrementally-advanced
           pre-failure state. *)
        let run_one s =
          Flight.record ~level:Flight.Debug "fp.started"
            [ ("failure_point", Xfd_util.Json.Int s.index) ];
          Obs.Span.with_ ~name:sp_post_run
            ~meta:[ ("failure_point", Xfd_util.Json.Int s.index) ]
            (fun () ->
              (* Materialise this failure point's private crash image here,
                 in the (possibly worker-domain) post run: shared chunks are
                 immutable, so concurrent materialisation is race-free, and
                 the snapshot's delta is dropped as soon as it has been
                 consumed — peak memory stays O(live deltas). *)
              let crash_img = Device.crash s.dev crash_mode in
              let post_dev = Device.boot crash_img in
              Xfd_mem.Image.release crash_img;
              dispose s.dev_id;
              let post_id = track (fun () -> Device.release post_dev) in
              (* A fatal post-failure exception propagates out of the
                 worker; the registry still frees this run's device. *)
              Fun.protect
                ~finally:(fun () -> dispose post_id)
                (fun () -> run_post ~config ~dev:post_dev ~post:program.post))
        in
        let post_runs =
          Obs.Span.with_ ~name:sp_post_exec (fun () ->
              let n = List.length snapshots in
              let jobs = max 1 (min config.Config.post_jobs n) in
              let progress_done = Atomic.make 0 in
              let run_one s =
                let r = run_one s in
                notify_progress (1 + Atomic.fetch_and_add progress_done 1) n;
                r
              in
              notify_progress 0 n;
              (* Execution order of the post-failure runs.  The runs are
                 independent (each on its own image copy) and results are
                 re-associated with their snapshot by slot below, while
                 replay stays in trace order — so a [priority] hook reorders
                 work (highest score first, ties keep failure-point order)
                 without being able to change the verdict set.  A hook that
                 raises or returns the wrong arity is ignored. *)
              let perm =
                let identity = Array.init n (fun i -> i) in
                match priority with
                | None -> identity
                | Some f -> (
                  match f (List.map (fun s -> (s.index, s.trace_pos)) snapshots) with
                  | exception _ -> identity
                  | scores when List.length scores = n ->
                    let scores = Array.of_list scores in
                    let order = Array.init n (fun i -> i) in
                    Array.stable_sort (fun a b -> compare scores.(b) scores.(a)) order;
                    order
                  | _ -> identity)
              in
              if jobs = 1 && Option.is_none priority then List.map run_one snapshots
              else begin
                let input = Array.of_list snapshots in
                let output = Array.make n None in
                let next = Atomic.make 0 in
                (* Workers never die mid-queue: each item's exception is
                   captured in its slot and the first one (in failure-point
                   order) re-raised after every domain has joined. *)
                let worker () =
                  let rec go () =
                    let k = Atomic.fetch_and_add next 1 in
                    if k < n then begin
                      let i = perm.(k) in
                      output.(i) <-
                        Some
                          (try Ok (run_one input.(i))
                           with e -> Error (e, Printexc.get_raw_backtrace ()));
                      go ()
                    end
                  in
                  go ()
                in
                let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
                worker ();
                List.iter Domain.join domains;
                Flight.record ~level:Flight.Debug "worker.join"
                  [ ("jobs", Xfd_util.Json.Int jobs); ("runs", Xfd_util.Json.Int n) ];
                Array.iter
                  (function
                    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
                    | Some (Ok _) | None -> ())
                  output;
                Array.to_list output
                |> List.map (function Some (Ok r) -> r | Some (Error _) | None -> assert false)
              end)
        in
        (* The prefix-sharing scheduler.  `Incremental advances the single
           canonical shadow to each failure point's arena index — O(delta)
           per point — and forks a journaled divergence for the post
           replay.  `Fresh is the quadratic oracle: a brand-new detector
           replays events [0 .. pos) at every point, so verdicts can be
           compared against recomputed-from-scratch state. *)
        let pre_replay_for s =
          let fp_meta = [ ("failure_point", Xfd_util.Json.Int s.index) ] in
          match config.Config.engine with
          | `Incremental ->
            Obs.Span.with_ ~name:sp_pre_replay ~meta:fp_meta (fun () ->
                Obs.Counter.add c_prefix_reuse !pre_pos;
                Obs.Counter.add c_pre_replay (max 0 (s.trace_pos - !pre_pos));
                Detector.replay detector trace ~from:!pre_pos ~upto:s.trace_pos;
                pre_pos := s.trace_pos);
            (detector, None)
          | `Fresh ->
            let det, cleanup = make_detector () in
            Obs.Span.with_ ~name:sp_pre_replay ~meta:fp_meta (fun () ->
                Obs.Counter.add c_pre_replay s.trace_pos;
                Detector.replay det trace ~from:0 ~upto:s.trace_pos);
            (det, Some cleanup)
        in
        let reports =
          List.map2
            (fun s (post_trace, post_exn) ->
              let fp_meta = [ ("failure_point", Xfd_util.Json.Int s.index) ] in
              let det, det_cleanup = pre_replay_for s in
              post_events := !post_events + Trace.length post_trace;
              Obs.Histogram.observe h_post_events (Trace.length post_trace);
              let fork_bugs =
                Obs.Span.with_ ~name:sp_post_replay ~meta:fp_meta (fun () ->
                    let fork = Detector.fork_for_post det in
                    Detector.replay fork post_trace ~from:0
                      ~upto:(Trace.length post_trace);
                    let bugs = Detector.bugs fork in
                    Detector.rewind fork;
                    bugs)
              in
              Option.iter dispose det_cleanup;
              let bugs =
                fork_bugs
                @
                match post_exn with
                | Some exn ->
                  Obs.Counter.incr c_bug_post_error;
                  [ Report.Post_failure_error { exn; failure_point = s.index } ]
                | None -> []
              in
              Flight.record ~level:Flight.Info "fp.verdict"
                [
                  ("failure_point", Xfd_util.Json.Int s.index);
                  ("bugs", Xfd_util.Json.Int (List.length bugs));
                ];
              { Report.failure_point = s.index; trace_pos = s.trace_pos; bugs })
            snapshots post_runs
        in
        (* Pre-failure bugs (performance findings fire during pre replay):
           finish the canonical prefix, or rebuild it whole in oracle
           mode. *)
        let base_bugs =
          match config.Config.engine with
          | `Incremental ->
            Obs.Span.with_ ~name:sp_pre_replay (fun () ->
                Obs.Counter.add c_prefix_reuse !pre_pos;
                Obs.Counter.add c_pre_replay (max 0 (Trace.length trace - !pre_pos));
                Detector.replay detector trace ~from:!pre_pos ~upto:(Trace.length trace));
            Detector.bugs detector
          | `Fresh ->
            let det, cleanup = make_detector () in
            Obs.Span.with_ ~name:sp_pre_replay (fun () ->
                Obs.Counter.add c_pre_replay (Trace.length trace);
                Detector.replay det trace ~from:0 ~upto:(Trace.length trace));
            let bugs = Detector.bugs det in
            dispose cleanup;
            bugs
        in
        let dedup = Hashtbl.create 64 in
        let unique_bugs =
          List.concat_map (fun r -> r.Report.bugs) reports @ base_bugs
          |> List.filter (fun b ->
                 let key = Report.dedup_key b in
                 if Hashtbl.mem dedup key then false
                 else begin
                   Hashtbl.replace dedup key ();
                   true
                 end)
        in
        Obs.Counter.add c_unique_bugs (List.length unique_bugs);
        Obs.Histogram.observe h_pre_events (Trace.length trace);
        dispose dev_cleanup;
        dispose detector_cleanup;
        (reports, unique_bugs, List.length snapshots, Trace.length trace, !post_events))
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      (* Every still-registered resource — the live device, unconsumed
         snapshot deltas, worker post-devices, detector shadow pages — is
         released before the abort propagates, so an aborted run leaks no
         chunk or page bytes. *)
      dispose_all ();
      Flight.record ~level:Flight.Warn "run.abort"
        [ ("exn", Xfd_util.Json.Str (Printexc.to_string e)) ];
      Printexc.raise_with_backtrace e bt
  in
  Obs.Gauge.set g_peak_image (float_of_int (Xfd_mem.Image.peak_bytes ()));
  let spans = Obs.Span.records_since mark in
  Flight.end_run
    [
      ("program", Xfd_util.Json.Str program.name);
      ("failure_points", Xfd_util.Json.Int n_failure_points);
      ("unique_bugs", Xfd_util.Json.Int (List.length unique_bugs));
      ("pre_events", Xfd_util.Json.Int pre_events);
      ("post_events", Xfd_util.Json.Int post_events);
    ];
  {
    program = program.name;
    failure_points = n_failure_points;
    reports;
    unique_bugs;
    pre_events;
    post_events;
    timings = timings_of_spans spans;
    spans;
    coverage = Xfd_forensics.Coverage.since cov_mark;
  }

let detect ?config ?priority ?on_progress program =
  detect_gen ?config ?priority ?on_progress program

let detect_at ?config ~failure_point program =
  detect_gen ~only:failure_point ?config program

let wall_breakdown o =
  let t = o.timings in
  (t.pre_exec +. t.pre_replay +. t.snapshotting, t.post_exec +. t.post_replay)

let total_wall o =
  let pre, post = wall_breakdown o in
  pre +. post

let tally o =
  List.fold_left
    (fun (r, s, p, e) b ->
      if Report.is_race b then (r + 1, s, p, e)
      else if Report.is_semantic b then (r, s + 1, p, e)
      else if Report.is_perf b then (r, s, p + 1, e)
      else (r, s, p, e + 1))
    (0, 0, 0, 0) o.unique_bugs

(* Wall-time [f] through the span machinery (the engine's only clock), so
   the baselines need no timing path of their own. *)
let timed_span name f =
  let mark = Obs.Span.mark () in
  Obs.Span.with_ ~name f;
  List.fold_left
    (fun acc (r : Obs.Span.record) ->
      if String.equal r.Obs.Span.name name then acc +. r.Obs.Span.dur else acc)
    0.0
    (Obs.Span.records_since mark)

let run_traced program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
  timed_span "run_traced" (fun () ->
      program.setup ctx;
      (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
      let post_dev = Device.boot (Device.crash dev Device.Full) in
      let post_trace = Trace.create () in
      let post_ctx = Ctx.create ~stage:Ctx.Post_failure ~dev:post_dev ~trace:post_trace () in
      match program.post post_ctx with
      | () -> ()
      | exception Ctx.Detection_complete -> ())

let run_original program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~tracing:false ~stage:Ctx.Pre_failure ~dev ~trace () in
  timed_span "run_original" (fun () ->
      program.setup ctx;
      (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
      let post_dev = Device.boot (Device.crash dev Device.Full) in
      let post_ctx =
        Ctx.create ~tracing:false ~stage:Ctx.Post_failure ~dev:post_dev ~trace ()
      in
      match program.post post_ctx with
      | () -> ()
      | exception Ctx.Detection_complete -> ())

let pp_outcome ppf o =
  let races, semantics, perf, errors = tally o in
  Format.fprintf ppf "== %s: %d failure point(s), %d unique finding(s) ==@." o.program
    o.failure_points (List.length o.unique_bugs);
  Format.fprintf ppf "   races=%d semantic=%d performance=%d post-failure-errors=%d@."
    races semantics perf errors;
  List.iter
    (fun b -> Format.fprintf ppf "   %a@." Report.pp_bug b)
    o.unique_bugs

let outcome_to_json o =
  let open Xfd_util.Json in
  let races, semantics, perf, errors = tally o in
  let pre, post = wall_breakdown o in
  Obj
    [
      ("program", Str o.program);
      ("failure_points", Int o.failure_points);
      ( "summary",
        Obj
          [
            ("races", Int races);
            ("semantic_bugs", Int semantics);
            ("performance_bugs", Int perf);
            ("post_failure_errors", Int errors);
          ] );
      ("unique_bugs", Arr (List.map Report.bug_to_json o.unique_bugs));
      ("reports", Arr (List.map Report.failure_report_to_json o.reports));
      ( "stats",
        Obj
          [
            ("pre_events", Int o.pre_events);
            ("post_events", Int o.post_events);
            ("pre_wall_seconds", Float pre);
            ("post_wall_seconds", Float post);
          ] );
      ( "timings",
        Obj
          [
            ("pre_exec_s", Float o.timings.pre_exec);
            ("post_exec_s", Float o.timings.post_exec);
            ("pre_replay_s", Float o.timings.pre_replay);
            ("post_replay_s", Float o.timings.post_replay);
            ("snapshotting_s", Float o.timings.snapshotting);
          ] );
      ( "spans",
        Obj
          (List.map
             (fun (name, (count, total)) ->
               (name, Obj [ ("count", Int count); ("total_s", Float total) ]))
             (Obs.Span.aggregate o.spans)) );
      ("coverage", Xfd_forensics.Coverage.to_json o.coverage);
    ]
