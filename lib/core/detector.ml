module Addr = Xfd_mem.Addr
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Loc = Xfd_util.Loc
module Obs = Xfd_obs.Obs
module History = Xfd_forensics.History
module Provenance = Xfd_forensics.Provenance

let c_replayed = Obs.Counter.make "detector.replayed_events"
let c_checked_bytes = Obs.Counter.make "detector.checked_bytes"

(* Bytes stored by replayed pre-failure writes inside the RoI: the
   denominator of the coverage report's read-checked ratio. *)
let c_written_bytes = Obs.Counter.make "detector.written_bytes"

(* Bug *emissions*: one per deduplicated report of each detector instance,
   so the same programming error surfacing at several failure points counts
   once per failure point.  [bugs.post_failure_error] lives in the engine. *)
let c_bug_race = Obs.Counter.make "bugs.race"
let c_bug_semantic = Obs.Counter.make "bugs.semantic"
let c_bug_perf = Obs.Counter.make "bugs.perf"

type t = {
  shadow : Shadow_pm.t;
  registry : Commit_registry.t;
  check_perf : bool;
  defer_commits : bool;
  forensics : bool;
  post : bool;
  mutable ts : int;
  mutable in_roi : bool;
  mutable skip_depth : int;
  mutable tx_active : bool;
  mutable tx_added : (Addr.t * int) list;
  mutable bugs_rev : Report.bug list;
  dedup : (string, unit) Hashtbl.t;
  checked : (Addr.t, unit) Hashtbl.t;
  (* Traces provenance chains resolve against: the shared pre-failure trace
     (set when the base detector replays it; inherited by forks) and the
     trace currently being replayed into this instance. *)
  mutable pre_trace : Trace.t option;
  mutable cur_trace : Trace.t option;
}

let create ?(check_perf = true) ?(commit_at = `Write) ?(forensics = false)
    ?(domain = Xfd_trace.Domain_model.Adr) () =
  {
    shadow = Shadow_pm.create ~forensics ~domain ();
    registry = Commit_registry.create ();
    check_perf;
    defer_commits = (commit_at = `Persist);
    forensics;
    post = false;
    ts = 0;
    in_roi = false;
    skip_depth = 0;
    tx_active = false;
    tx_added = [];
    bugs_rev = [];
    dedup = Hashtbl.create 64;
    checked = Hashtbl.create 256;
    pre_trace = None;
    cur_trace = None;
  }

let fork_for_post t =
  let registry = Commit_registry.clone t.registry in
  (* In persist-time mode, commit writes that never persisted before the
     failure are discarded: the strict image does not contain them. *)
  if t.defer_commits then Commit_registry.drop_pending registry;
  {
    shadow = Shadow_pm.overlay t.shadow;
    registry;
    check_perf = t.check_perf;
    defer_commits = t.defer_commits;
    forensics = t.forensics;
    post = true;
    ts = t.ts;
    (* The post-failure program runs from its own entry point: RoI and skip
       annotations come from its own trace. *)
    in_roi = false;
    skip_depth = 0;
    tx_active = false;
    tx_added = [];
    bugs_rev = [];
    dedup = Hashtbl.create 16;
    checked = Hashtbl.create 64;
    pre_trace = t.pre_trace;
    cur_trace = None;
  }

let bugs t = List.rev t.bugs_rev
let timestamp t = t.ts
let probe t addr = Shadow_pm.find t.shadow addr
let registry t = t.registry
let shadow t = t.shadow
let rewind t = Shadow_pm.rewind t.shadow
let release t = Shadow_pm.release t.shadow

let record t bug =
  let key = Report.dedup_key bug in
  if not (Hashtbl.mem t.dedup key) then begin
    Hashtbl.replace t.dedup key ();
    (match bug with
    | Report.Race _ -> Obs.Counter.incr c_bug_race
    | Report.Semantic _ -> Obs.Counter.incr c_bug_semantic
    | Report.Perf _ -> Obs.Counter.incr c_bug_perf
    | Report.Post_failure_error _ -> ());
    t.bugs_rev <- bug :: t.bugs_rev
  end

let checking t = t.in_roi && t.skip_depth = 0

(* Outcome of checking one byte of a post-failure read. *)
type finding = Ok_read | Racy of { writer : Loc.t; uninit : bool } | Inconsistent of { writer : Loc.t; status : Cstate.t }

let check_byte t a =
  if Hashtbl.mem t.checked a then Ok_read
  else begin
    Hashtbl.replace t.checked a ();
    Obs.Counter.incr c_checked_bytes;
    if Commit_registry.is_commit_byte t.registry a then Ok_read (* benign race *)
    else begin
      match Shadow_pm.find t.shadow a with
      | None -> Ok_read (* never touched before the failure *)
      | Some c ->
        if c.Shadow_pm.post_written then Ok_read
        else if c.Shadow_pm.uninit then
          (* An allocated-but-never-initialised location cannot be
             semantically consistent, whatever commit window covers it. *)
          Racy { writer = c.Shadow_pm.writer; uninit = true }
        else begin
          (* Eq. 3 orders W(m) before C(x) by *persistence*: a byte can only
             count as semantically consistent once it is guaranteed durable,
             so the persistence check comes first (this is also what the
             paper's Figure 11 walkthrough reports at F1: modified data
             races even though its commit window looks right). *)
          match c.Shadow_pm.pstate with
          | Pstate.Modified | Pstate.Writeback_pending ->
            Racy { writer = c.Shadow_pm.writer; uninit = false }
          | Pstate.Unmodified ->
            if c.Shadow_pm.uninit then Racy { writer = c.Shadow_pm.writer; uninit = true }
            else Ok_read
          | Pstate.Persisted -> begin
            match Commit_registry.window_for t.registry a with
            | None -> Ok_read
            | Some None ->
              Inconsistent { writer = c.Shadow_pm.writer; status = Cstate.not_committed }
            | Some (Some (t_prelast, t_last)) -> begin
              match Cstate.classify ~t_prelast ~t_last ~tlast:c.Shadow_pm.tlast with
              | Cstate.Consistent -> Ok_read
              | (Cstate.Uncommitted | Cstate.Stale) as s ->
                Inconsistent { writer = c.Shadow_pm.writer; status = s }
            end
          end
        end
    end
  end

let persistence_name = function
  | Pstate.Modified -> "modified"
  | Pstate.Writeback_pending -> "writeback-pending"
  | Pstate.Persisted -> "persisted"
  | Pstate.Unmodified -> "unmodified"

(* Materialise the provenance chain for a racy/inconsistent read of
   [addr..addr+size): the cell's bounded history (allocation, retained
   writes, writeback, fence), the commit writes that framed the Eq. 3
   window for semantic verdicts, and the reading event — each resolved
   against the retained traces, with timeline excerpts. *)
let provenance_for_read t ~addr ~size ~read_ev finding =
  if not t.forensics then None
  else
    match (t.pre_trace, Shadow_pm.find t.shadow addr) with
    | Some pre, Some c -> begin
      match c.Shadow_pm.hist with
      | None -> None
      | Some h ->
        let spec = ref [] in
        let add stage role idx =
          if idx >= 0 then spec := (stage, role, idx) :: !spec
        in
        (match History.alloc_site h with
        | Some i -> add Provenance.Pre Provenance.Alloc i
        | None -> ());
        List.iter (fun i -> add Provenance.Pre Provenance.Write i) (History.writes h);
        (match History.last_flush h with
        | Some i -> add Provenance.Pre Provenance.Writeback i
        | None -> ());
        (match History.last_fence h with
        | Some i -> add Provenance.Pre Provenance.Fence i
        | None -> ());
        let window, verdict =
          match finding with
          | Racy { uninit = true; _ } -> (None, "race-uninit")
          | Racy _ -> (None, "race")
          | Inconsistent { status; _ } ->
            let window =
              match Commit_registry.window_for t.registry addr with
              | Some (Some w) -> Some w
              | Some None | None -> None
            in
            (match Commit_registry.frame_for t.registry addr with
            | Some (ev_prelast, ev_last) ->
              add Provenance.Pre Provenance.Commit_prelast ev_prelast;
              add Provenance.Pre Provenance.Commit_last ev_last
            | None -> ());
            ( window,
              match status with
              | Cstate.Stale -> "semantic-stale"
              | Cstate.Uncommitted | Cstate.Consistent -> "semantic-uncommitted" )
          | Ok_read -> (None, "ok")
        in
        add Provenance.Post Provenance.Read read_ev;
        Some
          (Provenance.build ~pre ?post:t.cur_trace ?window ~tlast:c.Shadow_pm.tlast
             ~addr ~size ~verdict
             ~persistence:(persistence_name c.Shadow_pm.pstate)
             (List.rev !spec))
    end
    | (Some _ | None), _ -> None

(* Chain for a performance bug: the wasted operation itself plus the line's
   write/writeback/fence history that made it redundant. *)
let provenance_for_waste t ~addr ~size ~ev ~verdict ~persistence =
  if not t.forensics then None
  else
    match t.pre_trace with
    | None -> None
    | Some pre ->
      let stage = if t.post then Provenance.Post else Provenance.Pre in
      let spec = ref [ (stage, Provenance.Wasted_flush, ev) ] in
      let add role idx =
        if idx >= 0 then spec := (Provenance.Pre, role, idx) :: !spec
      in
      let rep = ref None in
      Addr.iter_bytes addr size (fun a ->
          match !rep with
          | Some _ -> ()
          | None -> begin
            match Shadow_pm.find t.shadow a with
            | Some { Shadow_pm.hist = Some h; _ } -> rep := Some h
            | Some _ | None -> ()
          end);
      (match !rep with
      | Some h ->
        (match History.last_write h with Some i -> add Provenance.Write i | None -> ());
        (match History.last_flush h with Some i -> add Provenance.Writeback i | None -> ());
        (match History.last_fence h with Some i -> add Provenance.Fence i | None -> ())
      | None -> ());
      Some
        (Provenance.build ~pre
           ?post:(if t.post then t.cur_trace else None)
           ~addr ~size ~verdict ~persistence (List.rev !spec))

(* Check a post-failure read, coalescing contiguous bytes with the same
   verdict into a single report. *)
let check_read t ~loc ~ev addr size =
  let flush_pending start len = function
    | Ok_read -> ()
    | Racy { writer; uninit } as f ->
      let provenance = provenance_for_read t ~addr:start ~size:len ~read_ev:ev f in
      record t
        (Report.Race
           { addr = start; size = len; read_loc = loc; write_loc = writer; uninit; provenance })
    | Inconsistent { writer; status } as f ->
      let provenance = provenance_for_read t ~addr:start ~size:len ~read_ev:ev f in
      record t
        (Report.Semantic
           { addr = start; size = len; read_loc = loc; write_loc = writer; status; provenance })
  in
  let pending = ref Ok_read and start = ref addr and len = ref 0 in
  Addr.iter_bytes addr size (fun a ->
      let f = check_byte t a in
      if f = !pending && !len > 0 then incr len
      else begin
        flush_pending !start !len !pending;
        pending := f;
        start := a;
        len := 1
      end);
  flush_pending !start !len !pending

let on_write t ~loc ~ev ~nt addr size =
  Commit_registry.on_write t.registry ~defer:t.defer_commits ~addr ~size ~ts:t.ts ~ev;
  if (not t.post) && checking t then Obs.Counter.add c_written_bytes size;
  Addr.iter_bytes addr size (fun a ->
      Shadow_pm.write_byte t.shadow a ~ts:t.ts ~ev ~loc ~nt ~post:t.post)

let on_flush t ~loc ~ev addr =
  let line = Addr.line_of addr in
  match Shadow_pm.flush_line t.shadow line ~ev with
  | `Had_modified | `Clean -> ()
  | `Waste w ->
    if t.check_perf && checking t then begin
      let verdict, persistence =
        match w with
        | Pstate.Double_flush -> ("perf-redundant-writeback", "writeback-pending")
        | Pstate.Unnecessary_flush -> ("perf-unnecessary-writeback", "persisted")
      in
      let provenance =
        provenance_for_waste t ~addr:line ~size:Addr.line_size ~ev ~verdict ~persistence
      in
      record t (Report.Perf { addr = line; loc; waste = `Flush w; provenance })
    end

let on_tx_add t ~loc ~ev addr size =
  if t.tx_active then begin
    if
      t.check_perf && checking t
      && List.exists (fun r -> Addr.overlap r (addr, size)) t.tx_added
    then begin
      let provenance =
        provenance_for_waste t ~addr ~size ~ev ~verdict:"perf-duplicate-tx-add"
          ~persistence:"n/a"
      in
      record t (Report.Perf { addr; loc; waste = `Duplicate_tx_add; provenance })
    end;
    t.tx_added <- (addr, size) :: t.tx_added
  end

let replay_event t (ev : Event.t) =
  let loc = ev.Event.loc in
  let seq = ev.Event.seq in
  match ev.Event.kind with
  | Event.Write { addr; size } -> on_write t ~loc ~ev:seq ~nt:false addr size
  | Event.Nt_write { addr; size } -> on_write t ~loc ~ev:seq ~nt:true addr size
  | Event.Read { addr; size } -> if t.post && checking t then check_read t ~loc ~ev:seq addr size
  | Event.Clwb { addr } | Event.Clflush { addr } | Event.Clflushopt { addr } ->
    on_flush t ~loc ~ev:seq addr
  | Event.Sfence | Event.Mfence ->
    Shadow_pm.fence t.shadow ~ev:seq;
    if t.defer_commits then Commit_registry.apply_pending t.registry;
    t.ts <- t.ts + 1
  | Event.Gpf ->
    (* The barrier only exists under CXL-GPF; elsewhere the instruction is
       unavailable and the event is inert (a program relying on it is
       exactly as buggy as one that never flushed). *)
    if Xfd_trace.Domain_model.equal (Shadow_pm.domain t.shadow) Xfd_trace.Domain_model.Cxl_gpf
    then begin
      Shadow_pm.gpf t.shadow ~ev:seq;
      if t.defer_commits then Commit_registry.apply_pending t.registry;
      t.ts <- t.ts + 1
    end
  | Event.Tx_begin ->
    t.tx_active <- true;
    t.tx_added <- []
  | Event.Tx_add { addr; size } -> on_tx_add t ~loc ~ev:seq addr size
  | Event.Tx_xadd _ -> ()
  | Event.Tx_commit | Event.Tx_abort ->
    t.tx_active <- false;
    t.tx_added <- []
  | Event.Tx_alloc { addr; size; zeroed } ->
    if not zeroed then Shadow_pm.mark_alloc_raw t.shadow addr size ~ev:seq
  | Event.Tx_free _ -> ()
  | Event.Commit_var { addr; size } -> Commit_registry.register_var t.registry ~var:addr ~size
  | Event.Commit_range { var; addr; size } ->
    Commit_registry.register_range t.registry ~var ~addr ~size
  | Event.Roi_begin -> t.in_roi <- true
  | Event.Roi_end -> t.in_roi <- false
  | Event.Skip_detection_begin -> t.skip_depth <- t.skip_depth + 1
  | Event.Skip_detection_end -> t.skip_depth <- max 0 (t.skip_depth - 1)
  | Event.Marker _ -> ()

let replay t trace ~from ~upto =
  if t.forensics then begin
    if not t.post then t.pre_trace <- Some trace;
    t.cur_trace <- Some trace
  end;
  let upto = min upto (Trace.length trace) in
  Obs.Counter.add c_replayed (max 0 (upto - from));
  Trace.iter_range trace ~from ~upto (replay_event t)
