(** The shadow PM: per-byte detection state (paper section 5.4).

    For every byte the pre-failure execution touched, the shadow records the
    Figure 9 persistence state, the timestamp of the last modification (for
    the Eq. 3 consistency rule), the source location of the last writer (for
    bug reports), whether the byte is allocated-but-uninitialised, and
    whether the post-failure stage has already overwritten it.

    State lives in flat {!Xfd_mem.Shadow_pages} (one packed byte per
    tracked PM byte plus per-page pending bitmaps), not in a hash map, so
    replay is cache-friendly and the fence hot loop touches only pending
    bytes.

    [overlay] creates the store's single rewindable divergence: the
    backend advances one canonical pre-failure shadow event-by-event and
    forks a journaled view for each failure point's post-failure replay.
    Post-failure mutations are captured in an O(delta) undo journal;
    unwinding it restores the canonical prefix exactly, so nothing is ever
    re-replayed and the base is never polluted by post-failure state.  The
    journal unwinds explicitly via {!rewind}, or automatically as soon as
    the base layer mutates again or a new overlay is created; mutating a
    rewound overlay raises [Invalid_argument].  While a divergence is
    live, reads through the base handle resolve journaled bytes to their
    pre-divergence values. *)

type cell = {
  pstate : Pstate.t;
  tlast : int;
  writer : Xfd_util.Loc.t;
  uninit : bool;  (** allocated raw, never written since *)
  post_written : bool;
  hist : Xfd_forensics.History.t option;
      (** bounded provenance history (trace indices of the last writes,
          writeback, fence and allocation); [Some] only when the shadow was
          created with [~forensics:true].  Shared by reference with overlay
          views — overlays never record into it. *)
}
(** An immutable snapshot of one byte's state at lookup time. *)

type t

(** [create ~forensics:true] attaches a {!Xfd_forensics.History.t} to every
    byte this (base) layer touches and records write/flush/fence/alloc
    trace indices into it during replay.  [domain] selects the
    persistence-domain model the transfer functions interpret events under
    (default [Adr], byte-identical to the pre-parametric shadow). *)
val create : ?forensics:bool -> ?domain:Xfd_trace.Domain_model.t -> unit -> t

(** The persistence-domain model this shadow was created with (shared by
    its overlays). *)
val domain : t -> Xfd_trace.Domain_model.t

(** Journaled copy-on-write fork reading through to [t].  Creating a new
    overlay (or mutating through the base handle) rewinds any previous
    live overlay first: at most one divergence is live per store. *)
val overlay : t -> t

(** Unwind this overlay's divergence journal, restoring the canonical
    pre-failure state byte-for-byte.  No-op on a base handle or an
    already-rewound overlay. *)
val rewind : t -> unit

(** Drop the store's pages and return their bytes to the global
    [shadow.page_bytes_live] accounting.  Idempotent. *)
val release : t -> unit

(** Read-only lookup (never copies).  [None] means the byte was never
    touched: reading it cannot be a cross-failure bug. *)
val find : t -> Xfd_mem.Addr.t -> cell option

(** [write_byte t addr ~ts ~ev ~loc ~nt ~post] applies a store.  [ev] is
    the trace index of the writing event (recorded into the provenance
    history when forensics is on; otherwise ignored). *)
val write_byte :
  t ->
  Xfd_mem.Addr.t ->
  ts:int ->
  ev:int ->
  loc:Xfd_util.Loc.t ->
  nt:bool ->
  post:bool ->
  unit

(** [flush_line t line] captures the line's modified bytes and reports what
    the flush found, for performance-bug classification: [`Had_modified]
    (useful flush), [`Clean] (line never tracked — e.g. the tail line of a
    range persist; not a bug), or the waste category: flushing a line whose
    bytes are all pending ([Double_flush]) or already persisted
    ([Unnecessary_flush]). *)
val flush_line :
  t ->
  Xfd_mem.Addr.t ->
  ev:int ->
  [ `Had_modified | `Clean | `Waste of Pstate.flush_waste ]

(** Promote every writeback-pending byte captured in this shadow (or fork)
    to persisted.  A fork's fence promotes only bytes the fork itself made
    pending: base-pending bytes stay pending for the canonical prefix. *)
val fence : t -> ev:int -> unit

(** The global persistent flush barrier: promote {e every} outstanding
    (modified or writeback-pending) byte to persisted.  Only meaningful
    under [Cxl_gpf] — the caller gates on the domain.  A fork's GPF, like
    its fence, promotes only bytes the fork itself made pending: data the
    crash dropped stays dropped. *)
val gpf : t -> ev:int -> unit

(** Mark a freshly (re-)allocated raw payload: bytes become
    unmodified/uninitialised regardless of their history. *)
val mark_alloc_raw : t -> Xfd_mem.Addr.t -> int -> ev:int -> unit

(** Number of tracked bytes in this layer: all touched bytes for a base
    handle, the journal's byte count for a live overlay (0 once
    rewound). *)
val tracked_bytes : t -> int

(** [iter_tracked t f] calls [f addr cell] for every tracked byte in
    increasing address order, through this handle's view. *)
val iter_tracked : t -> (Xfd_mem.Addr.t -> cell -> unit) -> unit
