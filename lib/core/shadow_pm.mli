(** The shadow PM: per-byte detection state (paper section 5.4).

    For every byte the pre-failure execution touched, the shadow records the
    Figure 9 persistence state, the timestamp of the last modification (for
    the Eq. 3 consistency rule), the source location of the last writer (for
    bug reports), whether the byte is allocated-but-uninitialised, and
    whether the post-failure stage has already overwritten it.

    [overlay] creates a copy-on-write fork: the backend replays the
    pre-failure trace into one base shadow and forks a cheap overlay for
    each failure point's post-failure replay, mirroring the paper's
    incremental tracing (the base is never polluted by post-failure state,
    and nothing is re-replayed). *)

type cell = {
  mutable pstate : Pstate.t;
  mutable tlast : int;
  mutable writer : Xfd_util.Loc.t;
  mutable uninit : bool;  (** allocated raw, never written since *)
  mutable post_written : bool;
  hist : Xfd_forensics.History.t option;
      (** bounded provenance history (trace indices of the last writes,
          writeback, fence and allocation); [Some] only when the shadow was
          created with [~forensics:true].  Shared by reference with overlay
          copies — overlays never record into it. *)
}

type t

(** [create ~forensics:true] attaches a {!Xfd_forensics.History.t} to every
    cell this (base) layer creates and records write/flush/fence/alloc
    trace indices into it during replay. *)
val create : ?forensics:bool -> unit -> t

(** Copy-on-write fork reading through to [t]. *)
val overlay : t -> t

(** Read-only lookup (never copies).  [None] means the byte was never
    touched: reading it cannot be a cross-failure bug. *)
val find : t -> Xfd_mem.Addr.t -> cell option

(** [write_byte t addr ~ts ~ev ~loc ~nt ~post] applies a store.  [ev] is
    the trace index of the writing event (recorded into the provenance
    history when forensics is on; otherwise ignored). *)
val write_byte :
  t ->
  Xfd_mem.Addr.t ->
  ts:int ->
  ev:int ->
  loc:Xfd_util.Loc.t ->
  nt:bool ->
  post:bool ->
  unit

(** [flush_line t line] captures the line's modified bytes and reports what
    the flush found, for performance-bug classification: [`Had_modified]
    (useful flush), [`Clean] (line never tracked — e.g. the tail line of a
    range persist; not a bug), or the waste category: flushing a line whose
    bytes are all pending ([Double_flush]) or already persisted
    ([Unnecessary_flush]). *)
val flush_line :
  t ->
  Xfd_mem.Addr.t ->
  ev:int ->
  [ `Had_modified | `Clean | `Waste of Pstate.flush_waste ]

(** Promote every writeback-pending byte captured in this shadow (or fork)
    to persisted. *)
val fence : t -> ev:int -> unit

(** Mark a freshly (re-)allocated raw payload: bytes become
    unmodified/uninitialised regardless of their history. *)
val mark_alloc_raw : t -> Xfd_mem.Addr.t -> int -> ev:int -> unit

(** Number of tracked bytes in this layer (excluding the parent). *)
val tracked_bytes : t -> int
