type t = {
  strategy : Xfd_sim.Ctx.strategy;
  trust_library : bool;
  max_failure_points : int;
  inject_terminal_fp : bool;
  faults : Xfd_sim.Faults.t;
  check_perf : bool;
  crash_mode : [ `Full | `Strict ];
  post_jobs : int;
  forensics : bool;
  engine : [ `Incremental | `Fresh ];
  domain : Xfd_trace.Domain_model.t;
}

let default =
  {
    strategy = Xfd_sim.Ctx.Ordering_points;
    trust_library = true;
    max_failure_points = 100_000;
    inject_terminal_fp = true;
    faults = Xfd_sim.Faults.none;
    check_perf = true;
    crash_mode = `Full;
    post_jobs = 1;
    forensics = false;
    engine = `Incremental;
    domain = Xfd_trace.Domain_model.Adr;
  }

let validate t =
  if t.max_failure_points <= 0 then
    invalid_arg
      (Printf.sprintf
         "Config.max_failure_points must be positive (got %d): a non-positive cap would \
          silently elide every failure point"
         t.max_failure_points);
  if t.post_jobs <= 0 then
    invalid_arg (Printf.sprintf "Config.post_jobs must be positive (got %d)" t.post_jobs)
