type t = Unmodified | Modified | Writeback_pending | Persisted

type flush_waste = Double_flush | Unnecessary_flush

let on_write _ = Modified
let on_nt_write _ = Writeback_pending

let on_flush = function
  | Modified -> Writeback_pending
  | (Unmodified | Writeback_pending | Persisted) as s -> s

let on_fence = function
  | Writeback_pending -> Persisted
  | (Unmodified | Modified | Persisted) as s -> s

(* Domain-parametric transfers, mirroring {!Xfd_lint.Abs.on_*_in} on the
   concrete machine (DESIGN.md decision 18).  [Adr] is exactly the
   functions above. *)

module D = Xfd_trace.Domain_model

let on_write_in = function
  | D.Adr | D.Cxl_gpf -> on_write
  | D.Eadr -> fun _ -> Persisted

let on_nt_write_in = function
  | D.Adr -> on_nt_write
  | D.Eadr | D.Cxl_gpf -> fun _ -> Persisted

let on_flush_in = function
  | D.Adr -> on_flush
  | D.Eadr -> fun s -> s
  | D.Cxl_gpf -> (
    function Modified | Writeback_pending -> Persisted | (Unmodified | Persisted) as s -> s)

let on_fence_in = function
  | D.Adr -> on_fence
  | D.Eadr | D.Cxl_gpf -> fun s -> s

let on_gpf_in = function
  | D.Cxl_gpf -> (
    function Modified | Writeback_pending -> Persisted | (Unmodified | Persisted) as s -> s)
  | D.Adr | D.Eadr -> fun s -> s

let is_persisted = function Persisted -> true | Unmodified | Modified | Writeback_pending -> false
let equal (a : t) b = a = b

let to_string = function
  | Unmodified -> "U"
  | Modified -> "M"
  | Writeback_pending -> "W"
  | Persisted -> "P"

let pp ppf t = Format.pp_print_string ppf (to_string t)
