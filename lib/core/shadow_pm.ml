module Addr = Xfd_mem.Addr
module Pages = Xfd_mem.Shadow_pages
module Obs = Xfd_obs.Obs
module History = Xfd_forensics.History
module Loc = Xfd_util.Loc

(* Per-byte FSM transition tallies (paper Figure 8): one increment per byte
   entering the named state during replay. *)
let c_to_modified = Obs.Counter.make "shadow.fsm.to_modified"
let c_to_writeback = Obs.Counter.make "shadow.fsm.to_writeback_pending"
let c_to_persisted = Obs.Counter.make "shadow.fsm.to_persisted"
let c_to_unmodified = Obs.Counter.make "shadow.fsm.to_unmodified"

(* Divergence journal unwinds: one per failure point the engine retires
   (plus the implicit unwind when the base layer resumes mutating). *)
let c_rewinds = Obs.Counter.make "shadow.divergence_rewinds"

type cell = {
  pstate : Pstate.t;
  tlast : int;
  writer : Loc.t;
  uninit : bool;
  post_written : bool;
  hist : History.t option;
}

(* Packed-byte layout on top of {!Xfd_mem.Shadow_pages}: bits 0-2 the
   Fig. 9 persistence state, [bit_tracked] for every byte the shadow has
   touched, [bit_pending] mirrors the old writeback-pending set (and the
   per-page bitmap the fence iterates), [bit_flag_a] =
   allocated-uninitialised, [bit_flag_b] = post-written, [bit_flag_c] =
   captured by the active divergence journal. *)
let st_unmodified = 0
let st_modified = 1
let st_writeback = 2
let st_persisted = 3

let encode_pstate = function
  | Pstate.Unmodified -> st_unmodified
  | Pstate.Modified -> st_modified
  | Pstate.Writeback_pending -> st_writeback
  | Pstate.Persisted -> st_persisted

let decode_pstate s =
  if s = st_modified then Pstate.Modified
  else if s = st_writeback then Pstate.Writeback_pending
  else if s = st_persisted then Pstate.Persisted
  else Pstate.Unmodified

let bit_uninit = Pages.bit_flag_a
let bit_post = Pages.bit_flag_b
let bit_journaled = Pages.bit_flag_c

(* Cold per-byte fields, one parallel page of them per touched 4 KiB page.
   [hist] rows exist only on forensic base layers. *)
type meta = {
  tlast : int array;
  writer : Loc.t array;
  hist : History.t option array option;
}

(* The delta journal of one post-failure divergence: for every byte the
   post-failure replay touches, the pre-divergence packed byte and cold
   fields, captured once ([bit_journaled] dedups).  [index] lets base
   reads resolve journaled bytes to their pre-divergence value while the
   divergence is live.  [pending_post] lists the bytes the divergence
   itself made writeback-pending — the only bytes its fences may promote
   (base-pending bytes belong to the canonical prefix). *)
type div = {
  mutable n : int;
  mutable j_addr : int array;
  mutable j_packed : int array;
  mutable j_tlast : int array;
  mutable j_writer : Loc.t array;
  index : (int, int) Hashtbl.t;
  mutable pending_post : int list;
}

type store = {
  pages : Pages.t;
  meta : (int, meta) Hashtbl.t;
  mutable last_meta : (int * meta) option;
  record_hist : bool;
  domain : Xfd_trace.Domain_model.t;
  mutable active : div option;
}

type t = { store : store; div : div option }

let create ?(forensics = false) ?(domain = Xfd_trace.Domain_model.Adr) () =
  {
    store =
      {
        pages = Pages.create ();
        meta = Hashtbl.create 16;
        last_meta = None;
        record_hist = forensics;
        domain;
        active = None;
      };
    div = None;
  }

let domain t = t.store.domain

let release t =
  Pages.release t.store.pages;
  Hashtbl.reset t.store.meta;
  t.store.last_meta <- None;
  t.store.active <- None

let is_active store d = match store.active with Some d' -> d' == d | None -> false

let page_index addr = addr lsr 12
let page_offset addr = addr land 4095

let meta_for store addr =
  let idx = page_index addr in
  match store.last_meta with
  | Some (i, m) when i = idx -> Some m
  | _ -> (
    match Hashtbl.find_opt store.meta idx with
    | Some m ->
      store.last_meta <- Some (idx, m);
      Some m
    | None -> None)

let own_meta store addr =
  match meta_for store addr with
  | Some m -> m
  | None ->
    let m =
      {
        tlast = Array.make Pages.page_size (-1);
        writer = Array.make Pages.page_size Loc.unknown;
        hist = (if store.record_hist then Some (Array.make Pages.page_size None) else None);
      }
    in
    let idx = page_index addr in
    Hashtbl.replace store.meta idx m;
    store.last_meta <- Some (idx, m);
    m

let tlast_of store addr =
  match meta_for store addr with None -> -1 | Some m -> m.tlast.(page_offset addr)

let writer_of store addr =
  match meta_for store addr with
  | None -> Loc.unknown
  | Some m -> m.writer.(page_offset addr)

let hist_of store addr =
  match meta_for store addr with
  | Some { hist = Some rows; _ } -> rows.(page_offset addr)
  | Some _ | None -> None

(* The provenance history of [addr], created on first use.  Only base
   mutations record history; divergences read it by reference, exactly as
   the old overlay cells shared their parent's [hist]. *)
let own_hist store addr =
  if not store.record_hist then None
  else
    let m = own_meta store addr in
    match m.hist with
    | None -> None
    | Some rows -> (
      let off = page_offset addr in
      match rows.(off) with
      | Some _ as h -> h
      | None ->
        let h = History.create () in
        rows.(off) <- Some h;
        Some h)

(* ------------------------------------------------------------------ *)
(* Divergence journal *)

let rewind_div store d =
  Obs.Counter.incr c_rewinds;
  for i = d.n - 1 downto 0 do
    let addr = d.j_addr.(i) in
    (* The captured byte predates the divergence, so it never carries
       [bit_journaled]; restoring it also heals the bitmaps and counts. *)
    Pages.set store.pages addr d.j_packed.(i);
    match meta_for store addr with
    | Some m ->
      let off = page_offset addr in
      m.tlast.(off) <- d.j_tlast.(i);
      m.writer.(off) <- d.j_writer.(i)
    | None -> ()
  done;
  d.n <- 0;
  Hashtbl.reset d.index;
  d.pending_post <- [];
  store.active <- None

(* Any base-layer mutation invalidates the outstanding divergence: the
   canonical prefix is moving on, so the journal is unwound first.  Base
   *reads* do not unwind — they resolve through the journal instead. *)
let ensure_base store =
  match store.active with Some d -> rewind_div store d | None -> ()

let grow_journal d =
  let cap = Array.length d.j_addr in
  if d.n = cap then begin
    let g a fill = Array.append a (Array.make cap fill) in
    d.j_addr <- g d.j_addr 0;
    d.j_packed <- g d.j_packed 0;
    d.j_tlast <- g d.j_tlast (-1);
    d.j_writer <- g d.j_writer Loc.unknown
  end

(* Capture [addr]'s pre-divergence value, once. *)
let journal d store addr packed =
  if not (Pages.has packed bit_journaled) then begin
    grow_journal d;
    d.j_addr.(d.n) <- addr;
    d.j_packed.(d.n) <- packed;
    d.j_tlast.(d.n) <- tlast_of store addr;
    d.j_writer.(d.n) <- writer_of store addr;
    Hashtbl.replace d.index addr d.n;
    d.n <- d.n + 1
  end

let overlay t =
  let store = t.store in
  ensure_base store;
  let d =
    {
      n = 0;
      j_addr = Array.make 64 0;
      j_packed = Array.make 64 0;
      j_tlast = Array.make 64 (-1);
      j_writer = Array.make 64 Loc.unknown;
      index = Hashtbl.create 64;
      pending_post = [];
    }
  in
  store.active <- Some d;
  { store; div = Some d }

let rewind t =
  match t.div with
  | None -> ()
  | Some d -> if is_active t.store d then rewind_div t.store d

(* Which journal should a mutation through this handle write to?  A base
   handle first unwinds any live divergence; an overlay handle must still
   own the store's single divergence slot. *)
let writing_div t =
  match t.div with
  | None ->
    ensure_base t.store;
    None
  | Some d ->
    if not (is_active t.store d) then
      invalid_arg "Shadow_pm: overlay used after its divergence was rewound";
    Some d

(* ------------------------------------------------------------------ *)
(* Reads *)

let cell_of store addr packed =
  {
    pstate = decode_pstate (Pages.state_of packed);
    tlast = tlast_of store addr;
    writer = writer_of store addr;
    uninit = Pages.has packed bit_uninit;
    post_written = Pages.has packed bit_post;
    hist = hist_of store addr;
  }

let find t addr =
  let store = t.store in
  let packed = Pages.get store.pages addr in
  match t.div with
  | Some _ ->
    (* Overlay reads see the divergence: its bytes were written in place. *)
    if packed = 0 then None else Some (cell_of store addr packed)
  | None -> (
    match store.active with
    | Some d when Pages.has packed bit_journaled -> (
      match Hashtbl.find_opt d.index addr with
      | Some i ->
        let old = d.j_packed.(i) in
        if old = 0 then None
        else
          Some
            {
              pstate = decode_pstate (Pages.state_of old);
              tlast = d.j_tlast.(i);
              writer = d.j_writer.(i);
              uninit = Pages.has old bit_uninit;
              post_written = Pages.has old bit_post;
              hist = hist_of store addr;
            }
      | None -> if packed = 0 then None else Some (cell_of store addr packed))
    | Some _ | None -> if packed = 0 then None else Some (cell_of store addr packed))

(* ------------------------------------------------------------------ *)
(* Writes *)

(* Store a packed byte, journaling the pre-image when a divergence owns
   the handle.  Divergence-written bytes carry [bit_journaled] so capture
   and base-read resolution stay O(1). *)
let put div store addr ~old packed =
  match div with
  | None -> Pages.set store.pages addr (packed land lnot bit_journaled)
  | Some d ->
    journal d store addr old;
    Pages.set store.pages addr (packed lor bit_journaled)

let record_hist div store addr f =
  match div with
  | Some _ -> ()
  | None -> ( match own_hist store addr with Some h -> f h | None -> ())

let write_byte t addr ~ts ~ev ~loc ~nt ~post =
  let store = t.store in
  let div = writing_div t in
  let old = Pages.get store.pages addr in
  let pst = decode_pstate (Pages.state_of old) in
  let pst' =
    if nt then Pstate.on_nt_write_in store.domain pst
    else Pstate.on_write_in store.domain pst
  in
  let pending = Pstate.equal pst' Pstate.Writeback_pending in
  Obs.Counter.incr
    (if pending then c_to_writeback
     else if Pstate.equal pst' Pstate.Persisted then c_to_persisted
     else c_to_modified);
  let packed =
    encode_pstate pst' lor Pages.bit_tracked
    lor (if pending then Pages.bit_pending else 0)
    lor (if post then bit_post else old land bit_post)
  in
  (match div with
  | Some d when pending && not (Pages.has old Pages.bit_pending) ->
    d.pending_post <- addr :: d.pending_post
  | _ -> ());
  put div store addr ~old packed;
  let m = own_meta store addr in
  let off = page_offset addr in
  m.tlast.(off) <- ts;
  m.writer.(off) <- loc;
  record_hist div store addr (fun h -> History.record_write h ~ev ~nt)

let flush_line t line ~ev =
  let store = t.store in
  let div = writing_div t in
  let had_modified = ref false and had_pending = ref false and had_persisted = ref false in
  (* First pass: only observe, so a wasted flush journals nothing. *)
  Pages.iter_line store.pages line Addr.line_size (fun _ packed ->
      if packed <> 0 then
        let s = Pages.state_of packed in
        if s = st_modified then had_modified := true
        else if s = st_writeback then had_pending := true
        else if s = st_persisted then had_persisted := true);
  if !had_modified then begin
    (* Where a captured byte lands is the model's call: ADR parks it
       writeback-pending until a fence, CXL-GPF persists it on arrival at
       the device (eADR never has modified bytes to capture). *)
    let target = Pstate.on_flush_in store.domain Pstate.Modified in
    let pending = Pstate.equal target Pstate.Writeback_pending in
    Addr.iter_bytes line Addr.line_size (fun a ->
        let old = Pages.get store.pages a in
        if old <> 0 && Pages.state_of old = st_modified then begin
          Obs.Counter.incr (if pending then c_to_writeback else c_to_persisted);
          let packed =
            if pending then Pages.with_state old st_writeback lor Pages.bit_pending
            else Pages.with_state old (encode_pstate target) land lnot Pages.bit_pending
          in
          (match div with
          | Some d when pending && not (Pages.has old Pages.bit_pending) ->
            d.pending_post <- a :: d.pending_post
          | _ -> ());
          put div store a ~old packed;
          record_hist div store a (fun h -> History.record_flush h ~ev)
        end);
    `Had_modified
  end
  else if !had_pending then `Waste Pstate.Double_flush
  else if !had_persisted then `Waste Pstate.Unnecessary_flush
  else `Clean

(* Promote one writeback-pending byte at an ordering point. *)
let promote_byte div store addr ~ev =
  let old = Pages.get store.pages addr in
  if Pages.has old Pages.bit_pending then begin
    if Pages.state_of old = st_writeback then begin
      Obs.Counter.incr c_to_persisted;
      record_hist div store addr (fun h -> History.record_fence h ~ev)
    end;
    let pst' = Pstate.on_fence (decode_pstate (Pages.state_of old)) in
    let packed = Pages.with_state old (encode_pstate pst') land lnot Pages.bit_pending in
    put div store addr ~old packed
  end

let fence t ~ev =
  let store = t.store in
  match writing_div t with
  | None ->
    (* The base fence walks the per-page pending bitmaps: exactly the old
       pending set, without touching any other byte. *)
    List.iter (fun a -> promote_byte None store a ~ev) (Pages.pending_addrs store.pages)
  | Some d ->
    (* A divergence fence promotes only bytes it made pending itself;
       entries whose pending bit was since cleared by an overwrite are
       skipped, mirroring removal from the old per-layer pending set. *)
    let mine = List.rev d.pending_post in
    d.pending_post <- [];
    List.iter (fun a -> promote_byte (Some d) store a ~ev) mine

let gpf t ~ev =
  let store = t.store in
  match writing_div t with
  | None ->
    (* The global persistent flush barrier persists every outstanding byte
       at once.  Collect targets first, then mutate — [iter_tracked] must
       not observe its own writes. *)
    let promote = ref [] in
    Pages.iter_tracked store.pages (fun a packed ->
        let s = Pages.state_of packed in
        if s = st_modified || s = st_writeback then promote := a :: !promote);
    List.iter
      (fun a ->
        let old = Pages.get store.pages a in
        let s = Pages.state_of old in
        if s = st_modified || s = st_writeback then begin
          Obs.Counter.incr c_to_persisted;
          let packed = Pages.with_state old st_persisted land lnot Pages.bit_pending in
          put None store a ~old packed;
          record_hist None store a (fun h -> History.record_fence h ~ev)
        end)
      !promote
  | Some d ->
    (* A post-failure GPF may only promote what the post-failure run made
       pending itself: data the crash dropped stays dropped.  (Post-written
       bytes are readable regardless, so this is exactly the fence rule.) *)
    let mine = List.rev d.pending_post in
    d.pending_post <- [];
    List.iter (fun a -> promote_byte (Some d) store a ~ev) mine

let mark_alloc_raw t addr size ~ev =
  let store = t.store in
  let div = writing_div t in
  Addr.iter_bytes addr size (fun a ->
      let old = Pages.get store.pages a in
      Obs.Counter.incr c_to_unmodified;
      let packed = st_unmodified lor Pages.bit_tracked lor bit_uninit in
      put div store a ~old packed;
      record_hist div store a (fun h -> History.record_alloc h ~ev))

let tracked_bytes t =
  match t.div with
  | None -> Pages.tracked_bytes t.store.pages
  | Some d -> if is_active t.store d then d.n else 0

let iter_tracked t f =
  Pages.iter_tracked t.store.pages (fun addr _packed ->
      match find t addr with Some c -> f addr c | None -> ())
