module Addr = Xfd_mem.Addr
module Obs = Xfd_obs.Obs

(* Per-byte FSM transition tallies (paper Figure 8): one increment per byte
   entering the named state during replay. *)
let c_to_modified = Obs.Counter.make "shadow.fsm.to_modified"
let c_to_writeback = Obs.Counter.make "shadow.fsm.to_writeback_pending"
let c_to_persisted = Obs.Counter.make "shadow.fsm.to_persisted"
let c_to_unmodified = Obs.Counter.make "shadow.fsm.to_unmodified"

type cell = {
  mutable pstate : Pstate.t;
  mutable tlast : int;
  mutable writer : Xfd_util.Loc.t;
  mutable uninit : bool;
  mutable post_written : bool;
}

type t = {
  cells : (Addr.t, cell) Hashtbl.t;
  pending : (Addr.t, unit) Hashtbl.t; (* writeback-pending bytes of this layer *)
  parent : t option;
}

let create () = { cells = Hashtbl.create 1024; pending = Hashtbl.create 64; parent = None }

let overlay t = { cells = Hashtbl.create 256; pending = Hashtbl.create 32; parent = Some t }

let rec find t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some _ as c -> c
  | None -> (match t.parent with Some p -> find p addr | None -> None)

let copy_cell c =
  {
    pstate = c.pstate;
    tlast = c.tlast;
    writer = c.writer;
    uninit = c.uninit;
    post_written = c.post_written;
  }

(* A cell owned by this layer, copied up from the parent if needed. *)
let own_cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> Some c
  | None -> begin
    match t.parent with
    | None -> None
    | Some p -> begin
      match find p addr with
      | None -> None
      | Some c ->
        let c' = copy_cell c in
        Hashtbl.replace t.cells addr c';
        Some c'
    end
  end

let create_or_own t addr =
  match own_cell t addr with
  | Some c -> c
  | None ->
    let c =
      {
        pstate = Pstate.Unmodified;
        tlast = -1;
        writer = Xfd_util.Loc.unknown;
        uninit = false;
        post_written = false;
      }
    in
    Hashtbl.replace t.cells addr c;
    c

let write_byte t addr ~ts ~loc ~nt ~post =
  let c = create_or_own t addr in
  Obs.Counter.incr (if nt then c_to_writeback else c_to_modified);
  c.pstate <- (if nt then Pstate.on_nt_write c.pstate else Pstate.on_write c.pstate);
  c.tlast <- ts;
  c.writer <- loc;
  c.uninit <- false;
  if post then c.post_written <- true;
  if nt then Hashtbl.replace t.pending addr () else Hashtbl.remove t.pending addr

let flush_line t line =
  let had_modified = ref false and had_pending = ref false and had_persisted = ref false in
  (* First pass: only observe, so a wasted flush copies no cells up. *)
  Addr.iter_bytes line Addr.line_size (fun a ->
      match find t a with
      | None -> ()
      | Some c -> begin
        match c.pstate with
        | Pstate.Modified -> had_modified := true
        | Pstate.Writeback_pending -> had_pending := true
        | Pstate.Persisted -> had_persisted := true
        | Pstate.Unmodified -> ()
      end);
  if !had_modified then begin
    Addr.iter_bytes line Addr.line_size (fun a ->
        match find t a with
        | Some c when Pstate.equal c.pstate Pstate.Modified ->
          let c = create_or_own t a in
          Obs.Counter.incr c_to_writeback;
          c.pstate <- Pstate.on_flush c.pstate;
          Hashtbl.replace t.pending a ()
        | Some _ | None -> ());
    `Had_modified
  end
  else if !had_pending then `Waste Pstate.Double_flush
  else if !had_persisted then `Waste Pstate.Unnecessary_flush
  else `Clean

let fence t =
  Hashtbl.iter
    (fun a () ->
      match own_cell t a with
      | Some c ->
        if Pstate.equal c.pstate Pstate.Writeback_pending then
          Obs.Counter.incr c_to_persisted;
        c.pstate <- Pstate.on_fence c.pstate
      | None -> ())
    t.pending;
  Hashtbl.reset t.pending

let mark_alloc_raw t addr size =
  Addr.iter_bytes addr size (fun a ->
      let c = create_or_own t a in
      Obs.Counter.incr c_to_unmodified;
      c.pstate <- Pstate.Unmodified;
      c.uninit <- true;
      c.post_written <- false;
      Hashtbl.remove t.pending a)

let tracked_bytes t = Hashtbl.length t.cells
