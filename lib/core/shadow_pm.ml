module Addr = Xfd_mem.Addr
module Obs = Xfd_obs.Obs
module History = Xfd_forensics.History

(* Per-byte FSM transition tallies (paper Figure 8): one increment per byte
   entering the named state during replay. *)
let c_to_modified = Obs.Counter.make "shadow.fsm.to_modified"
let c_to_writeback = Obs.Counter.make "shadow.fsm.to_writeback_pending"
let c_to_persisted = Obs.Counter.make "shadow.fsm.to_persisted"
let c_to_unmodified = Obs.Counter.make "shadow.fsm.to_unmodified"

type cell = {
  mutable pstate : Pstate.t;
  mutable tlast : int;
  mutable writer : Xfd_util.Loc.t;
  mutable uninit : bool;
  mutable post_written : bool;
  hist : History.t option;
}

type t = {
  cells : (Addr.t, cell) Hashtbl.t;
  pending : (Addr.t, unit) Hashtbl.t; (* writeback-pending bytes of this layer *)
  parent : t option;
  (* Whether this layer records provenance history.  Only the base
     pre-failure layer does: post-failure overlays read the shared history
     but never write it, so forks at different failure points cannot
     pollute each other's chains. *)
  record_hist : bool;
}

let create ?(forensics = false) () =
  {
    cells = Hashtbl.create 1024;
    pending = Hashtbl.create 64;
    parent = None;
    record_hist = forensics;
  }

let overlay t =
  { cells = Hashtbl.create 256; pending = Hashtbl.create 32; parent = Some t; record_hist = false }

let rec find t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some _ as c -> c
  | None -> (match t.parent with Some p -> find p addr | None -> None)

let copy_cell c =
  {
    pstate = c.pstate;
    tlast = c.tlast;
    writer = c.writer;
    uninit = c.uninit;
    post_written = c.post_written;
    (* The history is shared with the parent cell by reference: overlays
       never record into it, so sharing is safe and keeps forks cheap. *)
    hist = c.hist;
  }

(* A cell owned by this layer, copied up from the parent if needed. *)
let own_cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> Some c
  | None -> begin
    match t.parent with
    | None -> None
    | Some p -> begin
      match find p addr with
      | None -> None
      | Some c ->
        let c' = copy_cell c in
        Hashtbl.replace t.cells addr c';
        Some c'
    end
  end

let create_or_own t addr =
  match own_cell t addr with
  | Some c -> c
  | None ->
    let c =
      {
        pstate = Pstate.Unmodified;
        tlast = -1;
        writer = Xfd_util.Loc.unknown;
        uninit = false;
        post_written = false;
        hist = (if t.record_hist then Some (History.create ()) else None);
      }
    in
    Hashtbl.replace t.cells addr c;
    c

let record t c f = if t.record_hist then match c.hist with Some h -> f h | None -> ()

let write_byte t addr ~ts ~ev ~loc ~nt ~post =
  let c = create_or_own t addr in
  Obs.Counter.incr (if nt then c_to_writeback else c_to_modified);
  c.pstate <- (if nt then Pstate.on_nt_write c.pstate else Pstate.on_write c.pstate);
  c.tlast <- ts;
  c.writer <- loc;
  c.uninit <- false;
  if post then c.post_written <- true;
  record t c (fun h -> History.record_write h ~ev ~nt);
  if nt then Hashtbl.replace t.pending addr () else Hashtbl.remove t.pending addr

let flush_line t line ~ev =
  let had_modified = ref false and had_pending = ref false and had_persisted = ref false in
  (* First pass: only observe, so a wasted flush copies no cells up. *)
  Addr.iter_bytes line Addr.line_size (fun a ->
      match find t a with
      | None -> ()
      | Some c -> begin
        match c.pstate with
        | Pstate.Modified -> had_modified := true
        | Pstate.Writeback_pending -> had_pending := true
        | Pstate.Persisted -> had_persisted := true
        | Pstate.Unmodified -> ()
      end);
  if !had_modified then begin
    Addr.iter_bytes line Addr.line_size (fun a ->
        match find t a with
        | Some c when Pstate.equal c.pstate Pstate.Modified ->
          let c = create_or_own t a in
          Obs.Counter.incr c_to_writeback;
          c.pstate <- Pstate.on_flush c.pstate;
          record t c (fun h -> History.record_flush h ~ev);
          Hashtbl.replace t.pending a ()
        | Some _ | None -> ());
    `Had_modified
  end
  else if !had_pending then `Waste Pstate.Double_flush
  else if !had_persisted then `Waste Pstate.Unnecessary_flush
  else `Clean

let fence t ~ev =
  Hashtbl.iter
    (fun a () ->
      match own_cell t a with
      | Some c ->
        if Pstate.equal c.pstate Pstate.Writeback_pending then begin
          Obs.Counter.incr c_to_persisted;
          record t c (fun h -> History.record_fence h ~ev)
        end;
        c.pstate <- Pstate.on_fence c.pstate
      | None -> ())
    t.pending;
  Hashtbl.reset t.pending

let mark_alloc_raw t addr size ~ev =
  Addr.iter_bytes addr size (fun a ->
      let c = create_or_own t a in
      Obs.Counter.incr c_to_unmodified;
      c.pstate <- Pstate.Unmodified;
      c.uninit <- true;
      c.post_written <- false;
      record t c (fun h -> History.record_alloc h ~ev);
      Hashtbl.remove t.pending a)

let tracked_bytes t = Hashtbl.length t.cells
