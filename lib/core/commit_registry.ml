module Addr = Xfd_mem.Addr

type var = {
  var_addr : Addr.t;
  var_size : int;
  mutable ranges : (Addr.t * int) list;
  mutable t_prelast : int;
  mutable t_last : int;
  (* Trace indices of the commit writes behind [t_prelast]/[t_last], for
     provenance chains; -1 = none. *)
  mutable ev_prelast : int;
  mutable ev_last : int;
  mutable commits : int;
}

type t = {
  vars : (Addr.t, var) Hashtbl.t;
  var_bytes : (Addr.t, Addr.t) Hashtbl.t; (* byte -> owning variable *)
  range_bytes : (Addr.t, Addr.t) Hashtbl.t; (* byte -> governing variable *)
  mutable pending : (Addr.t * int * int) list; (* deferred commit writes (var, ts, ev) *)
}

exception Overlapping_commit_ranges of Addr.t * Addr.t

let create () =
  {
    vars = Hashtbl.create 64;
    var_bytes = Hashtbl.create 256;
    range_bytes = Hashtbl.create 1024;
    pending = [];
  }

let clone t =
  let vars = Hashtbl.create (Hashtbl.length t.vars) in
  Hashtbl.iter
    (fun k v ->
      Hashtbl.replace vars k
        {
          var_addr = v.var_addr;
          var_size = v.var_size;
          ranges = v.ranges;
          t_prelast = v.t_prelast;
          t_last = v.t_last;
          ev_prelast = v.ev_prelast;
          ev_last = v.ev_last;
          commits = v.commits;
        })
    t.vars;
  {
    vars;
    var_bytes = Hashtbl.copy t.var_bytes;
    range_bytes = Hashtbl.copy t.range_bytes;
    pending = t.pending;
  }

let register_var t ~var ~size =
  if not (Hashtbl.mem t.vars var) then begin
    let v =
      {
        var_addr = var;
        var_size = size;
        ranges = [];
        t_prelast = -1;
        t_last = -1;
        ev_prelast = -1;
        ev_last = -1;
        commits = 0;
      }
    in
    Hashtbl.replace t.vars var v;
    Addr.iter_bytes var size (fun a -> Hashtbl.replace t.var_bytes a var)
  end

let register_range t ~var ~addr ~size =
  register_var t ~var ~size:8;
  let v = Hashtbl.find t.vars var in
  if not (List.exists (fun (a, n) -> a = addr && n = size) v.ranges) then begin
    (* Eq. 2: sets associated with distinct commit variables are disjoint. *)
    Addr.iter_bytes addr size (fun a ->
        match Hashtbl.find_opt t.range_bytes a with
        | Some owner when owner <> var -> raise (Overlapping_commit_ranges (owner, var))
        | Some _ | None -> ());
    v.ranges <- (addr, size) :: v.ranges;
    Addr.iter_bytes addr size (fun a -> Hashtbl.replace t.range_bytes a var)
  end

let commit t var ts ev =
  let v = Hashtbl.find t.vars var in
  v.t_prelast <- v.t_last;
  v.t_last <- ts;
  v.ev_prelast <- v.ev_last;
  v.ev_last <- ev;
  v.commits <- v.commits + 1

let on_write t ~defer ~addr ~size ~ts ~ev =
  (* A write spanning several commit variables commits each of them once. *)
  let touched = ref [] in
  Addr.iter_bytes addr size (fun a ->
      match Hashtbl.find_opt t.var_bytes a with
      | Some var when not (List.mem var !touched) -> touched := var :: !touched
      | Some _ | None -> ());
  List.iter
    (fun var ->
      if defer then t.pending <- (var, ts, ev) :: t.pending else commit t var ts ev)
    !touched

let apply_pending t =
  List.iter (fun (var, ts, ev) -> commit t var ts ev) (List.rev t.pending);
  t.pending <- []

let drop_pending t = t.pending <- []

let unregister_var t ~var =
  match Hashtbl.find_opt t.vars var with
  | None -> ()
  | Some v ->
    Addr.iter_bytes v.var_addr v.var_size (fun a -> Hashtbl.remove t.var_bytes a);
    List.iter
      (fun (a, n) -> Addr.iter_bytes a n (fun b -> Hashtbl.remove t.range_bytes b))
      v.ranges;
    t.pending <- List.filter (fun (w, _, _) -> w <> var) t.pending;
    Hashtbl.remove t.vars var

let is_commit_byte t addr = Hashtbl.mem t.var_bytes addr

let window_for t addr =
  match Hashtbl.find_opt t.range_bytes addr with
  | None -> None
  | Some var ->
    let v = Hashtbl.find t.vars var in
    if v.commits = 0 then Some None
    else Some (Some ((if v.commits = 1 then -1 else v.t_prelast), v.t_last))

let frame_for t addr =
  match Hashtbl.find_opt t.range_bytes addr with
  | None -> None
  | Some var ->
    let v = Hashtbl.find t.vars var in
    if v.commits = 0 then None else Some (v.ev_prelast, v.ev_last)

let var_count t = Hashtbl.length t.vars
