(** Persistence state of a PM byte — the paper's Figure 9 state machine.

    [Unmodified] — never written (or freshly re-allocated); [Modified] —
    written, not captured by any flush; [Writeback_pending] — captured by a
    CLWB-family instruction, not yet ordered; [Persisted] — guaranteed
    durable.  Only [Persisted] data may be read after a failure without
    racing. *)

type t = Unmodified | Modified | Writeback_pending | Persisted

(** Flushing a line containing no modified byte wastes a writeback; the
    detector classifies such flushes (the yellow edges in Figure 9). *)
type flush_waste =
  | Double_flush  (** line already captured, awaiting a fence *)
  | Unnecessary_flush  (** line unmodified or already persisted *)

val on_write : t -> t

(** Non-temporal stores bypass the cache: the byte goes straight to
    writeback-pending and persists at the next fence. *)
val on_nt_write : t -> t

(** [on_flush t] captures the byte if it is modified. *)
val on_flush : t -> t

(** [on_fence t] orders a captured byte. *)
val on_fence : t -> t

(** Domain-parametric transfers.  [on_*_in Adr] is the corresponding
    un-suffixed function.  Under [Eadr] stores land [Persisted] and
    flush/fence are persistence no-ops; under [Cxl_gpf] a flush (or
    non-temporal store) is durable on arrival at the device, fences order
    without persisting, and {!on_gpf_in} models the global persistent
    flush barrier. *)

val on_write_in : Xfd_trace.Domain_model.t -> t -> t
val on_nt_write_in : Xfd_trace.Domain_model.t -> t -> t
val on_flush_in : Xfd_trace.Domain_model.t -> t -> t
val on_fence_in : Xfd_trace.Domain_model.t -> t -> t
val on_gpf_in : Xfd_trace.Domain_model.t -> t -> t

val is_persisted : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
