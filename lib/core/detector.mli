(** The detection backend (paper section 5.4).

    The backend replays traces against the shadow PM.  The pre-failure trace
    is replayed incrementally, once: between failure points the engine
    advances the base detector to the failure point's trace position, then
    {!fork_for_post} creates a cheap copy-on-write fork into which the
    corresponding post-failure trace is replayed and checked.  Forks see the
    exact shadow state at their failure point; the base is never polluted by
    post-failure writes.

    Checks implemented:
    - post-failure reads: consistency state first, then persistence state —
      a read is reported as a cross-failure semantic bug when the byte is
      persisted but outside its commit window (Eq. 3), as a cross-failure
      race when it is not guaranteed persisted, and not at all when it is a
      commit-variable byte (benign race), was overwritten by the post-failure
      stage itself, or was never touched;
    - performance bugs during replay: flushes of lines with nothing to write
      back, and duplicated TX_ADDs within one transaction;
    - only the first post-failure read of each byte is checked
      (section 5.4 optimisation 1). *)

type t

(** [commit_at] selects when a write to a commit variable moves the Eq. 3
    window: [`Write] (the paper's implementation; matches detection on full
    crash images, where the post-failure stage observes the newest flag
    value) or [`Persist] (matches strict crash images, where only persisted
    flag values survive — Eq. 3's [<=p] made operational).  The engine picks
    the mode matching its crash mode.

    [forensics] attaches bounded provenance histories to shadow cells and
    makes every recorded Race/Semantic/Perf bug carry a
    {!Xfd_forensics.Provenance.t} chain resolved against the replayed
    traces.  Off by default: with it off the per-byte cost is one extra
    word and bugs carry no chain.

    [domain] selects the persistence-domain model of the shadow FSM
    (default [Adr]).  The GPF barrier event is honoured only under
    [Cxl_gpf]; elsewhere it is inert. *)
val create :
  ?check_perf:bool ->
  ?commit_at:[ `Write | `Persist ] ->
  ?forensics:bool ->
  ?domain:Xfd_trace.Domain_model.t ->
  unit ->
  t

(** [replay t trace ~from ~upto] replays events [from .. upto-1]. *)
val replay : t -> Xfd_trace.Trace.t -> from:int -> upto:int -> unit

(** Fork for one failure point's post-failure replay.  The fork is a
    journaled divergence of the base shadow: at most one fork is live at a
    time, and advancing the base (or forking again) unwinds the previous
    fork's journal first — recorded bugs stay valid, but the fork must not
    replay further events after that. *)
val fork_for_post : t -> t

(** Unwind this fork's divergence journal now (no-op on a base detector):
    the base shadow is restored byte-for-byte to the fork point. *)
val rewind : t -> unit

(** Release the underlying shadow pages (idempotent; call on detectors
    whose run is abandoned or complete so [shadow.page_bytes_live] returns
    to zero). *)
val release : t -> unit

(** Bugs recorded by this detector (or fork), oldest first. *)
val bugs : t -> Report.bug list

(** Current global timestamp (one tick per ordering point). *)
val timestamp : t -> int

(** Expose the shadow cell of an address, for tests and debugging. *)
val probe : t -> Xfd_mem.Addr.t -> Shadow_pm.cell option

(** The commit-variable registry (for tests). *)
val registry : t -> Commit_registry.t

(** The underlying shadow store (for the equivalence oracle in tests). *)
val shadow : t -> Shadow_pm.t
