(** End-to-end detection: the paper's Figure 7 pipeline.

    [detect] runs the pre-failure program once under tracing, snapshotting
    the device at every failure point the context fires (before each
    ordering point inside the RoI, eliding points with no PM update since
    the previous one — section 5.4 optimisation 2).  For every snapshot it
    boots a copy of the PM image, runs the post-failure program on it under
    tracing, and replays both traces through the backend.  Results carry the
    per-failure-point reports, the deduplicated bug list and the timing
    breakdown used by the Figure 12/13 experiments. *)

module Ctx = Xfd_sim.Ctx

(** A program under test: [setup] initialises the pool (outside the RoI),
    [pre] is the pre-failure stage (it brackets itself with RoI
    annotations), [post] is the recovery-and-resumption stage run after
    every injected failure. *)
type program = {
  name : string;
  setup : Ctx.t -> unit;
  pre : Ctx.t -> unit;
  post : Ctx.t -> unit;
}

(** Live progress through the post-failure stage: [completed] of [total]
    failure points post-executed so far.  Reported once with
    [completed = 0] when the stage starts, then after every completed
    post run. *)
type progress = { completed : int; total : int }

type timings = {
  pre_exec : float;  (** pre-failure execution + tracing *)
  post_exec : float;  (** all post-failure executions + tracing *)
  pre_replay : float;  (** backend replay of the pre-failure trace *)
  post_replay : float;  (** backend replay of all post-failure traces *)
  snapshotting : float;  (** PM-image copies at failure points *)
}

type outcome = {
  program : string;
  failure_points : int;
  reports : Report.failure_report list;
  unique_bugs : Report.bug list;  (** deduplicated across failure points *)
  pre_events : int;
  post_events : int;  (** total over all post-failure runs *)
  timings : timings;  (** derived from [spans] via {!timings_of_spans} *)
  spans : Xfd_obs.Obs.Span.record list;
      (** this run's span tree: a root ["detect"] span with ["pre_exec"],
          ["post_exec"], ["pre_replay"], ["post_replay"] phases,
          ["snapshot"] children inside [pre_exec], and per-failure-point
          ["post_run"]/replay children carrying a [failure_point] meta
          field *)
  coverage : Xfd_forensics.Coverage.t;
      (** what this run exercised: failure points fired vs elided, RoI
          ordering points, bytes read-checked vs bytes written, per-class
          bug counts — counter deltas over the run *)
}

(** Exceptions escaping the post-failure program are recorded as
    [Post_failure_error] findings — except fatal runtime conditions
    ([Assert_failure], [Out_of_memory], [Stack_overflow]), which indicate a
    broken harness rather than a PM bug: those abort detection and re-raise
    the original exception, including out of worker domains when
    [config.post_jobs > 1] (workers capture per-item exceptions and the
    first, in failure-point order, is re-raised after every domain has
    joined). *)
val detect :
  ?config:Config.t ->
  ?priority:((int * int) list -> int list) ->
  ?on_progress:(progress -> unit) ->
  program ->
  outcome

(** When [on_progress] is given, it is invoked with live {!progress}
    counts as post-failure runs complete.  Observation-only and
    verdict-neutral: the callback sees counts, never detection state, and
    anything it raises is swallowed.  With [config.post_jobs > 1] it runs
    on whichever worker domain finished the run, so it must be
    domain-safe (the CLI's renderer serializes with a mutex). *)

(** When [priority] is given, it receives the fired failure points as
    [(ordinal, trace position)] pairs in trace order and returns one score
    per point; post-failure executions then run highest-score first (ties
    keep failure-point order).  Scheduling only: every point still runs,
    replay stays in trace order, reports keep failure-point order — the
    outcome is identical to the default order (the post-failure runs are
    independent, each on its own image copy).  A hook that raises or
    returns a list of the wrong length is ignored.  {!Xfd_lint} uses this
    to post-execute statically suspicious windows first. *)

(** [detect_at ~failure_point program] is the single-failure-point oracle
    entry: the pipeline runs exactly as {!detect} — failure points are
    numbered, elided and capped identically — but only the point with the
    given ordinal is snapshotted and post-executed, so the outcome carries
    at most one failure report (none when the ordinal is out of range).
    The fuzzer's shrinker and corpus replay use this to re-check one
    verdict without paying for the full sweep. *)
val detect_at : ?config:Config.t -> failure_point:int -> program -> outcome

(** Aggregate a span tree into the Figure 12 timing struct: phase totals
    by span name, with snapshot time carved out of [pre_exec].  [detect]
    builds [outcome.timings] with exactly this function, so the legacy
    struct cannot drift from the span tree. *)
val timings_of_spans : Xfd_obs.Obs.Span.record list -> timings

(** Aggregate wall-clock attributed to the pre-failure stage (execution +
    replay + snapshotting) and the post-failure stage, as broken down in the
    paper's Figure 12a. *)
val wall_breakdown : outcome -> float * float

val total_wall : outcome -> float

(** Count bugs by class: races, semantic, performance, post-failure
    errors. *)
val tally : outcome -> int * int * int * int

(** Run the program once (pre then post, no failure injection) with tracing
    but no detection — the paper's "Pure Pin" baseline.  Returns wall time. *)
val run_traced : program -> float

(** Run the program once with tracing disabled — the original program.
    Returns wall time. *)
val run_original : program -> float

val pp_outcome : Format.formatter -> outcome -> unit

(** JSON form of a whole outcome (per-failure-point reports, unique bugs,
    statistics), for machine consumption. *)
val outcome_to_json : outcome -> Xfd_util.Json.t
