(** Detection results: cross-failure bugs, performance bugs, and
    post-failure crash observations.

    A bug names the byte range, the reading instruction of the post-failure
    stage and the last pre-failure writer — the same fields XFDetector
    prints.  [Post_failure_error] records an exception escaping the
    post-failure program (e.g. the pool refusing to open after a failure
    mid-creation, which is how the paper's Bug 4 manifests, or the
    segmentation fault of the Figure 1 example).

    When detection runs with forensics enabled, every race/semantic/perf
    bug additionally carries a {!Xfd_forensics.Provenance.t} chain — the
    ordered pre-failure events (write, writeback, fence, framing commit
    writes, allocation) that explain the verdict, with trace-timeline
    excerpts.  The chain never participates in {!dedup_key}. *)

type race = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Xfd_util.Loc.t;
  write_loc : Xfd_util.Loc.t;
  uninit : bool;  (** allocated but never initialised (paper's Bug 2) *)
  provenance : Xfd_forensics.Provenance.t option;
}

type semantic = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Xfd_util.Loc.t;
  write_loc : Xfd_util.Loc.t;
  status : Cstate.t;  (** [Uncommitted] or [Stale] *)
  provenance : Xfd_forensics.Provenance.t option;
}

type perf = {
  addr : Xfd_mem.Addr.t;
  loc : Xfd_util.Loc.t;
  waste : [ `Flush of Pstate.flush_waste | `Duplicate_tx_add ];
  provenance : Xfd_forensics.Provenance.t option;
}

type bug =
  | Race of race
  | Semantic of semantic
  | Perf of perf
  | Post_failure_error of { exn : string; failure_point : int }

(** All bugs observed for one injected failure point. *)
type failure_report = { failure_point : int; trace_pos : int; bugs : bug list }

val is_race : bug -> bool
val is_semantic : bug -> bool
val is_perf : bug -> bool
val is_post_error : bug -> bool

(** The provenance chain attached to a bug, if forensics was on. *)
val provenance : bug -> Xfd_forensics.Provenance.t option

(** Deduplication key: bugs with the same kind and program points are the
    same programming error reported at several failure points. *)
val dedup_key : bug -> string

val pp_bug : Format.formatter -> bug -> unit

(** The bug line followed by its indented provenance chain and timeline
    excerpts (identical to {!pp_bug} plus a newline when the bug carries no
    chain). *)
val pp_bug_explained : Format.formatter -> bug -> unit

val pp_failure_report : Format.formatter -> failure_report -> unit

(** JSON form of one bug, for machine consumption (CI, dashboards). *)
val bug_to_json : bug -> Xfd_util.Json.t

val failure_report_to_json : failure_report -> Xfd_util.Json.t
