(** Registry of commit variables and their associated address sets.

    A commit variable (paper section 3.2) is a PM location whose writes
    alter the consistency status of an associated set of addresses [Sx]
    (Eq. 2 requires the sets of distinct variables to be disjoint).  The
    registry records, per variable, the timestamps of its last two commit
    writes — [t_prelast] and [t_last] in the Eq. 3 rule — and answers the
    two queries the detector needs on every post-failure read: "is this byte
    itself part of a commit variable?" (such reads are benign cross-failure
    races) and "which variable's window governs this byte?". *)

type t

val create : unit -> t

(** Deep copy; the post-failure fork mutates its own timestamps. *)
val clone : t -> t

(** Register a commit variable (idempotent). *)
val register_var : t -> var:Xfd_mem.Addr.t -> size:int -> unit

exception Overlapping_commit_ranges of Xfd_mem.Addr.t * Xfd_mem.Addr.t
(** Raised by [register_range] when Eq. 2's disjointness is violated:
    carries the two clashing variables. *)

(** Associate a byte range with a registered variable (registers the
    variable implicitly if needed; exact re-registrations are ignored). *)
val register_range :
  t -> var:Xfd_mem.Addr.t -> addr:Xfd_mem.Addr.t -> size:int -> unit

(** Record that some write touched [addr..addr+size); any overlap with a
    registered variable is a commit write at timestamp [ts].  With
    [defer:true] the window does not move until {!apply_pending} — used
    when detection runs against strict crash images, where a commit write
    only becomes visible to the post-failure stage once persisted (this is
    Eq. 3's [<=p] ordering made operational).  [ev] is the trace index of
    the writing event, retained so provenance chains can name the commit
    writes that framed a window. *)
val on_write :
  t -> defer:bool -> addr:Xfd_mem.Addr.t -> size:int -> ts:int -> ev:int -> unit

(** Remove a variable mid-run: its byte set, every associated range and any
    deferred commit writes it owns are dropped, so its former range bytes
    fall back to plain race-checked data.  No-op for an unknown variable;
    the freed ranges may be re-associated with another variable
    afterwards. *)
val unregister_var : t -> var:Xfd_mem.Addr.t -> unit

(** Apply deferred commit writes (called at each ordering point). *)
val apply_pending : t -> unit

(** Drop deferred commit writes (a failure discards unpersisted commits;
    called when forking for a post-failure replay in strict mode). *)
val drop_pending : t -> unit

(** Is this byte inside a registered commit variable? *)
val is_commit_byte : t -> Xfd_mem.Addr.t -> bool

(** The commit window governing a byte, if it belongs to some [Sx]:
    [(t_prelast, t_last)], where a never-written variable yields [None]
    in the outer option's payload. *)
val window_for : t -> Xfd_mem.Addr.t -> (int * int) option option
(** [None] — byte not in any commit range; [Some None] — in a range whose
    variable has never been committed; [Some (Some (t_prelast, t_last))] —
    committed at least once ([t_prelast] is [-1] after a single commit). *)

(** Trace indices of the governing variable's last two commit writes —
    the events that framed the Eq. 3 window — for provenance chains.
    [None] if the byte is in no range or its variable was never committed;
    the first component is [-1] after a single commit. *)
val frame_for : t -> Xfd_mem.Addr.t -> (int * int) option

(** Number of registered variables. *)
val var_count : t -> int
