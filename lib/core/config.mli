(** Detection configuration. *)

type t = {
  strategy : Xfd_sim.Ctx.strategy;
      (** where failure points go: before ordering points (the paper), or
          after every PM update (the naive ablation baseline) *)
  trust_library : bool;
      (** wrap PM-library internals in skip regions (paper default) *)
  max_failure_points : int;  (** safety cap on injected failure points *)
  inject_terminal_fp : bool;
      (** also test the state after the pre-failure stage completed *)
  faults : Xfd_sim.Faults.t;  (** seeded bugs for validation runs *)
  check_perf : bool;  (** report performance bugs *)
  crash_mode : [ `Full | `Strict ];
      (** PM image handed to the post-failure stage: [`Full] copies every
          architectural byte (the paper's footnote 3; the shadow PM decides
          what was persisted), [`Strict] drops non-persisted bytes (useful
          for cross-validation in tests) *)
  post_jobs : int;
      (** number of domains running post-failure executions concurrently —
          the paper's "the post-failure executions are independent as they
          operate on a copy of the original PM image, and therefore, can be
          parallelized.  We leave the parallelized detection as a future
          work"; 1 = fully sequential *)
  forensics : bool;
      (** record per-byte provenance history during replay and attach a
          provenance chain plus trace-timeline excerpts to every reported
          bug; off by default — the history ring costs a little memory and
          time per tracked byte *)
  engine : [ `Incremental | `Fresh ];
      (** pre-failure replay scheduling.  [`Incremental] (the default)
          advances one canonical shadow state across failure points and
          journals each post-failure divergence — O(delta) per point.
          [`Fresh] rebuilds the shadow from event 0 at every failure point:
          quadratic, but trivially correct, kept as the oracle the
          equivalence tests and [xfd_cli run --oracle] compare against *)
  domain : Xfd_trace.Domain_model.t;
      (** persistence-domain model the shadow FSM interprets events under.
          [Adr] (the default) is the paper's flush+fence contract and is
          byte-identical to the pre-parametric detector; [Eadr] makes
          stores durable at store; [Cxl_gpf] makes flushes durable on
          arrival and honours the GPF barrier event *)
}

val default : t

(** Reject configurations the engine cannot honour meaningfully.  Raises
    [Invalid_argument] when [max_failure_points <= 0] (which would silently
    elide every failure point and report nothing) or [post_jobs <= 0].
    {!Xfd.Engine.detect} validates its configuration on entry. *)
val validate : t -> unit
