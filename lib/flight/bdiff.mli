(** Perf-regression comparison of two BENCH_*.json snapshots.

    Walks baseline and current structurally in lockstep; every numeric
    leaf is a metric identified by its JSON path, judged by a class
    derived from its name: ["*_s"] wall clock (reported, gated only with
    an explicit tolerance — wall time is machine-dependent),
    ["*_per_sec"] throughput (lower-is-worse when gated), ["*_bytes"]
    footprint (gated, default +25%, regression direction only), and
    everything else exact in both directions (counts are behavioral
    fingerprints).  Mismatched structure — different fields, row counts
    or strings — is an [Error], not a regression: the files do not
    describe the same experiment. *)

type cls = Exact | Bytes | Wall | Rate

type tolerances = {
  bytes : float;  (** allowed fractional increase, default 0.25 *)
  wall : float option;  (** [None] (default): report, never gate *)
  rate : float option;  (** [None] (default): report, never gate *)
}

val default_tolerances : tolerances

type verdict = Ok_ | Improved | Regressed of string

type item = {
  path : string;
  cls : cls;
  baseline : float;
  current : float;
  verdict : verdict;
}

val classify : string -> cls
val cls_name : cls -> string

(** All compared metrics in document order, or a structural mismatch. *)
val diff :
  ?tol:tolerances ->
  baseline:Xfd_util.Json.t ->
  current:Xfd_util.Json.t ->
  unit ->
  (item list, string) result

val regressions : item list -> item list
val pp_item : Format.formatter -> item -> unit
val item_to_json : item -> Xfd_util.Json.t
