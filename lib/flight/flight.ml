(* The flight recorder: a bounded, leveled run log for detection runs.

   WITCHER-scale detection (millions of test cases) is only operable when
   the tool itself is diagnosable: when a sweep stalls or a verdict looks
   wrong, the question "what was the engine doing?" must be answerable
   without re-running under a debugger.  The recorder keeps the last
   [capacity] lifecycle events — failure points scheduled/started/judged,
   snapshots recorded/dropped, workers joined — in a ring, stamped with a
   per-run id, and streams them as JSONL when an [Obs.Sink] is installed.
   Every [gc_sample_every]-th event also samples [Gc.quick_stat] into
   gauges, so runtime pressure is visible in the same telemetry stream.

   Everything here is observation-only: recording is bounded, never
   raises into the caller, and has no channel back into detection state,
   so verdicts are byte-identical with the recorder on or off. *)

module Json = Xfd_util.Json
module Obs = Xfd_obs.Obs

type level = Debug | Info | Warn

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2
let level_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | _ -> None

type event = {
  seq : int;
  ts : float;
  run : string;
  level : level;
  name : string;
  fields : (string * Json.t) list;
}

let c_events = Obs.Counter.make "flight.events"
let c_dropped = Obs.Counter.make "flight.events_dropped"

(* ---- configuration ---- *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let threshold = Atomic.make (level_rank Info)
let level () = match Atomic.get threshold with 0 -> Debug | 1 -> Info | _ -> Warn
let set_level l = Atomic.set threshold (level_rank l)

let default_capacity = 8192

(* ---- the ring ----

   Same bounded-ring discipline as the span buffer: newest [capacity]
   events retained, oldest dropped and counted.  Events arrive from the
   main domain and the engine's worker domains, so the ring is
   mutex-protected. *)

let mutex = Mutex.create ()
let buf : event option array ref = ref (Array.make default_capacity None)
let head = ref 0
let len = ref 0
let seq_counter = Atomic.make 0

let with_lock f =
  Mutex.lock mutex;
  match f () with
  | v ->
    Mutex.unlock mutex;
    v
  | exception e ->
    Mutex.unlock mutex;
    raise e

let capacity () = with_lock (fun () -> Array.length !buf)

let set_capacity n =
  if n <= 0 then invalid_arg "Flight.set_capacity: capacity must be positive";
  with_lock (fun () ->
      let old = !buf in
      let old_cap = Array.length old in
      let keep = min !len n in
      let dropped = !len - keep in
      let fresh = Array.make n None in
      for i = 0 to keep - 1 do
        fresh.(i) <- old.((!head - keep + i + (2 * old_cap)) mod old_cap)
      done;
      buf := fresh;
      head := keep mod n;
      len := keep;
      if dropped > 0 then Obs.Counter.add c_dropped dropped)

let clear () =
  with_lock (fun () ->
      Array.fill !buf 0 (Array.length !buf) None;
      head := 0;
      len := 0)

let events () =
  with_lock (fun () ->
      let cap = Array.length !buf in
      let acc = ref [] in
      for i = 1 to !len do
        match !buf.((!head - i + (2 * cap)) mod cap) with
        | Some e -> acc := e :: !acc
        | None -> assert false
      done;
      !acc)

(* ---- run ids ---- *)

let run_counter = Atomic.make 0
let current_run = Atomic.make "-"
let run_id () = Atomic.get current_run

let new_run_id () =
  let n = Atomic.fetch_and_add run_counter 1 in
  Printf.sprintf "run-%04x%04x-%d"
    (Unix.getpid () land 0xffff)
    (Hashtbl.hash (Unix.gettimeofday (), Unix.getpid (), n) land 0xffff)
    n

(* ---- GC gauges ----

   Sampled, not per-event: [Gc.quick_stat] is cheap but not free, and the
   gauges only need trend resolution. *)

let gc_sample_every = 64
let gc_tick = Atomic.make 0
let g_minor_words = Obs.Gauge.make "gc.minor_words"
let g_major_words = Obs.Gauge.make "gc.major_words"
let g_heap_words = Obs.Gauge.make "gc.heap_words"
let g_minor_collections = Obs.Gauge.make "gc.minor_collections"
let g_major_collections = Obs.Gauge.make "gc.major_collections"

let sample_gc () =
  let s = Gc.quick_stat () in
  Obs.Gauge.set g_minor_words s.Gc.minor_words;
  Obs.Gauge.set g_major_words s.Gc.major_words;
  Obs.Gauge.set g_heap_words (float_of_int s.Gc.heap_words);
  Obs.Gauge.set g_minor_collections (float_of_int s.Gc.minor_collections);
  Obs.Gauge.set g_major_collections (float_of_int s.Gc.major_collections)

(* ---- recording ---- *)

let event_to_json e =
  Json.Obj
    ([
       ("type", Json.Str "flight");
       ("seq", Json.Int e.seq);
       ("ts_s", Json.Float e.ts);
       ("run", Json.Str e.run);
       ("level", Json.Str (level_to_string e.level));
       ("event", Json.Str e.name);
     ]
    @ match e.fields with [] -> [] | fs -> [ ("fields", Json.Obj fs) ])

let record ?(level = Info) name fields =
  if Atomic.get enabled_flag && level_rank level >= Atomic.get threshold then begin
    let e =
      {
        seq = Atomic.fetch_and_add seq_counter 1;
        ts = Unix.gettimeofday ();
        run = Atomic.get current_run;
        level;
        name;
        fields;
      }
    in
    with_lock (fun () ->
        let cap = Array.length !buf in
        if !len = cap then Obs.Counter.incr c_dropped else incr len;
        !buf.(!head) <- Some e;
        head := (!head + 1) mod cap);
    Obs.Counter.incr c_events;
    if Atomic.fetch_and_add gc_tick 1 mod gc_sample_every = 0 then sample_gc ();
    if Obs.Sink.active () then Obs.Sink.emit (event_to_json e)
  end

let begin_run ~program =
  let id = new_run_id () in
  Atomic.set current_run id;
  record ~level:Info "run.begin" [ ("program", Json.Str program) ];
  id

let end_run fields = record ~level:Info "run.end" fields

(* ---- export ---- *)

let write_jsonl path =
  let evs = events () in
  let oc = open_out path in
  List.iter
    (fun e ->
      output_string oc (Json.to_string (event_to_json e));
      output_char oc '\n')
    evs;
  close_out oc;
  List.length evs

let pp_event ppf e =
  Format.fprintf ppf "%9.6f %-5s %-6s %-20s" e.ts (level_to_string e.level) e.run e.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v)) e.fields
