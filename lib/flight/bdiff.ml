(* Perf-regression comparison of two BENCH_*.json snapshots.

   The two documents are walked structurally in lockstep; every numeric
   leaf is a metric identified by its JSON path, and the leaf's *name*
   decides how it is judged:

   - wall-clock metrics ("*_s"): wall time is machine-dependent, so a
     committed baseline from one host says nothing absolute about CI's
     hardware.  Not gated unless an explicit tolerance is given; always
     reported.
   - throughput metrics ("*_per_sec"): same, lower-is-worse when gated.
   - byte metrics ("*_bytes"): allocation/footprint accounting is
     near-deterministic, gated with a tolerance (default 25%) in the
     regression direction only — using less memory is not a failure.
   - everything else (event counts, failure points, bug tallies): exact.
     These are behavioral fingerprints; ANY drift, either direction,
     means the engine is doing different work and the baseline must be
     re-justified, so both directions fail.

   Strings and bools must match exactly (they key the rows: workload
   names, schema type); a structural mismatch — different fields, row
   counts, or kinds — is an error distinct from a regression, because it
   means the two files do not describe the same experiment. *)

module Json = Xfd_util.Json

type cls = Exact | Bytes | Wall | Rate

type tolerances = {
  bytes : float;  (* fraction: 0.25 = +25% allowed *)
  wall : float option;  (* None = report only, never gate *)
  rate : float option;
}

let default_tolerances = { bytes = 0.25; wall = None; rate = None }

type verdict = Ok_ | Improved | Regressed of string

type item = {
  path : string;
  cls : cls;
  baseline : float;
  current : float;
  verdict : verdict;
}

let cls_name = function Exact -> "exact" | Bytes -> "bytes" | Wall -> "wall" | Rate -> "rate"

let ends_with suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let classify name =
  if ends_with "_per_sec" name then Rate
  else if ends_with "_s" name || name = "wall" then Wall
  else if ends_with "_bytes" name then Bytes
  else Exact

let pct baseline current =
  if baseline = 0.0 then if current = 0.0 then 0.0 else Float.infinity
  else 100.0 *. ((current /. baseline) -. 1.0)

let judge ~tol ~cls ~baseline ~current =
  let over t = current > baseline *. (1.0 +. t) in
  let under t = current < baseline *. (1.0 -. t) in
  match cls with
  | Exact ->
    if baseline = current then Ok_
    else
      Regressed
        (Printf.sprintf "exact metric drifted: %g -> %g (behavioral fingerprint)" baseline
           current)
  | Bytes ->
    if over tol.bytes then
      Regressed (Printf.sprintf "+%.1f%% exceeds +%.0f%% tolerance" (pct baseline current) (100.0 *. tol.bytes))
    else if current < baseline then Improved
    else Ok_
  | Wall -> begin
    match tol.wall with
    | Some t when over t ->
      Regressed (Printf.sprintf "+%.1f%% exceeds +%.0f%% tolerance" (pct baseline current) (100.0 *. t))
    | _ -> if current < baseline then Improved else Ok_
  end
  | Rate -> begin
    match tol.rate with
    | Some t when under t ->
      Regressed
        (Printf.sprintf "%.1f%% below the -%.0f%% tolerance" (pct baseline current) (100.0 *. t))
    | _ -> if current > baseline then Improved else Ok_
  end

let leaf_name path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* Walk both documents; collect metric items or fail on the first
   structural mismatch. *)
let rec walk ~tol path (a : Json.t) (b : Json.t) acc =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    let ka = List.map fst fa and kb = List.map fst fb in
    if ka <> kb then
      fail "%s: field sets differ (baseline {%s} vs current {%s})" path (String.concat "," ka)
        (String.concat "," kb)
    else
      List.fold_left2
        (fun acc (k, va) (_, vb) ->
          match acc with
          | Error _ as e -> e
          | Ok items -> walk ~tol (path ^ "." ^ k) va vb items)
        (Ok acc) fa fb
      |> Result.map Fun.id
  | Json.Arr xa, Json.Arr xb ->
    if List.length xa <> List.length xb then
      fail "%s: row counts differ (%d vs %d)" path (List.length xa) (List.length xb)
    else
      List.fold_left2
        (fun acc (i, va) vb ->
          match acc with
          | Error _ as e -> e
          | Ok items -> walk ~tol (Printf.sprintf "%s[%d]" path i) va vb items)
        (Ok acc)
        (List.mapi (fun i v -> (i, v)) xa)
        xb
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
    let num = function Json.Int i -> float_of_int i | Json.Float f -> f | _ -> assert false in
    let baseline = num a and current = num b in
    let cls = classify (leaf_name path) in
    Ok ({ path; cls; baseline; current; verdict = judge ~tol ~cls ~baseline ~current } :: acc)
  | Json.Str sa, Json.Str sb ->
    if sa = sb then Ok acc else fail "%s: %S vs %S (row keys must match)" path sa sb
  | Json.Bool ba, Json.Bool bb ->
    if ba = bb then Ok acc else fail "%s: %b vs %b" path ba bb
  | Json.Null, Json.Null -> Ok acc
  | _ -> fail "%s: value kinds differ" path

let diff ?(tol = default_tolerances) ~baseline ~current () =
  Result.map List.rev (walk ~tol "$" baseline current [])

let regressions items =
  List.filter (fun i -> match i.verdict with Regressed _ -> true | _ -> false) items

let pp_item ppf i =
  let status, detail =
    match i.verdict with
    | Ok_ -> ("ok", "")
    | Improved -> ("improved", "")
    | Regressed why -> ("REGRESSED", ": " ^ why)
  in
  Format.fprintf ppf "%-9s %-5s %-52s %14g -> %-14g %+.1f%%%s" status (cls_name i.cls) i.path
    i.baseline i.current (pct i.baseline i.current) detail

let item_to_json i =
  Json.Obj
    [
      ("path", Json.Str i.path);
      ("class", Json.Str (cls_name i.cls));
      ("baseline", Json.Float i.baseline);
      ("current", Json.Float i.current);
      ( "verdict",
        Json.Str
          (match i.verdict with
          | Ok_ -> "ok"
          | Improved -> "improved"
          | Regressed why -> "regressed: " ^ why) );
    ]
