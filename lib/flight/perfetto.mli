(** Chrome trace-event (Perfetto) export of the span tree.

    Produces the JSON trace-event format that {{:https://ui.perfetto.dev}
    Perfetto} and chrome://tracing load: one ["ph":"X"] complete event
    per span, microsecond timestamps relative to the earliest span, and
    one named track per domain ([tid]) — so the engine's domain-pool
    workers appear as separate rows with their [post_run] slices
    overlapping in the parallel section of a run. *)

(** The whole trace as one JSON value
    [{"traceEvents":[...],"displayTimeUnit":"ms"}], including
    process/thread metadata events. *)
val of_spans : ?process_name:string -> Xfd_obs.Obs.Span.record list -> Xfd_util.Json.t

(** [to_file path spans] writes {!of_spans} compactly to [path]. *)
val to_file : ?process_name:string -> string -> Xfd_obs.Obs.Span.record list -> unit

(** Tap the sink stream instead of holding spans: a collector installed
    with {!Collector.start} parses every [{"type":"span"}] record that
    passes through [Obs.Sink.emit] (each [Engine.detect] drains its own
    spans from the bounded buffer, so a multi-run session — a fuzz
    sweep, the bench harness — can only see them streamed).  Bounded:
    beyond [capacity] slices (default 200k) new ones are counted as
    dropped. *)
module Collector : sig
  type t

  val start : ?capacity:int -> unit -> t

  (** Uninstall the tap and build the trace from what it captured. *)
  val stop : t -> Xfd_util.Json.t

  (** Returns the number of slices written. *)
  val stop_to_file : t -> string -> int

  (** Slices not captured because the bound was hit. *)
  val dropped : t -> int
end
