(** The flight recorder: a bounded, leveled run log for detection runs.

    The engine records lifecycle events — failure points
    scheduled/started/judged, snapshots recorded/dropped, worker joins —
    through {!record}.  The newest events are retained in a ring of
    {!capacity} entries (oldest dropped and counted in
    ["flight.events_dropped"]), stamped with the {!run_id} of the
    enclosing detection run, and streamed as JSONL records of
    [{"type":"flight",...}] shape whenever an [Obs.Sink] is installed.
    Every 64th event additionally samples [Gc.quick_stat] into the
    [gc.*] gauges.

    Recording is observation-only and verdict-neutral: it is bounded,
    never raises into the caller, and has no channel back into detection
    state. *)

type level = Debug | Info | Warn

val level_to_string : level -> string
val level_of_string : string -> level option

type event = {
  seq : int;  (** process-global monotone sequence number *)
  ts : float;  (** Unix timestamp, seconds *)
  run : string;  (** id of the detection run this event belongs to *)
  level : level;
  name : string;  (** dotted event name, e.g. ["fp.verdict"] *)
  fields : (string * Xfd_util.Json.t) list;
}

(** {1 Configuration} *)

(** Whether events are recorded at all (default [true]). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Minimum level retained (default [Info]; the engine's per-failure-point
    events are [Debug], so the default run log stays small). *)
val level : unit -> level

val set_level : level -> unit

(** Ring size in events (default 8192).  [set_capacity] reallocates,
    keeping the newest events and counting any overflow as dropped. *)
val capacity : unit -> int

val set_capacity : int -> unit

(** {1 Recording} *)

(** [record ~level name fields] appends one event (if enabled and at or
    above the level threshold), tagging it with the current run id. *)
val record : ?level:level -> string -> (string * Xfd_util.Json.t) list -> unit

(** Start a new run scope: generates a fresh run id, makes it current,
    and records a ["run.begin"] event.  Returns the id. *)
val begin_run : program:string -> string

(** Record a ["run.end"] event carrying [fields]. *)
val end_run : (string * Xfd_util.Json.t) list -> unit

(** The current run id (["-"] before the first {!begin_run}). *)
val run_id : unit -> string

(** {1 Inspection and export} *)

(** Retained events, oldest first.  Non-consuming. *)
val events : unit -> event list

(** Drop every retained event (counters are untouched). *)
val clear : unit -> unit

val event_to_json : event -> Xfd_util.Json.t

(** Write the retained events to [path] as JSONL, oldest first; returns
    how many were written. *)
val write_jsonl : string -> int

val pp_event : Format.formatter -> event -> unit
