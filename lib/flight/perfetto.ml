(* Chrome trace-event export: the finished-span buffer as a trace.json.

   The format is the JSON "trace event" flavour that Perfetto and
   chrome://tracing both load: one object per span with "ph":"X"
   (complete event), microsecond timestamps relative to the earliest
   span, and pid/tid lanes.  Spans carry the id of the domain they ran
   on, so each domain-pool worker of the engine's post-failure stage
   gets its own track — the parallel section of a run is visible as
   overlapping post_run slices on separate rows. *)

module Json = Xfd_util.Json
module Obs = Xfd_obs.Obs

let pid = 1

(* One slice, normalized against the trace origin [t0] (seconds). *)
let complete_event ~t0 ~name ~tid ~start ~dur ~args =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str "xfd");
       ("ph", Json.Str "X");
       ("ts", Json.Float (1e6 *. (start -. t0)));
       ("dur", Json.Float (1e6 *. dur));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

let metadata_event ~name ~tid ~args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let track_name tid = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid

let thread_metadata tids =
  List.concat_map
    (fun tid ->
      [
        metadata_event ~name:"thread_name" ~tid
          ~args:[ ("name", Json.Str (track_name tid)) ];
        (* Keep the main domain on top, workers below in domain order. *)
        metadata_event ~name:"thread_sort_index" ~tid ~args:[ ("sort_index", Json.Int tid) ];
      ])
    (List.sort_uniq compare tids)

let trace_json ?(process_name = "xfd") slices tids =
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          ((metadata_event ~name:"process_name" ~tid:0
              ~args:[ ("name", Json.Str process_name) ]
           :: thread_metadata tids)
          @ slices) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let of_spans ?process_name (spans : Obs.Span.record list) =
  let t0 =
    List.fold_left (fun acc (r : Obs.Span.record) -> Float.min acc r.Obs.Span.start)
      infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let slices =
    List.map
      (fun (r : Obs.Span.record) ->
        complete_event ~t0 ~name:r.Obs.Span.name ~tid:r.Obs.Span.tid ~start:r.Obs.Span.start
          ~dur:r.Obs.Span.dur ~args:r.Obs.Span.meta)
      spans
  in
  trace_json ?process_name slices (List.map (fun (r : Obs.Span.record) -> r.Obs.Span.tid) spans)

let write path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let to_file ?process_name path spans = write path (of_spans ?process_name spans)

(* ---- collector ----

   [of_spans] serves callers that already hold a span list (one engine
   outcome).  Long multi-run sessions — a fuzz sweep, the whole bench
   harness — never hold the full list: each [Engine.detect] drains its
   own spans from the bounded buffer.  The collector taps the sink
   stream instead: it parses every {"type":"span"} record back into
   slice parameters as it passes by, bounded by [capacity]. *)

module Collector = struct
  type t = {
    sink : Obs.Sink.t;
    (* (name, tid, start_s, dur_s, args), newest first; writes are already
       serialized by the sink dispatch lock. *)
    slices : (string * int * float * float * (string * Json.t) list) list ref;
    count : int ref;
    dropped : int ref;
    capacity : int;
  }

  let field j key = Json.member key j

  let num = function Some (Json.Float f) -> Some f | Some (Json.Int i) -> Some (float_of_int i) | _ -> None

  let slice_of_json j =
    match (field j "type", field j "name", num (field j "start_s"), num (field j "dur_s")) with
    | Some (Json.Str "span"), Some (Json.Str name), Some start, Some dur ->
      let tid = match field j "tid" with Some (Json.Int t) -> t | _ -> 0 in
      let args = match field j "meta" with Some (Json.Obj m) -> m | _ -> [] in
      Some (name, tid, start, dur, args)
    | _ -> None

  let start ?(capacity = 200_000) () =
    let slices = ref [] and count = ref 0 and dropped = ref 0 in
    let write j =
      match slice_of_json j with
      | None -> ()
      | Some s ->
        if !count < capacity then begin
          slices := s :: !slices;
          incr count
        end
        else incr dropped
    in
    let sink = Obs.Sink.of_fn ~write ~close:ignore in
    Obs.Sink.install sink;
    { sink; slices; count; dropped; capacity }

  let dropped t = !(t.dropped)

  let stop t =
    Obs.Sink.uninstall t.sink;
    let slices = List.rev !(t.slices) in
    let t0 =
      List.fold_left (fun acc (_, _, start, _, _) -> Float.min acc start) infinity slices
    in
    let t0 = if Float.is_finite t0 then t0 else 0.0 in
    trace_json
      (List.map
         (fun (name, tid, start, dur, args) -> complete_event ~t0 ~name ~tid ~start ~dur ~args)
         slices)
      (List.map (fun (_, tid, _, _, _) -> tid) slices)

  let stop_to_file t path =
    let n = !(t.count) in
    write path (stop t);
    n
end
