module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr

type issue = {
  loc : Xfd_util.Loc.t;
  addr : Xfd_mem.Addr.t;
  bytes : int;
  kind : [ `Not_persisted | `Superfluous_flush ];
}

type result = { issues : issue list; stores_tracked : int }

let check trace =
  let dirty : (Addr.t, Xfd_util.Loc.t) Hashtbl.t = Hashtbl.create 1024 in
  let pending : (Addr.t, Xfd_util.Loc.t) Hashtbl.t = Hashtbl.create 1024 in
  let superfluous : (string, issue) Hashtbl.t = Hashtbl.create 16 in
  let stores = ref 0 in
  Trace.iter trace (fun ev ->
      let loc = ev.Event.loc in
      match ev.Event.kind with
      | Event.Write { addr; size } | Event.Nt_write { addr; size } ->
        incr stores;
        Addr.iter_bytes addr size (fun a ->
            Hashtbl.remove pending a;
            Hashtbl.replace dirty a loc)
      | Event.Clwb { addr } | Event.Clflush { addr } | Event.Clflushopt { addr } -> begin
        let line = Addr.line_of addr in
        let had = ref false in
        Addr.iter_bytes line Addr.line_size (fun a ->
            match Hashtbl.find_opt dirty a with
            | Some wloc ->
              had := true;
              Hashtbl.remove dirty a;
              Hashtbl.replace pending a wloc
            | None -> ());
        if not !had then begin
          let key = Xfd_util.Loc.to_string loc in
          if not (Hashtbl.mem superfluous key) then
            Hashtbl.replace superfluous key
              { loc; addr = line; bytes = Addr.line_size; kind = `Superfluous_flush }
        end
      end
      | Event.Sfence | Event.Mfence -> Hashtbl.reset pending
      | Event.Read _ -> ()
      (* pmemcheck is an ADR-era tool: the CXL GPF barrier does not exist
         on the platforms it models, so the event is inert here. *)
      | Event.Gpf | Event.Tx_begin | Event.Tx_add _ | Event.Tx_xadd _ | Event.Tx_commit
      | Event.Tx_abort | Event.Tx_alloc _ | Event.Tx_free _ | Event.Commit_var _
      | Event.Commit_range _ | Event.Roi_begin | Event.Roi_end
      | Event.Skip_detection_begin | Event.Skip_detection_end | Event.Marker _ ->
        ());
  (* Group leftover bytes by the store site that produced them. *)
  let by_site : (string, Addr.t * Xfd_util.Loc.t * int) Hashtbl.t = Hashtbl.create 16 in
  let note a wloc =
    let key = Xfd_util.Loc.to_string wloc in
    match Hashtbl.find_opt by_site key with
    | Some (first, l, n) -> Hashtbl.replace by_site key (min first a, l, n + 1)
    | None -> Hashtbl.replace by_site key (a, wloc, 1)
  in
  Hashtbl.iter note dirty;
  Hashtbl.iter note pending;
  let issues =
    Hashtbl.fold
      (fun _ (addr, loc, bytes) acc -> { loc; addr; bytes; kind = `Not_persisted } :: acc)
      by_site []
  in
  let issues = issues @ Hashtbl.fold (fun _ i acc -> i :: acc) superfluous [] in
  { issues; stores_tracked = !stores }

let run program =
  let dev = Xfd_mem.Pm_device.create () in
  let trace = Trace.create () in
  let ctx = Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Pre_failure ~dev ~trace () in
  let t0 = Unix.gettimeofday () in
  program.Xfd.Engine.setup ctx;
  (match program.Xfd.Engine.pre ctx with
  | () -> ()
  | exception Xfd_sim.Ctx.Detection_complete -> ());
  let result = check trace in
  (result, Unix.gettimeofday () -. t0)

let pp_issue ppf { loc; addr; bytes; kind } =
  let k =
    match kind with
    | `Not_persisted -> "store not persisted by end of run"
    | `Superfluous_flush -> "superfluous flush of clean line"
  in
  Format.fprintf ppf "pmemcheck: %s at %a (%a, %d byte(s))" k Xfd_util.Loc.pp loc
    Xfd_mem.Addr.pp addr bytes
