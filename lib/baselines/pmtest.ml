module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr
module Track = Xfd_lint.Track

type violation = {
  loc : Xfd_util.Loc.t;
  addr : Xfd_mem.Addr.t;
  size : int;
  rule : string;
}

type result = { violations : violation list; events_checked : int }

(* The state machine (byte-granular persistence with line-granular flushes,
   TX logging, RoI/skip scoping) lives in {!Xfd_lint.Track}, shared with the
   linter so the two rule sets cannot drift; this module only maps the
   tracker's hits onto PMTest's historical rule strings.  A flush of an
   already-persisted line is not a PMTest rule (the original tool stops
   tracking a byte once it is fenced), so [`Persisted] hits are dropped. *)
let check trace =
  let violations = ref [] in
  let dedup = Hashtbl.create 32 in
  let record loc addr size rule =
    let key = Printf.sprintf "%s:%s" (Xfd_util.Loc.to_string loc) rule in
    if not (Hashtbl.mem dedup key) then begin
      Hashtbl.replace dedup key ();
      violations := { loc; addr; size; rule } :: !violations
    end
  in
  let tr =
    Track.create
      ~on_hit:(fun hit ->
        match hit with
        | Track.Tx_unlogged_write { loc; addr; size } ->
          record loc addr size "write inside transaction to object not added to it"
        | Track.Redundant_flush { loc; line; already = `Pending } ->
          record loc line Addr.line_size "redundant writeback (line already pending)"
        | Track.Redundant_flush { already = `Persisted; _ } -> ()
        | Track.Duplicate_tx_add { loc; addr; size } ->
          record loc addr size "duplicated TX_ADD for the same object")
      ()
  in
  Trace.iter trace (Track.feed tr);
  (* End of execution: everything modified must have reached PM. *)
  let leftovers = Hashtbl.create 16 in
  List.iter
    (fun (a, (i : Track.info)) ->
      Hashtbl.replace leftovers (Xfd_util.Loc.to_string i.Track.writer) (a, i.Track.writer))
    (Track.unpersisted tr);
  Hashtbl.iter
    (fun _ (a, wloc) -> record wloc a 1 "PM update not persisted by end of execution")
    leftovers;
  let events_checked = Track.events tr in
  Track.release tr;
  { violations = List.rev !violations; events_checked }

let run program =
  let dev = Xfd_mem.Pm_device.create () in
  let trace = Trace.create () in
  let ctx = Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Pre_failure ~dev ~trace () in
  let t0 = Unix.gettimeofday () in
  program.Xfd.Engine.setup ctx;
  (match program.Xfd.Engine.pre ctx with
  | () -> ()
  | exception Xfd_sim.Ctx.Detection_complete -> ());
  let result = check trace in
  (result, Unix.gettimeofday () -. t0)

let pp_violation ppf { loc; addr; size; rule } =
  Format.fprintf ppf "PMTest violation: %s at %a (%a+%d)" rule Xfd_util.Loc.pp loc
    Xfd_mem.Addr.pp addr size
