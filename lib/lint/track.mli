(** Shared per-line bookkeeping of the static analyses.

    One pass over a trace maintaining, per byte, the abstract persistence
    state ({!Abs.t}) with the locations that produced it, plus transaction
    and detection-framing context (RoI, skip regions, TX depth and logged
    ranges, fence-epoch counter).  The rules that {!Xfd_baselines.Pmtest}
    and {!Lint} have in common — unlogged writes inside a transaction,
    redundant writebacks, duplicated TX_ADDs — fire here, through the
    [on_hit] callback, so the baseline and the linter cannot drift apart:
    both consume the same transitions.

    Semantics are byte-granular with line-granular flushes, exactly as the
    dynamic detector models them: a flush captures every dirty byte of its
    64-byte line; a fence orders every captured byte in the program and
    opens a new epoch.  Hits fire only while {!checking} (inside the RoI
    and outside skip regions), matching both consumers' reporting scope. *)

(** The rules shared between the PMTest baseline and the linter. *)
type hit =
  | Tx_unlogged_write of { loc : Xfd_util.Loc.t; addr : Xfd_mem.Addr.t; size : int }
      (** store inside a transaction to a range never TX_ADDed *)
  | Redundant_flush of {
      loc : Xfd_util.Loc.t;
      line : Xfd_mem.Addr.t;
      already : [ `Pending | `Persisted ];
    }
      (** flush of a line with no dirty byte: [`Pending] when the line is
          captured and awaiting a fence (PMTest's "redundant writeback"),
          [`Persisted] when it is already durable *)
  | Duplicate_tx_add of { loc : Xfd_util.Loc.t; addr : Xfd_mem.Addr.t; size : int }
      (** TX_ADD overlapping a range already logged in this transaction
          (TX_XADD registrations never fire this, by design) *)

(** What the tracker knows about one written byte. *)
type info = {
  state : Abs.t;  (** [Dirty], [Pending] or [Persisted]; never [Bot]/[Top] *)
  writer : Xfd_util.Loc.t;  (** location of the last store *)
  write_epoch : int;  (** fence epoch of the last store *)
  flush : (Xfd_util.Loc.t * int) option;
      (** capturing flush (location, epoch) when pending or persisted; for
          non-temporal stores this is the store itself *)
}

type t

(** [domain] selects the persistence-domain model for the transfer
    functions (default [Adr], the paper's semantics — byte-identical to
    the pre-parametric tracker).  Under [Eadr] stores are durable at store
    so every flush of written data fires [Redundant_flush `Persisted];
    under [Cxl_gpf] a flush is durable on arrival, fences are
    ordering-only, and the GPF barrier event persists every outstanding
    byte. *)
val create : ?domain:Xfd_trace.Domain_model.t -> ?on_hit:(hit -> unit) -> unit -> t

(** The persistence-domain model this tracker was created with. *)
val domain : t -> Xfd_trace.Domain_model.t

(** Return the tracker's flat shadow pages to the global
    [shadow.page_bytes_live] accounting.  Idempotent; call when the
    analysis is done with the tracker. *)
val release : t -> unit

(** Feed one trace event through the state machine (and fire hits). *)
val feed : t -> Xfd_trace.Event.t -> unit

(** Inside the RoI and outside every skip region — the scope in which
    shared rules report. *)
val checking : t -> bool

(** Fence epochs elapsed (a fence closes the current epoch). *)
val epoch : t -> int

val in_tx : t -> bool

(** Events fed so far. *)
val events : t -> int

val info : t -> Xfd_mem.Addr.t -> info option

(** State of one byte; [Abs.Bot] when never written. *)
val byte_state : t -> Xfd_mem.Addr.t -> Abs.t

(** Join of the byte states over the 64-byte line containing [addr]
    ([Abs.Bot] for an untouched line). *)
val line_state : t -> Xfd_mem.Addr.t -> Abs.t

(** Iterate over every written byte, in unspecified order. *)
val iter_tracked : t -> (Xfd_mem.Addr.t -> info -> unit) -> unit

(** Bytes whose updates never reached PM: every byte still [Dirty] or
    [Pending], in unspecified order.  PMTest's end-of-execution rule and
    the linter's unflushed/unfenced rules are both projections of this. *)
val unpersisted : t -> (Xfd_mem.Addr.t * info) list
