module Event = Xfd_trace.Event
module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc

type hit =
  | Tx_unlogged_write of { loc : Loc.t; addr : Addr.t; size : int }
  | Redundant_flush of {
      loc : Loc.t;
      line : Addr.t;
      already : [ `Pending | `Persisted ];
    }
  | Duplicate_tx_add of { loc : Loc.t; addr : Addr.t; size : int }

type info = {
  state : Abs.t;
  writer : Loc.t;
  write_epoch : int;
  flush : (Loc.t * int) option;
}

type byte = {
  mutable state : Abs.t;
  mutable writer : Loc.t;
  mutable write_epoch : int;
  mutable flush : (Loc.t * int) option;
}

type t = {
  bytes : (Addr.t, byte) Hashtbl.t;
  mutable epoch : int;
  mutable in_roi : bool;
  mutable skip_depth : int;
  mutable tx_depth : int;
  mutable tx_ranges : (Addr.t * int) list;
  mutable events : int;
  on_hit : hit -> unit;
}

let create ?(on_hit = fun _ -> ()) () =
  {
    bytes = Hashtbl.create 512;
    epoch = 0;
    in_roi = false;
    skip_depth = 0;
    tx_depth = 0;
    tx_ranges = [];
    events = 0;
    on_hit;
  }

let checking t = t.in_roi && t.skip_depth = 0
let epoch t = t.epoch
let in_tx t = t.tx_depth > 0
let events t = t.events

let on_write t loc addr size ~nt =
  if checking t && t.tx_depth > 0 then begin
    let covered = List.exists (fun r -> Addr.overlap r (addr, size)) t.tx_ranges in
    if not covered then t.on_hit (Tx_unlogged_write { loc; addr; size })
  end;
  Addr.iter_bytes addr size (fun a ->
      let state = if nt then Abs.on_nt_write Abs.Bot else Abs.on_write Abs.Bot in
      let flush = if nt then Some (loc, t.epoch) else None in
      match Hashtbl.find_opt t.bytes a with
      | Some b ->
        b.state <- state;
        b.writer <- loc;
        b.write_epoch <- t.epoch;
        b.flush <- flush
      | None ->
        Hashtbl.replace t.bytes a { state; writer = loc; write_epoch = t.epoch; flush })

let on_flush t loc addr =
  let line = Addr.line_of addr in
  let dirty = ref false and pending = ref false and persisted = ref false in
  Addr.iter_bytes line Addr.line_size (fun a ->
      match Hashtbl.find_opt t.bytes a with
      | None -> ()
      | Some b -> (
        match b.state with
        | Abs.Dirty -> dirty := true
        | Abs.Pending -> pending := true
        | Abs.Persisted -> persisted := true
        | Abs.Bot | Abs.Top -> ()));
  if !dirty then
    Addr.iter_bytes line Addr.line_size (fun a ->
        match Hashtbl.find_opt t.bytes a with
        | Some b when Abs.equal b.state Abs.Dirty ->
          b.state <- Abs.on_flush b.state;
          b.flush <- Some (loc, t.epoch)
        | Some _ | None -> ())
  else if (!pending || !persisted) && checking t then
    t.on_hit
      (Redundant_flush
         { loc; line; already = (if !pending then `Pending else `Persisted) })

let on_fence t =
  Hashtbl.iter (fun _ b -> b.state <- Abs.on_fence b.state) t.bytes;
  t.epoch <- t.epoch + 1

let feed t ev =
  t.events <- t.events + 1;
  let loc = ev.Event.loc in
  match ev.Event.kind with
  | Event.Write { addr; size } -> on_write t loc addr size ~nt:false
  | Event.Nt_write { addr; size } -> on_write t loc addr size ~nt:true
  | Event.Clwb { addr } | Event.Clflush { addr } | Event.Clflushopt { addr } ->
    on_flush t loc addr
  | Event.Sfence | Event.Mfence -> on_fence t
  | Event.Tx_begin ->
    t.tx_depth <- t.tx_depth + 1;
    if t.tx_depth = 1 then t.tx_ranges <- []
  | Event.Tx_add { addr; size } | Event.Tx_xadd { addr; size } ->
    if t.tx_depth > 0 then begin
      if
        checking t
        && List.exists (fun r -> Addr.overlap r (addr, size)) t.tx_ranges
        && (match ev.Event.kind with Event.Tx_add _ -> true | _ -> false)
      then t.on_hit (Duplicate_tx_add { loc; addr; size });
      t.tx_ranges <- (addr, size) :: t.tx_ranges
    end
  | Event.Tx_alloc { addr; size; _ } ->
    if t.tx_depth > 0 then t.tx_ranges <- (addr, size) :: t.tx_ranges
  | Event.Tx_commit | Event.Tx_abort ->
    t.tx_depth <- max 0 (t.tx_depth - 1);
    if t.tx_depth = 0 then t.tx_ranges <- []
  | Event.Tx_free _ -> ()
  | Event.Roi_begin -> t.in_roi <- true
  | Event.Roi_end -> t.in_roi <- false
  | Event.Skip_detection_begin -> t.skip_depth <- t.skip_depth + 1
  | Event.Skip_detection_end -> t.skip_depth <- max 0 (t.skip_depth - 1)
  | Event.Read _ | Event.Commit_var _ | Event.Commit_range _ | Event.Marker _ -> ()

let info_of b : info =
  { state = b.state; writer = b.writer; write_epoch = b.write_epoch; flush = b.flush }

let info t a = Option.map info_of (Hashtbl.find_opt t.bytes a)

let byte_state t a =
  match Hashtbl.find_opt t.bytes a with Some b -> b.state | None -> Abs.Bot

let line_state t addr =
  let line = Addr.line_of addr in
  let acc = ref Abs.Bot in
  Addr.iter_bytes line Addr.line_size (fun a -> acc := Abs.join !acc (byte_state t a));
  !acc

let iter_tracked t f = Hashtbl.iter (fun a b -> f a (info_of b)) t.bytes

let unpersisted t =
  Hashtbl.fold
    (fun a b acc ->
      match b.state with
      | Abs.Dirty | Abs.Pending -> (a, info_of b) :: acc
      | Abs.Bot | Abs.Persisted | Abs.Top -> acc)
    t.bytes []
