module Event = Xfd_trace.Event
module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Pages = Xfd_mem.Shadow_pages

type hit =
  | Tx_unlogged_write of { loc : Loc.t; addr : Addr.t; size : int }
  | Redundant_flush of {
      loc : Loc.t;
      line : Addr.t;
      already : [ `Pending | `Persisted ];
    }
  | Duplicate_tx_add of { loc : Loc.t; addr : Addr.t; size : int }

type info = {
  state : Abs.t;
  writer : Loc.t;
  write_epoch : int;
  flush : (Loc.t * int) option;
}

(* Per-byte state lives in flat {!Xfd_mem.Shadow_pages}: the packed byte
   carries the {!Abs.t} lattice point (bits 0-2) and the tracked/pending
   flags, the pending bit set exactly when the state is [Abs.Pending] —
   so the fence promotion walks the per-page pending bitmap instead of
   every written byte ([Abs.on_fence] is the identity elsewhere).  Cold
   provenance fields sit in parallel per-page arrays. *)
let st_dirty = 1
let st_pending = 2
let st_persisted = 3
let st_top = 4

let encode_abs = function
  | Abs.Bot -> 0
  | Abs.Dirty -> st_dirty
  | Abs.Pending -> st_pending
  | Abs.Persisted -> st_persisted
  | Abs.Top -> st_top

let decode_abs s =
  if s = st_dirty then Abs.Dirty
  else if s = st_pending then Abs.Pending
  else if s = st_persisted then Abs.Persisted
  else if s = st_top then Abs.Top
  else Abs.Bot

let packed_of_abs s =
  encode_abs s lor Pages.bit_tracked
  lor (if Abs.equal s Abs.Pending then Pages.bit_pending else 0)

type meta = {
  writer : Loc.t array;
  write_epoch : int array;
  flush : (Loc.t * int) option array;
}

type t = {
  pages : Pages.t;
  meta : (int, meta) Hashtbl.t;
  mutable last_meta : (int * meta) option;
  mutable epoch : int;
  mutable in_roi : bool;
  mutable skip_depth : int;
  mutable tx_depth : int;
  mutable tx_ranges : (Addr.t * int) list;
  mutable events : int;
  on_hit : hit -> unit;
  domain : Xfd_trace.Domain_model.t;
}

let create ?(domain = Xfd_trace.Domain_model.Adr) ?(on_hit = fun _ -> ()) () =
  {
    pages = Pages.create ();
    meta = Hashtbl.create 16;
    last_meta = None;
    epoch = 0;
    in_roi = false;
    skip_depth = 0;
    tx_depth = 0;
    tx_ranges = [];
    events = 0;
    on_hit;
    domain;
  }

let domain t = t.domain

let release t =
  Pages.release t.pages;
  Hashtbl.reset t.meta;
  t.last_meta <- None

let page_index addr = addr lsr 12
let page_offset addr = addr land 4095

let meta_for t addr =
  let idx = page_index addr in
  match t.last_meta with
  | Some (i, m) when i = idx -> Some m
  | _ -> (
    match Hashtbl.find_opt t.meta idx with
    | Some m ->
      t.last_meta <- Some (idx, m);
      Some m
    | None -> None)

let own_meta t addr =
  match meta_for t addr with
  | Some m -> m
  | None ->
    let m =
      {
        writer = Array.make Pages.page_size Loc.unknown;
        write_epoch = Array.make Pages.page_size (-1);
        flush = Array.make Pages.page_size None;
      }
    in
    let idx = page_index addr in
    Hashtbl.replace t.meta idx m;
    t.last_meta <- Some (idx, m);
    m

let checking t = t.in_roi && t.skip_depth = 0
let epoch t = t.epoch
let in_tx t = t.tx_depth > 0
let events t = t.events

let on_write t loc addr size ~nt =
  if checking t && t.tx_depth > 0 then begin
    let covered = List.exists (fun r -> Addr.overlap r (addr, size)) t.tx_ranges in
    if not covered then t.on_hit (Tx_unlogged_write { loc; addr; size })
  end;
  let state =
    if nt then Abs.on_nt_write_in t.domain Abs.Bot
    else Abs.on_write_in t.domain Abs.Bot
  in
  let packed = packed_of_abs state in
  Addr.iter_bytes addr size (fun a ->
      Pages.set t.pages a packed;
      let m = own_meta t a in
      let off = page_offset a in
      m.writer.(off) <- loc;
      m.write_epoch.(off) <- t.epoch;
      m.flush.(off) <- (if nt then Some (loc, t.epoch) else None))

let on_flush t loc addr =
  let line = Addr.line_of addr in
  let dirty = ref false and pending = ref false and persisted = ref false in
  Pages.iter_line t.pages line Addr.line_size (fun _ packed ->
      if packed <> 0 then
        let s = Pages.state_of packed in
        if s = st_dirty then dirty := true
        else if s = st_pending then pending := true
        else if s = st_persisted then persisted := true);
  if !dirty then
    Addr.iter_bytes line Addr.line_size (fun a ->
        let packed = Pages.get t.pages a in
        if packed <> 0 && Pages.state_of packed = st_dirty then begin
          Pages.set t.pages a (packed_of_abs (Abs.on_flush_in t.domain Abs.Dirty));
          (own_meta t a).flush.(page_offset a) <- Some (loc, t.epoch)
        end)
  else if (!pending || !persisted) && checking t then
    t.on_hit
      (Redundant_flush
         { loc; line; already = (if !pending then `Pending else `Persisted) })

let on_fence t =
  (* [Abs.on_fence] only moves [Pending] (tracked in the pending bitmap);
     every other byte is a fixpoint, so the old whole-table sweep reduces
     to the pending bytes.  Only ADR fences persist; under eADR/CXL-GPF
     [Pending] is unreachable anyway and a fence is ordering-only.  The
     epoch ticks in every model — fences still order program points. *)
  (if Abs.equal (Abs.on_fence_in t.domain Abs.Pending) Abs.Persisted then
     List.iter
       (fun a -> Pages.set t.pages a (packed_of_abs Abs.Persisted))
       (Pages.pending_addrs t.pages));
  t.epoch <- t.epoch + 1

let on_gpf t loc =
  (* The global persistent flush barrier: under CXL-GPF every outstanding
     byte becomes persistent at once and the barrier is an ordering point;
     under ADR/eADR the event is inert (the platform has no GPF). *)
  if Abs.equal (Abs.on_gpf_in t.domain Abs.Dirty) Abs.Persisted then begin
    let promote = ref [] in
    Pages.iter_tracked t.pages (fun a packed ->
        let s = Pages.state_of packed in
        if s = st_dirty || s = st_pending then promote := a :: !promote);
    List.iter
      (fun a ->
        Pages.set t.pages a (packed_of_abs Abs.Persisted);
        (own_meta t a).flush.(page_offset a) <- Some (loc, t.epoch))
      !promote;
    t.epoch <- t.epoch + 1
  end

let feed t ev =
  t.events <- t.events + 1;
  let loc = ev.Event.loc in
  match ev.Event.kind with
  | Event.Write { addr; size } -> on_write t loc addr size ~nt:false
  | Event.Nt_write { addr; size } -> on_write t loc addr size ~nt:true
  | Event.Clwb { addr } | Event.Clflush { addr } | Event.Clflushopt { addr } ->
    on_flush t loc addr
  | Event.Sfence | Event.Mfence -> on_fence t
  | Event.Gpf -> on_gpf t loc
  | Event.Tx_begin ->
    t.tx_depth <- t.tx_depth + 1;
    if t.tx_depth = 1 then t.tx_ranges <- []
  | Event.Tx_add { addr; size } | Event.Tx_xadd { addr; size } ->
    if t.tx_depth > 0 then begin
      if
        checking t
        && List.exists (fun r -> Addr.overlap r (addr, size)) t.tx_ranges
        && (match ev.Event.kind with Event.Tx_add _ -> true | _ -> false)
      then t.on_hit (Duplicate_tx_add { loc; addr; size });
      t.tx_ranges <- (addr, size) :: t.tx_ranges
    end
  | Event.Tx_alloc { addr; size; _ } ->
    if t.tx_depth > 0 then t.tx_ranges <- (addr, size) :: t.tx_ranges
  | Event.Tx_commit | Event.Tx_abort ->
    t.tx_depth <- max 0 (t.tx_depth - 1);
    if t.tx_depth = 0 then t.tx_ranges <- []
  | Event.Tx_free _ -> ()
  | Event.Roi_begin -> t.in_roi <- true
  | Event.Roi_end -> t.in_roi <- false
  | Event.Skip_detection_begin -> t.skip_depth <- t.skip_depth + 1
  | Event.Skip_detection_end -> t.skip_depth <- max 0 (t.skip_depth - 1)
  | Event.Read _ | Event.Commit_var _ | Event.Commit_range _ | Event.Marker _ -> ()

let info_of t a packed : info =
  let m = meta_for t a in
  let off = page_offset a in
  {
    state = decode_abs (Pages.state_of packed);
    writer = (match m with Some m -> m.writer.(off) | None -> Loc.unknown);
    write_epoch = (match m with Some m -> m.write_epoch.(off) | None -> -1);
    flush = (match m with Some m -> m.flush.(off) | None -> None);
  }

let info t a =
  let packed = Pages.get t.pages a in
  if packed = 0 then None else Some (info_of t a packed)

let byte_state t a =
  let packed = Pages.get t.pages a in
  if packed = 0 then Abs.Bot else decode_abs (Pages.state_of packed)

let line_state t addr =
  let line = Addr.line_of addr in
  let acc = ref Abs.Bot in
  Pages.iter_line t.pages line Addr.line_size (fun _ packed ->
      if packed <> 0 then acc := Abs.join !acc (decode_abs (Pages.state_of packed)));
  !acc

let iter_tracked t f =
  Pages.iter_tracked t.pages (fun a packed -> f a (info_of t a packed))

let unpersisted t =
  let acc = ref [] in
  Pages.iter_tracked t.pages (fun a packed ->
      let s = Pages.state_of packed in
      if s = st_dirty || s = st_pending then acc := (a, info_of t a packed) :: !acc);
  !acc
