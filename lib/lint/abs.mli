(** Abstract persistence state: the lint lattice over the paper's Figure 9
    FSM.

    The concrete per-byte machine (see {!Xfd.Pstate}) moves
    modified → writeback-pending → persisted.  The linter abstracts it into
    a flat lattice: [Bot] (never written on this path), the three FSM
    states, and [Top] (states disagree across joined paths).  Straight-line
    traces never produce [Top]; it exists so per-line summaries — the join
    of a line's byte states — and any future path-merging stay well
    defined.  All transfer functions are monotone with respect to
    {!leq}. *)

type t = Bot | Dirty | Pending | Persisted | Top

(** Least upper bound of the flat lattice ([Bot] identity, [Top]
    absorbing, distinct middle elements join to [Top]). *)
val join : t -> t -> t

(** Partial order: [Bot] below everything, [Top] above everything, the
    middle elements pairwise incomparable. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** Transfer functions, per byte.  Stores are strong updates (the outcome
    does not depend on the incoming state): a store dirties, a non-temporal
    store bypasses the cache straight to pending.  Flush and fence are weak:
    a flush captures only dirty bytes, a fence orders only pending ones, and
    both preserve [Top] (conservative). *)

val on_write : t -> t

val on_nt_write : t -> t
val on_flush : t -> t
val on_fence : t -> t

(** Domain-parametric transfers.  [on_*_in Adr] is definitionally the
    corresponding un-suffixed function.  Under [Eadr] every store lands
    [Persisted] and flush/fence are the identity (persistence-wise a
    no-op).  Under [Cxl_gpf] a flush or non-temporal store is durable on
    arrival at the device ([Dirty]/[Pending] → [Persisted]), fences order
    without persisting, and {!on_gpf_in} models the global persistent
    flush barrier, persisting every outstanding byte.  All remain
    monotone with respect to {!leq}. *)

val on_write_in : Xfd_trace.Domain_model.t -> t -> t
val on_nt_write_in : Xfd_trace.Domain_model.t -> t -> t
val on_flush_in : Xfd_trace.Domain_model.t -> t -> t
val on_fence_in : Xfd_trace.Domain_model.t -> t -> t
val on_gpf_in : Xfd_trace.Domain_model.t -> t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
