type t = Bot | Dirty | Pending | Persisted | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | x, y -> if x = y then x else Top

let leq a b =
  match (a, b) with Bot, _ | _, Top -> true | x, y -> x = y

let equal (a : t) b = a = b

let on_write _ = Dirty
let on_nt_write _ = Pending
let on_flush = function Dirty -> Pending | s -> s
let on_fence = function Pending -> Persisted | s -> s

let to_string = function
  | Bot -> "unwritten"
  | Dirty -> "dirty"
  | Pending -> "flush-pending"
  | Persisted -> "fenced-persistent"
  | Top -> "unknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)
