type t = Bot | Dirty | Pending | Persisted | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | x, y -> if x = y then x else Top

let leq a b =
  match (a, b) with Bot, _ | _, Top -> true | x, y -> x = y

let equal (a : t) b = a = b

let on_write _ = Dirty
let on_nt_write _ = Pending
let on_flush = function Dirty -> Pending | s -> s
let on_fence = function Pending -> Persisted | s -> s

(* Domain-parametric transfers (DESIGN.md decision 18).  [Adr] is exactly
   the functions above; the other models move the persistence boundary:
   under eADR the cache is persistent so a store is durable immediately,
   under CXL-GPF a flush crosses the device-persistence boundary and is
   durable on arrival (the device drains its buffers on power failure), so
   [Pending] is unreachable and fences order without persisting. *)

module D = Xfd_trace.Domain_model

let on_write_in = function
  | D.Adr | D.Cxl_gpf -> on_write
  | D.Eadr -> fun _ -> Persisted

let on_nt_write_in = function
  | D.Adr -> on_nt_write
  | D.Eadr | D.Cxl_gpf -> fun _ -> Persisted

let on_flush_in = function
  | D.Adr -> on_flush
  | D.Eadr -> fun s -> s
  | D.Cxl_gpf -> ( function Dirty | Pending -> Persisted | s -> s)

let on_fence_in = function
  | D.Adr -> on_fence
  | D.Eadr | D.Cxl_gpf -> fun s -> s

let on_gpf_in = function
  | D.Cxl_gpf -> ( function Dirty | Pending -> Persisted | s -> s)
  | D.Adr | D.Eadr -> fun s -> s

let to_string = function
  | Bot -> "unwritten"
  | Dirty -> "dirty"
  | Pending -> "flush-pending"
  | Persisted -> "fenced-persistent"
  | Top -> "unknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)
