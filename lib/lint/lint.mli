(** Flow-sensitive static crash-consistency analysis over traces and
    programs.

    XFDetector finds cross-failure bugs dynamically, by injecting a failure
    at every ordering point and re-executing recovery — thorough, but the
    cost grows with failure points × replay cost (the paper's §7 names this
    the scalability bottleneck).  Most real PM bugs, however, follow a small
    set of statically recognizable ordering/durability patterns (WITCHER;
    Hasan's PM bug study).  This module is the zero-execution complement: a
    single abstract-interpretation pass over the trace IR tracking per-byte
    {!Abs} persistence state (with line-granular flushes), fence epochs, TX
    logging context and commit-variable protocol state, firing eight rules.

    The linter is deliberately {e unsound as a filter} — a clean lint does
    not prove the absence of cross-failure bugs (a fence skipped between two
    later-refenced stores leaves no end-state evidence, yet opens a real
    race window).  It is therefore used to {e prioritize} failure points,
    never to prune them, and {!triage} quantifies exactly what it would have
    missed by cross-checking against the dynamic detector. *)

(** Everything the linter can complain about. *)
type rule =
  | Missing_flush_before_commit_store
      (** commit-variable store while associated range bytes are not yet
          fenced-persistent *)
  | Flush_without_ordering_fence
      (** writeback (or non-temporal store) never ordered by a fence *)
  | Store_to_committed_in_epoch
      (** store to committed data in the same fence epoch as the last
          commit store — not ordered before the commit (Eq. 3) *)
  | Write_not_tx_added  (** store inside a TX to a range never TX_ADDed *)
  | Unflushed_at_trace_end  (** store never captured by any writeback *)
  | Commit_var_never_persisted
      (** commit variable stored but not durable at end of trace *)
  | Redundant_flush  (** flush of a line with nothing dirty *)
  | Duplicate_tx_add  (** TX_ADD of an already-logged range *)

(** [Error]: a must-violation of a commit/logging protocol.  [Warning]: a
    may-race — whether it bites depends on what recovery reads.  [Perf]:
    wasted work, never a correctness issue. *)
type severity = Error | Warning | Perf

val all_rules : rule list

(** Stable kebab-case identifier, e.g.
    ["missing-flush-before-commit-store"]. *)
val rule_id : rule -> string

val rule_of_id : string -> rule option
val severity_of : rule -> severity

(** Per-rule severity under a persistence-domain model.  [severity_in Adr]
    is {!severity_of}.  The only reinterpretation today: on eADR hardware
    every flush of written data is pure overhead, so [Redundant_flush] is
    promoted from [Perf] to [Warning].  Rules a model makes vacuous (e.g.
    [Missing_flush_before_commit_store] under eADR) simply never fire —
    their transfer functions can no longer reach the offending state. *)
val severity_in : Xfd_trace.Domain_model.t -> rule -> severity

type finding = {
  rule : rule;
  severity : severity;
  loc : Xfd_util.Loc.t;  (** the instruction the rule indicts *)
  addr : Xfd_mem.Addr.t;
  size : int;
  index : int option;
      (** trace index of the firing event; [None] for end-of-trace rules *)
  related : (string * Xfd_util.Loc.t) list;
      (** named co-implicated locations (["writer"], ["writeback"],
          ["commit-store"], ...) — the static analogue of a provenance
          chain, and what {!triage} matches dynamic verdicts against *)
  hint : string;  (** one fix-hint sentence *)
}

type report = {
  findings : finding list;  (** in firing order, deduplicated *)
  events : int;  (** trace events analysed *)
  errors : int;
  warnings : int;
  perf : int;
}

val clean : report -> bool

(** Deduplication key of a finding (rule id + location), mirroring
    {!Xfd.Report.dedup_key}'s role for dynamic bugs. *)
val finding_key : finding -> string

(** Analyse a recorded trace under a persistence-domain model (default
    [Adr] — byte-identical to the pre-parametric analyzer). *)
val check_trace : ?domain:Xfd_trace.Domain_model.t -> Xfd_trace.Trace.t -> report

(** Trace the program's [setup] and [pre] stages (honouring the
    configuration's fault injection, library trust and strategy — but with
    no failure injection and no detection) and analyse the trace under the
    configuration's [domain].  This is the zero-replay entry: one
    execution, no snapshots, no post-failure runs. *)
val check_prog : ?config:Xfd.Config.t -> Xfd.Engine.program -> report

(** {1 Differential analysis across persistence-domain models} *)

(** How one finding key behaves across the analysed models, relative to
    the baseline: [`Stable] — fires under every model; [`Appears_in ms] —
    absent under the baseline, fires under [ms]; [`Disappears_in ms] —
    fires under the baseline but not under [ms].  The appear/disappear
    sets are exactly the CXL-era findings the ADR-only analysis cannot
    express. *)
type classification =
  [ `Stable
  | `Appears_in of Xfd_trace.Domain_model.t list
  | `Disappears_in of Xfd_trace.Domain_model.t list ]

type diff_entry = {
  key : string;  (** {!finding_key} the entry is aligned on *)
  entry_rule : rule;
  entry_loc : Xfd_util.Loc.t;
  by_model : (Xfd_trace.Domain_model.t * finding option) list;
      (** the finding under each analysed model, [None] where it does not
          fire; one pair per model, in report order *)
  classification : classification;
}

type diff_report = {
  baseline : Xfd_trace.Domain_model.t;
  models : Xfd_trace.Domain_model.t list;
  reports : (Xfd_trace.Domain_model.t * report) list;
  entries : diff_entry list;  (** first-appearance order *)
}

(** Run the analyzer once per model over the same trace and align findings
    by {!finding_key}.  Defaults: baseline [Adr], models
    {!Xfd_trace.Domain_model.all}.  The baseline is prepended to [models]
    when absent. *)
val diff_domains :
  ?baseline:Xfd_trace.Domain_model.t ->
  ?models:Xfd_trace.Domain_model.t list ->
  Xfd_trace.Trace.t ->
  diff_report

(** Trace the program once (like {!check_prog}) and {!diff_domains} the
    recorded trace — the models see the identical event stream. *)
val diff_prog :
  ?config:Xfd.Config.t ->
  ?baseline:Xfd_trace.Domain_model.t ->
  ?models:Xfd_trace.Domain_model.t list ->
  Xfd.Engine.program ->
  diff_report

(** Every analysed model reported zero findings. *)
val diff_clean : diff_report -> bool

(** {1 Cross-checking against the dynamic detector} *)

(** Rule ids of the findings that anticipate this dynamic verdict: a
    race/semantic bug is anticipated by a correctness finding naming its
    pre-failure writer (as [loc] or [related]); a performance bug by the
    matching waste rule at the same instruction.  Post-failure errors are
    never anticipated. *)
val anticipates : report -> Xfd.Report.bug -> string list

type triage = {
  program : string;
  lint : report;
  outcome : Xfd.Engine.outcome;
  dynamic : (string * Xfd.Report.bug * string list) list;
      (** (dedup key, bug, anticipating rule ids) per unique dynamic
          verdict, post-failure errors excluded *)
  statics : (finding * string list) list;
      (** (finding, confirming dynamic dedup keys) per lint finding *)
  anticipated : int;  (** dynamic verdicts with ≥1 anticipating finding *)
  static_misses : int;  (** dynamic verdicts no finding anticipated *)
  confirmed : int;  (** findings confirmed by ≥1 dynamic verdict *)
  static_only : int;  (** findings no dynamic verdict confirmed *)
  post_errors : int;  (** dynamic post-failure errors (outside the table) *)
}

(** Classify a lint report against a detection outcome. *)
val triage_of : program:string -> report -> Xfd.Engine.outcome -> triage

(** Lint the program, run full dynamic detection on the same workload (same
    configuration, faults re-armed), and classify both directions — the
    static-vs-dynamic precision/recall table. *)
val triage : ?config:Xfd.Config.t -> Xfd.Engine.program -> triage

(** {1 Lint-guided failure-point scheduling} *)

(** Priority function for {!Xfd.Engine.detect}'s [?priority] argument:
    scores each failure point by the number of lint findings whose firing
    event falls in the trace window since the previous failure point
    (end-of-trace findings score the final point).  Points with findings in
    their window are post-executed first; the verdict {e set} is unchanged
    by construction — scheduling reorders work, it never skips any. *)
val priority_of : report -> (int * int) list -> int list

(** [check_prog] then [Xfd.Engine.detect ~priority:(priority_of report)]:
    lint findings steer which failure points are post-executed first. *)
val detect_guided :
  ?config:Xfd.Config.t ->
  ?on_progress:(Xfd.Engine.progress -> unit) ->
  Xfd.Engine.program ->
  report * Xfd.Engine.outcome

(** {1 Output} *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
val pp_diff : Format.formatter -> diff_report -> unit
val pp_triage : Format.formatter -> triage -> unit
val finding_to_json : finding -> Xfd_util.Json.t
val report_to_json : report -> Xfd_util.Json.t
val diff_to_json : diff_report -> Xfd_util.Json.t
val triage_to_json : triage -> Xfd_util.Json.t
