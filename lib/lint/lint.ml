module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Json = Xfd_util.Json
module Obs = Xfd_obs.Obs
module Config = Xfd.Config
module Engine = Xfd.Engine
module R = Xfd.Report
module D = Xfd_trace.Domain_model

type rule =
  | Missing_flush_before_commit_store
  | Flush_without_ordering_fence
  | Store_to_committed_in_epoch
  | Write_not_tx_added
  | Unflushed_at_trace_end
  | Commit_var_never_persisted
  | Redundant_flush
  | Duplicate_tx_add

type severity = Error | Warning | Perf

let all_rules =
  [
    Missing_flush_before_commit_store;
    Flush_without_ordering_fence;
    Store_to_committed_in_epoch;
    Write_not_tx_added;
    Unflushed_at_trace_end;
    Commit_var_never_persisted;
    Redundant_flush;
    Duplicate_tx_add;
  ]

let rule_id = function
  | Missing_flush_before_commit_store -> "missing-flush-before-commit-store"
  | Flush_without_ordering_fence -> "flush-without-ordering-fence"
  | Store_to_committed_in_epoch -> "store-to-committed-data-in-same-epoch"
  | Write_not_tx_added -> "write-not-tx-added-inside-tx"
  | Unflushed_at_trace_end -> "unflushed-at-trace-end"
  | Commit_var_never_persisted -> "commit-var-never-persisted"
  | Redundant_flush -> "statically-redundant-flush"
  | Duplicate_tx_add -> "duplicate-tx-add"

let rule_of_id s = List.find_opt (fun r -> String.equal (rule_id r) s) all_rules

let severity_of = function
  | Missing_flush_before_commit_store | Store_to_committed_in_epoch
  | Write_not_tx_added | Commit_var_never_persisted ->
    Error
  | Flush_without_ordering_fence | Unflushed_at_trace_end -> Warning
  | Redundant_flush | Duplicate_tx_add -> Perf

(* Per-rule reinterpretation under a persistence-domain model.  The flush
   and fence rules never fire under the models that make them vacuous (the
   transfer functions take care of that); the one rule whose *weight*
   changes is [Redundant_flush]: on eADR hardware every flush of written
   data is pure overhead the programmer should delete, so it is promoted
   from a perf note to a warning. *)
let severity_in domain rule =
  match (domain, rule) with
  | D.Eadr, Redundant_flush -> Warning
  | _, rule -> severity_of rule

type finding = {
  rule : rule;
  severity : severity;
  loc : Loc.t;
  addr : Addr.t;
  size : int;
  index : int option;
  related : (string * Loc.t) list;
  hint : string;
}

type report = {
  findings : finding list;
  events : int;
  errors : int;
  warnings : int;
  perf : int;
}

let clean r = r.findings = []
let finding_key f = Printf.sprintf "%s:%s" (rule_id f.rule) (Loc.to_string f.loc)

let c_runs = Obs.Counter.make "lint.runs"
let c_events = Obs.Counter.make "lint.events"
let c_findings = Obs.Counter.make "lint.findings"

let c_fire =
  List.map (fun r -> (r, Obs.Counter.make ("lint.fire." ^ rule_id r))) all_rules

let c_anticipated = Obs.Counter.make "lint.triage.anticipated"
let c_static_miss = Obs.Counter.make "lint.triage.static_miss"
let c_confirmed = Obs.Counter.make "lint.triage.confirmed"
let c_static_only = Obs.Counter.make "lint.triage.static_only"

(* Commit-variable protocol state, layered over {!Track}: the variable's
   byte range, the data ranges associated with it, and the last in-scope
   store to the variable (the "commit store"). *)
type cvar = {
  var_addr : Addr.t;
  mutable var_size : int;
  mutable ranges : (Addr.t * int) list;
  mutable last_store : (Loc.t * int * int) option;  (* loc, epoch, index *)
}

(* End-of-trace findings are grouped (one per offending instruction, not one
   per byte) so reports stay readable on large traces. *)
type group = {
  gloc : Loc.t;
  grelated : (string * Loc.t) list;
  mutable lo : Addr.t;
  mutable n : int;
}

let not_durable (s : Abs.t) = match s with Abs.Dirty | Abs.Pending -> true | _ -> false

let check_trace ?(domain = D.Adr) trace =
  Obs.Counter.incr c_runs;
  let findings = ref [] in
  let dedup = Hashtbl.create 32 in
  let add f =
    let key = finding_key f in
    if not (Hashtbl.mem dedup key) then begin
      Hashtbl.replace dedup key ();
      findings := f :: !findings
    end
  in
  let mk rule loc addr size index related hint =
    add { rule; severity = severity_in domain rule; loc; addr; size; index; related; hint }
  in
  let index = ref (-1) in
  (* Unlogged-write findings are deferred to the end of their transaction so
     they can co-implicate the TX's no-snapshot (TX_XADD) writers: those
     stores persist only if the transaction commits or rolls back atomically
     — exactly what the unlogged write breaks — so a dynamic race on them
     has the unlogged write as its root cause and triage must match it. *)
  let pending_l4 = ref [] in
  let xadd_ranges = ref [] and xadd_writers = ref [] in
  let track =
    Track.create ~domain
      ~on_hit:(fun hit ->
        match hit with
        | Track.Tx_unlogged_write { loc; addr; size } ->
          pending_l4 := (loc, addr, size, !index) :: !pending_l4
        | Track.Redundant_flush { loc; line; already } ->
          mk Redundant_flush loc line Addr.line_size (Some !index) []
            (match (domain, already) with
            | D.Eadr, _ ->
              "eADR keeps the cache inside the persistence domain — the data \
               was durable at store, so this flush is pure overhead; remove it"
            | _, `Pending ->
              "the line is already writeback-pending — drop this flush or \
               move it after the store it is meant to capture"
            | _, `Persisted ->
              "the line is already fenced-persistent — this flush does no work")
        | Track.Duplicate_tx_add { loc; addr; size } ->
          mk Duplicate_tx_add loc addr size (Some !index) []
            "this range is already in the transaction — each TX_ADD snapshots \
             the object again, drop the duplicate")
      ()
  in
  let flush_l4 () =
    let related = List.rev_map (fun w -> ("tx-writer", w)) !xadd_writers in
    List.iter
      (fun (loc, addr, size, idx) ->
        let related = List.filter (fun (_, w) -> not (Loc.equal w loc)) related in
        mk Write_not_tx_added loc addr size (Some idx) related
          "store hits an object never TX_ADDed in this transaction — add it \
           to the undo log before writing so an abort or crash can roll it \
           back")
      (List.rev !pending_l4);
    pending_l4 := [];
    xadd_ranges := [];
    xadd_writers := []
  in
  let cvars : (Addr.t, cvar) Hashtbl.t = Hashtbl.create 8 in
  (* First associated-range byte that is not yet fenced-persistent. *)
  let unpersisted_range_byte v =
    let found = ref None in
    List.iter
      (fun (ra, rs) ->
        Addr.iter_bytes ra rs (fun a ->
            if Option.is_none !found then
              match Track.info track a with
              | Some i when not_durable i.Track.state -> found := Some (a, i)
              | Some _ | None -> ()))
      v.ranges;
    !found
  in
  (* Commit-protocol rules fire on stores, against the pre-store state. *)
  let on_store loc addr size =
    Hashtbl.iter
      (fun _ v ->
        (match v.last_store with
        | Some (cloc, cepoch, _)
          when cepoch = Track.epoch track
               && List.exists (fun r -> Addr.overlap r (addr, size)) v.ranges ->
          mk Store_to_committed_in_epoch loc addr size (Some !index)
            [ ("commit-store", cloc) ]
            (Printf.sprintf
               "store mutates data already committed at %s in the same fence \
                epoch — fence after the commit store (or move this store \
                before it) so recovery cannot pair new data with the old \
                commit"
               (Loc.to_string cloc))
        | Some _ | None -> ());
        if Addr.overlap (v.var_addr, v.var_size) (addr, size) then begin
          (match unpersisted_range_byte v with
          | Some (ra, i) ->
            mk Missing_flush_before_commit_store loc ra 1 (Some !index)
              (("writer", i.Track.writer)
              ::
              (match i.Track.flush with
              | Some (fl, _) -> [ ("writeback", fl) ]
              | None -> []))
              (Printf.sprintf
                 "commit variable is stored while data written at %s is still \
                  %s — persist the data (flush + fence) before setting the \
                  commit flag"
                 (Loc.to_string i.Track.writer)
                 (Abs.to_string i.Track.state))
          | None -> ());
          v.last_store <- Some (loc, Track.epoch track, !index)
        end)
      cvars
  in
  Trace.iter trace (fun ev ->
      incr index;
      (match ev.Event.kind with
      | Event.Commit_var { addr; size } -> (
        match Hashtbl.find_opt cvars addr with
        | Some v -> v.var_size <- size
        | None ->
          Hashtbl.replace cvars addr
            { var_addr = addr; var_size = size; ranges = []; last_store = None })
      | Event.Commit_range { var; addr; size } -> (
        match Hashtbl.find_opt cvars var with
        | Some v -> v.ranges <- (addr, size) :: v.ranges
        | None ->
          (* Range before registration: track the ranges anyway; the
             variable's own extent stays empty until a Commit_var names it. *)
          Hashtbl.replace cvars var
            { var_addr = var; var_size = 0; ranges = [ (addr, size) ]; last_store = None })
      | Event.Write { addr; size } | Event.Nt_write { addr; size } ->
        if Track.checking track then begin
          on_store ev.Event.loc addr size;
          if
            Track.in_tx track
            && List.exists (fun r -> Addr.overlap r (addr, size)) !xadd_ranges
            && not (List.exists (Loc.equal ev.Event.loc) !xadd_writers)
          then xadd_writers := ev.Event.loc :: !xadd_writers
        end
      | Event.Tx_xadd { addr; size } ->
        if Track.in_tx track then xadd_ranges := (addr, size) :: !xadd_ranges
      | _ -> ());
      Track.feed track ev;
      match ev.Event.kind with
      | (Event.Tx_commit | Event.Tx_abort) when not (Track.in_tx track) ->
        flush_l4 ()
      | _ -> ());
  flush_l4 ();
  (* End of trace: first the commit variables (their bytes are then exempt
     from the generic leftovers — the commit-var verdict subsumes them). *)
  let suppressed = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ v ->
      match v.last_store with
      | None -> ()
      | Some (lloc, _, _) ->
        let bad = ref None in
        Addr.iter_bytes v.var_addr v.var_size (fun a ->
            if Option.is_none !bad then
              match Track.info track a with
              | Some i when not_durable i.Track.state -> bad := Some i
              | Some _ | None -> ());
        (match !bad with
        | None -> ()
        | Some i ->
          Addr.iter_bytes v.var_addr v.var_size (fun a ->
              Hashtbl.replace suppressed a ());
          mk Commit_var_never_persisted lloc v.var_addr v.var_size None
            (match i.Track.flush with
            | Some (fl, _) -> [ ("writeback", fl) ]
            | None -> [])
            "the commit store is never made durable — flush the commit \
             variable and fence before the region ends, or recovery cannot \
             trust the flag"))
    cvars;
  (* Generic leftovers, grouped by offending instruction: still-dirty bytes
     indict their writer, captured-but-unfenced bytes indict the writeback
     (or the non-temporal store) that captured them. *)
  let dirty_groups = Hashtbl.create 16 and pending_groups = Hashtbl.create 16 in
  let note tbl loc related a =
    let key = Loc.to_string loc in
    match Hashtbl.find_opt tbl key with
    | Some g ->
      g.lo <- min g.lo a;
      g.n <- g.n + 1
    | None -> Hashtbl.replace tbl key { gloc = loc; grelated = related; lo = a; n = 1 }
  in
  List.iter
    (fun (a, (i : Track.info)) ->
      if not (Hashtbl.mem suppressed a) then
        match i.Track.state with
        | Abs.Dirty -> note dirty_groups i.Track.writer [] a
        | Abs.Pending ->
          let floc = match i.Track.flush with Some (fl, _) -> fl | None -> i.Track.writer in
          note pending_groups floc [ ("writer", i.Track.writer) ] a
        | Abs.Bot | Abs.Persisted | Abs.Top -> ())
    (Track.unpersisted track);
  let emit tbl rule hint_of =
    Hashtbl.fold (fun _ g acc -> g :: acc) tbl []
    |> List.sort (fun a b ->
           match Loc.compare a.gloc b.gloc with 0 -> compare a.lo b.lo | c -> c)
    |> List.iter (fun g -> mk rule g.gloc g.lo g.n None g.grelated (hint_of g))
  in
  emit dirty_groups Unflushed_at_trace_end (fun g ->
      Printf.sprintf
        "%d byte(s) stored here never reach a writeback — CLWB the range and \
         SFENCE before the region ends, or recovery may read the old value"
        g.n);
  emit pending_groups Flush_without_ordering_fence (fun g ->
      Printf.sprintf
        "%d captured byte(s) are never ordered by a fence — add an SFENCE so \
         the writeback is guaranteed durable"
        g.n);
  let findings = List.rev !findings in
  let count s = List.length (List.filter (fun f -> f.severity = s) findings) in
  let events = Track.events track in
  Track.release track;
  Obs.Counter.add c_events events;
  Obs.Counter.add c_findings (List.length findings);
  List.iter (fun f -> Obs.Counter.incr (List.assoc f.rule c_fire)) findings;
  { findings; events; errors = count Error; warnings = count Warning; perf = count Perf }

(* Record the setup + pre-failure trace of [p] exactly as [Engine.detect]
   would see it, hand it to [f], then release the device. *)
let with_pre_trace (config : Config.t) (p : Engine.program) f =
  Xfd_sim.Faults.reset config.Config.faults;
  let dev = Xfd_mem.Pm_device.create () in
  let trace = Trace.create () in
  let ctx =
    Xfd_sim.Ctx.create ~faults:config.Config.faults ~strategy:config.Config.strategy
      ~trust_library:config.Config.trust_library ~stage:Xfd_sim.Ctx.Pre_failure ~dev
      ~trace ()
  in
  p.Engine.setup ctx;
  (match p.Engine.pre ctx with
  | () -> ()
  | exception Xfd_sim.Ctx.Detection_complete -> ());
  let r = f trace in
  Xfd_mem.Pm_device.release dev;
  r

let check_prog ?(config = Config.default) (p : Engine.program) =
  with_pre_trace config p (check_trace ~domain:config.Config.domain)

(* ---- differential analysis across persistence-domain models ---- *)

type classification = [ `Stable | `Appears_in of D.t list | `Disappears_in of D.t list ]

type diff_entry = {
  key : string;
  entry_rule : rule;
  entry_loc : Loc.t;
  by_model : (D.t * finding option) list;
  classification : classification;
}

type diff_report = {
  baseline : D.t;
  models : D.t list;
  reports : (D.t * report) list;
  entries : diff_entry list;
}

let diff_domains ?(baseline = D.Adr) ?(models = D.all) trace =
  let models =
    if List.exists (D.equal baseline) models then models else baseline :: models
  in
  let reports = List.map (fun m -> (m, check_trace ~domain:m trace)) models in
  (* Align findings across models by dedup key, in first-appearance order
     (models are scanned in [models] order, findings in report order). *)
  let order = ref [] and seen = Hashtbl.create 32 in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun f ->
          let key = finding_key f in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key f;
            order := key :: !order
          end)
        r.findings)
    reports;
  let entries =
    List.rev_map
      (fun key ->
        let witness = Hashtbl.find seen key in
        let by_model =
          List.map
            (fun (m, r) ->
              (m, List.find_opt (fun f -> String.equal (finding_key f) key) r.findings))
            reports
        in
        let present_in = List.filter_map (fun (m, f) -> Option.map (fun _ -> m) f) by_model in
        let absent_in =
          List.filter (fun m -> not (List.exists (D.equal m) present_in)) models
        in
        let classification =
          if List.exists (D.equal baseline) present_in then
            if absent_in = [] then `Stable else `Disappears_in absent_in
          else `Appears_in present_in
        in
        { key; entry_rule = witness.rule; entry_loc = witness.loc; by_model; classification })
      !order
  in
  { baseline; models; reports; entries }

let diff_prog ?(config = Config.default) ?baseline ?models (p : Engine.program) =
  with_pre_trace config p (diff_domains ?baseline ?models)

let diff_clean d = List.for_all (fun (_, r) -> clean r) d.reports

(* Does finding [f] anticipate dynamic bug [b]?  Correctness findings match
   a race/semantic verdict by naming its pre-failure writer (as the indicted
   instruction or a related one); waste findings match a performance verdict
   at the same instruction.  Post-failure errors are never anticipated. *)
let matches f (b : R.bug) =
  let locs = f.loc :: List.map snd f.related in
  match b with
  | R.Race { write_loc; _ } | R.Semantic { write_loc; _ } ->
    f.severity <> Perf && List.exists (Loc.equal write_loc) locs
  | R.Perf { loc; waste; _ } -> (
    match (waste, f.rule) with
    | `Flush _, Redundant_flush | `Duplicate_tx_add, Duplicate_tx_add ->
      Loc.equal f.loc loc
    | _ -> false)
  | R.Post_failure_error _ -> false

let anticipates report b =
  List.filter (fun f -> matches f b) report.findings
  |> List.map (fun f -> rule_id f.rule)
  |> List.sort_uniq String.compare

type triage = {
  program : string;
  lint : report;
  outcome : Engine.outcome;
  dynamic : (string * R.bug * string list) list;
  statics : (finding * string list) list;
  anticipated : int;
  static_misses : int;
  confirmed : int;
  static_only : int;
  post_errors : int;
}

let triage_of ~program report (outcome : Engine.outcome) =
  let post_errors =
    List.length (List.filter R.is_post_error outcome.Engine.unique_bugs)
  in
  let bugs = List.filter (fun b -> not (R.is_post_error b)) outcome.Engine.unique_bugs in
  let dynamic = List.map (fun b -> (R.dedup_key b, b, anticipates report b)) bugs in
  let statics =
    List.map
      (fun f ->
        let keys =
          List.filter_map
            (fun (k, b, _) -> if matches f b then Some k else None)
            dynamic
        in
        (f, keys))
      report.findings
  in
  let anticipated = List.length (List.filter (fun (_, _, ids) -> ids <> []) dynamic) in
  let static_misses = List.length dynamic - anticipated in
  let confirmed = List.length (List.filter (fun (_, ks) -> ks <> []) statics) in
  let static_only = List.length statics - confirmed in
  Obs.Counter.add c_anticipated anticipated;
  Obs.Counter.add c_static_miss static_misses;
  Obs.Counter.add c_confirmed confirmed;
  Obs.Counter.add c_static_only static_only;
  {
    program;
    lint = report;
    outcome;
    dynamic;
    statics;
    anticipated;
    static_misses;
    confirmed;
    static_only;
    post_errors;
  }

let triage ?config p =
  let report = check_prog ?config p in
  let outcome = Engine.detect ?config p in
  triage_of ~program:p.Engine.name report outcome

(* Score of a failure point = findings whose firing event the point's image
   already contains but the previous point's did not (end-of-trace findings
   charge the last point, whose image is the most complete). *)
let priority_of report fps =
  let idxs = List.filter_map (fun f -> f.index) report.findings in
  let n_end = List.length (List.filter (fun f -> Option.is_none f.index) report.findings) in
  let window prev pos = List.length (List.filter (fun i -> i >= prev && i < pos) idxs) in
  let rec score prev = function
    | [] -> []
    | [ (_, pos) ] -> [ window prev pos + n_end ]
    | (_, pos) :: rest -> window prev pos :: score pos rest
  in
  score 0 fps

let detect_guided ?config ?on_progress p =
  let report = check_prog ?config p in
  let outcome = Engine.detect ?config ?on_progress ~priority:(priority_of report) p in
  (report, outcome)

let severity_string = function Error -> "error" | Warning -> "warning" | Perf -> "perf"

let pp_finding ppf f =
  Format.fprintf ppf "%s[%s] at %a (%a+%d): %s"
    (match f.severity with Error -> "ERROR" | Warning -> "WARNING" | Perf -> "PERF")
    (rule_id f.rule) Loc.pp f.loc Addr.pp f.addr f.size f.hint;
  List.iter (fun (name, l) -> Format.fprintf ppf " [%s %a]" name Loc.pp l) f.related

let pp_report ppf r =
  Format.fprintf ppf "@[<v>lint: %d finding(s) over %d event(s)"
    (List.length r.findings) r.events;
  if r.findings <> [] then
    Format.fprintf ppf " (%d error, %d warning, %d perf)" r.errors r.warnings r.perf;
  List.iter (fun f -> Format.fprintf ppf "@,  %a" pp_finding f) r.findings;
  Format.fprintf ppf "@]"

let classification_strings = function
  | `Stable -> ("stable", [])
  | `Appears_in ms -> ("appears", ms)
  | `Disappears_in ms -> ("disappears", ms)

let pp_diff ppf d =
  Format.fprintf ppf "@[<v>lint domain diff: %d finding key(s); baseline %a; models"
    (List.length d.entries) D.pp d.baseline;
  List.iter (fun m -> Format.fprintf ppf " %a" D.pp m) d.models;
  List.iter
    (fun (m, r) ->
      Format.fprintf ppf "@,  %-8s %d finding(s) (%d error, %d warning, %d perf)"
        (D.to_string m) (List.length r.findings) r.errors r.warnings r.perf)
    d.reports;
  List.iter
    (fun e ->
      let tag, ms = classification_strings e.classification in
      Format.fprintf ppf "@,  %-10s %s" tag e.key;
      (match ms with
      | [] -> ()
      | ms ->
        Format.fprintf ppf " under";
        List.iter (fun m -> Format.fprintf ppf " %a" D.pp m) ms);
      List.iter
        (fun (m, f) ->
          match f with
          | Some f ->
            Format.fprintf ppf " %a=%s" D.pp m (severity_string f.severity)
          | None -> ())
        e.by_model)
    d.entries;
  Format.fprintf ppf "@]"

let pp_triage ppf t =
  Format.fprintf ppf "@[<v>triage %s: %d dynamic verdict(s), %d lint finding(s)"
    t.program (List.length t.dynamic)
    (List.length t.lint.findings);
  Format.fprintf ppf "@,  statically anticipated : %d" t.anticipated;
  Format.fprintf ppf "@,  static misses          : %d" t.static_misses;
  Format.fprintf ppf "@,  dynamically confirmed  : %d" t.confirmed;
  Format.fprintf ppf "@,  static-only findings   : %d" t.static_only;
  Format.fprintf ppf "@,  post-failure errors    : %d" t.post_errors;
  List.iter
    (fun (_, b, ids) -> if ids = [] then Format.fprintf ppf "@,  MISS %a" R.pp_bug b)
    t.dynamic;
  List.iter
    (fun (f, keys) ->
      if keys = [] then Format.fprintf ppf "@,  STATIC-ONLY %a" pp_finding f)
    t.statics;
  Format.fprintf ppf "@]"

let loc_json (l : Loc.t) = Json.Obj [ ("file", Json.Str l.file); ("line", Json.Int l.line) ]

let finding_to_json f =
  Json.Obj
    [
      ("rule", Json.Str (rule_id f.rule));
      ("severity", Json.Str (severity_string f.severity));
      ("file", Json.Str f.loc.Loc.file);
      ("line", Json.Int f.loc.Loc.line);
      ("addr", Json.Int f.addr);
      ("size", Json.Int f.size);
      ("index", match f.index with Some i -> Json.Int i | None -> Json.Null);
      ( "related",
        Json.Arr
          (List.map
             (fun (name, l) ->
               match loc_json l with
               | Json.Obj fields -> Json.Obj (("role", Json.Str name) :: fields)
               | j -> j)
             f.related) );
      ("hint", Json.Str f.hint);
    ]

let report_to_json r =
  Json.Obj
    [
      ("findings", Json.Arr (List.map finding_to_json r.findings));
      ("events", Json.Int r.events);
      ("errors", Json.Int r.errors);
      ("warnings", Json.Int r.warnings);
      ("perf", Json.Int r.perf);
      ("clean", Json.Bool (clean r));
    ]

let diff_to_json d =
  let models_json ms = Json.Arr (List.map (fun m -> Json.Str (D.to_string m)) ms) in
  Json.Obj
    [
      ("baseline", Json.Str (D.to_string d.baseline));
      ("models", models_json d.models);
      ( "reports",
        Json.Obj (List.map (fun (m, r) -> (D.to_string m, report_to_json r)) d.reports) );
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               let tag, ms = classification_strings e.classification in
               Json.Obj
                 [
                   ("key", Json.Str e.key);
                   ("rule", Json.Str (rule_id e.entry_rule));
                   ("file", Json.Str e.entry_loc.Loc.file);
                   ("line", Json.Int e.entry_loc.Loc.line);
                   ("classification", Json.Str tag);
                   ("models", models_json ms);
                   ( "present_in",
                     models_json
                       (List.filter_map
                          (fun (m, f) -> Option.map (fun _ -> m) f)
                          e.by_model) );
                   ( "severity",
                     Json.Obj
                       (List.filter_map
                          (fun (m, f) ->
                            Option.map
                              (fun f ->
                                (D.to_string m, Json.Str (severity_string f.severity)))
                              f)
                          e.by_model) );
                 ])
             d.entries) );
      ("clean", Json.Bool (diff_clean d));
    ]

let triage_to_json t =
  Json.Obj
    [
      ("program", Json.Str t.program);
      ("lint", report_to_json t.lint);
      ("anticipated", Json.Int t.anticipated);
      ("static_misses", Json.Int t.static_misses);
      ("confirmed", Json.Int t.confirmed);
      ("static_only", Json.Int t.static_only);
      ("post_errors", Json.Int t.post_errors);
      ( "dynamic",
        Json.Arr
          (List.map
             (fun (key, b, ids) ->
               Json.Obj
                 [
                   ("key", Json.Str key);
                   ("bug", R.bug_to_json b);
                   ("anticipated_by", Json.Arr (List.map (fun i -> Json.Str i) ids));
                 ])
             t.dynamic) );
      ( "statics",
        Json.Arr
          (List.map
             (fun (f, keys) ->
               Json.Obj
                 [
                   ("finding", finding_to_json f);
                   ("confirmed_by", Json.Arr (List.map (fun k -> Json.Str k) keys));
                 ])
             t.statics) );
    ]
