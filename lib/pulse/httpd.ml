(* A minimal HTTP/1.1 server on stdlib Unix sockets + threads.

   This is deliberately not a web framework: the pulse surface serves a
   handful of small read-only GET endpoints to curl, Prometheus and
   `xfd_cli top --connect`, the serve surface adds a JSON job protocol
   over POST, and the container policy is stdlib-only.  So: one
   accept-loop thread multiplexing the listen socket against a
   self-pipe (stop never waits on a slow accept), one short-lived thread
   per connection, [Connection: close] on every response, a configurable
   method allowlist (anything else is 405 with an [Allow] header), a
   receive timeout, an 8 KiB header cap (431) and a configurable body
   cap (413) so a stuck or hostile client cannot pin a thread or balloon
   the heap.  Handler exceptions become plain 500s — the server must
   never take the detection run down with it.

   Binding port 0 picks an ephemeral port (reported by {!port}), which is
   how the tests avoid address collisions. *)

module Obs = Xfd_obs.Obs

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopped : bool Atomic.t;
  accept_thread : Thread.t;
  conns : Thread.t list ref;
  conns_mutex : Mutex.t;
}

let c_requests = Obs.Counter.make "pulse.http.requests"
let c_errors = Obs.Counter.make "pulse.http.errors"

let max_head_bytes = 8192
let default_max_body_bytes = 1 lsl 20
let recv_timeout_s = 5.0

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 411 -> "Length Required"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let response ?(content_type = "text/plain; charset=utf-8") ?(headers = []) status body =
  { status; content_type; headers; body }

let text ?headers status body = response ?headers status body
let not_found = text 404 "not found\n"

let header (req : request) name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let percent_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some c when c >= 0 && c < 256 ->
          Buffer.add_char b (Char.chr c);
          go (i + 3)
        | _ ->
          Buffer.add_char b '%';
          go (i + 1))
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_query s =
  String.split_on_char '&' s
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some i ->
             Some
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

(* First line of the head, e.g. "GET /series?name=x HTTP/1.1". *)
let parse_request_line head =
  let line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> ( match String.index_opt head '\n' with
      | Some i -> String.sub head 0 i
      | None -> head)
  in
  match String.split_on_char ' ' line with
  | meth :: target :: _ when meth <> "" && target <> "" ->
    let path, query = parse_target target in
    Some (meth, path, query)
  | _ -> None

(* Header lines between the request line and the blank line, with names
   lowercased; malformed lines are skipped rather than fatal. *)
let parse_headers head =
  match String.split_on_char '\n' head with
  | [] -> []
  | _request_line :: rest ->
    List.filter_map
      (fun line ->
        let line =
          if line <> "" && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        match String.index_opt line ':' with
        | None -> None
        | Some i ->
          let name = String.lowercase_ascii (String.sub line 0 i) in
          let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          if name = "" then None else Some (name, value))
      rest

let terminator_index s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
      Some i
    else go (i + 1)
  in
  go 0

(* Read up to and including the head terminator.  Returns the head and
   whatever body bytes arrived with it. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > max_head_bytes then `Too_large
    else
      let k = Unix.recv fd chunk 0 (Bytes.length chunk) [] in
      if k = 0 then `Closed
      else begin
        Buffer.add_subbytes buf chunk 0 k;
        let s = Buffer.contents buf in
        match terminator_index s with
        | Some i ->
          `Head (String.sub s 0 (i + 4), String.sub s (i + 4) (String.length s - i - 4))
        | None -> go ()
      end
  in
  try go () with Unix.Unix_error _ -> `Closed

(* Read the remaining [content_length - leftover] body bytes. *)
let read_body fd ~leftover ~content_length =
  let buf = Buffer.create content_length in
  Buffer.add_string buf leftover;
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf >= content_length then
      Some (String.sub (Buffer.contents buf) 0 content_length)
    else
      let k = Unix.recv fd chunk 0 (Bytes.length chunk) [] in
      if k = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 k;
        go ()
      end
  in
  try go () with Unix.Unix_error _ -> None

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

let send_response fd ~head_only { status; content_type; headers; body } =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n" status
       (reason_phrase status) content_type (String.length body));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  if not head_only then Buffer.add_string b body;
  write_all fd (Buffer.contents b)

(* Lingering close.  Early rejections (431/411/413/405) answer before the
   request body has been read; closing with unread input pending makes
   the kernel send RST, which can destroy the in-flight response before
   the client has read it.  Half-close our side and drain the remainder
   (briefly, bounded by the receive timeout) so the response survives. *)
let drain_and_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
     let chunk = Bytes.create 4096 in
     let deadline = Unix.gettimeofday () +. 1.0 in
     while Unix.recv fd chunk 0 4096 [] > 0 && Unix.gettimeofday () < deadline do
       ()
     done
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle_conn ~allowed_methods ~max_body_bytes handler fd =
  Fun.protect
    ~finally:(fun () -> drain_and_close fd)
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let error status body =
        Obs.Counter.incr c_errors;
        send_response fd ~head_only:false (text status body)
      in
      match read_head fd with
      | `Closed -> ()
      | `Too_large ->
        Obs.Counter.incr c_requests;
        error 431 "request header fields too large\n"
      | `Head (head, leftover) -> (
        Obs.Counter.incr c_requests;
        match parse_request_line head with
        | None -> error 400 "bad request\n"
        | Some (meth, path, query) ->
          let headers = parse_headers head in
          let head_only = meth = "HEAD" in
          if not (List.mem meth allowed_methods) then begin
            Obs.Counter.incr c_errors;
            send_response fd ~head_only:false
              (text 405 "method not allowed\n"
                 ~headers:[ ("Allow", String.concat ", " allowed_methods) ])
          end
          else begin
            let content_length =
              match List.assoc_opt "content-length" headers with
              | None -> if meth = "POST" then `Missing else `None
              | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> `Len n
                | _ -> `Bad)
            in
            let body =
              match content_length with
              | `None -> `Body ""
              | `Missing -> `Error (411, "length required\n")
              | `Bad -> `Error (400, "bad content-length\n")
              | `Len n when n > max_body_bytes ->
                `Error
                  ( 413,
                    Printf.sprintf "content too large (limit %d bytes)\n" max_body_bytes )
              | `Len n -> (
                match read_body fd ~leftover ~content_length:n with
                | Some body -> `Body body
                | None -> `Error (400, "truncated body\n"))
            in
            match body with
            | `Error (status, msg) -> error status msg
            | `Body body ->
              let req = { meth; path; query; headers; body } in
              let resp =
                try handler req
                with _ ->
                  Obs.Counter.incr c_errors;
                  text 500 "internal error\n"
              in
              send_response fd ~head_only resp
          end))

let start ?(host = "127.0.0.1") ?(allowed_methods = [ "GET"; "HEAD" ])
    ?(max_body_bytes = default_max_body_bytes) ~port handler =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let stopped = Atomic.make false in
  let conns = ref [] in
  let conns_mutex = Mutex.create () in
  let rec accept_loop () =
    if not (Atomic.get stopped) then begin
      (match Unix.select [ listen_fd; stop_r ] [] [] (-1.0) with
      | ready, _, _ when List.mem listen_fd ready && not (Atomic.get stopped) -> (
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ ->
          let th =
            Thread.create (handle_conn ~allowed_methods ~max_body_bytes handler) fd
          in
          Mutex.lock conns_mutex;
          conns := th :: !conns;
          Mutex.unlock conns_mutex
        | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  let accept_thread = Thread.create accept_loop () in
  { listen_fd; port; stop_r; stop_w; stopped; accept_thread; conns; conns_mutex }

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ());
    Thread.join t.accept_thread;
    (* In-flight responses finish before the listener's fds go away;
       connection threads are short-lived by construction (recv timeout,
       header cap, body cap, Connection: close). *)
    Mutex.lock t.conns_mutex;
    let cs = !(t.conns) in
    t.conns := [];
    Mutex.unlock t.conns_mutex;
    List.iter Thread.join cs;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ]
  end
