(** The terminal dashboard behind [xfd_cli top].

    A {!snap} is one glanceable view of a detection run: lifecycle,
    progress, bug tallies, PM traffic, and a throughput sparkline from
    the Tsdb window.  {!snap_local} reads the in-process registry (the
    [run --pulse] live view); {!snap_remote} polls another process's
    pulse endpoint.  {!render} is pure string-building. *)

type snap = {
  at : float;
  status : string;
  run : string;
  completed : int;
  total : int;
  fp_fired : int;
  unique_bugs : int;
  bug_race : int;
  bug_semantic : int;
  bug_perf : int;
  pm_store_bytes : int;
  pm_flushes : int;
  pm_fences : int;
  pm_snapshot_bytes : int;
  pm_live_bytes : float;
  samples : int;
  spark : (float * float) list;
      (** [(unix_s, cumulative fired)] window of ["engine.failure_points.fired"] *)
}

val snap_local : Tsdb.t -> snap

(** Polls [/health], [/summary] and [/series] on the endpoint. *)
val snap_remote : host:string -> port:int -> (snap, string) result

(** Per-interval deltas of a cumulative window as eight-level block
    glyphs; [""] for fewer than two points. *)
val sparkline : (float * float) list -> string

(** Render a snapshot as a few lines of text (no cursor control). *)
val render : ?width:int -> snap -> string
