(* Periodic execution, shared by every polling surface of the pulse layer.

   Two shapes: [start] runs a callback on a background thread until
   [stop]ped — the Tsdb sampler, the in-process dashboard; [loop] runs a
   callback on the calling thread until it says stop — `xfd_cli top
   --connect` and `xfd_trace_tool stats --watch`.

   The background variant waits on a self-pipe with [Unix.select] rather
   than sleeping: OCaml's stdlib [Condition] has no timed wait, and a
   plain sleep would make [stop] block for up to a full interval.  Writing
   one byte to the pipe wakes the waiter immediately, so shutdown latency
   is bounded by one callback invocation, not by the interval. *)

type t = {
  thread : Thread.t;
  wake_w : Unix.file_descr; (* writing wakes the waiter: stop requested *)
  stopped : bool Atomic.t;
}

let min_interval = 0.001

let start ~interval f =
  let interval = Float.max min_interval interval in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let stopped = Atomic.make false in
  let rec run () =
    (* Tick first: the caller gets an immediate baseline sample, and a
       [stop] issued during the first interval still sees one tick. *)
    (try f () with _ -> ());
    if not (Atomic.get stopped) then begin
      (match Unix.select [ wake_r ] [] [] interval with
      | [], _, _ -> ()
      | _ :: _, _, _ -> ignore (Unix.read wake_r (Bytes.create 1) 0 1)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not (Atomic.get stopped) then run ()
    end
  in
  let thread = Thread.create run () in
  { thread; wake_w; stopped }

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ());
    Thread.join t.thread;
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end

let loop ~interval f =
  let interval = Float.max min_interval interval in
  let rec go tick =
    match f tick with
    | `Stop -> tick + 1
    | `Continue ->
      Unix.sleepf interval;
      go (tick + 1)
  in
  go 0
