(* The pulse exposition surface: live run state over HTTP.

   This glues the pieces together — the [Obs] registry rendered by
   [Openmetrics], the [Tsdb] rolling window, the [Flight] ring — behind
   a handful of read-only GET routes, and derives run lifecycle
   ("running" vs "done") from the flight recorder's run.begin / run.end
   events rather than from any engine hook: pulse deliberately does not
   depend on the core library, so serving can never reach into detection
   state.  Progress (completed / total failure points) flows in through
   {!note_progress}, which the CLI wires to [Engine.detect]'s
   [on_progress] callback; it lands in two gauges so the Tsdb window and
   the dashboard sparkline see it like any other metric.

   This is the first network-facing subsystem of the reproduction and
   the skeleton for the roadmap's xfd_serve: everything here is
   observation-only and verdict-neutral. *)

module Obs = Xfd_obs.Obs
module Flight = Xfd_flight.Flight
module Json = Xfd_util.Json

type status = Idle | Running | Done

let status_to_string = function Idle -> "idle" | Running -> "running" | Done -> "done"

let g_completed = Obs.Gauge.make "pulse.progress.completed"
let g_total = Obs.Gauge.make "pulse.progress.total"
let started_at : float option Atomic.t = Atomic.make None

let note_progress ~completed ~total =
  Obs.Gauge.set g_completed (float_of_int completed);
  Obs.Gauge.set g_total (float_of_int total)

(* Lifecycle from the flight ring: the newest run.begin / run.end event
   wins.  A ring that has wrapped past its run.begin still reports
   correctly as long as the run.end has not been dropped too, and both
   are Info-level singletons per run — far too rare to be evicted in
   practice. *)
let status () =
  let last =
    List.fold_left
      (fun acc (e : Flight.event) ->
        match e.name with "run.begin" | "run.end" -> Some e.name | _ -> acc)
      None (Flight.events ())
  in
  match last with None -> Idle | Some "run.begin" -> Running | Some _ -> Done

let health_json () =
  let uptime =
    match Atomic.get started_at with
    | None -> Json.Null
    | Some t0 -> Json.Float (Unix.gettimeofday () -. t0)
  in
  Json.Obj
    [
      ("type", Json.Str "health");
      ("status", Json.Str (status_to_string (status ())));
      ("run", Json.Str (Flight.run_id ()));
      ("completed", Json.Int (int_of_float (Obs.Gauge.value g_completed)));
      ("total", Json.Int (int_of_float (Obs.Gauge.value g_total)));
      ("uptime_s", uptime);
    ]

(* ---- routes ---- *)

let json_response status j =
  Httpd.response ~content_type:"application/json; charset=utf-8" status (Json.to_string j)

let metrics_response () =
  Httpd.response ~content_type:Openmetrics.content_type 200 (Openmetrics.render ())

let ready_response () =
  match status () with
  | Idle -> Httpd.text 503 "idle\n"
  | s -> Httpd.text 200 (status_to_string s ^ "\n")

let query_int q key =
  match List.assoc_opt key q with None -> None | Some v -> int_of_string_opt v

let series_response tsdb (req : Httpd.request) =
  match List.assoc_opt "name" req.query with
  | None | Some "" ->
    json_response 200
      (Json.Obj
         [
           ("type", Json.Str "tsdb.index");
           ("series", Json.Arr (List.map (fun n -> Json.Str n) (Tsdb.names tsdb)));
         ])
  | Some name -> (
    let last = query_int req.query "last" in
    match Tsdb.series_json tsdb ?last name with
    | Some j -> json_response 200 j
    | None ->
      json_response 404
        (Json.Obj [ ("type", Json.Str "error"); ("error", Json.Str ("unknown series " ^ name)) ]))

let flight_response (req : Httpd.request) =
  let last = match query_int req.query "last" with Some n when n >= 0 -> n | _ -> 100 in
  let events = Flight.events () in
  let skip = max 0 (List.length events - last) in
  let b = Buffer.create 1024 in
  List.iteri
    (fun i e ->
      if i >= skip then begin
        Buffer.add_string b (Json.to_string (Flight.event_to_json e));
        Buffer.add_char b '\n'
      end)
    events;
  Httpd.response ~content_type:"application/x-ndjson" 200 (Buffer.contents b)

let index_body =
  String.concat "\n"
    [
      "xfd pulse";
      "";
      "GET /metrics        OpenMetrics exposition of every counter/gauge/histogram";
      "GET /health         run lifecycle as JSON (status, run id, progress, uptime)";
      "GET /ready          200 once a run has begun, 503 while idle";
      "GET /series         time-series index; ?name=SERIES[&last=N] for one window";
      "GET /flight         flight-recorder tail as JSONL (?last=N, default 100)";
      "GET /summary        Obs summary record as JSON";
      "";
    ]

let handler tsdb (req : Httpd.request) =
  match req.path with
  | "/" | "/index" -> Httpd.text 200 index_body
  | "/metrics" -> metrics_response ()
  | "/health" -> json_response 200 (health_json ())
  | "/ready" -> ready_response ()
  | "/series" -> series_response tsdb req
  | "/flight" -> flight_response req
  | "/summary" -> json_response 200 (Obs.summary_json ())
  | _ -> Httpd.not_found

(* ---- server lifecycle ---- *)

type t = { httpd : Httpd.t; tsdb : Tsdb.t }

let start ?host ?(port = 0) ~tsdb () =
  if Atomic.get started_at = None then Atomic.set started_at (Some (Unix.gettimeofday ()));
  { httpd = Httpd.start ?host ~port (handler tsdb); tsdb }

let port t = Httpd.port t.httpd
let tsdb t = t.tsdb
let stop t = Httpd.stop t.httpd
