(** A minimal blocking HTTP GET client for polling a pulse endpoint
    (`xfd_cli top --connect`, tests).  Stdlib [Unix] only. *)

val default_timeout_s : float

(** [get ~host ~port path] sends one GET and reads the whole response;
    returns [(status, body)].  [host] must be a dotted IPv4 address.
    Timeouts (default 5 s) turn a dead peer into [Error]. *)
val get : ?timeout:float -> host:string -> port:int -> string -> (int * string, string) result

(** Parse ["HOST:PORT"] or bare ["PORT"] (host defaults to 127.0.0.1). *)
val parse_endpoint : string -> (string * int, string) result
