(** A minimal blocking HTTP client for polling a pulse or serve endpoint
    (`xfd_cli top --connect`, `xfd_cli submit/await`, tests).  Stdlib
    [Unix] only. *)

val default_timeout_s : float

(** [request ~meth ~host ~port path] sends one request with
    [Connection: close] and reads the whole response; returns
    [(status, headers, body)] with header names lowercased.  When [body]
    is given, a matching [Content-Length] is sent.  [host] must be a
    dotted IPv4 address.  Timeouts (default 5 s) turn a dead peer into
    [Error]. *)
val request :
  ?timeout:float ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  host:string ->
  port:int ->
  string ->
  (int * (string * string) list * string, string) result

(** [get ~host ~port path] sends one GET and returns [(status, body)]. *)
val get :
  ?timeout:float ->
  ?headers:(string * string) list ->
  host:string ->
  port:int ->
  string ->
  (int * string, string) result

(** [post ~body ~host ~port path] sends one POST and returns
    [(status, headers, body)]. *)
val post :
  ?timeout:float ->
  ?headers:(string * string) list ->
  body:string ->
  host:string ->
  port:int ->
  string ->
  (int * (string * string) list * string, string) result

(** Parse ["HOST:PORT"] or bare ["PORT"] (host defaults to 127.0.0.1). *)
val parse_endpoint : string -> (string * int, string) result
