(** Periodic execution for the pulse layer's polling surfaces.

    {!start} runs a callback every [interval] seconds on a background
    thread (exceptions swallowed) until {!stop}, which wakes the waiter
    immediately via a self-pipe — shutdown never blocks for a full
    interval.  {!loop} is the foreground variant: it calls the function
    with an incrementing tick count on the calling thread, sleeping
    [interval] between ticks, until the callback answers [`Stop].
    Intervals are clamped to at least 1 ms. *)

type t

(** Spawn the background ticker.  The first tick fires immediately. *)
val start : interval:float -> (unit -> unit) -> t

(** Request stop, wake the waiter and join the thread.  Idempotent. *)
val stop : t -> unit

(** Foreground loop: tick 0 fires immediately; returns the number of
    ticks executed once the callback answers [`Stop]. *)
val loop : interval:float -> (int -> [ `Continue | `Stop ]) -> int
