(** The pulse exposition surface: live run state over HTTP.

    Serves the [Obs] registry (OpenMetrics), the {!Tsdb} rolling window,
    and the [Flight] ring behind read-only GET routes:

    - [/metrics] — OpenMetrics text exposition;
    - [/health] — run lifecycle as JSON (status, run id, progress, uptime);
    - [/ready] — 200 once a run has begun, 503 while idle;
    - [/series?name=..&last=..] — one Tsdb window as JSON (index without [name]);
    - [/flight?last=..] — flight-recorder tail as JSONL;
    - [/summary] — the Obs summary record as JSON.

    Lifecycle is derived from the flight recorder's [run.begin] /
    [run.end] events; pulse has no dependency on the core engine, so
    serving is observation-only and verdict-neutral. *)

type status = Idle | Running | Done

val status_to_string : status -> string

(** Current lifecycle, from the newest [run.begin] / [run.end] flight
    event ([Idle] when neither is retained). *)
val status : unit -> status

(** Record detection progress (wired from [Engine.detect]'s
    [on_progress] by the CLI).  Lands in the
    ["pulse.progress.completed"] / ["pulse.progress.total"] gauges so
    the Tsdb and dashboard see it as ordinary metrics. *)
val note_progress : completed:int -> total:int -> unit

(** The [/health] payload. *)
val health_json : unit -> Xfd_util.Json.t

(** The route table over a given time-series recorder — exposed so tests
    can drive routes without a socket. *)
val handler : Tsdb.t -> Httpd.request -> Httpd.response

type t

(** [start ?host ?port ~tsdb ()] serves the routes (default port 0 =
    ephemeral; read back with {!port}). *)
val start : ?host:string -> ?port:int -> tsdb:Tsdb.t -> unit -> t

val port : t -> int
val tsdb : t -> Tsdb.t

(** Stop serving.  Idempotent.  The Tsdb is left to its owner. *)
val stop : t -> unit
