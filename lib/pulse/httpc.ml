(* A minimal blocking HTTP/1.1 client, the consumer half of [Httpd].

   Just enough to let `xfd_cli top --connect`, `xfd_cli submit/await`
   and the test suites poll a pulse or serve endpoint without any
   dependency beyond stdlib [Unix]: connect, send one request with
   [Connection: close], read to EOF, split status and headers from the
   body.  Timeouts guard every blocking call so a dead server shows up
   as an [Error], not a hang. *)

let default_timeout_s = 5.0

let parse_response raw =
  match String.index_opt raw '\n' with
  | None -> Error "malformed response: no status line"
  | Some _ -> (
    let status =
      match String.split_on_char ' ' raw with
      | _http :: code :: _ -> int_of_string_opt code
      | _ -> None
    in
    match status with
    | None -> Error "malformed response: no status code"
    | Some status ->
      (* Body starts after the first blank line. *)
      let n = String.length raw in
      let rec find i =
        if i + 3 >= n then None
        else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
        then Some (i + 4)
        else find (i + 1)
      in
      let head_end, body =
        match find 0 with
        | Some i -> (i, String.sub raw i (n - i))
        | None -> (n, "")
      in
      let headers =
        String.sub raw 0 head_end |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               let line =
                 if line <> "" && line.[String.length line - 1] = '\r' then
                   String.sub line 0 (String.length line - 1)
                 else line
               in
               match String.index_opt line ':' with
               | None -> None
               | Some i ->
                 let name = String.lowercase_ascii (String.sub line 0 i) in
                 let value =
                   String.trim (String.sub line (i + 1) (String.length line - i - 1))
                 in
                 if name = "" then None else Some (name, value))
      in
      Ok (status, headers, body))

let request ?(timeout = default_timeout_s) ?(headers = []) ?body ~meth ~host ~port path =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "bad host %S (use a dotted IPv4 address)" host)
  | addr -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          Unix.connect fd (Unix.ADDR_INET (addr, port));
          let b = Buffer.create 256 in
          Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s:%d\r\n" meth path host port);
          List.iter
            (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
            headers;
          (match body with
          | Some body ->
            Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body))
          | None -> ());
          Buffer.add_string b "Connection: close\r\n\r\n";
          Option.iter (Buffer.add_string b) body;
          let req = Buffer.contents b in
          let b = Bytes.of_string req in
          let len = Bytes.length b in
          let rec send off = if off < len then send (off + Unix.write fd b off (len - off)) in
          send 0;
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec recv () =
            let k = Unix.read fd chunk 0 (Bytes.length chunk) in
            if k > 0 then begin
              Buffer.add_subbytes buf chunk 0 k;
              recv ()
            end
          in
          recv ();
          parse_response (Buffer.contents buf)
        with Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))))

let get ?timeout ?headers ~host ~port path =
  match request ?timeout ?headers ~meth:"GET" ~host ~port path with
  | Ok (status, _headers, body) -> Ok (status, body)
  | Error e -> Error e

let post ?timeout ?headers ~body ~host ~port path =
  request ?timeout ?headers ~body ~meth:"POST" ~host ~port path

(* "host:port" as accepted by `top --connect`; host defaults to loopback
   when the argument is just a port. *)
let parse_endpoint s =
  let fail () = Error (Printf.sprintf "bad endpoint %S (expected HOST:PORT or PORT)" s) in
  match String.rindex_opt s ':' with
  | None -> ( match int_of_string_opt s with
    | Some p when p > 0 && p < 65536 -> Ok ("127.0.0.1", p)
    | _ -> fail ())
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
    | _ -> fail ())
