(** OpenMetrics text exposition of the [Obs] registry.

    {!render} encodes every registered metric in the OpenMetrics text
    format: counters as [name_total] (TYPE counter), gauges as-is,
    histograms as cumulative [le]-labelled buckets with [+Inf], [_sum]
    and [_count] plus [_p50]/[_p95]/[_p99] quantile-estimate gauges.
    Dotted registry names are sanitised to the metric-name alphabet and
    namespaced under the prefix (default ["xfd_"]).  The exposition
    always ends with [# EOF]. *)

(** The HTTP [Content-Type] for this exposition format. *)
val content_type : string

val default_prefix : string

(** Map a dotted registry name to its exposed metric name (sanitised,
    prefixed) — e.g. [metric_name ~prefix:"xfd_" "pm.flushes" =
    "xfd_pm_flushes"]. *)
val metric_name : prefix:string -> string -> string

(** Render the current registry state. *)
val render : ?prefix:string -> unit -> string
