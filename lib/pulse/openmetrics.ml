(* OpenMetrics text exposition of the Obs registry.

   One render walks [Obs.metrics_snapshot] and produces the standard
   text format: counters become [name_total] samples of TYPE counter,
   gauges TYPE gauge, histograms TYPE histogram with cumulative
   [le]-labelled buckets, [+Inf], [_sum] and [_count], plus one gauge
   family per estimated quantile ([_p50]/[_p95]/[_p99] — OpenMetrics
   reserves inline quantile labels for summaries, and a family cannot be
   both histogram and summary).  Dotted registry names are sanitised to
   the metric-name alphabet and namespaced under [xfd_], so
   ["engine.failure_points.fired"] scrapes as
   [xfd_engine_failure_points_fired_total].

   The exposition ends with [# EOF] as the spec requires; scrapers use
   its absence to detect truncated bodies. *)

module Obs = Xfd_obs.Obs

let content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"
let default_prefix = "xfd_"

(* Metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; anything else maps to '_'. *)
let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' when i > 0 -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let metric_name ~prefix name = prefix ^ sanitize name

let add_family b ~name ~typ ~samples =
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
  List.iter (fun line -> Buffer.add_string b line) samples

let render ?(prefix = default_prefix) () =
  let counters, gauges, hists = Obs.metrics_snapshot () in
  let b = Buffer.create 4096 in
  List.iter
    (fun (n, v) ->
      let n = metric_name ~prefix n in
      add_family b ~name:n ~typ:"counter"
        ~samples:[ Printf.sprintf "%s_total %d\n" n v ])
    counters;
  List.iter
    (fun (n, v) ->
      let n = metric_name ~prefix n in
      add_family b ~name:n ~typ:"gauge" ~samples:[ Printf.sprintf "%s %.17g\n" n v ])
    gauges;
  List.iter
    (fun (n, h) ->
      let base = metric_name ~prefix n in
      let count = Obs.Histogram.count h in
      let buckets =
        (* Obs buckets are per-bucket counts with inclusive upper bounds;
           OpenMetrics wants cumulative counts per [le]. *)
        let cum = ref 0 in
        List.map
          (fun (le, c) ->
            cum := !cum + c;
            Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" base le !cum)
          (Obs.Histogram.buckets h)
      in
      add_family b ~name:base ~typ:"histogram"
        ~samples:
          (buckets
          @ [
              Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" base count;
              Printf.sprintf "%s_sum %d\n" base (Obs.Histogram.sum h);
              Printf.sprintf "%s_count %d\n" base count;
            ]);
      List.iter
        (fun (q, v) ->
          let qn = Printf.sprintf "%s_p%02d" base (int_of_float (Float.round (q *. 100.))) in
          add_family b ~name:qn ~typ:"gauge" ~samples:[ Printf.sprintf "%s %d\n" qn v ])
        (Obs.Histogram.quantiles h))
    hists;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
