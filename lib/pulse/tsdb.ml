(* An in-process time-series database over the Obs registry.

   Post-mortem telemetry (JSONL sinks, the flight ring) answers "what did
   the run do"; a long detection campaign needs "what is it doing *now*,
   and how has that changed over the last minute".  [sample] snapshots
   every registered counter and gauge, plus each histogram's count / sum /
   max and p50/p95/p99 quantile estimates, into one fixed-capacity ring
   per series.  A background sampler ({!start}, one [Ticker] thread)
   makes that a rolling window at a configurable interval.

   Memory is bounded by construction: [capacity] points per series, the
   oldest overwritten and counted in ["pulse.points_dropped"] — the same
   drop-newest-never-grow discipline as the span and flight rings.  The
   sampler only *reads* metric state (atomics, under the registry lock),
   so sampling can never perturb detection. *)

module Obs = Xfd_obs.Obs
module Json = Xfd_util.Json

type point = { at : float; value : float }

type ring = {
  ts : float array;
  vs : float array;
  mutable head : int; (* next write position *)
  mutable len : int;
}

type t = {
  capacity : int;
  series : (string, ring) Hashtbl.t;
  mutex : Mutex.t;
  mutable samples : int;
  mutable ticker : Ticker.t option;
  mutable interval : float option;
}

let c_samples = Obs.Counter.make "pulse.samples"
let c_points_dropped = Obs.Counter.make "pulse.points_dropped"

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tsdb.create: capacity must be positive";
  {
    capacity;
    series = Hashtbl.create 64;
    mutex = Mutex.create ();
    samples = 0;
    ticker = None;
    interval = None;
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
    Mutex.unlock t.mutex;
    v
  | exception e ->
    Mutex.unlock t.mutex;
    raise e

let push_locked t name ~at ~value =
  let r =
    match Hashtbl.find_opt t.series name with
    | Some r -> r
    | None ->
      let r =
        { ts = Array.make t.capacity 0.0; vs = Array.make t.capacity 0.0; head = 0; len = 0 }
      in
      Hashtbl.replace t.series name r;
      r
  in
  if r.len = t.capacity then Obs.Counter.incr c_points_dropped else r.len <- r.len + 1;
  r.ts.(r.head) <- at;
  r.vs.(r.head) <- value;
  r.head <- (r.head + 1) mod t.capacity

(* The derived series of one histogram: enough to drive a dashboard
   (throughput numerators, tail latencies) without retaining buckets. *)
let hist_series name h =
  [
    (name ^ ".count", float_of_int (Obs.Histogram.count h));
    (name ^ ".sum", float_of_int (Obs.Histogram.sum h));
    (name ^ ".max", float_of_int (Obs.Histogram.max_value h));
    (name ^ ".p50", float_of_int (Obs.Histogram.quantile h 0.50));
    (name ^ ".p95", float_of_int (Obs.Histogram.quantile h 0.95));
    (name ^ ".p99", float_of_int (Obs.Histogram.quantile h 0.99));
  ]

let sample t =
  (* Snapshot outside our lock: [metrics_snapshot] takes the registry
     lock, and nesting the two invites an ordering accident later. *)
  let counters, gauges, hists = Obs.metrics_snapshot () in
  let at = Unix.gettimeofday () in
  with_lock t (fun () ->
      List.iter (fun (n, v) -> push_locked t n ~at ~value:(float_of_int v)) counters;
      List.iter (fun (n, v) -> push_locked t n ~at ~value:v) gauges;
      List.iter
        (fun (n, h) -> List.iter (fun (n, v) -> push_locked t n ~at ~value:v) (hist_series n h))
        hists;
      t.samples <- t.samples + 1);
  Obs.Counter.incr c_samples

let samples t = with_lock t (fun () -> t.samples)
let interval t = t.interval
let running t = t.ticker <> None

let stop t =
  match t.ticker with
  | None -> ()
  | Some tk ->
    t.ticker <- None;
    Ticker.stop tk

let start t ~interval =
  stop t;
  t.interval <- Some interval;
  t.ticker <- Some (Ticker.start ~interval (fun () -> sample t))

let names t =
  with_lock t (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) t.series [])
  |> List.sort String.compare

let window_locked t ?last name =
  match Hashtbl.find_opt t.series name with
  | None -> None
  | Some r ->
    let keep = match last with Some k when k >= 0 -> min k r.len | _ -> r.len in
    let acc = ref [] in
    for i = 1 to keep do
      let j = (r.head - i + (2 * t.capacity)) mod t.capacity in
      acc := { at = r.ts.(j); value = r.vs.(j) } :: !acc
    done;
    Some !acc

let window t ?last name = with_lock t (fun () -> window_locked t ?last name)

(* ---- export ---- *)

let points_json pts =
  Json.Arr (List.map (fun p -> Json.Arr [ Json.Float p.at; Json.Float p.value ]) pts)

let series_json t ?last name =
  match window t ?last name with
  | None -> None
  | Some pts ->
    Some
      (Json.Obj
         [
           ("type", Json.Str "tsdb");
           ("name", Json.Str name);
           ( "interval_s",
             match t.interval with Some i -> Json.Float i | None -> Json.Null );
           ("points", points_json pts);
         ])

let write_jsonl t path =
  let ns = names t in
  let oc = open_out path in
  List.iter
    (fun n ->
      match series_json t n with
      | None -> ()
      | Some j ->
        output_string oc (Json.to_string j);
        output_char oc '\n')
    ns;
  close_out oc;
  List.length ns

let write_csv t path =
  let ns = names t in
  let oc = open_out path in
  output_string oc "series,unix_s,value\n";
  let rows = ref 0 in
  List.iter
    (fun n ->
      match window t n with
      | None -> ()
      | Some pts ->
        List.iter
          (fun p ->
            (* Series names are dotted metric paths — no commas, quotes or
               newlines to escape (enforced at Obs registration by usage). *)
            Printf.fprintf oc "%s,%.6f,%.17g\n" n p.at p.value;
            incr rows)
          pts)
    ns;
  close_out oc;
  !rows
