(* The terminal dashboard behind `xfd_cli top`.

   One [snap] is everything a human watching a long detection campaign
   wants at a glance: lifecycle, progress with an ETA, bug tallies, PM
   traffic, and a sparkline of failure-point throughput from the Tsdb
   window.  Snapshots come from two sources with one render path:
   {!snap_local} reads the in-process registry directly (the `run
   --pulse` live view), {!snap_remote} polls another process's pulse
   endpoint over HTTP (`top --connect`).  Rendering is pure
   string-building — the CLI decides how to paint it. *)

module Obs = Xfd_obs.Obs
module Flight = Xfd_flight.Flight
module Json = Xfd_util.Json

(* The cumulative series the sparkline and rate estimate are derived
   from: failure points fired is the engine's unit of forward progress. *)
let rate_series = "engine.failure_points.fired"
let spark_points = 40

type snap = {
  at : float;
  status : string;
  run : string;
  completed : int;
  total : int;
  fp_fired : int;
  unique_bugs : int;
  bug_race : int;
  bug_semantic : int;
  bug_perf : int;
  pm_store_bytes : int;
  pm_flushes : int;
  pm_fences : int;
  pm_snapshot_bytes : int;
  pm_live_bytes : float;
  samples : int;
  spark : (float * float) list;  (* (unix_s, cumulative fired) *)
}

(* ---- local source ---- *)

let counter name = Option.value ~default:0 (Obs.counter_value name)
let gauge name = Option.value ~default:0.0 (Obs.gauge_value name)

let snap_local tsdb =
  {
    at = Unix.gettimeofday ();
    status = Pulse.status_to_string (Pulse.status ());
    run = Flight.run_id ();
    completed = int_of_float (gauge "pulse.progress.completed");
    total = int_of_float (gauge "pulse.progress.total");
    fp_fired = counter rate_series;
    unique_bugs = counter "engine.unique_bugs";
    bug_race = counter "bugs.race";
    bug_semantic = counter "bugs.semantic";
    bug_perf = counter "bugs.perf";
    pm_store_bytes = counter "pm.store_bytes";
    pm_flushes = counter "pm.flushes";
    pm_fences = counter "pm.fences";
    pm_snapshot_bytes = counter "pm.snapshot_bytes";
    pm_live_bytes = gauge "pm.chunk_bytes_live";
    samples = Tsdb.samples tsdb;
    spark =
      (match Tsdb.window tsdb ~last:spark_points rate_series with
      | Some pts -> List.map (fun (p : Tsdb.point) -> (p.at, p.value)) pts
      | None -> []);
  }

(* ---- remote source ---- *)

let jint ?(default = 0) key j =
  match Json.member key j with
  | Some (Json.Int n) -> n
  | Some (Json.Float f) -> int_of_float f
  | _ -> default

let jstr ?(default = "?") key j =
  match Json.member key j with Some (Json.Str s) -> s | _ -> default

let jnum = function Json.Int n -> float_of_int n | Json.Float f -> f | _ -> 0.0

let get_json ~host ~port path =
  match Httpc.get ~host ~port path with
  | Error e -> Error e
  | Ok (status, body) when status = 200 -> (
    match Json.of_string body with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" path e))
  | Ok (status, _) -> Error (Printf.sprintf "%s: HTTP %d" path status)

let summary_counter summary name =
  match Json.member "counters" summary with
  | Some (Json.Obj kvs) -> ( match List.assoc_opt name kvs with
    | Some (Json.Int n) -> n
    | _ -> 0)
  | _ -> 0

let summary_gauge summary name =
  match Json.member "gauges" summary with
  | Some (Json.Obj kvs) -> ( match List.assoc_opt name kvs with
    | Some v -> jnum v
    | None -> 0.0)
  | _ -> 0.0

let snap_remote ~host ~port =
  match get_json ~host ~port "/health" with
  | Error e -> Error e
  | Ok health -> (
    match get_json ~host ~port "/summary" with
    | Error e -> Error e
    | Ok summary ->
      let spark =
        match
          get_json ~host ~port
            (Printf.sprintf "/series?name=%s&last=%d" rate_series spark_points)
        with
        | Ok series -> (
          match Json.member "points" series with
          | Some (Json.Arr pts) ->
            List.filter_map
              (function Json.Arr [ t; v ] -> Some (jnum t, jnum v) | _ -> None)
              pts
          | _ -> [])
        | Error _ -> []
      in
      Ok
        {
          at = Unix.gettimeofday ();
          status = jstr "status" health;
          run = jstr "run" health;
          completed = jint "completed" health;
          total = jint "total" health;
          fp_fired = summary_counter summary rate_series;
          unique_bugs = summary_counter summary "engine.unique_bugs";
          bug_race = summary_counter summary "bugs.race";
          bug_semantic = summary_counter summary "bugs.semantic";
          bug_perf = summary_counter summary "bugs.perf";
          pm_store_bytes = summary_counter summary "pm.store_bytes";
          pm_flushes = summary_counter summary "pm.flushes";
          pm_fences = summary_counter summary "pm.fences";
          pm_snapshot_bytes = summary_counter summary "pm.snapshot_bytes";
          pm_live_bytes = summary_gauge summary "pm.chunk_bytes_live";
          samples = summary_counter summary "pulse.samples";
          spark;
        })

(* ---- rendering ---- *)

let human_bytes v =
  let v = Float.max 0.0 v in
  if v < 1024.0 then Printf.sprintf "%.0f B" v
  else if v < 1024.0 *. 1024.0 then Printf.sprintf "%.1f KiB" (v /. 1024.0)
  else if v < 1024.0 *. 1024.0 *. 1024.0 then Printf.sprintf "%.1f MiB" (v /. 1024.0 /. 1024.0)
  else Printf.sprintf "%.2f GiB" (v /. 1024.0 /. 1024.0 /. 1024.0)

let bar ~width ~completed ~total =
  if total <= 0 then String.make width '-'
  else begin
    let filled = max 0 (min width (width * completed / total)) in
    String.concat "" [ String.make filled '#'; String.make (width - filled) '-' ]
  end

let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* Per-interval deltas of the cumulative series, scaled to eight glyph
   heights.  A flat (or single-point) window renders as all-low. *)
let sparkline pts =
  let deltas =
    match pts with
    | [] | [ _ ] -> []
    | (_, v0) :: rest ->
      let prev = ref v0 in
      List.map
        (fun (_, v) ->
          let d = Float.max 0.0 (v -. !prev) in
          prev := v;
          d)
        rest
  in
  match deltas with
  | [] -> ""
  | _ ->
    let hi = List.fold_left Float.max 0.0 deltas in
    if hi <= 0.0 then String.concat "" (List.map (fun _ -> spark_glyphs.(0)) deltas)
    else
      String.concat ""
        (List.map
           (fun d ->
             let i = int_of_float (d /. hi *. 7.0) in
             spark_glyphs.(max 0 (min 7 i)))
           deltas)

(* fp/s over the sparkline window. *)
let rate pts =
  match (pts, List.rev pts) with
  | (t0, v0) :: _, (t1, v1) :: _ when t1 > t0 && v1 >= v0 -> Some ((v1 -. v0) /. (t1 -. t0))
  | _ -> None

let render ?(width = 72) snap =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let pct = if snap.total > 0 then 100 * snap.completed / snap.total else 0 in
  let r = rate snap.spark in
  let eta =
    match r with
    | Some r when r > 0.01 && snap.total > snap.completed ->
      Printf.sprintf "  ETA %.1fs" (float_of_int (snap.total - snap.completed) /. r)
    | _ -> ""
  in
  let rate_s = match r with Some r -> Printf.sprintf "  %.1f fp/s" r | None -> "" in
  line "xfd pulse — %-8s run %s" snap.status snap.run;
  line "progress  [%s] %d/%d (%d%%)%s%s"
    (bar ~width:(max 10 (width - 40)) ~completed:snap.completed ~total:snap.total)
    snap.completed snap.total pct rate_s eta;
  line "bugs      %d unique  (race %d, semantic %d, perf %d)   fp fired %d" snap.unique_bugs
    snap.bug_race snap.bug_semantic snap.bug_perf snap.fp_fired;
  line "pm        stores %s  flushes %d  fences %d  snapshots %s  live %s"
    (human_bytes (float_of_int snap.pm_store_bytes))
    snap.pm_flushes snap.pm_fences
    (human_bytes (float_of_int snap.pm_snapshot_bytes))
    (human_bytes snap.pm_live_bytes);
  (match sparkline snap.spark with
  | "" -> ()
  | s -> line "fp fired  %s  (%d samples)" s snap.samples);
  Buffer.contents b
