(** A bounded in-process time-series recorder over the [Obs] registry.

    Each {!sample} snapshots every registered counter and gauge, plus six
    derived series per histogram ([.count], [.sum], [.max], [.p50],
    [.p95], [.p99]), into a fixed-capacity ring per series — the rolling
    window behind [/series], the terminal dashboard's sparklines and the
    end-of-run JSONL/CSV artifacts.  {!start} runs the sampler on a
    background thread at a fixed interval; sampling only reads metric
    state, so it is verdict-neutral by construction.

    Overwritten points are counted in the ["pulse.points_dropped"]
    counter; the number of completed sweeps in ["pulse.samples"]. *)

type t

type point = { at : float;  (** Unix timestamp, seconds *) value : float }

(** [create ?capacity ()] — ring capacity in points per series (default
    512).  Raises [Invalid_argument] if [capacity <= 0]. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Record one sweep over the current registry. *)
val sample : t -> unit

(** Start (or restart) the background sampler.  The first sample is taken
    immediately. *)
val start : t -> interval:float -> unit

(** Stop the background sampler and join its thread.  Idempotent. *)
val stop : t -> unit

val running : t -> bool

(** The most recent background sampling interval ([None] before the
    first {!start}); kept after {!stop} as export metadata. *)
val interval : t -> float option

(** Completed sweeps (background and manual). *)
val samples : t -> int

(** Known series names, sorted. *)
val names : t -> string list

(** The retained window of one series, oldest first; [last] keeps only
    the newest [n] points.  [None] if the series is unknown. *)
val window : t -> ?last:int -> string -> point list option

(** One series as
    [{"type":"tsdb","name":..,"interval_s":..,"points":[[t,v],..]}]. *)
val series_json : t -> ?last:int -> string -> Xfd_util.Json.t option

(** Write every series as one {!series_json} line per series; returns the
    number of series written. *)
val write_jsonl : t -> string -> int

(** Write [series,unix_s,value] rows (with header); returns the number of
    data rows. *)
val write_csv : t -> string -> int
