(** A minimal HTTP/1.1 server for the pulse exposition surface.

    Stdlib [Unix] sockets and threads only: one accept-loop thread, one
    short-lived thread per connection, [Connection: close] on every
    response.  GET and HEAD only (anything else is 405); handler
    exceptions become 500s; a receive timeout and an 8 KiB header cap
    bound what a stuck client can hold.  Serving is read-only over
    observability state, so it is verdict-neutral by construction. *)

type request = {
  meth : string;
  path : string;  (** percent-decoded, query stripped *)
  query : (string * string) list;  (** percent-decoded key/value pairs *)
}

type response = { status : int; content_type : string; body : string }

(** [response ?content_type status body] (default content type
    [text/plain; charset=utf-8]). *)
val response : ?content_type:string -> int -> string -> response

(** A plain-text response. *)
val text : int -> string -> response

val not_found : response

type t

(** [start ?host ~port handler] binds (default host [127.0.0.1]; port 0
    picks an ephemeral port — read it back with {!port}) and serves until
    {!stop}.  Raises [Unix.Unix_error] if the bind fails. *)
val start : ?host:string -> port:int -> (request -> response) -> t

val port : t -> int

(** Stop accepting, join the accept loop and in-flight connection
    threads, close the socket.  Idempotent. *)
val stop : t -> unit
