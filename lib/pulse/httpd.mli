(** A minimal HTTP/1.1 server for the pulse and serve surfaces.

    Stdlib [Unix] sockets and threads only: one accept-loop thread, one
    short-lived thread per connection, [Connection: close] on every
    response.  The method allowlist defaults to GET/HEAD (the pulse
    exposition surface); the serve surface opens POST.  Anything outside
    the allowlist is 405 with an [Allow] header; handler exceptions
    become 500s; a receive timeout, an 8 KiB header cap (431) and a
    configurable body cap (413, POST without [Content-Length] is 411)
    bound what a stuck or hostile client can hold. *)

type request = {
  meth : string;
  path : string;  (** percent-decoded, query stripped *)
  query : (string * string) list;  (** percent-decoded key/value pairs *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;  (** request body, ["" ] unless a [Content-Length] was sent *)
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;  (** extra headers, e.g. [Retry-After] *)
  body : string;
}

(** [response ?content_type ?headers status body] (default content type
    [text/plain; charset=utf-8], no extra headers). *)
val response : ?content_type:string -> ?headers:(string * string) list -> int -> string -> response

(** A plain-text response. *)
val text : ?headers:(string * string) list -> int -> string -> response

val not_found : response

(** Case-insensitive request-header lookup. *)
val header : request -> string -> string option

(** The default request-body cap (1 MiB). *)
val default_max_body_bytes : int

type t

(** [start ?host ?allowed_methods ?max_body_bytes ~port handler] binds
    (default host [127.0.0.1]; port 0 picks an ephemeral port — read it
    back with {!port}) and serves until {!stop}.  Raises
    [Unix.Unix_error] if the bind fails. *)
val start :
  ?host:string ->
  ?allowed_methods:string list ->
  ?max_body_bytes:int ->
  port:int ->
  (request -> response) ->
  t

val port : t -> int

(** Stop accepting, join the accept loop and in-flight connection
    threads, close the socket.  Idempotent. *)
val stop : t -> unit
