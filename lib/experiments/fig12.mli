(** Experiment E1/E2 — the paper's Figure 12.

    (a) Wall-clock time of one detection run per workload (one
    insertion/query transaction, plus one per failure point in the
    post-failure stage), broken into pre-failure and post-failure shares.
    The paper's headline shape: the post-failure side dominates, because
    one post-failure execution is spawned per failure point.

    (b) Slowdown of full detection over the tracing-only frontend ("Pure
    Pin") and over the original, uninstrumented program.  The paper reports
    geometric means of 12.3x and 400.8x respectively; shapes, not absolute
    values, are expected to match. *)

type row = {
  name : string;
  failure_points : int;
  total : float;
  pre_share : float;
  post_share : float;
  span_pre : float;  (** same breakdown, re-aggregated from the span tree *)
  span_post : float;
  pure_trace : float;
  original : float;
}

(** [run ~init ~test ()] measures every workload. *)
val run : ?init:int -> ?test:int -> unit -> row list

val print_a : row list -> unit
val print_b : row list -> unit
