type row = {
  name : string;
  failure_points : int;
  total : float;
  pre_share : float;
  post_share : float;
  span_pre : float;  (** same breakdown, re-aggregated from the span tree *)
  span_post : float;
  pure_trace : float;
  original : float;
}

(* Medians over repeated timing runs to tame scheduler noise. *)
let median3 f =
  let xs = List.sort compare [ f (); f (); f () ] in
  List.nth xs 1

let run ?(init = 0) ?(test = 1) () =
  List.map
    (fun e ->
      let outcome = Xfd.Engine.detect (e.Workload_set.make ~init ~test) in
      let pre, post = Xfd.Engine.wall_breakdown outcome in
      (* Independently re-derive the same two numbers from the raw span
         records: the phase breakdown *is* span aggregation. *)
      let st = Xfd.Engine.timings_of_spans outcome.Xfd.Engine.spans in
      let span_pre = st.Xfd.Engine.pre_exec +. st.Xfd.Engine.pre_replay +. st.Xfd.Engine.snapshotting in
      let span_post = st.Xfd.Engine.post_exec +. st.Xfd.Engine.post_replay in
      let pure_trace =
        median3 (fun () -> (Xfd_baselines.Pure_trace.run (e.Workload_set.make ~init ~test)).Xfd_baselines.Pure_trace.wall)
      in
      let original =
        median3 (fun () -> Xfd_baselines.Pure_trace.run_original (e.Workload_set.make ~init ~test))
      in
      {
        name = e.Workload_set.name;
        failure_points = outcome.Xfd.Engine.failure_points;
        total = pre +. post;
        pre_share = pre;
        post_share = post;
        span_pre;
        span_post;
        pure_trace;
        original;
      })
    Workload_set.all

let print_a rows =
  Tbl.print
    ~title:
      "Figure 12a: detection wall-clock time, pre/post breakdown (legacy timings vs \
       span-tree aggregation)"
    ~header:
      [
        "workload"; "failure pts"; "total"; "pre-failure"; "post-failure"; "post %";
        "pre (spans)"; "post (spans)";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.failure_points;
           Tbl.secs r.total;
           Tbl.secs r.pre_share;
           Tbl.secs r.post_share;
           Printf.sprintf "%.0f%%" (100.0 *. r.post_share /. (max 1e-12 r.total));
           Tbl.secs r.span_pre;
           Tbl.secs r.span_post;
         ])
       rows);
  let avg = List.fold_left (fun a r -> a +. r.total) 0.0 rows /. float (List.length rows) in
  Printf.printf "average detection time per workload: %s\n" (Tbl.secs avg)

let print_b rows =
  Tbl.print ~title:"Figure 12b: slowdown over Pure-Pin-style tracing and original program"
    ~header:[ "workload"; "detect"; "pure trace"; "original"; "over trace"; "over original" ]
    (List.map
       (fun r ->
         [
           r.name;
           Tbl.secs r.total;
           Tbl.secs r.pure_trace;
           Tbl.secs r.original;
           Tbl.times (r.total /. max 1e-9 r.pure_trace);
           Tbl.times (r.total /. max 1e-9 r.original);
         ])
       rows);
  let g_over_trace = Tbl.geomean (List.map (fun r -> r.total /. max 1e-9 r.pure_trace) rows) in
  let g_over_orig = Tbl.geomean (List.map (fun r -> r.total /. max 1e-9 r.original) rows) in
  Printf.printf "geo. mean slowdown: %s over tracing-only, %s over the original program\n"
    (Tbl.times g_over_trace) (Tbl.times g_over_orig);
  Printf.printf "(paper, on Optane hardware with Pin: 12.3x and 400.8x)\n"
