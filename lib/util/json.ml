type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then "\": " else "\":");
        write buf ~indent ~level:(level + 1) v)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf ~indent:false ~level:0 t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  write buf ~indent:true ~level:0 t;
  Buffer.contents buf

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Recursive-descent parser over a string with an explicit cursor. *)
type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some c' when Char.equal c c' -> advance p
  | Some c' -> parse_error "expected %C at offset %d, found %C" c p.pos c'
  | None -> parse_error "expected %C at offset %d, found end of input" c p.pos

let parse_literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.equal (String.sub p.src p.pos n) word then begin
    p.pos <- p.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" p.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> parse_error "invalid hex digit %C" c

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
      | None -> parse_error "unterminated escape"
      | Some c ->
        advance p;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if p.pos + 4 > String.length p.src then parse_error "truncated \\u escape";
          let code =
            (hex_digit p.src.[p.pos] lsl 12)
            lor (hex_digit p.src.[p.pos + 1] lsl 8)
            lor (hex_digit p.src.[p.pos + 2] lsl 4)
            lor hex_digit p.src.[p.pos + 3]
          in
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (String.sub p.src (p.pos - 2) 6);
          p.pos <- p.pos + 4
        | c -> parse_error "invalid escape \\%C" c));
      go ()
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let consume () = advance p in
  (match peek p with Some '-' -> consume () | _ -> ());
  while (match peek p with Some '0' .. '9' -> true | _ -> false) do
    consume ()
  done;
  (match peek p with
  | Some '.' ->
    is_float := true;
    consume ();
    while (match peek p with Some '0' .. '9' -> true | _ -> false) do
      consume ()
    done
  | _ -> ());
  (match peek p with
  | Some ('e' | 'E') ->
    is_float := true;
    consume ();
    (match peek p with Some ('+' | '-') -> consume () | _ -> ());
    while (match peek p with Some '0' .. '9' -> true | _ -> false) do
      consume ()
    done
  | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if String.equal text "" || String.equal text "-" then
    parse_error "invalid number at offset %d" start;
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> Str (parse_string_body p)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items (v :: acc)
        | Some ']' ->
          advance p;
          List.rev (v :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" p.pos
      in
      Arr (items [])
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string_body p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields (kv :: acc)
        | Some '}' ->
          advance p;
          List.rev (kv :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" p.pos
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> parse_error "unexpected %C at offset %d" c p.pos

let of_string s =
  let p = { src = s; pos = 0 } in
  match
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then parse_error "trailing garbage at offset %d" p.pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
