(** A minimal JSON encoder and parser (no external dependencies).

    Only what the report and telemetry output needs: objects, arrays,
    strings with correct escaping, integers, floats and booleans.  The
    parser exists so that JSONL telemetry written by {!Xfd_obs} can be
    round-tripped and checked without an external dependency. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

val to_string : t -> string

(** Pretty-printed with two-space indentation. *)
val to_string_pretty : t -> string

(** Escape a string body per RFC 8259 (without the surrounding quotes). *)
val escape : string -> string

(** Parse one JSON value.  Numbers without a fraction or exponent that fit
    in an OCaml [int] parse as [Int], everything else as [Float]; [\uXXXX]
    escapes below 0x80 decode to the corresponding byte, higher code points
    are preserved as their literal escape text.  Trailing whitespace is
    allowed, trailing garbage is an error. *)
val of_string : string -> (t, string) result

(** [member key json] looks up [key] in an [Obj] ([None] otherwise). *)
val member : string -> t -> t option
