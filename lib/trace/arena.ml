type t = { mutable events : Event.t array; mutable len : int }

let dummy = { Event.seq = 0; kind = Event.Sfence; loc = Xfd_util.Loc.unknown }

let create ?(capacity = 256) () = { events = Array.make (max 1 capacity) dummy; len = 0 }

let grow t =
  let bigger = Array.make (2 * Array.length t.events) dummy in
  Array.blit t.events 0 bigger 0 t.len;
  t.events <- bigger

let append t ev =
  if t.len = Array.length t.events then grow t;
  let idx = t.len in
  t.events.(idx) <- ev;
  t.len <- idx + 1;
  idx

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Arena.get: out of bounds";
  t.events.(i)

let iter_range t ~from ~upto f =
  let from = max 0 from and upto = min upto t.len in
  let events = t.events in
  for i = from to upto - 1 do
    f (Array.unsafe_get events i)
  done
