(** Trace events emitted by the instrumented execution frontend.

    Each entry records the operation kind, the PM address range it touches
    and the source location of the instruction (the paper's "instruction
    pointer", used for backtracing bugs).  Library-level events (TX_*,
    allocation) let the backend trace PMDK-style code at function granularity
    while user code is traced at instruction granularity (paper section 5.3). *)

type kind =
  | Write of { addr : Xfd_mem.Addr.t; size : int }
  | Read of { addr : Xfd_mem.Addr.t; size : int }
  | Nt_write of { addr : Xfd_mem.Addr.t; size : int }
  | Clwb of { addr : Xfd_mem.Addr.t }
  | Clflush of { addr : Xfd_mem.Addr.t }
  | Clflushopt of { addr : Xfd_mem.Addr.t }
  | Sfence
  | Mfence
  | Gpf
      (** global persistent flush barrier (CXL).  Persists every outstanding
          byte under {!Domain_model.t.Cxl_gpf}; inert under ADR/eADR. *)
  | Tx_begin
  | Tx_add of { addr : Xfd_mem.Addr.t; size : int }
  | Tx_xadd of { addr : Xfd_mem.Addr.t; size : int }
      (** no-snapshot range registration (fresh objects persisted at commit) *)
  | Tx_commit
  | Tx_abort
  | Tx_alloc of { addr : Xfd_mem.Addr.t; size : int; zeroed : bool }
  | Tx_free of { addr : Xfd_mem.Addr.t }
  | Commit_var of { addr : Xfd_mem.Addr.t; size : int }
      (** registration of a commit variable (addCommitVar) *)
  | Commit_range of {
      var : Xfd_mem.Addr.t;
      addr : Xfd_mem.Addr.t;
      size : int;
    }  (** association of a range with a commit variable (addCommitRange) *)
  | Roi_begin
  | Roi_end
  | Skip_detection_begin
  | Skip_detection_end
  | Marker of string  (** free-form annotation, kept for debugging *)

type t = { seq : int; kind : kind; loc : Xfd_util.Loc.t }

(** True for events that access or modify PM contents (the events between
    which failure points are worth injecting; annotations do not count). *)
val is_pm_operation : kind -> bool

(** True for the flush family (CLWB, CLFLUSH, CLFLUSHOPT). *)
val is_flush : kind -> bool

(** True for fences, i.e. ordering points in the sense of section 4.2. *)
val is_fence : kind -> bool

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit

(** One-line machine-readable form, parseable by {!of_line}.  Free-form
    text (marker bodies, file names) is escaped so that field separators
    ('|', spaces) and line terminators occurring in it round-trip; legacy
    lines without escapes parse unchanged. *)
val to_line : t -> string

val of_line : string -> t option
