type kind =
  | Write of { addr : Xfd_mem.Addr.t; size : int }
  | Read of { addr : Xfd_mem.Addr.t; size : int }
  | Nt_write of { addr : Xfd_mem.Addr.t; size : int }
  | Clwb of { addr : Xfd_mem.Addr.t }
  | Clflush of { addr : Xfd_mem.Addr.t }
  | Clflushopt of { addr : Xfd_mem.Addr.t }
  | Sfence
  | Mfence
  | Gpf
  | Tx_begin
  | Tx_add of { addr : Xfd_mem.Addr.t; size : int }
  | Tx_xadd of { addr : Xfd_mem.Addr.t; size : int }
  | Tx_commit
  | Tx_abort
  | Tx_alloc of { addr : Xfd_mem.Addr.t; size : int; zeroed : bool }
  | Tx_free of { addr : Xfd_mem.Addr.t }
  | Commit_var of { addr : Xfd_mem.Addr.t; size : int }
  | Commit_range of { var : Xfd_mem.Addr.t; addr : Xfd_mem.Addr.t; size : int }
  | Roi_begin
  | Roi_end
  | Skip_detection_begin
  | Skip_detection_end
  | Marker of string

type t = { seq : int; kind : kind; loc : Xfd_util.Loc.t }

let is_pm_operation = function
  | Write _ | Read _ | Nt_write _ | Clwb _ | Clflush _ | Clflushopt _ | Sfence | Mfence
  | Gpf | Tx_begin | Tx_add _ | Tx_xadd _ | Tx_commit | Tx_abort | Tx_alloc _
  | Tx_free _ ->
    true
  | Commit_var _ | Commit_range _ | Roi_begin | Roi_end | Skip_detection_begin
  | Skip_detection_end | Marker _ ->
    false

let is_flush = function Clwb _ | Clflush _ | Clflushopt _ -> true | _ -> false
let is_fence = function Sfence | Mfence -> true | _ -> false

let pp_kind ppf = function
  | Write { addr; size } -> Format.fprintf ppf "WRITE %a %d" Xfd_mem.Addr.pp addr size
  | Read { addr; size } -> Format.fprintf ppf "READ %a %d" Xfd_mem.Addr.pp addr size
  | Nt_write { addr; size } -> Format.fprintf ppf "NT_WRITE %a %d" Xfd_mem.Addr.pp addr size
  | Clwb { addr } -> Format.fprintf ppf "CLWB %a" Xfd_mem.Addr.pp addr
  | Clflush { addr } -> Format.fprintf ppf "CLFLUSH %a" Xfd_mem.Addr.pp addr
  | Clflushopt { addr } -> Format.fprintf ppf "CLFLUSHOPT %a" Xfd_mem.Addr.pp addr
  | Sfence -> Format.pp_print_string ppf "SFENCE"
  | Mfence -> Format.pp_print_string ppf "MFENCE"
  | Gpf -> Format.pp_print_string ppf "GPF"
  | Tx_begin -> Format.pp_print_string ppf "TX_BEGIN"
  | Tx_add { addr; size } -> Format.fprintf ppf "TX_ADD %a %d" Xfd_mem.Addr.pp addr size
  | Tx_xadd { addr; size } -> Format.fprintf ppf "TX_XADD %a %d" Xfd_mem.Addr.pp addr size
  | Tx_commit -> Format.pp_print_string ppf "TX_COMMIT"
  | Tx_abort -> Format.pp_print_string ppf "TX_ABORT"
  | Tx_alloc { addr; size; zeroed } ->
    Format.fprintf ppf "TX_ALLOC %a %d %s" Xfd_mem.Addr.pp addr size
      (if zeroed then "zeroed" else "raw")
  | Tx_free { addr } -> Format.fprintf ppf "TX_FREE %a" Xfd_mem.Addr.pp addr
  | Commit_var { addr; size } ->
    Format.fprintf ppf "COMMIT_VAR %a %d" Xfd_mem.Addr.pp addr size
  | Commit_range { var; addr; size } ->
    Format.fprintf ppf "COMMIT_RANGE %a %a %d" Xfd_mem.Addr.pp var Xfd_mem.Addr.pp addr size
  | Roi_begin -> Format.pp_print_string ppf "ROI_BEGIN"
  | Roi_end -> Format.pp_print_string ppf "ROI_END"
  | Skip_detection_begin -> Format.pp_print_string ppf "SKIP_DETECTION_BEGIN"
  | Skip_detection_end -> Format.pp_print_string ppf "SKIP_DETECTION_END"
  | Marker s -> Format.fprintf ppf "MARKER %s" s

let pp ppf { seq; kind; loc } =
  Format.fprintf ppf "[%6d] %a @@ %a" seq pp_kind kind Xfd_util.Loc.pp loc

(* Free-form text (marker bodies, file names) travels inside a line format
   framed by '|' and, within the kind field, split on spaces — so those
   characters (and the line terminator itself) are escaped on write and
   restored on read.  Legacy traces contain no backslashes, so they decode
   unchanged. *)
let escape_field s =
  if
    String.for_all
      (fun c -> c <> '\\' && c <> '|' && c <> ' ' && c <> '\n' && c <> '\r')
      s
  then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '|' -> Buffer.add_string b "\\p"
        | ' ' -> Buffer.add_string b "\\s"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape_field s =
  if not (String.contains s '\\') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
         | '\\' -> Buffer.add_char b '\\'
         | 'p' -> Buffer.add_char b '|'
         | 's' -> Buffer.add_char b ' '
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
         incr i
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

let to_line { seq; kind; loc } =
  let kind_str =
    match kind with
    | Marker s -> "MARKER " ^ escape_field s
    | kind -> Format.asprintf "%a" pp_kind kind
  in
  Format.sprintf "%d|%s|%s|%d" seq kind_str
    (escape_field loc.Xfd_util.Loc.file)
    loc.Xfd_util.Loc.line

let of_line line =
  match String.split_on_char '|' line with
  | [ seq; kind_str; file; lnum ] -> begin
    let loc = Xfd_util.Loc.make ~file:(unescape_field file) ~line:(int_of_string lnum) in
    let seq = int_of_string seq in
    let words = String.split_on_char ' ' kind_str in
    let addr s = int_of_string s in
    let kind =
      match words with
      | [ "WRITE"; a; n ] -> Some (Write { addr = addr a; size = int_of_string n })
      | [ "READ"; a; n ] -> Some (Read { addr = addr a; size = int_of_string n })
      | [ "NT_WRITE"; a; n ] -> Some (Nt_write { addr = addr a; size = int_of_string n })
      | [ "CLWB"; a ] -> Some (Clwb { addr = addr a })
      | [ "CLFLUSH"; a ] -> Some (Clflush { addr = addr a })
      | [ "CLFLUSHOPT"; a ] -> Some (Clflushopt { addr = addr a })
      | [ "SFENCE" ] -> Some Sfence
      | [ "MFENCE" ] -> Some Mfence
      | [ "GPF" ] -> Some Gpf
      | [ "TX_BEGIN" ] -> Some Tx_begin
      | [ "TX_ADD"; a; n ] -> Some (Tx_add { addr = addr a; size = int_of_string n })
      | [ "TX_XADD"; a; n ] -> Some (Tx_xadd { addr = addr a; size = int_of_string n })
      | [ "TX_COMMIT" ] -> Some Tx_commit
      | [ "TX_ABORT" ] -> Some Tx_abort
      | [ "TX_ALLOC"; a; n; z ] ->
        Some (Tx_alloc { addr = addr a; size = int_of_string n; zeroed = z = "zeroed" })
      | [ "TX_FREE"; a ] -> Some (Tx_free { addr = addr a })
      | [ "COMMIT_VAR"; a; n ] ->
        Some (Commit_var { addr = addr a; size = int_of_string n })
      | [ "COMMIT_RANGE"; v; a; n ] ->
        Some (Commit_range { var = addr v; addr = addr a; size = int_of_string n })
      | [ "ROI_BEGIN" ] -> Some Roi_begin
      | [ "ROI_END" ] -> Some Roi_end
      | [ "SKIP_DETECTION_BEGIN" ] -> Some Skip_detection_begin
      | [ "SKIP_DETECTION_END" ] -> Some Skip_detection_end
      | "MARKER" :: rest -> Some (Marker (unescape_field (String.concat " " rest)))
      | _ -> None
    in
    Option.map (fun kind -> { seq; kind; loc }) kind
  end
  | _ -> None
