type t = { arena : Arena.t }

let create () = { arena = Arena.create () }
let arena t = t.arena

let append t ~kind ~loc =
  let ev = { Event.seq = Arena.length t.arena; kind; loc } in
  ignore (Arena.append t.arena ev);
  ev

let length t = Arena.length t.arena
let get t i = try Arena.get t.arena i with Invalid_argument _ -> invalid_arg "Trace.get: out of bounds"
let iter_range t ~from ~upto f = Arena.iter_range t.arena ~from ~upto f
let iter_prefix t n f = iter_range t ~from:0 ~upto:n f
let iter t f = iter_prefix t (length t) f

let to_list t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    acc := Arena.get t.arena i :: !acc
  done;
  !acc

type counts = {
  writes : int;
  reads : int;
  flushes : int;
  fences : int;
  tx_ops : int;
  annotations : int;
}

let counts t =
  let c = ref { writes = 0; reads = 0; flushes = 0; fences = 0; tx_ops = 0; annotations = 0 } in
  iter t (fun ev ->
      let x = !c in
      c :=
        (match ev.Event.kind with
        | Write _ | Nt_write _ -> { x with writes = x.writes + 1 }
        | Read _ -> { x with reads = x.reads + 1 }
        | Clwb _ | Clflush _ | Clflushopt _ -> { x with flushes = x.flushes + 1 }
        | Sfence | Mfence | Gpf -> { x with fences = x.fences + 1 }
        | Tx_begin | Tx_add _ | Tx_xadd _ | Tx_commit | Tx_abort | Tx_alloc _ | Tx_free _ ->
          { x with tx_ops = x.tx_ops + 1 }
        | Commit_var _ | Commit_range _ | Roi_begin | Roi_end | Skip_detection_begin
        | Skip_detection_end | Marker _ ->
          { x with annotations = x.annotations + 1 }));
  !c

let pp ppf t =
  iter t (fun ev -> Format.fprintf ppf "%a@." Event.pp ev)

let save t oc = iter t (fun ev -> output_string oc (Event.to_line ev ^ "\n"))

let load ic =
  let t = create () in
  (try
     while true do
       let line = input_line ic in
       match Event.of_line line with
       | Some ev -> ignore (append t ~kind:ev.Event.kind ~loc:ev.Event.loc)
       | None -> ()
     done
   with End_of_file -> ());
  t
