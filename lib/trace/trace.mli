(** An append-only buffer of {!Event.t}.

    The frontend appends as the program runs; the backend replays either the
    whole buffer or the prefix up to a failure point.  The pre-failure trace
    is shared across failure points (the paper's incremental tracing): each
    failure point only records the prefix length it corresponds to — an
    {!Arena} index into the single flat backing store. *)

type t

val create : unit -> t

(** The flat backing store; event [seq] numbers are arena indices. *)
val arena : t -> Arena.t

(** Append an event; the sequence number is assigned automatically. *)
val append : t -> kind:Event.kind -> loc:Xfd_util.Loc.t -> Event.t

val length : t -> int
val get : t -> int -> Event.t

(** [iter_range t ~from ~upto f] applies [f] to events
    [from .. upto-1], clamped; the replay hot loop (one flat slice, no
    per-event bounds checks). *)
val iter_range : t -> from:int -> upto:int -> (Event.t -> unit) -> unit

(** [iter_prefix t n f] applies [f] to events [0 .. n-1]. *)
val iter_prefix : t -> int -> (Event.t -> unit) -> unit

val iter : t -> (Event.t -> unit) -> unit
val to_list : t -> Event.t list

type counts = {
  writes : int;
  reads : int;
  flushes : int;
  fences : int;
  tx_ops : int;
  annotations : int;
}

val counts : t -> counts
val pp : Format.formatter -> t -> unit

(** Serialize to / parse from the one-line-per-event text format. *)
val save : t -> out_channel -> unit

val load : in_channel -> t
