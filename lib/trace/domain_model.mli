(** Persistence-domain models.

    The paper's Fig. 9 FSM hard-codes the ADR platform contract: a store is
    volatile until flushed, a flush is volatile until fenced.  Newer
    platforms move the persistence boundary ("Rethinking PM Crash
    Consistency in the CXL Era"):

    - {b ADR} — today's semantics.  Flush then fence, or the data is lost.
    - {b eADR} — the CPU cache is inside the persistence domain: data is
      durable the moment it is stored.  Flushes and fences still execute but
      buy nothing; every flush of written data is pure waste.
    - {b CXL-GPF} — the device-persistence boundary sits at the CXL device:
      a flush (or non-temporal store) that reaches the device is durable on
      arrival, because the device's Global Persistent Flush drains its
      internal buffers on power failure.  Fences order but do not persist.
      The explicit GPF barrier event ({!Event.kind.Gpf}) persists every
      outstanding byte at once.

    Both the abstract lattice ({!Xfd_lint.Abs}) and the concrete shadow FSM
    ({!Xfd.Pstate} via [Config.domain]) take the model as a parameter to
    their transfer functions; traces are never rewritten (DESIGN.md
    decision 18). *)

type t = Adr | Eadr | Cxl_gpf

(** Every model, in canonical (and CLI documentation) order:
    ADR, eADR, CXL-GPF. *)
val all : t list

val equal : t -> t -> bool
val compare : t -> t -> int

(** ["adr"], ["eadr"], ["cxl-gpf"] — stable tokens used by the CLI
    [--domain] flag, JSON reports and bench rows. *)
val to_string : t -> string

(** Inverse of {!to_string}; case-insensitive, also accepts the
    ["cxl_gpf"]/["gpf"] spellings.  [None] for anything else. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** One-sentence human description of the model's persistence contract. *)
val describe : t -> string
