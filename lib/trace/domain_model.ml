type t = Adr | Eadr | Cxl_gpf

let all = [ Adr; Eadr; Cxl_gpf ]
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = function Adr -> "adr" | Eadr -> "eadr" | Cxl_gpf -> "cxl-gpf"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "adr" -> Some Adr
  | "eadr" -> Some Eadr
  | "cxl-gpf" | "cxl_gpf" | "cxlgpf" | "gpf" -> Some Cxl_gpf
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (to_string m)

let describe = function
  | Adr ->
    "ADR: stores land in the cache; CLWB/CLFLUSH moves a line into the \
     write-pending queue and only an ordering fence makes it persistent"
  | Eadr ->
    "eADR: the cache itself is inside the persistence domain, so data is \
     durable at store; flushes and fences are pure overhead"
  | Cxl_gpf ->
    "CXL-GPF: a flush moves data across the device-persistence boundary and \
     is durable on arrival (the device's global persistent flush drains its \
     buffers on power failure); the GPF barrier persists everything at once"
