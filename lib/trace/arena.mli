(** Append-only event arena with stable indices.

    The single flat backing store for a run's events: appending never
    moves an index, so a failure point is fully described by an arena
    index (plus the detector's delta journal), and replay iterates a flat
    array slice instead of chasing list cells or re-checking bounds per
    event.  {!Trace} is a thin view over one arena. *)

type t

val create : ?capacity:int -> unit -> t

(** Append, returning the event's stable index ([= length] before the
    call). *)
val append : t -> Event.t -> int

val length : t -> int

(** Bounds-checked lookup. *)
val get : t -> int -> Event.t

(** [iter_range t ~from ~upto f] applies [f] to events [from .. upto-1]
    ([upto] exclusive), clamped to the arena; the hot loop does one bounds
    computation for the whole slice. *)
val iter_range : t -> from:int -> upto:int -> (Event.t -> unit) -> unit
