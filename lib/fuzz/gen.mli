(** Random well-formed fuzz programs.

    Programs are built from protocol phrases over the slot arena:

    - [Correct] emits only clean phrases — persisted plain/NT writes, the
      Figure-2-shaped guarded backup/commit protocol (write backup, persist,
      set flag, persist, update in place, persist, clear flag, persist) with
      a matching guarded recovery, disjoint TX adds, inert reads.  A correct
      program must produce zero findings at every failure point.
    - [Buggy] mixes those with seeded-bug phrases: missing flush, missing
      fence, commit-before-persist, partial range rewrite before a commit
      (stale data), double/unnecessary flush, duplicate TX add, and
      unguarded reads of commit-governed ranges.
    - [Wild] draws unconstrained op soup (any slot, unbalanced
      transactions, random recoveries) — still structurally valid, used
      purely for differential oracle agreement.

    Generation is deterministic in the given {!Xfd_util.Rng.t}. *)

type profile = Correct | Buggy | Wild

val profile_to_string : profile -> string

val profile_of_string : string -> (profile, string) result

val generate : profile -> Xfd_util.Rng.t -> Prog.t
