(* Remove [len] elements starting at [i]. *)
let remove_range i len l =
  List.filteri (fun j _ -> j < i || j >= i + len) l

(* One ddmin-style sweep over a list component: try deleting windows of
   [chunk] elements left to right, keep deletions the predicate accepts,
   then halve the chunk.  [try_with] rebuilds the candidate program from a
   reduced list and returns it when it still fails. *)
let shrink_list ~try_with lst =
  let rec sweep chunk lst =
    if chunk < 1 then lst
    else
      let rec go i lst =
        if i + chunk > List.length lst then lst
        else
          match try_with (remove_range i chunk lst) with
          | Some lst' -> go i lst'
          | None -> go (i + 1) lst
      in
      sweep (chunk / 2) (go 0 lst)
  in
  sweep (max 1 (List.length lst)) lst

(* Recovery blocks referencing a removed commit variable would be invalid;
   drop them so every candidate passes [Prog.check]. *)
let restrict_recovers p =
  {
    p with
    Prog.recovers =
      List.filter
        (fun r -> List.mem_assoc r.Prog.var p.Prog.commit_vars)
        p.Prog.recovers;
  }

let minimize ?(max_evals = 2000) ~keep p =
  if not (keep p) then invalid_arg "Shrink.minimize: predicate rejects the input program";
  let evals = ref 0 in
  let test q =
    if !evals >= max_evals then false
    else begin
      incr evals;
      match Prog.check q with Ok () -> keep q | Error _ -> false
    end
  in
  let cur = ref p in
  let changed = ref true in
  while !changed do
    let before = !cur in
    let try_component get set lst =
      shrink_list lst ~try_with:(fun lst' ->
          let cand = restrict_recovers (set !cur lst') in
          if test cand then begin
            cur := cand;
            Some (get !cur)
          end
          else None)
    in
    ignore
      (try_component
         (fun p -> p.Prog.ops)
         (fun p ops -> { p with Prog.ops })
         !cur.Prog.ops);
    ignore
      (try_component
         (fun p -> p.Prog.post_reads)
         (fun p post_reads -> { p with Prog.post_reads })
         !cur.Prog.post_reads);
    ignore
      (try_component
         (fun p -> p.Prog.recovers)
         (fun p recovers -> { p with Prog.recovers })
         !cur.Prog.recovers);
    ignore
      (try_component
         (fun p -> p.Prog.setup_slots)
         (fun p setup_slots -> { p with Prog.setup_slots })
         !cur.Prog.setup_slots);
    ignore
      (try_component
         (fun p -> p.Prog.commit_vars)
         (fun p commit_vars -> { p with Prog.commit_vars })
         !cur.Prog.commit_vars);
    changed := not (Prog.equal before !cur) && !evals < max_evals
  done;
  (!cur, !evals)
