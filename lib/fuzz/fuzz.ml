module Rng = Xfd_util.Rng
module Report = Xfd.Report
module Obs = Xfd_obs.Obs

let c_programs = Obs.Counter.make "fuzz.programs"
let c_divergences = Obs.Counter.make "fuzz.divergences"
let c_meta_failures = Obs.Counter.make "fuzz.meta_failures"
let c_shrink_evals = Obs.Counter.make "fuzz.shrink_evals"
let c_repros = Obs.Counter.make "fuzz.repros"
let c_corpus_failures = Obs.Counter.make "fuzz.corpus_failures"
let c_lint_misses = Obs.Counter.make "fuzz.lint_misses"

type cfg = {
  seed : int;
  budget : int;
  profile : Gen.profile;
  corpus_dir : string option;
  max_repros : int;
  shrink_budget : int;
}

let default_cfg =
  {
    seed = 42;
    budget = 200;
    profile = Gen.Buggy;
    corpus_dir = None;
    max_repros = 5;
    shrink_budget = 400;
  }

type summary = {
  programs : int;
  divergences : int;
  meta_failures : int;
  buggy_programs : int;
  unique_key_sets : int;
  repros : string list;
  shrink_evals : int;
  corpus_checked : int;
  corpus_failures : int;
  lint_misses : int;
}

let clean s = s.divergences = 0 && s.meta_failures = 0 && s.corpus_failures = 0

(* Per-program rng: a pure function of (seed, index), so verdicts for
   program [i] do not depend on the budget or on earlier programs. *)
let prog_rng seed i =
  Rng.create
    (Int64.logxor
       (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L)
       (Int64.of_int i))

let detect_keys ?config p =
  let o = Xfd.Engine.detect ?config (Prog.to_program p) in
  (Oracle.keys_of_outcome o, o)

(* Read sites (as location strings) flagged by correctness findings —
   the quantity metamorphic M1 is monotone in. *)
let read_sites (o : Xfd.Engine.outcome) =
  List.filter_map
    (function
      | Report.Race { read_loc; _ } | Report.Semantic { read_loc; _ } ->
        Some (Xfd_util.Loc.to_string read_loc)
      | Report.Perf _ | Report.Post_failure_error _ -> None)
    o.Xfd.Engine.unique_bugs
  |> List.sort_uniq String.compare

let fresh_id p =
  1 + List.fold_left (fun m (id, _) -> max m id) 0 p.Prog.ops

(* M1: insert a redundant CLWB of an already-stored slot immediately before
   an existing fence — no new ordering point is created, so no state the
   original never exposed becomes visible. *)
let transform_flush rng p =
  let ops = Array.of_list p.Prog.ops in
  let fences =
    Array.to_list ops
    |> List.mapi (fun i (_, op) -> (i, op))
    |> List.filter_map (fun (i, op) -> if op = Prog.Fence then Some i else None)
  in
  match fences with
  | [] -> None
  | _ ->
    let fi = List.nth fences (Rng.int rng (List.length fences)) in
    let stored =
      Array.to_list (Array.sub ops 0 fi)
      |> List.filter_map (function
           | _, Prog.Store { slot; _ } -> Some slot
           | _ -> None)
    in
    (match stored with
    | [] -> None
    | _ ->
      let slot = List.nth stored (Rng.int rng (List.length stored)) in
      let ins = (fresh_id p, Prog.Flush { slot; opt = false }) in
      let ops' =
        List.concat
          [
            Array.to_list (Array.sub ops 0 fi);
            [ ins ];
            Array.to_list (Array.sub ops fi (Array.length ops - fi));
          ]
      in
      Some { p with Prog.ops = ops' })

let op_lines = function
  | Prog.Store { slot; _ } -> [ Xfd_mem.Addr.line_of (Prog.slot_addr slot) ]
  | Prog.Flush { slot; _ } -> [ Xfd_mem.Addr.line_of (Prog.slot_addr slot) ]
  | Prog.Read { slot; n } | Prog.Tx_add { slot; n } ->
    Xfd_mem.Addr.lines_spanning (Prog.slot_addr slot) (n * Prog.slot_size)
  | Prog.Fence | Prog.Tx_begin | Prog.Tx_commit -> []

let swappable = function
  | Prog.Store _ | Prog.Flush _ | Prog.Read _ | Prog.Tx_add _ -> true
  | Prog.Fence | Prog.Tx_begin | Prog.Tx_commit -> false

(* M2: swap one adjacent pair of independent ops (both line-disjoint and
   fenceless kinds) — detection is insensitive to intra-epoch order of
   operations on distinct cache lines. *)
let transform_swap rng p =
  let ops = Array.of_list p.Prog.ops in
  let candidates = ref [] in
  for i = 0 to Array.length ops - 2 do
    let _, a = ops.(i) and _, b = ops.(i + 1) in
    if
      swappable a && swappable b
      && List.for_all (fun l -> not (List.mem l (op_lines b))) (op_lines a)
    then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | cs ->
    let cs = List.rev cs in
    let i = List.nth cs (Rng.int rng (List.length cs)) in
    let tmp = ops.(i) in
    ops.(i) <- ops.(i + 1);
    ops.(i + 1) <- tmp;
    Some { p with Prog.ops = Array.to_list ops }

let subset a b = List.for_all (fun x -> List.mem x b) a

let key_sig keys = String.concat "|" keys

let lint_of q = Xfd_lint.Lint.check_prog (Prog.to_program q)

let lint_in domain q =
  Xfd_lint.Lint.check_prog
    ~config:{ Xfd.Config.default with Xfd.Config.domain }
    (Prog.to_program q)

let error_keys (r : Xfd_lint.Lint.report) =
  List.filter_map
    (fun (f : Xfd_lint.Lint.finding) ->
      if f.Xfd_lint.Lint.severity = Xfd_lint.Lint.Error then
        Some (Xfd_lint.Lint.finding_key f)
      else None)
    r.Xfd_lint.Lint.findings

(* Dynamically-confirmed races the linter did not anticipate.  Misses are
   expected by design (a transient unfenced window leaves no end-of-trace
   evidence) — the fuzzer records them as corpus repros so the static-miss
   frontier stays visible, but they never fail a run. *)
let missed_race_keys report (o : Xfd.Engine.outcome) =
  let t = Xfd_lint.Lint.triage_of ~program:"fuzz" report o in
  List.filter_map
    (fun (k, b, ids) -> if ids = [] && Report.is_race b then Some k else None)
    t.Xfd_lint.Lint.dynamic

let run ?(out = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())) cfg =
  let divergences = ref 0 and meta_failures = ref 0 and buggy = ref 0 in
  let shrink_evals = ref 0 and repros = ref [] in
  let lint_misses = ref 0 and lint_saved = ref 0 in
  let seen_sigs = Hashtbl.create 32 in
  let seen_misses = Hashtbl.create 8 in
  let harvested = ref 0 in
  let save_repro keys p =
    match cfg.corpus_dir with
    | None -> ()
    | Some dir ->
      let path = Corpus.save ~dir ~keys p in
      Obs.Counter.incr c_repros;
      repros := path :: !repros;
      Format.fprintf out "repro saved: %s@." path
  in
  let shrink_and_save ~what ~keep p =
    (* The predicate may legitimately reject the input when the violation
       depends on rng-free re-execution; guard rather than crash. *)
    let minimized, evals =
      if keep p then Shrink.minimize ~max_evals:cfg.shrink_budget ~keep p else (p, 0)
    in
    shrink_evals := !shrink_evals + evals;
    Obs.Counter.add c_shrink_evals evals;
    Format.fprintf out "%s: shrunk %d -> %d ops@." what (Prog.size p) (Prog.size minimized);
    (* Expectations always come from replaying the program actually saved,
       so [Corpus.check] on the file is self-consistent even when shrinking
       changed the key set (divergence and metamorphic repros). *)
    save_repro (fst (detect_keys minimized)) minimized
  in
  (* -- corpus regression pass -- *)
  let corpus_files =
    match cfg.corpus_dir with None -> [] | Some dir -> Corpus.files ~dir
  in
  let corpus_failures = ref 0 in
  List.iter
    (fun f ->
      match Corpus.check f with
      | Ok () -> ()
      | Error e ->
        incr corpus_failures;
        Obs.Counter.incr c_corpus_failures;
        Format.fprintf out "corpus failure: %s@." e)
    corpus_files;
  (* -- main loop -- *)
  for i = 0 to cfg.budget - 1 do
    Obs.Counter.incr c_programs;
    let rng = prog_rng cfg.seed i in
    let p = Gen.generate cfg.profile rng in
    let keys, o = detect_keys p in
    let oracle = Oracle.run p in
    let diverges q =
      let k, o = detect_keys q in
      let r = Oracle.run q in
      k <> r.Oracle.keys || o.Xfd.Engine.failure_points <> r.Oracle.failure_points
    in
    if keys <> oracle.Oracle.keys || o.Xfd.Engine.failure_points <> oracle.Oracle.failure_points
    then begin
      incr divergences;
      Obs.Counter.incr c_divergences;
      Format.fprintf out
        "divergence at program %d: engine [%s] (%d fps) vs oracle [%s] (%d fps)@." i
        (String.concat "; " keys) o.Xfd.Engine.failure_points
        (String.concat "; " oracle.Oracle.keys)
        oracle.Oracle.failure_points;
      shrink_and_save ~what:"divergence" ~keep:diverges p
    end
    else begin
      if keys <> [] then incr buggy;
      (* Profile check: correct programs must be finding-free. *)
      if cfg.profile = Gen.Correct && keys <> [] then begin
        incr meta_failures;
        Obs.Counter.incr c_meta_failures;
        Format.fprintf out "correct-profile violation at program %d: [%s]@." i
          (String.concat "; " keys);
        shrink_and_save ~what:"correct-profile violation"
          ~keep:(fun q -> fst (detect_keys q) <> [])
          p
      end;
      (* M4: correct-profile programs must also lint clean — the static
         analyzer may under-approximate the dynamic detector but must never
         indict a well-formed persistence protocol. *)
      (if cfg.profile = Gen.Correct then
         let r = lint_of p in
         if not (Xfd_lint.Lint.clean r) then begin
           incr meta_failures;
           Obs.Counter.incr c_meta_failures;
           Format.fprintf out "metamorphic M4 violation at program %d: correct profile linted [%s]@."
             i
             (String.concat "; "
                (List.map Xfd_lint.Lint.finding_key r.Xfd_lint.Lint.findings));
           shrink_and_save ~what:"M4 violation"
             ~keep:(fun q -> not (Xfd_lint.Lint.clean (lint_of q)))
             p
         end);
      (* M5: the persistence-domain models preserve the correct/buggy
         frontier.  A correct-profile program has no error-severity finding
         under ANY model (eADR turning its flushes into waste warnings is
         the expected reinterpretation, not a bug); and on every program,
         eADR only demotes — it must never report an error-severity key
         that ADR does not already report. *)
      (if cfg.profile = Gen.Correct then
         List.iter
           (fun m ->
             let errs = error_keys (lint_in m p) in
             if errs <> [] then begin
               incr meta_failures;
               Obs.Counter.incr c_meta_failures;
               Format.fprintf out
                 "metamorphic M5 violation at program %d: correct profile has error \
                  findings under %s [%s]@."
                 i
                 (Xfd_trace.Domain_model.to_string m)
                 (String.concat "; " errs);
               shrink_and_save ~what:"M5 violation"
                 ~keep:(fun q -> error_keys (lint_in m q) <> [])
                 p
             end)
           (List.filter
              (fun m -> m <> Xfd_trace.Domain_model.Adr)
              Xfd_trace.Domain_model.all));
      (let eadr_added q =
         let adr = error_keys (lint_of q) in
         List.filter
           (fun k -> not (List.mem k adr))
           (error_keys (lint_in Xfd_trace.Domain_model.Eadr q))
       in
       let added = eadr_added p in
       if added <> [] then begin
         incr meta_failures;
         Obs.Counter.incr c_meta_failures;
         Format.fprintf out
           "metamorphic M5 violation at program %d: eADR added error findings [%s]@." i
           (String.concat "; " added);
         shrink_and_save ~what:"M5 violation" ~keep:(fun q -> eadr_added q <> []) p
       end);
      (* M1: redundant flush insertion. *)
      (match transform_flush rng p with
      | None -> ()
      | Some p' ->
        let sites = read_sites o in
        let _, o' = detect_keys p' in
        if not (subset (read_sites o') sites) then begin
          incr meta_failures;
          Obs.Counter.incr c_meta_failures;
          Format.fprintf out
            "metamorphic M1 violation at program %d: inserted flush flagged new sites [%s]@."
            i
            (String.concat "; "
               (List.filter (fun s -> not (List.mem s sites)) (read_sites o')));
          shrink_and_save ~what:"M1 violation" ~keep:(fun _ -> false) p'
        end);
      (* M2: independent adjacent swap. *)
      (match transform_swap rng p with
      | None -> ()
      | Some p' ->
        let keys', _ = detect_keys p' in
        if keys' <> keys then begin
          incr meta_failures;
          Obs.Counter.incr c_meta_failures;
          Format.fprintf out
            "metamorphic M2 violation at program %d: swap changed keys [%s] -> [%s]@." i
            (String.concat "; " keys) (String.concat "; " keys');
          shrink_and_save ~what:"M2 violation" ~keep:(fun _ -> false) p'
        end);
      (* M3: domain-pool determinism, on a rotating subset. *)
      (if i mod 8 = 0 then
         let config = { Xfd.Config.default with Xfd.Config.post_jobs = 3 } in
         let keys', _ = detect_keys ~config p in
         if keys' <> keys then begin
           incr meta_failures;
           Obs.Counter.incr c_meta_failures;
           Format.fprintf out
             "metamorphic M3 violation at program %d: post_jobs=3 keys [%s] vs [%s]@." i
             (String.concat "; " keys') (String.concat "; " keys)
         end);
      (* Harvest: first program per new verdict signature becomes a repro. *)
      if keys <> [] && cfg.profile <> Gen.Correct then begin
        let s = key_sig keys in
        if (not (Hashtbl.mem seen_sigs s)) && !harvested < cfg.max_repros then begin
          Hashtbl.replace seen_sigs s ();
          incr harvested;
          shrink_and_save ~what:(Printf.sprintf "bug repro (program %d)" i)
            ~keep:(fun q -> fst (detect_keys q) = keys)
            p
        end
        else Hashtbl.replace seen_sigs s ()
      end;
      (* Static-miss harvest: a real race the linter did not anticipate is
         exactly the evidence behind prioritize-not-prune — shrink and keep
         it (small per-run cap; saving re-evaluates lint + detection). *)
      if keys <> [] && List.exists Report.is_race o.Xfd.Engine.unique_bugs then begin
        let missed = missed_race_keys (lint_of p) o in
        if missed <> [] then begin
          incr lint_misses;
          Obs.Counter.incr c_lint_misses;
          let s = key_sig missed in
          if (not (Hashtbl.mem seen_misses s)) && !lint_saved < 3 then begin
            Hashtbl.replace seen_misses s ();
            incr lint_saved;
            Format.fprintf out "lint static miss at program %d: [%s]@." i
              (String.concat "; " missed);
            shrink_and_save ~what:"lint static miss"
              ~keep:(fun q ->
                let _, o' = detect_keys q in
                missed_race_keys (lint_of q) o' <> [])
              p
          end
          else Hashtbl.replace seen_misses s ()
        end
      end
    end
  done;
  {
    programs = cfg.budget;
    divergences = !divergences;
    meta_failures = !meta_failures;
    buggy_programs = !buggy;
    unique_key_sets = Hashtbl.length seen_sigs;
    repros = List.rev !repros;
    shrink_evals = !shrink_evals;
    corpus_checked = List.length corpus_files;
    corpus_failures = !corpus_failures;
    lint_misses = !lint_misses;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "fuzz: %d program(s), %d with findings, %d distinct verdict set(s)@.corpus: %d checked, \
     %d failure(s)@.violations: %d divergence(s), %d metamorphic failure(s)@.lint: %d \
     program(s) with a statically-missed race@.shrinking: %d evaluation(s), %d repro(s) \
     saved@."
    s.programs s.buggy_programs s.unique_key_sets s.corpus_checked s.corpus_failures
    s.divergences s.meta_failures s.lint_misses s.shrink_evals (List.length s.repros)
