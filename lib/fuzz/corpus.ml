let replay ?config p =
  let o = Xfd.Engine.detect ?config (Prog.to_program p) in
  Oracle.keys_of_outcome o

let contents p keys =
  String.concat "\n"
    (Prog.to_lines p @ List.map (fun k -> "expect " ^ k) keys)
  ^ "\n"

let save ~dir ~keys p =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let body = contents p keys in
  let name = Printf.sprintf "fuzz-%s.xfdprog" (Digest.to_hex (Digest.string body)) in
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | body -> Prog.of_lines (String.split_on_char '\n' body)

let files ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xfdprog")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []

let check ?config path =
  match load path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (p, expects) ->
    let got = replay ?config p in
    let want = List.sort_uniq String.compare expects in
    if got = want then Ok ()
    else
      Error
        (Printf.sprintf "%s: expected [%s] but replay found [%s]" path
           (String.concat "; " want) (String.concat "; " got))
