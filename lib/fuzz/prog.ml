module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Ctx = Xfd_sim.Ctx

let slot_size = 8
let n_slots = 32 (* 4 cache lines of 8 slots *)
let slot_addr i = Addr.pool_base + (i * slot_size)

type op =
  | Store of { slot : int; v : int64; nt : bool }
  | Flush of { slot : int; opt : bool }
  | Fence
  | Read of { slot : int; n : int }
  | Tx_begin
  | Tx_add of { slot : int; n : int }
  | Tx_commit

type recover = { rid : int; var : int; backup : (int * int) list; rollback : int list }

type t = {
  commit_vars : (int * (int * int)) list;
  setup_slots : int list;
  ops : (int * op) list;
  recovers : recover list;
  post_reads : (int * int * int) list;
}

let size t = List.length t.ops + List.length t.recovers + List.length t.post_reads
let equal (a : t) b = a = b

let check t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok_slot s = s >= 0 && s < n_slots in
  let ok_range s n = n >= 1 && ok_slot s && s + n <= n_slots in
  let rec go_vars covered = function
    | [] -> Ok ()
    | (v, (s, n)) :: rest ->
      if not (ok_slot v) then err "commit var slot %d out of range" v
      else if n < 0 || (n > 0 && not (ok_range s n)) then
        err "commit range %d+%d out of range" s n
      else if List.exists (fun (s', n') -> Addr.overlap (s, max n 1) (s', n')) covered
      then err "overlapping commit ranges at slot %d" s
      else go_vars (if n > 0 then (s, n) :: covered else covered) rest
  in
  let check_op (id, op) =
    let bad fmt = Printf.ksprintf (fun s -> Some s) fmt in
    match op with
    | Store { slot; _ } | Flush { slot; _ } ->
      if ok_slot slot then None else bad "op %d: slot %d out of range" id slot
    | Read { slot; n } | Tx_add { slot; n } ->
      if ok_range slot n then None else bad "op %d: range %d+%d out of range" id slot n
    | Fence | Tx_begin | Tx_commit -> None
  in
  let check_recover r =
    let bad fmt = Printf.ksprintf (fun s -> Some s) fmt in
    if not (ok_slot r.var) then bad "recover %d: var slot %d out of range" r.rid r.var
    else if not (List.mem_assoc r.var t.commit_vars) then
      bad "recover %d: var slot %d is not a registered commit variable" r.rid r.var
    else if List.exists (fun (s, n) -> not (ok_range s n)) r.backup then
      bad "recover %d: backup range out of bounds" r.rid
    else if List.exists (fun s -> not (ok_slot s)) r.rollback then
      bad "recover %d: rollback slot out of bounds" r.rid
    else None
  in
  match go_vars [] t.commit_vars with
  | Error _ as e -> e
  | Ok () -> (
    match List.find_map (fun s -> if ok_slot s then None else Some s) t.setup_slots with
    | Some s -> err "setup slot %d out of range" s
    | None -> (
      match List.find_map check_op t.ops with
      | Some m -> Error m
      | None -> (
        match List.find_map check_recover t.recovers with
        | Some m -> Error m
        | None -> (
          match
            List.find_map
              (fun (id, s, n) ->
                if ok_range s n then None else Some (id, s, n))
              t.post_reads
          with
          | Some (id, s, n) -> err "post read %d: range %d+%d out of range" id s n
          | None -> Ok ()))))

(* Locations: every op id is a line number in a synthetic file per stage.
   Dedup keys are location strings, so stable ids mean stable keys. *)
let pre_loc id = Loc.make ~file:"fuzz.pre" ~line:id
let post_loc id = Loc.make ~file:"fuzz.post" ~line:id
let rec_loc rid k = Loc.make ~file:"fuzz.rec" ~line:((rid * 100) + k)
let setup_loc i = Loc.make ~file:"fuzz.setup" ~line:i
let reg_loc v = Loc.make ~file:"fuzz.reg" ~line:v
let frame_loc = Loc.make ~file:"fuzz.roi" ~line:0

(* Distinct cache lines touched by a slot list, in first-touch order. *)
let lines_of_slots slots =
  List.fold_left
    (fun acc s ->
      let l = Addr.line_of (slot_addr s) in
      if List.mem l acc then acc else l :: acc)
    [] slots
  |> List.rev

type backend = {
  read : loc:Loc.t -> Addr.t -> int -> unit;
  read_i64 : loc:Loc.t -> Addr.t -> int64;
  write : loc:Loc.t -> Addr.t -> int64 -> unit;
  flush : loc:Loc.t -> Addr.t -> unit;
  fence : loc:Loc.t -> unit;
}

(* The recovery control flow lives here, shared by the engine interpretation
   and the reference oracle: the guard — recover only when the commit
   variable's architectural value is 1 — is evaluated by whichever backend
   runs it, against its own view of the crash image. *)
let run_recover b r =
  let v = b.read_i64 ~loc:(rec_loc r.rid 0) (slot_addr r.var) in
  if Int64.equal v 1L then begin
    List.iteri
      (fun j (s, n) -> b.read ~loc:(rec_loc r.rid (1 + j)) (slot_addr s) (n * slot_size))
      r.backup;
    List.iteri
      (fun i s -> b.write ~loc:(rec_loc r.rid (40 + i)) (slot_addr s) 0xF1DEL)
      r.rollback;
    if r.rollback <> [] then begin
      List.iter (fun l -> b.flush ~loc:(rec_loc r.rid 80) l) (lines_of_slots r.rollback);
      b.fence ~loc:(rec_loc r.rid 81)
    end;
    b.write ~loc:(rec_loc r.rid 90) (slot_addr r.var) 0L;
    b.flush ~loc:(rec_loc r.rid 91) (slot_addr r.var);
    b.fence ~loc:(rec_loc r.rid 92)
  end

let run_post t b =
  List.iter (run_recover b) t.recovers;
  List.iter
    (fun (id, slot, n) -> b.read ~loc:(post_loc id) (slot_addr slot) (n * slot_size))
    t.post_reads

let ctx_backend ctx =
  {
    read = (fun ~loc addr n -> ignore (Ctx.read ctx ~loc addr n));
    read_i64 = (fun ~loc addr -> Ctx.read_i64 ctx ~loc addr);
    write = (fun ~loc addr v -> Ctx.write_i64 ctx ~loc addr v);
    flush = (fun ~loc addr -> Ctx.clwb ctx ~loc addr);
    fence = (fun ~loc -> Ctx.sfence ctx ~loc);
  }

let exec_op ctx (id, op) =
  let loc = pre_loc id in
  match op with
  | Store { slot; v; nt } ->
    if nt then Ctx.write_nt ctx ~loc (slot_addr slot) (Xfd_util.Bytesx.i64_to_bytes v)
    else Ctx.write_i64 ctx ~loc (slot_addr slot) v
  | Flush { slot; opt } ->
    if opt then Ctx.clflush ctx ~loc (slot_addr slot)
    else Ctx.clwb ctx ~loc (slot_addr slot)
  | Fence -> Ctx.sfence ctx ~loc
  | Read { slot; n } -> ignore (Ctx.read ctx ~loc (slot_addr slot) (n * slot_size))
  | Tx_begin -> Ctx.emit ctx ~loc Xfd_trace.Event.Tx_begin
  | Tx_add { slot; n } ->
    Ctx.emit ctx ~loc
      (Xfd_trace.Event.Tx_add { addr = slot_addr slot; size = n * slot_size })
  | Tx_commit -> Ctx.emit ctx ~loc Xfd_trace.Event.Tx_commit

let to_program ?(name = "fuzz") t =
  let setup ctx =
    List.iteri
      (fun i s ->
        Ctx.write_i64 ctx ~loc:(setup_loc i) (slot_addr s) (Int64.of_int (0x5e00 + s)))
      t.setup_slots;
    match lines_of_slots t.setup_slots with
    | [] -> ()
    | lines ->
      List.iter (fun l -> Ctx.clwb ctx ~loc:(setup_loc 99) l) lines;
      Ctx.sfence ctx ~loc:(setup_loc 99)
  in
  let pre ctx =
    List.iter
      (fun (v, (s, n)) ->
        Ctx.add_commit_var ctx ~loc:(reg_loc v) (slot_addr v) slot_size;
        if n > 0 then
          Ctx.add_commit_range ctx ~loc:(reg_loc v) ~var:(slot_addr v) (slot_addr s)
            (n * slot_size))
      t.commit_vars;
    Ctx.roi_begin ctx ~loc:frame_loc;
    List.iter (exec_op ctx) t.ops;
    Ctx.roi_end ctx ~loc:frame_loc
  in
  let post ctx =
    Ctx.roi_begin ctx ~loc:frame_loc;
    run_post t (ctx_backend ctx);
    Ctx.roi_end ctx ~loc:frame_loc
  in
  { Xfd.Engine.name; setup; pre; post }

(* ---- serialisation ---- *)

let header = "xfdprog 1"

let op_line (id, op) =
  match op with
  | Store { slot; v; nt } ->
    Printf.sprintf "op %d %s %d %Ld" id (if nt then "ntstore" else "store") slot v
  | Flush { slot; opt } ->
    Printf.sprintf "op %d %s %d" id (if opt then "clflush" else "clwb") slot
  | Fence -> Printf.sprintf "op %d fence" id
  | Read { slot; n } -> Printf.sprintf "op %d read %d %d" id slot n
  | Tx_begin -> Printf.sprintf "op %d txbegin" id
  | Tx_add { slot; n } -> Printf.sprintf "op %d txadd %d %d" id slot n
  | Tx_commit -> Printf.sprintf "op %d txcommit" id

let recover_line r =
  Printf.sprintf "recover %d %d backup%s rollback%s" r.rid r.var
    (String.concat "" (List.map (fun (s, n) -> Printf.sprintf " %d:%d" s n) r.backup))
    (String.concat "" (List.map (fun s -> Printf.sprintf " %d" s) r.rollback))

let to_lines t =
  header
  :: List.map (fun (v, (s, n)) -> Printf.sprintf "var %d %d %d" v s n) t.commit_vars
  @ (match t.setup_slots with
    | [] -> []
    | ss -> [ "setup " ^ String.concat " " (List.map string_of_int ss) ])
  @ List.map op_line t.ops
  @ List.map recover_line t.recovers
  @ List.map (fun (id, s, n) -> Printf.sprintf "post %d read %d %d" id s n) t.post_reads

let of_lines lines =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_of s = int_of_string_opt s in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let ints l ws = List.map (fun w -> match int_of w with Some i -> i | None -> fail "bad integer %S on line %d" w l) ws in
  try
    let vars = ref [] and setup = ref [] and ops = ref [] in
    let recovers = ref [] and posts = ref [] and expects = ref [] in
    let seen_header = ref false in
    List.iteri
      (fun i line ->
        let l = i + 1 in
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
          | [ "xfdprog"; "1" ] -> seen_header := true
          | "xfdprog" :: v -> fail "unsupported xfdprog version %s" (String.concat " " v)
          | [ "var"; v; s; n ] -> (
            match ints l [ v; s; n ] with
            | [ v; s; n ] -> vars := (v, (s, n)) :: !vars
            | _ -> assert false)
          | "setup" :: slots -> setup := !setup @ ints l slots
          | "op" :: id :: rest -> (
            let id = match int_of id with Some i -> i | None -> fail "bad op id on line %d" l in
            let op =
              match rest with
              | [ "store"; s; v ] | [ "ntstore"; s; v ] ->
                let nt = List.hd rest = "ntstore" in
                let s = List.nth (ints l [ s ]) 0 in
                let v =
                  match Int64.of_string_opt v with
                  | Some v -> v
                  | None -> fail "bad store value on line %d" l
                in
                Store { slot = s; v; nt }
              | [ "clwb"; s ] -> Flush { slot = List.nth (ints l [ s ]) 0; opt = false }
              | [ "clflush"; s ] -> Flush { slot = List.nth (ints l [ s ]) 0; opt = true }
              | [ "fence" ] -> Fence
              | [ "read"; s; n ] -> (
                match ints l [ s; n ] with
                | [ s; n ] -> Read { slot = s; n }
                | _ -> assert false)
              | [ "txbegin" ] -> Tx_begin
              | [ "txadd"; s; n ] -> (
                match ints l [ s; n ] with
                | [ s; n ] -> Tx_add { slot = s; n }
                | _ -> assert false)
              | [ "txcommit" ] -> Tx_commit
              | _ -> fail "unknown op on line %d: %s" l line
            in
            ops := (id, op) :: !ops)
          | "recover" :: rid :: var :: "backup" :: rest -> (
            let rid, var =
              match ints l [ rid; var ] with [ r; v ] -> (r, v) | _ -> assert false
            in
            let rec split_backup acc = function
              | "rollback" :: rb -> (List.rev acc, ints l rb)
              | w :: ws -> (
                match String.split_on_char ':' w with
                | [ s; n ] -> (
                  match (int_of s, int_of n) with
                  | Some s, Some n -> split_backup ((s, n) :: acc) ws
                  | _ -> fail "bad backup range %S on line %d" w l)
                | _ -> fail "bad backup range %S on line %d" w l)
              | [] -> fail "recover without rollback section on line %d" l
            in
            let backup, rollback = split_backup [] rest in
            recovers := { rid; var; backup; rollback } :: !recovers)
          | [ "post"; id; "read"; s; n ] -> (
            match ints l [ id; s; n ] with
            | [ id; s; n ] -> posts := (id, s, n) :: !posts
            | _ -> assert false)
          | "expect" :: rest -> expects := String.concat " " rest :: !expects
          | _ -> fail "unknown directive on line %d: %s" l line)
      lines;
    if not !seen_header then err "missing %S header" header
    else
      let t =
        {
          commit_vars = List.rev !vars;
          setup_slots = !setup;
          ops = List.rev !ops;
          recovers = List.rev !recovers;
          post_reads = List.rev !posts;
        }
      in
      match check t with Ok () -> Ok (t, List.rev !expects) | Error e -> Error e
  with Bad m -> Error m

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (to_lines t)
