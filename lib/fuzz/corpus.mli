(** Reproducible corpus of [.xfdprog] programs.

    A corpus file is a serialised {!Prog.t} followed by [expect <dedup-key>]
    lines recording the engine's deduplicated verdicts when the file was
    written.  Replaying a file and comparing against its [expect] lines is
    the fuzzer's regression check; a shrunk divergence or bug repro is saved
    the same way, under a content-derived name ([fuzz-<digest>.xfdprog]), so
    re-saving the same program is idempotent. *)

(** Run a program through the full engine pipeline and return the sorted
    unique dedup keys of its findings. *)
val replay : ?config:Xfd.Config.t -> Prog.t -> string list

(** Write [prog] and its expected keys under [dir] (created if missing).
    Returns the file path. *)
val save : dir:string -> keys:string list -> Prog.t -> string

val load : string -> (Prog.t * string list, string) result

(** The [.xfdprog] files directly under [dir], sorted by name; empty when
    the directory does not exist. *)
val files : dir:string -> string list

(** Replay one corpus file against its [expect] lines.  [Error] describes
    the mismatch (or a parse failure). *)
val check : ?config:Xfd.Config.t -> string -> (unit, string) result
