module Addr = Xfd_mem.Addr
module Loc = Xfd_util.Loc
module Report = Xfd.Report
module Cstate = Xfd.Cstate
module Pstate = Xfd.Pstate

(* The oracle's own four-state persistence machine (paper Figure 9). *)
type ps = Clean | Dirty | Pending | Durable

type byte = {
  mutable ps : ps;
  mutable tlast : int;
  mutable writer : Loc.t;
  mutable post_written : bool;
}

type vstate = { mutable t_prelast : int; mutable t_last : int; mutable commits : int }

type st = {
  bytes : (Addr.t, byte) Hashtbl.t;
  pending : (Addr.t, unit) Hashtbl.t;
      (* captured-awaiting-fence bytes of *this* layer: a fork starts with
         an empty set, so pre-failure pending bytes stay pending across the
         failure — exactly the shadow-overlay semantics. *)
  dev_pending : (Addr.t, unit) Hashtbl.t;
      (* the *device's* captured set, which a re-store does not evict (the
         flush already captured the value, so the fence still writes it
         back).  Fence promotion for failure-point elision is judged against
         this set, not the shadow one. *)
  values : (Addr.t, int64) Hashtbl.t; (* slot -> architectural value *)
  vars : (Addr.t, vstate) Hashtbl.t;
  var_bytes : (Addr.t, Addr.t) Hashtbl.t; (* immutable after registration *)
  range_bytes : (Addr.t, Addr.t) Hashtbl.t;
  mutable ts : int;
  mutable update_ops : int;
  mutable in_roi : bool;
  mutable tx_active : bool;
  mutable tx_added : (Addr.t * int) list;
}

let fresh () =
  {
    bytes = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    dev_pending = Hashtbl.create 64;
    values = Hashtbl.create 64;
    vars = Hashtbl.create 8;
    var_bytes = Hashtbl.create 32;
    range_bytes = Hashtbl.create 64;
    ts = 0;
    update_ops = 0;
    in_roi = false;
    tx_active = false;
    tx_added = [];
  }

let copy_byte b =
  { ps = b.ps; tlast = b.tlast; writer = b.writer; post_written = b.post_written }

(* A failure-point fork: deep state copy, but an empty pending set (see
   above) and the registration maps shared — registration precedes the RoI,
   so no fork can observe it changing. *)
let fork st =
  let bytes = Hashtbl.create (Hashtbl.length st.bytes) in
  Hashtbl.iter (fun a b -> Hashtbl.replace bytes a (copy_byte b)) st.bytes;
  let vars = Hashtbl.create (Hashtbl.length st.vars) in
  Hashtbl.iter
    (fun a v ->
      Hashtbl.replace vars a
        { t_prelast = v.t_prelast; t_last = v.t_last; commits = v.commits })
    st.vars;
  {
    bytes;
    pending = Hashtbl.create 16;
    dev_pending = Hashtbl.create 16;
    values = Hashtbl.copy st.values;
    vars;
    var_bytes = st.var_bytes;
    range_bytes = st.range_bytes;
    ts = st.ts;
    update_ops = st.update_ops;
    in_roi = true;
    tx_active = false;
    tx_added = [];
  }

let byte_of st a =
  match Hashtbl.find_opt st.bytes a with
  | Some b -> b
  | None ->
    let b = { ps = Clean; tlast = -1; writer = Loc.unknown; post_written = false } in
    Hashtbl.replace st.bytes a b;
    b

(* An 8-byte aligned store: FSM transition per byte, commit every overlapped
   variable once, refresh the architectural value. *)
let do_write st ~loc ~post addr v ~nt =
  let touched = ref [] in
  Addr.iter_bytes addr Prog.slot_size (fun a ->
      (match Hashtbl.find_opt st.var_bytes a with
      | Some var when not (List.mem var !touched) -> touched := var :: !touched
      | Some _ | None -> ());
      let b = byte_of st a in
      b.ps <- (if nt then Pending else Dirty);
      b.tlast <- st.ts;
      b.writer <- loc;
      if post then b.post_written <- true;
      if nt then begin
        Hashtbl.replace st.pending a ();
        Hashtbl.replace st.dev_pending a ()
      end
      else
        (* The shadow byte goes back to dirty, but a value the device
           already captured still reaches PM at the next fence. *)
        Hashtbl.remove st.pending a);
  List.iter
    (fun var ->
      let v = Hashtbl.find st.vars var in
      v.t_prelast <- v.t_last;
      v.t_last <- st.ts;
      v.commits <- v.commits + 1)
    (List.rev !touched);
  Hashtbl.replace st.values addr v;
  st.update_ops <- st.update_ops + 1

(* Flush classification, mirroring [Shadow_pm.flush_line]: any dirty byte
   makes the flush useful; otherwise pending beats persisted for the waste
   verdict, and an untracked line is silent. *)
let do_flush st ~check_perf ~loc ~add_key addr =
  let line = Addr.line_of addr in
  let dirty = ref false and pend = ref false and durable = ref false in
  Addr.iter_bytes line Addr.line_size (fun a ->
      match Hashtbl.find_opt st.bytes a with
      | None -> ()
      | Some b -> (
        match b.ps with
        | Dirty -> dirty := true
        | Pending -> pend := true
        | Durable -> durable := true
        | Clean -> ()));
  (if !dirty then
     Addr.iter_bytes line Addr.line_size (fun a ->
         match Hashtbl.find_opt st.bytes a with
         | Some b when b.ps = Dirty ->
           b.ps <- Pending;
           Hashtbl.replace st.pending a ();
           Hashtbl.replace st.dev_pending a ()
         | Some _ | None -> ())
   else
     let waste =
       if !pend then Some Pstate.Double_flush
       else if !durable then Some Pstate.Unnecessary_flush
       else None
     in
     match waste with
     | Some w when check_perf && st.in_roi ->
       add_key
         (Report.dedup_key
            (Report.Perf { addr = line; loc; waste = `Flush w; provenance = None }))
     | Some _ | None -> ());
  st.update_ops <- st.update_ops + 1

(* A fence promotes this layer's captured bytes; it counts as a PM-status
   change — for failure-point elision — only when it promoted something. *)
let do_fence st =
  let promotes = Hashtbl.length st.dev_pending > 0 in
  Hashtbl.iter
    (fun a () ->
      let b = byte_of st a in
      if b.ps = Pending then b.ps <- Durable)
    st.pending;
  Hashtbl.reset st.pending;
  Hashtbl.reset st.dev_pending;
  st.ts <- st.ts + 1;
  if promotes then st.update_ops <- st.update_ops + 1

let do_tx_add st ~check_perf ~loc ~add_key addr size =
  if st.tx_active then begin
    if
      check_perf && st.in_roi
      && List.exists (fun r -> Addr.overlap r (addr, size)) st.tx_added
    then
      add_key
        (Report.dedup_key
           (Report.Perf { addr; loc; waste = `Duplicate_tx_add; provenance = None }));
    st.tx_added <- (addr, size) :: st.tx_added
  end

(* Verdict for one byte of a post-failure read, in the detector's exact
   check order: first-read-only, commit bytes benign, untracked ok,
   post-written ok, unpersisted races, persisted checks its Eq. 3 window. *)
let check_byte fk ~checked ~add_key ~loc a =
  if not (Hashtbl.mem checked a) then begin
    Hashtbl.replace checked a ();
    if not (Hashtbl.mem fk.var_bytes a) then
      match Hashtbl.find_opt fk.bytes a with
      | None -> ()
      | Some b ->
        if b.post_written then ()
        else (
          match b.ps with
          | Dirty | Pending ->
            add_key
              (Report.dedup_key
                 (Report.Race
                    {
                      addr = a;
                      size = 1;
                      read_loc = loc;
                      write_loc = b.writer;
                      uninit = false;
                      provenance = None;
                    }))
          | Clean -> ()
          | Durable -> (
            let semantic status =
              add_key
                (Report.dedup_key
                   (Report.Semantic
                      {
                        addr = a;
                        size = 1;
                        read_loc = loc;
                        write_loc = b.writer;
                        status;
                        provenance = None;
                      }))
            in
            match Hashtbl.find_opt fk.range_bytes a with
            | None -> ()
            | Some var ->
              let v = Hashtbl.find fk.vars var in
              if v.commits = 0 then semantic Cstate.not_committed
              else
                let t_prelast = if v.commits = 1 then -1 else v.t_prelast in
                let s =
                  Cstate.classify ~t_prelast ~t_last:v.t_last ~tlast:b.tlast
                in
                if not (Cstate.is_consistent s) then semantic s))
  end

(* Evaluate the whole post-failure stage against one failure-point fork:
   the shared [Prog.run_post] drives recovery guards, with reads checking
   bytes, writes marking them post-written (and committing variables at the
   fork's own timestamps), flushes and fences running the same FSM. *)
let run_post_on ~check_perf ~add_key prog fk =
  let checked = Hashtbl.create 64 in
  let backend =
    {
      Prog.read =
        (fun ~loc addr n -> Addr.iter_bytes addr n (check_byte fk ~checked ~add_key ~loc));
      read_i64 =
        (fun ~loc addr ->
          Addr.iter_bytes addr Prog.slot_size (check_byte fk ~checked ~add_key ~loc);
          match Hashtbl.find_opt fk.values addr with Some v -> v | None -> 0L);
      write = (fun ~loc addr v -> do_write fk ~loc ~post:true addr v ~nt:false);
      flush = (fun ~loc addr -> do_flush fk ~check_perf ~loc ~add_key addr);
      fence = (fun ~loc:_ -> do_fence fk);
    }
  in
  Prog.run_post prog backend

type result = { keys : string list; failure_points : int }

let run ?(config = Xfd.Config.default) (p : Prog.t) =
  (match config.Xfd.Config.crash_mode with
  | `Full -> ()
  | `Strict -> invalid_arg "Oracle.run: only the `Full crash mode is supported");
  (match Prog.check p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Oracle.run: invalid program: " ^ e));
  let check_perf = config.Xfd.Config.check_perf in
  let keys = Hashtbl.create 64 in
  let add_key k = Hashtbl.replace keys k () in
  let st = fresh () in
  let snaps = ref [] and fired = ref 0 and last_ops = ref 0 in
  let record () =
    snaps := (!fired, fork st) :: !snaps;
    incr fired
  in
  let fence_fp () =
    (* Fired before the fence's own effects, like the frontend hook. *)
    if
      st.in_roi
      && !fired < config.Xfd.Config.max_failure_points
      && st.update_ops > !last_ops
    then begin
      last_ops := st.update_ops;
      record ()
    end
  in
  (* -- setup, outside the RoI (mirrors [Prog.to_program]) -- *)
  List.iteri
    (fun i s ->
      do_write st
        ~loc:(Loc.make ~file:"fuzz.setup" ~line:i)
        ~post:false (Prog.slot_addr s)
        (Int64.of_int (0x5e00 + s))
        ~nt:false)
    p.Prog.setup_slots;
  (match p.Prog.setup_slots with
  | [] -> ()
  | ss ->
    let lines =
      List.fold_left
        (fun acc s ->
          let l = Addr.line_of (Prog.slot_addr s) in
          if List.mem l acc then acc else l :: acc)
        [] ss
      |> List.rev
    in
    List.iter
      (fun l ->
        do_flush st ~check_perf ~loc:(Loc.make ~file:"fuzz.setup" ~line:99) ~add_key l)
      lines;
    do_fence st);
  (* -- registration -- *)
  List.iter
    (fun (v, (s, n)) ->
      let var = Prog.slot_addr v in
      Hashtbl.replace st.vars var { t_prelast = -1; t_last = -1; commits = 0 };
      Addr.iter_bytes var Prog.slot_size (fun a -> Hashtbl.replace st.var_bytes a var);
      if n > 0 then
        Addr.iter_bytes (Prog.slot_addr s) (n * Prog.slot_size) (fun a ->
            Hashtbl.replace st.range_bytes a var))
    p.Prog.commit_vars;
  (* -- RoI body -- *)
  st.in_roi <- true;
  List.iter
    (fun (id, op) ->
      let loc = Prog.pre_loc id in
      match op with
      | Prog.Store { slot; v; nt } -> do_write st ~loc ~post:false (Prog.slot_addr slot) v ~nt
      | Prog.Flush { slot; opt = _ } ->
        do_flush st ~check_perf ~loc ~add_key (Prog.slot_addr slot)
      | Prog.Fence ->
        fence_fp ();
        do_fence st
      | Prog.Read _ -> ()
      | Prog.Tx_begin ->
        st.tx_active <- true;
        st.tx_added <- []
      | Prog.Tx_add { slot; n } ->
        do_tx_add st ~check_perf ~loc ~add_key (Prog.slot_addr slot) (n * Prog.slot_size)
      | Prog.Tx_commit ->
        st.tx_active <- false;
        st.tx_added <- [])
    p.Prog.ops;
  st.in_roi <- false;
  (* -- terminal failure point: completion must also recover cleanly -- *)
  if config.Xfd.Config.inject_terminal_fp && st.update_ops > !last_ops then record ();
  (* -- post-failure stage, once per failure point -- *)
  List.iter (fun (_, fk) -> run_post_on ~check_perf ~add_key p fk) (List.rev !snaps);
  {
    keys = List.sort_uniq String.compare (Hashtbl.fold (fun k () acc -> k :: acc) keys []);
    failure_points = !fired;
  }

let keys_of_outcome (o : Xfd.Engine.outcome) =
  List.sort_uniq String.compare (List.map Report.dedup_key o.Xfd.Engine.unique_bugs)
