(** Typed PM programs for the fuzzer.

    A fuzz program is a closed, data-independent description of one
    detection run over a small slot arena: a list of pre-failure operations
    (stores, NT stores, flushes, fences, transactions), commit-variable
    registrations, and a post-failure stage made of guarded recovery blocks
    and plain reads.  Being first-order data — rather than OCaml closures —
    programs can be generated, transformed by the metamorphic oracles,
    shrunk, serialised to [.xfdprog] repro files and interpreted twice: once
    through {!to_program}/[Engine.detect] and once by the independent
    reference {!Oracle}. *)

(** {1 Arena}

    The arena is [n_slots] aligned 8-byte slots spanning four cache lines
    at [Addr.pool_base].  All addresses in a program are slot indices; this
    keeps every generated access in-bounds by construction while still
    exercising cache-line sharing (8 slots per 64-byte line). *)

val slot_size : int
val n_slots : int

(** Byte address of a slot ([Addr.pool_base + slot * slot_size]). *)
val slot_addr : int -> Xfd_mem.Addr.t

(** {1 Syntax} *)

type op =
  | Store of { slot : int; v : int64; nt : bool }
      (** 8-byte store of [v] to [slot]; non-temporal when [nt]. *)
  | Flush of { slot : int; opt : bool }
      (** CLWB ([opt = false]) or CLFLUSH of [slot]'s cache line. *)
  | Fence  (** SFENCE — an ordering point, hence a failure-point site. *)
  | Read of { slot : int; n : int }
      (** Pre-failure read of [n] slots; inert for detection. *)
  | Tx_begin
  | Tx_add of { slot : int; n : int }
  | Tx_commit

(** A guarded recovery block, shaped like the paper's Figure 2 recovery:
    read the commit variable [var]; when its architectural value is 1, read
    the [backup] slot ranges, rewrite the [rollback] slots (persisting
    them), then reset [var] to 0 and persist it.  [rid] is a stable
    identifier from which the block's source locations are derived, so
    verdicts survive shrinking of sibling blocks. *)
type recover = { rid : int; var : int; backup : (int * int) list; rollback : int list }

type t = {
  commit_vars : (int * (int * int)) list;
      (** [(var_slot, (first_range_slot, n_slots))]: registered before the
          RoI; a zero-length range registers the variable alone. *)
  setup_slots : int list;
      (** Slots initialised (written, flushed, fenced) outside the RoI. *)
  ops : (int * op) list;
      (** RoI body; the [int] is a stable op identifier that becomes the
          op's source line, so bug identities survive transformation. *)
  recovers : recover list;
  post_reads : (int * int * int) list;  (** [(id, slot, n)] plain reads. *)
}

(** Number of pre ops + recovery blocks + post reads — the size the
    shrinker minimises and the repro acceptance bound counts. *)
val size : t -> int

(** Structural validity: every slot index, range and recovery reference in
    bounds and commit ranges disjoint. Generated programs always pass;
    parsed ones are checked on load. *)
val check : t -> (unit, string) result

val equal : t -> t -> bool

(** {1 Source locations}

    Every op owns a synthetic location ([fuzz.pre:<id>], [fuzz.post:<id>],
    [fuzz.rec:<rid*100+step>], ...) — dedup keys are location-based, so
    stable ids give stable verdicts. *)

val pre_loc : int -> Xfd_util.Loc.t

val post_loc : int -> Xfd_util.Loc.t

(** Location of step [k] of recovery block [rid]. *)
val rec_loc : int -> int -> Xfd_util.Loc.t

(** {1 Interpretation} *)

(** Compile to an engine program: [setup] writes and persists the setup
    slots outside the RoI; [pre] registers the commit variables then runs
    [ops] inside the RoI; [post] runs the recovery blocks and plain reads
    inside its own RoI. *)
val to_program : ?name:string -> t -> Xfd.Engine.program

(** One step of the post-failure stage, abstracted over who executes it —
    the simulated context or the reference oracle.  [read]/[read_i64] must
    perform the read-checking side effect; [write] is an 8-byte store;
    [flush]+[fence] persist.  {!run_post} drives the guards so the two
    interpreters cannot disagree on recovery control flow. *)
type backend = {
  read : loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit;
  read_i64 : loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int64;
  write : loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int64 -> unit;
  flush : loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> unit;
  fence : loc:Xfd_util.Loc.t -> unit;
}

(** Run the post-failure stage (recovery blocks then plain reads) against a
    backend.  Does not bracket with RoI annotations — callers do. *)
val run_post : t -> backend -> unit

(** {1 Serialisation — the [.xfdprog] format}

    Line-oriented text: a [xfdprog 1] header, then [var]/[setup]/[op]/
    [recover]/[post] directives.  [of_lines] ignores blank lines and [#]
    comments and rejects unknown directives; any [expect] lines are
    returned separately for the corpus layer. *)

val to_lines : t -> string list

val of_lines : string list -> (t * string list, string) result

val pp : Format.formatter -> t -> unit
