(** Differential workload fuzzing: the driver loop.

    Each iteration generates one program (deterministically from the run
    seed and the iteration index, so a budget extension replays a prefix),
    runs it through [Engine.detect], and checks:

    - {b Differential}: the engine's deduplicated key set and fired
      failure-point count must equal the reference {!Oracle}'s.
    - {b Metamorphic M1}: inserting a redundant CLWB (of a slot stored
      earlier) immediately before an existing fence never flags a read
      site that the original did not flag — extra flushes may turn races
      into semantic findings or remove them, but cannot invent correctness
      bugs at new sites.
    - {b Metamorphic M2}: swapping two adjacent independent ops (stores,
      flushes, reads, TX adds on disjoint cache lines, no fence between)
      preserves the exact key set.
    - {b Metamorphic M3}: replaying under [post_jobs = 3] yields the same
      keys as the sequential run (checked on a rotating subset).
    - {b Metamorphic M4}: a [Correct]-profile program must be
      {!Xfd_lint.Lint}-clean — the static analyzer never indicts a
      well-formed persistence protocol.
    - {b Metamorphic M5}: domain-model monotonicity.  A [Correct]-profile
      program must have no error-severity findings under {e any}
      {!Xfd_trace.Domain_model.t} (eADR legitimately downgrades its
      flushes to redundant-flush warnings, so M5 gates on errors only);
      and for every profile, linting under [Eadr] must never {e add} an
      error-severity key that the [Adr] lint lacks — eADR only removes
      persistence obligations.
    - {b Profile}: a [Correct]-profile program must produce zero findings.

    Any violation is shrunk with {!Shrink.minimize} (the shrink predicate
    re-checks the violated property) and saved as an [.xfdprog] repro in
    the corpus directory.  Buggy programs whose verdicts agree are also
    harvested: the first program exhibiting each new key set is shrunk and
    saved, building a regression corpus that [run] replays first.

    Programs with a dynamically-confirmed race that no lint finding
    anticipates (per {!Xfd_lint.Lint.triage_of}) are counted in
    [lint_misses] and the first few distinct ones are shrunk into the
    corpus too.  Such misses are by design — they are the evidence behind
    lint-guided {e prioritization} (never pruning) of failure points — so
    they do not fail the run. *)

type cfg = {
  seed : int;
  budget : int;  (** programs to generate *)
  profile : Gen.profile;
  corpus_dir : string option;  (** replayed first; repros are saved here *)
  max_repros : int;  (** cap on harvested bug repros (not violations) *)
  shrink_budget : int;  (** max predicate evaluations per shrink *)
}

val default_cfg : cfg

type summary = {
  programs : int;
  divergences : int;  (** engine vs reference-oracle mismatches *)
  meta_failures : int;  (** metamorphic or correct-profile violations *)
  buggy_programs : int;  (** programs with at least one finding *)
  unique_key_sets : int;  (** distinct verdict signatures seen *)
  repros : string list;  (** paths of saved repro files, in save order *)
  shrink_evals : int;
  corpus_checked : int;
  corpus_failures : int;
  lint_misses : int;
      (** programs whose detected races no lint finding anticipated —
          informational, never a failure *)
}

(** True when the run found no divergence, no metamorphic violation and no
    corpus regression. *)
val clean : summary -> bool

(** Run the loop.  Progress and failure detail go to [out]
    (default: a null formatter); all output is deterministic for a given
    [cfg]. *)
val run : ?out:Format.formatter -> cfg -> summary

val pp_summary : Format.formatter -> summary -> unit
