(** Delta-debugging shrinker for failing fuzz programs.

    [minimize ~keep p] greedily removes chunks (halving chunk sizes down to
    single elements, ddmin-style) from every component of the program — pre
    ops, recovery blocks, plain post reads, setup slots, commit variables —
    re-validating candidates and re-testing them with [keep], until a fixed
    point or the evaluation budget is reached.  [keep] must hold for [p]
    itself and for every intermediate result returned; removing a commit
    variable drops the recovery blocks that reference it, keeping every
    candidate well-formed.

    Returns the minimized program and the number of [keep] evaluations
    spent.  Deterministic: candidate order is a pure function of the input
    program. *)

val minimize :
  ?max_evals:int -> keep:(Prog.t -> bool) -> Prog.t -> Prog.t * int
