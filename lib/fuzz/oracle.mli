(** Sequential reference oracle: ground-truth verdicts for a fuzz program.

    [run] interprets a {!Prog.t} directly — no device, no traces, no
    snapshots, no replay — maintaining one per-byte persistence state
    machine, per-variable commit windows and a timestamp counter, and
    evaluating every post-failure read at every failure point against a
    deep copy of the pre-failure state taken at that point.  It implements
    the paper's rules (Figure 9 persistence FSM, Eq. 3 consistency windows,
    the flush/TX performance-bug conditions) from the program syntax, so a
    mismatch with [Engine.detect]'s deduplicated bug set flags a defect in
    the pipeline: tracing, snapshotting, replay, forking or deduplication.

    Failure points are placed as the engine places them — before each RoI
    fence and once terminally — including the elision rule (no PM-status
    change since the last point fires no point) and the
    [max_failure_points] cap, since both are verdict-relevant.

    Only the default [`Full] crash mode is supported ([Invalid_argument]
    otherwise): post-failure guards read architectural values. *)

type result = {
  keys : string list;  (** expected [Report.dedup_key]s, sorted, unique *)
  failure_points : int;  (** how many points the engine should fire *)
}

val run : ?config:Xfd.Config.t -> Prog.t -> result

(** Sorted unique dedup keys of an engine outcome, for comparison against
    {!result}[.keys]. *)
val keys_of_outcome : Xfd.Engine.outcome -> string list
