module Rng = Xfd_util.Rng

type profile = Correct | Buggy | Wild

let profile_to_string = function Correct -> "correct" | Buggy -> "buggy" | Wild -> "wild"

let profile_of_string = function
  | "correct" -> Ok Correct
  | "buggy" -> Ok Buggy
  | "wild" -> Ok Wild
  | s -> Error (Printf.sprintf "unknown profile %S (want correct|buggy|wild)" s)

(* Arena layout used by the structured profiles.  Commit ranges live in
   line 0 (so two variables' ranges share a cache line, like the paper's
   Figure 11), in-place data in line 1, scratch data in line 2, commit
   variables in line 3.  Only in-place slots — the ones guarded recovery
   rolls back — and commit variables are read unconditionally after a
   failure; scratch slots are written but never post-read, which is what
   keeps the [Correct] profile finding-free at intermediate points. *)
let var_a = 24
let var_b = 25
let range_a = 0
let range_b = 4
let inplace = [ 8; 9; 10; 11; 12; 13; 14; 15 ]
let scratch = [ 16; 17; 18; 19; 20; 21; 22; 23 ]

let pick rng l = List.nth l (Rng.int rng (List.length l))
let rand_v rng = Int64.of_int (2 + Rng.int rng 250)

type builder = {
  rng : Rng.t;
  mutable ops_rev : Prog.op list;
  mutable rolled : (int * int list) list; (* var slot -> in-place slots touched *)
  mutable read_scratch : int list; (* scratch slots a bug phrase wants post-read *)
  mutable read_ranges : (int * int) list; (* unguarded range reads to add *)
}

let emit b ops = b.ops_rev <- List.rev_append ops b.ops_rev

let touch b var d =
  let prev = try List.assoc var b.rolled with Not_found -> [] in
  if not (List.mem d prev) then
    b.rolled <- (var, d :: prev) :: List.remove_assoc var b.rolled

let store ?(nt = false) b s = Prog.Store { slot = s; v = rand_v b.rng; nt }
let persist s = [ Prog.Flush { slot = s; opt = false }; Prog.Fence ]

let range_stores b (rs, rn) = List.init rn (fun i -> store b (rs + i))

(* -- clean phrases -- *)

let ph_plain b =
  let d = pick b.rng scratch in
  emit b ((store b d :: persist d))

let ph_nt b =
  let d = pick b.rng scratch in
  emit b [ store ~nt:true b d; Prog.Fence ]

let ph_guarded b (var, (rs, rn)) =
  let d = pick b.rng inplace in
  touch b var d;
  emit b
    (range_stores b (rs, rn)
    @ persist rs
    @ (Prog.Store { slot = var; v = 1L; nt = false } :: persist var)
    @ (store b d :: persist d)
    @ (Prog.Store { slot = var; v = 0L; nt = false } :: persist var))

let ph_tx b =
  let d1 = pick b.rng scratch in
  let d2 = pick b.rng (List.filter (fun s -> s <> d1) scratch) in
  emit b
    [
      Prog.Tx_begin;
      Prog.Tx_add { slot = d1; n = 1 };
      Prog.Tx_add { slot = d2; n = 1 };
      Prog.Tx_commit;
    ]

let ph_read b =
  let s = pick b.rng (inplace @ scratch) in
  emit b [ Prog.Read { slot = s; n = 1 } ]

(* -- seeded-bug phrases -- *)

let ph_missing_flush b =
  let d = pick b.rng scratch in
  b.read_scratch <- d :: b.read_scratch;
  emit b [ store b d; Prog.Fence ]

let ph_missing_fence b =
  let d = pick b.rng scratch in
  b.read_scratch <- d :: b.read_scratch;
  emit b [ store b d; Prog.Flush { slot = d; opt = Rng.bool b.rng } ]

let ph_early_commit b (var, (rs, rn)) =
  (* Commit before the data persists: guarded recovery reads dirty backup. *)
  emit b
    (range_stores b (rs, rn)
    @ (Prog.Store { slot = var; v = 1L; nt = false } :: persist var))

let ph_stale b (var, (rs, rn)) =
  (* Full committed rewrite, then a partial one: the untouched range slots
     fall outside the second commit window — stale under guarded reads. *)
  emit b
    (range_stores b (rs, rn)
    @ persist rs
    @ (Prog.Store { slot = var; v = 1L; nt = false } :: persist var)
    @ (store b rs :: persist rs)
    @ (Prog.Store { slot = var; v = 1L; nt = false } :: persist var))

let ph_double_flush b =
  let d = pick b.rng scratch in
  emit b
    [ store b d; Prog.Flush { slot = d; opt = false }; Prog.Flush { slot = d; opt = false }; Prog.Fence ]

let ph_unnecessary_flush b =
  let d = pick b.rng scratch in
  emit b ((store b d :: persist d) @ [ Prog.Flush { slot = d; opt = Rng.bool b.rng } ])

let ph_dup_tx b =
  let d = pick b.rng [ 16; 17; 18; 19; 20; 21; 22 ] in
  emit b
    [
      Prog.Tx_begin;
      Prog.Tx_add { slot = d; n = 2 };
      Prog.Tx_add { slot = d + 1; n = 1 };
      Prog.Tx_commit;
    ]

let ph_unguarded_range_read b (_, (rs, rn)) =
  b.read_ranges <- (rs + Rng.int b.rng rn, 1) :: b.read_ranges

(* -- whole-program assembly for the structured profiles -- *)

let structured profile rng =
  let vars =
    (var_a, (range_a, 1 + Rng.int rng 4))
    :: (if Rng.int rng 3 = 0 then [ (var_b, (range_b, 1 + Rng.int rng 4)) ] else [])
  in
  let setup_slots = List.filter (fun _ -> Rng.int rng 3 = 0) (inplace @ scratch) in
  let b = { rng; ops_rev = []; rolled = []; read_scratch = []; read_ranges = [] } in
  let clean_phrase () =
    match Rng.int rng 6 with
    | 0 | 1 -> ph_plain b
    | 2 -> ph_nt b
    | 3 -> ph_guarded b (pick rng vars)
    | 4 -> ph_tx b
    | _ -> ph_read b
  in
  let bug_phrase () =
    match Rng.int rng 8 with
    | 0 -> ph_missing_flush b
    | 1 -> ph_missing_fence b
    | 2 -> ph_early_commit b (pick rng vars)
    | 3 -> ph_stale b (pick rng vars)
    | 4 -> ph_double_flush b
    | 5 -> ph_unnecessary_flush b
    | 6 -> ph_dup_tx b
    | _ -> ph_unguarded_range_read b (pick rng vars)
  in
  let n_phrases = 2 + Rng.int rng 4 in
  let bugged = ref false in
  for _ = 1 to n_phrases do
    match profile with
    | Correct -> clean_phrase ()
    | _ ->
      if Rng.int rng 3 = 0 then begin
        bugged := true;
        bug_phrase ()
      end
      else clean_phrase ()
  done;
  if profile = Buggy && not !bugged then ph_missing_flush b;
  let ops = List.rev b.ops_rev |> List.mapi (fun i op -> (i + 1, op)) in
  let recovers =
    List.mapi
      (fun i (var, (rs, rn)) ->
        {
          Prog.rid = i + 1;
          var;
          backup = [ (rs, rn) ];
          rollback = (try List.sort compare (List.assoc var b.rolled) with Not_found -> []);
        })
      vars
  in
  let post_targets =
    List.sort_uniq compare
      (List.map fst vars
      @ List.filter (fun _ -> Rng.int rng 2 = 0) inplace
      @ b.read_scratch)
  in
  let post_reads =
    List.mapi (fun i s -> (i + 1, s, 1)) post_targets
    @ List.mapi
        (fun i (s, n) -> (100 + i, s, n))
        (List.sort_uniq compare b.read_ranges)
  in
  { Prog.commit_vars = vars; setup_slots; ops; recovers; post_reads }

(* -- unconstrained soup for differential testing -- *)

let wild rng =
  let vars =
    List.concat
      [
        (if Rng.bool rng then [ (var_a, (range_a, Rng.int rng 5)) ] else []);
        (if Rng.int rng 3 = 0 then [ (var_b, (range_b, Rng.int rng 5)) ] else []);
      ]
  in
  let setup_slots =
    List.filter (fun _ -> Rng.int rng 5 = 0) (List.init Prog.n_slots Fun.id)
  in
  let any_slot () = Rng.int rng Prog.n_slots in
  let any_range () =
    let s = Rng.int rng Prog.n_slots in
    (s, 1 + Rng.int rng (min 3 (Prog.n_slots - s)))
  in
  let n_ops = 3 + Rng.int rng 15 in
  let ops =
    List.init n_ops (fun i ->
        let op =
          match Rng.int rng 9 with
          | 0 | 1 ->
            Prog.Store
              { slot = any_slot (); v = Int64.of_int (Rng.int rng 3); nt = Rng.int rng 4 = 0 }
          | 2 | 3 -> Prog.Flush { slot = any_slot (); opt = Rng.bool rng }
          | 4 -> Prog.Fence
          | 5 ->
            let s, n = any_range () in
            Prog.Read { slot = s; n }
          | 6 -> Prog.Tx_begin
          | 7 ->
            let s, n = any_range () in
            Prog.Tx_add { slot = s; n }
          | _ -> Prog.Tx_commit
        in
        (i + 1, op))
  in
  let recovers =
    if vars = [] then []
    else
      List.init (Rng.int rng 3) (fun i ->
          {
            Prog.rid = i + 1;
            var = fst (pick rng vars);
            backup = List.init (Rng.int rng 3) (fun _ -> any_range ());
            rollback =
              List.sort_uniq compare (List.init (Rng.int rng 4) (fun _ -> any_slot ()));
          })
  in
  let post_reads =
    List.init (Rng.int rng 5) (fun i ->
        let s, n = any_range () in
        (i + 1, s, n))
  in
  { Prog.commit_vars = vars; setup_slots; ops; recovers; post_reads }

let generate profile rng =
  let p =
    match profile with Correct | Buggy -> structured profile rng | Wild -> wild rng
  in
  match Prog.check p with
  | Ok () -> p
  | Error e -> invalid_arg ("Gen.generate produced an invalid program: " ^ e)
