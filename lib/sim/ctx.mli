(** The instrumented execution context handed to every PM program.

    This is the reproduction's substitute for Pin-based binary
    instrumentation: a PM program is an OCaml function [Ctx.t -> unit] and
    every PM access goes through this module, which (1) performs the access
    on the simulated device, (2) appends a trace event carrying the caller's
    source location, and (3) drives failure-point bookkeeping — calling the
    frontend's hook immediately before each ordering point inside the
    region of interest, exactly where section 4.2 injects failures.

    The annotation functions mirror the paper's Table 2 software interface:
    RoI selection, skipping failure injection or detection for trusted code,
    manual failure points, and commit-variable registration. *)

type stage = Pre_failure | Post_failure

(** Where failure points are injected. [Ordering_points] is the paper's
    scheme; [Every_update] is the naive per-update scheme used as the
    ablation baseline in experiment E7. *)
type strategy = Ordering_points | Every_update

type t

exception Detection_complete
(** Raised by {!complete_detection}; the runner treats it as normal end. *)

val create :
  ?faults:Faults.t ->
  ?strategy:strategy ->
  ?trust_library:bool ->
  ?tracing:bool ->
  ?on_failure_point:(t -> unit) ->
  stage:stage ->
  dev:Xfd_mem.Pm_device.t ->
  trace:Xfd_trace.Trace.t ->
  unit ->
  t

val stage : t -> stage
val device : t -> Xfd_mem.Pm_device.t
val trace : t -> Xfd_trace.Trace.t
val in_roi : t -> bool

(** When true (the default, matching the paper), PM-library internals are
    wrapped in skip-failure/skip-detection regions and traced at function
    granularity.  When false the library itself is under test: internals are
    traced and checked at instruction granularity. *)
val trust_library : t -> bool

(** Number of ordering points executed so far (inside or outside RoI). *)
val ordering_points : t -> int

(** {1 PM accesses} — each emits one trace event. *)

val read : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> bytes
val write : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> bytes -> unit
val read_i64 : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int64
val write_i64 : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int64 -> unit
val write_nt : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> bytes -> unit
val clwb : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> unit
val clflush : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> unit
val sfence : t -> loc:Xfd_util.Loc.t -> unit

(** Global persistent flush barrier (CXL): an ordering point that persists
    every outstanding byte at device level and emits {!Xfd_trace.Event.kind.Gpf}.
    How much persistence the barrier actually buys is the detector's call —
    under non-CXL domain models the event is inert there.  Not subject to
    fault injection (no seeded-bug kind targets it). *)
val gpf : t -> loc:Xfd_util.Loc.t -> unit

(** [persist_barrier t ~loc addr size] is "CLWB every line of the range;
    SFENCE" — the paper's [persist_barrier()], a single ordering point. *)
val persist_barrier : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

(** {1 Library-event emission} — used by the PMDK layer so the backend can
    treat library calls at function granularity. *)

val emit : t -> loc:Xfd_util.Loc.t -> Xfd_trace.Event.kind -> unit

(** {1 Annotations (Table 2)} *)

val roi_begin : t -> loc:Xfd_util.Loc.t -> unit
val roi_end : t -> loc:Xfd_util.Loc.t -> unit

(** While the skip-failure depth is positive, ordering points do not become
    failure points (trusted library internals). *)
val skip_failure_begin : t -> unit

val skip_failure_end : t -> unit

(** While the skip-detection depth is positive, the backend will not check
    reads (it still applies writes to the shadow PM). *)
val skip_detection_begin : t -> loc:Xfd_util.Loc.t -> unit

val skip_detection_end : t -> loc:Xfd_util.Loc.t -> unit

(** Inject a failure point right here, regardless of ordering points (the
    paper's addFailurePoint, for checksum-style mechanisms and for the one
    failure point per PMDK library call). *)
val add_failure_point : t -> unit

val add_commit_var : t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

val add_commit_range :
  t -> loc:Xfd_util.Loc.t -> var:Xfd_mem.Addr.t -> Xfd_mem.Addr.t -> int -> unit

val marker : t -> loc:Xfd_util.Loc.t -> string -> unit

(** Terminate detection for this execution (the paper's completeDetection). *)
val complete_detection : t -> 'a

exception Assertion_failed of string

(** [check t ~loc cond msg] — post-failure value assertions, the paper's
    section 5.5 recipe for value-dependent bugs the shadow PM cannot see:
    "programmers may place assertions to check data values in the
    post-failure code and then use XFDetector's failure injection mechanism
    to trigger the post-failure execution".  A failing check raises
    {!Assertion_failed}, which the engine records as a post-failure error
    at the current failure point. *)
val check : t -> loc:Xfd_util.Loc.t -> bool -> string -> unit

(** {1 Fault-injection support} *)

val faults : t -> Faults.t

(** Monotone count of PM-status-changing operations (writes, NT writes,
    flushes, fences).  The frontend compares this across failure points to
    elide points between which the PM status cannot have changed
    (section 5.4 optimisation 2). *)
val update_ops : t -> int

(** {1 Multithreading support (paper section 7)}

    A scheduler hook, when set, runs at the start of every PM operation;
    {!Xfd_sim.Mt} uses it to yield between logical threads so that their PM
    operations interleave deterministically in one shared trace. *)

val set_scheduler_hook : t -> (unit -> unit) option -> unit
