module Device = Xfd_mem.Pm_device
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Obs = Xfd_obs.Obs

(* Frontend telemetry: everything the instrumented context observes about
   the program under test, across both stages. *)
let c_events = Obs.Counter.make "sim.trace_events"
let c_ordering_points = Obs.Counter.make "sim.ordering_points"
let c_roi_transitions = Obs.Counter.make "sim.roi_transitions"
let c_manual_fps = Obs.Counter.make "sim.manual_failure_points"

type stage = Pre_failure | Post_failure
type strategy = Ordering_points | Every_update

exception Detection_complete

type t = {
  dev : Device.t;
  trace : Trace.t;
  stage : stage;
  strategy : strategy;
  faults : Faults.t;
  trust_library : bool;
  tracing : bool;
  on_failure_point : (t -> unit) option;
  mutable in_roi : bool;
  mutable skip_failure_depth : int;
  mutable skip_detection_depth : int;
  mutable ordering_points : int;
  mutable update_ops : int;
  mutable scheduler_hook : (unit -> unit) option;
}

let create ?(faults = Faults.none) ?(strategy = Ordering_points) ?(trust_library = true)
    ?(tracing = true) ?on_failure_point ~stage ~dev ~trace () =
  {
    dev;
    trace;
    stage;
    strategy;
    faults;
    trust_library;
    tracing;
    on_failure_point;
    in_roi = false;
    skip_failure_depth = 0;
    skip_detection_depth = 0;
    ordering_points = 0;
    update_ops = 0;
    scheduler_hook = None;
  }

let stage t = t.stage
let device t = t.dev
let trace t = t.trace
let in_roi t = t.in_roi
let trust_library t = t.trust_library
let ordering_points t = t.ordering_points
let faults t = t.faults
let update_ops t = t.update_ops

let emit t ~loc kind =
  if t.tracing then begin
    Obs.Counter.incr c_events;
    ignore (Trace.append t.trace ~kind ~loc)
  end

let set_scheduler_hook t hook = t.scheduler_hook <- hook
let yield t = match t.scheduler_hook with Some f -> f () | None -> ()

(* Faults only corrupt the pre-failure stage inside the RoI, and only
   user-level operations (not trusted-library internals): seeded bugs model
   programmer errors in the update path, not in recovery or library code.
   Occurrence indices in a fault specification therefore refer to the n-th
   user-level flush/fence, which keeps them stable and meaningful. *)
let fault_active t =
  t.stage = Pre_failure && t.in_roi && t.skip_detection_depth = 0
  && Faults.is_none t.faults = false

let injectable t =
  t.stage = Pre_failure && t.in_roi && t.skip_failure_depth = 0
  && Option.is_some t.on_failure_point

let fire_failure_point t =
  match t.on_failure_point with Some hook -> hook t | None -> ()

(* The naive ablation strategy considers the PM status changed after every
   update, so a failure point precedes the *next* operation after each
   update; firing right after the update is equivalent and simpler. *)
let after_update t =
  t.update_ops <- t.update_ops + 1;
  if t.strategy = Every_update && injectable t then fire_failure_point t

let read t ~loc addr size =
  yield t;
  emit t ~loc (Event.Read { addr; size });
  Device.load t.dev addr size

let write t ~loc addr b =
  yield t;
  emit t ~loc (Event.Write { addr; size = Bytes.length b });
  Device.store t.dev addr b;
  after_update t

let read_i64 t ~loc addr = Xfd_util.Bytesx.get_i64 (read t ~loc addr 8) 0
let write_i64 t ~loc addr v = write t ~loc addr (Xfd_util.Bytesx.i64_to_bytes v)

let write_nt t ~loc addr b =
  yield t;
  emit t ~loc (Event.Nt_write { addr; size = Bytes.length b });
  Device.store_nt t.dev addr b;
  after_update t

let do_flush t ~loc addr =
  yield t;
  emit t ~loc (Event.Clwb { addr });
  Device.clwb t.dev addr;
  after_update t

let clwb t ~loc addr =
  match if fault_active t then Faults.on_flush t.faults else Faults.Normal with
  | Faults.Skip -> ()
  | Faults.Normal -> do_flush t ~loc addr
  | Faults.Duplicate ->
    do_flush t ~loc addr;
    do_flush t ~loc addr

let clflush t ~loc addr =
  match if fault_active t then Faults.on_flush t.faults else Faults.Normal with
  | Faults.Skip -> ()
  | Faults.Normal | Faults.Duplicate ->
    emit t ~loc (Event.Clflush { addr });
    Device.clflush t.dev addr;
    after_update t

let do_sfence t ~loc =
  yield t;
  (* A failure point goes immediately *before* the ordering point: the state
     checked is the one in which this fence never executed.  The frontend
     hook is responsible for eliding points with no update since the last
     one (it compares [update_ops]).  A fence that actually promotes
     writeback-pending bytes is itself a PM-status change — that is what
     makes the state after the last barrier (program completed) worth one
     more, terminal failure point — whereas an empty fence is not. *)
  if injectable t && t.strategy = Ordering_points then fire_failure_point t;
  let promotes = Device.pending_bytes t.dev > 0 in
  emit t ~loc Event.Sfence;
  Device.sfence t.dev;
  t.ordering_points <- t.ordering_points + 1;
  Obs.Counter.incr c_ordering_points;
  if promotes then t.update_ops <- t.update_ops + 1

let sfence t ~loc =
  match if fault_active t then Faults.on_fence t.faults else Faults.Normal with
  | Faults.Skip -> ()
  | Faults.Normal | Faults.Duplicate -> do_sfence t ~loc

let gpf t ~loc =
  yield t;
  (* Like a fence, the GPF barrier is an ordering point and the failure
     point goes immediately before it: the state checked is the one in
     which the barrier never ran. *)
  if injectable t && t.strategy = Ordering_points then fire_failure_point t;
  let promotes = Device.dirty_bytes t.dev > 0 || Device.pending_bytes t.dev > 0 in
  emit t ~loc Event.Gpf;
  Device.gpf t.dev;
  t.ordering_points <- t.ordering_points + 1;
  Obs.Counter.incr c_ordering_points;
  if promotes then t.update_ops <- t.update_ops + 1

let persist_barrier t ~loc addr size =
  List.iter (fun line -> clwb t ~loc line) (Xfd_mem.Addr.lines_spanning addr size);
  sfence t ~loc

let roi_begin t ~loc =
  t.in_roi <- true;
  Obs.Counter.incr c_roi_transitions;
  emit t ~loc Event.Roi_begin

let roi_end t ~loc =
  t.in_roi <- false;
  Obs.Counter.incr c_roi_transitions;
  emit t ~loc Event.Roi_end

let skip_failure_begin t = t.skip_failure_depth <- t.skip_failure_depth + 1

let skip_failure_end t =
  if t.skip_failure_depth = 0 then invalid_arg "Ctx.skip_failure_end: not in a skip region";
  t.skip_failure_depth <- t.skip_failure_depth - 1

let skip_detection_begin t ~loc =
  t.skip_detection_depth <- t.skip_detection_depth + 1;
  emit t ~loc Event.Skip_detection_begin

let skip_detection_end t ~loc =
  if t.skip_detection_depth = 0 then
    invalid_arg "Ctx.skip_detection_end: not in a skip region";
  t.skip_detection_depth <- t.skip_detection_depth - 1;
  emit t ~loc Event.Skip_detection_end

let add_failure_point t =
  if injectable t then begin
    Obs.Counter.incr c_manual_fps;
    fire_failure_point t
  end

let add_commit_var t ~loc addr size = emit t ~loc (Event.Commit_var { addr; size })

let add_commit_range t ~loc ~var addr size =
  emit t ~loc (Event.Commit_range { var; addr; size })

let marker t ~loc s = emit t ~loc (Event.Marker s)
let complete_detection _t = raise Detection_complete

exception Assertion_failed of string

let check t ~loc cond msg =
  if not cond then begin
    marker t ~loc ("assertion failed: " ^ msg);
    raise (Assertion_failed (Printf.sprintf "%s (%s)" msg (Xfd_util.Loc.to_string loc)))
  end
