(** A persistent worker pool over a bounded job queue.

    [workers] system threads run items through one runner function;
    [submit] never blocks — a full queue or a draining pool is reported
    to the caller, which maps them to protocol backpressure.  Stopping
    with [~drain:true] (the default) completes every accepted item
    before returning, so an accepted job is never lost. *)

type 'a t

(** [create ~workers ~queue_cap runner] starts the worker threads.
    Raises [Invalid_argument] when either bound is non-positive.  The
    runner is expected not to raise; anything it does raise is swallowed
    so a bad job can never kill a worker. *)
val create : workers:int -> queue_cap:int -> ('a -> unit) -> 'a t

(** Enqueue one item, or say why not.  Never blocks. *)
val submit : 'a t -> 'a -> [ `Accepted | `Queue_full | `Draining ]

(** [(queued, running, completed)] under the pool lock. *)
val stats : 'a t -> int * int * int

val queue_cap : 'a t -> int
val workers : 'a t -> int
val draining : 'a t -> bool

(** Stop the pool and join every worker.  With [~drain:true] (default)
    all queued items run first; with [~drain:false] the unstarted queue
    is discarded and returned (in-flight items still finish — a worker
    is never killed mid-job).  Idempotent; the second call returns []. *)
val stop : ?drain:bool -> 'a t -> 'a list
