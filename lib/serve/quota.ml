(* Per-client token buckets for the submission quota.

   One bucket per client key, refilled continuously at [rate] tokens per
   second up to [burst]; a submission takes one token.  Time is an
   explicit argument so the arithmetic is deterministic under test — the
   server passes [Unix.gettimeofday].  A non-positive rate disables the
   quota entirely (every take succeeds), which is the CLI default. *)

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;
  burst : float;
  mu : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
}

let create ~rate ~burst =
  {
    rate;
    burst = float_of_int (max 1 burst);
    mu = Mutex.create ();
    buckets = Hashtbl.create 16;
  }

let enabled t = t.rate > 0.0

let try_take t ~client ~now =
  if not (enabled t) then `Ok
  else
    Mutex.protect t.mu (fun () ->
        let b =
          match Hashtbl.find_opt t.buckets client with
          | Some b -> b
          | None ->
            let b = { tokens = t.burst; last = now } in
            Hashtbl.add t.buckets client b;
            b
        in
        (* A clock that goes backwards must not mint tokens. *)
        let elapsed = Float.max 0.0 (now -. b.last) in
        let tokens = Float.min t.burst (b.tokens +. (elapsed *. t.rate)) in
        b.last <- now;
        if tokens >= 1.0 then begin
          b.tokens <- tokens -. 1.0;
          `Ok
        end
        else begin
          b.tokens <- tokens;
          `Retry_after ((1.0 -. tokens) /. t.rate)
        end)

let clients t = Mutex.protect t.mu (fun () -> Hashtbl.length t.buckets)
