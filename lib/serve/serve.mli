(** The always-on detection service.

    An {!Xfd_pulse.Httpd} listener in front of a {!Pool} of detection
    workers, {!Quota} token buckets and a bounded table of {!Job}
    records.  Routes:

    - [POST /v1/jobs] — submit a job spec ({!Job.spec_of_json});
      202 with an id, 429 + [Retry-After] over quota or when the queue
      is full, 503 while draining, 400 on a bad body;
    - [GET /v1/jobs] — list retained jobs;
    - [GET /v1/jobs/:id] — full status, with result once done;
    - [GET /v1/jobs/:id/report] — forensics report (409 until done);
    - [GET /v1/corpus], [GET /v1/corpus/:name] — the served [.xfdprog]
      corpus, when one is configured;
    - [GET /ready] — 200 "serving" / 503 "draining" (poll this after
      boot: the port is ephemeral-friendly and there is no sleep-based
      startup protocol);
    - [GET /health] — service-level stats;
    - [/metrics /series /flight /summary] — delegated to {!Xfd_pulse.Pulse}.

    Jobs run through the ordinary [Engine.detect] under their own config,
    so a job's verdict fingerprint is byte-identical to an in-process run
    on the same input.  {!stop}[ ~drain:true] completes every accepted
    job before the listener goes away: an accepted job is never lost. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read back with {!port} *)
  workers : int;
  queue_cap : int;
  quota_rate : float;  (** submissions per second per client; <= 0 disables *)
  quota_burst : int;
  corpus_dir : string option;
  max_body_bytes : int;
  retain : int;  (** finished jobs kept for status queries *)
  sample_interval : float;  (** Tsdb sampling period when we own the Tsdb *)
}

(** 127.0.0.1, ephemeral port, 2 workers, queue 64, quota disabled,
    no corpus, 1 MiB bodies, 4096 retained jobs. *)
val default_config : config

type t

(** Boot the service: worker pool, then listener.  Pass [?tsdb] to serve
    an existing recorder (the CLI's); otherwise one is created, sampled
    at [sample_interval] and stopped with the service.  Raises
    [Invalid_argument] on non-positive workers/queue_cap/retain and
    [Unix.Unix_error] if the bind fails. *)
val start : ?tsdb:Xfd_pulse.Tsdb.t -> config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

(** Stop.  With [~drain:true] (default) /ready flips to 503 first, every
    accepted job runs to completion while the listener stays up for
    status polls, then the listener and workers go away.  With
    [~drain:false] unstarted jobs are marked failed ("cancelled").
    Idempotent. *)
val stop : ?drain:bool -> t -> unit
