(* A persistent worker pool over a bounded job queue.

   N system threads block on one condition variable; [submit] either
   enqueues (when the queue has room and the pool is accepting) or
   reports why not — the caller turns [`Queue_full] into backpressure
   (429) and [`Draining] into 503.  [stop ~drain:true] is the graceful
   path: no new work is accepted, every item already accepted runs to
   completion, workers are joined.  [stop ~drain:false] discards the
   unstarted queue (returned so the caller can mark those jobs
   cancelled) but still lets in-flight items finish — a worker is never
   killed mid-job.

   The runner must not raise; a raising runner would kill its worker
   thread, so exceptions are swallowed here as a last line of defence
   (the serve layer's runner catches and records per-job errors long
   before this). *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  cap : int;
  workers : int;
  runner : 'a -> unit;
  mutable threads : Thread.t list;
  mutable draining : bool;
  mutable stopped : bool;
  mutable running : int;
  mutable completed : int;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* draining and dry: exit *)
    else begin
      let item = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.mu;
      (try t.runner item with _ -> ());
      Mutex.lock t.mu;
      t.running <- t.running - 1;
      t.completed <- t.completed + 1;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let create ~workers ~queue_cap runner =
  if workers <= 0 then invalid_arg "Pool.create: workers must be positive";
  if queue_cap <= 0 then invalid_arg "Pool.create: queue_cap must be positive";
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      cap = queue_cap;
      workers;
      runner;
      threads = [];
      draining = false;
      stopped = false;
      running = 0;
      completed = 0;
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create (worker t) ());
  t

let submit t x =
  Mutex.protect t.mu (fun () ->
      if t.draining then `Draining
      else if Queue.length t.queue >= t.cap then `Queue_full
      else begin
        Queue.push x t.queue;
        Condition.signal t.nonempty;
        `Accepted
      end)

let stats t =
  Mutex.protect t.mu (fun () ->
      (Queue.length t.queue, t.running, t.completed))

let queue_cap t = t.cap
let workers t = t.workers
let draining t = Mutex.protect t.mu (fun () -> t.draining)

let stop ?(drain = true) t =
  let discarded =
    Mutex.protect t.mu (fun () ->
        if t.stopped then []
        else begin
          t.draining <- true;
          let d =
            if drain then []
            else begin
              let d = List.of_seq (Queue.to_seq t.queue) in
              Queue.clear t.queue;
              d
            end
          in
          Condition.broadcast t.nonempty;
          d
        end)
  in
  let threads =
    Mutex.protect t.mu (fun () ->
        if t.stopped then []
        else begin
          t.stopped <- true;
          t.threads
        end)
  in
  List.iter Thread.join threads;
  discarded
