(* The always-on detection service.

   One [Httpd] server (GET/HEAD/POST allowed, bounded bodies) in front of
   a [Pool] of detection workers, a [Quota] of per-client token buckets,
   and a bounded table of [Job] records.  The protocol is deliberately
   small and fully backpressured:

     POST /v1/jobs            submit a spec        -> 202 job.accepted
                              over quota           -> 429 + Retry-After
                              queue full           -> 429 + Retry-After
                              draining             -> 503
                              bad JSON / bad spec  -> 400
     GET  /v1/jobs            list retained jobs
     GET  /v1/jobs/:id        full status (+result once done)
     GET  /v1/jobs/:id/report forensics report JSON (409 until done)
     GET  /v1/corpus          list the served .xfdprog corpus
     GET  /v1/corpus/:name    fetch one corpus program
     GET  /ready              200 "serving" / 503 "draining"
     GET  /health             service-level stats JSON
     GET  /metrics|/series|/flight|/summary   delegated to Pulse

   Every job runs through the ordinary [Engine.detect] under its own
   config, so a job's verdict fingerprint is byte-identical to an
   in-process run on the same input — the service adds transport and
   scheduling, never detection semantics.  [stop ~drain:true] flips
   /ready to 503 first (so load balancers stop sending), completes every
   accepted job, then tears the listener down: an accepted job is never
   lost. *)

module Obs = Xfd_obs.Obs
module Json = Xfd_util.Json
module Httpd = Xfd_pulse.Httpd
module Pulse = Xfd_pulse.Pulse
module Tsdb = Xfd_pulse.Tsdb
module Corpus = Xfd_fuzz.Corpus

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read back with {!port} *)
  workers : int;
  queue_cap : int;
  quota_rate : float;  (** submissions per second per client; <= 0 disables *)
  quota_burst : int;
  corpus_dir : string option;
  max_body_bytes : int;
  retain : int;  (** finished jobs kept for status queries *)
  sample_interval : float;  (** Tsdb sampling period when we own the Tsdb *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    queue_cap = 64;
    quota_rate = 0.0;
    quota_burst = 8;
    corpus_dir = None;
    max_body_bytes = Httpd.default_max_body_bytes;
    retain = 4096;
    sample_interval = 0.5;
  }

(* ---- metrics ---- *)

let c_submitted = Obs.Counter.make "serve.jobs.submitted"
let c_completed = Obs.Counter.make "serve.jobs.completed"
let c_failed = Obs.Counter.make "serve.jobs.failed"
let c_rej_queue_full = Obs.Counter.make "serve.rejected.queue_full"
let c_rej_quota = Obs.Counter.make "serve.rejected.quota"
let c_rej_invalid = Obs.Counter.make "serve.rejected.invalid"
let g_queued = Obs.Gauge.make "serve.jobs.queued"
let g_running = Obs.Gauge.make "serve.jobs.running"

type t = {
  config : config;
  mu : Mutex.t;
  jobs : (string, Job.t) Hashtbl.t;
  order : string Queue.t;  (** submission order, for listing and retention *)
  mutable next_id : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable pool : Job.t Pool.t option;  (** set once, right after creation *)
  mutable httpd : Httpd.t option;
  quota : Quota.t;
  tsdb : Tsdb.t;
  owns_tsdb : bool;
}

let now () = Unix.gettimeofday ()

(* ---- job execution (worker side) ---- *)

let run_job t job =
  Mutex.protect t.mu (fun () ->
      job.Job.state <- Job.Running;
      job.Job.started_at <- Some (now ()));
  let outcome = Job.run job.Job.spec in
  Mutex.protect t.mu (fun () ->
      (match outcome with
      | Ok r ->
        job.Job.result <- Some r;
        job.Job.state <- Job.Done;
        Obs.Counter.incr c_completed
      | Error e ->
        job.Job.error <- Some e;
        job.Job.state <- Job.Failed;
        Obs.Counter.incr c_failed);
      job.Job.finished_at <- Some (now ()))

let set_gauges t =
  match t.pool with
  | None -> ()
  | Some pool ->
    let queued, running, _ = Pool.stats pool in
    Obs.Gauge.set g_queued (float_of_int queued);
    Obs.Gauge.set g_running (float_of_int running)

(* Drop the oldest *finished* jobs once the table exceeds [retain];
   queued and running jobs are never evicted, so a submitted id stays
   queryable at least until it finishes. *)
let trim t =
  let finished id =
    match Hashtbl.find_opt t.jobs id with
    | Some j -> j.Job.state = Job.Done || j.Job.state = Job.Failed
    | None -> true
  in
  let rec go () =
    if Queue.length t.order > t.config.retain && finished (Queue.peek t.order)
    then begin
      Hashtbl.remove t.jobs (Queue.pop t.order);
      go ()
    end
  in
  if not (Queue.is_empty t.order) then go ()

(* ---- responses ---- *)

let json ?(headers = []) status j =
  Httpd.response ~content_type:"application/json" ~headers status (Json.to_string j ^ "\n")

let error_json ?headers status msg =
  json ?headers status (Json.Obj [ ("type", Json.Str "error"); ("error", Json.Str msg) ])

let method_not_allowed allow =
  error_json ~headers:[ ("Allow", allow) ] 405 "method not allowed"

let retry_after seconds =
  [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil seconds)))) ]

(* ---- routes ---- *)

let client_of req =
  match Httpd.header req "x-client" with
  | Some c when c <> "" -> c
  | _ -> (
    match List.assoc_opt "client" req.Httpd.query with
    | Some c when c <> "" -> c
    | _ -> "anon")

let submit t req =
  if Mutex.protect t.mu (fun () -> t.draining) then error_json 503 "draining"
  else
    let client = client_of req in
    match Quota.try_take t.quota ~client ~now:(now ()) with
    | `Retry_after s ->
      Obs.Counter.incr c_rej_quota;
      error_json ~headers:(retry_after s) 429 "client over submission quota"
    | `Ok -> (
      match Json.of_string req.Httpd.body with
      | Error e ->
        Obs.Counter.incr c_rej_invalid;
        error_json 400 (Printf.sprintf "bad JSON: %s" e)
      | Ok body -> (
        match Job.spec_of_json body with
        | Error e ->
          Obs.Counter.incr c_rej_invalid;
          error_json 400 e
        | Ok spec -> (
          let pool = Option.get t.pool in
          let job =
            Mutex.protect t.mu (fun () ->
                t.next_id <- t.next_id + 1;
                Job.make
                  ~id:(Printf.sprintf "j%d" t.next_id)
                  ~client ~spec ~now:(now ()))
          in
          match Pool.submit pool job with
          | `Queue_full ->
            Obs.Counter.incr c_rej_queue_full;
            error_json ~headers:(retry_after 1.0) 429 "job queue full"
          | `Draining -> error_json 503 "draining"
          | `Accepted ->
            Mutex.protect t.mu (fun () ->
                Hashtbl.replace t.jobs job.Job.id job;
                Queue.push job.Job.id t.order;
                trim t);
            Obs.Counter.incr c_submitted;
            set_gauges t;
            json 202
              (Json.Obj
                 [
                   ("type", Json.Str "job.accepted");
                   ("id", Json.Str job.Job.id);
                   ("state", Json.Str (Job.state_to_string job.Job.state));
                   ("status_url", Json.Str ("/v1/jobs/" ^ job.Job.id));
                 ]))))

let job_list t =
  let jobs =
    Mutex.protect t.mu (fun () ->
        Queue.fold
          (fun acc id ->
            match Hashtbl.find_opt t.jobs id with
            | Some j -> Job.summary_json j :: acc
            | None -> acc)
          [] t.order
        |> List.rev)
  in
  json 200 (Json.Obj [ ("type", Json.Str "job.list"); ("jobs", Json.Arr jobs) ])

let job_status t id =
  match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.jobs id) with
  | None -> error_json 404 (Printf.sprintf "unknown job %S" id)
  | Some job -> json 200 (Mutex.protect t.mu (fun () -> Job.status_json job))

let job_report t id =
  match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.jobs id) with
  | None -> error_json 404 (Printf.sprintf "unknown job %S" id)
  | Some job -> (
    match Mutex.protect t.mu (fun () -> (job.Job.state, Job.report_json job)) with
    | _, Some report -> json 200 report
    | Job.Failed, None ->
      error_json 409
        (Printf.sprintf "job %s failed: %s" id
           (Option.value job.Job.error ~default:"unknown error"))
    | _, None -> error_json 409 (Printf.sprintf "job %s is not done yet" id))

let corpus_name_ok name =
  name <> "" && name <> ".." && Filename.extension name = ".xfdprog"
  && not (String.exists (fun c -> c = '/' || c = '\\') name)

let corpus_list t =
  match t.config.corpus_dir with
  | None -> error_json 404 "no corpus configured"
  | Some dir ->
    let files = Corpus.files ~dir |> List.map Filename.basename in
    json 200
      (Json.Obj
         [
           ("type", Json.Str "corpus");
           ("dir", Json.Str dir);
           ("files", Json.Arr (List.map (fun f -> Json.Str f) files));
         ])

let corpus_fetch t name =
  match t.config.corpus_dir with
  | None -> error_json 404 "no corpus configured"
  | Some dir ->
    if not (corpus_name_ok name) then
      error_json 400 (Printf.sprintf "bad corpus name %S (want <name>.xfdprog)" name)
    else
      let path = Filename.concat dir name in
      if not (Sys.file_exists path) then
        error_json 404 (Printf.sprintf "no corpus file %S" name)
      else begin
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        Httpd.text 200 body
      end

let health t =
  let queued, running, completed =
    match t.pool with Some p -> Pool.stats p | None -> (0, 0, 0)
  in
  let draining = Mutex.protect t.mu (fun () -> t.draining) in
  json 200
    (Json.Obj
       [
         ("type", Json.Str "serve.health");
         ("state", Json.Str (if draining then "draining" else "serving"));
         ("workers", Json.Int t.config.workers);
         ("queue_cap", Json.Int t.config.queue_cap);
         ("queued", Json.Int queued);
         ("running", Json.Int running);
         ("completed", Json.Int completed);
         ("retained", Json.Int (Mutex.protect t.mu (fun () -> Hashtbl.length t.jobs)));
         ("quota_clients", Json.Int (Quota.clients t.quota));
       ])

let ready t =
  if Mutex.protect t.mu (fun () -> t.draining) then Httpd.text 503 "draining\n"
  else Httpd.text 200 "serving\n"

let index =
  Httpd.text 200
    (String.concat "\n"
       [
         "xfd detection service";
         "  POST /v1/jobs            submit a detection job";
         "  GET  /v1/jobs            list jobs";
         "  GET  /v1/jobs/:id        job status";
         "  GET  /v1/jobs/:id/report forensics report";
         "  GET  /v1/corpus          list corpus programs";
         "  GET  /v1/corpus/:name    fetch one corpus program";
         "  GET  /ready /health /metrics /series /flight /summary";
         "";
       ])

let handle t (req : Httpd.request) =
  set_gauges t;
  let segments =
    String.split_on_char '/' req.Httpd.path |> List.filter (fun s -> s <> "")
  in
  let get = req.Httpd.meth = "GET" || req.Httpd.meth = "HEAD" in
  match segments with
  | [] -> if get then index else method_not_allowed "GET, HEAD"
  | [ "v1"; "jobs" ] ->
    if req.Httpd.meth = "POST" then submit t req
    else if get then job_list t
    else method_not_allowed "GET, HEAD, POST"
  | [ "v1"; "jobs"; id ] ->
    if get then job_status t id else method_not_allowed "GET, HEAD"
  | [ "v1"; "jobs"; id; "report" ] ->
    if get then job_report t id else method_not_allowed "GET, HEAD"
  | [ "v1"; "corpus" ] ->
    if get then corpus_list t else method_not_allowed "GET, HEAD"
  | [ "v1"; "corpus"; name ] ->
    if get then corpus_fetch t name else method_not_allowed "GET, HEAD"
  | [ "ready" ] -> if get then ready t else method_not_allowed "GET, HEAD"
  | [ "health" ] -> if get then health t else method_not_allowed "GET, HEAD"
  | [ ("metrics" | "series" | "flight" | "summary") ] ->
    if get then Pulse.handler t.tsdb req else method_not_allowed "GET, HEAD"
  | _ -> Httpd.not_found

(* ---- lifecycle ---- *)

let start ?tsdb config =
  if config.workers <= 0 then invalid_arg "Serve.start: workers must be positive";
  if config.queue_cap <= 0 then invalid_arg "Serve.start: queue_cap must be positive";
  if config.retain <= 0 then invalid_arg "Serve.start: retain must be positive";
  let owns_tsdb = tsdb = None in
  let tsdb =
    match tsdb with
    | Some db -> db
    | None ->
      let db = Tsdb.create () in
      Tsdb.start db ~interval:config.sample_interval;
      db
  in
  let t =
    {
      config;
      mu = Mutex.create ();
      jobs = Hashtbl.create 64;
      order = Queue.create ();
      next_id = 0;
      draining = false;
      stopped = false;
      pool = None;
      httpd = None;
      quota = Quota.create ~rate:config.quota_rate ~burst:config.quota_burst;
      tsdb;
      owns_tsdb;
    }
  in
  t.pool <-
    Some (Pool.create ~workers:config.workers ~queue_cap:config.queue_cap (run_job t));
  t.httpd <-
    Some
      (Httpd.start ~host:config.host
         ~allowed_methods:[ "GET"; "HEAD"; "POST" ]
         ~max_body_bytes:config.max_body_bytes ~port:config.port (handle t));
  t

let port t = match t.httpd with Some h -> Httpd.port h | None -> 0

let stop ?(drain = true) t =
  let already = Mutex.protect t.mu (fun () ->
      if t.stopped then true
      else begin
        t.draining <- true;
        false
      end)
  in
  if not already then begin
    (* The listener stays up through the drain so clients can poll their
       jobs to completion; /ready already answers 503. *)
    let discarded = match t.pool with Some p -> Pool.stop ~drain p | None -> [] in
    Mutex.protect t.mu (fun () ->
        List.iter
          (fun (job : Job.t) ->
            job.Job.state <- Job.Failed;
            job.Job.error <- Some "cancelled: server stopped before the job ran";
            job.Job.finished_at <- Some (now ()))
          discarded;
        t.stopped <- true);
    (match t.httpd with Some h -> Httpd.stop h | None -> ());
    if t.owns_tsdb then Tsdb.stop t.tsdb
  end
