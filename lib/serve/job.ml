(* Detection jobs: what a client submits, how it runs, what comes back.

   A job spec is first-order data parsed from the POST /v1/jobs JSON:
   either a named workload from the evaluation set (with init/test sizes
   and an optional seeded-bug patch, exactly the `xfd_cli run` surface)
   or an inline `.xfdprog` fuzz program (the corpus repro format).  Per
   job the client picks the engine (`incremental` — the prefix-sharing
   default — or `fresh`, the from-zero oracle behind `run --oracle`),
   a bounded post_jobs fan-out and whether forensics chains are wanted
   in the report.

   The verdict fingerprint is the service's equivalence contract: a
   digest over everything detection *found* — program name, failure
   points, event counts, per-failure-point verdict keys in replay order
   and the deduplicated bug keys — and nothing nondeterministic (no
   wall-clock, no span tree).  A job's fingerprint is required to be
   byte-identical to [Engine.detect] run in-process on the same input,
   and the incremental/fresh engines are required to agree; both are
   asserted in test/suite_serve.ml and gated in CI. *)

module Json = Xfd_util.Json
module Engine = Xfd.Engine
module Config = Xfd.Config
module Report = Xfd.Report
module Prog = Xfd_fuzz.Prog
module Workload_set = Xfd_experiments.Workload_set

(* ---- seeded-bug patch specs ("skip-tx-add=0,2;dup-flush=1") ---- *)

let faults_of_spec spec =
  let parse_is s =
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some i when i >= 0 -> go (i :: acc) rest
        | _ -> Error (Printf.sprintf "bad occurrence list %S (want i,j,...)" s))
    in
    go [] parts
  in
  let parts = String.split_on_char ';' spec |> List.filter (fun s -> s <> "") in
  let skip_flush = ref [] and skip_fence = ref [] and skip_tx_add = ref [] in
  let dup_flush = ref [] and dup_tx_add = ref [] in
  let rec go = function
    | [] ->
      Ok
        (Xfd_sim.Faults.make ~skip_flush:!skip_flush ~skip_fence:!skip_fence
           ~skip_tx_add:!skip_tx_add ~dup_flush:!dup_flush ~dup_tx_add:!dup_tx_add ())
    | part :: rest -> (
      match String.split_on_char '=' part with
      | [ key; is ] -> (
        match parse_is is with
        | Error e -> Error e
        | Ok is -> (
          match key with
          | "skip-flush" -> skip_flush := is; go rest
          | "skip-fence" -> skip_fence := is; go rest
          | "skip-tx-add" -> skip_tx_add := is; go rest
          | "dup-flush" -> dup_flush := is; go rest
          | "dup-tx-add" -> dup_tx_add := is; go rest
          | _ -> Error (Printf.sprintf "unknown patch kind %S" key)))
      | _ -> Error (Printf.sprintf "bad patch component %S (want kind=i,j,...)" part))
  in
  go parts

(* ---- specs ---- *)

type kind =
  | Workload of { workload : string; init : int; test : int; patch : string option }
  | Xfdprog of { text : string; prog : Prog.t; expects : string list }

type spec = {
  kind : kind;
  engine : [ `Incremental | `Fresh ];
  post_jobs : int;
  forensics : bool;
}

let engine_to_string = function `Incremental -> "incremental" | `Fresh -> "fresh"

let label spec =
  match spec.kind with
  | Workload w -> "workload:" ^ w.workload
  | Xfdprog _ -> "xfdprog"

(* The per-job workload sizes and fan-out are bounded so one submission
   cannot monopolise a worker forever: this is a shared service, and the
   paper-scale workloads stay far below these. *)
let max_size = 1000
let max_post_jobs = 8

let spec_of_json j =
  let str key =
    match Json.member key j with
    | Some (Json.Str s) -> Ok (Some s)
    | None -> Ok None
    | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
  in
  let int_default key default lo hi =
    match Json.member key j with
    | None -> Ok default
    | Some (Json.Int n) when n >= lo && n <= hi -> Ok n
    | Some (Json.Int n) ->
      Error (Printf.sprintf "field %S out of range (%d not in [%d,%d])" key n lo hi)
    | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
  in
  let bool_default key default =
    match Json.member key j with
    | None -> Ok default
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)
  in
  let ( let* ) = Result.bind in
  let* engine =
    match Json.member "engine" j with
    | None -> Ok `Incremental
    | Some (Json.Str "incremental") -> Ok `Incremental
    | Some (Json.Str "fresh") -> Ok `Fresh
    | Some _ -> Error "field \"engine\" must be \"incremental\" or \"fresh\""
  in
  let* post_jobs = int_default "post_jobs" 1 1 max_post_jobs in
  let* forensics = bool_default "forensics" false in
  let* kind_s = str "kind" in
  let* kind =
    match kind_s with
    | Some "workload" | None -> (
      let* workload = str "workload" in
      match workload with
      | None -> Error "workload jobs need a \"workload\" field"
      | Some name -> (
        match Workload_set.find name with
        | exception Invalid_argument _ -> Error (Printf.sprintf "unknown workload %S" name)
        | _entry ->
          let* init = int_default "init" 0 0 max_size in
          let* test = int_default "test" 1 0 max_size in
          let* patch = str "patch" in
          let* () =
            match patch with
            | None -> Ok ()
            | Some p -> ( match faults_of_spec p with Ok _ -> Ok () | Error e -> Error e)
          in
          Ok (Workload { workload = name; init; test; patch })))
    | Some "xfdprog" -> (
      let* text = str "program" in
      match text with
      | None -> Error "xfdprog jobs need a \"program\" field"
      | Some text -> (
        match Prog.of_lines (String.split_on_char '\n' text) with
        | Error e -> Error (Printf.sprintf "bad xfdprog: %s" e)
        | Ok (prog, expects) -> Ok (Xfdprog { text; prog; expects })))
    | Some other -> Error (Printf.sprintf "unknown job kind %S" other)
  in
  Ok { kind; engine; post_jobs; forensics }

let spec_to_json spec =
  let common =
    [
      ("engine", Json.Str (engine_to_string spec.engine));
      ("post_jobs", Json.Int spec.post_jobs);
      ("forensics", Json.Bool spec.forensics);
    ]
  in
  match spec.kind with
  | Workload w ->
    Json.Obj
      ([
         ("kind", Json.Str "workload");
         ("workload", Json.Str w.workload);
         ("init", Json.Int w.init);
         ("test", Json.Int w.test);
       ]
      @ (match w.patch with None -> [] | Some p -> [ ("patch", Json.Str p) ])
      @ common)
  | Xfdprog p ->
    Json.Obj
      ([ ("kind", Json.Str "xfdprog"); ("program_bytes", Json.Int (String.length p.text)) ]
      @ common)

(* ---- the verdict fingerprint ---- *)

let fingerprint_text (o : Engine.outcome) =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "program %s\n" o.Engine.program);
  Buffer.add_string b (Printf.sprintf "failure_points %d\n" o.Engine.failure_points);
  Buffer.add_string b (Printf.sprintf "pre_events %d\n" o.Engine.pre_events);
  Buffer.add_string b (Printf.sprintf "post_events %d\n" o.Engine.post_events);
  List.iter
    (fun (r : Report.failure_report) ->
      Buffer.add_string b
        (Printf.sprintf "report %d %d [%s]\n" r.Report.failure_point r.Report.trace_pos
           (String.concat "; " (List.map Report.dedup_key r.Report.bugs))))
    o.Engine.reports;
  Buffer.add_string b
    (Printf.sprintf "unique [%s]\n"
       (String.concat "; "
          (List.sort_uniq String.compare (List.map Report.dedup_key o.Engine.unique_bugs))));
  Buffer.contents b

let fingerprint o = "xfp1-" ^ Digest.to_hex (Digest.string (fingerprint_text o))

(* ---- execution ---- *)

type outcome_summary = {
  fingerprint : string;
  failure_points : int;
  pre_events : int;
  post_events : int;
  bug_keys : string list;  (** sorted unique dedup keys *)
  races : int;
  semantic : int;
  perf : int;
  errors : int;
  expect_match : bool option;
      (** for xfdprog jobs carrying [expect] lines: did the verdict keys
          match the recorded ones? *)
  report : Json.t;  (** the full outcome JSON, served by /v1/jobs/:id/report *)
}

let config_of spec faults =
  {
    Config.default with
    Config.faults;
    engine = spec.engine;
    post_jobs = spec.post_jobs;
    forensics = spec.forensics;
  }

let outcome_of spec =
  match spec.kind with
  | Workload w ->
    let entry = Workload_set.find w.workload in
    let faults =
      match w.patch with
      | None -> Xfd_sim.Faults.none
      | Some p -> (
        match faults_of_spec p with Ok f -> f | Error e -> invalid_arg e)
    in
    Engine.detect ~config:(config_of spec faults)
      (entry.Workload_set.make ~init:w.init ~test:w.test)
  | Xfdprog p ->
    Engine.detect ~config:(config_of spec Xfd_sim.Faults.none) (Prog.to_program p.prog)

let summarize spec (o : Engine.outcome) =
  let races, semantic, perf, errors = Engine.tally o in
  let bug_keys =
    List.sort_uniq String.compare (List.map Report.dedup_key o.Engine.unique_bugs)
  in
  let expect_match =
    match spec.kind with
    | Xfdprog { expects = _ :: _ as expects; _ } ->
      Some (List.sort_uniq String.compare expects = bug_keys)
    | _ -> None
  in
  {
    fingerprint = fingerprint o;
    failure_points = o.Engine.failure_points;
    pre_events = o.Engine.pre_events;
    post_events = o.Engine.post_events;
    bug_keys;
    races;
    semantic;
    perf;
    errors;
    expect_match;
    report = Engine.outcome_to_json o;
  }

(* A worker must survive anything a job does, including the fatal
   harness conditions the engine deliberately re-raises (its cleanup
   registry has already released every device and shadow page by the
   time they escape detect). *)
let run spec =
  match outcome_of spec with
  | o -> Ok (summarize spec o)
  | exception e -> Error (Printexc.to_string e)

(* ---- job records ---- *)

type state = Queued | Running | Done | Failed

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"

type t = {
  id : string;
  client : string;
  spec : spec;
  submitted_at : float;
  mutable state : state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable result : outcome_summary option;
  mutable error : string option;
}

let make ~id ~client ~spec ~now =
  {
    id;
    client;
    spec;
    submitted_at = now;
    state = Queued;
    started_at = None;
    finished_at = None;
    result = None;
    error = None;
  }

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let summary_json t =
  Json.Obj
    [
      ("id", Json.Str t.id);
      ("label", Json.Str (label t.spec));
      ("engine", Json.Str (engine_to_string t.spec.engine));
      ("client", Json.Str t.client);
      ("state", Json.Str (state_to_string t.state));
      ( "fingerprint",
        match t.result with
        | Some r -> Json.Str r.fingerprint
        | None -> Json.Null );
    ]

let result_json r =
  Json.Obj
    [
      ("fingerprint", Json.Str r.fingerprint);
      ("failure_points", Json.Int r.failure_points);
      ("pre_events", Json.Int r.pre_events);
      ("post_events", Json.Int r.post_events);
      ("unique_bugs", Json.Arr (List.map (fun k -> Json.Str k) r.bug_keys));
      ( "tally",
        Json.Obj
          [
            ("races", Json.Int r.races);
            ("semantic", Json.Int r.semantic);
            ("perf", Json.Int r.perf);
            ("errors", Json.Int r.errors);
          ] );
      ( "expect_match",
        match r.expect_match with None -> Json.Null | Some b -> Json.Bool b );
    ]

let status_json t =
  Json.Obj
    ([
       ("type", Json.Str "job");
       ("id", Json.Str t.id);
       ("client", Json.Str t.client);
       ("state", Json.Str (state_to_string t.state));
       ("spec", spec_to_json t.spec);
       ("submitted_at", Json.Float t.submitted_at);
       ("started_at", opt_float t.started_at);
       ("finished_at", opt_float t.finished_at);
     ]
    @ (match t.result with Some r -> [ ("result", result_json r) ] | None -> [])
    @ match t.error with Some e -> [ ("error", Json.Str e) ] | None -> [])

let report_json t =
  match t.result with
  | None -> None
  | Some r ->
    Some
      (Json.Obj
         [
           ("type", Json.Str "xfd_report");
           ("schema_version", Json.Int 1);
           ( "job",
             Json.Obj
               [
                 ("id", Json.Str t.id);
                 ("client", Json.Str t.client);
                 ("label", Json.Str (label t.spec));
                 ("engine", Json.Str (engine_to_string t.spec.engine));
                 ("fingerprint", Json.Str r.fingerprint);
               ] );
           ("report", r.report);
         ])
