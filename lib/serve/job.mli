(** Detection jobs: the unit of work behind [POST /v1/jobs].

    A {!spec} is parsed from the submission JSON (a named evaluation
    workload with sizes and an optional seeded-bug patch, or an inline
    [.xfdprog] program), {!run} executes it through {!Xfd.Engine.detect}
    under the requested engine, and {!fingerprint} digests everything
    detection found into the service's verdict-equivalence token: a job's
    fingerprint must be byte-identical to an in-process run on the same
    input, whichever engine was used. *)

module Json = Xfd_util.Json

(** Parse a seeded-bug patch spec ("skip-tx-add=0,2;dup-flush=1") into a
    fault plan.  This is the service- and CLI-shared parser; [xfd_cli
    run --patch] delegates here. *)
val faults_of_spec : string -> (Xfd_sim.Faults.t, string) result

type kind =
  | Workload of { workload : string; init : int; test : int; patch : string option }
  | Xfdprog of { text : string; prog : Xfd_fuzz.Prog.t; expects : string list }

type spec = {
  kind : kind;
  engine : [ `Incremental | `Fresh ];
  post_jobs : int;
  forensics : bool;
}

val engine_to_string : [ `Incremental | `Fresh ] -> string

(** Short human label ("workload:btree" / "xfdprog"). *)
val label : spec -> string

(** Parse and validate a submission body.  Unknown workloads, malformed
    patches, out-of-range sizes and invalid [.xfdprog] text are all
    rejected here, before a job is accepted. *)
val spec_of_json : Json.t -> (spec, string) result

val spec_to_json : spec -> Json.t

(** The canonical text the fingerprint digests: program name, failure
    points, event counts, per-failure-point verdict keys in replay order
    and the sorted unique bug keys — nothing nondeterministic. *)
val fingerprint_text : Xfd.Engine.outcome -> string

(** ["xfp1-" ^ hex digest] of {!fingerprint_text}. *)
val fingerprint : Xfd.Engine.outcome -> string

type outcome_summary = {
  fingerprint : string;
  failure_points : int;
  pre_events : int;
  post_events : int;
  bug_keys : string list;  (** sorted unique dedup keys *)
  races : int;
  semantic : int;
  perf : int;
  errors : int;
  expect_match : bool option;
      (** for xfdprog jobs carrying [expect] lines: did the verdict keys
          match the recorded ones? *)
  report : Json.t;  (** full outcome JSON, served by /v1/jobs/:id/report *)
}

(** Run one spec to completion.  Never raises: every exception a job
    throws (including the engine's deliberately fatal ones, which have
    already released their PM resources) is returned as [Error]. *)
val run : spec -> (outcome_summary, string) result

type state = Queued | Running | Done | Failed

val state_to_string : state -> string

type t = {
  id : string;
  client : string;
  spec : spec;
  submitted_at : float;
  mutable state : state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable result : outcome_summary option;
  mutable error : string option;
}

val make : id:string -> client:string -> spec:spec -> now:float -> t

(** One-line entry for [GET /v1/jobs]. *)
val summary_json : t -> Json.t

(** Full status for [GET /v1/jobs/:id]. *)
val status_json : t -> Json.t

(** Forensics report for [GET /v1/jobs/:id/report]; [None] until the
    job is [Done]. *)
val report_json : t -> Json.t option
