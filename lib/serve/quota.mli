(** Per-client token-bucket submission quotas.

    Each client key owns a bucket of [burst] tokens refilled at [rate]
    tokens per second; a submission takes one.  Time is an explicit
    argument ({!try_take} [~now]) so behaviour is deterministic under
    test.  A non-positive [rate] disables the quota. *)

type t

val create : rate:float -> burst:int -> t

(** Whether the quota is active ([rate > 0]). *)
val enabled : t -> bool

(** Take one token for [client] at time [now] (seconds, any monotone
    base).  [`Retry_after s] says the next token is [s] seconds away —
    the serve layer turns it into a 429 with a [Retry-After] header. *)
val try_take : t -> client:string -> now:float -> [ `Ok | `Retry_after of float ]

(** Number of distinct clients seen (for /health). *)
val clients : t -> int
