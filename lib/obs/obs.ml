module Json = Xfd_util.Json

let now () = Unix.gettimeofday ()

(* ---- global switch ---- *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

(* ---- metric registry ----

   One global table, name -> metric.  Registration happens at module
   initialisation of the instrumented libraries; updates happen from the
   main domain and from the engine's post-execution worker domains, so
   all metric state is Atomic and the registry itself is mutex-protected. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

let hist_buckets = 63

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array; (* bucket i >= 1: samples in [2^(i-1), 2^i - 1] *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let register name build probe =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> begin
        match probe m with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Obs: %S already registered as another metric kind" name)
      end
      | None ->
        let v = build () in
        v)

module Counter = struct
  type t = counter

  let make name =
    register name
      (fun () ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.replace registry name (C c);
        c)
      (function C c -> Some c | G _ | H _ -> None)

  let name t = t.c_name
  let add t n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add t.c_value n)
  let incr t = add t 1
  let value t = Atomic.get t.c_value
end

module Gauge = struct
  type t = gauge

  let make name =
    register name
      (fun () ->
        let g = { g_name = name; g_value = Atomic.make 0.0 } in
        Hashtbl.replace registry name (G g);
        g)
      (function G g -> Some g | C _ | H _ -> None)

  let name t = t.g_name
  let set t v = if Atomic.get enabled_flag then Atomic.set t.g_value v
  let value t = Atomic.get t.g_value
end

module Histogram = struct
  type t = histogram

  let make name =
    register name
      (fun () ->
        let h =
          {
            h_name = name;
            h_counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
          }
        in
        Hashtbl.replace registry name (H h);
        h)
      (function H h -> Some h | C _ | G _ -> None)

  let name t = t.h_name

  (* Bucket index = bit width of the sample: 0 -> 0, 1 -> 1, 2..3 -> 2, ... *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      min (hist_buckets - 1) (bits 0 v)
    end

  let rec store_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

  (* Negative samples are rejected whole rather than partially recorded:
     buckets have no negative range and a clamped sum would skew every
     summary, so the sample is dropped and the drop is counted. *)
  let observe_dropped = Counter.make "obs.observe_dropped"

  let observe t v =
    if Atomic.get enabled_flag then begin
      if v < 0 then Counter.incr observe_dropped
      else begin
        ignore (Atomic.fetch_and_add t.h_counts.(bucket_of v) 1);
        ignore (Atomic.fetch_and_add t.h_count 1);
        ignore (Atomic.fetch_and_add t.h_sum v);
        store_max t.h_max v
      end
    end

  let count t = Atomic.get t.h_count
  let sum t = Atomic.get t.h_sum
  let max_value t = Atomic.get t.h_max

  let upper_bound i = if i = 0 then 0 else (1 lsl i) - 1
  let lower_bound i = if i = 0 then 0 else 1 lsl (i - 1)

  (* Quantile estimate from the log-scale buckets: find the bucket holding
     the target rank and interpolate linearly inside its value range.  The
     result is clamped to the observed maximum, so a quantile can never
     exceed any real sample.  Under concurrent observes the per-bucket
     reads are not one atomic snapshot — the estimate may mix in a sample
     or two from a racing writer, which is within the resolution the
     buckets already give up. *)
  let quantile t q =
    let n = Atomic.get t.h_count in
    if n = 0 then 0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
      let rec go i cum =
        if i >= hist_buckets then Atomic.get t.h_max
        else begin
          let c = Atomic.get t.h_counts.(i) in
          if c > 0 && cum + c >= rank then begin
            let lo = lower_bound i and hi = upper_bound i in
            let frac = float_of_int (rank - cum) /. float_of_int c in
            let est = float_of_int lo +. (frac *. float_of_int (hi - lo)) in
            min (Atomic.get t.h_max) (int_of_float (Float.round est))
          end
          else go (i + 1) (cum + c)
        end
      in
      go 0 0
    end

  let default_quantiles = [ 0.50; 0.95; 0.99 ]
  let quantiles t = List.map (fun q -> (q, quantile t q)) default_quantiles

  let buckets t =
    let acc = ref [] in
    for i = hist_buckets - 1 downto 0 do
      let n = Atomic.get t.h_counts.(i) in
      if n > 0 then acc := (upper_bound i, n) :: !acc
    done;
    !acc
end

let find_metric name = with_lock registry_mutex (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find_metric name with Some (C c) -> Some (Counter.value c) | _ -> None

let gauge_value name =
  match find_metric name with Some (G g) -> Some (Gauge.value g) | _ -> None

(* ---- sinks ---- *)

module Sink = struct
  type t = { id : int; write : Json.t -> unit; close : unit -> unit }

  let next_id = Atomic.make 0

  let to_channel oc =
    {
      id = Atomic.fetch_and_add next_id 1;
      write =
        (fun j ->
          output_string oc (Json.to_string j);
          output_char oc '\n');
      close = (fun () -> flush oc);
    }

  let to_file path =
    let oc = open_out path in
    {
      id = Atomic.fetch_and_add next_id 1;
      write =
        (fun j ->
          output_string oc (Json.to_string j);
          output_char oc '\n');
      close = (fun () -> close_out oc);
    }

  (* A sink around arbitrary callbacks — e.g. an in-memory collector.
     [write] calls are serialized by the dispatch lock in [emit]. *)
  let of_fn ~write ~close = { id = Atomic.fetch_and_add next_id 1; write; close }

  let sinks : t list ref = ref []
  let sinks_mutex = Mutex.create ()
  let any_active = Atomic.make false

  let install t =
    with_lock sinks_mutex (fun () ->
        sinks := t :: !sinks;
        Atomic.set any_active true)

  let uninstall t =
    with_lock sinks_mutex (fun () ->
        sinks := List.filter (fun s -> s.id <> t.id) !sinks;
        Atomic.set any_active (!sinks <> []));
    t.close ()

  let active () = Atomic.get any_active

  let emit j =
    if Atomic.get any_active then
      with_lock sinks_mutex (fun () -> List.iter (fun s -> s.write j) !sinks)
end

(* ---- spans ---- *)

module Span = struct
  type record = {
    id : int;
    parent : int option;
    name : string;
    tid : int; (* integer id of the domain the span ran on *)
    start : float;
    dur : float;
    meta : (string * Json.t) list;
  }

  let next_id = Atomic.make 0

  (* Finished spans live in a bounded ring with a monotone completion index,
     so callers can collect exactly the spans finished inside a region.  The
     bound matters: long fuzz sweeps finish millions of spans that nobody
     may ever drain, so beyond [capacity] the oldest records are dropped
     (and counted) instead of retained. *)
  let default_capacity = 65_536
  let spans_dropped = Counter.make "obs.spans_dropped"

  let buf : record option array ref = ref (Array.make default_capacity None)
  let head = ref 0 (* next write position; live records end just before it *)
  let len = ref 0 (* live records in the ring, at [head - len, head) *)
  let finished_count = ref 0 (* logical completion cursor, never bounded *)
  let agg : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32
  let span_mutex = Mutex.create ()

  let capacity () = with_lock span_mutex (fun () -> Array.length !buf)

  let set_capacity n =
    if n <= 0 then invalid_arg "Obs.Span.set_capacity: capacity must be positive";
    with_lock span_mutex (fun () ->
        let old = !buf in
        let old_cap = Array.length old in
        let keep = min !len n in
        let dropped = !len - keep in
        let fresh = Array.make n None in
        for i = 0 to keep - 1 do
          fresh.(i) <- old.((!head - keep + i + (2 * old_cap)) mod old_cap)
        done;
        buf := fresh;
        head := keep mod n;
        len := keep;
        if dropped > 0 then Counter.add spans_dropped dropped)

  (* Per-domain stack of open span ids, for parent linkage. *)
  let stack_key = Domain.DLS.new_key (fun () -> ref [])

  let record_to_json r =
    Json.Obj
      ([
         ("type", Json.Str "span");
         ("id", Json.Int r.id);
         ("parent", match r.parent with Some p -> Json.Int p | None -> Json.Null);
         ("name", Json.Str r.name);
         ("tid", Json.Int r.tid);
         ("start_s", Json.Float r.start);
         ("dur_s", Json.Float r.dur);
       ]
      @ match r.meta with [] -> [] | m -> [ ("meta", Json.Obj m) ])

  let finish r =
    with_lock span_mutex (fun () ->
        let cap = Array.length !buf in
        if !len = cap then Counter.incr spans_dropped (* oldest is overwritten *)
        else incr len;
        !buf.(!head) <- Some r;
        head := (!head + 1) mod cap;
        incr finished_count;
        let c, s =
          match Hashtbl.find_opt agg r.name with
          | Some cs -> cs
          | None ->
            let cs = (ref 0, ref 0.0) in
            Hashtbl.replace agg r.name cs;
            cs
        in
        incr c;
        s := !s +. r.dur);
    Sink.emit (record_to_json r)

  let with_ ?(meta = []) ~name f =
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := id :: !stack;
    let tid = (Domain.self () :> int) in
    let start = now () in
    let exit () =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      finish { id; parent; name; tid; start; dur = now () -. start; meta }
    in
    match f () with
    | v ->
      exit ();
      v
    | exception e ->
      exit ();
      raise e

  type mark = int

  let mark () = with_lock span_mutex (fun () -> !finished_count)
  let genesis = 0

  let records_since m =
    with_lock span_mutex (fun () ->
        let cap = Array.length !buf in
        let n = max 0 (!finished_count - m) in
        (* Records older than the ring's reach were dropped at finish time;
           the caller gets whatever the bound retained. *)
        let k = min n !len in
        let acc = ref [] in
        for i = 1 to k do
          match !buf.((!head - i + (2 * cap)) mod cap) with
          | Some r -> acc := r :: !acc
          | None -> assert false
        done;
        head := (!head - k + cap) mod cap;
        len := !len - k;
        if !finished_count > m then finished_count := m;
        !acc)

  (* The drain API under its export name: collect (and consume) every span
     finished since [mark]. *)
  let drain_spans = records_since

  let aggregate records =
    let t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let c, s =
          match Hashtbl.find_opt t r.name with
          | Some cs -> cs
          | None ->
            let cs = (ref 0, ref 0.0) in
            Hashtbl.replace t r.name cs;
            cs
        in
        incr c;
        s := !s +. r.dur)
      records;
    Hashtbl.fold (fun name (c, s) acc -> (name, (!c, !s)) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let aggregate_all () =
    with_lock span_mutex (fun () ->
        Hashtbl.fold (fun name (c, s) acc -> (name, (!c, !s)) :: acc) agg [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset () =
    with_lock span_mutex (fun () ->
        Array.fill !buf 0 (Array.length !buf) None;
        head := 0;
        len := 0;
        finished_count := 0;
        Hashtbl.reset agg)
end

let reset () =
  with_lock registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.c_value 0
          | G g -> Atomic.set g.g_value 0.0
          | H h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0;
            Atomic.set h.h_max 0)
        registry);
  Span.reset ()

(* ---- summaries ---- *)

let metrics_snapshot () =
  let items =
    with_lock registry_mutex (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.fold_left
    (fun (cs, gs, hs) (name, m) ->
      match m with
      | C c -> ((name, Counter.value c) :: cs, gs, hs)
      | G g -> (cs, (name, Gauge.value g) :: gs, hs)
      | H h -> (cs, gs, (name, h) :: hs))
    ([], [], []) (List.rev items)
  |> fun (cs, gs, hs) -> (List.rev cs, List.rev gs, List.rev hs)

let summary_json () =
  let counters, gauges, hists = metrics_snapshot () in
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int (Histogram.count h));
        ("sum", Json.Int (Histogram.sum h));
        ("max", Json.Int (Histogram.max_value h));
        ("p50", Json.Int (Histogram.quantile h 0.50));
        ("p95", Json.Int (Histogram.quantile h 0.95));
        ("p99", Json.Int (Histogram.quantile h 0.99));
        ( "buckets",
          Json.Arr
            (List.map
               (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int n) ])
               (Histogram.buckets h)) );
      ]
  in
  Json.Obj
    [
      ("type", Json.Str "summary");
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) hists));
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, (count, total)) ->
               (name, Json.Obj [ ("count", Json.Int count); ("total_s", Json.Float total) ]))
             (Span.aggregate_all ())) );
    ]

let write_summary () = Sink.emit (summary_json ())

let pp_summary ppf () =
  let counters, gauges, hists = metrics_snapshot () in
  let nonzero_counters = List.filter (fun (_, v) -> v <> 0) counters in
  Format.fprintf ppf "== telemetry ==@.";
  List.iter (fun (n, v) -> Format.fprintf ppf "  %-34s %d@." n v) nonzero_counters;
  List.iter
    (fun (n, v) -> if v <> 0.0 then Format.fprintf ppf "  %-34s %g@." n v)
    gauges;
  List.iter
    (fun (n, h) ->
      if Histogram.count h > 0 then begin
        Format.fprintf ppf "  %-34s count=%d sum=%d max=%d p50=%d p95=%d p99=%d@." n
          (Histogram.count h) (Histogram.sum h) (Histogram.max_value h)
          (Histogram.quantile h 0.50) (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99);
        List.iter
          (fun (le, c) -> Format.fprintf ppf "    le %-10d %d@." le c)
          (Histogram.buckets h)
      end)
    hists;
  match Span.aggregate_all () with
  | [] -> ()
  | spans ->
    Format.fprintf ppf "  spans:@.";
    List.iter
      (fun (name, (count, total)) ->
        Format.fprintf ppf "    %-32s n=%-6d %.6f s@." name count total)
      spans
