(** Observability for the detection pipeline: metrics, spans and sinks.

    The paper's evaluation (Figures 12-13) is entirely about where the
    detector spends its time and events — pre- vs post-failure execution,
    replay, snapshotting.  This module gives every layer of the
    reproduction a process-global place to record that:

    - {b metrics} — named monotonic {!Counter}s, {!Gauge}s and log-scale
      {!Histogram}s, registered once by name and safe to update from any
      domain (the engine runs post-failure executions on a domain pool);
    - {b spans} — nestable timed spans ({!Span.with_}) whose per-phase
      aggregation reproduces the Figure 12 wall-clock breakdown, replacing
      the engine's historical hand-rolled timing accumulation;
    - {b sinks} — JSONL streams ({!Sink}) that receive one record per
      finished span plus an end-of-run summary record.

    Metric updates honour a global enabled flag ({!set_enabled}): when
    disabled, every update is a load-and-branch no-op, so instrumented hot
    paths cost almost nothing.  Spans always measure time (two clock reads
    per span) because the engine derives its [timings] struct from them,
    but they are only streamed to sinks when a sink is installed. *)

(** {1 Global switch} *)

(** Whether metric updates are recorded (default: [true]). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Zero every registered counter, gauge and histogram; drop finished
    spans and span aggregates.  Registered metric handles stay valid. *)
val reset : unit -> unit

(** {1 Metrics}

    [make name] registers a metric under [name] the first time it is
    called and returns the same instance on every later call, so modules
    can declare their metrics at toplevel.  Registering the same name as
    two different metric kinds raises [Invalid_argument].  Names are
    dotted paths, e.g. ["pm.flushes"] or ["bugs.race"]. *)

module Counter : sig
  type t

  val make : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val value : t -> float
end

(** Log-scale (base-2) histograms of non-negative integer samples: bucket
    0 holds samples [= 0], bucket [i >= 1] holds samples in
    [[2^(i-1), 2^i - 1]].  Negative samples are rejected whole — nothing
    is recorded, and the drop is counted in the ["obs.observe_dropped"]
    counter — so [count]/[sum]/[max]/buckets always describe the same
    sample set. *)
module Histogram : sig
  type t

  val make : string -> t
  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val max_value : t -> int

  (** [quantile t q] estimates the [q]-quantile ([q] clamped to [0,1]) by
      finding the bucket holding the target rank and interpolating
      linearly inside its value range, clamped to {!max_value} so the
      estimate never exceeds a real sample.  Empty histograms estimate 0.
      Resolution is the bucket width (a factor of 2), which is exactly
      the precision the log-scale buckets retain. *)
  val quantile : t -> float -> int

  (** [(q, quantile t q)] for the conventional p50/p95/p99. *)
  val quantiles : t -> (float * int) list

  (** Non-empty buckets as [(inclusive upper bound, count)], ascending. *)
  val buckets : t -> (int * int) list
end

(** Look up a registered metric's current value by name — handy for tests
    and CLI summaries that do not hold the handle. *)
val counter_value : string -> int option

val gauge_value : string -> float option

(** Every registered metric, sorted by name within each kind:
    [(counters, gauges, histograms)].  Counter and gauge values are read
    at call time; histogram handles are live (read them promptly).  This
    is the feed for pollers — the pulse layer's time-series sampler and
    OpenMetrics encoder. *)
val metrics_snapshot :
  unit -> (string * int) list * (string * float) list * (string * Histogram.t) list

(** {1 Spans} *)

module Span : sig
  (** A finished span.  [start] is an absolute Unix timestamp in seconds,
      [dur] the wall-clock duration.  [parent] is the id of the enclosing
      span on the same domain, if any: spans started on worker domains of
      the engine's post-execution pool are roots of their own subtree.
      [tid] is the integer id of the domain the span ran on — the track
      key for trace export, one track per domain-pool worker. *)
  type record = {
    id : int;
    parent : int option;
    name : string;
    tid : int;
    start : float;
    dur : float;
    meta : (string * Xfd_util.Json.t) list;
  }

  (** [with_ ~name f] times [f ()] as a span named [name].  Nesting is
      tracked per domain; the span is recorded (and streamed to any
      installed sink) when [f] returns or raises. *)
  val with_ : ?meta:(string * Xfd_util.Json.t) list -> name:string -> (unit -> 'a) -> 'a

  (** A position in the finished-span buffer, for scoped collection. *)
  type mark

  val mark : unit -> mark

  (** A mark preceding every span: draining from it empties the buffer. *)
  val genesis : mark

  (** All spans finished since [mark] that the bounded buffer retained, in
      completion order, removed from the buffer (spans finished before the
      mark are untouched).  The engine uses this to attach exactly its own
      span tree to an outcome while keeping the process-global buffer
      bounded. *)
  val records_since : mark -> record list

  (** Alias of {!records_since}: drain the spans finished since [mark]. *)
  val drain_spans : mark -> record list

  (** The finished-span buffer is a bounded ring (default 65536 records):
      beyond the capacity the oldest records are dropped and counted in
      the ["obs.spans_dropped"] counter, so unbounded span production
      (long fuzz sweeps) cannot leak memory.  [set_capacity] reallocates
      the ring, keeping the newest records. *)
  val capacity : unit -> int

  val set_capacity : int -> unit

  (** Aggregate a span list by name: [(name, (count, total seconds))]. *)
  val aggregate : record list -> (string * (int * float)) list

  (** Process-lifetime aggregate over every finished span (survives
      {!records_since} truncation), sorted by name. *)
  val aggregate_all : unit -> (string * (int * float)) list

  val record_to_json : record -> Xfd_util.Json.t
end

(** {1 Sinks} *)

module Sink : sig
  type t

  (** A sink writing one compact JSON value per line to a channel.  The
      channel is flushed, not closed, on {!uninstall}. *)
  val to_channel : out_channel -> t

  (** Like {!to_channel} for a freshly created file; {!uninstall} closes
      it. *)
  val to_file : string -> t

  (** A sink around arbitrary callbacks — e.g. an in-memory collector.
      [write] calls are serialized by the dispatch lock. *)
  val of_fn : write:(Xfd_util.Json.t -> unit) -> close:(unit -> unit) -> t

  (** Install globally.  Multiple sinks receive every record. *)
  val install : t -> unit

  (** Remove (and flush/close) one sink; unknown sinks are ignored. *)
  val uninstall : t -> unit

  (** Send one record to every installed sink. *)
  val emit : Xfd_util.Json.t -> unit

  (** Is at least one sink installed? *)
  val active : unit -> bool
end

(** {1 Summaries} *)

(** One record describing the current state of every registered metric
    plus the process-lifetime span aggregates:
    [{"type":"summary","counters":{..},"gauges":{..},
      "histograms":{name:{"count","sum","max","p50","p95","p99",
                          "buckets":[{"le","count"}..]}},
      "spans":{name:{"count","total_s"}}}]. *)
val summary_json : unit -> Xfd_util.Json.t

(** Emit {!summary_json} to the installed sinks. *)
val write_summary : unit -> unit

(** Human-readable dump of the same data (non-zero metrics only). *)
val pp_summary : Format.formatter -> unit -> unit
