(* Functional tests for the PMDK clone: pool, allocator, transactions. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Pool = Xfd_pmdk.Pool
module Alloc = Xfd_pmdk.Alloc
module Tx = Xfd_pmdk.Tx
module Layout = Xfd_pmdk.Layout
module Pmem = Xfd_pmdk.Pmem

let l = Tu.loc __POS__

let with_pool f =
  let _, _, ctx = Tu.make_ctx () in
  let pool = Pool.create_atomic ctx ~loc:l () in
  f ctx pool

let pool_tests =
  [
    Tu.case "create then open round trip" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let p = Pool.create_atomic ctx ~loc:l () in
        let q = Pool.open_pool ctx ~loc:l () in
        Alcotest.(check int) "root" (Pool.root p) (Pool.root q);
        Alcotest.(check int) "root size" (Pool.root_size p) (Pool.root_size q);
        Alcotest.(check (pair int int)) "heap" (Pool.heap p) (Pool.heap q));
    Tu.case "open of blank memory fails" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        match Pool.open_pool ctx ~loc:l () with
        | _ -> Alcotest.fail "expected Pool_corrupt"
        | exception Pool.Pool_corrupt _ -> ());
    Tu.case "faithful create also opens when complete" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let _ = Pool.create ctx ~loc:l () in
        ignore (Pool.open_pool ctx ~loc:l ()));
    Tu.case "root region starts zeroed and persisted" (fun () ->
        with_pool (fun ctx pool ->
            let dev = Ctx.device ctx in
            Alcotest.(check bool) "persisted" true
              (Device.is_persisted_range dev (Pool.root pool) (Pool.root_size pool));
            Alcotest.check Tu.i64 "zero" 0L (Ctx.read_i64 ctx ~loc:l (Pool.root pool))));
    Tu.case "atomic create survives a strict crash at completion" (fun () ->
        let ok =
          Tu.crash_boot
            ~pre:(fun ctx -> ignore (Pool.create_atomic ctx ~loc:l ()))
            ~mode:Device.Strict
            ~post:(fun ctx ->
              match Pool.open_pool ctx ~loc:l () with
              | _ -> true
              | exception Pool.Pool_corrupt _ -> false)
        in
        Alcotest.(check bool) "opens" true ok);
    Tu.case "log_entry bounds checked" (fun () ->
        with_pool (fun _ pool ->
            Alcotest.check_raises "oob" (Invalid_argument "Pool.log_entry: index out of range")
              (fun () -> ignore (Pool.log_entry pool Pool.log_entry_count))));
    Tu.case "pool too small rejected" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Alcotest.check_raises "small" (Invalid_argument "Pool.create: pool_size too small")
          (fun () -> ignore (Pool.create_atomic ctx ~loc:l ~pool_size:4096 ())));
  ]

let alloc_tests =
  [
    Tu.case "payloads are line-aligned and disjoint" (fun () ->
        with_pool (fun ctx pool ->
            let a = Alloc.alloc ctx pool ~loc:l ~size:24 ~zero:false in
            let b = Alloc.alloc ctx pool ~loc:l ~size:24 ~zero:false in
            Alcotest.(check int) "aligned a" 0 (a mod 64);
            Alcotest.(check int) "aligned b" 0 (b mod 64);
            Alcotest.(check bool) "disjoint" false
              (Xfd_mem.Addr.overlap (a, 64) (b, 64))));
    Tu.case "zeroed allocation reads as zero" (fun () ->
        with_pool (fun ctx pool ->
            let a = Alloc.alloc ctx pool ~loc:l ~size:32 ~zero:true in
            Alcotest.(check bytes) "zeros" (Bytes.make 32 '\000') (Ctx.read ctx ~loc:l a 32)));
    Tu.case "usable size is the rounded request" (fun () ->
        with_pool (fun ctx pool ->
            let a = Alloc.alloc ctx pool ~loc:l ~size:24 ~zero:false in
            Alcotest.(check int) "rounded to line" 64 (Alloc.usable_size ctx pool ~loc:l a)));
    Tu.case "free then alloc reuses the block" (fun () ->
        with_pool (fun ctx pool ->
            let a = Alloc.alloc ctx pool ~loc:l ~size:24 ~zero:false in
            Alloc.free ctx pool ~loc:l a;
            Alcotest.(check int) "on free list" 1 (Alloc.free_list_length ctx pool ~loc:l);
            let b = Alloc.alloc ctx pool ~loc:l ~size:24 ~zero:false in
            Alcotest.(check int) "reused" a b;
            Alcotest.(check int) "free list empty" 0 (Alloc.free_list_length ctx pool ~loc:l)));
    Tu.case "first fit skips too-small blocks" (fun () ->
        with_pool (fun ctx pool ->
            let small = Alloc.alloc ctx pool ~loc:l ~size:16 ~zero:false in
            let big = Alloc.alloc ctx pool ~loc:l ~size:200 ~zero:false in
            Alloc.free ctx pool ~loc:l small;
            Alloc.free ctx pool ~loc:l big;
            let c = Alloc.alloc ctx pool ~loc:l ~size:200 ~zero:false in
            Alcotest.(check int) "took the big block" big c));
    Tu.case "alloc size must be positive" (fun () ->
        with_pool (fun ctx pool ->
            Alcotest.check_raises "zero" (Invalid_argument "Alloc.alloc: size <= 0") (fun () ->
                ignore (Alloc.alloc ctx pool ~loc:l ~size:0 ~zero:false))));
    Tu.case "heap exhaustion raises" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let pool = Pool.create_atomic ctx ~loc:l ~pool_size:(256 * 1024) () in
        match
          for _ = 1 to 10_000 do
            ignore (Alloc.alloc ctx pool ~loc:l ~size:4096 ~zero:false)
          done
        with
        | () -> Alcotest.fail "expected Heap_exhausted"
        | exception Alloc.Heap_exhausted -> ());
    Tu.case "many allocations stay within the heap" (fun () ->
        with_pool (fun ctx pool ->
            let heap_addr, heap_size = Pool.heap pool in
            for i = 1 to 500 do
              let a = Alloc.alloc ctx pool ~loc:l ~size:(16 + (i mod 96)) ~zero:false in
              Alcotest.(check bool) "inside heap" true
                (a >= heap_addr && a + 16 <= heap_addr + heap_size)
            done));
  ]

let tx_tests =
  [
    Tu.case "commit keeps updates after a strict crash" (fun () ->
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              Tx.run ctx pool ~loc:l (fun () ->
                  Tx.add ctx pool ~loc:l (Pool.root pool) 8;
                  Ctx.write_i64 ctx ~loc:l (Pool.root pool) 42L))
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              Tx.recover ctx pool ~loc:l;
              Ctx.read_i64 ctx ~loc:l (Pool.root pool))
        in
        Alcotest.check Tu.i64 "committed value" 42L v);
    Tu.case "uncommitted update rolls back after a strict crash" (fun () ->
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              Ctx.write_i64 ctx ~loc:l (Pool.root pool) 1L;
              Pmem.persist ctx ~loc:l (Pool.root pool) 8;
              Tx.begin_ ctx pool ~loc:l;
              Tx.add ctx pool ~loc:l (Pool.root pool) 8;
              Ctx.write_i64 ctx ~loc:l (Pool.root pool) 99L;
              Pmem.persist ctx ~loc:l (Pool.root pool) 8
              (* crash before commit *))
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              Tx.recover ctx pool ~loc:l;
              Ctx.read_i64 ctx ~loc:l (Pool.root pool))
        in
        Alcotest.check Tu.i64 "rolled back" 1L v);
    Tu.case "abort restores immediately" (fun () ->
        with_pool (fun ctx pool ->
            Ctx.write_i64 ctx ~loc:l (Pool.root pool) 5L;
            Pmem.persist ctx ~loc:l (Pool.root pool) 8;
            (match
               Tx.run ctx pool ~loc:l (fun () ->
                   Tx.add ctx pool ~loc:l (Pool.root pool) 8;
                   Ctx.write_i64 ctx ~loc:l (Pool.root pool) 6L;
                   failwith "boom")
             with
            | () -> Alcotest.fail "should have raised"
            | exception Failure _ -> ());
            Alcotest.check Tu.i64 "restored" 5L (Ctx.read_i64 ctx ~loc:l (Pool.root pool));
            Alcotest.(check int) "log empty" 0 (Tx.valid_entries ctx pool ~loc:l)));
    Tu.case "nested transactions commit once at the outermost end" (fun () ->
        with_pool (fun ctx pool ->
            Tx.begin_ ctx pool ~loc:l;
            Tx.add ctx pool ~loc:l (Pool.root pool) 8;
            Tx.begin_ ctx pool ~loc:l;
            Ctx.write_i64 ctx ~loc:l (Pool.root pool) 7L;
            Tx.commit ctx pool ~loc:l;
            Alcotest.(check bool) "still open" true (Tx.valid_entries ctx pool ~loc:l > 0);
            Tx.commit ctx pool ~loc:l;
            Alcotest.(check int) "retired" 0 (Tx.valid_entries ctx pool ~loc:l)));
    Tu.case "rollback applies newest entry first" (fun () ->
        (* Add the same location twice with different intermediate values:
           recovery must end at the oldest (pre-transaction) value. *)
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              Ctx.write_i64 ctx ~loc:l (Pool.root pool) 10L;
              Pmem.persist ctx ~loc:l (Pool.root pool) 8;
              Tx.begin_ ctx pool ~loc:l;
              Tx.add ctx pool ~loc:l (Pool.root pool) 8;
              Ctx.write_i64 ctx ~loc:l (Pool.root pool) 20L;
              Tx.add ctx pool ~loc:l (Pool.root pool) 8 (* snapshots 20 *);
              Ctx.write_i64 ctx ~loc:l (Pool.root pool) 30L;
              Pmem.persist ctx ~loc:l (Pool.root pool) 8)
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              Tx.recover ctx pool ~loc:l;
              Ctx.read_i64 ctx ~loc:l (Pool.root pool))
        in
        Alcotest.check Tu.i64 "oldest value wins" 10L v);
    Tu.case "large ranges split across log entries" (fun () ->
        let expected = Bytes.init 2000 (fun i -> Char.chr (i mod 256)) in
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              Ctx.write ctx ~loc:l (Pool.root pool) expected;
              Pmem.persist ctx ~loc:l (Pool.root pool) 2000;
              Tx.begin_ ctx pool ~loc:l;
              Tx.add ctx pool ~loc:l (Pool.root pool) 2000;
              Ctx.write ctx ~loc:l (Pool.root pool) (Bytes.make 2000 '\xFF');
              Pmem.persist ctx ~loc:l (Pool.root pool) 2000)
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              Tx.recover ctx pool ~loc:l;
              Ctx.read ctx ~loc:l (Pool.root pool) 2000)
        in
        Alcotest.(check bytes) "restored" expected v);
    Tu.case "operations outside a transaction raise" (fun () ->
        with_pool (fun ctx pool ->
            Alcotest.check_raises "add" Tx.No_active_transaction (fun () ->
                Tx.add ctx pool ~loc:l (Pool.root pool) 8);
            Alcotest.check_raises "commit" Tx.No_active_transaction (fun () ->
                Tx.commit ctx pool ~loc:l);
            Alcotest.check_raises "abort" Tx.No_active_transaction (fun () ->
                Tx.abort ctx pool ~loc:l)));
    Tu.case "log exhaustion raises" (fun () ->
        with_pool (fun ctx pool ->
            Tx.begin_ ctx pool ~loc:l;
            match
              for _ = 1 to Pool.log_entry_count + 1 do
                Tx.add ctx pool ~loc:l (Pool.root pool) 8
              done
            with
            | () -> Alcotest.fail "expected Log_exhausted"
            | exception Tx.Log_exhausted -> ()));
    Tu.case "detector finds no bugs in the tx library itself" (fun () ->
        (* Audit mode: trust_library = false exposes all tx internals to
           instruction-granularity failure injection and checking. *)
        let program =
          {
            Xfd.Engine.name = "tx-audit";
            setup =
              (fun ctx ->
                let pool = Pool.create_atomic ctx ~loc:l () in
                Ctx.write_i64 ctx ~loc:l (Pool.root pool) 1L;
                Pmem.persist ctx ~loc:l (Pool.root pool) 8);
            pre =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                Ctx.roi_begin ctx ~loc:l;
                Tx.run ctx pool ~loc:l (fun () ->
                    Tx.add ctx pool ~loc:l (Pool.root pool) 8;
                    Ctx.write_i64 ctx ~loc:l (Pool.root pool) 2L);
                Ctx.roi_end ctx ~loc:l);
            post =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                Ctx.roi_begin ctx ~loc:l;
                Tx.recover ctx pool ~loc:l;
                ignore (Ctx.read_i64 ctx ~loc:l (Pool.root pool));
                Ctx.roi_end ctx ~loc:l);
          }
        in
        let config = { Xfd.Config.default with trust_library = false } in
        let outcome = Tu.detect ~config program in
        Alcotest.(check bool) "many failure points" true (outcome.Xfd.Engine.failure_points > 5);
        Tu.check_clean "tx audit" outcome);
  ]

let pmem_tests =
  [
    Tu.case "memcpy_persist persists" (fun () ->
        let dev, _, ctx = Tu.make_ctx () in
        Pmem.memcpy_persist ctx ~loc:l 0x1000 (Bytes.of_string "abc");
        Alcotest.(check bool) "persisted" true (Device.is_persisted_range dev 0x1000 3));
    Tu.case "memset_persist fills and persists" (fun () ->
        let dev, _, ctx = Tu.make_ctx () in
        Pmem.memset_persist ctx ~loc:l 0x1000 'z' 100;
        Alcotest.(check bytes) "filled" (Bytes.make 100 'z') (Device.load dev 0x1000 100);
        Alcotest.(check bool) "persisted" true (Device.is_persisted_range dev 0x1000 100));
    Tu.case "library_call closes regions on exceptions" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        (match Pmem.library_call ctx ~loc:l (fun () -> failwith "inner") with
        | () -> Alcotest.fail "should raise"
        | exception Failure _ -> ());
        (* If the skip regions leaked, this would raise. *)
        Ctx.skip_detection_begin ctx ~loc:l;
        Ctx.skip_detection_end ctx ~loc:l;
        Alcotest.(check pass) "balanced" () ());
    Tu.case "layout strings round trip" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Layout.write_string ctx ~loc:l 0x2000 "hello";
        Alcotest.(check string) "round" "hello" (Layout.read_string ctx ~loc:l 0x2000);
        Layout.write_string ctx ~loc:l 0x3000 "";
        Alcotest.(check string) "empty" "" (Layout.read_string ctx ~loc:l 0x3000);
        Alcotest.(check int) "footprint" 13 (Layout.string_footprint "hello"));
  ]

let suite =
  [
    ("pmdk.pool", pool_tests);
    ("pmdk.alloc", alloc_tests);
    ("pmdk.tx", tx_tests);
    ("pmdk.pmem", pmem_tests);
  ]
