(* Functional tests for the mini Redis (RESP protocol + PM store + server)
   and the mini memcached (ASCII protocol + slab allocator + item cache). *)

module Resp = Xfd_redis.Resp
module Store = Xfd_redis.Store
module Server = Xfd_redis.Server
module Protocol = Xfd_memcached.Protocol
module Slab = Xfd_memcached.Slab
module Cache = Xfd_memcached.Cache
module Mc = Xfd_memcached.Mc_server
module Pool = Xfd_pmdk.Pool

let l = Tu.loc __POS__

let resp_tests =
  [
    Tu.case "inline command parsing" (fun () ->
        Alcotest.(check bool) "set" true
          (fst (Resp.parse_command "SET foo bar\r\n") = Resp.Set ("foo", "bar"));
        Alcotest.(check bool) "get lowercase" true
          (fst (Resp.parse_command "get foo\r\n") = Resp.Get "foo");
        Alcotest.(check bool) "ping" true (fst (Resp.parse_command "PING\r\n") = Resp.Ping));
    Tu.case "resp array command parsing" (fun () ->
        let wire = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n" in
        let cmd, consumed = Resp.parse_command wire in
        Alcotest.(check bool) "set" true (cmd = Resp.Set ("k", "hello"));
        Alcotest.(check int) "consumed all" (String.length wire) consumed);
    Tu.case "command encode/parse round trip" (fun () ->
        List.iter
          (fun cmd ->
            let cmd', _ = Resp.parse_command (Resp.encode_command cmd) in
            Alcotest.(check bool) "round" true (cmd = cmd'))
          [
            Resp.Set ("key with space?", "value\nwith\nnewlines");
            Resp.Get "k";
            Resp.Del "k";
            Resp.Exists "k";
            Resp.Incr "counter";
            Resp.Dbsize;
            Resp.Ping;
            Resp.Flushall;
          ]);
    Tu.case "reply encode/parse round trip" (fun () ->
        List.iter
          (fun r ->
            let r', _ = Resp.parse_reply (Resp.encode_reply r) in
            Alcotest.(check bool) "round" true (r = r'))
          [
            Resp.Simple "OK";
            Resp.Error "ERR nope";
            Resp.Integer 42L;
            Resp.Integer (-7L);
            Resp.Bulk None;
            Resp.Bulk (Some "binary\r\nsafe");
          ]);
    Tu.case "protocol errors raise" (fun () ->
        List.iter
          (fun s ->
            match Resp.parse_command s with
            | _ -> Alcotest.failf "should reject %S" s
            | exception Resp.Protocol_error _ -> ())
          [ ""; "SET only_key\r\n"; "*1\r\n$3\r\nBAD\r\n"; "BOGUS\r\n"; "GET x" ]);
  ]

let redis_store_tests =
  [
    Tu.case "set/get/del through the server" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        Alcotest.(check string) "set" "+OK\r\n" (Server.handle ctx t "SET a 1\r\n");
        Alcotest.(check string) "get" "$1\r\n1\r\n" (Server.handle ctx t "GET a\r\n");
        Alcotest.(check string) "missing" "$-1\r\n" (Server.handle ctx t "GET b\r\n");
        Alcotest.(check string) "dbsize" ":1\r\n" (Server.handle ctx t "DBSIZE\r\n");
        Alcotest.(check string) "del" ":1\r\n" (Server.handle ctx t "DEL a\r\n");
        Alcotest.(check string) "del again" ":0\r\n" (Server.handle ctx t "DEL a\r\n");
        Alcotest.(check string) "dbsize 0" ":0\r\n" (Server.handle ctx t "DBSIZE\r\n"));
    Tu.case "incr and type errors" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        Alcotest.(check string) "incr fresh" ":1\r\n" (Server.handle ctx t "INCR c\r\n");
        Alcotest.(check string) "incr again" ":2\r\n" (Server.handle ctx t "INCR c\r\n");
        ignore (Server.handle ctx t "SET s not_a_number\r\n");
        let reply = Server.handle ctx t "INCR s\r\n" in
        Alcotest.(check bool) "error reply" true (String.length reply > 0 && reply.[0] = '-'));
    Tu.case "overwrite frees the old value blob" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        ignore (Server.handle ctx t "SET k aaaa\r\n");
        ignore (Server.handle ctx t "SET k bbbb\r\n");
        Alcotest.(check string) "new value" "$4\r\nbbbb\r\n" (Server.handle ctx t "GET k\r\n");
        Alcotest.(check string) "still one entry" ":1\r\n" (Server.handle ctx t "DBSIZE\r\n"));
    Tu.case "flushall empties the store" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        for i = 1 to 20 do
          ignore (Server.handle ctx t (Printf.sprintf "SET k%d v%d\r\n" i i))
        done;
        Alcotest.(check string) "full" ":20\r\n" (Server.handle ctx t "DBSIZE\r\n");
        Alcotest.(check string) "flush" "+OK\r\n" (Server.handle ctx t "FLUSHALL\r\n");
        Alcotest.(check string) "empty" ":0\r\n" (Server.handle ctx t "DBSIZE\r\n");
        Alcotest.(check string) "gone" "$-1\r\n" (Server.handle ctx t "GET k3\r\n"));
    Tu.case "restart preserves committed data (strict crash)" (fun () ->
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let t = Server.init_persistent_memory ctx ~variant:`Fixed in
              ignore (Server.handle ctx t "SET durable yes\r\n"))
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let t = Server.restart ctx in
              Server.handle ctx t "GET durable\r\n")
        in
        Alcotest.(check string) "survived" "$3\r\nyes\r\n" v);
    Tu.case "many keys with colliding buckets" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let pool = Pool.create_atomic ctx ~loc:l () in
        let st = Store.attach_fresh ctx pool ~buckets:2 in
        for i = 1 to 50 do
          Store.set ctx st (Printf.sprintf "key-%03d" i) (string_of_int i)
        done;
        Alcotest.check Tu.i64 "entries" 50L (Store.num_entries ctx st);
        for i = 1 to 50 do
          Alcotest.(check bool) "present" true
            (Store.get ctx st (Printf.sprintf "key-%03d" i) = Some (string_of_int i))
        done);
  ]

let mc_protocol_tests =
  [
    Tu.case "set request with data block" (fun () ->
        let req, consumed = Protocol.parse_request "set k 7 0 5\r\nhello\r\n" in
        (match req with
        | Protocol.Set { key; flags; data; _ } ->
          Alcotest.(check string) "key" "k" key;
          Alcotest.check Tu.i64 "flags" 7L flags;
          Alcotest.(check string) "data" "hello" data
        | _ -> Alcotest.fail "wrong request");
        Alcotest.(check int) "consumed" (String.length "set k 7 0 5\r\nhello\r\n") consumed);
    Tu.case "request encode/parse round trip" (fun () ->
        List.iter
          (fun r ->
            let r', _ = Protocol.parse_request (Protocol.encode_request r) in
            Alcotest.(check bool) "round" true (r = r'))
          [
            Protocol.Set { key = "k"; flags = 1L; exptime = 2L; data = "multi\r\nline" };
            Protocol.Get "key";
            Protocol.Delete "key";
            Protocol.Stats;
          ]);
    Tu.case "malformed requests rejected" (fun () ->
        List.iter
          (fun s ->
            match Protocol.parse_request s with
            | _ -> Alcotest.failf "should reject %S" s
            | exception Protocol.Protocol_error _ -> ())
          [ "set k 0 0 5\r\nhi\r\n"; "bogus\r\n"; "get\r\n"; "set k 0 0 -1\r\n\r\n" ]);
    Tu.case "responses encode correctly" (fun () ->
        Alcotest.(check string) "stored" "STORED\r\n" (Protocol.encode_response Protocol.Stored);
        Alcotest.(check string) "value block"
          "VALUE k 3 2\r\nhi\r\nEND\r\n"
          (Protocol.encode_response (Protocol.Values [ ("k", 3L, "hi") ]));
        Alcotest.(check string) "empty get" "END\r\n" (Protocol.encode_response (Protocol.Values [])));
  ]

let slab_tests =
  [
    Tu.case "size classes" (fun () ->
        Alcotest.(check int) "small" 64 (Slab.chunk_size_for 10);
        Alcotest.(check int) "exact" 64 (Slab.chunk_size_for 64);
        Alcotest.(check int) "next" 128 (Slab.chunk_size_for 65);
        Alcotest.(check int) "big" 1024 (Slab.chunk_size_for 1000);
        match Slab.chunk_size_for 5000 with
        | _ -> Alcotest.fail "expected No_slab_class"
        | exception Slab.No_slab_class _ -> ());
    Tu.case "alloc/free/reuse per class" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let pool = Pool.create_atomic ctx ~loc:l () in
        let s = Slab.create ctx pool in
        let a = Slab.alloc ctx s ~size:100 in
        let b = Slab.alloc ctx s ~size:100 in
        Alcotest.(check bool) "distinct" true (a <> b);
        Slab.free ctx s a ~size:100;
        Alcotest.(check int) "one free chunk" 1 (Slab.free_chunks ctx s ~size:100);
        let c = Slab.alloc ctx s ~size:100 in
        Alcotest.(check int) "reused" a c;
        (* A different class does not see that free list. *)
        Slab.free ctx s b ~size:100;
        Alcotest.(check int) "other class empty" 0 (Slab.free_chunks ctx s ~size:600));
    Tu.case "page rollover" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let pool = Pool.create_atomic ctx ~loc:l () in
        let s = Slab.create ctx pool in
        let seen = Hashtbl.create 64 in
        (* 4096/64 = 64 chunks per page; allocate 200 to force 4 pages. *)
        for _ = 1 to 200 do
          let a = Slab.alloc ctx s ~size:16 in
          Alcotest.(check bool) "fresh chunk" false (Hashtbl.mem seen a);
          Hashtbl.replace seen a ()
        done);
  ]

let mc_cache_tests =
  [
    Tu.case "set/get/delete/stats through the server" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Mc.boot ctx () in
        Alcotest.(check string) "stored" "STORED\r\n" (Mc.handle ctx t "set k 0 0 2\r\nhi\r\n");
        Alcotest.(check string) "value" "VALUE k 0 2\r\nhi\r\nEND\r\n" (Mc.handle ctx t "get k\r\n");
        Alcotest.(check string) "miss" "END\r\n" (Mc.handle ctx t "get nope\r\n");
        Alcotest.(check string) "stats" "STAT curr_items 1\r\nEND\r\n" (Mc.handle ctx t "stats\r\n");
        Alcotest.(check string) "deleted" "DELETED\r\n" (Mc.handle ctx t "delete k\r\n");
        Alcotest.(check string) "not found" "NOT_FOUND\r\n" (Mc.handle ctx t "delete k\r\n"));
    Tu.case "replacement keeps a single copy" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Mc.boot ctx () in
        ignore (Mc.handle ctx t "set k 0 0 3\r\nold\r\n");
        ignore (Mc.handle ctx t "set k 0 0 3\r\nnew\r\n");
        Alcotest.(check string) "new value" "VALUE k 0 3\r\nnew\r\nEND\r\n" (Mc.handle ctx t "get k\r\n");
        Alcotest.(check string) "one item" "STAT curr_items 1\r\nEND\r\n" (Mc.handle ctx t "stats\r\n"));
    Tu.case "items survive a strict crash after set" (fun () ->
        let reply =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let t = Mc.boot ctx () in
              ignore (Mc.handle ctx t "set k 5 0 4\r\ndata\r\n"))
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let t = Mc.restart ctx in
              Mc.handle ctx t "get k\r\n")
        in
        Alcotest.(check string) "survived" "VALUE k 5 4\r\ndata\r\nEND\r\n" reply);
    Tu.case "flags and exptime round trip through the cache" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let pool = Pool.create_atomic ctx ~loc:l () in
        let c = Cache.create ctx pool ~buckets:8 in
        Cache.set ctx c ~key:"x" ~value:"v" ~flags:99L ~exptime:12345L;
        match Cache.get ctx c "x" with
        | Some (v, flags) ->
          Alcotest.(check string) "value" "v" v;
          Alcotest.check Tu.i64 "flags" 99L flags
        | None -> Alcotest.fail "missing");
  ]

let suite =
  [
    ("redis.resp", resp_tests);
    ("redis.store", redis_store_tests);
    ("memcached.protocol", mc_protocol_tests);
    ("memcached.slab", slab_tests);
    ("memcached.cache", mc_cache_tests);
  ]

(* --- extended Redis command set --- *)
let redis_ext_tests =
  [
    Tu.case "setnx only sets absent keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        Alcotest.(check string) "first" ":1\r\n" (Server.handle ctx t "SETNX k one\r\n");
        Alcotest.(check string) "second" ":0\r\n" (Server.handle ctx t "SETNX k two\r\n");
        Alcotest.(check string) "unchanged" "$3\r\none\r\n" (Server.handle ctx t "GET k\r\n"));
    Tu.case "mset stores all pairs" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        Alcotest.(check string) "ok" "+OK\r\n" (Server.handle ctx t "MSET a 1 b 2 c 3\r\n");
        Alcotest.(check string) "a" "$1\r\n1\r\n" (Server.handle ctx t "GET a\r\n");
        Alcotest.(check string) "c" "$1\r\n3\r\n" (Server.handle ctx t "GET c\r\n");
        Alcotest.(check string) "dbsize" ":3\r\n" (Server.handle ctx t "DBSIZE\r\n");
        let reply = Server.handle ctx t "MSET a 1 b\r\n" in
        Alcotest.(check bool) "odd arity rejected" true (reply.[0] = '-'));
    Tu.case "mset is atomic across strict crashes" (fun () ->
        (* At every failure point of one MSET, recovery must find either
           none or all of the three keys. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx -> ignore (Server.init_persistent_memory ctx ~variant:`Fixed))
            ~pre:(fun ctx ->
              let t = Server.restart ctx in
              Xfd_sim.Ctx.roi_begin ctx ~loc:Tu.(loc __POS__);
              ignore (Server.handle ctx t "MSET a 1 b 2 c 3\r\n");
              Xfd_sim.Ctx.roi_end ctx ~loc:Tu.(loc __POS__))
        in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let t = Server.restart ctx in
                let present =
                  List.filter
                    (fun k -> Server.handle ctx t (Printf.sprintf "GET %s\r\n" k) <> "$-1\r\n")
                    [ "a"; "b"; "c" ]
                in
                if List.length present <> 0 && List.length present <> 3 then
                  Alcotest.failf "image %d: torn MSET (%d of 3 keys)" n (List.length present)))
          images);
    Tu.case "append and strlen" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        Alcotest.(check string) "append fresh" ":5\r\n" (Server.handle ctx t "APPEND k hello\r\n");
        Alcotest.(check string) "append more" ":11\r\n" (Server.handle ctx t "APPEND k _world\r\n");
        Alcotest.(check string) "value" "$11\r\nhello_world\r\n" (Server.handle ctx t "GET k\r\n");
        Alcotest.(check string) "strlen" ":11\r\n" (Server.handle ctx t "STRLEN k\r\n");
        Alcotest.(check string) "strlen absent" ":0\r\n" (Server.handle ctx t "STRLEN nope\r\n"));
    Tu.case "keys glob patterns" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        List.iter
          (fun k -> ignore (Server.handle ctx t (Printf.sprintf "SET %s x\r\n" k)))
          [ "user:1"; "user:2"; "session:9"; "user_admin" ];
        Alcotest.(check string) "prefix" "*2\r\n$6\r\nuser:1\r\n$6\r\nuser:2\r\n"
          (Server.handle ctx t "KEYS user:*\r\n");
        Alcotest.(check string) "all" ":4\r\n"
          (let r = Server.handle ctx t "KEYS *\r\n" in
           Printf.sprintf ":%d\r\n" (List.length (String.split_on_char '$' r) - 1));
        Alcotest.(check string) "middle star" "*1\r\n$9\r\nsession:9\r\n"
          (Server.handle ctx t "KEYS se*:9\r\n");
        Alcotest.(check string) "exact" "*1\r\n$10\r\nuser_admin\r\n"
          (Server.handle ctx t "KEYS user_admin\r\n");
        Alcotest.(check string) "no match" "*0\r\n" (Server.handle ctx t "KEYS zz*\r\n"));
    Tu.case "extended commands round trip through RESP" (fun () ->
        List.iter
          (fun cmd ->
            let cmd', _ = Resp.parse_command (Resp.encode_command cmd) in
            Alcotest.(check bool) "round" true (cmd = cmd'))
          [
            Resp.Setnx ("k", "v");
            Resp.Mset [ ("a", "1"); ("b", "2") ];
            Resp.Append ("k", "suffix");
            Resp.Strlen "k";
            Resp.Keys "user:*";
          ];
        let r = Resp.Multi [ "a"; "bb" ] in
        Alcotest.(check bool) "multi reply round" true
          (fst (Resp.parse_reply (Resp.encode_reply r)) = r));
  ]

let suite = suite @ [ ("redis.extended", redis_ext_tests) ]

(* --- extended memcached command set --- *)
let mc_ext_tests =
  [
    Tu.case "add only stores absent keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Mc.boot ctx () in
        Alcotest.(check string) "fresh" "STORED\r\n" (Mc.handle ctx t "add k 0 0 1\r\na\r\n");
        Alcotest.(check string) "again" "NOT_STORED\r\n" (Mc.handle ctx t "add k 0 0 1\r\nb\r\n");
        Alcotest.(check string) "kept" "VALUE k 0 1\r\na\r\nEND\r\n" (Mc.handle ctx t "get k\r\n"));
    Tu.case "replace only stores present keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Mc.boot ctx () in
        Alcotest.(check string) "absent" "NOT_STORED\r\n"
          (Mc.handle ctx t "replace k 0 0 1\r\na\r\n");
        ignore (Mc.handle ctx t "set k 0 0 1\r\na\r\n");
        Alcotest.(check string) "present" "STORED\r\n" (Mc.handle ctx t "replace k 0 0 1\r\nb\r\n");
        Alcotest.(check string) "new value" "VALUE k 0 1\r\nb\r\nEND\r\n"
          (Mc.handle ctx t "get k\r\n"));
    Tu.case "incr/decr semantics" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Mc.boot ctx () in
        ignore (Mc.handle ctx t "set n 0 0 2\r\n10\r\n");
        Alcotest.(check string) "incr" "15\r\n" (Mc.handle ctx t "incr n 5\r\n");
        Alcotest.(check string) "decr" "3\r\n" (Mc.handle ctx t "decr n 12\r\n");
        Alcotest.(check string) "decr clamps at zero" "0\r\n" (Mc.handle ctx t "decr n 100\r\n");
        Alcotest.(check string) "missing" "NOT_FOUND\r\n" (Mc.handle ctx t "incr nope 1\r\n");
        ignore (Mc.handle ctx t "set s 0 0 3\r\nabc\r\n");
        let r = Mc.handle ctx t "incr s 1\r\n" in
        Alcotest.(check bool) "non-numeric" true
          (String.length r > 12 && String.sub r 0 12 = "CLIENT_ERROR"));
    Tu.case "extended requests round trip" (fun () ->
        List.iter
          (fun r ->
            let r', _ = Protocol.parse_request (Protocol.encode_request r) in
            Alcotest.(check bool) "round" true (r = r'))
          [
            Protocol.Add { key = "k"; flags = 0L; exptime = 0L; data = "d" };
            Protocol.Replace { key = "k"; flags = 1L; exptime = 0L; data = "" };
            Protocol.Incr ("k", 3L);
            Protocol.Decr ("k", 0L);
          ]);
    Tu.case "counter survives a strict crash" (fun () ->
        let reply =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let t = Mc.boot ctx () in
              ignore (Mc.handle ctx t "set n 0 0 1\r\n5\r\n");
              ignore (Mc.handle ctx t "incr n 2\r\n"))
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let t = Mc.restart ctx in
              Mc.handle ctx t "get n\r\n")
        in
        Alcotest.(check string) "survived" "VALUE n 0 1\r\n7\r\nEND\r\n" reply);
  ]

let suite = suite @ [ ("memcached.extended", mc_ext_tests) ]

(* --- glob corner cases through KEYS --- *)
let glob_tests =
  [
    Tu.case "tricky glob patterns" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Server.init_persistent_memory ctx ~variant:`Fixed in
        List.iter
          (fun k -> ignore (Server.handle ctx t (Printf.sprintf "SET %s x\r\n" k)))
          [ "abc"; "axbxc"; "ab"; "c"; "abcabc" ];
        let keys_of pattern =
          match
            Xfd_redis.Resp.parse_reply
              (Server.handle ctx t (Printf.sprintf "KEYS %s\r\n" pattern))
          with
          | Xfd_redis.Resp.Multi ks, _ -> ks
          | _ -> Alcotest.fail "expected multi reply"
        in
        Alcotest.(check (list string)) "a*b*c" [ "abc"; "abcabc"; "axbxc" ] (keys_of "a*b*c");
        Alcotest.(check (list string)) "suffix" [ "abc"; "abcabc"; "axbxc"; "c" ] (keys_of "*c");
        Alcotest.(check (list string)) "prefix" [ "ab"; "abc"; "abcabc" ] (keys_of "ab*");
        Alcotest.(check (list string)) "double star" [ "abcabc" ] (keys_of "abc*a*");
        Alcotest.(check (list string)) "star only" [ "ab"; "abc"; "abcabc"; "axbxc"; "c" ]
          (keys_of "*");
        Alcotest.(check (list string)) "exact miss" [] (keys_of "abx"));
  ]

let suite = suite @ [ ("redis.glob", glob_tests) ]
