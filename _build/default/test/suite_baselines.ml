(* Tests for the prior-work baselines and the capability comparison the
   paper's Figure 3 makes: pre-failure-only tools miss post-failure bugs
   and false-positive on intentionally unlogged-but-recovered data. *)

module Pmtest = Xfd_baselines.Pmtest
module Pmemcheck = Xfd_baselines.Pmemcheck
module Pure_trace = Xfd_baselines.Pure_trace

let pmtest_tests =
  [
    Tu.case "flags the unlogged length write of figure 1" (fun () ->
        let r, _ = Pmtest.run (Xfd_workloads.Linkedlist.program ~size:1 ()) in
        Alcotest.(check bool) "violations" true (List.length r.Pmtest.violations > 0);
        let has_tx_rule =
          List.exists
            (fun v -> v.Pmtest.rule = "write inside transaction to object not added to it")
            r.Pmtest.violations
        in
        Alcotest.(check bool) "transaction rule fired" true has_tx_rule);
    Tu.case "false positive: identical report on the robust-recovery variant" (fun () ->
        (* XFDetector is clean here (see detection suite); PMTest still
           complains because it never sees the recovery code. *)
        let r, _ = Pmtest.run (Xfd_workloads.Linkedlist.program ~size:1 ~recovery:`Robust ()) in
        Alcotest.(check bool) "still complains" true (List.length r.Pmtest.violations > 0));
    Tu.case "silent on the logged variant" (fun () ->
        let r, _ = Pmtest.run (Xfd_workloads.Linkedlist.program ~size:1 ~log_length:true ()) in
        Alcotest.(check (list string)) "no violations" []
          (List.map (fun v -> v.Pmtest.rule) r.Pmtest.violations));
    Tu.case "misses the figure 2 semantic bug" (fun () ->
        let r, _ = Pmtest.run (Xfd_workloads.Array_update.program ~size:1 ()) in
        Alcotest.(check int) "blind to cross-failure semantics" 0
          (List.length r.Pmtest.violations));
    Tu.case "clean on correct transactional workloads" (fun () ->
        List.iter
          (fun p ->
            let r, _ = Pmtest.run p in
            Alcotest.(check (list string)) "no violations" []
              (List.map (fun v -> v.Pmtest.rule) r.Pmtest.violations))
          [
            Xfd_workloads.Btree.program ~init_size:2 ~size:2 ();
            Xfd_workloads.Hashmap_tx.program ~size:2 ();
          ]);
    Tu.case "catches a seeded unpersisted write" (fun () ->
        let faults = Xfd_sim.Faults.make ~skip_flush:[ 1 ] () in
        let program = Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed () in
        (* Run the pre-failure stage under the fault spec, then check. *)
        let dev = Xfd_mem.Pm_device.create () in
        let trace = Xfd_trace.Trace.create () in
        let ctx = Xfd_sim.Ctx.create ~faults ~stage:Xfd_sim.Ctx.Pre_failure ~dev ~trace () in
        program.Xfd.Engine.setup ctx;
        program.Xfd.Engine.pre ctx;
        let r = Pmtest.check trace in
        let unpersisted =
          List.exists
            (fun v -> v.Pmtest.rule = "PM update not persisted by end of execution")
            r.Pmtest.violations
        in
        Alcotest.(check bool) "found" true unpersisted);
  ]

let pmemcheck_tests =
  [
    Tu.case "reports figure 1's never-flushed length" (fun () ->
        let r, _ = Pmemcheck.run (Xfd_workloads.Linkedlist.program ~size:1 ()) in
        let leftovers =
          List.filter (fun i -> i.Pmemcheck.kind = `Not_persisted) r.Pmemcheck.issues
        in
        Alcotest.(check bool) "at least one" true (List.length leftovers >= 1));
    Tu.case "no leftover stores on the logged variant" (fun () ->
        let r, _ = Pmemcheck.run (Xfd_workloads.Linkedlist.program ~size:1 ~log_length:true ()) in
        let leftovers =
          List.filter (fun i -> i.Pmemcheck.kind = `Not_persisted) r.Pmemcheck.issues
        in
        Alcotest.(check int) "none" 0 (List.length leftovers));
    Tu.case "misses the figure 2 semantic bug" (fun () ->
        let r, _ = Pmemcheck.run (Xfd_workloads.Array_update.program ~size:1 ()) in
        let leftovers =
          List.filter (fun i -> i.Pmemcheck.kind = `Not_persisted) r.Pmemcheck.issues
        in
        Alcotest.(check int) "blind" 0 (List.length leftovers));
    Tu.case "tracks store counts" (fun () ->
        let r, _ = Pmemcheck.run (Xfd_workloads.Btree.program ~size:1 ()) in
        Alcotest.(check bool) "stores seen" true (r.Pmemcheck.stores_tracked > 10));
  ]

let pure_trace_tests =
  [
    Tu.case "produces both stage traces" (fun () ->
        let r = Pure_trace.run (Xfd_workloads.Btree.program ~init_size:2 ~size:2 ()) in
        Alcotest.(check bool) "pre events" true (r.Pure_trace.pre_events > 50);
        Alcotest.(check bool) "post events" true (r.Pure_trace.post_events > 10));
    Tu.case "detection costs more than pure tracing, which costs more than nothing" (fun () ->
        (* Repeat to smooth timing noise; the ordering must hold on medians
           of several runs for a sizeable workload. *)
        let program () = Xfd_workloads.Btree.program ~init_size:10 ~size:10 () in
        let median xs = List.nth (List.sort compare xs) (List.length xs / 2) in
        let runs f = median (List.init 3 (fun _ -> f ())) in
        let detect_t = runs (fun () -> Xfd.Engine.total_wall (Tu.detect (program ()))) in
        let trace_t = runs (fun () -> (Pure_trace.run (program ())).Pure_trace.wall) in
        Alcotest.(check bool) "detect slower than trace" true (detect_t > trace_t));
  ]

let suite =
  [
    ("baselines.pmtest", pmtest_tests);
    ("baselines.pmemcheck", pmemcheck_tests);
    ("baselines.pure_trace", pure_trace_tests);
  ]
