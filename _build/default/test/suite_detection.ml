(* End-to-end detection capability: the paper's Figures 1/2, the four new
   bugs of section 6.3.2, the Table 5 synthetic-bug validation, and the
   real-workload runs that must stay clean. *)

module Engine = Xfd.Engine
module Report = Xfd.Report
module Bug_suite = Xfd_workloads.Bug_suite

let figure_tests =
  [
    Tu.case "figure 1 bug: race on length + segfault observed" (fun () ->
        let o = Tu.detect (Xfd_workloads.Linkedlist.program ~size:1 ()) in
        let races, _, _, errors = Engine.tally o in
        Alcotest.(check bool) "race on length" true (races >= 1);
        Alcotest.(check bool) "segfault scenario observed" true (errors >= 1);
        (* The reported race is on the length read in pop. *)
        let has_length_race =
          List.exists
            (function
              | Report.Race r -> r.Report.read_loc.Xfd_util.Loc.file = "lib/workloads/linkedlist.ml"
              | _ -> false)
            o.Engine.unique_bugs
        in
        Alcotest.(check bool) "race points into pop" true has_length_race);
    Tu.case "figure 1 with robust recovery is clean (no false positive)" (fun () ->
        Tu.check_clean "fig1-robust" (Tu.detect (Xfd_workloads.Linkedlist.program ~size:1 ~recovery:`Robust ())));
    Tu.case "figure 1 with length logged is clean" (fun () ->
        Tu.check_clean "fig1-logged"
          (Tu.detect (Xfd_workloads.Linkedlist.program ~size:1 ~log_length:true ())));
    Tu.case "figure 2 bug: race and stale semantic bug" (fun () ->
        let o = Tu.detect (Xfd_workloads.Array_update.program ~size:1 ()) in
        let races, semantics, _, _ = Engine.tally o in
        Alcotest.(check bool) "race" true (races >= 1);
        Alcotest.(check bool) "semantic" true (semantics >= 1);
        let stale =
          List.exists
            (function
              | Report.Semantic s -> s.Report.status = Xfd.Cstate.Stale
              | _ -> false)
            o.Engine.unique_bugs
        in
        Alcotest.(check bool) "stale backup read" true stale);
    Tu.case "figure 2 fixed is clean" (fun () ->
        Tu.check_clean "fig2-fixed"
          (Tu.detect (Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true ())));
    Tu.case "figure 2 bug detected at multiple sizes" (fun () ->
        List.iter
          (fun size ->
            let _, semantics, _, _ =
              Tu.tally_of (Xfd_workloads.Array_update.program ~size ())
            in
            Alcotest.(check bool) (Printf.sprintf "size %d" size) true (semantics >= 1))
          [ 2; 4 ]);
  ]

let newbug_tests =
  [
    Tu.case "bug 1: hashmap-atomic unpersisted metadata races" (fun () ->
        let o = Tu.detect (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ()) in
        let races, _, _, _ = Engine.tally o in
        Alcotest.(check bool) "several metadata races" true (races >= 3));
    Tu.case "bug 2: hashmap-atomic uninitialised count read" (fun () ->
        let o = Tu.detect (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ()) in
        let uninit =
          List.exists
            (function Report.Race r -> r.Report.uninit | _ -> false)
            o.Engine.unique_bugs
        in
        Alcotest.(check bool) "uninit race present" true uninit);
    Tu.case "bugs 1+2 absent from the fixed hashmap-atomic" (fun () ->
        Tu.check_clean "hashmap-atomic fixed"
          (Tu.detect (Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed ())));
    Tu.case "bug 3: redis unprotected init races" (fun () ->
        let o = Tu.detect (Xfd_redis.Server.program ~size:2 ()) in
        let races, _, _, errors = Engine.tally o in
        Alcotest.(check bool) "race on num_dict_entries" true (races >= 1);
        Alcotest.(check int) "no crash" 0 errors);
    Tu.case "bug 3 absent from the fixed redis" (fun () ->
        Tu.check_clean "redis fixed" (Tu.detect (Xfd_redis.Server.program ~size:2 ~variant:`Fixed ())));
    Tu.case "bug 4: pool creation leaves incomplete metadata" (fun () ->
        let o =
          Tu.detect ~config:Xfd_workloads.Pool_create.config (Xfd_workloads.Pool_create.program ())
        in
        let contains s sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        let incomplete =
          List.exists
            (function
              | Report.Post_failure_error { exn; _ } -> contains exn "Incomplete"
              | _ -> false)
            o.Engine.unique_bugs
        in
        Alcotest.(check bool) "incomplete-pool error observed" true incomplete);
    Tu.case "bug 4 absent from atomic pool creation" (fun () ->
        Tu.check_clean "pool-create atomic"
          (Tu.detect ~config:Xfd_workloads.Pool_create.config
             (Xfd_workloads.Pool_create.program ~atomic:true ())));
    Tu.case "memcached is clean under detection" (fun () ->
        Tu.check_clean "memcached" (Tu.detect (Xfd_memcached.Mc_server.program ~size:3 ())));
    Tu.case "all five microbenchmarks are clean unpatched" (fun () ->
        List.iter
          (fun (name, p) -> Tu.check_clean name (Tu.detect p))
          [
            ("btree", Xfd_workloads.Btree.program ~init_size:2 ~size:2 ());
            ("ctree", Xfd_workloads.Ctree.program ~init_size:2 ~size:2 ());
            ("rbtree", Xfd_workloads.Rbtree.program ~init_size:2 ~size:2 ());
            ("hashmap-tx", Xfd_workloads.Hashmap_tx.program ~size:2 ());
            ("hashmap-atomic", Xfd_workloads.Hashmap_atomic.program ~size:2 ~variant:`Fixed ());
          ]);
  ]

(* Table 5: every seeded bug must be detected with its expected class. *)
let table5_tests =
  List.map
    (fun workload ->
      Tu.case (Printf.sprintf "table 5 row: %s" workload) (fun () ->
          let cases = Bug_suite.cases workload in
          (* Check the row shape against the paper's counts. *)
          let (races_p, sems_p, perfs_p), (races_a, sems_a) = Bug_suite.expected_row workload in
          let count suite expect =
            List.length
              (List.filter (fun c -> c.Bug_suite.suite = suite && c.Bug_suite.expect = expect) cases)
          in
          Alcotest.(check int) "pmtest races" races_p (count Bug_suite.Pmtest Bug_suite.Race);
          Alcotest.(check int) "pmtest semantic" sems_p (count Bug_suite.Pmtest Bug_suite.Semantic);
          Alcotest.(check int) "pmtest perf" perfs_p (count Bug_suite.Pmtest Bug_suite.Perf);
          Alcotest.(check int) "additional races" races_a (count Bug_suite.Additional Bug_suite.Race);
          Alcotest.(check int) "additional semantic" sems_a
            (count Bug_suite.Additional Bug_suite.Semantic);
          (* And every case must actually detect. *)
          List.iter
            (fun c ->
              let _, passed = Bug_suite.run c in
              if not passed then Alcotest.failf "case %s not detected" c.Bug_suite.id)
            cases))
    Bug_suite.workloads

let suite =
  [
    ("detection.figures", figure_tests);
    ("detection.newbugs", newbug_tests);
    ("detection.table5", table5_tests);
  ]

(* Cross-validation: under the strict crash mode (non-persisted bytes
   dropped from the image) every correct workload in the registry must
   still come back clean — recovery works on what actually survived. *)
let crossval_tests =
  [
    Tu.case "all registered workloads clean under strict crash images" (fun () ->
        let config = { Xfd.Config.default with crash_mode = `Strict } in
        List.iter
          (fun e ->
            let o =
              Tu.detect ~config (e.Xfd_experiments.Workload_set.make ~init:1 ~test:2)
            in
            Tu.check_clean (e.Xfd_experiments.Workload_set.name ^ " (strict)") o)
          Xfd_experiments.Workload_set.extended);
    Tu.case "all registered workloads clean under full crash images" (fun () ->
        List.iter
          (fun e ->
            let o = Tu.detect (e.Xfd_experiments.Workload_set.make ~init:1 ~test:2) in
            Tu.check_clean (e.Xfd_experiments.Workload_set.name ^ " (full)") o)
          Xfd_experiments.Workload_set.extended);
  ]

let suite = suite @ [ ("detection.crossval", crossval_tests) ]
