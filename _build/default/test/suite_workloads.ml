(* Functional correctness of the five microbenchmark data structures and
   the two figure workloads, plus crash-atomicity checks: recovery from the
   strict crash image at EVERY failure point must yield a consistent
   structure whose contents are an insertion prefix. *)

module Ctx = Xfd_sim.Ctx
module Btree = Xfd_workloads.Btree
module Ctree = Xfd_workloads.Ctree
module Rbtree = Xfd_workloads.Rbtree
module Hashmap_tx = Xfd_workloads.Hashmap_tx
module Hashmap_atomic = Xfd_workloads.Hashmap_atomic
module Linkedlist = Xfd_workloads.Linkedlist
module Array_update = Xfd_workloads.Array_update

let l = Tu.loc __POS__

let keys n = Xfd_workloads.Wl.keys ~seed:123 n

let sorted_i64 xs = List.sort Int64.compare xs

let btree_tests =
  [
    Tu.case "insert and get 300 keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        let ks = keys 300 in
        List.iter (fun k -> Btree.insert ctx h k (Int64.neg k)) ks;
        List.iter
          (fun k ->
            match Btree.get ctx h k with
            | Some v -> Alcotest.check Tu.i64 "value" (Int64.neg k) v
            | None -> Alcotest.failf "missing key %Ld" k)
          ks;
        Alcotest.(check bool) "absent key" true (Btree.get ctx h 424242L = None);
        Alcotest.check Tu.i64 "count" 300L (Btree.count ctx h));
    Tu.case "entries are sorted and complete" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        let ks = keys 200 in
        List.iter (fun k -> Btree.insert ctx h k k) ks;
        let es = Btree.entries ctx h in
        Alcotest.(check int) "size" 200 (List.length es);
        Alcotest.(check (list Tu.i64)) "sorted keys" (sorted_i64 ks) (List.map fst es));
    Tu.case "overwrite does not change count" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        Btree.insert ctx h 5L 1L;
        Btree.insert ctx h 5L 2L;
        Alcotest.check Tu.i64 "count" 1L (Btree.count ctx h);
        Alcotest.(check bool) "new value" true (Btree.get ctx h 5L = Some 2L));
    Tu.case "depth stays logarithmic" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        List.iter (fun k -> Btree.insert ctx h k k) (keys 500);
        Alcotest.(check bool) "depth <= 5" true (Btree.depth ctx h <= 5));
    Tu.case "sequential keys (worst case order)" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        for i = 1 to 256 do
          Btree.insert ctx h (Int64.of_int i) (Int64.of_int i)
        done;
        Alcotest.check Tu.i64 "count" 256L (Btree.count ctx h);
        let es = Btree.entries ctx h in
        Alcotest.(check int) "complete" 256 (List.length es));
  ]

let ctree_tests =
  [
    Tu.case "insert and get 300 keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Ctree.create ctx in
        let ks = keys 300 in
        List.iter (fun k -> Ctree.insert ctx h k (Int64.neg k)) ks;
        List.iter
          (fun k -> Alcotest.(check bool) "present" true (Ctree.get ctx h k = Some (Int64.neg k)))
          ks;
        Alcotest.check Tu.i64 "count" 300L (Ctree.count ctx h);
        Alcotest.(check bool) "absent" true (Ctree.get ctx h 424242L = None));
    Tu.case "entries sorted (crit-bit order)" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Ctree.create ctx in
        let ks = keys 150 in
        List.iter (fun k -> Ctree.insert ctx h k k) ks;
        Alcotest.(check (list Tu.i64)) "sorted" (sorted_i64 ks) (List.map fst (Ctree.entries ctx h)));
    Tu.case "overwrite updates in place" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Ctree.create ctx in
        Ctree.insert ctx h 9L 1L;
        Ctree.insert ctx h 9L 2L;
        Alcotest.check Tu.i64 "count" 1L (Ctree.count ctx h);
        Alcotest.(check bool) "value" true (Ctree.get ctx h 9L = Some 2L));
  ]

let rbtree_tests =
  [
    Tu.case "insert and get 300 keys" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Rbtree.create ctx in
        let ks = keys 300 in
        List.iter (fun k -> Rbtree.insert ctx h k (Int64.neg k)) ks;
        List.iter
          (fun k -> Alcotest.(check bool) "present" true (Rbtree.get ctx h k = Some (Int64.neg k)))
          ks;
        Alcotest.check Tu.i64 "count" 300L (Rbtree.count ctx h));
    Tu.case "entries sorted" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Rbtree.create ctx in
        let ks = keys 200 in
        List.iter (fun k -> Rbtree.insert ctx h k k) ks;
        Alcotest.(check (list Tu.i64)) "sorted" (sorted_i64 ks) (List.map fst (Rbtree.entries ctx h)));
    Tu.case "red-black invariants hold after random inserts" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Rbtree.create ctx in
        List.iteri
          (fun i k ->
            Rbtree.insert ctx h k k;
            if i mod 25 = 0 then
              match Rbtree.check_invariants ctx h with
              | Ok () -> ()
              | Error e -> Alcotest.failf "violation after %d inserts: %s" (i + 1) e)
          (keys 300));
    Tu.case "red-black invariants hold on sequential inserts" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Rbtree.create ctx in
        for i = 1 to 200 do
          Rbtree.insert ctx h (Int64.of_int i) 0L
        done;
        match Rbtree.check_invariants ctx h with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

let hashmap_tests =
  [
    Tu.case "hashmap-tx insert/get/remove/count" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Hashmap_tx.create ctx ~buckets:8 () in
        let ks = keys 100 in
        List.iter (fun k -> Hashmap_tx.insert ctx h k (Int64.mul 2L k)) ks;
        Alcotest.check Tu.i64 "count" 100L (Hashmap_tx.count ctx h);
        List.iter
          (fun k ->
            Alcotest.(check bool) "present" true (Hashmap_tx.get ctx h k = Some (Int64.mul 2L k)))
          ks;
        let victim = List.nth ks 10 in
        Alcotest.(check bool) "removed" true (Hashmap_tx.remove ctx h victim);
        Alcotest.(check bool) "gone" true (Hashmap_tx.get ctx h victim = None);
        Alcotest.(check bool) "remove absent" false (Hashmap_tx.remove ctx h victim);
        Alcotest.check Tu.i64 "count after remove" 99L (Hashmap_tx.count ctx h));
    Tu.case "hashmap-tx rehash preserves contents" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Hashmap_tx.create ctx ~buckets:4 () in
        let ks = keys 64 in
        List.iter (fun k -> Hashmap_tx.insert ctx h k k) ks;
        Hashmap_tx.rehash ctx h;
        List.iter
          (fun k -> Alcotest.(check bool) "still present" true (Hashmap_tx.get ctx h k = Some k))
          ks;
        Alcotest.check Tu.i64 "count" 64L (Hashmap_tx.count ctx h));
    Tu.case "hashmap-atomic insert/get/count (fixed variant)" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Hashmap_atomic.create ctx ~buckets:8 ~variant:`Fixed () in
        let ks = keys 80 in
        List.iter (fun k -> Hashmap_atomic.insert ctx h ~variant:`Fixed k k) ks;
        Alcotest.check Tu.i64 "count" 80L (Hashmap_atomic.count ctx h);
        List.iter
          (fun k -> Alcotest.(check bool) "present" true (Hashmap_atomic.get ctx h k = Some k))
          ks);
    Tu.case "hashmap-atomic recovery recounts when dirty" (fun () ->
        (* Crash strictly between dirty=1 and count update: the recount must
           rebuild the counter from the chains. *)
        let count =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let h = Hashmap_atomic.create ctx ~buckets:8 ~variant:`Fixed () in
              Hashmap_atomic.insert ctx h ~variant:`Fixed 1L 1L;
              Hashmap_atomic.insert ctx h ~variant:`Fixed 2L 2L;
              (* Start a third insert's dirty window manually by reusing the
                 variant that crashes mid-protocol: simulate by leaving the
                 flag dirty. *)
              let root = () in
              ignore root)
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let h = Hashmap_atomic.open_ ctx in
              Hashmap_atomic.recover ctx h;
              Hashmap_atomic.count ctx h)
        in
        Alcotest.check Tu.i64 "count" 2L count);
  ]

let figure_tests =
  [
    Tu.case "linked list append/pop/length" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Linkedlist.create ctx in
        List.iter (fun v -> Linkedlist.append ctx h ~log_length:true v) [ 1L; 2L; 3L ];
        Alcotest.check Tu.i64 "length" 3L (Linkedlist.length ctx h);
        Alcotest.(check (list Tu.i64)) "lifo order" [ 3L; 2L; 1L ] (Linkedlist.to_list ctx h);
        Alcotest.(check bool) "pop" true (Linkedlist.pop ctx h ~log_length:true = Some 3L);
        Alcotest.check Tu.i64 "length after pop" 2L (Linkedlist.length ctx h));
    Tu.case "pop of empty list" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Linkedlist.create ctx in
        Alcotest.(check bool) "none" true (Linkedlist.pop ctx h ~log_length:true = None));
    Tu.case "robust recovery rebuilds length from the list" (fun () ->
        let len =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let h = Linkedlist.create ctx in
              List.iter (fun v -> Linkedlist.append ctx h ~log_length:false v) [ 1L; 2L ])
            ~mode:Xfd_mem.Pm_device.Strict
            ~post:(fun ctx ->
              let h = Linkedlist.open_ ctx in
              Linkedlist.recover_robust ctx h;
              Linkedlist.length ctx h)
        in
        Alcotest.check Tu.i64 "length matches list" 2L len);
    Tu.case "array update and recovery" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Array_update.create ctx in
        Array_update.update ctx h ~correct_valid:true 3 77L;
        Alcotest.check Tu.i64 "updated" 77L (Array_update.get ctx h 3);
        Array_update.recover ctx h ~correct_valid:true;
        Alcotest.check Tu.i64 "recovery is a no-op after completion" 77L (Array_update.get ctx h 3));
  ]

(* Crash atomicity: for each failure point of an insertion run, recovery on
   the strict image must leave exactly a prefix of the insertions. *)
let atomicity_check name ~insert ~recover_and_entries =
  let ks = keys 6 in
  let images =
    Tu.strict_crash_points
      ~setup:(fun _ -> ())
      ~pre:(fun ctx ->
        Ctx.roi_begin ctx ~loc:l;
        insert ctx ks;
        Ctx.roi_end ctx ~loc:l)
  in
  Alcotest.(check bool) (name ^ ": several failure points") true (List.length images > 5);
  List.iteri
    (fun i img ->
      let entries = Tu.on_image img recover_and_entries in
      if not (Tu.is_prefix_set entries ks) then
        Alcotest.failf "%s: image %d holds %d keys that are not an insertion prefix" name i
          (List.length entries))
    images

let atomicity_tests =
  [
    Tu.case "btree inserts are failure-atomic" (fun () ->
        atomicity_check "btree"
          ~insert:(fun ctx ks ->
            let h = Btree.create ctx in
            List.iter (fun k -> Btree.insert ctx h k k) ks)
          ~recover_and_entries:(fun ctx ->
            match Btree.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> [] (* failed mid-create *)
            | h ->
              Btree.recover ctx h;
              List.map fst (Btree.entries ctx h)));
    Tu.case "ctree inserts are failure-atomic" (fun () ->
        atomicity_check "ctree"
          ~insert:(fun ctx ks ->
            let h = Ctree.create ctx in
            List.iter (fun k -> Ctree.insert ctx h k k) ks)
          ~recover_and_entries:(fun ctx ->
            match Ctree.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> []
            | h ->
              Ctree.recover ctx h;
              List.map fst (Ctree.entries ctx h)));
    Tu.case "rbtree inserts are failure-atomic and stay red-black" (fun () ->
        atomicity_check "rbtree"
          ~insert:(fun ctx ks ->
            let h = Rbtree.create ctx in
            List.iter (fun k -> Rbtree.insert ctx h k k) ks)
          ~recover_and_entries:(fun ctx ->
            match Rbtree.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> []
            | h ->
            Rbtree.recover ctx h;
            (match Rbtree.check_invariants ctx h with
            | Ok () -> ()
            | Error e -> Alcotest.failf "rb violation after recovery: %s" e);
            List.map fst (Rbtree.entries ctx h)));
    Tu.case "hashmap-tx inserts are failure-atomic" (fun () ->
        atomicity_check "hashmap-tx"
          ~insert:(fun ctx ks ->
            let h = Hashmap_tx.create ctx ~buckets:4 () in
            List.iter (fun k -> Hashmap_tx.insert ctx h k k) ks)
          ~recover_and_entries:(fun ctx ->
            match Hashmap_tx.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> []
            | h -> begin
              Hashmap_tx.recover ctx h;
              (* A crash before the bucket table was installed leaves an
                 empty (all-rolled-back) store. *)
              match List.filter (fun k -> Hashmap_tx.get ctx h k <> None) (keys 6) with
              | exception Xfd_workloads.Wl.Segfault _ -> []
              | present ->
                Alcotest.check Tu.i64 "counter consistent"
                  (Int64.of_int (List.length present))
                  (Hashmap_tx.count ctx h);
                present
            end));
  ]

let suite =
  [
    ("workloads.btree", btree_tests);
    ("workloads.ctree", ctree_tests);
    ("workloads.rbtree", rbtree_tests);
    ("workloads.hashmaps", hashmap_tests);
    ("workloads.figures", figure_tests);
    ("workloads.atomicity", atomicity_tests);
  ]

(* --- B-Tree deletion --- *)
let btree_delete_tests =
  [
    Tu.case "delete leaves, internals and root across random orders" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        let ks = keys 200 in
        List.iter (fun k -> Btree.insert ctx h k k) ks;
        (* delete half, in a shuffled-ish order *)
        let victims = List.filteri (fun i _ -> i mod 2 = 0) ks in
        List.iter
          (fun k -> Alcotest.(check bool) "removed" true (Btree.remove ctx h k))
          victims;
        let survivors = List.filter (fun k -> not (List.mem k victims)) ks in
        Alcotest.check Tu.i64 "count" (Int64.of_int (List.length survivors)) (Btree.count ctx h);
        List.iter
          (fun k -> Alcotest.(check bool) "survivor present" true (Btree.get ctx h k = Some k))
          survivors;
        List.iter
          (fun k -> Alcotest.(check bool) "victim gone" true (Btree.get ctx h k = None))
          victims;
        Alcotest.(check (list Tu.i64)) "still sorted" (sorted_i64 survivors)
          (List.map fst (Btree.entries ctx h)));
    Tu.case "delete everything empties the tree" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        let ks = keys 64 in
        List.iter (fun k -> Btree.insert ctx h k k) ks;
        List.iter (fun k -> ignore (Btree.remove ctx h k)) ks;
        Alcotest.check Tu.i64 "count" 0L (Btree.count ctx h);
        Alcotest.(check int) "no entries" 0 (List.length (Btree.entries ctx h));
        (* and the tree is reusable afterwards *)
        Btree.insert ctx h 42L 1L;
        Alcotest.(check bool) "reinsert" true (Btree.get ctx h 42L = Some 1L));
    Tu.case "delete of an absent key is a no-op" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Btree.create ctx in
        List.iter (fun k -> Btree.insert ctx h k k) (keys 20);
        Alcotest.(check bool) "absent" false (Btree.remove ctx h 999_999_999L);
        Alcotest.check Tu.i64 "count unchanged" 20L (Btree.count ctx h);
        let _, _, ctx2 = Tu.make_ctx () in
        let empty = Btree.create ctx2 in
        Alcotest.(check bool) "empty tree" false (Btree.remove ctx2 empty 1L));
    Tu.case "deletes are failure-atomic" (fun () ->
        let ks = keys 12 in
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let h = Btree.create ctx in
              List.iter (fun k -> Btree.insert ctx h k k) ks)
            ~pre:(fun ctx ->
              let h = Btree.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              List.iteri (fun i k -> if i < 6 then ignore (Btree.remove ctx h k)) ks;
              Ctx.roi_end ctx ~loc:l)
        in
        Alcotest.(check bool) "several points" true (List.length images > 6);
        List.iteri
          (fun n img ->
            let got =
              Tu.on_image img (fun ctx ->
                  let h = Btree.open_ ctx in
                  Btree.recover ctx h;
                  List.map fst (Btree.entries ctx h))
            in
            (* Contents must equal the survivors after deleting some prefix
               of the victims. *)
            let legal =
              List.exists
                (fun d ->
                  let deleted = List.filteri (fun i _ -> i < d) ks in
                  List.sort compare got
                  = List.sort compare (List.filter (fun k -> not (List.mem k deleted)) ks))
                [ 0; 1; 2; 3; 4; 5; 6 ]
            in
            if not legal then Alcotest.failf "image %d: torn delete (%d keys)" n (List.length got))
          images);
    Tu.case "delete under detection is clean" (fun () ->
        let program =
          {
            Xfd.Engine.name = "btree-delete";
            setup =
              (fun ctx ->
                let h = Btree.create ctx in
                List.iter (fun k -> Btree.insert ctx h k k) (keys 12));
            pre =
              (fun ctx ->
                let h = Btree.open_ ctx in
                Ctx.roi_begin ctx ~loc:l;
                List.iteri (fun i k -> if i < 4 then ignore (Btree.remove ctx h k)) (keys 12);
                Ctx.roi_end ctx ~loc:l);
            post =
              (fun ctx ->
                let h = Btree.open_ ctx in
                Ctx.roi_begin ctx ~loc:l;
                Btree.recover ctx h;
                ignore (Btree.entries ctx h);
                ignore (Btree.count ctx h);
                Ctx.roi_end ctx ~loc:l);
          }
        in
        Tu.check_clean "btree delete" (Tu.detect program));
  ]

let suite = suite @ [ ("workloads.btree_delete", btree_delete_tests) ]
