(* Tests for multithreaded PM programs (section 7), parallelized detection
   (the paper's future work) and the decoupled offline backend (section
   5.5's frontend/backend split). *)

module Ctx = Xfd_sim.Ctx
module Mt = Xfd_sim.Mt
module Trace = Xfd_trace.Trace
module Event = Xfd_trace.Event

let l = Tu.loc __POS__
let base = Xfd_mem.Addr.pool_base

let mt_tests =
  [
    Tu.case "threads interleave at PM-operation granularity" (fun () ->
        let _, trace, ctx = Tu.make_ctx () in
        (* Two threads, each writing its own slot three times; seeded
           scheduling must mix their operations. *)
        let thread t ctx =
          for i = 0 to 2 do
            Ctx.write_i64 ctx ~loc:l (base + (64 * t)) (Int64.of_int i)
          done
        in
        Mt.interleave ~schedule:(Mt.Seeded 42) [ thread 0; thread 1 ] ctx;
        Alcotest.(check int) "all six writes happened" 6 (Trace.counts trace).Trace.writes;
        Alcotest.(check bool) "context switches occurred" true (Mt.last_switches () > 0));
    Tu.case "round-robin quantum switches deterministically" (fun () ->
        let order = ref [] in
        let _, _, ctx = Tu.make_ctx () in
        let thread t ctx =
          for _ = 0 to 3 do
            order := t :: !order;
            Ctx.write_i64 ctx ~loc:l (base + (64 * t)) 1L
          done
        in
        Mt.interleave ~schedule:(Mt.Round_robin 2) [ thread 0; thread 1 ] ctx;
        (* Threads record *before* their next yield, so quantum-2 scheduling
           produces a strictly alternating pair pattern. *)
        let a = List.rev !order in
        let run2 () =
          let order2 = ref [] in
          let _, _, ctx = Tu.make_ctx () in
          let thread t ctx =
            for _ = 0 to 3 do
              order2 := t :: !order2;
              Ctx.write_i64 ctx ~loc:l (base + (64 * t)) 1L
            done
          in
          Mt.interleave ~schedule:(Mt.Round_robin 2) [ thread 0; thread 1 ] ctx;
          List.rev !order2
        in
        Alcotest.(check (list int)) "deterministic" a (run2 ()));
    Tu.case "seeded schedules are reproducible and seed-dependent" (fun () ->
        let run seed =
          let order = ref [] in
          let _, _, ctx = Tu.make_ctx () in
          let thread t ctx =
            for _ = 0 to 5 do
              order := t :: !order;
              Ctx.write_i64 ctx ~loc:l (base + (64 * t)) 1L
            done
          in
          Mt.interleave ~schedule:(Mt.Seeded seed) [ thread 0; thread 1; thread 2 ] ctx;
          List.rev !order
        in
        Alcotest.(check (list int)) "same seed, same schedule" (run 7) (run 7);
        Alcotest.(check bool) "different seeds differ" true (run 7 <> run 8));
    Tu.case "a thread exception aborts the interleaving" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let bad _ctx = failwith "thread crash" in
        let good ctx = Ctx.write_i64 ctx ~loc:l base 1L in
        match Mt.interleave ~schedule:(Mt.Round_robin 1) [ good; bad ] ctx with
        | () -> Alcotest.fail "expected the exception to propagate"
        | exception Failure _ -> ());
    Tu.case "scheduler hook is removed afterwards" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Mt.interleave ~schedule:(Mt.Round_robin 1)
          [ (fun ctx -> Ctx.write_i64 ctx ~loc:l base 1L) ]
          ctx;
        (* If the hook leaked, this write would perform an unhandled
           effect. *)
        Ctx.write_i64 ctx ~loc:l base 2L;
        Alcotest.(check pass) "no unhandled effect" () ());
    Tu.case "independent per-thread logs are clean under every schedule" (fun () ->
        List.iter
          (fun schedule ->
            Tu.check_clean "mt independent"
              (Tu.detect (Xfd_workloads.Mt_log.program ~schedule ())))
          [ Mt.Round_robin 1; Mt.Round_robin 3; Mt.Seeded 1; Mt.Seeded 99 ]);
    Tu.case "unsynchronized shared log races under interleaving" (fun () ->
        let r, s, _, _ =
          Tu.tally_of
            (Xfd_workloads.Mt_log.program ~variant:`Shared_unsynchronized
               ~schedule:(Mt.Seeded 1234) ())
        in
        Alcotest.(check bool) "flagged" true (r + s >= 1));
    Tu.case "single-thread interleave equals direct execution" (fun () ->
        let run mt =
          let _, trace, ctx = Tu.make_ctx () in
          let body ctx =
            Ctx.write_i64 ctx ~loc:l base 5L;
            Ctx.persist_barrier ctx ~loc:l base 8
          in
          if mt then Mt.interleave ~schedule:(Mt.Round_robin 1) [ body ] ctx else body ctx;
          List.map (fun e -> Format.asprintf "%a" Event.pp_kind e.Event.kind) (Trace.to_list trace)
        in
        Alcotest.(check (list string)) "same trace" (run false) (run true));
  ]

let parallel_tests =
  [
    Tu.case "parallel post execution finds identical bugs" (fun () ->
        let verdicts jobs =
          let config = { Xfd.Config.default with post_jobs = jobs } in
          let o = Tu.detect ~config (Xfd_workloads.Array_update.program ~size:2 ()) in
          ( o.Xfd.Engine.failure_points,
            List.map Xfd.Report.dedup_key o.Xfd.Engine.unique_bugs )
        in
        let seq = verdicts 1 in
        Alcotest.(check bool) "jobs=2" true (verdicts 2 = seq);
        Alcotest.(check bool) "jobs=4" true (verdicts 4 = seq));
    Tu.case "parallel clean runs stay clean" (fun () ->
        let config = { Xfd.Config.default with post_jobs = 4 } in
        Tu.check_clean "parallel btree"
          (Tu.detect ~config (Xfd_workloads.Btree.program ~init_size:3 ~size:3 ())));
    Tu.case "jobs larger than failure points is fine" (fun () ->
        let config = { Xfd.Config.default with post_jobs = 64 } in
        Tu.check_clean "overprovisioned"
          (Tu.detect ~config (Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true ())));
  ]

let offline_tests =
  [
    Tu.case "traces round trip through files and re-check offline" (fun () ->
        (* Record the figure 2 buggy workload, save both stages, reload and
           run the backend offline: the terminal-point analysis must report
           the stale-backup semantic bug. *)
        let program = Xfd_workloads.Array_update.program ~size:1 () in
        let dev = Xfd_mem.Pm_device.create () in
        let pre_t = Trace.create () in
        let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace:pre_t () in
        program.Xfd.Engine.setup ctx;
        program.Xfd.Engine.pre ctx;
        let post_dev = Xfd_mem.Pm_device.boot (Xfd_mem.Pm_device.crash dev Xfd_mem.Pm_device.Full) in
        let post_t = Trace.create () in
        let post_ctx = Ctx.create ~stage:Ctx.Post_failure ~dev:post_dev ~trace:post_t () in
        program.Xfd.Engine.post post_ctx;
        let via_file t =
          let file = Filename.temp_file "xfd" ".trace" in
          let oc = open_out file in
          Trace.save t oc;
          close_out oc;
          let ic = open_in file in
          let t' = Trace.load ic in
          close_in ic;
          Sys.remove file;
          t'
        in
        let pre_t = via_file pre_t and post_t = via_file post_t in
        let det = Xfd.Detector.create () in
        Xfd.Detector.replay det pre_t ~from:0 ~upto:(Trace.length pre_t);
        let fork = Xfd.Detector.fork_for_post det in
        Xfd.Detector.replay fork post_t ~from:0 ~upto:(Trace.length post_t);
        let semantic = List.filter Xfd.Report.is_semantic (Xfd.Detector.bugs fork) in
        Alcotest.(check bool) "offline semantic bug found" true (semantic <> []));
  ]

let suite =
  [
    ("mt.interleave", mt_tests);
    ("mt.parallel_detection", parallel_tests);
    ("mt.offline_backend", offline_tests);
  ]
