(* Tests for the Table 1 crash-consistency mechanisms: functional
   behaviour, crash-recovery correctness from strict images at every
   failure point, and detection verdicts on correct vs seeded-buggy
   variants. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Redo = Xfd_mechanisms.Redo_log
module Ckpt = Xfd_mechanisms.Checkpoint
module Shadow = Xfd_mechanisms.Shadow_obj
module Ring = Xfd_mechanisms.Checksum_ring
module Oplog = Xfd_mechanisms.Op_log

let l = Tu.loc __POS__

let tally p = Tu.tally_of p
let clean p = Tu.check_clean "mechanism" (Tu.detect p)

let redo_tests =
  [
    Tu.case "transact applies updates" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Redo.create ctx in
        Redo.transact ctx t ~variant:`Correct [ (3, 30L); (5, 50L) ];
        Alcotest.check Tu.i64 "slot 3" 30L (Redo.get ctx t 3);
        Alcotest.check Tu.i64 "slot 5" 50L (Redo.get ctx t 5));
    Tu.case "committed transaction survives a strict crash mid-apply" (fun () ->
        (* Crash right after the commit flag persists: the log must replay. *)
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let t = Redo.create ctx in
              (* replicate transact up to (and including) the commit *)
              Redo.transact ctx t ~variant:`Correct [ (1, 11L) ];
              (* second transaction interrupted after commit: write log by
                 hand through the public API is not possible, so use the
                 full transact — the strict image after completion must
                 still satisfy recovery idempotently *)
              Redo.transact ctx t ~variant:`Correct [ (2, 22L) ])
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let t = Redo.open_ ctx in
              Redo.recover ctx t;
              (Redo.get ctx t 1, Redo.get ctx t 2))
        in
        Alcotest.check Tu.i64 "slot 1" 11L (fst v);
        Alcotest.check Tu.i64 "slot 2" 22L (snd v));
    Tu.case "recovery is atomic at every failure point" (fun () ->
        (* After recovery from ANY strict crash image, each transaction is
           all-or-nothing: slots (0,1) are updated together. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let t = Redo.create ctx in
              Redo.transact ctx t ~variant:`Correct [ (0, 0L); (1, 100L) ])
            ~pre:(fun ctx ->
              let t = Redo.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              Redo.transact ctx t ~variant:`Correct [ (0, 1L); (1, 101L) ];
              Redo.transact ctx t ~variant:`Correct [ (0, 2L); (1, 102L) ];
              Ctx.roi_end ctx ~loc:l)
        in
        Alcotest.(check bool) "several points" true (List.length images > 4);
        List.iteri
          (fun i img ->
            Tu.on_image img (fun ctx ->
                let t = Redo.open_ ctx in
                Redo.recover ctx t;
                let a = Redo.get ctx t 0 and b = Redo.get ctx t 1 in
                if not (Int64.equal (Int64.add a 100L) b) then
                  Alcotest.failf "image %d: torn transaction (%Ld, %Ld)" i a b))
          images);
    Tu.case "log capacity enforced" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Redo.create ctx in
        Alcotest.check_raises "full" (Invalid_argument "Redo_log.transact: log full")
          (fun () ->
            Redo.transact ctx t ~variant:`Correct
              (List.init (Redo.log_capacity + 1) (fun i -> (i mod Redo.slots, 0L)))));
    Tu.case "correct variant is clean under detection" (fun () -> clean (Redo.program ()));
    Tu.case "apply-before-commit races" (fun () ->
        let r, _, _, _ = tally (Redo.program ~variant:`Apply_before_commit ()) in
        Alcotest.(check bool) "race" true (r >= 1));
    Tu.case "commit-before-entries is semantically inconsistent" (fun () ->
        let _, s, _, _ = tally (Redo.program ~variant:`Commit_before_entries ()) in
        Alcotest.(check bool) "semantic" true (s >= 1));
  ]

let ckpt_tests =
  [
    Tu.case "checkpoint then recover restores the snapshot" (fun () ->
        let v =
          Tu.crash_boot
            ~pre:(fun ctx ->
              let t = Ckpt.create ctx in
              Ckpt.set ctx t 0 7L;
              Ckpt.checkpoint ctx t ~variant:`Correct;
              (* post-checkpoint mutation that never gets checkpointed *)
              Ckpt.set ctx t 0 999L)
            ~mode:Device.Strict
            ~post:(fun ctx ->
              let t = Ckpt.open_ ctx in
              Ckpt.recover ctx t ~variant:`Correct;
              Ckpt.get ctx t 0)
        in
        Alcotest.check Tu.i64 "rolled back to the checkpoint" 7L v);
    Tu.case "recovery lands on a committed checkpoint at every failure point" (fun () ->
        (* All slots carry the round number, so a recovered working area
           must be uniform — any mix means a torn checkpoint was used. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let t = Ckpt.create ctx in
              for i = 0 to Ckpt.slots - 1 do
                Ckpt.set ctx t i 0L
              done;
              Ckpt.checkpoint ctx t ~variant:`Correct)
            ~pre:(fun ctx ->
              let t = Ckpt.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              for r = 1 to 3 do
                for i = 0 to Ckpt.slots - 1 do
                  Ckpt.set ctx t i (Int64.of_int r)
                done;
                Ckpt.checkpoint ctx t ~variant:`Correct
              done;
              Ctx.roi_end ctx ~loc:l)
        in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let t = Ckpt.open_ ctx in
                Ckpt.recover ctx t ~variant:`Correct;
                let v0 = Ckpt.get ctx t 0 in
                for i = 1 to Ckpt.slots - 1 do
                  if not (Int64.equal (Ckpt.get ctx t i) v0) then
                    Alcotest.failf "image %d: torn checkpoint restored" n
                done))
          images);
    Tu.case "correct variant is clean under detection" (fun () -> clean (Ckpt.program ()));
    Tu.case "restoring an old checkpoint is a stale semantic bug" (fun () ->
        let o = Tu.detect (Ckpt.program ~variant:`Restore_old ()) in
        let stale =
          List.exists
            (function
              | Xfd.Report.Semantic s -> s.Xfd.Report.status = Xfd.Cstate.Stale
              | _ -> false)
            o.Xfd.Engine.unique_bugs
        in
        Alcotest.(check bool) "stale" true stale);
    Tu.case "flipping the selector first is flagged" (fun () ->
        let r, s, _, _ = tally (Ckpt.program ~variant:`Flip_first ()) in
        Alcotest.(check bool) "flagged" true (r + s >= 1));
  ]

let shadow_tests =
  [
    Tu.case "copy-on-write updates read back" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Shadow.create ctx in
        Shadow.update_field ctx t ~variant:`Correct 2 42L;
        Shadow.update_field ctx t ~variant:`Correct 5 55L;
        Alcotest.check Tu.i64 "field 2" 42L (Shadow.read_field ctx t 2);
        Alcotest.check Tu.i64 "field 5" 55L (Shadow.read_field ctx t 5));
    Tu.case "updates are atomic across strict crashes" (fun () ->
        (* Field 0 and field 1 are always updated in one copy-on-write
           step; crash images must never mix them. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let t = Shadow.create ctx in
              Shadow.update_field ctx t ~variant:`Correct 0 0L)
            ~pre:(fun ctx ->
              let t = Shadow.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              for r = 1 to 3 do
                (* one COW step changing field 0; field 1 keeps 0 *)
                Shadow.update_field ctx t ~variant:`Correct 0 (Int64.of_int r)
              done;
              Ctx.roi_end ctx ~loc:l)
        in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let t = Shadow.open_ ctx in
                let v = Shadow.read_field ctx t 0 in
                if Int64.compare v 0L < 0 || Int64.compare v 3L > 0 then
                  Alcotest.failf "image %d: impossible field value %Ld" n v))
          images);
    Tu.case "correct variant is clean under detection" (fun () -> clean (Shadow.program ()));
    Tu.case "swap-before-persist races" (fun () ->
        let r, _, _, _ = tally (Shadow.program ~variant:`Swap_before_persist ()) in
        Alcotest.(check bool) "race" true (r >= 1));
    Tu.case "in-place update races" (fun () ->
        let r, _, _, _ = tally (Shadow.program ~variant:`In_place ()) in
        Alcotest.(check bool) "race" true (r >= 1));
  ]

let ring_tests =
  [
    Tu.case "append and recover round trip" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Ring.create ctx ~variant:`Correct in
        Ring.append ctx t "alpha";
        Ring.append ctx t "beta";
        let payloads = Ring.recover ctx t ~variant:`Correct in
        Alcotest.(check int) "two records" 2 (List.length payloads);
        Alcotest.(check bool) "first" true
          (String.length (List.nth payloads 0) >= 5
          && String.sub (List.nth payloads 0) 0 5 = "alpha"));
    Tu.case "capacity enforced" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Ring.create ctx ~variant:`Correct in
        match
          for i = 1 to Ring.capacity + 1 do
            Ring.append ctx t (string_of_int i)
          done
        with
        | () -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Tu.case "verified recovery accepts only an append prefix, at every failure point"
      (fun () ->
        let expected = List.init 4 (fun i -> Printf.sprintf "rec-%d" i) in
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx -> ignore (Ring.create ctx ~variant:`Correct))
            ~pre:(fun ctx ->
              let t = Ring.open_ ctx ~variant:`Correct in
              Ctx.roi_begin ctx ~loc:l;
              List.iter (fun p -> Ring.append ctx t p) expected;
              Ctx.roi_end ctx ~loc:l)
        in
        Alcotest.(check bool) "manual failure points present" true (List.length images > 8);
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let t = Ring.open_ ctx ~variant:`Correct in
                let got = Ring.recover ctx t ~variant:`Correct in
                List.iteri
                  (fun i payload ->
                    let want = List.nth expected i in
                    if String.sub payload 0 (String.length want) <> want then
                      Alcotest.failf "image %d: record %d corrupt" n i)
                  got))
          images);
    Tu.case "unverified recovery can accept a torn record" (fun () ->
        (* The value-level bug the detector cannot see.  Records span two
           cache lines, and real caches may evict either line on its own:
           on randomized crash images the sequence-number line can land
           while the payload tail does not — a torn record that only the
           checksum catches.  Witness: recovery with `No_verify differs
           from verified recovery on some legal crash image. *)
        let snaps =
          Tu.device_snapshots
            ~setup:(fun ctx -> ignore (Ring.create ctx ~variant:`No_verify))
            ~pre:(fun ctx ->
              let t = Ring.open_ ctx ~variant:`No_verify in
              Ctx.roi_begin ctx ~loc:l;
              (* Full-length payloads: a dropped tail line must change the
                 bytes, or the tear would coincide with the zero padding. *)
              Ring.append ctx t (String.init Ring.payload_bytes (fun i -> Char.chr (65 + (i mod 26))));
              Ring.append ctx t (String.init Ring.payload_bytes (fun i -> Char.chr (97 + (i mod 26))));
              Ctx.roi_end ctx ~loc:l)
        in
        let differs =
          List.exists
            (fun snap ->
              List.exists
                (fun seed ->
                  let rng = Xfd_util.Rng.create (Int64.of_int seed) in
                  let img = Device.crash snap (Device.Randomized rng) in
                  Tu.on_image img (fun ctx ->
                      let t = Ring.open_ ctx ~variant:`No_verify in
                      Ring.recover ctx t ~variant:`No_verify
                      <> Ring.recover ctx t ~variant:`Correct))
                [ 1; 2; 3; 4; 5; 6; 7; 8 ])
            snaps
        in
        Alcotest.(check bool) "verification matters on some crash image" true differs);
    Tu.case "correct (annotated) variant is clean under detection" (fun () ->
        clean (Ring.program ()));
    Tu.case "missing benign annotation reports the intentional races" (fun () ->
        let r, _, _, _ = tally (Ring.program ~variant:`Unannotated ()) in
        Alcotest.(check bool) "races" true (r >= 1));
    Tu.case "manual failure points increase coverage" (fun () ->
        let with_manual = Tu.detect (Ring.program ~records:2 ()) in
        Alcotest.(check bool) "more points than barriers" true
          (with_manual.Xfd.Engine.failure_points > 4));
  ]

let oplog_tests =
  [
    Tu.case "add and scale operations apply" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Oplog.create ctx in
        (* setup-like baseline *)
        Oplog.apply ctx t ~variant:`Correct (Oplog.Add (0, 5L));
        Oplog.apply ctx t ~variant:`Correct (Oplog.Scale (0, 3L));
        Alcotest.check Tu.i64 "(0+5)*3" 15L (Oplog.get ctx t 0));
    Tu.case "recovery is exactly-once at every failure point" (fun () ->
        (* Register 0 starts at 0 and takes Add 7 then Add 5: after
           recovery from any strict image it must hold one of the legal
           intermediate results 0, 7 or 12 — never a double-applied one. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx -> ignore (Oplog.create ctx))
            ~pre:(fun ctx ->
              let t = Oplog.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              Oplog.apply ctx t ~variant:`Correct (Oplog.Add (0, 7L));
              Oplog.apply ctx t ~variant:`Correct (Oplog.Add (0, 5L));
              Ctx.roi_end ctx ~loc:l)
        in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let t = Oplog.open_ ctx in
                Oplog.recover ctx t ~variant:`Correct;
                let v = Oplog.get ctx t 0 in
                if not (List.mem v [ 0L; 7L; 12L ]) then
                  Alcotest.failf "image %d: impossible register value %Ld" n v))
          images);
    Tu.case "naive replay double-applies on some crash image" (fun () ->
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx -> ignore (Oplog.create ctx))
            ~pre:(fun ctx ->
              let t = Oplog.open_ ctx in
              Ctx.roi_begin ctx ~loc:l;
              Oplog.apply ctx t ~variant:`Naive_replay (Oplog.Add (0, 7L));
              Ctx.roi_end ctx ~loc:l)
        in
        let corrupt =
          List.exists
            (fun img ->
              Tu.on_image img (fun ctx ->
                  let t = Oplog.open_ ctx in
                  Oplog.recover ctx t ~variant:`Naive_replay;
                  not (List.mem (Oplog.get ctx t 0) [ 0L; 7L ])))
            images
        in
        Alcotest.(check bool) "double-apply witnessed" true corrupt);
    Tu.case "correct variant clean under detection" (fun () -> clean (Oplog.program ()));
    Tu.case "record-after-commit is semantically inconsistent" (fun () ->
        let _, s, _, _ = tally (Oplog.program ~variant:`Op_after_commit ()) in
        Alcotest.(check bool) "semantic" true (s >= 1));
    Tu.case "naive replay races on the live register" (fun () ->
        let r, _, _, _ = tally (Oplog.program ~variant:`Naive_replay ()) in
        Alcotest.(check bool) "race" true (r >= 1));
  ]

let suite =
  [
    ("mechanisms.redo", redo_tests);
    ("mechanisms.checkpoint", ckpt_tests);
    ("mechanisms.shadow", shadow_tests);
    ("mechanisms.checksum", ring_tests);
    ("mechanisms.oplog", oplog_tests);
  ]
