(* Randomized-eviction stress: real caches may write back any dirty line at
   any time, so a crash can expose states between "strict" and "full".  For
   each failure point we sample several randomized crash images and require
   recovery to land in a legal state — the strongest end-to-end statement
   the simulator can make about the transactional workloads. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device

let l = Tu.loc __POS__

let seeds = [ 11; 22; 33; 44 ]

(* For every device snapshot and every seed, boot a randomized image, run
   [recover_and_read], and check the result with [legal]. *)
let stress ~setup ~pre ~recover_and_read ~legal =
  let snaps = Tu.device_snapshots ~setup ~pre in
  List.iteri
    (fun n snap ->
      List.iter
        (fun seed ->
          let rng = Xfd_util.Rng.create (Int64.of_int seed) in
          let img = Device.crash snap (Device.Randomized rng) in
          let got = Tu.on_image img recover_and_read in
          if not (legal got) then
            Alcotest.failf "snapshot %d seed %d: illegal recovered state" n seed)
        seeds)
    snaps

let tests =
  [
    Tu.case "btree recovers to an insertion prefix under random evictions" (fun () ->
        let ks = Xfd_workloads.Wl.keys ~seed:321 5 in
        stress
          ~setup:(fun ctx ->
            let h = Xfd_workloads.Btree.create ctx in
            ignore h)
          ~pre:(fun ctx ->
            let h = Xfd_workloads.Btree.open_ ctx in
            Ctx.roi_begin ctx ~loc:l;
            List.iter (fun k -> Xfd_workloads.Btree.insert ctx h k k) ks;
            Ctx.roi_end ctx ~loc:l)
          ~recover_and_read:(fun ctx ->
            match Xfd_workloads.Btree.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> None
            | h ->
              Xfd_workloads.Btree.recover ctx h;
              Some (List.map fst (Xfd_workloads.Btree.entries ctx h)))
          ~legal:(function
            | None -> true (* randomized image may predate pool creation *)
            | Some got -> Tu.is_prefix_set got ks));
    Tu.case "redo log recovers whole transactions under random evictions" (fun () ->
        stress
          ~setup:(fun ctx ->
            let t = Xfd_mechanisms.Redo_log.create ctx in
            Xfd_mechanisms.Redo_log.transact ctx t ~variant:`Correct [ (0, 0L); (1, 100L) ])
          ~pre:(fun ctx ->
            let t = Xfd_mechanisms.Redo_log.open_ ctx in
            Ctx.roi_begin ctx ~loc:l;
            Xfd_mechanisms.Redo_log.transact ctx t ~variant:`Correct [ (0, 1L); (1, 101L) ];
            Xfd_mechanisms.Redo_log.transact ctx t ~variant:`Correct [ (0, 2L); (1, 102L) ];
            Ctx.roi_end ctx ~loc:l)
          ~recover_and_read:(fun ctx ->
            match Xfd_mechanisms.Redo_log.open_ ctx with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> None
            | t ->
              Xfd_mechanisms.Redo_log.recover ctx t;
              Some
                ( Xfd_mechanisms.Redo_log.get ctx t 0,
                  Xfd_mechanisms.Redo_log.get ctx t 1 ))
          ~legal:(function
            | None -> true
            | Some (a, b) -> Int64.equal (Int64.add a 100L) b));
    Tu.case "pblk blocks are never torn under random evictions" (fun () ->
        let blk_bytes i round = Bytes.make 128 (Char.chr (65 + i + (round * 4))) in
        stress
          ~setup:(fun ctx ->
            let pool = Xfd_pmdk.Pool.create_atomic ctx ~loc:l () in
            let blk = Xfd_pmdk.Pblk.create ctx pool ~block_size:128 ~count:2 in
            Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Xfd_pmdk.Pool.root pool)
              (Xfd_pmdk.Pblk.meta_addr blk);
            Xfd_pmdk.Pmem.persist ctx ~loc:l (Xfd_pmdk.Pool.root pool) 8;
            for i = 0 to 1 do
              Xfd_pmdk.Pblk.write ctx blk i (blk_bytes i 0)
            done)
          ~pre:(fun ctx ->
            let pool = Xfd_pmdk.Pool.open_pool ctx ~loc:l () in
            let blk =
              Xfd_pmdk.Pblk.attach ctx
                ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Xfd_pmdk.Pool.root pool))
            in
            Ctx.roi_begin ctx ~loc:l;
            for round = 1 to 2 do
              for i = 0 to 1 do
                Xfd_pmdk.Pblk.write ctx blk i (blk_bytes i round)
              done
            done;
            Ctx.roi_end ctx ~loc:l)
          ~recover_and_read:(fun ctx ->
            match Xfd_pmdk.Pool.open_pool ctx ~loc:l () with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> None
            | pool -> begin
              match
                Xfd_pmdk.Pblk.attach ctx
                  ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Xfd_pmdk.Pool.root pool))
              with
              | exception Failure _ -> None (* metadata line not evicted yet *)
              | blk -> Some (Xfd_pmdk.Pblk.read ctx blk 0, Xfd_pmdk.Pblk.read ctx blk 1)
            end)
          ~legal:(function
            | None -> true
            | Some (b0, b1) ->
              let legal_one i b =
                List.exists (fun r -> Bytes.equal b (blk_bytes i r)) [ 0; 1; 2 ]
              in
              legal_one 0 b0 && legal_one 1 b1));
    Tu.case "checksum log accepts only valid records under random evictions" (fun () ->
        let payload r = String.init Xfd_mechanisms.Checksum_ring.payload_bytes
            (fun i -> Char.chr (97 + ((i + r) mod 26))) in
        stress
          ~setup:(fun ctx -> ignore (Xfd_mechanisms.Checksum_ring.create ctx ~variant:`Correct))
          ~pre:(fun ctx ->
            let t = Xfd_mechanisms.Checksum_ring.open_ ctx ~variant:`Correct in
            Ctx.roi_begin ctx ~loc:l;
            for r = 1 to 3 do
              Xfd_mechanisms.Checksum_ring.append ctx t (payload r)
            done;
            Ctx.roi_end ctx ~loc:l)
          ~recover_and_read:(fun ctx ->
            match Xfd_mechanisms.Checksum_ring.open_ ctx ~variant:`Correct with
            | exception Xfd_pmdk.Pool.Pool_corrupt _ -> None
            | t -> Some (Xfd_mechanisms.Checksum_ring.recover ctx t ~variant:`Correct))
          ~legal:(function
            | None -> true
            | Some payloads ->
              (* Verified recovery must return some prefix of the appended
                 payloads, bit-exact. *)
              List.for_all2 (fun got r -> got = payload r)
                payloads
                (List.filteri (fun i _ -> i < List.length payloads) [ 1; 2; 3 ])));
  ]

let suite = [ ("stress.randomized", tests) ]
