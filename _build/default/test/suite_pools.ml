(* Tests for the auxiliary persistent-pool libraries: Plog (libpmemlog
   analogue) and Pblk (libpmemblk / BTT analogue). *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Pool = Xfd_pmdk.Pool
module Plog = Xfd_pmdk.Plog
module Pblk = Xfd_pmdk.Pblk

let l = Tu.loc __POS__

let with_pool f =
  let _, _, ctx = Tu.make_ctx () in
  let pool = Pool.create_atomic ctx ~loc:l () in
  f ctx pool

let chunks_of ctx log =
  let acc = ref [] in
  Plog.walk ctx log (fun b -> acc := Bytes.to_string b :: !acc);
  List.rev !acc

let plog_tests =
  [
    Tu.case "append and walk in order" (fun () ->
        with_pool (fun ctx pool ->
            let log = Plog.create ctx pool ~capacity:1024 in
            List.iter
              (fun s -> Plog.append ctx log (Bytes.of_string s))
              [ "alpha"; ""; "gamma" ];
            Alcotest.(check (list string)) "order" [ "alpha"; ""; "gamma" ] (chunks_of ctx log);
            Alcotest.(check int) "tell" (8 + 5 + 8 + 0 + 8 + 5) (Plog.tell ctx log)));
    Tu.case "attach finds the same contents" (fun () ->
        with_pool (fun ctx pool ->
            let log = Plog.create ctx pool ~capacity:256 in
            Plog.append ctx log (Bytes.of_string "persist me");
            let log' = Plog.attach ctx ~meta:(Plog.meta_addr log) in
            Alcotest.(check (list string)) "same" [ "persist me" ] (chunks_of ctx log')));
    Tu.case "full log raises" (fun () ->
        with_pool (fun ctx pool ->
            let log = Plog.create ctx pool ~capacity:32 in
            Plog.append ctx log (Bytes.make 20 'x');
            Alcotest.check_raises "full" Plog.Log_full (fun () ->
                Plog.append ctx log (Bytes.make 20 'y'))));
    Tu.case "rewind empties" (fun () ->
        with_pool (fun ctx pool ->
            let log = Plog.create ctx pool ~capacity:256 in
            Plog.append ctx log (Bytes.of_string "gone");
            Plog.rewind ctx log;
            Alcotest.(check (list string)) "empty" [] (chunks_of ctx log);
            Plog.append ctx log (Bytes.of_string "fresh");
            Alcotest.(check (list string)) "reusable" [ "fresh" ] (chunks_of ctx log)));
    Tu.case "committed chunks survive any strict crash as a prefix" (fun () ->
        let appended = [ "one"; "two"; "three"; "four" ] in
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              let log = Plog.create ctx pool ~capacity:1024 in
              (* stash the meta address in the root for the post stage *)
              Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Plog.meta_addr log);
              Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8)
            ~pre:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              let log =
                Plog.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
              in
              Ctx.roi_begin ctx ~loc:l;
              List.iter (fun s -> Plog.append ctx log (Bytes.of_string s)) appended;
              Ctx.roi_end ctx ~loc:l)
        in
        Alcotest.(check bool) "several points" true (List.length images > 3);
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let log =
                  Plog.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                let got = chunks_of ctx log in
                if not (Tu.is_prefix_set got appended && got = List.filteri (fun i _ -> i < List.length got) appended)
                then Alcotest.failf "image %d: not an append prefix" n))
          images);
    Tu.case "log reads are clean under detection" (fun () ->
        let program =
          {
            Xfd.Engine.name = "plog";
            setup =
              (fun ctx ->
                let pool = Pool.create_atomic ctx ~loc:l () in
                let log = Plog.create ctx pool ~capacity:1024 in
                Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Plog.meta_addr log);
                Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8);
            pre =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let log =
                  Plog.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                for i = 1 to 3 do
                  Plog.append ctx log (Bytes.make i 'z')
                done;
                Ctx.roi_end ctx ~loc:l);
            post =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let log =
                  Plog.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                Plog.walk ctx log (fun _ -> ());
                Ctx.roi_end ctx ~loc:l);
          }
        in
        Tu.check_clean "plog" (Tu.detect program));
  ]

let blk_bytes ?(size = 128) i round = Bytes.make size (Char.chr (65 + ((i + round) mod 26)))

let pblk_tests =
  [
    Tu.case "read back what was written" (fun () ->
        with_pool (fun ctx pool ->
            let blk = Pblk.create ctx pool ~block_size:128 ~count:4 in
            Pblk.write ctx blk 2 (blk_bytes 2 0);
            Alcotest.(check bytes) "block 2" (blk_bytes 2 0) (Pblk.read ctx blk 2);
            Alcotest.(check bytes) "block 0 untouched" (Bytes.make 128 '\000')
              (Pblk.read ctx blk 0)));
    Tu.case "rewrites cycle through physical blocks" (fun () ->
        with_pool (fun ctx pool ->
            let blk = Pblk.create ctx pool ~block_size:64 ~count:2 in
            for round = 0 to 9 do
              Pblk.write ctx blk 0 (blk_bytes ~size:64 0 round);
              Pblk.write ctx blk 1 (blk_bytes ~size:64 1 round)
            done;
            Alcotest.(check bytes) "b0" (blk_bytes ~size:64 0 9) (Pblk.read ctx blk 0);
            Alcotest.(check bytes) "b1" (blk_bytes ~size:64 1 9) (Pblk.read ctx blk 1)));
    Tu.case "geometry validated" (fun () ->
        with_pool (fun ctx pool ->
            let blk = Pblk.create ctx pool ~block_size:64 ~count:2 in
            Alcotest.check_raises "bad index" (Invalid_argument "Pblk: logical block out of range")
              (fun () -> ignore (Pblk.read ctx blk 2));
            Alcotest.check_raises "bad size" (Invalid_argument "Pblk.write: wrong block size")
              (fun () -> Pblk.write ctx blk 0 (Bytes.make 63 'x'))));
    Tu.case "block writes are atomic at every failure point" (fun () ->
        (* After a crash anywhere inside a sequence of block rewrites, every
           block must hold a complete old or complete new image. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              let blk = Pblk.create ctx pool ~block_size:128 ~count:3 in
              Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Pblk.meta_addr blk);
              Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8;
              for i = 0 to 2 do
                Pblk.write ctx blk i (blk_bytes i 0)
              done)
            ~pre:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              let blk =
                Pblk.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
              in
              Ctx.roi_begin ctx ~loc:l;
              for round = 1 to 2 do
                for i = 0 to 2 do
                  Pblk.write ctx blk i (blk_bytes i round)
                done
              done;
              Ctx.roi_end ctx ~loc:l)
        in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let blk =
                  Pblk.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                for i = 0 to 2 do
                  let b = Pblk.read ctx blk i in
                  let legal = List.exists (fun r -> Bytes.equal b (blk_bytes i r)) [ 0; 1; 2 ] in
                  if not legal then Alcotest.failf "image %d: torn block %d" n i
                done))
          images);
    Tu.case "block reads are clean under detection" (fun () ->
        let program =
          {
            Xfd.Engine.name = "pblk";
            setup =
              (fun ctx ->
                let pool = Pool.create_atomic ctx ~loc:l () in
                let blk = Pblk.create ctx pool ~block_size:128 ~count:3 in
                Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Pblk.meta_addr blk);
                Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8);
            pre =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let blk =
                  Pblk.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                for i = 0 to 2 do
                  Pblk.write ctx blk i (blk_bytes i 1)
                done;
                Ctx.roi_end ctx ~loc:l);
            post =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let blk =
                  Pblk.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                for i = 0 to 2 do
                  ignore (Pblk.read ctx blk i)
                done;
                Ctx.roi_end ctx ~loc:l);
          }
        in
        Tu.check_clean "pblk" (Tu.detect program));
  ]

let suite = [ ("pools.plog", plog_tests); ("pools.pblk", pblk_tests) ]

(* --- Plist: the POBJ_LIST analogue --- *)
module Plist = Xfd_pmdk.Plist
module Alloc = Xfd_pmdk.Alloc

let new_node ctx pool v =
  let node = Alloc.alloc ctx pool ~loc:l ~size:32 ~zero:true in
  (* payload persisted before linking, as the contract requires *)
  Ctx.write_i64 ctx ~loc:l (node + 16) v;
  Xfd_pmdk.Pmem.persist ctx ~loc:l node 32;
  node

let node_value ctx node = Ctx.read_i64 ctx ~loc:l (node + 16)

let plist_tests =
  [
    Tu.case "insert_head builds LIFO order with sound links" (fun () ->
        with_pool (fun ctx pool ->
            let t = Plist.create ctx pool in
            let n1 = new_node ctx pool 1L and n2 = new_node ctx pool 2L in
            let n3 = new_node ctx pool 3L in
            List.iter (fun n -> Plist.insert_head ctx t n) [ n1; n2; n3 ];
            Alcotest.(check (list Tu.i64)) "lifo" [ 3L; 2L; 1L ]
              (List.map (node_value ctx) (Plist.to_list ctx t));
            Alcotest.(check bool) "links" true (Plist.check_links ctx t = Ok ())));
    Tu.case "remove at head, middle and tail" (fun () ->
        with_pool (fun ctx pool ->
            let t = Plist.create ctx pool in
            let nodes = List.map (new_node ctx pool) [ 1L; 2L; 3L; 4L ] in
            List.iter (fun n -> Plist.insert_head ctx t n) nodes;
            (* list is [4;3;2;1] *)
            Plist.remove ctx t (List.nth nodes 3) (* head: 4 *);
            Plist.remove ctx t (List.nth nodes 1) (* middle: 2 *);
            Plist.remove ctx t (List.nth nodes 0) (* tail: 1 *);
            Alcotest.(check (list Tu.i64)) "remaining" [ 3L ]
              (List.map (node_value ctx) (Plist.to_list ctx t));
            Alcotest.(check bool) "links" true (Plist.check_links ctx t = Ok ());
            Plist.remove ctx t (List.nth nodes 2);
            Alcotest.(check int) "empty" 0 (Plist.length ctx t)));
    Tu.case "operations are atomic at every failure point" (fun () ->
        (* Recovery from any strict crash image must yield a well-linked
           list whose contents are one of the states the op sequence
           passes through. *)
        let images =
          Tu.strict_crash_points
            ~setup:(fun ctx ->
              let pool = Pool.create_atomic ctx ~loc:l () in
              let t = Plist.create ctx pool in
              Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Plist.meta_addr t);
              Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8)
            ~pre:(fun ctx ->
              let pool = Pool.open_pool ctx ~loc:l () in
              let t =
                Plist.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
              in
              Ctx.roi_begin ctx ~loc:l;
              let n1 = new_node ctx pool 1L in
              Plist.insert_head ctx t n1;
              let n2 = new_node ctx pool 2L in
              Plist.insert_head ctx t n2;
              Plist.remove ctx t n1;
              Ctx.roi_end ctx ~loc:l)
        in
        let legal = [ []; [ 1L ]; [ 2L; 1L ]; [ 2L ] ] in
        List.iteri
          (fun n img ->
            Tu.on_image img (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let t =
                  Plist.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Plist.recover ctx t;
                (match Plist.check_links ctx t with
                | Ok () -> ()
                | Error e -> Alcotest.failf "image %d: broken links: %s" n e);
                let vs = List.map (node_value ctx) (Plist.to_list ctx t) in
                if not (List.mem vs legal) then
                  Alcotest.failf "image %d: impossible list state (%d nodes)" n (List.length vs)))
          images);
    Tu.case "list traversal is clean under detection" (fun () ->
        let program =
          {
            Xfd.Engine.name = "plist";
            setup =
              (fun ctx ->
                let pool = Pool.create_atomic ctx ~loc:l () in
                let t = Plist.create ctx pool in
                Xfd_pmdk.Layout.write_ptr ctx ~loc:l (Pool.root pool) (Plist.meta_addr t);
                Xfd_pmdk.Pmem.persist ctx ~loc:l (Pool.root pool) 8);
            pre =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let t =
                  Plist.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                let n1 = new_node ctx pool 1L in
                Plist.insert_head ctx t n1;
                let n2 = new_node ctx pool 2L in
                Plist.insert_head ctx t n2;
                Plist.remove ctx t n1;
                Ctx.roi_end ctx ~loc:l);
            post =
              (fun ctx ->
                let pool = Pool.open_pool ctx ~loc:l () in
                let t =
                  Plist.attach ctx ~meta:(Xfd_pmdk.Layout.read_ptr ctx ~loc:l (Pool.root pool))
                in
                Ctx.roi_begin ctx ~loc:l;
                Plist.recover ctx t;
                List.iter (fun n -> ignore (node_value ctx n)) (Plist.to_list ctx t);
                Ctx.roi_end ctx ~loc:l);
          }
        in
        Tu.check_clean "plist" (Tu.detect program));
  ]

let suite = suite @ [ ("pools.plist", plist_tests) ]
