(* Unit tests for the PM substrate: Addr, Image, Pm_device. *)

module Addr = Xfd_mem.Addr
module Image = Xfd_mem.Image
module Device = Xfd_mem.Pm_device

let b = Bytes.of_string

let addr_tests =
  [
    Tu.case "line_of aligns down" (fun () ->
        Alcotest.(check int) "0" 0 (Addr.line_of 0);
        Alcotest.(check int) "63" 0 (Addr.line_of 63);
        Alcotest.(check int) "64" 64 (Addr.line_of 64);
        Alcotest.(check int) "pool base" Addr.pool_base (Addr.line_of (Addr.pool_base + 1)));
    Tu.case "offset_in_line" (fun () ->
        Alcotest.(check int) "0" 0 (Addr.offset_in_line 64);
        Alcotest.(check int) "63" 63 (Addr.offset_in_line 127));
    Tu.case "lines_spanning single byte" (fun () ->
        Alcotest.(check (list int)) "one line" [ 64 ] (Addr.lines_spanning 100 1));
    Tu.case "lines_spanning across boundary" (fun () ->
        Alcotest.(check (list int)) "two lines" [ 0; 64 ] (Addr.lines_spanning 60 8));
    Tu.case "lines_spanning exact line" (fun () ->
        Alcotest.(check (list int)) "one line" [ 64 ] (Addr.lines_spanning 64 64));
    Tu.case "lines_spanning empty" (fun () ->
        Alcotest.(check (list int)) "none" [] (Addr.lines_spanning 64 0));
    Tu.case "overlap detection" (fun () ->
        Alcotest.(check bool) "overlapping" true (Addr.overlap (0, 10) (5, 10));
        Alcotest.(check bool) "touching ends" false (Addr.overlap (0, 10) (10, 10));
        Alcotest.(check bool) "disjoint" false (Addr.overlap (0, 10) (20, 5));
        Alcotest.(check bool) "contained" true (Addr.overlap (0, 100) (40, 2));
        Alcotest.(check bool) "empty" false (Addr.overlap (0, 0) (0, 10)));
    Tu.case "contains" (fun () ->
        Alcotest.(check bool) "inside" true (Addr.contains (10, 5) 12);
        Alcotest.(check bool) "below" false (Addr.contains (10, 5) 9);
        Alcotest.(check bool) "at end" false (Addr.contains (10, 5) 15));
  ]

let image_tests =
  [
    Tu.case "unwritten bytes read as zero" (fun () ->
        let img = Image.create () in
        Alcotest.(check char) "zero" '\000' (Image.read_byte img Addr.pool_base);
        Alcotest.(check bytes) "zeros" (Bytes.make 16 '\000') (Image.read img 12345 16));
    Tu.case "write then read back" (fun () ->
        let img = Image.create () in
        Image.write img 1000 (b "hello world");
        Alcotest.(check bytes) "round trip" (b "hello world") (Image.read img 1000 11));
    Tu.case "write across chunk boundary" (fun () ->
        let img = Image.create () in
        let addr = 4096 - 5 in
        Image.write img addr (b "0123456789");
        Alcotest.(check bytes) "spans chunks" (b "0123456789") (Image.read img addr 10));
    Tu.case "i64 round trip" (fun () ->
        let img = Image.create () in
        Image.write_i64 img 800 0x1122334455667788L;
        Alcotest.check Tu.i64 "same" 0x1122334455667788L (Image.read_i64 img 800));
    Tu.case "snapshot isolates mutations" (fun () ->
        let img = Image.create () in
        Image.write_i64 img 0 1L;
        let snap = Image.snapshot img in
        Image.write_i64 img 0 2L;
        Alcotest.check Tu.i64 "snapshot keeps old" 1L (Image.read_i64 snap 0);
        Image.write_i64 snap 8 9L;
        Alcotest.check Tu.i64 "original unaffected" 0L (Image.read_i64 img 8));
    Tu.case "copy_range" (fun () ->
        let src = Image.create () and dst = Image.create () in
        Image.write src 50 (b "abcdef");
        Image.copy_range ~src ~dst 50 6;
        Alcotest.(check bytes) "copied" (b "abcdef") (Image.read dst 50 6));
    Tu.case "equal_range" (fun () ->
        let x = Image.create () and y = Image.create () in
        Image.write x 10 (b "aa");
        Alcotest.(check bool) "differ" false (Image.equal_range x y 10 2);
        Image.write y 10 (b "aa");
        Alcotest.(check bool) "equal" true (Image.equal_range x y 10 2));
    Tu.case "iter_chunks in address order" (fun () ->
        let img = Image.create () in
        Image.write_byte img 100_000 'x';
        Image.write_byte img 5 'y';
        let bases = ref [] in
        Image.iter_chunks img (fun base _ -> bases := base :: !bases);
        Alcotest.(check bool) "sorted" true (List.rev !bases = List.sort compare (List.rev !bases)));
  ]

let device_tests =
  [
    Tu.case "store visible to load immediately" (fun () ->
        let d = Device.create () in
        Device.store d 0 (b "abc");
        Alcotest.(check bytes) "architectural" (b "abc") (Device.load d 0 3));
    Tu.case "strict crash drops unflushed stores" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 42L;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "dropped" 0L (Image.read_i64 img 0));
    Tu.case "full crash keeps unflushed stores" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 42L;
        let img = Device.crash d Device.Full in
        Alcotest.check Tu.i64 "kept" 42L (Image.read_i64 img 0));
    Tu.case "clwb alone does not persist" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 42L;
        Device.clwb d 0;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "still volatile" 0L (Image.read_i64 img 0));
    Tu.case "clwb + sfence persists" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 42L;
        Device.clwb d 0;
        Device.sfence d;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "persisted" 42L (Image.read_i64 img 0));
    Tu.case "flush captures value at flush time" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 1L;
        Device.clwb d 0;
        Device.store_i64 d 0 2L (* after capture: re-dirties *);
        Device.sfence d;
        let img = Device.crash d Device.Strict in
        (* The fence persists the captured value 1; the store of 2 is
           modified-but-unflushed. *)
        Alcotest.check Tu.i64 "captured value" 1L (Image.read_i64 img 0));
    Tu.case "flush acts on the whole line" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 7L;
        Device.store_i64 d 56 8L;
        Device.clwb d 16;
        Device.sfence d;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "first" 7L (Image.read_i64 img 0);
        Alcotest.check Tu.i64 "last in line" 8L (Image.read_i64 img 56));
    Tu.case "flush does not cross line boundary" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 7L;
        Device.store_i64 d 64 8L;
        Device.clwb d 0;
        Device.sfence d;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "flushed line" 7L (Image.read_i64 img 0);
        Alcotest.check Tu.i64 "other line not" 0L (Image.read_i64 img 64));
    Tu.case "nt store persists at next fence without flush" (fun () ->
        let d = Device.create () in
        Device.store_nt d 0 (b "\x2a\x00\x00\x00\x00\x00\x00\x00");
        Device.sfence d;
        let img = Device.crash d Device.Strict in
        Alcotest.check Tu.i64 "persisted" 42L (Image.read_i64 img 0));
    Tu.case "dirty and pending byte counts" (fun () ->
        let d = Device.create () in
        Device.store d 0 (b "abcd");
        Alcotest.(check int) "dirty" 4 (Device.dirty_bytes d);
        Device.clwb d 0;
        Alcotest.(check int) "dirty drained" 0 (Device.dirty_bytes d);
        Alcotest.(check int) "pending" 4 (Device.pending_bytes d);
        Device.sfence d;
        Alcotest.(check int) "pending drained" 0 (Device.pending_bytes d));
    Tu.case "is_persisted_range" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 1L;
        Alcotest.(check bool) "not yet" false (Device.is_persisted_range d 0 8);
        Device.clwb d 0;
        Device.sfence d;
        Alcotest.(check bool) "now" true (Device.is_persisted_range d 0 8));
    Tu.case "boot starts with clean caches" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 5L;
        let d' = Device.boot (Device.crash d Device.Full) in
        Alcotest.(check int) "no dirty" 0 (Device.dirty_bytes d');
        Alcotest.check Tu.i64 "value survives" 5L (Device.load_i64 d' 0);
        (* After boot, the architectural content counts as persisted. *)
        let img = Device.crash d' Device.Strict in
        Alcotest.check Tu.i64 "persisted after boot" 5L (Image.read_i64 img 0));
    Tu.case "snapshot is independent" (fun () ->
        let d = Device.create () in
        Device.store_i64 d 0 1L;
        let s = Device.snapshot d in
        Device.store_i64 d 0 2L;
        Alcotest.check Tu.i64 "snapshot value" 1L (Device.load_i64 s 0);
        Device.clwb d 0;
        Device.sfence d;
        Alcotest.(check bool) "snapshot still dirty" true (Device.dirty_bytes s > 0));
    Tu.case "randomized crash is between strict and full" (fun () ->
        let d = Device.create () in
        for i = 0 to 9 do
          Device.store_i64 d (i * 64) (Int64.of_int (i + 1))
        done;
        Device.clwb d 0;
        Device.sfence d;
        (* line 0 persisted; lines 1..9 dirty *)
        let rng = Xfd_util.Rng.create 7L in
        let img = Device.crash d (Device.Randomized rng) in
        Alcotest.check Tu.i64 "persisted always kept" 1L (Image.read_i64 img 0);
        for i = 1 to 9 do
          let v = Image.read_i64 img (i * 64) in
          Alcotest.(check bool)
            (Printf.sprintf "line %d zero or value" i)
            true
            (Int64.equal v 0L || Int64.equal v (Int64.of_int (i + 1)))
        done);
    Tu.case "stats counters" (fun () ->
        let d = Device.create () in
        Device.store d 0 (b "x");
        ignore (Device.load d 0 1);
        Device.clwb d 0;
        Device.sfence d;
        let s = Device.stats d in
        Alcotest.(check int) "stores" 1 s.Device.stores;
        Alcotest.(check int) "loads" 1 s.Device.loads;
        Alcotest.(check int) "flushes" 1 s.Device.flushes;
        Alcotest.(check int) "fences" 1 s.Device.fences);
  ]

let suite =
  [
    ("mem.addr", addr_tests); ("mem.image", image_tests); ("mem.device", device_tests);
  ]
