test/suite_mechanisms.ml: Alcotest Char Int64 List Printf String Tu Xfd Xfd_mechanisms Xfd_mem Xfd_sim Xfd_util
