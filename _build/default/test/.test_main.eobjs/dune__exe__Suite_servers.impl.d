test/suite_servers.ml: Alcotest Hashtbl List Printf String Tu Xfd_mem Xfd_memcached Xfd_pmdk Xfd_redis Xfd_sim
