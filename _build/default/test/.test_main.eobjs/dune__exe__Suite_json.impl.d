test/suite_json.ml: Alcotest Seq String Tu Xfd Xfd_util Xfd_workloads
