test/suite_trace.ml: Alcotest Bytes Filename Format Int64 List Printf String Sys Tu Xfd_trace Xfd_util
