test/suite_extras.ml: Alcotest Format Int64 List String Tu Xfd Xfd_experiments Xfd_mem Xfd_sim Xfd_util Xfd_workloads
