test/suite_detection.ml: Alcotest List Printf String Tu Xfd Xfd_experiments Xfd_memcached Xfd_redis Xfd_util Xfd_workloads
