test/suite_props.ml: Array Bytes Char Fun Hashtbl Int64 List Map Printf QCheck QCheck_alcotest String Tu Xfd Xfd_mem Xfd_memcached Xfd_pmdk Xfd_redis Xfd_sim Xfd_trace Xfd_util Xfd_workloads
