test/suite_stress.ml: Alcotest Bytes Char Int64 List String Tu Xfd_mechanisms Xfd_mem Xfd_pmdk Xfd_sim Xfd_util Xfd_workloads
