test/suite_mt.ml: Alcotest Filename Format Int64 List Sys Tu Xfd Xfd_mem Xfd_sim Xfd_trace Xfd_workloads
