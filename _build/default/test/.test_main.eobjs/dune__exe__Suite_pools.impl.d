test/suite_pools.ml: Alcotest Bytes Char List Tu Xfd Xfd_mem Xfd_pmdk Xfd_sim
