test/suite_engine.ml: Alcotest Int64 List Tu Xfd Xfd_mem Xfd_sim Xfd_workloads
