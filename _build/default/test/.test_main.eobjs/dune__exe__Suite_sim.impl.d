test/suite_sim.ml: Alcotest Bytes List Tu Xfd_mem Xfd_sim Xfd_trace
