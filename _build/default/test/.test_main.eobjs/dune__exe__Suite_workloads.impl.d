test/suite_workloads.ml: Alcotest Int64 List Tu Xfd Xfd_mem Xfd_pmdk Xfd_sim Xfd_workloads
