test/suite_baselines.ml: Alcotest List Tu Xfd Xfd_baselines Xfd_mem Xfd_sim Xfd_trace Xfd_workloads
