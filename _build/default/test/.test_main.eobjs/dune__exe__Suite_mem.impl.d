test/suite_mem.ml: Alcotest Bytes Int64 List Printf Tu Xfd_mem Xfd_util
