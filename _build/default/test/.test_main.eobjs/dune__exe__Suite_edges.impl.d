test/suite_edges.ml: Alcotest Bytes List Tu Xfd Xfd_mem Xfd_sim Xfd_trace Xfd_util
