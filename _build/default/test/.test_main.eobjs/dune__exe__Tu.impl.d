test/tu.ml: Alcotest Format Int64 List Xfd Xfd_mem Xfd_sim Xfd_trace Xfd_util
