test/suite_pmdk.ml: Alcotest Bytes Char Tu Xfd Xfd_mem Xfd_pmdk Xfd_sim
