test/suite_core.ml: Alcotest List Tu Xfd Xfd_mem Xfd_trace Xfd_util
