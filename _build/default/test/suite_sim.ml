(* Unit tests for the instrumented execution context and fault injection. *)

module Ctx = Xfd_sim.Ctx
module Faults = Xfd_sim.Faults
module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Device = Xfd_mem.Pm_device

let l = Tu.loc __POS__
let base = Xfd_mem.Addr.pool_base

let kinds trace =
  List.map (fun ev -> ev.Event.kind) (Trace.to_list trace)

let ctx_tests =
  [
    Tu.case "accesses emit trace events and hit the device" (fun () ->
        let dev, trace, ctx = Tu.make_ctx () in
        Ctx.write_i64 ctx ~loc:l base 7L;
        Alcotest.check Tu.i64 "device sees write" 7L (Device.load_i64 dev base);
        Alcotest.check Tu.i64 "read returns value" 7L (Ctx.read_i64 ctx ~loc:l base);
        (match kinds trace with
        | [ Event.Write { addr; size }; Event.Read _ ] ->
          Alcotest.(check int) "addr" base addr;
          Alcotest.(check int) "size" 8 size
        | _ -> Alcotest.fail "unexpected trace shape"));
    Tu.case "persist_barrier = clwb per line + one sfence" (fun () ->
        let _, trace, ctx = Tu.make_ctx () in
        Ctx.write ctx ~loc:l base (Bytes.make 130 'x');
        Ctx.persist_barrier ctx ~loc:l base 130;
        let c = Trace.counts trace in
        Alcotest.(check int) "three lines flushed" 3 c.Trace.flushes;
        Alcotest.(check int) "one fence" 1 c.Trace.fences;
        Alcotest.(check int) "one ordering point" 1 (Ctx.ordering_points ctx));
    Tu.case "failure points fire before fences inside RoI only" (fun () ->
        let fired = ref 0 in
        let _, _, ctx = Tu.make_ctx ~on_failure_point:(fun _ -> incr fired) () in
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.sfence ctx ~loc:l;
        Alcotest.(check int) "outside roi" 0 !fired;
        Ctx.roi_begin ctx ~loc:l;
        Ctx.write_i64 ctx ~loc:l base 2L;
        Ctx.sfence ctx ~loc:l;
        Alcotest.(check int) "inside roi" 1 !fired;
        Ctx.roi_end ctx ~loc:l;
        Ctx.write_i64 ctx ~loc:l base 3L;
        Ctx.sfence ctx ~loc:l;
        Alcotest.(check int) "after roi" 1 !fired);
    Tu.case "skip_failure suppresses failure points" (fun () ->
        let fired = ref 0 in
        let _, _, ctx = Tu.make_ctx ~on_failure_point:(fun _ -> incr fired) () in
        Ctx.roi_begin ctx ~loc:l;
        Ctx.skip_failure_begin ctx;
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.sfence ctx ~loc:l;
        Ctx.skip_failure_end ctx;
        Alcotest.(check int) "suppressed" 0 !fired;
        Ctx.add_failure_point ctx;
        Alcotest.(check int) "manual fires" 1 !fired);
    Tu.case "skip_failure_end without begin raises" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Alcotest.check_raises "unbalanced"
          (Invalid_argument "Ctx.skip_failure_end: not in a skip region") (fun () ->
            Ctx.skip_failure_end ctx));
    Tu.case "post-failure stage never fires failure points" (fun () ->
        let fired = ref 0 in
        let _, _, ctx =
          Tu.make_ctx ~stage:Ctx.Post_failure ~on_failure_point:(fun _ -> incr fired) ()
        in
        Ctx.roi_begin ctx ~loc:l;
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.sfence ctx ~loc:l;
        Ctx.add_failure_point ctx;
        Alcotest.(check int) "never" 0 !fired);
    Tu.case "every_update strategy fires on writes and flushes" (fun () ->
        let fired = ref 0 in
        let _, _, ctx =
          Tu.make_ctx ~strategy:Ctx.Every_update ~on_failure_point:(fun _ -> incr fired) ()
        in
        Ctx.roi_begin ctx ~loc:l;
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.write_i64 ctx ~loc:l (base + 8) 2L;
        Ctx.clwb ctx ~loc:l base;
        Alcotest.(check bool) "several points" true (!fired >= 3));
    Tu.case "update_ops counts status-changing operations only" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        let before = Ctx.update_ops ctx in
        ignore (Ctx.read_i64 ctx ~loc:l base);
        Alcotest.(check int) "reads don't count" before (Ctx.update_ops ctx);
        Ctx.write_i64 ctx ~loc:l base 1L;
        Alcotest.(check bool) "writes count" true (Ctx.update_ops ctx > before));
    Tu.case "tracing:false emits nothing" (fun () ->
        let dev = Device.create () in
        let trace = Trace.create () in
        let ctx = Ctx.create ~tracing:false ~stage:Ctx.Pre_failure ~dev ~trace () in
        Ctx.write_i64 ctx ~loc:l base 1L;
        Ctx.persist_barrier ctx ~loc:l base 8;
        Alcotest.(check int) "empty trace" 0 (Trace.length trace);
        Alcotest.check Tu.i64 "device still updated" 1L (Device.load_i64 dev base));
    Tu.case "annotations emit their events" (fun () ->
        let _, trace, ctx = Tu.make_ctx () in
        Ctx.add_commit_var ctx ~loc:l base 8;
        Ctx.add_commit_range ctx ~loc:l ~var:base (base + 8) 16;
        Ctx.marker ctx ~loc:l "note";
        Ctx.skip_detection_begin ctx ~loc:l;
        Ctx.skip_detection_end ctx ~loc:l;
        match kinds trace with
        | [ Event.Commit_var _; Event.Commit_range _; Event.Marker "note";
            Event.Skip_detection_begin; Event.Skip_detection_end ] ->
          ()
        | _ -> Alcotest.fail "unexpected annotation trace");
    Tu.case "complete_detection raises Detection_complete" (fun () ->
        let _, _, ctx = Tu.make_ctx () in
        Alcotest.check_raises "raises" Ctx.Detection_complete (fun () ->
            Ctx.complete_detection ctx));
  ]

let faults_tests =
  [
    Tu.case "none is none" (fun () ->
        Alcotest.(check bool) "none" true (Faults.is_none Faults.none);
        Alcotest.(check bool) "non-none" false
          (Faults.is_none (Faults.make ~skip_flush:[ 1 ] ())));
    Tu.case "occurrence selection" (fun () ->
        let f = Faults.make ~skip_flush:[ 1 ] ~dup_flush:[ 2 ] () in
        Alcotest.(check bool) "0 normal" true (Faults.on_flush f = Faults.Normal);
        Alcotest.(check bool) "1 skip" true (Faults.on_flush f = Faults.Skip);
        Alcotest.(check bool) "2 dup" true (Faults.on_flush f = Faults.Duplicate);
        Alcotest.(check bool) "3 normal" true (Faults.on_flush f = Faults.Normal));
    Tu.case "reset restarts occurrence counting" (fun () ->
        let f = Faults.make ~skip_fence:[ 0 ] () in
        Alcotest.(check bool) "first skip" true (Faults.on_fence f = Faults.Skip);
        Alcotest.(check bool) "second normal" true (Faults.on_fence f = Faults.Normal);
        Faults.reset f;
        Alcotest.(check bool) "after reset skip" true (Faults.on_fence f = Faults.Skip));
    Tu.case "skipped flush leaves data unpersisted on device" (fun () ->
        let faults = Faults.make ~skip_flush:[ 0 ] () in
        let dev, _, ctx = Tu.make_ctx ~faults () in
        Ctx.roi_begin ctx ~loc:l;
        Ctx.write_i64 ctx ~loc:l base 9L;
        Ctx.persist_barrier ctx ~loc:l base 8;
        Ctx.roi_end ctx ~loc:l;
        let img = Device.crash dev Device.Strict in
        Alcotest.check Tu.i64 "not persisted" 0L (Xfd_mem.Image.read_i64 img base));
    Tu.case "faults only apply inside the RoI" (fun () ->
        let faults = Faults.make ~skip_flush:[ 0 ] () in
        let dev, _, ctx = Tu.make_ctx ~faults () in
        Ctx.write_i64 ctx ~loc:l base 9L;
        Ctx.persist_barrier ctx ~loc:l base 8 (* outside RoI: not skipped *);
        let img = Device.crash dev Device.Strict in
        Alcotest.check Tu.i64 "persisted" 9L (Xfd_mem.Image.read_i64 img base));
  ]

let suite = [ ("sim.ctx", ctx_tests); ("sim.faults", faults_tests) ]
